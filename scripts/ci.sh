#!/usr/bin/env bash
# The full local CI gate: formatting, lints, and the whole test suite.
# Everything runs offline — the workspace has zero external
# dependencies, so no registry access is needed.
#
#   scripts/ci.sh            # fmt --check + clippy -D warnings + tests
#   scripts/ci.sh --fix      # apply formatting instead of checking it
#   scripts/ci.sh --full     # also run the full chaos sweep (40 cases)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt --all
else
    cargo fmt --all -- --check
fi

cargo clippy --workspace --all-targets -- -D warnings

cargo test --workspace -q

# conformance: packetdrill-style wire scripts against the TCP/IP stack,
# with the per-socket oracle enabled (see DESIGN.md §11) — including
# the SACK, window-scaling and CUBIC scripts. Runs inside the workspace
# pass too; this standalone stage makes a script failure print its
# hex-dump diff prominently.
echo "ci: conformance script suite (crates/stack/tests/scripts/*.pkt)"
cargo test -q -p nectar-stack --test conformance

# windowed-RMP smoke: the sliding-window fast path delivers in order,
# exactly once, under loss + reorder (differential against the
# stop-and-wait window=1 model), and the fast-path world shards
# bit-identically. Replay property failures with NECTAR_CHECK_SEED.
echo "ci: windowed-RMP smoke (property differential + fast-path shard equivalence)"
cargo test -q -p nectar-stack --test props \
    -- rmp_windowed_inorder_exactly_once_under_impairment \
       tcp_sack_never_retransmits_sacked_bytes
cargo test -q -p nectar-integration --test shards \
    -- det_mode_matches_unsharded_with_fast_path_enabled

# chaos smoke: randomized fault schedules against the 26-host fabric,
# with the conformance oracle armed on every socket (NECTAR_ORACLE=1
# keeps it on even for a release-profile run). The in-tree test already
# runs 20 cases; this stage re-runs a quick sweep standalone so a
# failure prints its replay seed prominently (rerun one case with
# NECTAR_CHECK_SEED=<seed>). --full widens it.
chaos_cases=5
if [[ "${1:-}" == "--full" ]]; then
    chaos_cases=40
fi
echo "ci: chaos sweep (${chaos_cases} cases, oracle on; replay failures with NECTAR_CHECK_SEED=<seed>)"
NECTAR_ORACLE=1 NECTAR_CHAOS_CASES="$chaos_cases" cargo test -q -p nectar-integration --test chaos \
    -- chaos_randomized_fault_schedules_preserve_invariants

# parallel smoke: the deterministic sharded kernel must reproduce the
# committed fixture and a fresh single-thread run byte-for-byte at
# shards = 1/2/4. A diff here means shard count became observable.
echo "ci: parallel smoke (det sharded runs byte-compared against single-thread)"
cargo test -q -p nectar-integration --test shards \
    -- det_mode_reproduces_twohub_fixture_at_any_shard_count \
       det_mode_matches_unsharded_run_exactly

# simspeed smoke: a quick-mode run must emit a well-formed JSON artifact
# with one entry per (mode, shard count); the bench itself asserts the
# det 2-shard snapshot equals the det 1-shard one before writing.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
NECTAR_BENCH_DIR="$smoke_dir" NECTAR_SIMSPEED_QUICK=1 \
    cargo bench -p nectar-bench --bench simspeed
python3 - "$smoke_dir/BENCH_simspeed.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
assert r["det_shard_invariant"] is True, "BENCH_simspeed.json: shard invariance not asserted"
modes = {(e["mode"], e["shards"]) for e in r["entries"]}
for want in (("single", 1), ("det", 1), ("det", 2), ("fast", 1), ("fast", 2), ("fast", 4)):
    assert want in modes, f"BENCH_simspeed.json: missing entry {want}"
for e in r["entries"]:
    for key in ("events_executed", "wall_seconds", "events_per_sec", "sim_wire_bytes"):
        assert e[key] > 0, f"BENCH_simspeed.json: {e['mode']}@{e['shards']}: {key} not positive"
print("ci: simspeed artifact ok:", ", ".join(
    f"{e['mode']}@{e['shards']} {e['events_per_sec']:.0f} ev/s" for e in r["entries"]))
EOF

# load smoke: the quick capacity sweep (small fleet, tens of ms of sim
# time) must produce a well-formed BENCH_load.json, and — the
# determinism contract — two runs must emit byte-identical files.
# --full runs the whole five-transport sweep instead.
load_args=(--quick)
if [[ "${1:-}" == "--full" ]]; then
    load_args=()
fi
echo "ci: load sweep smoke (double run, byte-compared)"
NECTAR_BENCH_DIR="$smoke_dir/load1" \
    cargo bench -p nectar-bench --bench load_sweep -- "${load_args[@]+"${load_args[@]}"}"
NECTAR_BENCH_DIR="$smoke_dir/load2" \
    cargo bench -p nectar-bench --bench load_sweep -- "${load_args[@]+"${load_args[@]}"}"
cmp "$smoke_dir/load1/BENCH_load.json" "$smoke_dir/load2/BENCH_load.json" \
    || { echo "ci: BENCH_load.json differs between same-seed runs"; exit 1; }
python3 - "$smoke_dir/load1/BENCH_load.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
assert r["variants"], "BENCH_load.json: no variants"
names = [v["variant"] for v in r["variants"]]
assert names == ["baseline", "fastpath"], f"unexpected variants: {names}"
for v in r["variants"]:
    assert v["transports"], f"{v['variant']}: no transports"
    for t in v["transports"]:
        assert t["points"], f"{v['variant']}/{t['transport']}: no load points"
        assert any(p["responses"] > 0 for p in t["points"]), \
            f"{v['variant']}/{t['transport']}: served nothing"
        assert t["knee_rps"] > 0, f"{v['variant']}/{t['transport']}: no capacity knee"
base, fast = r["variants"]
for tb, tf in zip(base["transports"], fast["transports"]):
    assert tf["knee_rps"] >= tb["knee_rps"], \
        f"{tb['transport']}: fastpath knee regressed ({tf['knee_rps']} < {tb['knee_rps']})"
for v in r["variants"]:
    print(f"ci: load artifact ok [{v['variant']}]:", ", ".join(
        f"{t['transport']} knee {t['knee_rps']} rps" for t in v["transports"]))
EOF

# scale smoke: the quick scale sweep (two-hub + two folded-Clos sizes,
# backpressure armed, chaos point under the sharded kernel) must emit a
# well-formed BENCH_scale.json, byte-identical across two runs. --full
# runs the 10k-endpoint three-stage sweep instead.
scale_args=(--quick)
if [[ "${1:-}" == "--full" ]]; then
    scale_args=()
fi
echo "ci: scale sweep smoke (double run, byte-compared)"
NECTAR_BENCH_DIR="$smoke_dir/scale1" \
    cargo bench -p nectar-bench --bench scale -- "${scale_args[@]+"${scale_args[@]}"}"
NECTAR_BENCH_DIR="$smoke_dir/scale2" \
    cargo bench -p nectar-bench --bench scale -- "${scale_args[@]+"${scale_args[@]}"}"
cmp "$smoke_dir/scale1/BENCH_scale.json" "$smoke_dir/scale2/BENCH_scale.json" \
    || { echo "ci: BENCH_scale.json differs between same-seed runs"; exit 1; }
python3 - "$smoke_dir/scale1/BENCH_scale.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
sizes = r["sizes"]
assert len(sizes) >= 3, f"BENCH_scale.json: only {len(sizes)} fabric sizes"
hubs = [s["hubs"] for s in sizes]
assert hubs == sorted(hubs) and len(set(hubs)) == len(hubs), \
    f"fabric sizes not strictly growing: {hubs}"
assert any(s["stages"] >= 2 for s in sizes), "no multi-stage Clos size in the sweep"
for s in sizes:
    assert s["knee_rps"] > 0, f"{s['label']}: no capacity knee"
    assert s["points"] and any(p["responses"] > 0 for p in s["points"]), \
        f"{s['label']}: served nothing"
    assert len(s["stage_hotspots"]) == s["stages"], \
        f"{s['label']}: hotspot rollup covers {len(s['stage_hotspots'])}/{s['stages']} stages"
    for row in s["stage_hotspots"]:
        for key in ("rx_frames", "forwarded_frames", "dropped_frames",
                    "held_frames", "backlog_high_ns"):
            assert key in row, f"{s['label']}: stage hotspot missing {key}"
c = r["chaos"]
assert c["oracle_armed"] is True, "chaos ran without the conformance oracle"
assert c["conserved"] is True, "chaos ledger leaked requests"
assert c["shards"] >= 2, "chaos did not run under the sharded kernel"
assert c["responses"] > 0, "chaos fleet made no progress"
assert c["hubs"] == sizes[-1]["hubs"], "chaos did not run at the largest size"
print("ci: scale artifact ok:", ", ".join(
    f"{s['label']} ({s['hubs']} hubs) knee {s['knee_rps']} rps" for s in sizes),
    f"| chaos {c['responses']}/{c['intended']} under loss, conserved")
EOF

# collective smoke: the quick tree-vs-chain sweep (16 and 256 members)
# must emit a well-formed BENCH_collective.json, byte-identical across
# two runs, and the combining tree must beat the linear gather at the
# largest fleet swept. --full adds the 2048-member folded-Clos size.
coll_args=(--quick)
if [[ "${1:-}" == "--full" ]]; then
    coll_args=()
fi
echo "ci: collective sweep smoke (double run, byte-compared)"
NECTAR_BENCH_DIR="$smoke_dir/coll1" \
    cargo bench -p nectar-bench --bench collective -- "${coll_args[@]+"${coll_args[@]}"}"
NECTAR_BENCH_DIR="$smoke_dir/coll2" \
    cargo bench -p nectar-bench --bench collective -- "${coll_args[@]+"${coll_args[@]}"}"
cmp "$smoke_dir/coll1/BENCH_collective.json" "$smoke_dir/coll2/BENCH_collective.json" \
    || { echo "ci: BENCH_collective.json differs between same-seed runs"; exit 1; }
python3 - "$smoke_dir/coll1/BENCH_collective.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
fleets = r["fleets"]
assert len(fleets) >= 2, f"BENCH_collective.json: only {len(fleets)} fleet sizes"
sizes = [f["fleet"] for f in fleets]
assert sizes == sorted(sizes) and len(set(sizes)) == len(sizes), \
    f"fleet sizes not strictly growing: {sizes}"
assert sizes[-1] >= 256, f"largest fleet {sizes[-1]} below the 256-member bar"
for f in fleets:
    for shape in ("tree", "chain"):
        s = f[shape]
        assert s["per_epoch_ns"] > 0, f"{f['label']}/{shape}: no latency recorded"
        n = f["fleet"]
        assert s["reduced_value"] == n * (n + 1) // 2, \
            f"{f['label']}/{shape}: wrong reduction value"
    assert f["tree"]["depth"] < f["chain"]["depth"], \
        f"{f['label']}: tree not log-depth"
    # interior combining: the root hears one Arrive per child per
    # epoch, never one per descendant
    assert f["tree"]["root_arrives_rx"] <= r["fanout"] * r["epochs"], \
        f"{f['label']}: root heard uncombined arrives"
largest = fleets[-1]
assert largest["tree"]["per_epoch_ns"] < largest["chain"]["per_epoch_ns"], \
    f"{largest['label']}: combining tree no faster than the linear gather"
print("ci: collective artifact ok:", ", ".join(
    f"{f['label']} tree {f['tree']['per_epoch_ns'] // 1000} µs "
    f"vs chain {f['chain']['per_epoch_ns'] // 1000} µs" for f in fleets))
EOF

echo "ci: all green"
