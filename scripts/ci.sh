#!/usr/bin/env bash
# The full local CI gate: formatting, lints, and the whole test suite.
# Everything runs offline — the workspace has zero external
# dependencies, so no registry access is needed.
#
#   scripts/ci.sh            # fmt --check + clippy -D warnings + tests
#   scripts/ci.sh --fix      # apply formatting instead of checking it
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt --all
else
    cargo fmt --all -- --check
fi

cargo clippy --workspace --all-targets -- -D warnings

cargo test --workspace -q

echo "ci: all green"
