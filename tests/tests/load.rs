//! Load-engine integration: determinism at fleet scale, composition
//! with the chaos fault engine and the conformance oracle, and the
//! load ledger's conservation identity.
//!
//! The determinism test is the strong form the BENCH_load.json
//! contract rests on: two worlds built from the same plan inside one
//! process get *different* `HashMap` hash keys (std's `RandomState`
//! salts per instance), so any iteration-order dependence in the CAB
//! protocol threads shows up as diverging metric snapshots here.

use nectar::config::Config;
use nectar::fault::{FaultScript, LinkPlan};
use nectar::world::World;
use nectar_load::{deploy_fleet, Arrival, FleetPlan, LoadTransport, SizeDist, SweepConfig};
use nectar_sim::{SimDuration, SimTime};

/// A mixed-protocol plan with ≥200 clients across both HUBs.
fn big_mixed_plan(seed: u64) -> FleetPlan {
    FleetPlan {
        seed,
        mix: vec![
            (LoadTransport::Datagram, 48),
            (LoadTransport::Rmp, 48),
            (LoadTransport::ReqResp, 48),
            (LoadTransport::Udp, 48),
            (LoadTransport::Tcp, 48),
        ],
        clients_per_cab: 12,
        endpoints_per_client: 1,
        arrival: Arrival::Open { mean_gap: SimDuration::from_millis(2) },
        size: SizeDist::Uniform(32, 256),
        timeout: SimDuration::from_millis(20),
        start: SimTime::ZERO + SimDuration::from_millis(1),
        stop: SimTime::ZERO + SimDuration::from_millis(21),
    }
}

/// One full fleet run: returns the metric snapshot (which includes the
/// `net/load/*` ledger) and a per-transport recorder digest.
fn run_fleet(plan: &FleetPlan, config: Config, script: Option<&FaultScript>) -> (String, String) {
    let (mut world, mut sim) = World::new(config, plan.topology());
    if let Some(s) = script {
        world.install_fault_script(&mut sim, s);
    }
    let fleet = deploy_fleet(&mut world, plan);
    assert!(fleet.total_clients >= 200, "plan too small: {}", fleet.total_clients);
    // Generous horizon: the offered load deliberately saturates the
    // client CABs (12 threads × 20 µs context switches), so the
    // open-loop backlog drains well after `stop`. The queue empties
    // once every client finishes, and `run_until` returns early then.
    world.run_until(&mut sim, plan.stop + SimDuration::from_secs(2));

    let rec = fleet.recorder.borrow();
    let mut digest = String::new();
    for t in LoadTransport::ALL {
        let r = rec.record(t);
        digest.push_str(&format!(
            "{}: sent={} resp={} to={} fail={} stale={} late={} p50={} p99={}\n",
            t.name(),
            r.requests_sent,
            r.responses,
            r.timeouts,
            r.failures,
            r.stale_replies,
            r.late_dispatch,
            r.latency.percentile_nanos(0.50),
            r.latency.percentile_nanos(0.99),
        ));
    }
    let led = *fleet.ledger.borrow();
    // Conservation: every dispatched request resolves exactly once —
    // response, timeout, or stream failure; refused dispatches (sent
    // never incremented) land in `failures` too, so the three sinks
    // together account for every intended request.
    assert_eq!(
        led.responses + led.timeouts + led.failures,
        led.requests_intended,
        "unresolved or double-counted requests: {led:?}\n{digest}"
    );
    assert!(led.requests_sent <= led.requests_intended);
    assert!(led.responses > 0, "fleet made no progress: {led:?}");
    (world.metrics_json(), digest)
}

/// ISSUE 5 acceptance: a ≥200-client mixed-protocol fleet, run twice
/// in-process with the conformance oracle armed, must produce
/// byte-identical metric snapshots (including `net/load/*`) and
/// byte-identical latency digests — and zero oracle violations.
#[test]
fn mixed_fleet_double_run_is_bit_identical() {
    let plan = big_mixed_plan(0xfee1_600d);
    let config = Config { seed: plan.seed, oracle: Some(true), ..Config::default() };
    let (m1, d1) = run_fleet(&plan, config, None);
    let (m2, d2) = run_fleet(&plan, config, None);
    assert!(d1 == d2, "latency digests diverged:\n--- run 1\n{d1}\n--- run 2\n{d2}");
    assert!(m1 == m2, "metric snapshots diverged across same-seed runs");
    // the ledger must actually be in the snapshot
    assert!(m1.contains("\"net/load/responses\""), "net/load/* keys missing from metrics");
}

/// A fleet with a different seed must actually behave differently —
/// guards against the digest comparing constants.
#[test]
fn different_seeds_give_different_schedules() {
    let p1 = big_mixed_plan(0xfee1_600d);
    let p2 = big_mixed_plan(0x0dd_5eed);
    let c1 = Config { seed: p1.seed, oracle: Some(false), ..Config::default() };
    let c2 = Config { seed: p2.seed, oracle: Some(false), ..Config::default() };
    let (m1, _) = run_fleet(&p1, c1, None);
    let (m2, _) = run_fleet(&p2, c2, None);
    assert!(m1 != m2, "independent seeds produced identical worlds");
}

/// Chaos composition: a small fleet rides out a lossy fabric with the
/// conformance oracle armed. Retransmitting transports still complete
/// requests; the ledger conservation identity holds with timeouts now
/// doing real work; and the oracle sees no illegal TCP transitions.
#[test]
fn small_fleet_survives_faults_with_oracle_armed() {
    let plan = FleetPlan {
        seed: 0xc0a5,
        mix: vec![(LoadTransport::Rmp, 8), (LoadTransport::ReqResp, 8), (LoadTransport::Tcp, 8)],
        clients_per_cab: 8,
        endpoints_per_client: 1,
        arrival: Arrival::Open { mean_gap: SimDuration::from_millis(2) },
        size: SizeDist::Fixed(128),
        timeout: SimDuration::from_millis(25),
        start: SimTime::ZERO + SimDuration::from_millis(1),
        stop: SimTime::ZERO + SimDuration::from_millis(26),
    };
    let mut config = Config { seed: plan.seed, oracle: Some(true), ..Config::default() };
    // give stop-and-wait channels room to back off through the loss
    config.rmp.rto_max = SimDuration::from_millis(20);
    config.rmp.max_retries = 64;
    let topo = plan.topology();
    let script = FaultScript::uniform(&topo, LinkPlan { loss: 0.03, ..LinkPlan::default() });
    assert!(!script.is_empty());

    let (mut world, mut sim) = World::new(config, topo);
    world.install_fault_script(&mut sim, &script);
    let fleet = deploy_fleet(&mut world, &plan);
    world.run_until(&mut sim, plan.stop + SimDuration::from_secs(2));
    assert!(
        nectar_stack::conform::enabled(),
        "oracle was disarmed mid-run; the zero-violation claim is vacuous"
    );

    let led = *fleet.ledger.borrow();
    assert_eq!(led.responses + led.timeouts + led.failures, led.requests_intended);
    assert!(led.responses > 0, "no requests survived 3% loss: {led:?}");
    let rec = fleet.recorder.borrow();
    for t in [LoadTransport::Rmp, LoadTransport::ReqResp] {
        assert!(rec.record(t).responses > 0, "{} made no progress under loss", t.name());
    }
}

/// The quick capacity sweep (the CI smoke configuration) renders
/// byte-identical JSON across two in-process runs and finds a knee for
/// every transport it drives.
#[test]
fn quick_sweep_is_deterministic_and_finds_knees() {
    let cfg = SweepConfig::quick(0x5eed);
    let r1 = nectar_load::sweep::run_sweep(&cfg);
    let r2 = nectar_load::sweep::run_sweep(&cfg);
    assert_eq!(r1.to_json(), r2.to_json(), "sweep JSON diverged across same-seed runs");
    for s in &r1.sweeps {
        assert!(
            s.points.iter().any(|p| p.responses > 0),
            "{} served nothing at any load step",
            s.transport.name()
        );
        assert!(
            s.knee.is_some(),
            "{} has no capacity knee — even the lightest step was saturated",
            s.transport.name()
        );
    }
    // the markdown table renders one row per point
    let md = r1.to_markdown();
    let rows = md.lines().filter(|l| l.starts_with("| ")).count();
    assert_eq!(rows, cfg.transports.len() * cfg.offered_rps.len() + 1);
}
