//! Circuit switching through the HUB controller (§2.1: "commands that
//! the CABs use to set up both packet-switching and circuit-switching
//! connections"), exercised at the world level.

use nectar::config::Config;
use nectar::scenario::{CabEcho, CabPinger, Transport};
use nectar::world::World;
use nectar_cab::HostOpMode;
use nectar_hub::{HubCommand, HubReply};
use nectar_sim::{SimDuration, SimTime};

#[test]
fn circuit_reduces_hub_transit_latency() {
    // Baseline: packet-switched ping between CABs 0 and 1.
    let rtt = |with_circuit: bool| {
        let (mut world, mut sim) = World::single_hub(Config::default(), 2);
        if with_circuit {
            // pin both directions of the 0<->1 path through the crossbar
            assert_eq!(
                world.hubs[0].execute(HubCommand::OpenCircuit { in_port: 0, out_port: 1 }),
                HubReply::Ok
            );
            assert_eq!(
                world.hubs[0].execute(HubCommand::OpenCircuit { in_port: 1, out_port: 0 }),
                HubReply::Ok
            );
        }
        let svc = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
        world.cabs[1]
            .fork_app(Box::new(CabEcho { transport: Transport::Datagram, recv_mbox: svc }));
        let reply = world.cabs[0].shared.create_mailbox(false, HostOpMode::SharedMemory);
        let (p, rtts, done) = CabPinger::new(Transport::Datagram, (1, svc), reply, 32, 20);
        world.cabs[0].fork_app(Box::new(p));
        world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(10));
        assert!(done.get());
        let m = rtts.borrow_mut().median().as_micros_f64();
        (m, world.hubs[0].stats().forwarded, world.hubs[0].stats().forwarded_circuit)
    };

    let (packet_rtt, fwd, circ) = rtt(false);
    assert!(fwd > 0 && circ == 0);
    let (circuit_rtt, fwd2, circ2) = rtt(true);
    assert_eq!(fwd2, 0, "all traffic must ride the circuit");
    assert!(circ2 > 0);
    // circuit transit (100 ns) beats packet setup (700 ns) per transit:
    // 1.2 us per roundtrip
    let saved = packet_rtt - circuit_rtt;
    assert!(
        (0.5..3.0).contains(&saved),
        "circuit should save ~1.2 us per RTT; packet={packet_rtt} circuit={circuit_rtt}"
    );
}

#[test]
fn circuit_blocks_unrelated_packet_traffic_on_that_output() {
    // three CABs; a circuit from 2 to 1 reserves output port 1, so
    // packet traffic 0 -> 1 is refused at the HUB (backlog drop)
    let (mut world, mut sim) = World::single_hub(Config::default(), 3);
    assert_eq!(
        world.hubs[0].execute(HubCommand::OpenCircuit { in_port: 2, out_port: 1 }),
        HubReply::Ok
    );
    let svc = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    world.cabs[1].fork_app(Box::new(CabEcho { transport: Transport::Datagram, recv_mbox: svc }));
    let reply = world.cabs[0].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let (p, _, done) = CabPinger::new(Transport::Datagram, (1, svc), reply, 32, 1);
    world.cabs[0].fork_app(Box::new(p));
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(1));
    assert!(!done.get(), "datagram should be dropped while the circuit holds the port");
    assert!(world.stats.frames_hub_dropped > 0);
    // closing the circuit restores packet switching
    assert_eq!(world.hubs[0].execute(HubCommand::CloseCircuit { in_port: 2 }), HubReply::Ok);
    // a fresh reply mailbox: the first pinger still blocks on the old one
    let reply2 = world.cabs[0].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let (p2, _, done2) = CabPinger::new(Transport::Datagram, (1, svc), reply2, 32, 1);
    world.cabs[0].fork_app(Box::new(p2));
    let t = sim.now();
    sim.at(t, |w, s| nectar::world::kick_cab(w, s, 0));
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(2));
    assert!(done2.get(), "packet switching must work again after CloseCircuit");
}
