//! CAB-resident workloads: application threads running on the
//! communication processors themselves (§5.3), covering Table 1's
//! CAB↔CAB column and the Figure 7 streaming setups.

use nectar::config::Config;
use nectar::scenario::{
    CabEcho, CabPinger, CabRmpStreamer, CabSink, CabTcpListener, CabTcpStreamer, Transport,
};
use nectar::world::World;
use nectar_cab::HostOpMode;
use nectar_sim::{SimDuration, SimTime};

fn cab_ping(transport: Transport, size: usize, count: u32) -> (f64, bool) {
    let (mut world, mut sim) = World::single_hub(Config::default(), 2);
    let svc = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let reply = world.cabs[0].shared.create_mailbox(false, HostOpMode::SharedMemory);
    world.cabs[1].fork_app(Box::new(CabEcho { transport, recv_mbox: svc }));
    let server = match transport {
        Transport::Udp => (1u16, 7u16),
        _ => (1u16, svc),
    };
    if transport == Transport::Udp {
        // bind the echo service port on CAB 1 to the service mailbox
        // (the CabEcho UDP arm replies from port 7)
        let m = nectar_cab::reqs::udp_bind_encode(7, svc);
        let msg = world.cabs[1].shared.begin_put(nectar_cab::reqs::MB_UDP_CTL, m.len()).unwrap();
        world.cabs[1].shared.msg_write(&msg, 0, &m);
        world.cabs[1].shared.end_put(nectar_cab::reqs::MB_UDP_CTL, msg);
    }
    let (ping, rtts, done) = CabPinger::new(transport, server, reply, size, count);
    world.cabs[0].fork_app(Box::new(ping));
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(30));
    let median = rtts.borrow_mut().median().as_micros_f64();
    (median, done.get())
}

#[test]
fn cab_to_cab_datagram_latency() {
    let (median, done) = cab_ping(Transport::Datagram, 32, 20);
    assert!(done);
    println!("cab-cab datagram RTT = {median:.1} us");
    // Table 1 anchor: 179 us CAB-CAB (reconstructed); must be well
    // under the host-host 325 us
    assert!((100.0..260.0).contains(&median), "median={median}");
}

#[test]
fn cab_to_cab_rmp_latency() {
    let (median, done) = cab_ping(Transport::Rmp, 32, 20);
    assert!(done);
    println!("cab-cab rmp RTT = {median:.1} us");
    assert!(median < 300.0, "median={median}");
}

#[test]
fn cab_to_cab_reqresp_latency() {
    let (median, done) = cab_ping(Transport::ReqResp, 32, 20);
    assert!(done);
    println!("cab-cab rr RTT = {median:.1} us");
    assert!(median < 350.0, "median={median}");
}

#[test]
fn cab_to_cab_udp_latency() {
    let (median, done) = cab_ping(Transport::Udp, 32, 20);
    assert!(done);
    println!("cab-cab udp RTT = {median:.1} us");
    assert!(median < 600.0, "median={median}");
}

#[test]
fn cab_to_cab_rmp_throughput_approaches_fiber_rate() {
    // Figure 7 anchor: RMP at 8 KiB reaches ≈90 of 100 Mbit/s.
    let (mut world, mut sim) = World::single_hub(Config::default(), 2);
    let sink_mbox = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let src_mbox = world.cabs[0].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let total = 4_000_000u64; // 4 MB
    let (sink, meter, received, done) = CabSink::new(sink_mbox, total);
    world.cabs[1].fork_app(Box::new(sink));
    let (streamer, _) = CabRmpStreamer::new((1, sink_mbox), src_mbox, 8192, total);
    world.cabs[0].fork_app(Box::new(streamer));
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(10));
    assert!(done.get(), "sink got {} of {total}", received.get());
    let mbps = meter.borrow().mbits_per_sec_to_last();
    println!("cab-cab RMP 8KiB throughput = {mbps:.1} Mbit/s");
    assert!((80.0..98.0).contains(&mbps), "mbps={mbps}");
}

#[test]
fn cab_to_cab_rmp_small_messages_overhead_dominates() {
    let (mut world, mut sim) = World::single_hub(Config::default(), 2);
    let sink_mbox = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let src_mbox = world.cabs[0].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let total = 64_000u64;
    let (sink, meter, _, done) = CabSink::new(sink_mbox, total);
    world.cabs[1].fork_app(Box::new(sink));
    let (streamer, _) = CabRmpStreamer::new((1, sink_mbox), src_mbox, 64, total);
    world.cabs[0].fork_app(Box::new(streamer));
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(30));
    assert!(done.get());
    let mbps = meter.borrow().mbits_per_sec_to_last();
    println!("cab-cab RMP 64B throughput = {mbps:.2} Mbit/s");
    // per-packet overhead dominates: way below fiber rate
    assert!(mbps < 20.0, "mbps={mbps}");
}

#[test]
fn cab_to_cab_tcp_throughput() {
    let (mut world, mut sim) = World::single_hub(Config::default(), 2);
    let accept = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let data = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let total = 2_000_000u64;
    world.cabs[1].fork_app(Box::new(CabTcpListener::new(5000, accept, data)));
    let (sink, meter, received, done) = CabSink::new(data, total);
    world.cabs[1].fork_app(Box::new(sink));
    let (streamer, _) = CabTcpStreamer::new(1, 5000, 8192, total);
    world.cabs[0].fork_app(Box::new(streamer));
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(20));
    assert!(done.get(), "sink got {} of {total}", received.get());
    let mbps = meter.borrow().mbits_per_sec_to_last();
    println!("cab-cab TCP 8KiB-chunk throughput = {mbps:.1} Mbit/s");
    // Figure 7: TCP well below RMP because of the software checksum,
    // but still tens of Mbit/s
    assert!((25.0..80.0).contains(&mbps), "mbps={mbps}");
}

#[test]
fn cab_to_cab_tcp_without_checksum_approaches_rmp() {
    let mut config = Config::default();
    config.tcp.compute_checksum = false;
    let (mut world, mut sim) = World::single_hub(config, 2);
    let accept = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let data = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let total = 2_000_000u64;
    world.cabs[1].fork_app(Box::new(CabTcpListener::new(5000, accept, data)));
    let (sink, meter, _, done) = CabSink::new(data, total);
    world.cabs[1].fork_app(Box::new(sink));
    let (streamer, _) = CabTcpStreamer::new(1, 5000, 8192, total);
    world.cabs[0].fork_app(Box::new(streamer));
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(20));
    assert!(done.get());
    let mbps = meter.borrow().mbits_per_sec_to_last();
    println!("cab-cab TCP-no-cksum throughput = {mbps:.1} Mbit/s");
    assert!(mbps > 55.0, "mbps={mbps}");
}
