//! Property tests over randomized multi-stage folded-Clos fabrics.
//!
//! The topology generator admits a large family of shapes (pods ×
//! leaves × spines × cores × uplink spread); hand-picked examples in
//! the unit tests cover the corners, and this suite samples the
//! interior: for every sampled spec the fabric must validate, every
//! cached route must actually traverse the port map to its
//! destination, reachability must be symmetric, and the whole route
//! table must be byte-identical run-to-run — the determinism the
//! per-source route cache is allowed to rely on.

use nectar::topology::{Attachment, ClosSpec, Topology};
use nectar_hub::PORTS;
use nectar_sim::Pcg32;

/// Draw a spec satisfying the generator's documented constraints:
/// `uplinks % spines == 0`, `cores % spines == 0`, leaf and spine port
/// budgets respected, cores present iff multi-pod.
fn sample_spec(rng: &mut Pcg32) -> ClosSpec {
    let spp = [1, 2, 4][rng.below(3) as usize];
    let ups = 1 + rng.below(2) as usize; // uplinks landing per spine
    let uplinks = spp * ups;
    let cabs_per_leaf = 1 + rng.below((PORTS - uplinks) as u32) as usize;
    if rng.chance(0.5) {
        // two-stage leaf–spine, single pod
        let max_lpp = PORTS / ups;
        ClosSpec {
            pods: 1,
            leaves_per_pod: 1 + rng.below(max_lpp as u32) as usize,
            spines_per_pod: spp,
            cores: 0,
            uplinks_per_leaf: uplinks,
            cabs_per_leaf,
        }
    } else {
        // three-stage, cores shared across pods
        let cps = 1 + rng.below(2) as usize; // cores owned per spine
        let max_lpp = (PORTS - cps) / ups;
        ClosSpec {
            pods: 2 + rng.below(8) as usize,
            leaves_per_pod: 1 + rng.below(max_lpp as u32) as usize,
            spines_per_pod: spp,
            cores: spp * cps,
            uplinks_per_leaf: uplinks,
            cabs_per_leaf,
        }
    }
}

/// Walk `route` through the port map from `src`'s leaf and require it
/// to terminate exactly at `dst`'s CAB port — the property the HUBs
/// enforce frame by frame at runtime.
fn assert_route_traverses(t: &Topology, src: u16, dst: u16, route: &nectar_wire::route::Route) {
    let (mut hub, _) = t.cab_port[src as usize];
    let hops = route.hops();
    assert!(!hops.is_empty(), "route {src}->{dst} is empty");
    for (i, &hop) in hops.iter().enumerate() {
        assert!((hop as usize) < PORTS, "route {src}->{dst} hop {i} = {hop} out of range");
        match t.port_map[hub as usize][hop as usize] {
            Attachment::Hub { hub: next, .. } => {
                assert!(i + 1 < hops.len(), "route {src}->{dst} ends on a trunk at HUB {hub}");
                hub = next;
            }
            Attachment::Cab(c) => {
                assert_eq!(i + 1, hops.len(), "route {src}->{dst} hits a CAB mid-route");
                assert_eq!(c, dst, "route {src}->{dst} delivered to CAB {c}");
            }
            Attachment::None => {
                panic!("route {src}->{dst} hop {i} exits HUB {hub} port {hop} into nothing")
            }
        }
    }
}

/// Flatten the full route cache (every source) into one byte string:
/// `src, dst, len, hops…` in table order.
fn route_table_bytes(t: &Topology) -> Vec<u8> {
    let mut out = Vec::new();
    for src in 0..t.cabs() as u16 {
        let table = t.routes_from(src).expect("sampled fabrics stay under MAX_HOPS");
        for (dst, r) in &table {
            out.extend_from_slice(&src.to_le_bytes());
            out.extend_from_slice(&dst.to_le_bytes());
            out.push(r.hops().len() as u8);
            out.extend_from_slice(r.hops());
        }
    }
    out
}

#[test]
fn randomized_fabrics_route_every_pair_validly() {
    let mut rng = Pcg32::seeded(0xc105);
    for case in 0..12 {
        let spec = sample_spec(&mut rng);
        let t = Topology::folded_clos(&spec);
        t.validate().unwrap_or_else(|e| panic!("case {case} {spec:?}: {e}"));
        let diameter = t.diameter();
        assert!((1..=5).contains(&diameter), "case {case} {spec:?}: diameter {diameter}");

        // full coverage on small fabrics, a deterministic sample of
        // sources on big ones — every destination either way
        let cabs = t.cabs() as u16;
        let srcs: Vec<u16> =
            if cabs <= 40 { (0..cabs).collect() } else { (0..8).map(|i| i * (cabs / 8)).collect() };
        for &src in &srcs {
            let table = t.routes_from(src).unwrap();
            assert_eq!(
                table.len(),
                cabs as usize - 1,
                "case {case} {spec:?}: src {src} cannot reach everyone"
            );
            for (&dst, r) in &table {
                assert!(
                    r.hops().len() <= diameter,
                    "case {case} {spec:?}: route {src}->{dst} longer than the diameter"
                );
                assert_route_traverses(&t, src, dst, r);
                // the cache agrees with the per-pair computation
                assert_eq!(r, &t.route(src, dst).unwrap());
            }
        }
    }
}

#[test]
fn reachability_is_symmetric_with_equal_path_lengths() {
    let mut rng = Pcg32::seeded(0x5e11);
    for _ in 0..8 {
        let spec = sample_spec(&mut rng);
        let t = Topology::folded_clos(&spec);
        let cabs = t.cabs() as u16;
        let step = (cabs as usize / 12).max(1) as u16;
        let mut a = 0u16;
        while a < cabs {
            let mut b = a + 1;
            while b < cabs {
                let ab = t.route(a, b).expect("forward route");
                let ba = t.route(b, a).expect("reverse route");
                // trunks are bidirectional pairs, so BFS shortest-path
                // lengths agree in both directions
                assert_eq!(
                    ab.hops().len(),
                    ba.hops().len(),
                    "{spec:?}: asymmetric path length {a}<->{b}"
                );
                b += step;
            }
            a += step;
        }
    }
}

#[test]
fn route_cache_is_byte_identical_run_to_run() {
    let mut rng = Pcg32::seeded(0xcac4e);
    for _ in 0..4 {
        let spec = sample_spec(&mut rng);
        // two independently built fabrics from the same spec
        let t1 = Topology::folded_clos(&spec);
        let t2 = Topology::folded_clos(&spec);
        let b1 = route_table_bytes(&t1);
        assert!(!b1.is_empty());
        assert_eq!(b1, route_table_bytes(&t2), "{spec:?}: route cache not deterministic");
    }
}
