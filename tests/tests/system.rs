//! Whole-system integration tests: deployment scale, fault injection,
//! multi-hop routing, ICMP, determinism.

use nectar::config::{Config, FaultPlan};
use nectar::scenario::{
    CabEcho, CabPinger, CabRmpStreamer, CabSink, EchoServer, HostSink, Pinger, Transport,
};
use nectar::topology::Topology;
use nectar::world::World;
use nectar_cab::HostOpMode;
use nectar_sim::{SimDuration, SimTime};

fn until(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

#[test]
fn production_deployment_26_hosts_2_hubs() {
    // §6: "the prototype system consists of 2 HUBs and 26 hosts in
    // full-time use"
    let (mut world, mut sim) = World::new(Config::default(), Topology::two_hubs(26));
    // every CAB answers datagram pings; every CAB pings its antipode
    let mut services = Vec::new();
    for i in 0..26 {
        let svc = world.cabs[i].shared.create_mailbox(false, HostOpMode::SharedMemory);
        world.cabs[i]
            .fork_app(Box::new(CabEcho { transport: Transport::Datagram, recv_mbox: svc }));
        services.push(svc);
    }
    let mut dones = Vec::new();
    for i in 0..26u16 {
        let dst = (i + 13) % 26;
        let reply = world.cabs[i as usize].shared.create_mailbox(false, HostOpMode::SharedMemory);
        let (p, _, done) =
            CabPinger::new(Transport::Datagram, (dst, services[dst as usize]), reply, 32, 5);
        world.cabs[i as usize].fork_app(Box::new(p));
        dones.push((i, done));
    }
    world.run_until(&mut sim, until(30));
    for (i, done) in &dones {
        assert!(done.get(), "CAB {i} did not complete its pings");
    }
    // traffic crossed the trunk in both directions
    assert!(world.hubs[0].stats().forwarded > 0);
    assert!(world.hubs[1].stats().forwarded > 0);
}

#[test]
fn multi_hop_chain_routing() {
    // four HUBs in a chain: frames consume one route byte per HUB
    let (mut world, mut sim) = World::new(Config::default(), Topology::chain(4, 3));
    let n = world.cabs.len();
    assert_eq!(n, 12);
    let svc = world.cabs[n - 1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    world.cabs[n - 1]
        .fork_app(Box::new(CabEcho { transport: Transport::Datagram, recv_mbox: svc }));
    let reply = world.cabs[0].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let (p, rtts, done) = CabPinger::new(Transport::Datagram, ((n - 1) as u16, svc), reply, 32, 10);
    world.cabs[0].fork_app(Box::new(p));
    world.run_until(&mut sim, until(10));
    assert!(done.get());
    // each of the four HUBs forwarded the pings
    for h in 0..4 {
        assert!(world.hubs[h].stats().forwarded >= 10, "hub {h} saw no traffic");
    }
    let m = rtts.borrow_mut().median().as_micros_f64();
    // three extra HUB transits each way vs single hub: small but real
    assert!((100.0..400.0).contains(&m), "median={m}");
}

#[test]
fn datagrams_are_lossy_but_rmp_is_reliable_under_loss() {
    let config = Config { faults: FaultPlan { loss: 0.10, corrupt: 0.0 }, ..Default::default() };
    let (mut world, mut sim) = World::single_hub(config, 2);
    // RMP stream must deliver everything despite 10% frame loss
    let sink_mbox = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let src_mbox = world.cabs[0].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let total = 200_000u64;
    let (sink, _, received, done) = CabSink::new(sink_mbox, total);
    world.cabs[1].fork_app(Box::new(sink));
    let (streamer, _) = CabRmpStreamer::new((1, sink_mbox), src_mbox, 4096, total);
    world.cabs[0].fork_app(Box::new(streamer));
    world.run_until(&mut sim, until(60));
    assert!(done.get(), "RMP delivered only {} of {total}", received.get());
    assert!(world.stats.frames_lost_injected > 0, "loss injection never fired");
    // retransmissions happened
    let s = world.cabs[0].proto.rmp_tx.values().next().unwrap().stats();
    assert!(s.retransmits > 0);
}

#[test]
fn corruption_is_dropped_by_crc_and_tcp_recovers() {
    let config = Config { faults: FaultPlan { loss: 0.0, corrupt: 0.05 }, ..Default::default() };
    let (mut world, mut sim) = World::single_hub(config, 2);
    let accept = world.cabs[1].shared.create_mailbox(true, HostOpMode::SharedMemory);
    let data = world.cabs[1].shared.create_mailbox(true, HostOpMode::SharedMemory);
    let listen = nectar_cab::reqs::TcpCtl::Listen { port: 5000, accept_mbox: accept }.encode();
    let msg = world.cabs[1].shared.begin_put(nectar_cab::reqs::MB_TCP_CTL, listen.len()).unwrap();
    world.cabs[1].shared.msg_write(&msg, 0, &listen);
    world.cabs[1].shared.end_put(nectar_cab::reqs::MB_TCP_CTL, msg);
    let total = 100_000u64;
    let (sink, _, received, done) = HostSink::new(data, Some(accept), total);
    world.hosts[1].spawn(Box::new(sink));
    let src = world.cabs[0].shared.create_mailbox(true, HostOpMode::SharedMemory);
    let (streamer, _) = nectar::scenario::HostTcpStreamer::new(1, 5000, src, 8192, total);
    world.hosts[0].spawn(Box::new(streamer));
    world.run_until(&mut sim, until(120));
    assert!(done.get(), "TCP delivered only {} of {total}", received.get());
    assert!(world.stats.frames_corrupted_injected > 0);
    let crc_drops: u64 = world.cabs.iter().map(|c| c.stats.frames_crc_dropped).sum();
    assert!(crc_drops > 0, "hardware CRC must have caught corrupted frames");
}

#[test]
fn icmp_echo_end_to_end() {
    // ping CAB 1 from a thread on CAB 0 through IP/ICMP
    use nectar_cab::proto::{ip_for_cab, ip_output};
    use nectar_cab::{CabThread, Cx, Step, WouldBlock};
    use nectar_wire::icmp::IcmpMessage;
    use nectar_wire::ipv4::IpProtocol;

    struct PingThread {
        reply_mbox: u16,
        sent: bool,
        got: nectar::scenario::SharedFlag,
    }
    impl CabThread for PingThread {
        fn run(&mut self, cx: &mut Cx<'_>) -> Step {
            if !self.sent {
                self.sent = true;
                cx.proto.ping_mbox = Some(self.reply_mbox);
                let req = IcmpMessage::EchoRequest { ident: 7, seq: 1, payload: b"ping".to_vec() };
                ip_output(cx, ip_for_cab(1), IpProtocol::ICMP, &req.build());
                return Step::Yield;
            }
            match cx.begin_get(self.reply_mbox) {
                Ok(m) => {
                    let bytes = cx.shared.msg_bytes(&m).to_vec();
                    cx.end_get(self.reply_mbox, m);
                    // [src ip; 4][ident u16][seq u16]
                    assert_eq!(&bytes[..4], &ip_for_cab(1).octets());
                    assert_eq!(u16::from_be_bytes([bytes[4], bytes[5]]), 7);
                    self.got.set(true);
                    Step::Done
                }
                Err(WouldBlock::Empty(c)) | Err(WouldBlock::NoSpace(c)) => Step::Block(c),
            }
        }
    }
    let (mut world, mut sim) = World::single_hub(Config::default(), 2);
    let reply = world.cabs[0].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let got = std::rc::Rc::new(std::cell::Cell::new(false));
    world.cabs[0].fork_app(Box::new(PingThread {
        reply_mbox: reply,
        sent: false,
        got: got.clone(),
    }));
    world.run_until(&mut sim, until(5));
    assert!(got.get(), "no echo reply");
    // the responder's ICMP ran as an upcall, not a thread
    assert!(world.cabs[1].rt.upcalls_run > 0);
}

#[test]
fn deterministic_replay_same_seed_same_trace() {
    let run = || {
        let config = Config { trace: true, ..Default::default() };
        let (mut world, mut sim) = World::single_hub(config, 2);
        let svc = world.cabs[1].shared.create_mailbox(true, HostOpMode::SharedMemory);
        let reply = world.cabs[0].shared.create_mailbox(true, HostOpMode::SharedMemory);
        let (echo, _) = EchoServer::new(Transport::Datagram, svc, 0, false);
        world.hosts[1].spawn(Box::new(echo));
        let (ping, _, done) = Pinger::new(Transport::Datagram, (1, svc), reply, 0, 32, 10, false);
        world.hosts[0].spawn(Box::new(ping));
        world.run_until(&mut sim, until(5));
        assert!(done.get());
        world
            .trace
            .events()
            .iter()
            .map(|e| (e.at.as_nanos(), e.node, e.tag.to_string(), e.info))
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    assert_eq!(a, b, "two runs with the same seed must be identical");
    assert!(!a.is_empty());
}

#[test]
fn different_seeds_change_fault_patterns_not_correctness() {
    for seed in [1u64, 2, 3] {
        let config =
            Config { faults: FaultPlan { loss: 0.05, corrupt: 0.02 }, seed, ..Default::default() };
        let (mut world, mut sim) = World::single_hub(config, 2);
        let sink_mbox = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
        let src_mbox = world.cabs[0].shared.create_mailbox(false, HostOpMode::SharedMemory);
        let total = 50_000u64;
        let (sink, _, received, done) = CabSink::new(sink_mbox, total);
        world.cabs[1].fork_app(Box::new(sink));
        let (streamer, _) = CabRmpStreamer::new((1, sink_mbox), src_mbox, 2048, total);
        world.cabs[0].fork_app(Box::new(streamer));
        world.run_until(&mut sim, until(60));
        assert!(done.get(), "seed {seed}: {} of {total}", received.get());
    }
}

#[test]
fn mixed_concurrent_traffic() {
    // RMP stream and datagram ping-pong share the same pair of CABs:
    // the latency path keeps working while bulk data flows
    let (mut world, mut sim) = World::single_hub(Config::default(), 2);
    let sink_mbox = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let src_mbox = world.cabs[0].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let (sink, _, _, stream_done) = CabSink::new(sink_mbox, 500_000);
    world.cabs[1].fork_app(Box::new(sink));
    let (streamer, _) = CabRmpStreamer::new((1, sink_mbox), src_mbox, 8192, 500_000);
    world.cabs[0].fork_app(Box::new(streamer));

    let svc = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    world.cabs[1].fork_app(Box::new(CabEcho { transport: Transport::Datagram, recv_mbox: svc }));
    let reply = world.cabs[0].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let (p, rtts, ping_done) = CabPinger::new(Transport::Datagram, (1, svc), reply, 32, 20);
    world.cabs[0].fork_app(Box::new(p));

    world.run_until(&mut sim, until(30));
    assert!(stream_done.get());
    assert!(ping_done.get());
    let m = rtts.borrow_mut().median().as_micros_f64();
    // latency under load: worse than idle (142 us) but bounded (the
    // 8 KiB frames add up to ~660 us of fiber occupancy per direction)
    assert!(m < 2_000.0, "median under load = {m}");
}

#[test]
fn rpc_mode_mailbox_datagram_roundtrip() {
    // a full datagram ping-pong where the pinger's request mailbox is
    // driven in RPC mode would need an RPC-mode Pinger; instead verify
    // the RPC ops work against a live protocol mailbox end to end
    use nectar_cab::shared::SigEntry;
    let (mut world, mut sim) = World::single_hub(Config::default(), 2);
    let dst = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    world.cabs[1].fork_app(Box::new(CabEcho { transport: Transport::Datagram, recv_mbox: dst }));

    // hand-drive the host side: RPC Begin_Put into MB_DG_SEND
    let reply_sync = world.cabs[0].shared.sync_alloc();
    let req = nectar_cab::reqs::SendReq { dst_cab: 1, dst_mbox: dst, src_mbox: 0 }
        .encode(&[0u8, 0, 0, 0]);
    world.cabs[0].shared.cab_sigq.push_back(SigEntry::RpcBeginPut {
        mbox: nectar_cab::reqs::MB_DG_SEND,
        size: req.len() as u32,
        reply: reply_sync,
    });
    world.cabs[0].host_interrupt(SimTime::ZERO);
    sim.immediately(|w, s| nectar::world::kick_cab(w, s, 0));
    world.run_until(&mut sim, until(1));
    let handle = world.cabs[0].shared.sync_read(reply_sync).expect("begin_put done");
    assert!(handle > 0);
    let m = world.cabs[0].shared.handles.get(handle - 1).unwrap();
    world.cabs[0].shared.mem.dma_write(m.data, &req);
    let done_sync = world.cabs[0].shared.sync_alloc();
    world.cabs[0].shared.cab_sigq.push_back(SigEntry::RpcEndPut {
        mbox: nectar_cab::reqs::MB_DG_SEND,
        msg_index: handle - 1,
        reply: done_sync,
    });
    let t = sim.now();
    world.cabs[0].host_interrupt(t);
    sim.immediately(|w, s| nectar::world::kick_cab(w, s, 0));
    world.run_until(&mut sim, until(2));
    // the datagram went out and was echoed back to mailbox 0 on CAB 0
    // (src_mbox 0 = MB_DG_SEND is where the echo lands; just verify the
    // send thread consumed the request and transmitted)
    assert!(world.cabs[0].proto.stats.datagrams_out >= 1);
    assert!(world.cabs[1].proto.stats.datagrams_in >= 1);
}
