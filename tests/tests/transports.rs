//! Full-system integration tests: every transport end-to-end between
//! two hosts through their CABs and a HUB.

use nectar::config::Config;
use nectar::fault::{FaultScript, LinkId, LinkPlan, NodeRef};
use nectar::scenario::{
    CabRmpStreamer, CabSink, CabTcpListener, CabTcpStreamer, EchoServer, Pinger, Transport,
};
use nectar::world::World;
use nectar_cab::HostOpMode;
use nectar_sim::{SimDuration, SimTime};

fn ping_pong(transport: Transport, size: usize, count: u32, block: bool) -> (f64, bool) {
    let config = Config::default();
    let (mut world, mut sim) = World::single_hub(config, 2);
    let svc = world.cabs[1].shared.create_mailbox(true, HostOpMode::SharedMemory);
    let reply = world.cabs[0].shared.create_mailbox(true, HostOpMode::SharedMemory);
    let port = 7000u16;
    let server = match transport {
        Transport::Udp => (1u16, port),
        _ => (1u16, svc),
    };
    let (echo, _) = EchoServer::new(transport, svc, port, block);
    world.hosts[1].spawn(Box::new(echo));
    let (ping, rtts, done) = Pinger::new(transport, server, reply, 7001, size, count, block);
    world.hosts[0].spawn(Box::new(ping));
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(30));
    let median = rtts.borrow_mut().median().as_micros_f64();
    (median, done.get())
}

#[test]
fn datagram_ping_pong_completes() {
    let (median, done) = ping_pong(Transport::Datagram, 32, 20, false);
    assert!(done, "pinger did not finish");
    println!("datagram RTT median = {median:.1} us");
    // Table 1 anchor: 325 us host-to-host round trip (±40 % band for
    // the simulation)
    assert!((200.0..500.0).contains(&median), "median={median}");
}

#[test]
fn rmp_ping_pong_completes() {
    let (median, done) = ping_pong(Transport::Rmp, 32, 20, false);
    assert!(done);
    println!("rmp RTT median = {median:.1} us");
    assert!((200.0..800.0).contains(&median), "median={median}");
}

#[test]
fn reqresp_ping_pong_completes() {
    let (median, done) = ping_pong(Transport::ReqResp, 32, 20, false);
    assert!(done);
    println!("rr RTT median = {median:.1} us");
    // abstract: RPC < 500 us
    assert!(median < 500.0, "median={median}");
}

#[test]
fn udp_ping_pong_completes() {
    let (median, done) = ping_pong(Transport::Udp, 32, 20, false);
    assert!(done);
    println!("udp RTT median = {median:.1} us");
    assert!((300.0..1200.0).contains(&median), "median={median}");
}

#[test]
fn blocking_wait_also_works_and_is_slower() {
    let (poll_median, d1) = ping_pong(Transport::Datagram, 32, 10, false);
    let (block_median, d2) = ping_pong(Transport::Datagram, 32, 10, true);
    assert!(d1 && d2);
    println!("poll={poll_median:.1} us block={block_median:.1} us");
    assert!(
        block_median > poll_median,
        "blocking path must pay syscall+interrupt costs: poll={poll_median} block={block_median}"
    );
}

/// A 50 ms dark-fiber window on the sender's uplink, opening just
/// after the transfer starts.
fn outage_script() -> FaultScript {
    let from = SimTime::ZERO + SimDuration::from_micros(100);
    let until = from + SimDuration::from_millis(50);
    FaultScript {
        links: vec![(
            LinkId::new(NodeRef::Cab(0), NodeRef::Hub(0)),
            LinkPlan { down: vec![(from, until)], ..LinkPlan::default() },
        )],
        outages: Vec::new(),
    }
}

#[test]
fn rmp_stream_survives_a_50ms_link_outage() {
    // The paper's constant 5 ms timeout with 10 retries would give up
    // inside the window — the chaos-tuned backoff must outlive it.
    let mut config = Config::default();
    config.rmp.rto_max = SimDuration::from_millis(20);
    config.rmp.max_retries = 64;
    let (mut world, mut sim) = World::single_hub(config, 2);
    world.install_fault_script(&mut sim, &outage_script());

    let total_bytes = 64 * 1024u64;
    let sink_mbox = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let src_mbox = world.cabs[0].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let (sink, _, received, done) = CabSink::new(sink_mbox, total_bytes);
    world.cabs[1].fork_app(Box::new(sink));
    let (streamer, _) = CabRmpStreamer::new((1, sink_mbox), src_mbox, 1024, total_bytes);
    world.cabs[0].fork_app(Box::new(streamer));
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(30));

    assert!(done.get(), "RMP delivered only {} of {total_bytes}", received.get());
    assert_eq!(received.get(), total_bytes);
    let snap = world.metrics();
    assert!(snap.get("net/fault/frames_down_dropped").unwrap() > 0, "outage never bit");
    assert!(
        snap.get("net/link/cab0-hub0/frames_down_dropped").unwrap() > 0,
        "per-link ledger missed the outage"
    );
    assert!(
        snap.get("node/0/rmp/retransmits").unwrap() > 0,
        "recovery must come from RMP retransmission"
    );
}

#[test]
fn tcp_stream_survives_a_50ms_link_outage() {
    let (mut world, mut sim) = World::single_hub(Config::default(), 2);
    world.install_fault_script(&mut sim, &outage_script());

    let total_bytes = 64 * 1024u64;
    let sink_mbox = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let accept = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let (sink, _, received, done) = CabSink::new(sink_mbox, total_bytes);
    world.cabs[1].fork_app(Box::new(CabTcpListener::new(5000, accept, sink_mbox)));
    world.cabs[1].fork_app(Box::new(sink));
    let (streamer, _) = CabTcpStreamer::new(1, 5000, 1024, total_bytes);
    world.cabs[0].fork_app(Box::new(streamer));
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(30));

    assert!(done.get(), "TCP delivered only {} of {total_bytes}", received.get());
    assert_eq!(received.get(), total_bytes);
    let snap = world.metrics();
    assert!(snap.get("net/fault/frames_down_dropped").unwrap() > 0, "outage never bit");
    assert!(
        snap.get("node/0/tcp/retransmits").unwrap() > 0,
        "recovery must come from TCP retransmission"
    );
}

#[test]
fn larger_messages_cost_more_vme_time() {
    let (small, _) = ping_pong(Transport::Datagram, 32, 10, false);
    let (large, _) = ping_pong(Transport::Datagram, 1024, 10, false);
    println!("32B={small:.1}us 1KiB={large:.1}us");
    // 2 x (1024-32)/4 words x 1 us ≈ 500 us extra per direction
    assert!(large > small + 400.0, "small={small} large={large}");
}
