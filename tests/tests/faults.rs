//! Fault-engine boundary properties: the two ends of the loss dial.
//!
//! `loss = 1.0` on every fiber must black the fabric out completely and
//! account for every launched frame as injected loss; `loss = 0.0`
//! must leave the engine disabled and the schedule byte-identical to
//! the committed fault-free fixture.

use nectar::config::Config;
use nectar::fault::{FaultScript, LinkPlan};
use nectar::scenario::two_hub_pair_load;
use nectar::topology::Topology;
use nectar::world::World;
use nectar_sim::{SimDuration, SimTime};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/twohub_metrics.json");

#[test]
fn total_loss_delivers_nothing_and_accounts_for_every_frame() {
    let topo = Topology::two_hubs(26);
    let script = FaultScript::uniform(&topo, LinkPlan { loss: 1.0, ..LinkPlan::default() });
    let (mut world, mut sim) = World::new(Config::default(), Topology::two_hubs(26));
    world.install_fault_script(&mut sim, &script);
    let handles = two_hub_pair_load(&mut world, 64 * 1024, 1024);
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_millis(500));

    for (i, (received, done)) in handles.iter().enumerate() {
        assert_eq!(received.get(), 0, "stream {i} delivered bytes through a dead fabric");
        assert!(!done.get(), "stream {i} completed through a dead fabric");
    }

    let snap = world.metrics();
    let launched = snap.get("net/frames_launched").unwrap();
    assert!(launched > 0, "no frames were even launched");
    // every frame died at its entry fiber: injected loss is the only sink
    assert_eq!(snap.get("net/frames_lost_injected").unwrap(), launched);
    assert_eq!(
        snap.get("net/bytes_lost_injected").unwrap(),
        snap.get("net/bytes_launched").unwrap()
    );
    assert_eq!(snap.sum_matching("node/", "/link/rx_frames"), 0);
    // the per-link ledger carries the same total
    assert_eq!(snap.sum_matching("net/link/", "/frames_lost"), launched);
}

#[test]
fn noop_script_keeps_the_fault_free_fixture_byte_identical() {
    // A script of all-zero plans must prune to nothing at install time:
    // engine disabled, no fault RNG draws, and the exact event schedule
    // of the pinned fault-free run — compared byte-for-byte against the
    // same fixture `simkernel.rs` pins.
    let topo = Topology::two_hubs(26);
    let script = FaultScript::uniform(&topo, LinkPlan { loss: 0.0, ..LinkPlan::default() });
    assert!(script.is_empty());

    let (mut world, mut sim) = World::new(Config::default(), Topology::two_hubs(26));
    world.install_fault_script(&mut sim, &script);
    assert!(!world.faults.enabled(), "a no-op script must leave the engine disabled");
    let _handles = two_hub_pair_load(&mut world, u64::MAX / 2, 1024);
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_millis(10));

    let want = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing; run simkernel with NECTAR_BLESS=1 to create it");
    assert!(world.metrics_json() == want, "a no-op fault script perturbed the fault-free schedule");
}
