//! Kernel-swap determinism regression.
//!
//! The simulation kernel (event arena + timer wheel) must never change
//! *what* the simulation computes — only how fast. This test runs the
//! paper's 26-host two-HUB deployment under the pairwise RMP/TCP load
//! for a fixed window and compares the full `metrics_json()` snapshot
//! byte-for-byte against a committed fixture. Any scheduler change
//! that reorders same-instant events, shifts a timer, or perturbs a
//! single counter shows up as a diff here.
//!
//! Regenerate the fixture (after an *intentional* observable change)
//! with:
//!
//!     NECTAR_BLESS=1 cargo test -p nectar-integration --test simkernel

use nectar::config::Config;
use nectar::scenario::two_hub_pair_load;
use nectar::topology::Topology;
use nectar::world::World;
use nectar_sim::{SimDuration, SimTime};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/twohub_metrics.json");

/// One deterministic run of the 26-host deployment: 13 streams, 10 ms.
fn snapshot() -> String {
    let (mut world, mut sim) = World::new(Config::default(), Topology::two_hubs(26));
    let _handles = two_hub_pair_load(&mut world, u64::MAX / 2, 1024);
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_millis(10));
    world.metrics_json()
}

#[test]
fn twohub_metrics_snapshot_is_byte_identical() {
    let got = snapshot();
    if std::env::var("NECTAR_BLESS").is_ok() {
        std::fs::write(FIXTURE, &got).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing; run with NECTAR_BLESS=1 to create it");
    assert!(
        got == want,
        "26-host metrics snapshot diverged from the committed fixture.\n\
         The simulation kernel changed observable behaviour. If that was\n\
         intentional, re-bless with NECTAR_BLESS=1.\n\
         got {} bytes, want {} bytes",
        got.len(),
        want.len()
    );
}

#[test]
fn twohub_snapshot_is_reproducible_in_process() {
    // Two fresh worlds in the same process must agree exactly — catches
    // any accidental global state (thread-locals, map iteration order)
    // sneaking into the kernel.
    assert_eq!(snapshot(), snapshot());
}
