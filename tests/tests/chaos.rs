//! Chaos invariant harness: randomized per-link fault schedules
//! against the §6 production deployment (26 hosts, 2 HUBs).
//!
//! Every case draws a [`FaultScript`] — per-fiber loss, corruption,
//! Gilbert–Elliott bursts, link down-windows and CAB blackouts, all
//! healed well before the horizon — installs it, drives the pairwise
//! RMP/TCP load, and asserts the global invariants:
//!
//! 1. **Progress**: the event queue drains before the horizon (no
//!    scheduler deadlock, no timer storm).
//! 2. **Post-heal delivery**: every stream completes with exactly its
//!    payload byte count once the faults lift.
//! 3. **Conservation**: every launched frame met exactly one fate —
//!    injected loss, a down/dark drop, a HUB drop, a dead-end port, an
//!    RX-FIFO overflow, or delivery into a CAB's input FIFO.
//! 4. **Sequence sanity**: per TCP socket, `snd_una ≤ snd_nxt`, and
//!    `snd_una`/`rcv_nxt` only move forward between samples.
//!
//! A failing schedule is shrunk (greedy clause removal) to a minimal
//! script and printed along with the replay seed; re-run one case with
//! `NECTAR_CHECK_SEED=<seed>`, and scale the sweep with
//! `NECTAR_CHAOS_CASES=<n>`.

use nectar::config::Config;
use nectar::fault::{FaultScript, LinkPlan};
use nectar::scenario::two_hub_pair_load;
use nectar::shard::ShardedWorld;
use nectar::topology::Topology;
use nectar::world::World;
use nectar_sim::{check, SimDuration, SimTime};
use nectar_stack::tcp::TcpState;
use nectar_wire::tcp::SeqNum;

/// Payload per stream — small enough for a debug-build sweep, large
/// enough that every stream spans many fragments/segments.
const BYTES_PER_PAIR: u64 = 12 * 1024;

/// All injected faults heal by here (enforced by the generator).
fn heal_time() -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(40)
}

/// Hard horizon: with every fault healed at 40 ms, all recovery paths
/// (RMP backoff, TCP RTO doubling, TIME_WAIT drain) fit long before
/// this; hitting it with events still queued is a deadlock/storm.
fn horizon() -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(60)
}

/// Chaos tuning: the paper's constant 5 ms RMP timeout and 10 retries
/// give up after 50 ms of darkness — under scheduled outages the
/// channel must instead back off and outlive the window.
fn chaos_config(seed: u64) -> Config {
    let mut config = Config { seed, ..Config::default() };
    config.rmp.rto_max = SimDuration::from_millis(20);
    config.rmp.max_retries = 64;
    // Every chaos case runs with the conformance oracle armed: on top
    // of the four harness invariants below, each socket carries its
    // own monitor (sequence-space sanity, legal state transitions,
    // emission bounds) and reassembly/RMP delivery are cross-checked,
    // all panicking with a replay seed on violation.
    config.oracle = Some(true);
    config
}

/// One socket's identity, state and `(snd_una, snd_nxt, rcv_nxt)`.
type SocketSample = ((usize, u32), TcpState, (SeqNum, SeqNum, SeqNum));

/// Sample every TCP socket across the fabric.
fn seq_sample(world: &World) -> Vec<SocketSample> {
    let mut out = Vec::new();
    for (i, cab) in world.cabs.iter().enumerate() {
        for (id, sock) in cab.proto.tcp.sockets() {
            out.push(((i, *id), sock.state(), sock.seq_state()));
        }
    }
    out
}

/// The ISSUE 8 transport fast path on top of the chaos tuning:
/// windowed RMP, TCP SACK + window scaling, and batched host I/O, all
/// under the same armed oracle. Chaos is exactly where these paths
/// earn their keep — loss and outages are what exercise selective
/// acks and scoreboard retransmission.
fn fastpath_config(seed: u64) -> Config {
    let mut config = chaos_config(seed);
    config.rmp.window = 8;
    config.tcp.sack = true;
    config.tcp.wscale = Some(2);
    config.doorbell_coalesce = true;
    config.mailbox_burst = 16;
    config
}

/// Run one fault schedule to quiescence and check every invariant.
/// `Err` carries a human-readable violation for the shrink report.
fn run_case(seed: u64, script: &FaultScript) -> Result<(), String> {
    run_case_with(chaos_config(seed), script)
}

/// [`run_case`] with an explicit world configuration.
fn run_case_with(config: Config, script: &FaultScript) -> Result<(), String> {
    let (mut world, mut sim) = World::new(config, Topology::two_hubs(26));
    world.install_fault_script(&mut sim, script);
    let handles = two_hub_pair_load(&mut world, BYTES_PER_PAIR, 1024);

    world.run_until(&mut sim, heal_time());
    let mid = seq_sample(&world);
    world.run_until(&mut sim, horizon());
    let end = seq_sample(&world);

    // 1. progress: quiescent before the horizon
    if sim.pending() != 0 {
        return Err(format!("{} events still pending at the horizon", sim.pending()));
    }

    // 2. post-heal delivery, exact byte counts
    for (i, (received, done)) in handles.iter().enumerate() {
        if !done.get() || received.get() != BYTES_PER_PAIR {
            return Err(format!(
                "stream {i} delivered {} of {BYTES_PER_PAIR} bytes (done={})",
                received.get(),
                done.get()
            ));
        }
    }

    // 3. frames/bytes conservation, with the fault-engine sink terms
    let snap = world.metrics();
    let g = |k: &str| snap.get(k).unwrap_or(0);
    let launched = g("net/frames_launched");
    let sinks = g("net/frames_lost_injected")
        + g("net/frames_dead_end")
        + g("net/fault/frames_down_dropped")
        + snap.sum_matching("hub/", "/dropped_frames")
        + snap.sum_matching("node/", "/link/rx_frames")
        + snap.sum_matching("node/", "/link/rx_fifo_dropped_frames");
    if launched != sinks {
        return Err(format!("frame conservation broke: launched={launched} sinks={sinks}"));
    }
    let bytes_launched = g("net/bytes_launched");
    let byte_sinks = g("net/bytes_lost_injected")
        + g("net/bytes_dead_end")
        + g("net/fault/bytes_down_dropped")
        + snap.sum_matching("hub/", "/dropped_bytes")
        + snap.sum_matching("node/", "/link/rx_bytes")
        + snap.sum_matching("node/", "/link/rx_fifo_dropped_bytes");
    if bytes_launched != byte_sinks {
        return Err(format!(
            "byte conservation broke: launched={bytes_launched} sinks={byte_sinks}"
        ));
    }

    // 4. sequence sanity: per socket, and forward-only between samples.
    // The cross-sample check only applies once the connection was
    // synchronized at the first sample: before the handshake completes
    // `rcv_nxt` is a placeholder, not a sequence position.
    for sample in [&mid, &end] {
        for ((cab, id), _, (snd_una, snd_nxt, _)) in sample.iter() {
            if !snd_una.before_eq(*snd_nxt) {
                return Err(format!(
                    "cab {cab} socket {id}: snd_una {snd_una:?} ran past snd_nxt {snd_nxt:?}"
                ));
            }
        }
    }
    for (key, state, (una_mid, _, rcv_mid)) in mid.iter() {
        if !state.synchronized() {
            continue;
        }
        if let Some((_, _, (una_end, _, rcv_end))) = end.iter().find(|(k, _, _)| k == key) {
            if !una_mid.before_eq(*una_end) || !rcv_mid.before_eq(*rcv_end) {
                return Err(format!(
                    "cab {} socket {}: sequence state moved backwards",
                    key.0, key.1
                ));
            }
        }
    }
    Ok(())
}

#[test]
fn chaos_randomized_fault_schedules_preserve_invariants() {
    // ≥20 randomized schedules by default; NECTAR_CHAOS_CASES overrides
    // (CI smoke runs 5, the full sweep runs more). NECTAR_CHECK_SEED
    // replays a single failing case exactly.
    let n = check::cases_from_env("NECTAR_CHAOS_CASES", 20);
    let topo = Topology::two_hubs(26);
    check::cases(n, |g| {
        let seed = g.u64();
        let script = FaultScript::random(g, &topo, heal_time());
        if let Err(violation) = run_case(seed, &script) {
            // shrink to a minimal script that still breaks an invariant
            let minimal =
                check::shrink(script, |s| s.shrink_candidates(), |s| run_case(seed, s).is_err());
            let min_violation = run_case(seed, &minimal).unwrap_err();
            panic!(
                "chaos invariant violated: {violation}\n\
                 minimal fault script ({min_violation}):\n{minimal:#?}"
            );
        }
    });
}

/// `run_case` under the deterministic sharded kernel: same schedule,
/// same invariants, the world split across `shards` event queues. Every
/// shard installs the script and deploys the full load (identical boot
/// recipe); only owned nodes execute, so per-pair byte counts are
/// summed across shards and each socket's samples are keyed by shard.
fn run_case_sharded(seed: u64, script: &FaultScript, shards: usize) -> Result<(), String> {
    let mut handle_sets = Vec::new();
    let mut sw = ShardedWorld::build(shards, || {
        let (mut world, mut sim) = World::new(chaos_config(seed), Topology::two_hubs(26));
        world.install_fault_script(&mut sim, script);
        handle_sets.push(two_hub_pair_load(&mut world, BYTES_PER_PAIR, 1024));
        (world, sim)
    });

    let sample_all = |sw: &ShardedWorld| -> Vec<(usize, SocketSample)> {
        sw.worlds
            .iter()
            .enumerate()
            .flat_map(|(s, w)| seq_sample(w).into_iter().map(move |x| (s, x)))
            .collect()
    };
    sw.run_until(heal_time());
    let mid = sample_all(&sw);
    sw.run_until(horizon());
    let end = sample_all(&sw);

    // 1. progress across every shard queue
    if sw.pending() != 0 {
        return Err(format!("{} events still pending at the horizon", sw.pending()));
    }

    // 2. post-heal delivery: pair i's bytes land on whichever shard
    // owns the receiving CAB, so sum the replicated handles
    let pairs = handle_sets[0].len();
    for i in 0..pairs {
        let received: u64 = handle_sets.iter().map(|h| h[i].0.get()).sum();
        let done = handle_sets.iter().any(|h| h[i].1.get());
        if !done || received != BYTES_PER_PAIR {
            return Err(format!(
                "stream {i} delivered {received} of {BYTES_PER_PAIR} bytes (done={done})"
            ));
        }
    }

    // 3. conservation on the merged snapshot
    let snap = sw.metrics();
    let g = |k: &str| snap.get(k).unwrap_or(0);
    let launched = g("net/frames_launched");
    let sinks = g("net/frames_lost_injected")
        + g("net/frames_dead_end")
        + g("net/fault/frames_down_dropped")
        + snap.sum_matching("hub/", "/dropped_frames")
        + snap.sum_matching("node/", "/link/rx_frames")
        + snap.sum_matching("node/", "/link/rx_fifo_dropped_frames");
    if launched != sinks {
        return Err(format!("frame conservation broke: launched={launched} sinks={sinks}"));
    }

    // 4. sequence sanity per (shard, socket)
    for sample in [&mid, &end] {
        for (shard, ((cab, id), _, (snd_una, snd_nxt, _))) in sample.iter() {
            if !snd_una.before_eq(*snd_nxt) {
                return Err(format!(
                    "shard {shard} cab {cab} socket {id}: snd_una {snd_una:?} ran past \
                     snd_nxt {snd_nxt:?}"
                ));
            }
        }
    }
    for (shard, (key, state, (una_mid, _, rcv_mid))) in mid.iter() {
        if !state.synchronized() {
            continue;
        }
        if let Some((_, (_, _, (una_end, _, rcv_end)))) =
            end.iter().find(|(s, (k, _, _))| s == shard && k == key)
        {
            if !una_mid.before_eq(*una_end) || !rcv_mid.before_eq(*rcv_end) {
                return Err(format!(
                    "shard {shard} cab {} socket {}: sequence state moved backwards",
                    key.0, key.1
                ));
            }
        }
    }
    Ok(())
}

#[test]
fn chaos_sweep_stays_green_at_four_shards() {
    // the same randomized sweep, each schedule run under the
    // deterministic sharded kernel at shards=4 (per-node fallback:
    // every CAB↔HUB fiber is a shard boundary). Replay one case with
    // NECTAR_CHECK_SEED=<seed>; scale with NECTAR_CHAOS_CASES.
    let n = check::cases_from_env("NECTAR_CHAOS_CASES", 20);
    let topo = Topology::two_hubs(26);
    check::cases(n, |g| {
        let seed = g.u64();
        let script = FaultScript::random(g, &topo, heal_time());
        if let Err(violation) = run_case_sharded(seed, &script, 4) {
            let minimal = check::shrink(
                script,
                |s| s.shrink_candidates(),
                |s| run_case_sharded(seed, s, 4).is_err(),
            );
            let min_violation = run_case_sharded(seed, &minimal, 4).unwrap_err();
            panic!(
                "chaos invariant violated under shards=4 (deterministic mode): {violation}\n\
                 replay: NECTAR_CHECK_SEED=<printed seed> with shards=4\n\
                 minimal fault script ({min_violation}):\n{minimal:#?}"
            );
        }
    });
}

#[test]
fn sharded_chaos_replays_the_unsharded_run_bit_for_bit() {
    // satellite (d)'s end-to-end pin: with strand-local fault RNG
    // (per-link, per-direction streams + per-CAB entry streams) a
    // probabilistic schedule produces the *same* loss pattern however
    // the world is sharded, so the merged metrics snapshot equals the
    // single-thread one byte for byte. Under the old engine-global
    // stream this fails immediately: two shards interleave their draws
    // differently than one queue does.
    let topo = Topology::two_hubs(26);
    let mut g = check::Gen::new(0x5eed_cafe);
    let seed = g.u64();
    let script = FaultScript::random(&mut g, &topo, heal_time());
    let (mut world, mut sim) = World::new(chaos_config(seed), Topology::two_hubs(26));
    world.install_fault_script(&mut sim, &script);
    let _handles = two_hub_pair_load(&mut world, BYTES_PER_PAIR, 1024);
    world.run_until(&mut sim, horizon());
    let want = world.metrics_json();
    for shards in [2, 4] {
        let mut sw = ShardedWorld::build(shards, || {
            let (mut world, mut sim) = World::new(chaos_config(seed), Topology::two_hubs(26));
            world.install_fault_script(&mut sim, &script);
            let _handles = two_hub_pair_load(&mut world, BYTES_PER_PAIR, 1024);
            (world, sim)
        });
        sw.run_until(horizon());
        assert!(
            sw.metrics_json() == want,
            "fault schedule diverged at {shards} shards — cross-shard RNG leak"
        );
    }
}

#[test]
fn fast_path_chaos_schedule_preserves_invariants() {
    // One randomized schedule with the modern fast path enabled:
    // progress, exact post-heal delivery, conservation and sequence
    // sanity must all hold with windowed RMP retransmitting out of a
    // shared timer and TCP repairing holes from the SACK scoreboard.
    let topo = Topology::two_hubs(26);
    let mut g = check::Gen::new(0xfa57_0001);
    let seed = g.u64();
    let script = FaultScript::random(&mut g, &topo, heal_time());
    if let Err(violation) = run_case_with(fastpath_config(seed), &script) {
        panic!("fast-path chaos case violated an invariant: {violation}");
    }
}

#[test]
fn fast_path_sharded_chaos_replays_the_unsharded_run_bit_for_bit() {
    // The shard-invariance contract survives the fast path: the same
    // chaos schedule with windowed RMP + SACK + batched host I/O
    // merges to a byte-identical snapshot at 2 and 4 shards, and both
    // runs reach quiescence before the horizon.
    let topo = Topology::two_hubs(26);
    let mut g = check::Gen::new(0xfa57_0002);
    let seed = g.u64();
    let script = FaultScript::random(&mut g, &topo, heal_time());
    let (mut world, mut sim) = World::new(fastpath_config(seed), Topology::two_hubs(26));
    world.install_fault_script(&mut sim, &script);
    let _handles = two_hub_pair_load(&mut world, BYTES_PER_PAIR, 1024);
    world.run_until(&mut sim, horizon());
    assert_eq!(sim.pending(), 0, "unsharded fast-path run failed to quiesce");
    let want = world.metrics_json();
    for shards in [2, 4] {
        let mut sw = ShardedWorld::build(shards, || {
            let (mut world, mut sim) = World::new(fastpath_config(seed), Topology::two_hubs(26));
            world.install_fault_script(&mut sim, &script);
            let _handles = two_hub_pair_load(&mut world, BYTES_PER_PAIR, 1024);
            (world, sim)
        });
        sw.run_until(horizon());
        assert_eq!(sw.pending(), 0, "{shards}-shard fast-path run failed to quiesce");
        assert!(sw.metrics_json() == want, "fast-path chaos run diverged at {shards} shards");
    }
}

#[test]
fn chaos_runs_with_the_oracle_armed() {
    // `chaos_config` must force the conformance oracle on, so the sweep
    // exercises the per-socket monitors even in release builds (where
    // the oracle defaults off).
    let (_world, _sim) = World::new(chaos_config(1), Topology::two_hubs(26));
    assert!(nectar_stack::conform::enabled(), "chaos must run with the conformance oracle enabled");
}

#[test]
fn faults_lift_at_heal_deadline() {
    // loss = 1.0 on every fiber with a heal deadline: nothing gets
    // through before heal, every stream completes after, and the
    // per-link loss counters stop growing the moment the deadline
    // passes. This pins that `LinkPlan::until` is honored end-to-end
    // (install → entry_verdict → world), not merely present in the
    // script — with inert deadlines the pre-heal blackout would be
    // permanent and no stream could ever finish.
    let topo = Topology::two_hubs(26);
    let script = FaultScript::uniform(
        &topo,
        LinkPlan { loss: 1.0, until: Some(heal_time()), ..LinkPlan::default() },
    );
    let (mut world, mut sim) = World::new(chaos_config(7), Topology::two_hubs(26));
    world.install_fault_script(&mut sim, &script);
    let handles = two_hub_pair_load(&mut world, BYTES_PER_PAIR, 1024);

    world.run_until(&mut sim, heal_time());
    let lost_at_heal = world.metrics().sum_matching("net/link/", "/frames_lost");
    assert!(lost_at_heal > 0, "loss=1.0 must be dropping frames before heal");
    for (received, _) in &handles {
        assert_eq!(received.get(), 0, "no payload can arrive through loss=1.0");
    }

    world.run_until(&mut sim, horizon());
    assert_eq!(
        world.metrics().sum_matching("net/link/", "/frames_lost"),
        lost_at_heal,
        "per-link loss counters must stop growing once the faults heal"
    );
    for (i, (received, done)) in handles.iter().enumerate() {
        assert!(
            done.get() && received.get() == BYTES_PER_PAIR,
            "stream {i} must complete after heal (got {} of {BYTES_PER_PAIR} bytes)",
            received.get()
        );
    }
}

#[test]
fn chaos_case_replays_bit_identically() {
    // same seed + same script ⇒ byte-identical snapshots, even under a
    // fault schedule exercising every engine feature
    let topo = Topology::two_hubs(26);
    let run = || {
        let mut g = check::Gen::new(0xdead_beef);
        let seed = g.u64();
        let script = FaultScript::random(&mut g, &topo, heal_time());
        let (mut world, mut sim) = World::new(chaos_config(seed), Topology::two_hubs(26));
        world.install_fault_script(&mut sim, &script);
        let _handles = two_hub_pair_load(&mut world, BYTES_PER_PAIR, 1024);
        world.run_until(&mut sim, horizon());
        world.metrics_json()
    };
    assert_eq!(run(), run(), "same-seed chaos runs must be bit-identical");
}
