//! Shard-invariance suite: the deterministic sharded runner must make
//! shard count unobservable.
//!
//! The contract under test (DESIGN.md §13): in deterministic mode the
//! merged `(time, seq)` event order — and therefore every metric
//! snapshot, fixture, and latency digest — is bit-for-bit the
//! single-thread result at *any* shard count. Fast mode promises less
//! (per-shard determinism only), and its reproducibility and
//! conservation properties are pinned here too.
//!
//! The fixture comparison reuses the committed kernel-swap fixture
//! (`fixtures/twohub_metrics.json`); a diff there means sharding
//! changed observable behaviour, which is never intentional.

use nectar::config::Config;
use nectar::scenario::two_hub_pair_load;
use nectar::shard::{run_fast, ShardedWorld};
use nectar::topology::Topology;
use nectar::world::{Sim, World};
use nectar_load::{deploy_fleet, Arrival, FleetPlan, LoadTransport, SizeDist};
use nectar_sim::{MetricsSnapshot, SimDuration, SimTime};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/twohub_metrics.json");

/// The committed 26-host scenario, identical to simkernel.rs.
fn pair_world() -> (World, Sim) {
    let (mut world, sim) = World::new(Config::default(), Topology::two_hubs(26));
    let _handles = two_hub_pair_load(&mut world, u64::MAX / 2, 1024);
    (world, sim)
}

fn pair_deadline() -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(10)
}

/// ISSUE 6 acceptance: deterministic mode reproduces the committed
/// single-thread fixture byte-identically at shards = 1, 2 and 4.
/// Shards 1 and 2 split along HUB domains; 4 exercises the per-node
/// fallback, which cuts every CAB↔HUB fiber.
#[test]
fn det_mode_reproduces_twohub_fixture_at_any_shard_count() {
    let want = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing; bless it via the simkernel test first");
    for shards in [1, 2, 4] {
        let mut sw = ShardedWorld::build(shards, pair_world);
        sw.run_until(pair_deadline());
        let got = sw.metrics_json();
        assert!(
            got == want,
            "deterministic mode at {shards} shards diverged from the committed fixture \
             (got {} bytes, want {})",
            got.len(),
            want.len()
        );
    }
}

/// The same invariance, checked against a fresh unsharded run instead
/// of the committed file — catches divergence even right after an
/// intentional re-bless.
#[test]
fn det_mode_matches_unsharded_run_exactly() {
    let (mut world, mut sim) = pair_world();
    world.run_until(&mut sim, pair_deadline());
    let want = world.metrics_json();
    for shards in [2, 4] {
        let mut sw = ShardedWorld::build(shards, pair_world);
        sw.run_until(pair_deadline());
        assert!(sw.metrics_json() == want, "{shards}-shard run diverged from single-thread");
        // the pair load is unbounded, so events remain pending at the
        // deadline — just confirm the sharded run actually did work
        assert!(sw.executed() > 0, "sharded run executed nothing");
    }
}

/// The shard-invariance contract with the ISSUE 8 transport fast path
/// enabled — windowed RMP, TCP SACK + window scaling, doorbell
/// coalescing and a larger mailbox burst — and the conformance oracle
/// armed: deterministic mode at 2 and 4 shards must still be
/// bit-identical to the unsharded run. (The committed fixture pins the
/// *defaults*; this pins that the new knobs don't smuggle
/// shard-visible state into the event order.)
#[test]
fn det_mode_matches_unsharded_with_fast_path_enabled() {
    let mut config = Config { oracle: Some(true), ..Config::default() };
    config.rmp.window = 8;
    config.tcp.sack = true;
    config.tcp.wscale = Some(2);
    config.doorbell_coalesce = true;
    config.mailbox_burst = 16;
    let build = move || {
        let (mut world, sim) = World::new(config, Topology::two_hubs(26));
        let _handles = two_hub_pair_load(&mut world, u64::MAX / 2, 1024);
        (world, sim)
    };
    let (mut world, mut sim) = build();
    world.run_until(&mut sim, pair_deadline());
    let want = world.metrics_json();
    for shards in [2, 4] {
        let mut sw = ShardedWorld::build(shards, build);
        sw.run_until(pair_deadline());
        assert!(
            sw.metrics_json() == want,
            "fast-path {shards}-shard run diverged from single-thread"
        );
        assert!(sw.executed() > 0, "sharded fast-path run executed nothing");
    }
}

/// A ≥200-client mixed-protocol fleet (the PR 5 load engine) under the
/// deterministic sharded runner: merged metric snapshots *and* merged
/// per-transport latency digests must be byte-identical at shards =
/// 1/2/4 and equal to the unsharded run.
#[test]
fn det_mode_preserves_fleet_latency_digests() {
    let plan = FleetPlan {
        seed: 0x51a4d ^ 0xfee1_600d, // fixed, arbitrary
        mix: vec![
            (LoadTransport::Datagram, 48),
            (LoadTransport::Rmp, 48),
            (LoadTransport::ReqResp, 48),
            (LoadTransport::Udp, 48),
            (LoadTransport::Tcp, 48),
        ],
        clients_per_cab: 12,
        endpoints_per_client: 1,
        arrival: Arrival::Open { mean_gap: SimDuration::from_millis(2) },
        size: SizeDist::Uniform(32, 256),
        timeout: SimDuration::from_millis(20),
        start: SimTime::ZERO + SimDuration::from_millis(1),
        stop: SimTime::ZERO + SimDuration::from_millis(21),
    };
    let deadline = plan.stop + SimDuration::from_secs(2);
    let config = Config { seed: plan.seed, oracle: Some(true), ..Config::default() };

    // unsharded reference
    let run_unsharded = || {
        let (mut world, mut sim) = World::new(config, plan.topology());
        let fleet = deploy_fleet(&mut world, &plan);
        world.run_until(&mut sim, deadline);
        let digest = fleet_digest(&[fleet.recorder.borrow().clone()]);
        (world.metrics_json(), digest)
    };
    let (want_metrics, want_digest) = run_unsharded();
    assert!(want_digest.contains("p99="), "digest format drifted");

    for shards in [1, 2, 4] {
        // every shard deploys the full fleet; only owned clients run,
        // so per-shard recorders hold disjoint pieces of the truth
        let mut recorders = Vec::new();
        let mut sw = ShardedWorld::build(shards, || {
            let (mut world, sim) = World::new(config, plan.topology());
            let fleet = deploy_fleet(&mut world, &plan);
            recorders.push(fleet.recorder.clone());
            (world, sim)
        });
        sw.run_until(deadline);
        assert!(sw.metrics_json() == want_metrics, "fleet metrics diverged at {shards} shards");
        let parts: Vec<_> = recorders.iter().map(|r| r.borrow().clone()).collect();
        let digest = fleet_digest(&parts);
        assert!(
            digest == want_digest,
            "latency digest diverged at {shards} shards:\n--- unsharded\n{want_digest}\n--- {shards} shards\n{digest}"
        );
    }
}

/// Merge per-shard recorders (counter sums + histogram merges) and
/// render the same digest format as the load suite.
fn fleet_digest(parts: &[nectar_load::LoadRecorder]) -> String {
    let mut digest = String::new();
    for t in LoadTransport::ALL {
        let mut merged = nectar_load::TransportRecord::default();
        for p in parts {
            let r = p.record(t);
            merged.latency.merge(&r.latency);
            merged.requests_sent += r.requests_sent;
            merged.responses += r.responses;
            merged.timeouts += r.timeouts;
            merged.failures += r.failures;
            merged.stale_replies += r.stale_replies;
            merged.late_dispatch += r.late_dispatch;
            merged.bytes_sent += r.bytes_sent;
            merged.bytes_received += r.bytes_received;
        }
        digest.push_str(&format!(
            "{}: sent={} resp={} to={} fail={} stale={} late={} p50={} p99={}\n",
            t.name(),
            merged.requests_sent,
            merged.responses,
            merged.timeouts,
            merged.failures,
            merged.stale_replies,
            merged.late_dispatch,
            merged.latency.percentile_nanos(0.50),
            merged.latency.percentile_nanos(0.99),
        ));
    }
    digest
}

/// Fast mode's weaker contract: two same-recipe runs at the same shard
/// count produce byte-identical merged snapshots (per-shard
/// determinism), even though no global event order is defined.
#[test]
fn fast_mode_is_reproducible_run_to_run() {
    let topo = Topology::two_hubs(26);
    let run = || {
        let parts = run_fast(2, &topo, pair_deadline(), pair_world, |_, w, _| w.metrics());
        MetricsSnapshot::merge_sum(&parts).to_json()
    };
    let a = run();
    assert!(a.contains("net/frames_launched"), "fast run produced an empty snapshot");
    assert_eq!(a, run(), "fast mode diverged across same-recipe runs");
}

/// Fast mode at quiescence: with a finite workload fully drained before
/// the deadline, nothing is in flight at a shard boundary, so frame and
/// byte conservation must hold on the merged snapshot — and every
/// stream must have completed, proving cross-shard frames actually
/// flow (not just that nothing deadlocks).
#[test]
fn fast_mode_conserves_frames_at_quiescence() {
    let topo = Topology::two_hubs(26);
    const BYTES_PER_PAIR: u64 = 64 * 1024;
    let deadline = SimTime::ZERO + SimDuration::from_secs(10);
    for shards in [2, 4] {
        let parts = run_fast(
            shards,
            &topo,
            deadline,
            || {
                let (mut world, sim) = World::new(Config::default(), Topology::two_hubs(26));
                let _handles = two_hub_pair_load(&mut world, BYTES_PER_PAIR, 1024);
                (world, sim)
            },
            |_, w, sim| {
                // per-shard stream completion: every pair handle this
                // shard owns the receiver of must be done
                (w.metrics(), sim.pending(), sim.executed())
            },
        );
        assert!(parts.iter().all(|(_, pending, _)| *pending == 0), "events left at quiescence");
        let snaps: Vec<_> = parts.iter().map(|(m, _, _)| m.clone()).collect();
        let snap = MetricsSnapshot::merge_sum(&snaps);
        let g = |k: &str| snap.get(k).unwrap_or(0);
        let launched = g("net/frames_launched");
        assert!(launched > 0, "no traffic at {shards} shards");
        let sinks = g("net/frames_lost_injected")
            + g("net/frames_dead_end")
            + snap.sum_matching("hub/", "/dropped_frames")
            + snap.sum_matching("node/", "/link/rx_frames")
            + snap.sum_matching("node/", "/link/rx_fifo_dropped_frames");
        assert_eq!(launched, sinks, "frame conservation broke at {shards} shards");
        // every pair's payload crossed the fabric end to end
        let delivered = snap.sum_matching("node/", "/rmp/messages_delivered");
        assert!(delivered > 0, "RMP made no progress at {shards} shards");
    }
}

/// ISSUE 10: the in-network collective engine under the shard contract.
/// A 16-member reduction tree spanning both HUB domains — Arrive
/// combining at interior CABs, Release fan-out, straggler timers —
/// must leave the merged metric snapshot byte-identical to the
/// unsharded run at shards = 1, 2 and 4.
#[test]
fn det_mode_matches_unsharded_with_collectives() {
    use nectar::collective::{deploy_barrier_fleet, CollectiveGroup};
    use nectar_wire::collective::CombineOp;

    let epochs = 3u32;
    let deadline = SimTime::ZERO + SimDuration::from_millis(200);
    let build = |handles: &mut Vec<Vec<nectar::collective::MemberHandles>>| {
        let (mut world, sim) = World::new(Config::default(), Topology::two_hubs(26));
        let group = CollectiveGroup::tree(5, (0..16).collect(), 4);
        handles.push(deploy_barrier_fleet(&mut world, &group, CombineOp::Sum, epochs, |i| {
            i as u64 + 1
        }));
        (world, sim)
    };

    let mut solo = Vec::new();
    let (mut world, mut sim) = build(&mut solo);
    world.run_until(&mut sim, deadline);
    let want = world.metrics_json();
    assert!(solo[0].iter().all(|h| h.done.get() && h.last_value.get() == 136));

    for shards in [1, 2, 4] {
        let mut handle_sets = Vec::new();
        let mut sw = ShardedWorld::build(shards, || build(&mut handle_sets));
        sw.run_until(deadline);
        assert!(
            sw.metrics_json() == want,
            "collective {shards}-shard run diverged from single-thread"
        );
        // each member runs on whichever shard owns its CAB; merge the
        // replicated handle sets to confirm the barrier completed
        for i in 0..16 {
            assert!(
                handle_sets.iter().any(|h| h[i].done.get()),
                "member {i} never finished at {shards} shards"
            );
            let value = handle_sets.iter().map(|h| h[i].last_value.get()).max().unwrap();
            assert_eq!(value, 136, "member {i} reduction diverged at {shards} shards");
        }
    }
}

/// Chaos composition: a barrier fleet sharing the fabric with the
/// pairwise RMP/TCP load, 2% uniform frame loss on every fiber and the
/// conformance oracle armed, under the sharded kernel. The barrier
/// must complete every epoch with the exact sum, the streams must
/// deliver, and the ledger must balance with collective replication
/// and injected loss as explicit terms.
#[test]
fn collective_barrier_composes_with_chaos_under_shards() {
    use nectar::collective::{deploy_barrier_fleet, CollectiveGroup};
    use nectar::fault::{FaultScript, LinkPlan};
    use nectar_wire::collective::CombineOp;

    let topo = Topology::two_hubs(26);
    let heal = SimTime::ZERO + SimDuration::from_millis(400);
    let script = FaultScript::uniform(
        &topo,
        LinkPlan { loss: 0.02, until: Some(heal), ..LinkPlan::default() },
    );
    let mut config = Config { oracle: Some(true), ..Config::default() };
    config.rmp.rto_max = SimDuration::from_millis(20);
    config.rmp.max_retries = 64;

    const BYTES_PER_PAIR: u64 = 4 * 1024;
    let epochs = 5u32;
    let mut handle_sets = Vec::new();
    let mut load_sets = Vec::new();
    let mut sw = ShardedWorld::build(2, || {
        let (mut world, mut sim) = World::new(config, Topology::two_hubs(26));
        world.install_fault_script(&mut sim, &script);
        load_sets.push(two_hub_pair_load(&mut world, BYTES_PER_PAIR, 1024));
        let group = CollectiveGroup::tree(3, (0..16).collect(), 4);
        handle_sets.push(deploy_barrier_fleet(&mut world, &group, CombineOp::Sum, epochs, |i| {
            i as u64 + 1
        }));
        (world, sim)
    });
    sw.run_until(SimTime::ZERO + SimDuration::from_secs(10));

    // barrier: every member done with the exact sum, despite loss
    for i in 0..16 {
        assert!(handle_sets.iter().any(|h| h[i].done.get()), "member {i} stuck under chaos");
        assert!(handle_sets.iter().all(|h| !h[i].failed.get()), "member {i} gave up");
        let value = handle_sets.iter().map(|h| h[i].last_value.get()).max().unwrap();
        assert_eq!(value, 136, "member {i} reduced wrong value under chaos");
    }
    // unicast load: every stream delivered its bytes post-heal
    let pairs = load_sets[0].len();
    for i in 0..pairs {
        let received: u64 = load_sets.iter().map(|h| h[i].0.get()).sum();
        assert_eq!(received, BYTES_PER_PAIR, "stream {i} short under chaos");
    }
    // ledger: launched = sinks with replication and injected loss
    let snap = sw.metrics();
    let g = |k: &str| snap.get(k).unwrap_or(0);
    assert!(g("net/frames_lost_injected") > 0, "loss never fired");
    assert!(g("net/collective/replicas") > 0, "no fan-out in the composed run");
    let launched = g("net/frames_launched");
    let sinks = g("net/frames_lost_injected")
        + g("net/frames_dead_end")
        + g("net/fault/frames_down_dropped")
        + snap.sum_matching("hub/", "/dropped_frames")
        + snap.sum_matching("node/", "/link/rx_frames")
        + snap.sum_matching("node/", "/link/rx_fifo_dropped_frames");
    assert_eq!(launched, sinks, "conservation broke with collectives under chaos");
}
