//! In-network collective suite (ISSUE 10): tree barrier, reduction
//! combining and fan-out multicast, run end-to-end over real fabrics.
//!
//! What is pinned here, beyond "the answer comes out":
//!
//! 1. **Interior combining** — the root's engine receives exactly one
//!    Arrive per *direct child* per epoch, not one per descendant.
//!    That stat is the proof that reduction work happened inside the
//!    fabric rather than at the root.
//! 2. **Conservation under fan-out** — every multicast replica is a
//!    real datalink transmit, so the launched-frames ledger must still
//!    balance against the usual sinks with replication in play.
//! 3. **Loss recovery** — a barrier fleet under uniform frame loss
//!    still completes every epoch with the right value, and the
//!    engine's retransmit/straggler counters show the recovery path
//!    actually ran.

use nectar::collective::{deploy_barrier_fleet, CollectiveGroup, MulticastRoot, MulticastSink};
use nectar::config::Config;
use nectar::fault::{FaultScript, LinkPlan};
use nectar::topology::Topology;
use nectar::world::World;
use nectar_sim::{MetricsSnapshot, SimDuration, SimTime};
use nectar_wire::collective::CombineOp;

fn deadline(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// The frame-conservation identity from the chaos harness, including
/// the fault-engine sink terms (zero when no script is installed).
fn assert_frames_conserved(snap: &MetricsSnapshot) {
    let g = |k: &str| snap.get(k).unwrap_or(0);
    let launched = g("net/frames_launched");
    let sinks = g("net/frames_lost_injected")
        + g("net/frames_dead_end")
        + g("net/fault/frames_down_dropped")
        + snap.sum_matching("hub/", "/dropped_frames")
        + snap.sum_matching("node/", "/link/rx_frames")
        + snap.sum_matching("node/", "/link/rx_fifo_dropped_frames");
    assert_eq!(launched, sinks, "frame conservation broke under collective traffic");
}

/// A 16-member 4-ary reduction tree across both HUBs: every member
/// contributes `i + 1` for three epochs of Sum. Each epoch must
/// complete with Σ(1..=16) = 136 at every member, and the root must
/// have combined — it hears from its direct children only.
#[test]
fn tree_barrier_sums_across_two_hubs() {
    let (mut world, mut sim) = World::new(Config::default(), Topology::two_hubs(26));
    let members: Vec<u16> = (0..16).collect();
    let group = CollectiveGroup::tree(5, members, 4);
    let epochs = 3u32;
    let handles =
        deploy_barrier_fleet(&mut world, &group, CombineOp::Sum, epochs, |i| i as u64 + 1);

    world.run_until(&mut sim, deadline(200));

    for (i, h) in handles.iter().enumerate() {
        assert!(!h.failed.get(), "member {i} failed");
        assert!(h.done.get(), "member {i} never finished");
        assert_eq!(h.completions.get(), epochs as u64, "member {i} epoch count");
        assert_eq!(h.last_value.get(), 136, "member {i} final reduction value");
    }

    // interior combining: the root hears one Arrive per direct child
    // per epoch — 4 children × 3 epochs — never one per descendant
    // (15 × 3 would mean the fabric combined nothing).
    let root = group.members[0] as usize;
    let root_children = group.topo_of(0).1.len() as u64;
    assert_eq!(root_children, 4);
    let root_stats = world.cabs[root].proto.coll.stats();
    assert_eq!(
        root_stats.arrives_rx,
        root_children * epochs as u64,
        "root received uncombined arrives"
    );

    // aggregated metrics appear once any CAB enables the engine, and
    // the ledger still balances with barrier traffic in flight
    let snap = world.metrics();
    // one Completed per member per epoch — every engine notifies its
    // local member when the release propagates down
    assert_eq!(
        snap.get("net/collective/completions"),
        Some(group.members.len() as u64 * epochs as u64)
    );
    assert_eq!(snap.get("net/collective/failures"), Some(0));
    assert!(snap.get("net/collective/arrives_rx").unwrap_or(0) > 0);
    assert_frames_conserved(&snap);
}

/// Min and Max reductions over disjoint member sets of the same world:
/// each group's engine state is keyed by group id, so two fleets on
/// disjoint CABs run concurrently without cross-talk.
#[test]
fn min_and_max_reductions_pick_the_extremes() {
    let (mut world, mut sim) = World::new(Config::default(), Topology::two_hubs(26));
    let min_group = CollectiveGroup::tree(1, (0..8).collect(), 2);
    let max_group = CollectiveGroup::tree(2, (8..16).collect(), 2);
    let min_h = deploy_barrier_fleet(&mut world, &min_group, CombineOp::Min, 2, |i| i as u64 + 7);
    let max_h = deploy_barrier_fleet(&mut world, &max_group, CombineOp::Max, 2, |i| i as u64 + 7);

    world.run_until(&mut sim, deadline(200));

    for (i, h) in min_h.iter().enumerate() {
        assert!(h.done.get() && !h.failed.get(), "min member {i} incomplete");
        assert_eq!(h.last_value.get(), 7, "min member {i}");
    }
    for (i, h) in max_h.iter().enumerate() {
        assert!(h.done.get() && !h.failed.get(), "max member {i} incomplete");
        assert_eq!(h.last_value.get(), 14, "max member {i}");
    }
    assert_frames_conserved(&world.metrics());
}

/// Fan-out multicast through a 16-member tree: the root pushes 32
/// frames of 256 B; every other member must see all 32, each replica
/// is a real transmit, and the ledger balances with replication in
/// play. Replicas outnumber the root's own sends — the proof that
/// interior CABs did the fan-out, not the source.
#[test]
fn multicast_fans_out_through_interior_cabs() {
    let (mut world, mut sim) = World::new(Config::default(), Topology::two_hubs(26));
    let members: Vec<u16> = (0..16).collect();
    let group = CollectiveGroup::tree(9, members, 4);
    let mboxes = group.deploy(&mut world);

    const FRAMES: u32 = 32;
    const SIZE: usize = 256;
    let (root, root_done) = MulticastRoot::new(group.group, SIZE, FRAMES);
    world.cabs[group.members[0] as usize].fork_app(Box::new(root));

    let mut sinks = Vec::new();
    for (i, (&m, &mb)) in group.members.iter().zip(&mboxes).enumerate().skip(1) {
        let (sink, received, bytes, done) = MulticastSink::new(group.group, mb, FRAMES as u64);
        world.cabs[m as usize].fork_app(Box::new(sink));
        sinks.push((i, received, bytes, done));
    }

    world.run_until(&mut sim, deadline(200));

    assert!(root_done.get(), "root never finished sending");
    for (i, received, bytes, done) in &sinks {
        assert!(done.get(), "member {i} did not drain the multicast");
        assert_eq!(received.get(), FRAMES as u64, "member {i} delivery count");
        assert_eq!(bytes.get(), FRAMES as u64 * SIZE as u64, "member {i} delivered bytes");
    }

    let snap = world.metrics();
    // one replica per tree edge per frame: 15 edges × 32 frames
    assert_eq!(snap.get("net/collective/replicas"), Some(15 * FRAMES as u64));
    assert_eq!(snap.get("net/collective/delivers"), Some(15 * FRAMES as u64));
    // the source itself only transmits to its direct children; the
    // other 11 edges per frame are interior fan-out
    let src_stats = world.cabs[group.members[0] as usize].proto.coll.stats();
    assert_eq!(src_stats.replicas, 4 * FRAMES as u64);
    assert_frames_conserved(&snap);
}

/// A barrier fleet under 2% uniform frame loss on every fiber: the
/// per-epoch retransmit timer and the root's straggler re-ack must
/// carry every member through five epochs with the exact sum, and the
/// recovery counters prove loss actually hit collective traffic.
#[test]
fn barrier_completes_under_frame_loss() {
    let topo = Topology::two_hubs(26);
    let heal = SimTime::ZERO + SimDuration::from_millis(400);
    let script = FaultScript::uniform(
        &topo,
        LinkPlan { loss: 0.02, until: Some(heal), ..LinkPlan::default() },
    );
    let (mut world, mut sim) = World::new(Config::default(), topo);
    world.install_fault_script(&mut sim, &script);

    let group = CollectiveGroup::tree(3, (0..16).collect(), 4);
    let epochs = 5u32;
    let handles =
        deploy_barrier_fleet(&mut world, &group, CombineOp::Sum, epochs, |i| i as u64 + 1);

    world.run_until(&mut sim, deadline(2_000));

    for (i, h) in handles.iter().enumerate() {
        assert!(!h.failed.get(), "member {i} gave up under 2% loss");
        assert!(h.done.get(), "member {i} stuck under 2% loss");
        assert_eq!(h.last_value.get(), 136, "member {i} reduced wrong value under loss");
    }

    let snap = world.metrics();
    let retrans = snap.get("net/collective/arrive_retransmits").unwrap_or(0)
        + snap.get("net/collective/straggler_resends").unwrap_or(0)
        + snap.get("net/collective/duplicate_arrives").unwrap_or(0)
        + snap.get("net/collective/duplicate_releases").unwrap_or(0);
    assert!(
        snap.get("net/frames_lost_injected").unwrap_or(0) > 0,
        "fault script never fired — loss test proves nothing"
    );
    assert!(retrans > 0, "no recovery machinery ran despite injected loss");
    assert_eq!(
        snap.get("net/collective/completions"),
        Some(group.members.len() as u64 * epochs as u64)
    );
    assert_frames_conserved(&snap);
}

/// Same seed, same fleet ⇒ byte-identical metrics JSON across a fresh
/// rerun — the collective engine draws no hidden entropy.
#[test]
fn collective_runs_are_deterministic() {
    let run = || {
        let (mut world, mut sim) = World::new(Config::default(), Topology::two_hubs(26));
        let group = CollectiveGroup::tree(5, (0..16).collect(), 4);
        let _h = deploy_barrier_fleet(&mut world, &group, CombineOp::Sum, 3, |i| i as u64 + 1);
        world.run_until(&mut sim, deadline(200));
        world.metrics_json()
    };
    assert!(run() == run(), "same-seed collective rerun diverged");
}
