//! Board-level pin for the select()-before-read fix: mailbox ops per
//! wake must not include charged empty Begin_Gets.
//!
//! Every failed Begin_Get costs the full mailbox-op charge (~4 µs of
//! CAB CPU) for zero work. Before this fix the echo services and the
//! load client discovered emptiness *through* that charge on every
//! wake, so the polling tax scaled with traffic — the flat udp knee at
//! 4k rps in BENCH_load.json. With `Cx::mbox_pending` guarding every
//! load-path poll loop, an empty mailbox costs a free queue-count read,
//! and the only empty polls left are the constant startup probes of the
//! per-CAB system threads.
//!
//! `CabShared::mbox_empty_polls` counts exactly those failed
//! Begin_Gets, so the pin is: drive 4× the traffic through an echo
//! fleet and require the world-wide empty-poll count to stay flat
//! instead of scaling with the message count.

use nectar::config::Config;
use nectar::world::World;
use nectar_load::{deploy_fleet, Arrival, FleetPlan, LoadTransport, SizeDist};
use nectar_sim::{SimDuration, SimTime};

/// Run a small echo fleet for `window_ms` of load and return
/// (world-wide empty Begin_Gets, responses served).
fn run_fleet(transport: LoadTransport, window_ms: u64) -> (u64, u64) {
    let plan = FleetPlan {
        seed: 0x9011,
        mix: vec![(transport, 4)],
        clients_per_cab: 2,
        endpoints_per_client: 2,
        arrival: Arrival::Open { mean_gap: SimDuration::from_micros(500) },
        size: SizeDist::Fixed(64),
        timeout: SimDuration::from_millis(10),
        start: SimTime::ZERO + SimDuration::from_millis(1),
        stop: SimTime::ZERO + SimDuration::from_millis(1 + window_ms),
    };
    let config = Config { seed: plan.seed, ..Config::default() };
    let (mut world, mut sim) = World::new(config, plan.topology());
    let fleet = deploy_fleet(&mut world, &plan);
    world.run_until(&mut sim, plan.stop + SimDuration::from_millis(30));
    let polls = world.cabs.iter().map(|c| c.shared.mbox_empty_polls).sum();
    let responses = fleet.ledger.borrow().responses;
    (polls, responses)
}

/// 4× the traffic, same fleet: the empty-poll count may not scale with
/// it. Covers CabEcho (datagram/rmp/reqresp), CabUdpEcho and the
/// multiplexed LoadClient in one sweep — any of them regressing to
/// poll-by-failed-Begin_Get makes the count track the response count.
#[test]
fn empty_mailbox_polls_do_not_scale_with_traffic() {
    for transport in [LoadTransport::Datagram, LoadTransport::ReqResp, LoadTransport::Udp] {
        let (polls_small, resp_small) = run_fleet(transport, 5);
        let (polls_big, resp_big) = run_fleet(transport, 20);
        assert!(
            resp_big >= resp_small * 3,
            "{transport:?}: the long window should serve ~4x the requests \
             ({resp_small} vs {resp_big})"
        );
        // startup probes are identical across the two runs; per-wake
        // polling would add hundreds more in the long window
        assert!(
            polls_big <= polls_small + resp_big / 10,
            "{transport:?}: empty Begin_Gets scale with traffic \
             ({polls_small} at {resp_small} responses, {polls_big} at {resp_big})"
        );
    }
}

/// Absolute form of the same pin for one transport: across a whole
/// fleet run the failed Begin_Gets stay bounded by the (constant)
/// per-thread startup probes — mailbox ops per *wake* is then success
/// ops only.
#[test]
fn echo_fleet_pays_at_most_constant_empty_polls() {
    let (polls, responses) = run_fleet(LoadTransport::Datagram, 20);
    assert!(responses > 50, "fleet too idle to measure: {responses} responses");
    assert!(
        polls < 50,
        "a datagram echo fleet should pay only startup empty polls, got {polls} \
         over {responses} responses"
    );
}
