//! The `coalesce_wakeups` opt-in: cancelling superseded node wakeups.
//!
//! With the flag off (the default) the kick layer leaves stale wakeups
//! in the queue and they fire as redundant polls, reproducing the
//! legacy schedule bit-for-bit — that mode is pinned by the fixture in
//! `simkernel.rs`. This file covers the opt-in mode: cancellation must
//! stay deterministic, keep delivering traffic, and actually remove
//! work (fewer redundant polls, nonzero cancelled timers).

use nectar::config::Config;
use nectar::scenario::two_hub_pair_load;
use nectar::topology::Topology;
use nectar::world::World;
use nectar_sim::{MetricsSnapshot, SimDuration, SimTime};

/// One deterministic 26-host run, 13 streams, 10 ms.
fn run(coalesce: bool) -> MetricsSnapshot {
    let cfg = Config { coalesce_wakeups: coalesce, ..Config::default() };
    let (mut world, mut sim) = World::new(cfg, Topology::two_hubs(26));
    let _handles = two_hub_pair_load(&mut world, u64::MAX / 2, 1024);
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_millis(10));
    world.metrics()
}

#[test]
fn coalesced_run_is_deterministic() {
    assert_eq!(run(true).to_json(), run(true).to_json());
}

#[test]
fn coalescing_removes_polls_without_losing_traffic() {
    let base = run(false);
    let co = run(true);

    // every stream still completes the same application-level work
    let delivered = |m: &MetricsSnapshot| m.sum_matching("node/", "rmp/messages_delivered");
    assert!(co.sum_matching("node/", "rmp/messages_delivered") > 0);
    assert_eq!(delivered(&co), delivered(&base), "coalescing changed delivered message counts");

    // but it gets there with less redundant polling
    let switches = |m: &MetricsSnapshot| m.sum_matching("node/", "cab/ctx_switches");
    assert!(
        switches(&co) < switches(&base),
        "coalescing should reduce context switches (co {} vs base {})",
        switches(&co),
        switches(&base)
    );
}
