//! Observability-layer integration tests: determinism of the metrics
//! snapshot and conservation identities at the link, HUB, and mailbox
//! boundaries of the §6 production deployment (26 hosts, 2 HUBs).

use nectar::config::{Config, FaultPlan};
use nectar::fault::{FaultScript, GilbertElliott, LinkId, LinkPlan, NodeOutage, NodeRef};
use nectar::scenario::{two_hub_pair_load, CabEcho, CabPinger, CabRmpStreamer, CabSink, Transport};
use nectar::topology::Topology;
use nectar::world::World;
use nectar_cab::HostOpMode;
use nectar_sim::{MetricsSnapshot, SimDuration, SimTime};

fn until(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// Run the paper's production deployment — every CAB pings its
/// antipode through the two-HUB fabric — to quiescence and return the
/// finished world.
fn run_all_pairs(config: Config) -> World {
    let (mut world, mut sim) = World::new(config, Topology::two_hubs(26));
    let mut services = Vec::new();
    for i in 0..26 {
        let svc = world.cabs[i].shared.create_mailbox(false, HostOpMode::SharedMemory);
        world.cabs[i]
            .fork_app(Box::new(CabEcho { transport: Transport::Datagram, recv_mbox: svc }));
        services.push(svc);
    }
    let mut dones = Vec::new();
    for i in 0..26u16 {
        let dst = (i + 13) % 26;
        let reply = world.cabs[i as usize].shared.create_mailbox(false, HostOpMode::SharedMemory);
        let (p, _, done) =
            CabPinger::new(Transport::Datagram, (dst, services[dst as usize]), reply, 32, 5);
        world.cabs[i as usize].fork_app(Box::new(p));
        dones.push((i, done));
    }
    world.run_until(&mut sim, until(30));
    for (i, done) in &dones {
        assert!(done.get(), "CAB {i} did not complete its pings");
    }
    world
}

#[test]
fn metrics_snapshot_deterministic_across_runs() {
    // Same seed, same scenario, run twice: the JSON snapshot and the
    // trace buffer must be byte-for-byte identical.
    let run = || {
        let config = Config { trace: true, ..Default::default() };
        let world = run_all_pairs(config);
        let trace: Vec<_> = world
            .trace
            .events()
            .iter()
            .map(|e| (e.at.as_nanos(), e.node, e.tag.to_string(), e.info))
            .collect();
        (world.metrics_json(), trace)
    };
    let (json_a, trace_a) = run();
    let (json_b, trace_b) = run();
    assert_eq!(json_a, json_b, "metrics snapshots must be byte-identical");
    assert_eq!(trace_a, trace_b, "trace buffers must be identical");
    assert!(!trace_a.is_empty());
    // and the snapshot is genuinely populated
    let snap: Vec<_> = json_a.lines().collect();
    assert!(snap.len() > 100, "expected a rich snapshot, got {} lines", snap.len());
}

/// Sum every `node/<i>/<suffix>` (or `hub/<h>/<suffix>`) value.
fn total(snap: &MetricsSnapshot, prefix: &str, suffix: &str) -> u64 {
    snap.sum_matching(prefix, suffix)
}

#[test]
fn conservation_all_pairs_26_hosts_2_hubs() {
    let world = run_all_pairs(Config::default());
    let snap = world.metrics();

    // Link boundary: every transmitted frame was launched onto the
    // fiber exactly once.
    let tx_frames = total(&snap, "node/", "/link/tx_frames");
    let tx_bytes = total(&snap, "node/", "/link/tx_bytes");
    assert_eq!(tx_frames, snap.get("net/frames_launched").unwrap());
    assert_eq!(tx_bytes, snap.get("net/bytes_launched").unwrap());
    assert!(tx_frames >= 26 * 5 * 2, "all-pairs traffic missing: {tx_frames}");

    // Global frame identity: every launched frame met exactly one
    // fate — injected loss, a HUB drop, a dead-end port, an RX-FIFO
    // overflow, or delivery into a CAB's receive FIFO.
    let hub_dropped = total(&snap, "hub/", "/dropped_frames");
    let rx = total(&snap, "node/", "/link/rx_frames");
    let fifo_dropped = total(&snap, "node/", "/link/rx_fifo_dropped_frames");
    assert_eq!(
        snap.get("net/frames_launched").unwrap(),
        snap.get("net/frames_lost_injected").unwrap()
            + snap.get("net/frames_dead_end").unwrap()
            + hub_dropped
            + rx
            + fifo_dropped,
    );
    // ... and the same holds for bytes, because a frame's wire length
    // is invariant across HUB hops.
    assert_eq!(
        snap.get("net/bytes_launched").unwrap(),
        snap.get("net/bytes_lost_injected").unwrap()
            + snap.get("net/bytes_dead_end").unwrap()
            + total(&snap, "hub/", "/dropped_bytes")
            + total(&snap, "node/", "/link/rx_bytes")
            + total(&snap, "node/", "/link/rx_fifo_dropped_bytes"),
    );

    // HUB boundary, per hub: everything received was forwarded or
    // dropped, and the per-port counters add up to the totals.
    for h in 0..world.hubs.len() {
        let g = |s: &str| snap.get(&format!("hub/{h}/{s}")).unwrap();
        assert_eq!(g("rx_frames"), g("forwarded_frames") + g("dropped_frames"), "hub {h}");
        assert_eq!(g("rx_bytes"), g("forwarded_bytes") + g("dropped_bytes"), "hub {h}");
        let port_tx = snap.sum_matching(&format!("hub/{h}/port/"), "/tx_frames");
        let port_bytes = snap.sum_matching(&format!("hub/{h}/port/"), "/tx_bytes");
        assert_eq!(port_tx, g("forwarded_frames"), "hub {h} port frame sum");
        assert_eq!(port_bytes, g("forwarded_bytes"), "hub {h} port byte sum");
        assert!(g("rx_frames") > 0, "hub {h} saw no traffic");
    }
    // the trunk carried traffic both ways, so each hub forwarded on
    // some port and recorded a backlog watermark
    assert!(total(&snap, "hub/", "/backlog_high_ns") > 0);

    // Mailbox boundary, per node: enqueued == dequeued + still queued.
    for i in 0..world.cabs.len() {
        let g = |s: &str| snap.get(&format!("node/{i}/mbox/{s}")).unwrap();
        assert_eq!(g("enqueued_msgs"), g("dequeued_msgs") + g("depth"), "node {i}");
        if g("depth") == 0 {
            assert_eq!(g("enqueued_bytes"), g("dequeued_bytes"), "node {i} bytes");
        }
        assert!(g("depth_high") >= 1, "node {i} never queued a message");
    }

    // CPU accounting: every CAB did work and the meters saw it.
    for i in 0..world.cabs.len() {
        let busy = snap.get(&format!("node/{i}/cab/cpu_busy_ns")).unwrap();
        assert!(busy > 0, "CAB {i} cpu_busy_ns is zero");
    }
}

#[test]
fn conservation_holds_under_injected_loss() {
    // Loss injection must show up in the ledger, not leak frames: the
    // global identity stays exact while RMP's retransmissions drive
    // the stream to completion.
    let config = Config { faults: FaultPlan { loss: 0.08, corrupt: 0.0 }, ..Default::default() };
    let (mut world, mut sim) = World::single_hub(config, 2);
    let sink_mbox = world.cabs[1].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let src_mbox = world.cabs[0].shared.create_mailbox(false, HostOpMode::SharedMemory);
    let total_bytes = 150_000u64;
    let (sink, _, received, done) = CabSink::new(sink_mbox, total_bytes);
    world.cabs[1].fork_app(Box::new(sink));
    let (streamer, _) = CabRmpStreamer::new((1, sink_mbox), src_mbox, 4096, total_bytes);
    world.cabs[0].fork_app(Box::new(streamer));
    world.run_until(&mut sim, until(60));
    assert!(done.get(), "RMP delivered only {} of {total_bytes}", received.get());

    let snap = world.metrics();
    let lost = snap.get("net/frames_lost_injected").unwrap();
    assert!(lost > 0, "loss injection never fired");
    assert_eq!(
        snap.get("net/frames_launched").unwrap(),
        lost + snap.get("net/frames_dead_end").unwrap()
            + total(&snap, "hub/", "/dropped_frames")
            + total(&snap, "node/", "/link/rx_frames")
            + total(&snap, "node/", "/link/rx_fifo_dropped_frames"),
    );
    assert_eq!(
        snap.get("net/bytes_launched").unwrap(),
        snap.get("net/bytes_lost_injected").unwrap()
            + snap.get("net/bytes_dead_end").unwrap()
            + total(&snap, "hub/", "/dropped_bytes")
            + total(&snap, "node/", "/link/rx_bytes")
            + total(&snap, "node/", "/link/rx_fifo_dropped_bytes"),
    );
    // the sender's observed retransmissions are visible in the snapshot
    assert!(snap.get("node/0/rmp/retransmits").unwrap() > 0);
    assert_eq!(snap.get("node/1/rmp/delivered").unwrap(), {
        let s = world.cabs[1].proto.rmp_rx.stats();
        s.delivered
    });
}

#[test]
fn per_link_fault_keys_are_complete_sorted_and_deterministic() {
    // A script touching every clause type must surface a full per-link
    // and per-node key set, in sorted order, byte-identical across runs.
    let down_from = SimTime::ZERO + SimDuration::from_millis(1);
    let script = FaultScript {
        links: vec![
            (
                LinkId::new(NodeRef::Cab(3), NodeRef::Hub(1)),
                LinkPlan { loss: 0.2, ..LinkPlan::default() },
            ),
            (
                LinkId::new(NodeRef::Hub(0), NodeRef::Hub(1)),
                LinkPlan {
                    corrupt: 0.1,
                    burst: Some(GilbertElliott::default()),
                    down: vec![(down_from, down_from + SimDuration::from_millis(5))],
                    ..LinkPlan::default()
                },
            ),
        ],
        outages: vec![NodeOutage {
            node: NodeRef::Cab(8),
            from: down_from,
            until: down_from + SimDuration::from_millis(5),
        }],
    };
    let run = || {
        let (mut world, mut sim) = World::new(Config::default(), Topology::two_hubs(26));
        world.install_fault_script(&mut sim, &script);
        let _handles = two_hub_pair_load(&mut world, 8 * 1024, 1024);
        world.run_until(&mut sim, until(30));
        world.metrics()
    };
    let snap = run();

    // every installed link plan publishes its whole counter family
    for label in ["cab3-hub1", "hub0-hub1"] {
        for suffix in [
            "frames_lost",
            "bytes_lost",
            "frames_corrupted",
            "frames_down_dropped",
            "bytes_down_dropped",
            "burst_entries",
        ] {
            let key = format!("net/link/{label}/{suffix}");
            assert!(snap.get(&key).is_some(), "missing per-link fault key {key}");
        }
    }
    for suffix in
        ["frames_down_dropped", "bytes_down_dropped", "fifo_flushed_frames", "fifo_flushed_bytes"]
    {
        let key = format!("net/node/cab8/{suffix}");
        assert!(snap.get(&key).is_some(), "missing per-node fault key {key}");
    }
    // links the script never named stay off the ledger
    assert!(
        snap.iter().all(|(k, _)| !k.starts_with("net/link/cab0-")),
        "unplanned link leaked into the fault ledger"
    );

    // sorted key order (the fixture diff story depends on it) …
    let keys: Vec<&str> = snap.iter().map(|(k, _)| k).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "snapshot keys must iterate in sorted order");

    // … and the whole snapshot replays byte-identically
    assert_eq!(snap.to_json(), run().to_json());
}
