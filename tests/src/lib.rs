pub fn placeholder() {}
