//! Shared helpers for the example binaries.

/// Parse a `--flag value`-style argument, falling back to a default.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
