//! §5.3 "Application-level Communication Engine": a divide-and-conquer
//! task queue where the *workers run on the communication processors*,
//! coordinated by the in-network collectives (ISSUE 10).
//!
//! A master process on host 0 no longer dispatches per-task requests.
//! Instead a coordinator thread on CAB 0 — the root of a combining
//! tree over all worker CABs — *multicasts* each phase descriptor down
//! the tree, every worker computes its slice and *arrives* at the tree
//! barrier carrying its partial sum, and interior CABs combine on the
//! way up so the root receives one frame per child subtree. The
//! combined phase total pops out of the barrier release; the host
//! master just folds the per-phase totals. This is the Noodles /
//! COSMOS usage pattern with the coordination moved into the fabric.
//!
//!     cargo run -p nectar-examples --bin task_queue -- --workers 4 --tasks 64

use std::cell::Cell;
use std::rc::Rc;

use nectar::cab::proto::{coll_arrive, coll_multicast};
use nectar::cab::reqs::CollNote;
use nectar::cab::{CabThread, Cx, HostOpMode, MboxId, Step, WouldBlock};
use nectar::collective::CollectiveGroup;
use nectar::config::Config;
use nectar::host::{HostCx, HostProcess, HostStep};
use nectar::sim::{SimDuration, SimTime};
use nectar::wire::collective::CombineOp;
use nectar::world::World;
use nectar_examples::arg;

/// The collective group id shared by coordinator and workers.
const GROUP: u16 = 1;

/// A worker thread on a CAB: waits for a phase descriptor to arrive by
/// multicast, computes its slice (task id = phase × workers + rank),
/// and contributes the partial sum of squares to the tree barrier.
/// The compute burst charges simulated CPU time proportional to the
/// range, exactly as the request-response version did.
struct Worker {
    note_mbox: MboxId,
    rank: u64,
    nworkers: u64,
    tasks: u64,
    chunk: u64,
    epochs: u32,
}

impl CabThread for Worker {
    fn name(&self) -> &'static str {
        "worker"
    }

    fn run(&mut self, cx: &mut Cx<'_>) -> Step {
        for _ in 0..cx.proto.burst_limit {
            if !cx.mbox_pending(self.note_mbox) {
                return Step::Block(cx.mbox_cond(self.note_mbox));
            }
            match cx.begin_get(self.note_mbox) {
                Err(WouldBlock::Empty(c)) | Err(WouldBlock::NoSpace(c)) => return Step::Block(c),
                Ok(msg) => {
                    let bytes = cx.shared.msg_bytes(&msg).to_vec();
                    cx.end_get(self.note_mbox, msg);
                    match CollNote::decode(&bytes) {
                        Some(CollNote::Deliver { group: GROUP, payload }) => {
                            let phase = u32::from_be_bytes(payload[..4].try_into().unwrap()) as u64;
                            // my slice of this phase, if any — the last
                            // phase may be ragged when workers ∤ tasks
                            let t = phase * self.nworkers + self.rank;
                            let mut acc: u64 = 0;
                            if t < self.tasks {
                                let lo = t * self.chunk;
                                let hi = lo + self.chunk;
                                for v in lo..hi {
                                    acc = acc.wrapping_add(v.wrapping_mul(v));
                                }
                                cx.charge(SimDuration::from_nanos(200) * self.chunk);
                            }
                            coll_arrive(cx, GROUP, CombineOp::Sum, acc);
                        }
                        Some(CollNote::Completed { group: GROUP, epoch, .. })
                            if epoch + 1 >= self.epochs =>
                        {
                            return Step::Done;
                        }
                        _ => {}
                    }
                }
            }
        }
        Step::Yield
    }
}

/// The tree root on CAB 0: multicasts each phase descriptor, arrives
/// with a zero contribution, and forwards every combined phase total
/// to the host master's result mailbox.
struct Coordinator {
    note_mbox: MboxId,
    result_mbox: MboxId,
    epochs: u32,
    started: bool,
}

impl CabThread for Coordinator {
    fn name(&self) -> &'static str {
        "coordinator"
    }

    fn run(&mut self, cx: &mut Cx<'_>) -> Step {
        if !self.started {
            self.started = true;
            coll_multicast(cx, GROUP, &0u32.to_be_bytes());
            coll_arrive(cx, GROUP, CombineOp::Sum, 0);
        }
        for _ in 0..cx.proto.burst_limit {
            if !cx.mbox_pending(self.note_mbox) {
                return Step::Block(cx.mbox_cond(self.note_mbox));
            }
            match cx.begin_get(self.note_mbox) {
                Err(WouldBlock::Empty(c)) | Err(WouldBlock::NoSpace(c)) => return Step::Block(c),
                Ok(msg) => {
                    let bytes = cx.shared.msg_bytes(&msg).to_vec();
                    cx.end_get(self.note_mbox, msg);
                    if let Some(CollNote::Completed { group: GROUP, epoch, value }) =
                        CollNote::decode(&bytes)
                    {
                        let mut note = Vec::with_capacity(12);
                        note.extend_from_slice(&epoch.to_be_bytes());
                        note.extend_from_slice(&value.to_be_bytes());
                        let _ = cx.put_message(self.result_mbox, &note);
                        if epoch + 1 >= self.epochs {
                            return Step::Done;
                        }
                        coll_multicast(cx, GROUP, &(epoch + 1).to_be_bytes());
                        coll_arrive(cx, GROUP, CombineOp::Sum, 0);
                    }
                }
            }
        }
        Step::Yield
    }
}

/// The master on host 0: folds the per-phase totals the coordinator
/// posts — no dispatch loop, the fabric runs the phases.
struct Master {
    result_mbox: MboxId,
    epochs: u32,
    gathered: u32,
    total: Rc<Cell<u64>>,
    done: Rc<Cell<bool>>,
    finished_at: Rc<Cell<u64>>,
}

impl HostProcess for Master {
    fn name(&self) -> &'static str {
        "master"
    }

    fn run(&mut self, cx: &mut HostCx<'_>) -> HostStep {
        while let Some((_, bytes)) = cx.get_message(self.result_mbox) {
            if bytes.len() >= 12 {
                let value = u64::from_be_bytes(bytes[4..12].try_into().unwrap());
                self.total.set(self.total.get().wrapping_add(value));
                self.gathered += 1;
            }
        }
        if self.gathered == self.epochs {
            self.done.set(true);
            self.finished_at.set(cx.now().as_nanos());
            return HostStep::Done;
        }
        HostStep::Yield
    }
}

fn main() {
    let workers: usize = arg("--workers", 4);
    let tasks: u64 = arg("--tasks", 64);
    let chunk: u64 = 1000;
    // one phase runs `workers` tasks in lockstep; the last may be ragged
    let epochs = tasks.div_ceil(workers as u64) as u32;

    let (mut world, mut sim) = World::single_hub(Config::default(), workers + 1);

    // CAB 0 is the tree root, workers hang below it (fan-out 4)
    let members: Vec<u16> = (0..=workers as u16).collect();
    let group = CollectiveGroup::tree(GROUP, members, 4);
    let mboxes = group.deploy(&mut world);

    for (w, &mb) in mboxes.iter().enumerate().skip(1) {
        world.cabs[w].fork_app(Box::new(Worker {
            note_mbox: mb,
            rank: w as u64 - 1,
            nworkers: workers as u64,
            tasks,
            chunk,
            epochs,
        }));
    }

    let result_mbox = world.cabs[0].shared.create_mailbox(true, HostOpMode::SharedMemory);
    world.cabs[0].fork_app(Box::new(Coordinator {
        note_mbox: mboxes[0],
        result_mbox,
        epochs,
        started: false,
    }));

    let total = Rc::new(Cell::new(0u64));
    let done = Rc::new(Cell::new(false));
    let finished_at = Rc::new(Cell::new(0u64));
    world.hosts[0].spawn(Box::new(Master {
        result_mbox,
        epochs,
        gathered: 0,
        total: total.clone(),
        done: done.clone(),
        finished_at: finished_at.clone(),
    }));

    let t0 = SimTime::ZERO;
    world.run_until(&mut sim, t0 + SimDuration::from_secs(60));
    assert!(done.get(), "task queue did not drain");

    // verify against the sequential answer
    let n = tasks * chunk;
    let expected: u64 = (0..n).fold(0u64, |a, v| a.wrapping_add(v.wrapping_mul(v)));
    assert_eq!(total.get(), expected, "distributed result must match sequential");

    println!("task queue: {tasks} tasks x {chunk} elements over {workers} CAB-resident workers");
    println!("  phases          : {epochs} (multicast down, sum-combined up)");
    println!("  result          : {:#x} (verified against sequential)", total.get());
    let _ = t0;
    println!("  simulated time  : {}", SimDuration::from_nanos(finished_at.get()));
    println!();
    println!("each phase was one multicast down the combining tree and one");
    println!("tree-barrier reduction back up — §5.3's application-level");
    println!("engine, with the coordination done inside the fabric.");
}
