//! §5.3 "Application-level Communication Engine": a divide-and-conquer
//! task queue where the *workers run on the communication processors*.
//!
//! A master process on host 0 farms work items (chunks of a numeric
//! reduction) to application threads running on the other CABs via the
//! request-response protocol, and gathers partial results — the
//! Noodles / COSMOS usage pattern the paper describes.
//!
//!     cargo run -p nectar-examples --bin task_queue -- --workers 4 --tasks 64

use std::cell::Cell;
use std::rc::Rc;

use nectar::cab::reqs::{self, rr_deliver_decode, rr_response_decode, SendReq};
use nectar::cab::{CabThread, Cx, HostOpMode, Step, WouldBlock};
use nectar::config::Config;
use nectar::host::{HostCx, HostProcess, HostStep};
use nectar::sim::{SimDuration, SimTime};
use nectar::world::World;
use nectar_examples::arg;

/// A worker thread on a CAB: serves compute requests from its service
/// mailbox. Each request carries a range [lo, hi); the reply is the
/// sum of squares over it. The compute burst charges simulated CPU
/// time proportional to the range.
struct Worker {
    service: u16,
}

impl CabThread for Worker {
    fn name(&self) -> &'static str {
        "worker"
    }

    fn run(&mut self, cx: &mut Cx<'_>) -> Step {
        match cx.begin_get(self.service) {
            Err(WouldBlock::Empty(c)) | Err(WouldBlock::NoSpace(c)) => Step::Block(c),
            Ok(msg) => {
                let bytes = cx.shared.msg_bytes(&msg).to_vec();
                cx.end_get(self.service, msg);
                let Some((client_cab, reply_mbox, req_id, payload)) = rr_deliver_decode(&bytes)
                else {
                    return Step::Yield;
                };
                let lo = u64::from_be_bytes(payload[..8].try_into().unwrap());
                let hi = u64::from_be_bytes(payload[8..16].try_into().unwrap());
                // the actual computation, with simulated CPU time
                let mut acc: u64 = 0;
                for v in lo..hi {
                    acc = acc.wrapping_add(v.wrapping_mul(v));
                }
                cx.charge(SimDuration::from_nanos(200) * (hi - lo));
                // reply through the request-response protocol
                let mut acts = Vec::new();
                let server = cx.proto.rr_servers.entry(self.service).or_default();
                server.reply(client_cab, reply_mbox, req_id, acc.to_be_bytes().to_vec(), &mut acts);
                for act in acts {
                    if let nectar::stack::reqresp::RrServerAction::Transmit { dst_cab, packet } =
                        act
                    {
                        cx.charge(cx.costs.reqresp_proc);
                        cx.datalink_send(
                            dst_cab,
                            nectar::wire::datalink::DatalinkProto::ReqResp,
                            0,
                            &packet,
                        );
                    }
                }
                Step::Yield
            }
        }
    }
}

/// The master on host 0: dispatches tasks round-robin, gathers sums.
///
/// A request-response reply mailbox binds to exactly one server
/// (replies carry only (reply_mbox, req_id), so fanning out to several
/// workers through one mailbox would collide on req_id — the protocol
/// refuses the rebind while calls are outstanding). The master
/// therefore keeps one reply mailbox per worker, paired by index.
struct Master {
    workers: Vec<(u16, u16, u16)>, // (cab, service mailbox, reply mailbox)
    tasks: u64,
    chunk: u64,
    dispatched: u64,
    gathered: u64,
    total: Rc<Cell<u64>>,
    done: Rc<Cell<bool>>,
    finished_at: Rc<Cell<u64>>,
    outstanding: u32,
    started: bool,
}

impl HostProcess for Master {
    fn name(&self) -> &'static str {
        "master"
    }

    fn run(&mut self, cx: &mut HostCx<'_>) -> HostStep {
        if !self.started {
            self.started = true;
            return HostStep::Yield;
        }
        // gather replies from every worker's reply mailbox
        for &(_, _, reply) in &self.workers {
            while let Some((_, bytes)) = cx.get_message(reply) {
                if let Some((_req, payload)) = rr_response_decode(&bytes) {
                    let part = u64::from_be_bytes(payload[..8].try_into().unwrap());
                    self.total.set(self.total.get().wrapping_add(part));
                    self.gathered += 1;
                    self.outstanding -= 1;
                }
            }
        }
        if self.gathered == self.tasks {
            self.done.set(true);
            self.finished_at.set(cx.now().as_nanos());
            return HostStep::Done;
        }
        // keep a bounded number of tasks in flight per worker
        while self.dispatched < self.tasks && self.outstanding < 2 * self.workers.len() as u32 {
            let w = &self.workers[(self.dispatched as usize) % self.workers.len()];
            let lo = self.dispatched * self.chunk;
            let hi = lo + self.chunk;
            let mut payload = Vec::with_capacity(16);
            payload.extend_from_slice(&lo.to_be_bytes());
            payload.extend_from_slice(&hi.to_be_bytes());
            let req = SendReq { dst_cab: w.0, dst_mbox: w.1, src_mbox: w.2 };
            if cx.put_message(reqs::MB_RR_SEND, &req.encode(&payload)).is_ok() {
                self.dispatched += 1;
                self.outstanding += 1;
            } else {
                break;
            }
        }
        HostStep::Yield
    }
}

fn main() {
    let workers: usize = arg("--workers", 4);
    let tasks: u64 = arg("--tasks", 64);
    let chunk: u64 = 1000;

    let (mut world, mut sim) = World::single_hub(Config::default(), workers + 1);
    let mut targets = Vec::new();
    for w in 1..=workers {
        let svc = world.cabs[w].shared.create_mailbox(false, HostOpMode::SharedMemory);
        world.cabs[w].fork_app(Box::new(Worker { service: svc }));
        let reply = world.cabs[0].shared.create_mailbox(true, HostOpMode::SharedMemory);
        targets.push((w as u16, svc, reply));
    }
    let total = Rc::new(Cell::new(0u64));
    let done = Rc::new(Cell::new(false));
    let finished_at = Rc::new(Cell::new(0u64));
    world.hosts[0].spawn(Box::new(Master {
        workers: targets,
        tasks,
        chunk,
        dispatched: 0,
        gathered: 0,
        total: total.clone(),
        done: done.clone(),
        finished_at: finished_at.clone(),
        outstanding: 0,
        started: false,
    }));
    let t0 = SimTime::ZERO;
    world.run_until(&mut sim, t0 + SimDuration::from_secs(60));
    assert!(done.get(), "task queue did not drain");

    // verify against the sequential answer
    let n = tasks * chunk;
    let expected: u64 = (0..n).fold(0u64, |a, v| a.wrapping_add(v.wrapping_mul(v)));
    assert_eq!(total.get(), expected, "distributed result must match sequential");

    println!("task queue: {tasks} tasks x {chunk} elements over {workers} CAB-resident workers");
    println!("  result          : {:#x} (verified against sequential)", total.get());
    let _ = t0;
    println!("  simulated time  : {}", SimDuration::from_nanos(finished_at.get()));
    println!();
    println!("the workers ran as application threads on the communication");
    println!("processors themselves — §5.3's application-level engine.");
}
