//! Bulk TCP/IP transfer between two host processes, with optional
//! fiber loss injection to exercise retransmission, and end-to-end
//! goodput reporting — the protocol-engine mode of §5.2.
//!
//!     cargo run -p nectar-examples --bin tcp_file_transfer -- --loss 0.01 --kib 512

use nectar::cab::reqs::TcpCtl;
use nectar::cab::HostOpMode;
use nectar::config::Config;
use nectar::scenario::{HostSink, HostTcpStreamer};
use nectar::sim::{SimDuration, SimTime};
use nectar::world::World;
use nectar_examples::arg;

fn main() {
    let loss: f64 = arg("--loss", 0.0);
    let kib: u64 = arg("--kib", 256);
    let total = kib * 1024;

    let mut config = Config::default();
    config.faults.loss = loss;
    let (mut world, mut sim) = World::single_hub(config, 2);

    // server side: listen on port 5000, deliver accepted-connection
    // data into a host-readable mailbox
    let accept = world.cabs[1].shared.create_mailbox(true, HostOpMode::SharedMemory);
    let data = world.cabs[1].shared.create_mailbox(true, HostOpMode::SharedMemory);
    let listen = TcpCtl::Listen { port: 5000, accept_mbox: accept }.encode();
    let msg = world.cabs[1].shared.begin_put(nectar::cab::reqs::MB_TCP_CTL, listen.len()).unwrap();
    world.cabs[1].shared.msg_write(&msg, 0, &listen);
    world.cabs[1].shared.end_put(nectar::cab::reqs::MB_TCP_CTL, msg);

    let (sink, meter, received, done) = HostSink::new(data, Some(accept), total);
    world.hosts[1].spawn(Box::new(sink));

    let src = world.cabs[0].shared.create_mailbox(true, HostOpMode::SharedMemory);
    let (streamer, _) = HostTcpStreamer::new(1, 5000, src, 8192, total);
    world.hosts[0].spawn(Box::new(streamer));

    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(300));

    println!("tcp file transfer ({kib} KiB, fiber loss {:.2}%)", loss * 100.0);
    println!("  delivered    : {} of {} bytes", received.get(), total);
    println!("  goodput      : {:.1} Mbit/s", meter.borrow().mbits_per_sec_to_last());
    println!("  frames lost  : {}", world.stats.frames_lost_injected);
    let sender = &world.cabs[0];
    for id in sender.proto.tcp_conns.keys() {
        if let Some(sock) = sender.proto.tcp.socket(*id) {
            let st = sock.stats();
            println!(
                "  tcp sender   : {} segs out, {} retransmits, {} fast retransmits, {} timeouts",
                st.segs_out, st.retransmits, st.fast_retransmits, st.timeouts
            );
        }
    }
    assert!(done.get(), "transfer did not complete");
    println!("  integrity    : complete in-order stream received");
}
