//! The three CAB interfaces of §5, side by side on the same workload:
//! a 256 KiB host-to-host transfer.
//!
//! 1. **Network device** (§5.1): host-resident TCP/IP, the CAB only
//!    moves raw packets.
//! 2. **Protocol engine** (§5.2): TCP/IP offloaded to the CAB.
//! 3. **Application-level engine** (§5.3): the Nectar-specific RMP
//!    with application mailboxes, the leanest path.
//!
//!     cargo run -p nectar-examples --bin network_modes

use nectar::cab::reqs::TcpCtl;
use nectar::cab::HostOpMode;
use nectar::config::Config;
use nectar::netdev::{HostStackSink, HostStackStreamer, HostWire, NETDEV_MTU};
use nectar::scenario::{HostRmpStreamer, HostSink, HostTcpStreamer};
use nectar::sim::{SimDuration, SimTime};
use nectar::world::World;

const TOTAL: u64 = 256 * 1024;

fn network_device_mode() -> f64 {
    let (mut world, mut sim) = World::single_hub(Config::default(), 2);
    let (sink, meter, _, done) =
        HostStackSink::new(1, HostWire::CabRaw { dst_cab: 0 }, 5000, TOTAL);
    world.hosts[1].spawn(Box::new(sink));
    let (streamer, _) =
        HostStackStreamer::new(0, HostWire::CabRaw { dst_cab: 1 }, 5000, NETDEV_MTU - 44, TOTAL);
    world.hosts[0].spawn(Box::new(streamer));
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(120));
    assert!(done.get());
    let v = meter.borrow().mbits_per_sec_to_last();
    v
}

fn protocol_engine_mode() -> f64 {
    let (mut world, mut sim) = World::single_hub(Config::default(), 2);
    let accept = world.cabs[1].shared.create_mailbox(true, HostOpMode::SharedMemory);
    let data = world.cabs[1].shared.create_mailbox(true, HostOpMode::SharedMemory);
    let listen = TcpCtl::Listen { port: 5000, accept_mbox: accept }.encode();
    let msg = world.cabs[1].shared.begin_put(nectar::cab::reqs::MB_TCP_CTL, listen.len()).unwrap();
    world.cabs[1].shared.msg_write(&msg, 0, &listen);
    world.cabs[1].shared.end_put(nectar::cab::reqs::MB_TCP_CTL, msg);
    let (sink, meter, _, done) = HostSink::new(data, Some(accept), TOTAL);
    world.hosts[1].spawn(Box::new(sink));
    let src = world.cabs[0].shared.create_mailbox(true, HostOpMode::SharedMemory);
    let (streamer, _) = HostTcpStreamer::new(1, 5000, src, 8192, TOTAL);
    world.hosts[0].spawn(Box::new(streamer));
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(120));
    assert!(done.get());
    let v = meter.borrow().mbits_per_sec_to_last();
    v
}

fn application_engine_mode() -> f64 {
    let (mut world, mut sim) = World::single_hub(Config::default(), 2);
    let sink_mbox = world.cabs[1].shared.create_mailbox(true, HostOpMode::SharedMemory);
    let src_mbox = world.cabs[0].shared.create_mailbox(true, HostOpMode::SharedMemory);
    let (sink, meter, _, done) = HostSink::new(sink_mbox, None, TOTAL);
    world.hosts[1].spawn(Box::new(sink));
    let (streamer, _) = HostRmpStreamer::new((1, sink_mbox), src_mbox, 8192, TOTAL);
    world.hosts[0].spawn(Box::new(streamer));
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(120));
    assert!(done.get());
    let v = meter.borrow().mbits_per_sec_to_last();
    v
}

fn main() {
    println!("the three CAB interfaces of §5, one 256 KiB host-to-host transfer each");
    println!();
    let nd = network_device_mode();
    println!("  1. network device   (host TCP/IP)   : {nd:>6.1} Mbit/s");
    let pe = protocol_engine_mode();
    println!("  2. protocol engine  (CAB TCP/IP)    : {pe:>6.1} Mbit/s");
    let ae = application_engine_mode();
    println!("  3. application mode (RMP+mailboxes) : {ae:>6.1} Mbit/s");
    println!();
    println!("offloading the protocol to the CAB buys {:.1}x over the", pe / nd);
    println!("network-device path — the paper's §6.3 argument (6.4 vs 24 Mbit/s).");
    assert!(pe > nd * 1.5);
}
