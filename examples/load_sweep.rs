//! A multi-client workload fleet end to end: deploy a mixed-protocol
//! client fleet against CAB-resident echo services, run it under an
//! open-loop Poisson schedule, and print the coordinated-omission-
//! correct SLO report per transport.
//!
//!     cargo run -p nectar-examples --bin load_sweep
//!
//! Everything printed is derived from the deterministic simulation
//! (integer nanoseconds, no wall clock), so the output is byte-
//! identical across runs — CI runs this twice and diffs the bytes.

use nectar::config::Config;
use nectar::world::World;
use nectar_load::{deploy_fleet, Arrival, FleetPlan, LoadTransport, SizeDist};
use nectar_sim::{SimDuration, SimTime};

fn main() {
    let plan = FleetPlan {
        seed: 0x10ad,
        mix: vec![
            (LoadTransport::ReqResp, 16),
            (LoadTransport::Rmp, 16),
            (LoadTransport::Udp, 16),
            (LoadTransport::Tcp, 16),
        ],
        clients_per_cab: 8,
        endpoints_per_client: 1,
        arrival: Arrival::Open { mean_gap: SimDuration::from_millis(2) },
        size: SizeDist::Uniform(32, 256),
        timeout: SimDuration::from_millis(25),
        start: SimTime::ZERO + SimDuration::from_millis(1),
        stop: SimTime::ZERO + SimDuration::from_millis(41),
    };
    let config = Config { seed: plan.seed, oracle: Some(true), ..Config::default() };
    let topo = plan.topology();
    println!(
        "fleet: {} clients on {} CABs ({} HUBs), 40 ms of open-loop Poisson load",
        plan.total_clients(),
        topo.cabs(),
        topo.hubs,
    );
    let (mut world, mut sim) = World::new(config, topo);
    let fleet = deploy_fleet(&mut world, &plan);
    // generous horizon; the queue drains once every client finishes
    world.run_until(&mut sim, plan.stop + SimDuration::from_secs(2));

    println!();
    println!("| transport | sent | responses | timeouts | late | p50 µs | p90 µs | p99 µs |");
    println!("|---|---:|---:|---:|---:|---:|---:|---:|");
    let rec = fleet.recorder.borrow();
    for t in rec.active() {
        let r = rec.record(t);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            t.name(),
            r.requests_sent,
            r.responses,
            r.timeouts,
            r.late_dispatch,
            r.latency.percentile_nanos(0.50) / 1_000,
            r.latency.percentile_nanos(0.90) / 1_000,
            r.latency.percentile_nanos(0.99) / 1_000,
        );
    }

    let led = *fleet.ledger.borrow();
    println!();
    println!(
        "ledger: intended={} sent={} responses={} timeouts={} failures={}",
        led.requests_intended, led.requests_sent, led.responses, led.timeouts, led.failures
    );
    assert_eq!(
        led.responses + led.timeouts + led.failures,
        led.requests_intended,
        "every request must resolve exactly once"
    );
    let snap = world.metrics();
    println!(
        "net/load/responses metric agrees: {}",
        snap.get("net/load/responses").unwrap() == led.responses
    );
}
