//! The paper's production deployment: 26 hosts on 2 HUBs (§6: "the
//! prototype system consists of 2 HUBs and 26 hosts in full-time
//! use"), with multi-hop source routing through the trunk.
//!
//! Runs an all-pairs latency survey from host 0 and a trunk-crossing
//! ping from every host, then prints the latency split between
//! same-HUB and cross-HUB destinations.
//!
//!     cargo run -p nectar-examples --bin multi_hub

use nectar::cab::HostOpMode;
use nectar::config::Config;
use nectar::scenario::{CabEcho, CabPinger, Transport};
use nectar::sim::{SimDuration, SimTime};
use nectar::topology::Topology;
use nectar::world::World;

fn main() {
    let topo = Topology::two_hubs(26);
    let (mut world, mut sim) = World::new(Config::default(), topo);
    println!("deployment: 26 hosts, 2 HUBs, one trunk (paper §6)");
    println!();

    // an echo thread on every CAB
    let mut services = Vec::new();
    for i in 0..26 {
        let svc = world.cabs[i].shared.create_mailbox(false, HostOpMode::SharedMemory);
        world.cabs[i]
            .fork_app(Box::new(CabEcho { transport: Transport::Datagram, recv_mbox: svc }));
        services.push(svc);
    }
    // CAB 0 pings every other CAB, one destination at a time so the
    // trunk's contribution is not buried in scheduler contention
    let mut same_hub = Vec::new();
    let mut cross_hub = Vec::new();
    let mut deadline = SimTime::ZERO;
    for dst in 1..26u16 {
        let reply = world.cabs[0].shared.create_mailbox(false, HostOpMode::SharedMemory);
        let (p, rtts, done) =
            CabPinger::new(Transport::Datagram, (dst, services[dst as usize]), reply, 32, 5);
        world.cabs[0].fork_app(Box::new(p));
        // kick CAB 0 so the new thread is scheduled
        deadline += SimDuration::from_millis(100);
        let at = sim.now();
        sim.at(at, |w, s| nectar::world::kick_cab(w, s, 0));
        world.run_until(&mut sim, deadline);
        assert!(done.get(), "ping to CAB {dst} did not finish");
        let m = rtts.borrow_mut().median().as_micros_f64();
        // interleaved attachment: even CABs on hub 0 with CAB 0
        if dst % 2 == 0 {
            same_hub.push(m);
        } else {
            cross_hub.push(m);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("  all 25 destinations answered");
    println!("  same-HUB  median RTT : {:>6.1} us over {} pairs", avg(&same_hub), same_hub.len());
    println!(
        "  cross-HUB median RTT : {:>6.1} us over {} pairs (one extra 700 ns HUB + trunk)",
        avg(&cross_hub),
        cross_hub.len()
    );
    println!();
    println!("  frames forwarded hub0: {:?}", world.hubs[0].stats());
    println!("  frames forwarded hub1: {:?}", world.hubs[1].stats());
    let delta = avg(&cross_hub) - avg(&same_hub);
    println!(
        "  trunk cost           : {delta:>6.2} us per roundtrip (2 extra HUB transits + fiber)"
    );
    assert!(delta > 0.0, "the trunk hop must cost something");
}
