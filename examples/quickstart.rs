//! Quickstart: the five-minute tour of the Nectar reproduction.
//!
//! Builds a two-host network, sends a reliable message from host 0 to
//! a mailbox on CAB 1, makes a remote procedure call, and prints what
//! happened — the basic Nectarine workflow of §3.5.
//!
//!     cargo run -p nectar-examples --bin quickstart

use nectar::cab::HostOpMode;
use nectar::config::Config;
use nectar::scenario::{EchoServer, Pinger, Transport};
use nectar::sim::{SimDuration, SimTime};
use nectar::world::World;

fn main() {
    // 1. Build the world: two hosts, each behind a CAB, one 16x16 HUB.
    let (mut world, mut sim) = World::single_hub(Config::default(), 2);

    // 2. Create mailboxes: a service mailbox on CAB 1 (host-readable so
    //    the host process on host 1 can consume from it) and a reply
    //    mailbox on CAB 0.
    let service = world.cabs[1].shared.create_mailbox(true, HostOpMode::SharedMemory);
    let reply = world.cabs[0].shared.create_mailbox(true, HostOpMode::SharedMemory);

    // 3. Host 1 runs an echo server on the service mailbox; host 0
    //    makes 20 request-response (RPC) calls through it and measures
    //    round trips.
    let (echo, echoed) = EchoServer::new(Transport::ReqResp, service, 0, false);
    world.hosts[1].spawn(Box::new(echo));
    let (pinger, rtts, done) =
        Pinger::new(Transport::ReqResp, (1, service), reply, 0, 64, 20, false);
    world.hosts[0].spawn(Box::new(pinger));

    // 4. Run the simulation.
    world.run_until(&mut sim, SimTime::ZERO + SimDuration::from_secs(2));

    // 5. Report.
    assert!(done.get(), "the pinger should have finished");
    let mut rtts = rtts.borrow_mut();
    println!("nectar quickstart");
    println!("  remote procedure calls completed : 20");
    println!("  requests served by host 1        : {}", echoed.get());
    println!("  median round trip                : {}", rtts.median());
    println!("  min / max                        : {} / {}", rtts.min(), rtts.max());
    println!();
    println!("the paper's abstract promises RPC under 500 us between host");
    println!("processes; this run measured {}.", rtts.median());

    // 6. The observability snapshot: every counter, CPU meter and
    //    queue high-watermark in the installation, as deterministic
    //    JSON (same seed => byte-identical output).
    println!();
    println!("metrics snapshot:");
    print!("{}", world.metrics_json());
}
