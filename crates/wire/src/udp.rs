//! UDP header (RFC 768).
//!
//! The paper's UDP runs as its own server thread on the CAB (§4.1:
//! "UDP and TCP each have their own server threads") and appears in
//! Table 1 as the baseline the Nectar-specific protocols are compared
//! against.

use std::net::Ipv4Addr;

use crate::ipv4::{IpProtocol, Ipv4Header};
use crate::{get_u16, put_u16, WireError};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// Parsed UDP header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UdpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    /// Length of header + payload.
    pub length: u16,
}

impl UdpHeader {
    /// Parse the UDP header and verify length and checksum against the
    /// enclosing IP header (for the pseudo-header).
    pub fn parse(ip: &Ipv4Header, data: &[u8]) -> Result<UdpHeader, WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let length = get_u16(data, 4);
        if (length as usize) < HEADER_LEN || data.len() < length as usize {
            return Err(WireError::BadLength);
        }
        let stored = get_u16(data, 6);
        if stored != 0 {
            // checksum covers pseudo-header + header + payload
            let mut acc = ip.pseudo_header_checksum(length as usize);
            acc.write(&data[..length as usize]);
            if acc.finish_raw() != 0 {
                return Err(WireError::BadChecksum);
            }
        }
        Ok(UdpHeader { src_port: get_u16(data, 0), dst_port: get_u16(data, 2), length })
    }

    /// Build a full UDP datagram (header + payload) with checksum,
    /// given the addresses that will appear in the enclosing IP header.
    pub fn build(
        src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<u8> {
        let length = HEADER_LEN + payload.len();
        assert!(length <= u16::MAX as usize, "UDP datagram too large");
        let mut dgram = vec![0u8; length];
        put_u16(&mut dgram, 0, src_port);
        put_u16(&mut dgram, 2, dst_port);
        put_u16(&mut dgram, 4, length as u16);
        dgram[HEADER_LEN..].copy_from_slice(payload);
        let ip = Ipv4Header::new(src, dst, IpProtocol::UDP, length);
        let mut acc = ip.pseudo_header_checksum(length);
        acc.write(&dgram);
        let c = acc.finish(); // UDP: 0 is "no checksum", so 0 -> 0xffff
        put_u16(&mut dgram, 6, c);
        dgram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    fn ip_for(dgram: &[u8]) -> Ipv4Header {
        let (s, d) = addrs();
        Ipv4Header::new(s, d, IpProtocol::UDP, dgram.len())
    }

    #[test]
    fn build_parse_roundtrip() {
        let (s, d) = addrs();
        let dgram = UdpHeader::build(s, 1234, d, 5678, b"payload");
        let h = UdpHeader::parse(&ip_for(&dgram), &dgram).unwrap();
        assert_eq!(h.src_port, 1234);
        assert_eq!(h.dst_port, 5678);
        assert_eq!(h.length as usize, HEADER_LEN + 7);
        assert_eq!(&dgram[HEADER_LEN..], b"payload");
    }

    #[test]
    fn empty_payload() {
        let (s, d) = addrs();
        let dgram = UdpHeader::build(s, 1, d, 2, &[]);
        let h = UdpHeader::parse(&ip_for(&dgram), &dgram).unwrap();
        assert_eq!(h.length as usize, HEADER_LEN);
    }

    #[test]
    fn corruption_detected() {
        let (s, d) = addrs();
        let mut dgram = UdpHeader::build(s, 1234, d, 5678, b"some payload data");
        dgram[12] ^= 0x01;
        assert_eq!(UdpHeader::parse(&ip_for(&dgram), &dgram), Err(WireError::BadChecksum));
    }

    #[test]
    fn wrong_pseudo_header_detected() {
        // Same datagram, parsed as if addressed elsewhere: checksum must
        // fail, since the pseudo-header covers the IP addresses.
        let (s, d) = addrs();
        let dgram = UdpHeader::build(s, 1234, d, 5678, b"data");
        let other_ip = Ipv4Header::new(s, Ipv4Addr::new(10, 0, 0, 3), IpProtocol::UDP, dgram.len());
        assert_eq!(UdpHeader::parse(&other_ip, &dgram), Err(WireError::BadChecksum));
    }

    #[test]
    fn zero_checksum_accepted() {
        let (s, d) = addrs();
        let mut dgram = UdpHeader::build(s, 1, d, 2, b"x");
        put_u16(&mut dgram, 6, 0); // sender opted out of checksumming
        let h = UdpHeader::parse(&ip_for(&dgram), &dgram).unwrap();
        assert_eq!(h.dst_port, 2);
    }

    #[test]
    fn truncated_and_bad_length() {
        let (s, d) = addrs();
        let dgram = UdpHeader::build(s, 1, d, 2, b"abcdef");
        assert_eq!(UdpHeader::parse(&ip_for(&dgram), &dgram[..4]), Err(WireError::Truncated));
        let mut short = dgram.clone();
        put_u16(&mut short, 4, 4); // length < header
        assert_eq!(UdpHeader::parse(&ip_for(&short), &short), Err(WireError::BadLength));
        let mut long = dgram;
        put_u16(&mut long, 4, 200); // length > buffer
        assert_eq!(UdpHeader::parse(&ip_for(&long), &long), Err(WireError::BadLength));
    }
}
