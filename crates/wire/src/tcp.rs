//! TCP segment header (RFC 793) with the MSS, window-scale (RFC 7323)
//! and SACK (RFC 2018) options.
//!
//! The paper implements TCP almost entirely in CAB system threads
//! (§4.2): the input thread "examines the TCP header, checksums the
//! entire packet, and performs standard TCP input processing". This
//! module provides the header format, sequence-number arithmetic, and
//! the software checksum whose cost dominates Figure 7; the state
//! machine lives in `nectar-stack`.

use std::fmt;
use std::net::Ipv4Addr;

use crate::ipv4::{IpProtocol, Ipv4Header};
use crate::{get_u16, get_u32, put_u16, put_u32, WireError};

/// Length of the option-free TCP header.
pub const HEADER_LEN: usize = 20;
/// Length of the header with the 4-byte MSS option we emit on SYNs.
pub const HEADER_LEN_WITH_MSS: usize = 24;
/// Most SACK blocks a header carries (RFC 2018 caps at 4 without
/// timestamps; we never emit timestamps).
pub const MAX_SACK_BLOCKS: usize = 4;
/// Largest window-scale shift a peer may use (RFC 7323 §2.3).
pub const MAX_WSCALE: u8 = 14;

/// A TCP sequence number with wrapping (modulo 2^32) comparison, per
/// RFC 793's sequence space arithmetic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SeqNum(pub u32);

impl SeqNum {
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, n: usize) -> SeqNum {
        SeqNum(self.0.wrapping_add(n as u32))
    }

    /// Signed distance from `other` to `self` in sequence space.
    pub fn since(self, other: SeqNum) -> i32 {
        self.0.wrapping_sub(other.0) as i32
    }

    /// `self < other` in wrapping order.
    pub fn before(self, other: SeqNum) -> bool {
        self.since(other) < 0
    }

    /// `self <= other` in wrapping order.
    pub fn before_eq(self, other: SeqNum) -> bool {
        self.since(other) <= 0
    }

    pub fn after(self, other: SeqNum) -> bool {
        self.since(other) > 0
    }

    pub fn after_eq(self, other: SeqNum) -> bool {
        self.since(other) >= 0
    }

    pub fn max(self, other: SeqNum) -> SeqNum {
        if self.after(other) {
            self
        } else {
            other
        }
    }

    pub fn min(self, other: SeqNum) -> SeqNum {
        if self.before(other) {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A tiny local stand-in for the `bitflags` crate: we only need
/// contains / union / bit tests on a `u8`.
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty {
            $(const $flag:ident = $val:expr;)*
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
        pub struct $name(pub $ty);

        impl $name {
            $(pub const $flag: $name = $name($val);)*
            pub const EMPTY: $name = $name(0);

            pub fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }

            pub fn intersects(self, other: $name) -> bool {
                self.0 & other.0 != 0
            }
        }

        impl std::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name {
                $name(self.0 | rhs.0)
            }
        }

        impl std::ops::BitOrAssign for $name {
            fn bitor_assign(&mut self, rhs: $name) {
                self.0 |= rhs.0;
            }
        }
    };
}

bitflags_lite! {
    /// TCP header flags.
    pub struct TcpFlags: u8 {
        const FIN = 0x01;
        const SYN = 0x02;
        const RST = 0x04;
        const PSH = 0x08;
        const ACK = 0x10;
        const URG = 0x20;
    }
}

/// A fixed-capacity set of SACK blocks, kept inline so [`TcpHeader`]
/// stays `Copy`. Blocks are `[left, right)` half-open sequence ranges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SackBlocks {
    len: u8,
    blocks: [(SeqNum, SeqNum); MAX_SACK_BLOCKS],
}

impl SackBlocks {
    pub const EMPTY: SackBlocks =
        SackBlocks { len: 0, blocks: [(SeqNum(0), SeqNum(0)); MAX_SACK_BLOCKS] };

    /// Append a block; silently ignored once full (the header carries at
    /// most [`MAX_SACK_BLOCKS`], further blocks are simply not sent).
    pub fn push(&mut self, left: SeqNum, right: SeqNum) {
        if (self.len as usize) < MAX_SACK_BLOCKS {
            self.blocks[self.len as usize] = (left, right);
            self.len += 1;
        }
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn clear(&mut self) {
        self.len = 0;
    }

    pub fn iter(&self) -> impl Iterator<Item = (SeqNum, SeqNum)> + '_ {
        self.blocks[..self.len as usize].iter().copied()
    }
}

/// Parsed TCP header (unknown options are skipped, not stored).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: SeqNum,
    pub ack: SeqNum,
    pub flags: TcpFlags,
    pub window: u16,
    pub urgent: u16,
    /// Maximum segment size from a SYN's MSS option, if present.
    pub mss: Option<u16>,
    /// Window-scale shift from a SYN's WSopt (RFC 7323), clamped to
    /// [`MAX_WSCALE`] on parse as the RFC directs.
    pub wscale: Option<u8>,
    /// SACK-permitted option seen (SYN segments only, RFC 2018).
    pub sack_permitted: bool,
    /// SACK blocks carried on this segment.
    pub sack: SackBlocks,
    /// Total header length including options (where payload starts).
    pub header_len: usize,
}

impl TcpHeader {
    /// A header with given ports and everything else zeroed — the usual
    /// starting point for the state machine's emit path.
    pub fn new(src_port: u16, dst_port: u16) -> TcpHeader {
        TcpHeader {
            src_port,
            dst_port,
            seq: SeqNum(0),
            ack: SeqNum(0),
            flags: TcpFlags::EMPTY,
            window: 0,
            urgent: 0,
            mss: None,
            wscale: None,
            sack_permitted: false,
            sack: SackBlocks::EMPTY,
            header_len: HEADER_LEN,
        }
    }

    /// Parse a TCP header. If `verify_checksum` is set, the segment
    /// checksum is validated against the enclosing IP header — the
    /// "TCP w/o checksum" mode of Figure 7 passes `false` here, exactly
    /// as the experimental TCP variant in the paper skipped software
    /// checksumming and relied on the hardware CRC.
    pub fn parse(
        ip: &Ipv4Header,
        data: &[u8],
        verify_checksum: bool,
    ) -> Result<TcpHeader, WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let header_len = ((data[12] >> 4) as usize) * 4;
        if header_len < HEADER_LEN || data.len() < header_len {
            return Err(WireError::BadLength);
        }
        if verify_checksum {
            let mut acc = ip.pseudo_header_checksum(data.len());
            acc.write(data);
            if acc.finish_raw() != 0 {
                return Err(WireError::BadChecksum);
            }
        }
        // scan options: MSS (2), window scale (3), SACK-permitted (4),
        // SACK blocks (5); anything else is skipped by its length byte
        let mut mss = None;
        let mut wscale = None;
        let mut sack_permitted = false;
        let mut sack = SackBlocks::EMPTY;
        let mut i = HEADER_LEN;
        while i < header_len {
            match data[i] {
                0 => break,  // end of options
                1 => i += 1, // no-op
                2 => {
                    if i + 4 > header_len || data[i + 1] != 4 {
                        return Err(WireError::BadField);
                    }
                    mss = Some(get_u16(data, i + 2));
                    i += 4;
                }
                3 => {
                    if i + 3 > header_len || data[i + 1] != 3 {
                        return Err(WireError::BadField);
                    }
                    wscale = Some(data[i + 2].min(MAX_WSCALE));
                    i += 3;
                }
                4 => {
                    if i + 2 > header_len || data[i + 1] != 2 {
                        return Err(WireError::BadField);
                    }
                    sack_permitted = true;
                    i += 2;
                }
                5 => {
                    if i + 2 > header_len {
                        return Err(WireError::BadField);
                    }
                    let l = data[i + 1] as usize;
                    if l < 10 || !(l - 2).is_multiple_of(8) || i + l > header_len {
                        return Err(WireError::BadField);
                    }
                    let mut j = i + 2;
                    while j + 8 <= i + l {
                        // blocks beyond capacity are dropped, not an error
                        sack.push(SeqNum(get_u32(data, j)), SeqNum(get_u32(data, j + 4)));
                        j += 8;
                    }
                    i += l;
                }
                _ => {
                    // skip unknown option by its length byte
                    if i + 1 >= header_len {
                        return Err(WireError::BadField);
                    }
                    let l = data[i + 1] as usize;
                    if l < 2 || i + l > header_len {
                        return Err(WireError::BadField);
                    }
                    i += l;
                }
            }
        }
        Ok(TcpHeader {
            src_port: get_u16(data, 0),
            dst_port: get_u16(data, 2),
            seq: SeqNum(get_u32(data, 4)),
            ack: SeqNum(get_u32(data, 8)),
            flags: TcpFlags(data[13] & 0x3f),
            window: get_u16(data, 14),
            urgent: get_u16(data, 18),
            mss,
            wscale,
            sack_permitted,
            sack,
            header_len,
        })
    }

    /// Build a full TCP segment (header + payload). If `compute_checksum`
    /// is false the checksum field is left zero (the experimental
    /// checksum-off mode; the CAB's hardware CRC still protects the
    /// frame).
    pub fn build(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload: &[u8],
        compute_checksum: bool,
    ) -> Vec<u8> {
        let mut opts = [0u8; 40];
        let mut o = 0;
        if let Some(mss) = self.mss {
            opts[o] = 2;
            opts[o + 1] = 4;
            opts[o + 2] = (mss >> 8) as u8;
            opts[o + 3] = mss as u8;
            o += 4;
        }
        if let Some(ws) = self.wscale {
            opts[o] = 3;
            opts[o + 1] = 3;
            opts[o + 2] = ws;
            o += 3;
        }
        if self.sack_permitted {
            opts[o] = 4;
            opts[o + 1] = 2;
            o += 2;
        }
        if !self.sack.is_empty() {
            opts[o] = 5;
            opts[o + 1] = 2 + 8 * self.sack.len() as u8;
            o += 2;
            for (l, r) in self.sack.iter() {
                opts[o..o + 4].copy_from_slice(&l.0.to_be_bytes());
                opts[o + 4..o + 8].copy_from_slice(&r.0.to_be_bytes());
                o += 8;
            }
        }
        while o % 4 != 0 {
            opts[o] = 1; // NOP padding to the 32-bit boundary
            o += 1;
        }
        let header_len = HEADER_LEN + o;
        let total = header_len + payload.len();
        let mut seg = vec![0u8; total];
        put_u16(&mut seg, 0, self.src_port);
        put_u16(&mut seg, 2, self.dst_port);
        put_u32(&mut seg, 4, self.seq.0);
        put_u32(&mut seg, 8, self.ack.0);
        seg[12] = ((header_len / 4) as u8) << 4;
        seg[13] = self.flags.0;
        put_u16(&mut seg, 14, self.window);
        put_u16(&mut seg, 18, self.urgent);
        seg[HEADER_LEN..header_len].copy_from_slice(&opts[..o]);
        seg[header_len..].copy_from_slice(payload);
        if compute_checksum {
            let ip = Ipv4Header::new(src, dst, IpProtocol::TCP, total);
            let mut acc = ip.pseudo_header_checksum(total);
            acc.write(&seg);
            let c = acc.finish_raw();
            put_u16(&mut seg, 16, c);
        }
        seg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    fn ip_for(seg: &[u8]) -> Ipv4Header {
        let (s, d) = addrs();
        Ipv4Header::new(s, d, IpProtocol::TCP, seg.len())
    }

    fn sample_header() -> TcpHeader {
        let mut h = TcpHeader::new(2000, 80);
        h.seq = SeqNum(0x1000_0000);
        h.ack = SeqNum(77);
        h.flags = TcpFlags::ACK | TcpFlags::PSH;
        h.window = 4096;
        h
    }

    #[test]
    fn seqnum_wrapping_arithmetic() {
        let a = SeqNum(u32::MAX - 1);
        let b = a.add(4);
        assert_eq!(b, SeqNum(2));
        assert!(a.before(b));
        assert!(b.after(a));
        assert_eq!(b.since(a), 4);
        assert_eq!(a.since(b), -4);
        assert!(a.before_eq(a));
        assert!(a.after_eq(a));
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn flags_ops() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
        assert!(f.intersects(TcpFlags::SYN | TcpFlags::FIN));
        assert!(!f.intersects(TcpFlags::FIN));
    }

    #[test]
    fn build_parse_roundtrip() {
        let (s, d) = addrs();
        let h = sample_header();
        let seg = h.build(s, d, b"GET /", true);
        let parsed = TcpHeader::parse(&ip_for(&seg), &seg, true).unwrap();
        assert_eq!(parsed.src_port, 2000);
        assert_eq!(parsed.dst_port, 80);
        assert_eq!(parsed.seq, h.seq);
        assert_eq!(parsed.ack, h.ack);
        assert_eq!(parsed.flags, h.flags);
        assert_eq!(parsed.window, 4096);
        assert_eq!(parsed.mss, None);
        assert_eq!(parsed.header_len, HEADER_LEN);
        assert_eq!(&seg[parsed.header_len..], b"GET /");
    }

    #[test]
    fn mss_option_roundtrip() {
        let (s, d) = addrs();
        let mut h = sample_header();
        h.flags = TcpFlags::SYN;
        h.mss = Some(4056);
        let seg = h.build(s, d, &[], true);
        assert_eq!(seg.len(), HEADER_LEN_WITH_MSS);
        let parsed = TcpHeader::parse(&ip_for(&seg), &seg, true).unwrap();
        assert_eq!(parsed.mss, Some(4056));
        assert_eq!(parsed.header_len, HEADER_LEN_WITH_MSS);
    }

    #[test]
    fn checksum_detects_corruption() {
        let (s, d) = addrs();
        let seg0 = sample_header().build(s, d, b"data to protect", true);
        for i in 0..seg0.len() {
            let mut seg = seg0.clone();
            seg[i] ^= 0x08;
            let r = TcpHeader::parse(&ip_for(&seg), &seg, true);
            assert!(r.is_err() || seg == seg0, "undetected corruption at byte {i}");
        }
    }

    #[test]
    fn checksum_off_mode_accepts_zero_field() {
        let (s, d) = addrs();
        let seg = sample_header().build(s, d, b"data", false);
        assert_eq!(get_u16(&seg, 16), 0);
        // parses fine without verification…
        let parsed = TcpHeader::parse(&ip_for(&seg), &seg, false).unwrap();
        assert_eq!(parsed.dst_port, 80);
        // …but fails verification, as it must
        assert_eq!(TcpHeader::parse(&ip_for(&seg), &seg, true), Err(WireError::BadChecksum));
    }

    #[test]
    fn unknown_options_skipped() {
        let (s, d) = addrs();
        let mut h = sample_header();
        h.mss = Some(1460);
        let mut seg = h.build(s, d, &[], false);
        // replace MSS option with unknown kind 77, len 4
        seg[20] = 77;
        let parsed = TcpHeader::parse(&ip_for(&seg), &seg, false).unwrap();
        assert_eq!(parsed.mss, None);
    }

    #[test]
    fn malformed_options_rejected() {
        let (s, d) = addrs();
        let mut h = sample_header();
        h.mss = Some(1460);
        let good = h.build(s, d, &[], false);
        // MSS with wrong length byte
        let mut seg = good.clone();
        seg[21] = 3;
        assert_eq!(TcpHeader::parse(&ip_for(&seg), &seg, false), Err(WireError::BadField));
        // unknown option with length overrunning the header
        let mut seg = good.clone();
        seg[20] = 77;
        seg[21] = 60;
        assert_eq!(TcpHeader::parse(&ip_for(&seg), &seg, false), Err(WireError::BadField));
        // unknown option with length < 2
        let mut seg = good;
        seg[20] = 77;
        seg[21] = 1;
        assert_eq!(TcpHeader::parse(&ip_for(&seg), &seg, false), Err(WireError::BadField));
    }

    #[test]
    fn syn_options_roundtrip() {
        let (s, d) = addrs();
        let mut h = sample_header();
        h.flags = TcpFlags::SYN;
        h.mss = Some(4016);
        h.wscale = Some(7);
        h.sack_permitted = true;
        let seg = h.build(s, d, &[], true);
        assert_eq!(seg.len() % 4, 0, "header padded to a 32-bit boundary");
        let parsed = TcpHeader::parse(&ip_for(&seg), &seg, true).unwrap();
        assert_eq!(parsed.mss, Some(4016));
        assert_eq!(parsed.wscale, Some(7));
        assert!(parsed.sack_permitted);
        assert!(parsed.sack.is_empty());
    }

    #[test]
    fn sack_blocks_roundtrip() {
        let (s, d) = addrs();
        let mut h = sample_header();
        h.sack.push(SeqNum(1000), SeqNum(2000));
        h.sack.push(SeqNum(3000), SeqNum(4000));
        let seg = h.build(s, d, b"x", true);
        let parsed = TcpHeader::parse(&ip_for(&seg), &seg, true).unwrap();
        let blocks: Vec<_> = parsed.sack.iter().collect();
        assert_eq!(blocks, vec![(SeqNum(1000), SeqNum(2000)), (SeqNum(3000), SeqNum(4000))]);
        assert_eq!(&seg[parsed.header_len..], b"x");
    }

    #[test]
    fn sack_blocks_cap_at_four() {
        let mut b = SackBlocks::EMPTY;
        for k in 0..6u32 {
            b.push(SeqNum(k * 10), SeqNum(k * 10 + 5));
        }
        assert_eq!(b.len(), MAX_SACK_BLOCKS);
        assert_eq!(b.iter().last(), Some((SeqNum(30), SeqNum(35))));
    }

    #[test]
    fn wscale_clamped_on_parse() {
        let (s, d) = addrs();
        let mut h = sample_header();
        h.flags = TcpFlags::SYN;
        h.wscale = Some(30);
        let seg = h.build(s, d, &[], false);
        let parsed = TcpHeader::parse(&ip_for(&seg), &seg, false).unwrap();
        assert_eq!(parsed.wscale, Some(MAX_WSCALE));
    }

    #[test]
    fn malformed_new_options_rejected() {
        let (s, d) = addrs();
        let mut h = sample_header();
        h.flags = TcpFlags::SYN;
        h.wscale = Some(7);
        h.sack_permitted = true;
        let good = h.build(s, d, &[], false);
        // wscale with wrong length byte
        let mut seg = good.clone();
        seg[21] = 4;
        assert_eq!(TcpHeader::parse(&ip_for(&seg), &seg, false), Err(WireError::BadField));
        // sack-permitted with wrong length byte
        let mut seg = good.clone();
        seg[24] = 3;
        assert_eq!(TcpHeader::parse(&ip_for(&seg), &seg, false), Err(WireError::BadField));
        // sack blocks with a length not 2+8n
        let mut h2 = sample_header();
        h2.sack.push(SeqNum(1), SeqNum(2));
        let mut seg = h2.build(s, d, &[], false);
        seg[21] = 9;
        assert_eq!(TcpHeader::parse(&ip_for(&seg), &seg, false), Err(WireError::BadField));
    }

    #[test]
    fn truncated_rejected() {
        let (s, d) = addrs();
        let seg = sample_header().build(s, d, &[], false);
        assert_eq!(TcpHeader::parse(&ip_for(&seg), &seg[..10], false), Err(WireError::Truncated));
        // data offset claiming more header than buffer
        let mut seg2 = seg;
        seg2[12] = 0xf0;
        assert_eq!(TcpHeader::parse(&ip_for(&seg2), &seg2, false), Err(WireError::BadLength));
    }
}
