//! ICMP messages (RFC 792): echo, destination unreachable, time exceeded.
//!
//! §4.1: "ICMP is implemented as a mailbox upcall" on the CAB — it is
//! small enough to run as a side effect of writing the IP input mailbox
//! rather than in its own thread. This module covers the message types
//! that implementation needs: echo request/reply (ping) and the two
//! error messages IP generates (protocol/port unreachable, reassembly
//! time exceeded).

use crate::{checksum, get_u16, put_u16, WireError};

/// ICMP header length (type, code, checksum, rest-of-header).
pub const HEADER_LEN: usize = 8;

/// ICMP message kinds used in this reproduction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IcmpMessage {
    /// Echo request (type 8) with identifier, sequence and payload.
    EchoRequest { ident: u16, seq: u16, payload: Vec<u8> },
    /// Echo reply (type 0).
    EchoReply { ident: u16, seq: u16, payload: Vec<u8> },
    /// Destination unreachable (type 3); `original` carries the IP
    /// header + first 8 bytes of the offending datagram.
    DestUnreachable { code: UnreachableCode, original: Vec<u8> },
    /// Time exceeded (type 11, code 1 = fragment reassembly timeout).
    TimeExceeded { original: Vec<u8> },
}

/// Destination-unreachable codes we generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum UnreachableCode {
    Net = 0,
    Host = 1,
    Protocol = 2,
    Port = 3,
}

impl UnreachableCode {
    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => UnreachableCode::Net,
            1 => UnreachableCode::Host,
            2 => UnreachableCode::Protocol,
            3 => UnreachableCode::Port,
            _ => return Err(WireError::BadField),
        })
    }
}

impl IcmpMessage {
    /// Serialize with checksum.
    pub fn build(&self) -> Vec<u8> {
        let (ty, code, rest, body): (u8, u8, [u8; 4], &[u8]) = match self {
            IcmpMessage::EchoRequest { ident, seq, payload } => {
                let mut rest = [0u8; 4];
                rest[..2].copy_from_slice(&ident.to_be_bytes());
                rest[2..].copy_from_slice(&seq.to_be_bytes());
                (8, 0, rest, payload)
            }
            IcmpMessage::EchoReply { ident, seq, payload } => {
                let mut rest = [0u8; 4];
                rest[..2].copy_from_slice(&ident.to_be_bytes());
                rest[2..].copy_from_slice(&seq.to_be_bytes());
                (0, 0, rest, payload)
            }
            IcmpMessage::DestUnreachable { code, original } => (3, *code as u8, [0; 4], original),
            IcmpMessage::TimeExceeded { original } => (11, 1, [0; 4], original),
        };
        let mut msg = vec![0u8; HEADER_LEN + body.len()];
        msg[0] = ty;
        msg[1] = code;
        msg[4..8].copy_from_slice(&rest);
        msg[HEADER_LEN..].copy_from_slice(body);
        let c = checksum::internet_checksum(&msg);
        put_u16(&mut msg, 2, c);
        msg
    }

    /// Parse and validate the checksum.
    pub fn parse(data: &[u8]) -> Result<IcmpMessage, WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if !checksum::internet_checksum_valid(data) {
            return Err(WireError::BadChecksum);
        }
        let body = data[HEADER_LEN..].to_vec();
        match (data[0], data[1]) {
            (8, 0) => Ok(IcmpMessage::EchoRequest {
                ident: get_u16(data, 4),
                seq: get_u16(data, 6),
                payload: body,
            }),
            (0, 0) => Ok(IcmpMessage::EchoReply {
                ident: get_u16(data, 4),
                seq: get_u16(data, 6),
                payload: body,
            }),
            (3, c) => Ok(IcmpMessage::DestUnreachable {
                code: UnreachableCode::from_u8(c)?,
                original: body,
            }),
            (11, 1) => Ok(IcmpMessage::TimeExceeded { original: body }),
            _ => Err(WireError::BadField),
        }
    }

    /// The reply an echo request elicits, with payload echoed back.
    pub fn echo_reply_for(&self) -> Option<IcmpMessage> {
        match self {
            IcmpMessage::EchoRequest { ident, seq, payload } => {
                Some(IcmpMessage::EchoReply { ident: *ident, seq: *seq, payload: payload.clone() })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let m = IcmpMessage::EchoRequest { ident: 42, seq: 7, payload: b"ping!".to_vec() };
        let bytes = m.build();
        assert_eq!(IcmpMessage::parse(&bytes).unwrap(), m);
        let reply = m.echo_reply_for().unwrap();
        let rb = reply.build();
        match IcmpMessage::parse(&rb).unwrap() {
            IcmpMessage::EchoReply { ident, seq, payload } => {
                assert_eq!((ident, seq), (42, 7));
                assert_eq!(payload, b"ping!");
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn error_messages_roundtrip() {
        let orig = vec![0x45u8; 28];
        for m in [
            IcmpMessage::DestUnreachable { code: UnreachableCode::Port, original: orig.clone() },
            IcmpMessage::DestUnreachable {
                code: UnreachableCode::Protocol,
                original: orig.clone(),
            },
            IcmpMessage::TimeExceeded { original: orig.clone() },
        ] {
            let bytes = m.build();
            assert_eq!(IcmpMessage::parse(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = IcmpMessage::EchoRequest { ident: 1, seq: 2, payload: vec![9; 16] }.build();
        bytes[9] ^= 0x20;
        assert_eq!(IcmpMessage::parse(&bytes), Err(WireError::BadChecksum));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = IcmpMessage::EchoReply { ident: 0, seq: 0, payload: vec![] }.build();
        bytes[0] = 13; // timestamp request — unsupported
        put_u16(&mut bytes, 2, 0);
        let c = checksum::internet_checksum(&bytes);
        put_u16(&mut bytes, 2, c);
        assert_eq!(IcmpMessage::parse(&bytes), Err(WireError::BadField));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(IcmpMessage::parse(&[8, 0, 0]), Err(WireError::Truncated));
    }

    #[test]
    fn only_requests_generate_replies() {
        let reply = IcmpMessage::EchoReply { ident: 0, seq: 0, payload: vec![] };
        assert!(reply.echo_reply_for().is_none());
    }
}
