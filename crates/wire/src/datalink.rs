//! The Nectar datalink frame.
//!
//! On-wire layout (all multi-byte fields big-endian):
//!
//! ```text
//! 0            route_len (R)            number of source-route hops
//! 1            route_pos                index of next hop byte; each HUB
//!                                       advances this as it forwards
//! 2 .. 2+R     route bytes              HUB output port per hop
//! 2+R .. +12   datalink header:
//!                dst_cab   u16          destination CAB node id
//!                src_cab   u16          source CAB node id
//!                proto     u8           demultiplexing key (IP, NDG, …)
//!                flags     u8           reserved
//!                len       u16          payload length in bytes
//!                msg_id    u32          correlation id for tracing
//! …            payload (len bytes)
//! last 4       CRC-32 over header+payload (computed by CAB hardware in
//!              the original system; `route_len`/`route_pos`/route bytes
//!              are excluded because they mutate in flight)
//! ```
//!
//! The paper's datalink layer (§4.1) reads the header, kicks off DMA
//! into a mailbox, and issues start-of-data / end-of-data upcalls; the
//! `msg_id` field is this reproduction's hook for the Figure 6 stage
//! trace.

use crate::framebuf::FrameBuf;
use crate::route::Route;
use crate::{checksum, get_u16, get_u32, put_u16, put_u32, WireError};

/// Datalink protocol demultiplexing values (§3: transport protocols are
/// implemented on the CAB on top of the datalink layer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum DatalinkProto {
    /// An IPv4 datagram (the TCP/IP suite of §4).
    Ip = 1,
    /// Nectar datagram protocol.
    Datagram = 2,
    /// Nectar reliable message protocol (stop-and-wait).
    Rmp = 3,
    /// Nectar request-response protocol (RPC transport).
    ReqResp = 4,
    /// Raw frames for the network-device mode of §5.1 (host-resident
    /// protocol stack; the CAB acts as a dumb interface).
    Raw = 5,
    /// CAB-resident collectives: multicast fan-out, tree barrier, and
    /// reduction combining (see [`crate::collective`]).
    Collective = 6,
}

impl DatalinkProto {
    pub fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => DatalinkProto::Ip,
            2 => DatalinkProto::Datagram,
            3 => DatalinkProto::Rmp,
            4 => DatalinkProto::ReqResp,
            5 => DatalinkProto::Raw,
            6 => DatalinkProto::Collective,
            _ => return Err(WireError::BadField),
        })
    }
}

/// Size of the fixed datalink header.
pub const HEADER_LEN: usize = 12;
/// Size of the CRC-32 trailer.
pub const CRC_LEN: usize = 4;
/// Route prefix overhead excluding the hop bytes themselves.
pub const ROUTE_FIXED_LEN: usize = 2;

/// Parsed datalink header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatalinkHeader {
    pub dst_cab: u16,
    pub src_cab: u16,
    pub proto: DatalinkProto,
    pub flags: u8,
    pub payload_len: u16,
    pub msg_id: u32,
}

/// An owned datalink frame: route prefix + header + payload + CRC.
///
/// The bytes live in a shared [`FrameBuf`], so cloning a frame is O(1)
/// and never copies the wire data. The on-wire `route_pos` byte is kept
/// as an overlay field instead of being written back into the buffer:
/// HUBs advance hops by bumping the field, which means a frame can
/// traverse the whole network — build, HUB forwarding, CAB delivery —
/// on one backing allocation even while clones of it exist.
/// A frame comes in two storage shapes:
///
/// * *contiguous* — `buf` holds the whole wire image (route + header +
///   payload + CRC trailer); `tail` is `None`. This is what
///   [`Frame::build`] and [`Frame::from_bytes`] produce.
/// * *split* — `buf` holds only route + header, `tail` holds the
///   payload, and the CRC trailer lives in the `crc` field. This is
///   what [`Frame::build_shared`] produces: every multicast replica
///   gets a fresh ~20-byte head but shares one payload allocation, so
///   fan-out at interior CABs never deep-copies the data.
#[derive(Clone, Debug)]
pub struct Frame {
    buf: FrameBuf,
    /// Shared payload of a split frame; `None` for contiguous frames.
    tail: Option<FrameBuf>,
    /// CRC-32 trailer of a split frame; contiguous frames keep theirs
    /// in the last 4 bytes of `buf`.
    crc: u32,
    /// Authoritative `route_pos`; shadows byte 1 of `buf`.
    route_pos: u8,
}

impl Frame {
    /// Assemble a frame. The CRC is computed over header + payload, as
    /// the CAB hardware did for outgoing fiber data.
    pub fn build(route: &Route, header: DatalinkHeader, payload: &[u8]) -> Frame {
        assert!(payload.len() <= u16::MAX as usize, "payload too large for frame");
        let r = route.len();
        let mut bytes =
            Vec::with_capacity(ROUTE_FIXED_LEN + r + HEADER_LEN + payload.len() + CRC_LEN);
        bytes.push(r as u8);
        bytes.push(0); // route_pos
        bytes.extend_from_slice(route.hops());
        let h = bytes.len();
        bytes.resize(h + HEADER_LEN, 0);
        put_u16(&mut bytes, h, header.dst_cab);
        put_u16(&mut bytes, h + 2, header.src_cab);
        bytes[h + 4] = header.proto as u8;
        bytes[h + 5] = header.flags;
        put_u16(&mut bytes, h + 6, payload.len() as u16);
        put_u32(&mut bytes, h + 8, header.msg_id);
        bytes.extend_from_slice(payload);
        let crc = checksum::crc32(&bytes[h..]);
        bytes.extend_from_slice(&crc.to_be_bytes());
        Frame { buf: FrameBuf::new(bytes), tail: None, crc: 0, route_pos: 0 }
    }

    /// Assemble a *split* frame whose payload is a zero-copy view of
    /// `payload`: only the route + header head is allocated; the
    /// payload backing is shared (an `Rc` bump). The CRC is streamed
    /// over header + payload exactly as [`Frame::build`] computes it,
    /// so the two shapes are wire-identical (see
    /// [`Frame::into_bytes`]). This is the multicast replication path:
    /// one payload allocation serves every branch of the fan-out tree.
    pub fn build_shared(route: &Route, header: DatalinkHeader, payload: &FrameBuf) -> Frame {
        assert!(payload.len() <= u16::MAX as usize, "payload too large for frame");
        let r = route.len();
        let mut head = Vec::with_capacity(ROUTE_FIXED_LEN + r + HEADER_LEN);
        head.push(r as u8);
        head.push(0); // route_pos
        head.extend_from_slice(route.hops());
        let h = head.len();
        head.resize(h + HEADER_LEN, 0);
        put_u16(&mut head, h, header.dst_cab);
        put_u16(&mut head, h + 2, header.src_cab);
        head[h + 4] = header.proto as u8;
        head[h + 5] = header.flags;
        put_u16(&mut head, h + 6, payload.len() as u16);
        put_u32(&mut head, h + 8, header.msg_id);
        let mut acc = checksum::Crc32Accum::new();
        acc.write(&head[h..]);
        acc.write(payload.as_slice());
        Frame {
            buf: FrameBuf::new(head),
            tail: Some(payload.clone()),
            crc: acc.finish(),
            route_pos: 0,
        }
    }

    /// Wrap raw received bytes without validation (validation happens in
    /// [`Frame::parse_header`] / [`Frame::check_crc`], mirroring the
    /// hardware which buffers first and flags CRC at end-of-packet).
    /// `route_pos` is lifted out of byte 1 into the overlay field.
    pub fn from_bytes(bytes: Vec<u8>) -> Frame {
        let route_pos = bytes.get(1).copied().unwrap_or(0);
        Frame { buf: FrameBuf::new(bytes), tail: None, crc: 0, route_pos }
    }

    /// Materialize the on-wire bytes, writing the overlay `route_pos`
    /// back into byte 1. A split frame serializes to the same byte
    /// sequence a contiguous build would have produced.
    pub fn into_bytes(self) -> Vec<u8> {
        let mut bytes = match &self.tail {
            None => self.buf.to_vec(),
            Some(tail) => {
                let mut v = Vec::with_capacity(self.wire_len());
                v.extend_from_slice(self.buf.as_slice());
                v.extend_from_slice(tail.as_slice());
                v.extend_from_slice(&self.crc.to_be_bytes());
                v
            }
        };
        if bytes.len() > 1 {
            bytes[1] = self.route_pos;
        }
        bytes
    }

    /// Total length on the wire, in bytes (what serialization delay is
    /// charged on).
    pub fn wire_len(&self) -> usize {
        match &self.tail {
            None => self.buf.len(),
            Some(tail) => self.buf.len() + tail.len() + CRC_LEN,
        }
    }

    fn route_len(&self) -> usize {
        self.buf.first().copied().unwrap_or(0) as usize
    }

    fn header_at(&self) -> usize {
        ROUTE_FIXED_LEN + self.route_len()
    }

    /// The next hop's output port, if any hops remain. Returns an error
    /// on malformed prefixes.
    pub fn next_hop(&self) -> Result<Option<u8>, WireError> {
        let b = self.buf.as_slice();
        if b.len() < ROUTE_FIXED_LEN {
            return Err(WireError::Truncated);
        }
        let rlen = b[0] as usize;
        let rpos = self.route_pos as usize;
        if b.len() < ROUTE_FIXED_LEN + rlen {
            return Err(WireError::Truncated);
        }
        if rpos > rlen {
            return Err(WireError::BadField);
        }
        if rpos == rlen {
            Ok(None)
        } else {
            Ok(Some(b[ROUTE_FIXED_LEN + rpos]))
        }
    }

    /// Consume one route hop (performed by each HUB as it forwards).
    /// Returns the output port taken. Only the overlay field changes;
    /// the shared bytes are untouched.
    pub fn advance_hop(&mut self) -> Result<u8, WireError> {
        match self.next_hop()? {
            Some(port) => {
                self.route_pos += 1;
                Ok(port)
            }
            None => Err(WireError::BadField),
        }
    }

    /// Parse and validate the datalink header (length check included).
    pub fn parse_header(&self) -> Result<DatalinkHeader, WireError> {
        let h = self.header_at();
        let b = self.buf.as_slice();
        let payload_len = match &self.tail {
            None => {
                if b.len() < h + HEADER_LEN + CRC_LEN {
                    return Err(WireError::Truncated);
                }
                let payload_len = get_u16(b, h + 6);
                if b.len() != h + HEADER_LEN + payload_len as usize + CRC_LEN {
                    return Err(WireError::BadLength);
                }
                payload_len
            }
            Some(tail) => {
                if b.len() < h + HEADER_LEN {
                    return Err(WireError::Truncated);
                }
                let payload_len = get_u16(b, h + 6);
                if b.len() != h + HEADER_LEN || payload_len as usize != tail.len() {
                    return Err(WireError::BadLength);
                }
                payload_len
            }
        };
        Ok(DatalinkHeader {
            dst_cab: get_u16(b, h),
            src_cab: get_u16(b, h + 2),
            proto: DatalinkProto::from_u8(b[h + 4])?,
            flags: b[h + 5],
            payload_len,
            msg_id: get_u32(b, h + 8),
        })
    }

    /// The transport payload carried by this frame.
    pub fn payload(&self) -> Result<&[u8], WireError> {
        let h = self.header_at();
        let hdr = self.parse_header()?;
        match &self.tail {
            None => {
                Ok(&self.buf.as_slice()[h + HEADER_LEN..h + HEADER_LEN + hdr.payload_len as usize])
            }
            Some(tail) => Ok(tail.as_slice()),
        }
    }

    /// The transport payload as a zero-copy view sharing this frame's
    /// storage. The returned [`FrameBuf`] stays valid after the frame
    /// is dropped.
    pub fn payload_buf(&self) -> Result<FrameBuf, WireError> {
        let h = self.header_at();
        let hdr = self.parse_header()?;
        match &self.tail {
            None => Ok(self.buf.slice(h + HEADER_LEN..h + HEADER_LEN + hdr.payload_len as usize)),
            Some(tail) => Ok(tail.clone()),
        }
    }

    /// Verify the CRC-32 trailer over header + payload. Route bytes are
    /// excluded because `route_pos` mutates hop by hop.
    pub fn check_crc(&self) -> Result<(), WireError> {
        let h = self.header_at();
        let b = self.buf.as_slice();
        match &self.tail {
            None => {
                if b.len() < h + HEADER_LEN + CRC_LEN {
                    return Err(WireError::Truncated);
                }
                let body = &b[h..b.len() - CRC_LEN];
                let stored = get_u32(b, b.len() - CRC_LEN);
                if checksum::crc32(body) == stored {
                    Ok(())
                } else {
                    Err(WireError::BadChecksum)
                }
            }
            Some(tail) => {
                if b.len() < h + HEADER_LEN {
                    return Err(WireError::Truncated);
                }
                let mut acc = checksum::Crc32Accum::new();
                acc.write(&b[h..]);
                acc.write(tail.as_slice());
                if acc.finish() == self.crc {
                    Ok(())
                } else {
                    Err(WireError::BadChecksum)
                }
            }
        }
    }

    /// Flip a bit (fault-injection helper for tests and the lossy-link
    /// model). `bit` indexes into the whole frame. Corrupting the
    /// `route_pos` byte hits the overlay field; anything else copies the
    /// affected segment first, so clones of this frame — including
    /// multicast replicas sharing a split frame's payload backing — are
    /// unaffected.
    pub fn corrupt_bit(&mut self, bit: usize) {
        let byte = (bit / 8) % self.wire_len();
        let mask = 1u8 << (bit % 8);
        if byte == 1 {
            self.route_pos ^= mask;
            return;
        }
        match &self.tail {
            None => {
                let mut bytes = self.buf.to_vec();
                bytes[byte] ^= mask;
                self.buf = FrameBuf::new(bytes);
            }
            Some(tail) => {
                if byte < self.buf.len() {
                    let mut bytes = self.buf.to_vec();
                    bytes[byte] ^= mask;
                    self.buf = FrameBuf::new(bytes);
                } else if byte < self.buf.len() + tail.len() {
                    // copy-on-write: never write through the payload
                    // backing shared with sibling replicas
                    let mut bytes = tail.to_vec();
                    bytes[byte - self.buf.len()] ^= mask;
                    self.tail = Some(FrameBuf::new(bytes));
                } else {
                    // the CRC trailer of a split frame lives in the
                    // `crc` field; flip the matching big-endian bit
                    let crc_byte = byte - self.buf.len() - tail.len();
                    self.crc ^= u32::from(mask) << (8 * (3 - crc_byte));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> DatalinkHeader {
        DatalinkHeader {
            dst_cab: 7,
            src_cab: 3,
            proto: DatalinkProto::Datagram,
            flags: 0,
            payload_len: 0, // filled by build
            msg_id: 0xdead_beef,
        }
    }

    #[test]
    fn build_parse_roundtrip() {
        let route = Route::new(vec![2, 5]);
        let payload = b"hello nectar".to_vec();
        let f = Frame::build(&route, header(), &payload);
        let h = f.parse_header().unwrap();
        assert_eq!(h.dst_cab, 7);
        assert_eq!(h.src_cab, 3);
        assert_eq!(h.proto, DatalinkProto::Datagram);
        assert_eq!(h.payload_len as usize, payload.len());
        assert_eq!(h.msg_id, 0xdead_beef);
        assert_eq!(f.payload().unwrap(), &payload[..]);
        f.check_crc().unwrap();
        assert_eq!(f.wire_len(), 2 + 2 + 12 + payload.len() + 4);
    }

    #[test]
    fn hop_consumption() {
        let route = Route::new(vec![4, 9, 1]);
        let mut f = Frame::build(&route, header(), b"x");
        assert_eq!(f.next_hop().unwrap(), Some(4));
        assert_eq!(f.advance_hop().unwrap(), 4);
        assert_eq!(f.advance_hop().unwrap(), 9);
        assert_eq!(f.next_hop().unwrap(), Some(1));
        assert_eq!(f.advance_hop().unwrap(), 1);
        assert_eq!(f.next_hop().unwrap(), None);
        assert_eq!(f.advance_hop(), Err(WireError::BadField));
        // CRC still valid after hops consumed (route excluded from CRC)
        f.check_crc().unwrap();
    }

    #[test]
    fn empty_route_and_empty_payload() {
        let f = Frame::build(&Route::empty(), header(), &[]);
        assert_eq!(f.next_hop().unwrap(), None);
        assert_eq!(f.payload().unwrap(), &[] as &[u8]);
        f.check_crc().unwrap();
    }

    #[test]
    fn corruption_detected_by_crc() {
        let f0 = Frame::build(&Route::new(vec![1]), header(), b"payload bytes here");
        // flip every bit of the header+payload region in turn
        let start = (2 + 1) * 8;
        let end = (f0.wire_len() - 4) * 8;
        for bit in start..end {
            let mut f = f0.clone();
            f.corrupt_bit(bit);
            assert!(
                f.check_crc().is_err() || f.parse_header().is_err(),
                "undetected corruption at bit {bit}"
            );
        }
    }

    #[test]
    fn clones_unaffected_by_hops_and_corruption() {
        let mut f = Frame::build(&Route::new(vec![4, 9]), header(), b"shared payload");
        let snapshot = f.clone();
        f.advance_hop().unwrap();
        f.advance_hop().unwrap();
        f.corrupt_bit((f.wire_len() - 1) * 8);
        // the clone still sees the original route position and bytes
        assert_eq!(snapshot.next_hop().unwrap(), Some(4));
        snapshot.check_crc().unwrap();
        assert!(f.check_crc().is_err());
        // materialized bytes carry the overlay route_pos in byte 1
        let bytes = snapshot.clone().into_bytes();
        assert_eq!(bytes[1], 0);
        let mut advanced = snapshot.clone();
        advanced.advance_hop().unwrap();
        let bytes = advanced.into_bytes();
        assert_eq!(bytes[1], 1);
        // and round-trip back through from_bytes
        let back = Frame::from_bytes(bytes);
        assert_eq!(back.next_hop().unwrap(), Some(9));
    }

    #[test]
    fn corrupt_bit_copies_before_writing() {
        // The fault injector flips bits on frames whose storage is
        // shared with in-flight clones and zero-copy payload views;
        // corruption must copy first, never write through.
        let f0 = Frame::build(&Route::new(vec![2, 5]), header(), b"cow payload");
        let view = f0.payload_buf().unwrap();
        let sibling = f0.clone();

        // corrupt a payload bit on a clone that shares f0's allocation
        let mut corrupted = f0.clone();
        let payload_bit = (corrupted.wire_len() - CRC_LEN - 1) * 8;
        corrupted.corrupt_bit(payload_bit);
        assert!(corrupted.check_crc().is_err(), "flip must damage the corrupted frame");
        // … while every sibling still reads the original bytes
        sibling.check_crc().unwrap();
        f0.check_crc().unwrap();
        assert_eq!(view.as_slice(), b"cow payload");
        assert_eq!(sibling.payload().unwrap(), b"cow payload");

        // the route_pos byte is an overlay: corrupting it perturbs only
        // this frame's routing state, not the shared buffer
        let mut strayed = f0.clone();
        strayed.corrupt_bit(8); // byte 1, bit 0
        assert_ne!(strayed.next_hop(), sibling.next_hop());
        assert_eq!(sibling.next_hop().unwrap(), Some(2));
        strayed.check_crc().unwrap(); // route bytes are outside the CRC
    }

    #[test]
    fn payload_buf_outlives_frame() {
        let f = Frame::build(&Route::new(vec![1]), header(), b"zero copy view");
        let view = f.payload_buf().unwrap();
        drop(f);
        assert_eq!(view.as_slice(), b"zero copy view");
    }

    #[test]
    fn truncated_and_malformed() {
        let f = Frame::from_bytes(vec![]);
        assert_eq!(f.next_hop(), Err(WireError::Truncated));
        let f = Frame::from_bytes(vec![5, 0, 1]);
        assert_eq!(f.next_hop(), Err(WireError::Truncated));
        assert_eq!(f.parse_header(), Err(WireError::Truncated));
        // route_pos beyond route_len
        let f = Frame::from_bytes(vec![1, 2, 9]);
        assert_eq!(f.next_hop(), Err(WireError::BadField));
        // bad length field
        let good = Frame::build(&Route::empty(), header(), b"abc");
        let mut bytes = good.into_bytes();
        bytes.push(0);
        let f = Frame::from_bytes(bytes);
        assert_eq!(f.parse_header(), Err(WireError::BadLength));
    }

    #[test]
    fn unknown_proto_rejected() {
        let good = Frame::build(&Route::empty(), header(), b"abc");
        let mut bytes = good.into_bytes();
        bytes[2 + 4] = 99;
        let f = Frame::from_bytes(bytes);
        assert_eq!(f.parse_header(), Err(WireError::BadField));
    }

    #[test]
    fn all_protos_roundtrip() {
        for p in [
            DatalinkProto::Ip,
            DatalinkProto::Datagram,
            DatalinkProto::Rmp,
            DatalinkProto::ReqResp,
            DatalinkProto::Raw,
            DatalinkProto::Collective,
        ] {
            assert_eq!(DatalinkProto::from_u8(p as u8).unwrap(), p);
        }
        assert!(DatalinkProto::from_u8(0).is_err());
    }

    #[test]
    fn shared_build_matches_contiguous_wire_image() {
        let route = Route::new(vec![2, 5]);
        let payload = FrameBuf::new(b"multicast body".to_vec());
        let shared = Frame::build_shared(&route, header(), &payload);
        let contiguous = Frame::build(&route, header(), payload.as_slice());
        assert_eq!(shared.wire_len(), contiguous.wire_len());
        assert_eq!(shared.parse_header().unwrap(), contiguous.parse_header().unwrap());
        shared.check_crc().unwrap();
        assert_eq!(shared.payload().unwrap(), payload.as_slice());
        // serializes to the identical byte sequence, and the bytes
        // round-trip back through the contiguous receive path
        let bytes = shared.clone().into_bytes();
        assert_eq!(bytes, contiguous.into_bytes());
        let back = Frame::from_bytes(bytes);
        back.check_crc().unwrap();
        assert_eq!(back.payload().unwrap(), payload.as_slice());
    }

    #[test]
    fn multicast_replicas_share_payload_backing() {
        // Fan-out at an interior CAB: N replicas down N subtrees must
        // share ONE payload allocation — an Rc bump per branch, never a
        // deep copy.
        let payload = FrameBuf::new(vec![0xab; 512]);
        let replicas: Vec<Frame> = (0..4)
            .map(|i| Frame::build_shared(&Route::new(vec![i as u8]), header(), &payload))
            .collect();
        assert!(payload.backing_refcount() > 1, "replication must not deep-copy");
        for f in &replicas {
            let view = f.payload_buf().unwrap();
            assert!(view.shares_backing(&payload), "replica payload must share the source backing");
            f.check_crc().unwrap();
        }
        // 1 source + 4 replica tails + 4 payload_buf views dropped above
        assert_eq!(payload.backing_refcount(), 1 + replicas.len());
    }

    #[test]
    fn corrupt_replica_copy_on_writes_payload() {
        let payload = FrameBuf::new(b"shared across the tree".to_vec());
        let mut victim = Frame::build_shared(&Route::new(vec![1]), header(), &payload);
        let sibling = Frame::build_shared(&Route::new(vec![2]), header(), &payload);

        // flip a payload bit on one replica
        let payload_bit = (victim.wire_len() - CRC_LEN - 1) * 8;
        victim.corrupt_bit(payload_bit);
        assert!(victim.check_crc().is_err(), "flip must damage the corrupted replica");
        assert!(
            !victim.payload_buf().unwrap().shares_backing(&payload),
            "corruption must detach the victim from the shared backing"
        );
        // … without touching the sibling replica or the source buffer
        sibling.check_crc().unwrap();
        assert_eq!(sibling.payload().unwrap(), b"shared across the tree");
        assert_eq!(payload.as_slice(), b"shared across the tree");

        // flipping a CRC-trailer bit of a split frame is detected too
        let mut trailer = Frame::build_shared(&Route::new(vec![3]), header(), &payload);
        trailer.corrupt_bit((trailer.wire_len() - 1) * 8);
        assert!(trailer.check_crc().is_err());
        sibling.check_crc().unwrap();
    }

    #[test]
    fn shared_corruption_detected_by_crc() {
        let payload = FrameBuf::new(b"payload bytes here".to_vec());
        let f0 = Frame::build_shared(&Route::new(vec![1]), header(), &payload);
        let start = (2 + 1) * 8;
        let end = f0.wire_len() * 8;
        for bit in start..end {
            let mut f = f0.clone();
            f.corrupt_bit(bit);
            assert!(
                f.check_crc().is_err() || f.parse_header().is_err(),
                "undetected corruption at bit {bit}"
            );
        }
    }
}
