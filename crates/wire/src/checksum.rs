//! Checksums: the RFC 1071 Internet checksum and CRC-32.
//!
//! The performance story of Figure 7 in the paper hinges on exactly this
//! distinction: the Nectar-specific protocols rely on the CAB's
//! *hardware* CRC ("Cyclic Redundancy Checksums for incoming and
//! outgoing data are computed by hardware"), while TCP must compute its
//! checksum in *software* on the 16.5 MHz SPARC — "the performance
//! difference between TCP/IP and RMP is mostly due to the cost of doing
//! TCP checksums in software". Both algorithms are implemented here for
//! real; the simulator charges CPU time for the software one only.

/// Incremental one's-complement sum, RFC 1071 style.
///
/// Feed it the pseudo-header and payload in any chunking; odd-length
/// chunks are handled by tracking byte parity so results are identical
/// to a single-pass sum.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChecksumAccum {
    sum: u64,
    /// True when an odd number of bytes have been consumed so far, i.e.
    /// the next byte is a low-order byte.
    odd: bool,
}

impl ChecksumAccum {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a chunk of bytes.
    ///
    /// The bulk runs eight bytes per iteration: 64-bit words are summed
    /// with end-around carry, which preserves the one's-complement value
    /// because 2^64 - 1 is a multiple of 0xffff (RFC 1071 §2(C)); the
    /// 16-bit columns of the wide sum are then folded into the
    /// accumulator. Results are bit-identical to the byte-pair loop for
    /// any chunking.
    pub fn write(&mut self, data: &[u8]) {
        let mut i = 0;
        if self.odd && !data.is_empty() {
            self.sum += data[0] as u64;
            self.odd = false;
            i = 1;
        }
        let mut wide: u64 = 0;
        while i + 8 <= data.len() {
            let w = u64::from_be_bytes(data[i..i + 8].try_into().unwrap());
            let (s, carry) = wide.overflowing_add(w);
            wide = s + carry as u64;
            i += 8;
        }
        self.sum +=
            (wide >> 48) + ((wide >> 32) & 0xffff) + ((wide >> 16) & 0xffff) + (wide & 0xffff);
        while i + 1 < data.len() {
            self.sum += u16::from_be_bytes([data[i], data[i + 1]]) as u64;
            i += 2;
        }
        if i < data.len() {
            self.sum += (data[i] as u64) << 8;
            self.odd = true;
        }
        // A u64 accumulator absorbs 2^48 half-words before it could
        // overflow, far beyond any packet; fold between chunks anyway to
        // keep the invariant local.
        if self.sum > 0x3fff_ffff {
            self.fold();
        }
    }

    /// Add a big-endian u16 directly (pseudo-header fields). Must be
    /// called on an even byte boundary.
    pub fn write_u16(&mut self, v: u16) {
        debug_assert!(!self.odd, "write_u16 on odd boundary");
        self.sum += v as u64;
    }

    /// Add a big-endian u32 directly (pseudo-header addresses).
    pub fn write_u32(&mut self, v: u32) {
        self.write_u16((v >> 16) as u16);
        self.write_u16(v as u16);
    }

    fn fold(&mut self) {
        while self.sum >> 16 != 0 {
            self.sum = (self.sum & 0xffff) + (self.sum >> 16);
        }
    }

    /// Finish: fold and complement. An all-zero result is returned as
    /// 0xffff per UDP convention (0 means "no checksum").
    pub fn finish(mut self) -> u16 {
        self.fold();
        let c = !(self.sum as u16);
        if c == 0 {
            0xffff
        } else {
            c
        }
    }

    /// Finish without the zero-avoidance substitution (IP/TCP/ICMP use
    /// the plain complement).
    pub fn finish_raw(mut self) -> u16 {
        self.fold();
        !(self.sum as u16)
    }
}

/// One-shot Internet checksum of a byte slice.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut acc = ChecksumAccum::new();
    acc.write(data);
    acc.finish_raw()
}

/// Verify a buffer that *includes* its checksum field: the sum over the
/// whole buffer must be 0xffff (i.e. folds to zero after complement).
pub fn internet_checksum_valid(data: &[u8]) -> bool {
    internet_checksum(data) == 0
}

const CRC32_POLY: u32 = 0xedb8_8320; // IEEE 802.3, reflected

/// Eight lookup tables for slice-by-8: `TABLES[0]` is the classic
/// byte-at-a-time table; `TABLES[k][i]` advances the CRC of byte `i`
/// through `k` further zero bytes, so eight table hits fold a whole
/// 64-bit word into the register at once.
fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { CRC32_POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xff) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

/// Advance the raw (uncomplemented) CRC register over `data` using the
/// slice-by-8 tables.
fn crc32_update_table(mut c: u32, data: &[u8]) -> u32 {
    // The tables are 8 KiB; rebuild-on-call would be wasteful in the
    // frame hot path, so memoize them.
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    let t = TABLES.get_or_init(crc32_tables);
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        c ^= u32::from_le_bytes(chunk[..4].try_into().unwrap());
        let hi = u32::from_le_bytes(chunk[4..].try_into().unwrap());
        c = t[7][(c & 0xff) as usize]
            ^ t[6][((c >> 8) & 0xff) as usize]
            ^ t[5][((c >> 16) & 0xff) as usize]
            ^ t[4][(c >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c
}

/// PCLMULQDQ-folded CRC-32 for x86-64 (the Intel carry-less-multiply
/// technique: fold 64-byte blocks through four 128-bit accumulators,
/// then Barrett-reduce). Bit-identical to the table path; used for the
/// bulk of large frames when the CPU supports it.
#[cfg(target_arch = "x86_64")]
mod clmul {
    // Folding constants for the reflected IEEE 802.3 polynomial, from
    // Intel's "Fast CRC Computation for Generic Polynomials Using
    // PCLMULQDQ Instruction" (the same values appear in zlib and
    // chromium's crc32_simd): x^t mod P for the fold distances below.
    const K1: i64 = 0x1_5444_2bd4; // x^(4·128+64)
    const K2: i64 = 0x1_c6e4_1596; // x^(4·128)
    const K3: i64 = 0x1_7519_97d0; // x^(128+64)
    const K4: i64 = 0x0_ccaa_009e; // x^128
    const K5: i64 = 0x1_63cd_6124; // x^64
    const PX: i64 = 0x1_db71_0641; // P(x), reflected
    const MU: i64 = 0x1_f701_1641; // Barrett µ

    pub fn supported() -> bool {
        std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }

    /// Fold `data` (length a multiple of 16, at least 64) into the raw
    /// CRC register `crc`.
    ///
    /// # Safety
    /// Caller must ensure [`supported`] returned `true`.
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    pub unsafe fn update(crc: u32, data: &[u8]) -> u32 {
        use std::arch::x86_64::*;
        debug_assert!(data.len() >= 64 && data.len().is_multiple_of(16));

        // SAFETY: loadu allows unaligned reads; every 16-byte offset
        // consumed below is within `data` by the length contract.
        let mut chunks = data.chunks_exact(16);
        let load = |c: &mut std::slice::ChunksExact<u8>| {
            _mm_loadu_si128(c.next().unwrap().as_ptr() as *const __m128i)
        };
        let k1k2 = _mm_set_epi64x(K2, K1);
        let k3k4 = _mm_set_epi64x(K4, K3);
        let fold = |x: __m128i, k: __m128i, next: __m128i| {
            _mm_xor_si128(
                _mm_xor_si128(_mm_clmulepi64_si128(x, k, 0x00), _mm_clmulepi64_si128(x, k, 0x11)),
                next,
            )
        };

        let mut x0 = _mm_xor_si128(load(&mut chunks), _mm_cvtsi32_si128(crc as i32));
        let mut x1 = load(&mut chunks);
        let mut x2 = load(&mut chunks);
        let mut x3 = load(&mut chunks);
        while chunks.len() >= 4 {
            x0 = fold(x0, k1k2, load(&mut chunks));
            x1 = fold(x1, k1k2, load(&mut chunks));
            x2 = fold(x2, k1k2, load(&mut chunks));
            x3 = fold(x3, k1k2, load(&mut chunks));
        }
        let mut x = fold(x0, k3k4, x1);
        x = fold(x, k3k4, x2);
        x = fold(x, k3k4, x3);
        while chunks.len() >= 1 {
            x = fold(x, k3k4, load(&mut chunks));
        }

        // 128 → 64: fold the low qword across, keep the high qword.
        let lo32 = _mm_set_epi32(0, -1, 0, -1);
        x = _mm_xor_si128(_mm_clmulepi64_si128(x, k3k4, 0x10), _mm_srli_si128(x, 8));
        // 96 → 64 via K5 on the low dword.
        x = _mm_xor_si128(
            _mm_clmulepi64_si128(_mm_and_si128(x, lo32), _mm_set_epi64x(0, K5), 0x00),
            _mm_srli_si128(x, 4),
        );
        // Barrett reduction 64 → 32.
        let pu = _mm_set_epi64x(MU, PX);
        let t = _mm_clmulepi64_si128(_mm_and_si128(x, lo32), pu, 0x10);
        let t = _mm_clmulepi64_si128(_mm_and_si128(t, lo32), pu, 0x00);
        _mm_extract_epi32(_mm_xor_si128(x, t), 1) as u32
    }
}

/// CRC-32 (IEEE 802.3) over a byte slice — the frame check the CAB
/// hardware computed on the fly for incoming and outgoing fiber data.
///
/// Every frame is CRC'd twice (transmit and receive), so this is the
/// simulator's single hottest byte loop: large inputs take the
/// carry-less-multiply fold when the CPU has PCLMULQDQ, everything else
/// goes through slice-by-8 tables. Both paths produce identical bits.
pub fn crc32(data: &[u8]) -> u32 {
    let mut reg = 0xffff_ffffu32;
    let mut rest = data;
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static HAVE_CLMUL: OnceLock<bool> = OnceLock::new();
        if rest.len() >= 64 && *HAVE_CLMUL.get_or_init(clmul::supported) {
            let cut = rest.len() & !15;
            // SAFETY: the feature check above gates the target_feature fn.
            reg = unsafe { clmul::update(reg, &rest[..cut]) };
            rest = &rest[cut..];
        }
    }
    reg = crc32_update_table(reg, rest);
    !reg
}

/// Streaming CRC-32 accumulator: feed segments in wire order, then
/// [`finish`](Crc32Accum::finish). Byte-identical to [`crc32`] over the
/// concatenation — what split frames (shared-payload multicast
/// replicas) use to cover head and tail without materializing a
/// contiguous copy.
#[derive(Clone, Copy, Debug)]
pub struct Crc32Accum {
    reg: u32,
}

impl Default for Crc32Accum {
    fn default() -> Self {
        Crc32Accum::new()
    }
}

impl Crc32Accum {
    pub fn new() -> Crc32Accum {
        Crc32Accum { reg: 0xffff_ffff }
    }

    pub fn write(&mut self, data: &[u8]) {
        self.reg = crc32_update_table(self.reg, data);
    }

    pub fn finish(self) -> u32 {
        !self.reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic worked example: 00 01 f2 03 f4 f5 f6 f7 sums to
        // ddf2 before complement.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let mut acc = ChecksumAccum::new();
        acc.write(&data);
        acc.fold();
        assert_eq!(acc.sum, 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn chunking_is_irrelevant() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1001).collect();
        let whole = internet_checksum(&data);
        for split in [1usize, 2, 3, 7, 500, 999] {
            let mut acc = ChecksumAccum::new();
            acc.write(&data[..split]);
            acc.write(&data[split..]);
            assert_eq!(acc.finish_raw(), whole, "split at {split}");
        }
        // three-way odd splits
        let mut acc = ChecksumAccum::new();
        acc.write(&data[..3]);
        acc.write(&data[3..8]);
        acc.write(&data[8..]);
        assert_eq!(acc.finish_raw(), whole);
    }

    #[test]
    fn verify_roundtrip() {
        let mut packet = vec![0u8; 20];
        for (i, b) in packet.iter_mut().enumerate() {
            *b = i as u8 * 7;
        }
        // zero checksum field at offset 10, compute, insert, verify
        packet[10] = 0;
        packet[11] = 0;
        let c = internet_checksum(&packet);
        packet[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(internet_checksum_valid(&packet));
        packet[3] ^= 0x40;
        assert!(!internet_checksum_valid(&packet));
    }

    #[test]
    fn empty_checksum() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn u16_u32_writers_match_bytes() {
        let mut a = ChecksumAccum::new();
        a.write_u32(0x0a00_0001);
        a.write_u16(0x0006);
        let mut b = ChecksumAccum::new();
        b.write(&[0x0a, 0x00, 0x00, 0x01, 0x00, 0x06]);
        assert_eq!(a.finish_raw(), b.finish_raw());
    }

    #[test]
    fn accumulator_no_overflow_on_large_input() {
        // 16 MiB of 0xff would overflow a naive u32 accumulator.
        let data = vec![0xffu8; 1 << 24];
        let mut acc = ChecksumAccum::new();
        acc.write(&data);
        // all-ones data: each word is 0xffff; folded sum stays 0xffff;
        // complement is 0.
        assert_eq!(acc.finish_raw(), 0);
    }

    #[test]
    fn crc32_paths_agree() {
        // Exercise the carry-less-multiply path (taken for inputs of
        // 64+ bytes) against the pure table path across lengths that
        // cover every tail case, including non-multiple-of-16 ends.
        let data: Vec<u8> =
            (0..4099u32).map(|i| (i.wrapping_mul(2654435761) >> 21) as u8).collect();
        for len in [0, 1, 7, 15, 16, 63, 64, 65, 79, 80, 127, 128, 129, 1000, 4096, 4099] {
            let d = &data[..len];
            assert_eq!(crc32(d), !crc32_update_table(0xffff_ffff, d), "len {len}");
        }
    }

    #[test]
    fn crc32_known_answers() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn crc32_streaming_matches_one_shot() {
        let data: Vec<u8> = (0..517u32).map(|i| (i.wrapping_mul(97) >> 3) as u8).collect();
        for split in [0, 1, 16, 100, 516, 517] {
            let mut acc = Crc32Accum::new();
            acc.write(&data[..split]);
            acc.write(&data[split..]);
            assert_eq!(acc.finish(), crc32(&data), "split {split}");
        }
        let mut many = Crc32Accum::new();
        for chunk in data.chunks(13) {
            many.write(chunk);
        }
        assert_eq!(many.finish(), crc32(&data));
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data: Vec<u8> = (0..64u8).collect();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), good, "undetected flip at {byte}.{bit}");
            }
        }
    }
}
