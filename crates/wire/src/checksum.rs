//! Checksums: the RFC 1071 Internet checksum and CRC-32.
//!
//! The performance story of Figure 7 in the paper hinges on exactly this
//! distinction: the Nectar-specific protocols rely on the CAB's
//! *hardware* CRC ("Cyclic Redundancy Checksums for incoming and
//! outgoing data are computed by hardware"), while TCP must compute its
//! checksum in *software* on the 16.5 MHz SPARC — "the performance
//! difference between TCP/IP and RMP is mostly due to the cost of doing
//! TCP checksums in software". Both algorithms are implemented here for
//! real; the simulator charges CPU time for the software one only.

/// Incremental one's-complement sum, RFC 1071 style.
///
/// Feed it the pseudo-header and payload in any chunking; odd-length
/// chunks are handled by tracking byte parity so results are identical
/// to a single-pass sum.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChecksumAccum {
    sum: u64,
    /// True when an odd number of bytes have been consumed so far, i.e.
    /// the next byte is a low-order byte.
    odd: bool,
}

impl ChecksumAccum {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a chunk of bytes.
    pub fn write(&mut self, data: &[u8]) {
        let mut i = 0;
        if self.odd && !data.is_empty() {
            self.sum += data[0] as u64;
            self.odd = false;
            i = 1;
        }
        while i + 1 < data.len() {
            self.sum += u16::from_be_bytes([data[i], data[i + 1]]) as u64;
            i += 2;
        }
        if i < data.len() {
            self.sum += (data[i] as u64) << 8;
            self.odd = true;
        }
        // A u64 accumulator absorbs 2^48 half-words before it could
        // overflow, far beyond any packet; fold between chunks anyway to
        // keep the invariant local.
        if self.sum > 0x3fff_ffff {
            self.fold();
        }
    }

    /// Add a big-endian u16 directly (pseudo-header fields). Must be
    /// called on an even byte boundary.
    pub fn write_u16(&mut self, v: u16) {
        debug_assert!(!self.odd, "write_u16 on odd boundary");
        self.sum += v as u64;
    }

    /// Add a big-endian u32 directly (pseudo-header addresses).
    pub fn write_u32(&mut self, v: u32) {
        self.write_u16((v >> 16) as u16);
        self.write_u16(v as u16);
    }

    fn fold(&mut self) {
        while self.sum >> 16 != 0 {
            self.sum = (self.sum & 0xffff) + (self.sum >> 16);
        }
    }

    /// Finish: fold and complement. An all-zero result is returned as
    /// 0xffff per UDP convention (0 means "no checksum").
    pub fn finish(mut self) -> u16 {
        self.fold();
        let c = !(self.sum as u16);
        if c == 0 {
            0xffff
        } else {
            c
        }
    }

    /// Finish without the zero-avoidance substitution (IP/TCP/ICMP use
    /// the plain complement).
    pub fn finish_raw(mut self) -> u16 {
        self.fold();
        !(self.sum as u16)
    }
}

/// One-shot Internet checksum of a byte slice.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut acc = ChecksumAccum::new();
    acc.write(data);
    acc.finish_raw()
}

/// Verify a buffer that *includes* its checksum field: the sum over the
/// whole buffer must be 0xffff (i.e. folds to zero after complement).
pub fn internet_checksum_valid(data: &[u8]) -> bool {
    internet_checksum(data) == 0
}

const CRC32_POLY: u32 = 0xedb8_8320; // IEEE 802.3, reflected

fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { CRC32_POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3) over a byte slice — the frame check the CAB
/// hardware computed on the fly for incoming and outgoing fiber data.
pub fn crc32(data: &[u8]) -> u32 {
    // The table is tiny; rebuild-on-call would be wasteful in the frame
    // hot path, so memoize it.
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(crc32_table);
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic worked example: 00 01 f2 03 f4 f5 f6 f7 sums to
        // ddf2 before complement.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let mut acc = ChecksumAccum::new();
        acc.write(&data);
        acc.fold();
        assert_eq!(acc.sum, 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn chunking_is_irrelevant() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1001).collect();
        let whole = internet_checksum(&data);
        for split in [1usize, 2, 3, 7, 500, 999] {
            let mut acc = ChecksumAccum::new();
            acc.write(&data[..split]);
            acc.write(&data[split..]);
            assert_eq!(acc.finish_raw(), whole, "split at {split}");
        }
        // three-way odd splits
        let mut acc = ChecksumAccum::new();
        acc.write(&data[..3]);
        acc.write(&data[3..8]);
        acc.write(&data[8..]);
        assert_eq!(acc.finish_raw(), whole);
    }

    #[test]
    fn verify_roundtrip() {
        let mut packet = vec![0u8; 20];
        for (i, b) in packet.iter_mut().enumerate() {
            *b = i as u8 * 7;
        }
        // zero checksum field at offset 10, compute, insert, verify
        packet[10] = 0;
        packet[11] = 0;
        let c = internet_checksum(&packet);
        packet[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(internet_checksum_valid(&packet));
        packet[3] ^= 0x40;
        assert!(!internet_checksum_valid(&packet));
    }

    #[test]
    fn empty_checksum() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn u16_u32_writers_match_bytes() {
        let mut a = ChecksumAccum::new();
        a.write_u32(0x0a00_0001);
        a.write_u16(0x0006);
        let mut b = ChecksumAccum::new();
        b.write(&[0x0a, 0x00, 0x00, 0x01, 0x00, 0x06]);
        assert_eq!(a.finish_raw(), b.finish_raw());
    }

    #[test]
    fn accumulator_no_overflow_on_large_input() {
        // 16 MiB of 0xff would overflow a naive u32 accumulator.
        let data = vec![0xffu8; 1 << 24];
        let mut acc = ChecksumAccum::new();
        acc.write(&data);
        // all-ones data: each word is 0xffff; folded sum stays 0xffff;
        // complement is 0.
        assert_eq!(acc.finish_raw(), 0);
    }

    #[test]
    fn crc32_known_answers() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data: Vec<u8> = (0..64u8).collect();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), good, "undetected flip at {byte}.{bit}");
            }
        }
    }
}
