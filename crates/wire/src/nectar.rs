//! Nectar-specific transport headers (§4 of the paper).
//!
//! "The Nectar-specific protocols provide datagram, reliable message,
//! and request-response communication. The reliable message protocol is
//! a simple stop-and-wait protocol, and the request-response protocol
//! provides the transport mechanism for client-server RPC calls."
//!
//! All three address *mailboxes*: "a mailbox is a queue of messages with
//! a network-wide address" (§3.3). A network-wide mailbox address is
//! `(CAB node id, mailbox index)`; the CAB id travels in the datalink
//! header, so these transport headers carry only the 16-bit indices.
//!
//! None of these protocols compute a software checksum — they rely on
//! the CAB's hardware CRC (this is precisely why RMP beats TCP in
//! Figure 7).

use crate::{get_u16, get_u32, put_u16, put_u32, WireError};

/// A network-wide mailbox address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MailboxAddr {
    /// The CAB whose memory holds the mailbox.
    pub cab: u16,
    /// The mailbox index within that CAB's mailbox table.
    pub index: u16,
}

impl MailboxAddr {
    pub fn new(cab: u16, index: u16) -> Self {
        MailboxAddr { cab, index }
    }
}

impl std::fmt::Display for MailboxAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mb{}:{}", self.cab, self.index)
    }
}

// ---------------------------------------------------------------------
// Datagram protocol (unreliable, unordered, mailbox-to-mailbox)
// ---------------------------------------------------------------------

/// Datagram header: 4 bytes.
pub const DATAGRAM_HEADER_LEN: usize = 4;

/// The Nectar datagram header. The paper's Table 1 and Figure 6 use this
/// protocol for their latency measurements — it is the thinnest path
/// through the system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatagramHeader {
    /// Destination mailbox index on the destination CAB.
    pub dst_mbox: u16,
    /// Source mailbox index (reply hint; 0 when unused).
    pub src_mbox: u16,
}

impl DatagramHeader {
    pub fn build(&self, payload: &[u8]) -> Vec<u8> {
        let mut msg = vec![0u8; DATAGRAM_HEADER_LEN + payload.len()];
        put_u16(&mut msg, 0, self.dst_mbox);
        put_u16(&mut msg, 2, self.src_mbox);
        msg[DATAGRAM_HEADER_LEN..].copy_from_slice(payload);
        msg
    }

    pub fn parse(data: &[u8]) -> Result<(DatagramHeader, &[u8]), WireError> {
        if data.len() < DATAGRAM_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok((
            DatagramHeader { dst_mbox: get_u16(data, 0), src_mbox: get_u16(data, 2) },
            &data[DATAGRAM_HEADER_LEN..],
        ))
    }
}

// ---------------------------------------------------------------------
// Reliable Message Protocol (RMP) — stop-and-wait
// ---------------------------------------------------------------------

/// RMP header: 16 bytes.
pub const RMP_HEADER_LEN: usize = 16;

/// RMP packet kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum RmpKind {
    /// A message fragment.
    Data = 1,
    /// Acknowledgment of one fragment.
    Ack = 2,
}

/// The RMP header. A message larger than the datalink MTU is split into
/// fragments; each fragment is individually stop-and-waited ("a simple
/// stop-and-wait protocol"). `msg_seq` orders messages on a channel
/// (identified by source CAB + the two mailbox indices); `frag_idx`
/// orders fragments within a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RmpHeader {
    pub kind: RmpKind,
    /// Set on the final fragment of a message.
    pub last_frag: bool,
    pub dst_mbox: u16,
    pub src_mbox: u16,
    pub msg_seq: u32,
    pub frag_idx: u16,
    /// Total message length in bytes (valid in Data packets).
    pub total_len: u32,
}

impl RmpHeader {
    pub fn build(&self, payload: &[u8]) -> Vec<u8> {
        let mut msg = vec![0u8; RMP_HEADER_LEN + payload.len()];
        msg[0] = self.kind as u8;
        msg[1] = self.last_frag as u8;
        put_u16(&mut msg, 2, self.dst_mbox);
        put_u16(&mut msg, 4, self.src_mbox);
        put_u32(&mut msg, 6, self.msg_seq);
        put_u16(&mut msg, 10, self.frag_idx);
        put_u32(&mut msg, 12, self.total_len);
        msg[RMP_HEADER_LEN..].copy_from_slice(payload);
        msg
    }

    pub fn parse(data: &[u8]) -> Result<(RmpHeader, &[u8]), WireError> {
        if data.len() < RMP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let kind = match data[0] {
            1 => RmpKind::Data,
            2 => RmpKind::Ack,
            _ => return Err(WireError::BadField),
        };
        let last_frag = match data[1] {
            0 => false,
            1 => true,
            _ => return Err(WireError::BadField),
        };
        Ok((
            RmpHeader {
                kind,
                last_frag,
                dst_mbox: get_u16(data, 2),
                src_mbox: get_u16(data, 4),
                msg_seq: get_u32(data, 6),
                frag_idx: get_u16(data, 10),
                total_len: get_u32(data, 12),
            },
            &data[RMP_HEADER_LEN..],
        ))
    }

    /// The ACK that acknowledges this Data packet.
    pub fn ack_for(&self) -> RmpHeader {
        RmpHeader {
            kind: RmpKind::Ack,
            last_frag: self.last_frag,
            // ack flows back: swap the mailbox roles
            dst_mbox: self.src_mbox,
            src_mbox: self.dst_mbox,
            msg_seq: self.msg_seq,
            frag_idx: self.frag_idx,
            total_len: 0,
        }
    }
}

// ---------------------------------------------------------------------
// Request-response protocol (RPC transport)
// ---------------------------------------------------------------------

/// Request-response header: 12 bytes.
pub const REQRESP_HEADER_LEN: usize = 12;

/// Request-response packet kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ReqRespKind {
    Request = 1,
    Reply = 2,
    /// Explicit ack of a reply, releasing the server's cached reply
    /// (sent lazily; a new request from the same client also releases).
    ReplyAck = 3,
}

/// The request-response header. The reply to request `req_id` carries
/// the same `req_id`; retransmitted requests are deduplicated by it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReqRespHeader {
    pub kind: ReqRespKind,
    /// Server mailbox (in requests) or client reply mailbox (in replies).
    pub dst_mbox: u16,
    /// Where the reply should go (valid in requests).
    pub reply_mbox: u16,
    pub req_id: u32,
}

impl ReqRespHeader {
    pub fn build(&self, payload: &[u8]) -> Vec<u8> {
        let mut msg = vec![0u8; REQRESP_HEADER_LEN + payload.len()];
        msg[0] = self.kind as u8;
        put_u16(&mut msg, 2, self.dst_mbox);
        put_u16(&mut msg, 4, self.reply_mbox);
        put_u32(&mut msg, 6, self.req_id);
        msg[REQRESP_HEADER_LEN..].copy_from_slice(payload);
        msg
    }

    pub fn parse(data: &[u8]) -> Result<(ReqRespHeader, &[u8]), WireError> {
        if data.len() < REQRESP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let kind = match data[0] {
            1 => ReqRespKind::Request,
            2 => ReqRespKind::Reply,
            3 => ReqRespKind::ReplyAck,
            _ => return Err(WireError::BadField),
        };
        Ok((
            ReqRespHeader {
                kind,
                dst_mbox: get_u16(data, 2),
                reply_mbox: get_u16(data, 4),
                req_id: get_u32(data, 6),
            },
            &data[REQRESP_HEADER_LEN..],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailbox_addr_display_and_order() {
        let a = MailboxAddr::new(1, 2);
        let b = MailboxAddr::new(1, 3);
        assert!(a < b);
        assert_eq!(format!("{a}"), "mb1:2");
    }

    #[test]
    fn datagram_roundtrip() {
        let h = DatagramHeader { dst_mbox: 10, src_mbox: 20 };
        let msg = h.build(b"dgram payload");
        let (parsed, payload) = DatagramHeader::parse(&msg).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(payload, b"dgram payload");
        assert_eq!(DatagramHeader::parse(&msg[..2]), Err(WireError::Truncated));
    }

    #[test]
    fn rmp_roundtrip_and_ack() {
        let h = RmpHeader {
            kind: RmpKind::Data,
            last_frag: true,
            dst_mbox: 5,
            src_mbox: 6,
            msg_seq: 99,
            frag_idx: 3,
            total_len: 30_000,
        };
        let msg = h.build(b"fragment bytes");
        let (parsed, payload) = RmpHeader::parse(&msg).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(payload, b"fragment bytes");

        let ack = h.ack_for();
        assert_eq!(ack.kind, RmpKind::Ack);
        assert_eq!(ack.dst_mbox, 6);
        assert_eq!(ack.src_mbox, 5);
        assert_eq!(ack.msg_seq, 99);
        assert_eq!(ack.frag_idx, 3);
        assert!(ack.last_frag);
        let ack_bytes = ack.build(&[]);
        let (ack_parsed, rest) = RmpHeader::parse(&ack_bytes).unwrap();
        assert_eq!(ack_parsed, ack);
        assert!(rest.is_empty());
    }

    #[test]
    fn rmp_rejects_bad_fields() {
        let h = RmpHeader {
            kind: RmpKind::Data,
            last_frag: false,
            dst_mbox: 1,
            src_mbox: 2,
            msg_seq: 1,
            frag_idx: 0,
            total_len: 4,
        };
        let mut msg = h.build(b"abcd");
        msg[0] = 7;
        assert_eq!(RmpHeader::parse(&msg), Err(WireError::BadField));
        msg[0] = 1;
        msg[1] = 2;
        assert_eq!(RmpHeader::parse(&msg), Err(WireError::BadField));
        assert_eq!(RmpHeader::parse(&msg[..8]), Err(WireError::Truncated));
    }

    #[test]
    fn reqresp_roundtrip() {
        for kind in [ReqRespKind::Request, ReqRespKind::Reply, ReqRespKind::ReplyAck] {
            let h = ReqRespHeader { kind, dst_mbox: 7, reply_mbox: 8, req_id: 0xabcd_0123 };
            let msg = h.build(b"rpc args");
            let (parsed, payload) = ReqRespHeader::parse(&msg).unwrap();
            assert_eq!(parsed, h);
            assert_eq!(payload, b"rpc args");
        }
        assert_eq!(ReqRespHeader::parse(&[0; 4]), Err(WireError::Truncated));
        let bad =
            ReqRespHeader { kind: ReqRespKind::Request, dst_mbox: 0, reply_mbox: 0, req_id: 0 };
        let mut msg = bad.build(&[]);
        msg[0] = 0;
        assert_eq!(ReqRespHeader::parse(&msg), Err(WireError::BadField));
    }
}
