//! Source routes.
//!
//! §2.1: "The CABs use source routing to send a message through the
//! network. The HUB command set includes support for multi-hop
//! connections." A route is the ordered list of HUB output ports the
//! frame must take; each HUB consumes (advances past) one byte. The
//! route travels in a small prefix ahead of the datalink header — see
//! [`crate::datalink::Frame`] for the on-wire layout.

/// Maximum number of hops a route may contain. Two HUBs sufficed for the
/// paper's 26-host system; 16 is generous for any mesh we simulate and
/// keeps the prefix bounded.
pub const MAX_HOPS: usize = 16;

/// An ordered list of HUB output ports (0..16 for the 16×16 crossbar).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Route {
    hops: Vec<u8>,
}

impl Route {
    /// An empty route (frame is already at its destination port — only
    /// meaningful in loopback tests).
    pub fn empty() -> Self {
        Route { hops: Vec::new() }
    }

    /// Build a route from output-port hops. Panics if the route is longer
    /// than [`MAX_HOPS`] — routes are computed by the topology layer, so
    /// an over-long route is a programming error, not input.
    pub fn new(hops: impl Into<Vec<u8>>) -> Self {
        let hops = hops.into();
        assert!(hops.len() <= MAX_HOPS, "route exceeds MAX_HOPS");
        Route { hops }
    }

    pub fn hops(&self) -> &[u8] {
        &self.hops
    }

    pub fn len(&self) -> usize {
        self.hops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Append a hop (used by topology route computation).
    pub fn push(&mut self, port: u8) {
        assert!(self.hops.len() < MAX_HOPS, "route exceeds MAX_HOPS");
        self.hops.push(port);
    }
}

impl From<&[u8]> for Route {
    fn from(hops: &[u8]) -> Self {
        Route::new(hops.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let mut r = Route::empty();
        assert!(r.is_empty());
        r.push(3);
        r.push(7);
        assert_eq!(r.hops(), &[3, 7]);
        assert_eq!(r.len(), 2);
        assert_eq!(Route::from(&[1u8, 2][..]).hops(), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "MAX_HOPS")]
    fn overlong_route_panics() {
        Route::new(vec![0u8; MAX_HOPS + 1]);
    }
}
