//! Source routes.
//!
//! §2.1: "The CABs use source routing to send a message through the
//! network. The HUB command set includes support for multi-hop
//! connections." A route is the ordered list of HUB output ports the
//! frame must take; each HUB consumes (advances past) one byte. The
//! route travels in a small prefix ahead of the datalink header — see
//! [`crate::datalink::Frame`] for the on-wire layout.

/// Maximum number of hops a route may contain. Two HUBs sufficed for
/// the paper's 26-host system; a multi-stage folded Clos of 16-port
/// HUBs has diameter ≤ 2·stages, so 64 covers any fabric we can build
/// (a k=16 fat-tree needs 6) while keeping the prefix bounded. The
/// on-wire `route_len` byte could carry up to 255.
pub const MAX_HOPS: usize = 64;

/// Why a route could not be built. Routes normally come from the
/// topology layer, which surfaces this instead of aborting the sim:
/// an operator can describe a fabric (a 70-HUB chain, say) whose
/// diameter exceeds the route prefix, and that is input, not a
/// programming error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// The path needs more hops than the route prefix can carry.
    TooLong { len: usize, max: usize },
    /// No path exists between the endpoints.
    Unreachable,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::TooLong { len, max } => {
                write!(f, "route needs {len} hops but the prefix holds at most {max}")
            }
            RouteError::Unreachable => write!(f, "no path between endpoints"),
        }
    }
}

impl std::error::Error for RouteError {}

/// An ordered list of HUB output ports (0..16 for the 16×16 crossbar).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Route {
    hops: Vec<u8>,
}

impl Route {
    /// An empty route (frame is already at its destination port — only
    /// meaningful in loopback tests).
    pub fn empty() -> Self {
        Route { hops: Vec::new() }
    }

    /// Build a route from output-port hops, rejecting routes longer
    /// than [`MAX_HOPS`].
    pub fn try_new(hops: impl Into<Vec<u8>>) -> Result<Self, RouteError> {
        let hops = hops.into();
        if hops.len() > MAX_HOPS {
            return Err(RouteError::TooLong { len: hops.len(), max: MAX_HOPS });
        }
        Ok(Route { hops })
    }

    /// Build a route from output-port hops. Panics if the route is longer
    /// than [`MAX_HOPS`] — use [`Route::try_new`] for computed routes.
    pub fn new(hops: impl Into<Vec<u8>>) -> Self {
        Route::try_new(hops).expect("route exceeds MAX_HOPS")
    }

    pub fn hops(&self) -> &[u8] {
        &self.hops
    }

    pub fn len(&self) -> usize {
        self.hops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Append a hop, rejecting growth past [`MAX_HOPS`].
    pub fn try_push(&mut self, port: u8) -> Result<(), RouteError> {
        if self.hops.len() >= MAX_HOPS {
            return Err(RouteError::TooLong { len: self.hops.len() + 1, max: MAX_HOPS });
        }
        self.hops.push(port);
        Ok(())
    }

    /// Append a hop. Panics past [`MAX_HOPS`] — use [`Route::try_push`]
    /// for computed routes.
    pub fn push(&mut self, port: u8) {
        self.try_push(port).expect("route exceeds MAX_HOPS");
    }
}

impl From<&[u8]> for Route {
    fn from(hops: &[u8]) -> Self {
        Route::new(hops.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let mut r = Route::empty();
        assert!(r.is_empty());
        r.push(3);
        r.push(7);
        assert_eq!(r.hops(), &[3, 7]);
        assert_eq!(r.len(), 2);
        assert_eq!(Route::from(&[1u8, 2][..]).hops(), &[1, 2]);
    }

    #[test]
    fn overlong_route_is_a_typed_error() {
        let err = Route::try_new(vec![0u8; MAX_HOPS + 1]).unwrap_err();
        assert_eq!(err, RouteError::TooLong { len: MAX_HOPS + 1, max: MAX_HOPS });
        let mut r = Route::new(vec![0u8; MAX_HOPS]);
        assert_eq!(r.try_push(0), Err(RouteError::TooLong { len: MAX_HOPS + 1, max: MAX_HOPS }));
        assert_eq!(r.len(), MAX_HOPS, "failed push must not grow the route");
        // the Display form names both numbers for the operator
        assert!(err.to_string().contains("65"), "{err}");
    }

    #[test]
    #[should_panic(expected = "MAX_HOPS")]
    fn overlong_route_panics_via_infallible_constructor() {
        Route::new(vec![0u8; MAX_HOPS + 1]);
    }

    #[test]
    fn max_hops_fits_the_wire_prefix() {
        // the on-wire route_len field is a single byte
        assert!(MAX_HOPS <= u8::MAX as usize);
    }
}
