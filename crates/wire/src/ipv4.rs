//! IPv4 header (RFC 791, options-free).
//!
//! §4.1 of the paper: IP input processing runs at interrupt time on the
//! CAB; the sanity check "including computation of the IP header
//! checksum" happens in the start-of-data upcall, and fragments are
//! queued for reassembly at end-of-data. This module supplies the
//! header format those code paths operate on; the reassembly and
//! fragmentation logic lives in `nectar-stack`.

use std::net::Ipv4Addr;

use crate::{checksum, get_u16, put_u16, WireError};

/// Length of the options-free IPv4 header.
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers we demultiplex.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IpProtocol(pub u8);

impl IpProtocol {
    pub const ICMP: IpProtocol = IpProtocol(1);
    pub const TCP: IpProtocol = IpProtocol(6);
    pub const UDP: IpProtocol = IpProtocol(17);
}

/// Fragmentation-related and addressing fields of an IPv4 header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ipv4Header {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub protocol: IpProtocol,
    pub ttl: u8,
    pub tos: u8,
    pub ident: u16,
    pub dont_frag: bool,
    pub more_frags: bool,
    /// Fragment offset in bytes (stored on the wire in 8-byte units, so
    /// must be a multiple of 8 when emitted).
    pub frag_offset: u16,
    /// Total length of header + payload, in bytes.
    pub total_len: u16,
}

impl Ipv4Header {
    /// A fresh unfragmented header with common defaults (TTL per the
    /// 4.3BSD default of 30 hops scaled up to the modern 64 — the value
    /// is inert inside a two-HUB LAN).
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload_len: usize) -> Self {
        Ipv4Header {
            src,
            dst,
            protocol,
            ttl: 64,
            tos: 0,
            ident: 0,
            dont_frag: false,
            more_frags: false,
            frag_offset: 0,
            total_len: (HEADER_LEN + payload_len) as u16,
        }
    }

    /// Payload length implied by `total_len`.
    pub fn payload_len(&self) -> usize {
        (self.total_len as usize).saturating_sub(HEADER_LEN)
    }

    /// Parse and validate a header from the front of `data`, verifying
    /// version, header length, the header checksum, and that the buffer
    /// is at least `total_len` long. Returns the header; the payload is
    /// `data[HEADER_LEN..total_len]`.
    pub fn parse(data: &[u8]) -> Result<Ipv4Header, WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if data[0] >> 4 != 4 {
            return Err(WireError::BadField);
        }
        let ihl = (data[0] & 0x0f) as usize * 4;
        if ihl != HEADER_LEN {
            // we never emit options; receiving them is unsupported
            return Err(WireError::BadField);
        }
        if !checksum::internet_checksum_valid(&data[..HEADER_LEN]) {
            return Err(WireError::BadChecksum);
        }
        let total_len = get_u16(data, 2);
        if (total_len as usize) < HEADER_LEN || data.len() < total_len as usize {
            return Err(WireError::BadLength);
        }
        let flags_frag = get_u16(data, 6);
        Ok(Ipv4Header {
            tos: data[1],
            total_len,
            ident: get_u16(data, 4),
            dont_frag: flags_frag & 0x4000 != 0,
            more_frags: flags_frag & 0x2000 != 0,
            frag_offset: (flags_frag & 0x1fff) * 8,
            ttl: data[8],
            protocol: IpProtocol(data[9]),
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
        })
    }

    /// Emit the header (with correct checksum) into the first
    /// [`HEADER_LEN`] bytes of `buf`.
    pub fn emit(&self, buf: &mut [u8]) {
        assert!(buf.len() >= HEADER_LEN);
        assert_eq!(self.frag_offset % 8, 0, "fragment offset must be 8-byte aligned");
        buf[0] = 0x45; // version 4, IHL 5
        buf[1] = self.tos;
        put_u16(buf, 2, self.total_len);
        put_u16(buf, 4, self.ident);
        let mut flags_frag = self.frag_offset / 8;
        if self.dont_frag {
            flags_frag |= 0x4000;
        }
        if self.more_frags {
            flags_frag |= 0x2000;
        }
        put_u16(buf, 6, flags_frag);
        buf[8] = self.ttl;
        buf[9] = self.protocol.0;
        put_u16(buf, 10, 0); // checksum placeholder
        buf[12..16].copy_from_slice(&self.src.octets());
        buf[16..20].copy_from_slice(&self.dst.octets());
        let c = checksum::internet_checksum(&buf[..HEADER_LEN]);
        put_u16(buf, 10, c);
    }

    /// Build a complete packet: header + payload.
    pub fn build_packet(&self, payload: &[u8]) -> Vec<u8> {
        debug_assert_eq!(self.payload_len(), payload.len());
        let mut pkt = vec![0u8; HEADER_LEN + payload.len()];
        self.emit(&mut pkt);
        pkt[HEADER_LEN..].copy_from_slice(payload);
        pkt
    }

    /// Start the transport pseudo-header checksum for this packet
    /// (shared by TCP and UDP).
    pub fn pseudo_header_checksum(&self, transport_len: usize) -> checksum::ChecksumAccum {
        let mut acc = checksum::ChecksumAccum::new();
        acc.write_u32(u32::from(self.src));
        acc.write_u32(u32::from(self.dst));
        acc.write_u16(self.protocol.0 as u16);
        acc.write_u16(transport_len as u16);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    #[test]
    fn emit_parse_roundtrip() {
        let payload = b"transport bytes";
        let mut h = Ipv4Header::new(addr(1), addr(2), IpProtocol::UDP, payload.len());
        h.ident = 0x1234;
        h.ttl = 17;
        h.tos = 0x10;
        let pkt = h.build_packet(payload);
        let parsed = Ipv4Header::parse(&pkt).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(&pkt[HEADER_LEN..], payload);
        assert_eq!(parsed.payload_len(), payload.len());
    }

    #[test]
    fn fragment_fields_roundtrip() {
        let mut h = Ipv4Header::new(addr(1), addr(2), IpProtocol::UDP, 64);
        h.more_frags = true;
        h.frag_offset = 1480;
        let pkt = h.build_packet(&[0u8; 64]);
        let parsed = Ipv4Header::parse(&pkt).unwrap();
        assert!(parsed.more_frags);
        assert!(!parsed.dont_frag);
        assert_eq!(parsed.frag_offset, 1480);

        let mut h2 = h;
        h2.more_frags = false;
        h2.dont_frag = true;
        h2.frag_offset = 0;
        let pkt2 = h2.build_packet(&[0u8; 64]);
        let parsed2 = Ipv4Header::parse(&pkt2).unwrap();
        assert!(parsed2.dont_frag);
        assert!(!parsed2.more_frags);
    }

    #[test]
    #[should_panic(expected = "8-byte aligned")]
    fn unaligned_fragment_offset_panics() {
        let mut h = Ipv4Header::new(addr(1), addr(2), IpProtocol::UDP, 4);
        h.frag_offset = 3;
        h.build_packet(&[0u8; 4]);
    }

    #[test]
    fn checksum_is_validated() {
        let h = Ipv4Header::new(addr(1), addr(2), IpProtocol::TCP, 0);
        let mut pkt = h.build_packet(&[]);
        pkt[8] ^= 0xff; // mangle TTL
        assert_eq!(Ipv4Header::parse(&pkt), Err(WireError::BadChecksum));
    }

    #[test]
    fn rejects_bad_version_and_options() {
        let h = Ipv4Header::new(addr(1), addr(2), IpProtocol::TCP, 0);
        let mut pkt = h.build_packet(&[]);
        pkt[0] = 0x65; // version 6
        assert_eq!(Ipv4Header::parse(&pkt), Err(WireError::BadField));
        pkt[0] = 0x46; // IHL 6 => options present
        assert_eq!(Ipv4Header::parse(&pkt), Err(WireError::BadField));
    }

    #[test]
    fn rejects_truncation() {
        let h = Ipv4Header::new(addr(1), addr(2), IpProtocol::TCP, 8);
        let pkt = h.build_packet(&[0u8; 8]);
        assert_eq!(Ipv4Header::parse(&pkt[..10]), Err(WireError::Truncated));
        // buffer shorter than total_len
        assert_eq!(Ipv4Header::parse(&pkt[..24]), Err(WireError::BadLength));
    }

    #[test]
    fn pseudo_header_matches_manual() {
        let h = Ipv4Header::new(addr(9), addr(8), IpProtocol::UDP, 4);
        let acc = h.pseudo_header_checksum(4);
        let mut manual = checksum::ChecksumAccum::new();
        manual.write(&[10, 0, 0, 9, 10, 0, 0, 8, 0, 17, 0, 4]);
        assert_eq!(acc.finish_raw(), manual.finish_raw());
    }
}
