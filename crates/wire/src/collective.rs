//! Wire format for the CAB-resident collective protocol (multicast,
//! tree barrier, reduction combining).
//!
//! The NIC-based collectives literature moves collective progress off
//! the hosts and into the network interface; the Nectar CAB behind a
//! low-latency crossbar is the same shape of platform. One datalink
//! protocol number ([`crate::datalink::DatalinkProto::Collective`])
//! carries three packet kinds:
//!
//! * `Multicast` — fan-out data along a source-rooted distribution
//!   tree; intermediate CABs replicate to their children.
//! * `Arrive` — a child subtree reports (combined) arrival upstream;
//!   interior CABs merge children + self into one frame per subtree.
//! * `Release` — the root's answer, fanned back down the tree. Doubles
//!   as the acknowledgment for `Arrive`, so stragglers retransmit
//!   `Arrive` until the release for their epoch comes back.
//!
//! `epoch` sequences successive barriers/reductions on one group;
//! `value` carries the reduction operand (`op` selects sum/min/max,
//! `None` for a pure barrier). All fields big-endian.

use crate::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64, WireError};

/// Collective header: 16 bytes, then an optional payload (multicast
/// data; Arrive/Release usually carry none).
pub const COLLECTIVE_HEADER_LEN: usize = 16;

/// Collective packet kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum CollectiveKind {
    /// Fan-out data distribution along the group tree.
    Multicast = 1,
    /// Upstream (combined) arrival report for `epoch`.
    Arrive = 2,
    /// Downstream release of `epoch`, carrying the combined value.
    Release = 3,
}

/// Reduction operator combined at interior CABs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum CombineOp {
    /// No combining — a pure barrier.
    None = 0,
    /// Wrapping u64 sum.
    Sum = 1,
    Min = 2,
    Max = 3,
}

impl CombineOp {
    /// The operator's identity element (the accumulator seed).
    pub fn identity(self) -> u64 {
        match self {
            CombineOp::None | CombineOp::Sum => 0,
            CombineOp::Min => u64::MAX,
            CombineOp::Max => 0,
        }
    }

    /// Combine two operands.
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            CombineOp::None => 0,
            CombineOp::Sum => a.wrapping_add(b),
            CombineOp::Min => a.min(b),
            CombineOp::Max => a.max(b),
        }
    }
}

/// The collective header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollectiveHeader {
    pub kind: CollectiveKind,
    pub op: CombineOp,
    /// Group id — the key into each CAB's group table.
    pub group: u16,
    /// Barrier/reduction round. Stragglers from epoch N must never
    /// release epoch N+1; per-epoch state keys off this.
    pub epoch: u32,
    /// Reduction operand (Arrive) or combined result (Release); unused
    /// for multicast and pure barriers.
    pub value: u64,
}

impl CollectiveHeader {
    pub fn build(&self, payload: &[u8]) -> Vec<u8> {
        let mut msg = vec![0u8; COLLECTIVE_HEADER_LEN + payload.len()];
        msg[0] = self.kind as u8;
        msg[1] = self.op as u8;
        put_u16(&mut msg, 2, self.group);
        put_u32(&mut msg, 4, self.epoch);
        put_u64(&mut msg, 8, self.value);
        msg[COLLECTIVE_HEADER_LEN..].copy_from_slice(payload);
        msg
    }

    pub fn parse(data: &[u8]) -> Result<(CollectiveHeader, &[u8]), WireError> {
        if data.len() < COLLECTIVE_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let kind = match data[0] {
            1 => CollectiveKind::Multicast,
            2 => CollectiveKind::Arrive,
            3 => CollectiveKind::Release,
            _ => return Err(WireError::BadField),
        };
        let op = match data[1] {
            0 => CombineOp::None,
            1 => CombineOp::Sum,
            2 => CombineOp::Min,
            3 => CombineOp::Max,
            _ => return Err(WireError::BadField),
        };
        Ok((
            CollectiveHeader {
                kind,
                op,
                group: get_u16(data, 2),
                epoch: get_u32(data, 4),
                value: get_u64(data, 8),
            },
            &data[COLLECTIVE_HEADER_LEN..],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds_and_ops() {
        for kind in [CollectiveKind::Multicast, CollectiveKind::Arrive, CollectiveKind::Release] {
            for op in [CombineOp::None, CombineOp::Sum, CombineOp::Min, CombineOp::Max] {
                let h = CollectiveHeader {
                    kind,
                    op,
                    group: 0x1234,
                    epoch: 0xdead_beef,
                    value: 0x0123_4567_89ab_cdef,
                };
                let msg = h.build(b"fanout payload");
                let (parsed, payload) = CollectiveHeader::parse(&msg).unwrap();
                assert_eq!(parsed, h);
                assert_eq!(payload, b"fanout payload");
            }
        }
    }

    #[test]
    fn rejects_truncated_and_bad_fields() {
        let h = CollectiveHeader {
            kind: CollectiveKind::Arrive,
            op: CombineOp::Sum,
            group: 1,
            epoch: 2,
            value: 3,
        };
        let msg = h.build(&[]);
        assert_eq!(CollectiveHeader::parse(&msg[..8]), Err(WireError::Truncated));
        let mut bad = msg.clone();
        bad[0] = 9;
        assert_eq!(CollectiveHeader::parse(&bad), Err(WireError::BadField));
        let mut bad = msg;
        bad[1] = 7;
        assert_eq!(CollectiveHeader::parse(&bad), Err(WireError::BadField));
    }

    #[test]
    fn combine_semantics() {
        assert_eq!(CombineOp::Sum.combine(u64::MAX, 2), 1); // wrapping
        assert_eq!(CombineOp::Min.combine(5, 3), 3);
        assert_eq!(CombineOp::Max.combine(5, 3), 5);
        for op in [CombineOp::Sum, CombineOp::Min, CombineOp::Max] {
            assert_eq!(op.combine(op.identity(), 42), 42, "{op:?} identity");
        }
        assert_eq!(CombineOp::None.combine(1, 2), 0);
    }
}
