//! Wire formats for the Nectar reproduction.
//!
//! Everything that crosses a simulated fiber, VME bus, or Ethernet in
//! this workspace is real bytes in the formats defined here, following
//! the smoltcp idiom: *views* over byte slices with `parse` validation
//! and `emit` construction, plus standalone checksum implementations
//! (Internet checksum for IP/TCP/UDP/ICMP, CRC-32 for the CAB's hardware
//! frame check).
//!
//! Layers, outermost first:
//!
//! * [`route`] — the source-route prefix consumed by HUBs (§2.1 of the
//!   paper: "CABs use source routing to send a message through the
//!   network").
//! * [`datalink`] — the Nectar datalink header and CRC-32 trailer
//!   (computed by CAB hardware in the original system).
//! * [`ipv4`], [`icmp`], [`udp`], [`tcp`] — the TCP/IP suite the paper
//!   implements on the CAB (§4).
//! * [`nectar`] — the Nectar-specific transport headers: datagram,
//!   reliable message (RMP), and request-response (§4: "datagram,
//!   reliable message, and request-response communication").
//!
//! This crate is pure: no simulation, no time, no I/O. That makes every
//! format property-testable in isolation.

pub mod checksum;
pub mod collective;
pub mod datalink;
pub mod framebuf;
pub mod icmp;
pub mod ipv4;
pub mod nectar;
pub mod route;
pub mod tcp;
pub mod udp;

pub use checksum::{crc32, internet_checksum, ChecksumAccum, Crc32Accum};
pub use datalink::{DatalinkHeader, DatalinkProto, Frame};
pub use framebuf::FrameBuf;

/// Errors from parsing any wire format in this crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header.
    Truncated,
    /// A length field disagrees with the buffer.
    BadLength,
    /// A checksum or CRC failed verification.
    BadChecksum,
    /// A version / type / magic field has an unsupported value.
    BadField,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireError::Truncated => "truncated packet",
            WireError::BadLength => "length field mismatch",
            WireError::BadChecksum => "checksum failure",
            WireError::BadField => "unsupported field value",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

pub(crate) fn get_u16(b: &[u8], at: usize) -> u16 {
    u16::from_be_bytes([b[at], b[at + 1]])
}

pub(crate) fn get_u32(b: &[u8], at: usize) -> u32 {
    u32::from_be_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

pub(crate) fn put_u16(b: &mut [u8], at: usize, v: u16) {
    b[at..at + 2].copy_from_slice(&v.to_be_bytes());
}

pub(crate) fn put_u32(b: &mut [u8], at: usize, v: u32) {
    b[at..at + 4].copy_from_slice(&v.to_be_bytes());
}

pub(crate) fn get_u64(b: &[u8], at: usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&b[at..at + 8]);
    u64::from_be_bytes(bytes)
}

pub(crate) fn put_u64(b: &mut [u8], at: usize, v: u64) {
    b[at..at + 8].copy_from_slice(&v.to_be_bytes());
}
