//! Shared, immutable frame storage.
//!
//! A [`FrameBuf`] is a reference-counted byte buffer plus a sub-range.
//! Cloning is O(1) (a refcount bump) and [`FrameBuf::slice`] produces a
//! narrower view of the same allocation, so a frame's payload can be
//! handed to a protocol stack without copying the bytes. This mirrors
//! the real CAB, where the datalink hardware deposits a frame into
//! on-board memory once and every layer above works on offsets into
//! that single buffer.
//!
//! The simulator is single-threaded per [`crate::Frame`] owner, so the
//! backing store is an `Rc<[u8]>`, not an `Arc`.

use std::fmt;
use std::ops::{Deref, Range};
use std::rc::Rc;

/// A cheaply-cloneable view into reference-counted frame bytes.
#[derive(Clone)]
pub struct FrameBuf {
    data: Rc<[u8]>,
    start: u32,
    end: u32,
}

impl FrameBuf {
    /// Take ownership of `bytes` as a new backing allocation covering
    /// the whole buffer.
    pub fn new(bytes: Vec<u8>) -> FrameBuf {
        assert!(bytes.len() <= u32::MAX as usize, "frame buffer too large");
        let end = bytes.len() as u32;
        FrameBuf { data: Rc::from(bytes), start: 0, end }
    }

    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start as usize..self.end as usize]
    }

    /// A narrower view of the same allocation. `range` is relative to
    /// this view. Panics if the range is out of bounds, like slice
    /// indexing.
    pub fn slice(&self, range: Range<usize>) -> FrameBuf {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        FrameBuf {
            data: Rc::clone(&self.data),
            start: self.start + range.start as u32,
            end: self.start + range.end as u32,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// How many [`FrameBuf`] views share this backing allocation. The
    /// zero-copy fan-out tests assert multicast replicas keep this > 1
    /// (shared storage) and copy-on-write corruption leaves siblings
    /// untouched.
    pub fn backing_refcount(&self) -> usize {
        Rc::strong_count(&self.data)
    }

    /// Do two views share one backing allocation?
    pub fn shares_backing(&self, other: &FrameBuf) -> bool {
        Rc::ptr_eq(&self.data, &other.data)
    }
}

impl From<Vec<u8>> for FrameBuf {
    fn from(bytes: Vec<u8>) -> FrameBuf {
        FrameBuf::new(bytes)
    }
}

impl Deref for FrameBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for FrameBuf {
    fn eq(&self, other: &FrameBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for FrameBuf {}

impl fmt::Debug for FrameBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FrameBuf({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = FrameBuf::new(vec![1, 2, 3, 4, 5]);
        let b = a.clone();
        assert!(Rc::ptr_eq(&a.data, &b.data));
        assert_eq!(a, b);
    }

    #[test]
    fn slice_is_a_view() {
        let a = FrameBuf::new((0..10).collect());
        let s = a.slice(2..7);
        assert_eq!(s.as_slice(), &[2, 3, 4, 5, 6]);
        assert!(Rc::ptr_eq(&a.data, &s.data));
        // slicing a slice stays relative to the view
        let s2 = s.slice(1..3);
        assert_eq!(s2.as_slice(), &[3, 4]);
        assert_eq!(s2.len(), 2);
        let empty = s.slice(5..5);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_out_of_bounds_panics() {
        let a = FrameBuf::new(vec![0; 4]);
        let _ = a.slice(2..6);
    }

    #[test]
    fn deref_and_eq_compare_contents() {
        let a = FrameBuf::new(vec![9, 9, 7]);
        let b = FrameBuf::new(vec![1, 9, 9, 7]).slice(1..4);
        assert_eq!(a, b);
        assert_eq!(&a[..2], &[9, 9]);
    }
}
