//! Robustness properties: no parser in the wire crate may panic on
//! arbitrary input bytes — they must return structured errors. These
//! are the bytes a hostile or faulty peer could put on the fiber.

use nectar_sim::check;

use nectar_wire::datalink::Frame;
use nectar_wire::icmp::IcmpMessage;
use nectar_wire::ipv4::{IpProtocol, Ipv4Header};
use nectar_wire::nectar::{DatagramHeader, ReqRespHeader, RmpHeader};
use nectar_wire::tcp::TcpHeader;
use nectar_wire::udp::UdpHeader;

const CASES: u64 = 256;

#[test]
fn frame_parsers_never_panic() {
    check::cases(CASES, |g| {
        let b = g.bytes(0, 256);
        let f = Frame::from_bytes(b);
        let _ = f.next_hop();
        let _ = f.parse_header();
        let _ = f.payload();
        let _ = f.check_crc();
    });
}

#[test]
fn ipv4_parser_never_panics() {
    check::cases(CASES, |g| {
        let b = g.bytes(0, 256);
        let _ = Ipv4Header::parse(&b);
    });
}

#[test]
fn tcp_parser_never_panics() {
    check::cases(CASES, |g| {
        let b = g.bytes(0, 256);
        let ip = Ipv4Header::new(
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            std::net::Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::TCP,
            b.len(),
        );
        let _ = TcpHeader::parse(&ip, &b, true);
        let _ = TcpHeader::parse(&ip, &b, false);
    });
}

#[test]
fn udp_parser_never_panics() {
    check::cases(CASES, |g| {
        let b = g.bytes(0, 256);
        let ip = Ipv4Header::new(
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            std::net::Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::UDP,
            b.len(),
        );
        let _ = UdpHeader::parse(&ip, &b);
    });
}

#[test]
fn icmp_parser_never_panics() {
    check::cases(CASES, |g| {
        let b = g.bytes(0, 256);
        let _ = IcmpMessage::parse(&b);
    });
}

#[test]
fn nectar_transport_parsers_never_panic() {
    check::cases(CASES, |g| {
        let b = g.bytes(0, 256);
        let _ = DatagramHeader::parse(&b);
        let _ = RmpHeader::parse(&b);
        let _ = ReqRespHeader::parse(&b);
    });
}

/// Valid frames survive arbitrary single-bit corruption without a
/// parser panic, and either fail CRC/parse or (for route-prefix
/// bits, which the CRC deliberately excludes) still parse.
#[test]
fn corrupted_valid_frames_never_panic() {
    use nectar_wire::datalink::{DatalinkHeader, DatalinkProto};
    use nectar_wire::route::Route;
    check::cases(CASES, |g| {
        let payload = g.bytes(0, 128);
        let bit = g.u64() as usize;
        let hdr = DatalinkHeader {
            dst_cab: 1,
            src_cab: 0,
            proto: DatalinkProto::Datagram,
            flags: 0,
            payload_len: 0,
            msg_id: 9,
        };
        let mut f = Frame::build(&Route::new(vec![2, 3]), hdr, &payload);
        f.corrupt_bit(bit);
        let _ = f.next_hop();
        let _ = f.parse_header();
        let _ = f.payload();
        let _ = f.check_crc();
    });
}
