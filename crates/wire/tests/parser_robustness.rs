//! Robustness properties: no parser in the wire crate may panic on
//! arbitrary input bytes — they must return structured errors. These
//! are the bytes a hostile or faulty peer could put on the fiber.

use proptest::prelude::*;

use nectar_wire::datalink::Frame;
use nectar_wire::icmp::IcmpMessage;
use nectar_wire::ipv4::{IpProtocol, Ipv4Header};
use nectar_wire::nectar::{DatagramHeader, ReqRespHeader, RmpHeader};
use nectar_wire::tcp::TcpHeader;
use nectar_wire::udp::UdpHeader;

fn bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frame_parsers_never_panic(b in bytes()) {
        let f = Frame::from_bytes(b);
        let _ = f.next_hop();
        let _ = f.parse_header();
        let _ = f.payload();
        let _ = f.check_crc();
    }

    #[test]
    fn ipv4_parser_never_panics(b in bytes()) {
        let _ = Ipv4Header::parse(&b);
    }

    #[test]
    fn tcp_parser_never_panics(b in bytes()) {
        let ip = Ipv4Header::new(
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            std::net::Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::TCP,
            b.len(),
        );
        let _ = TcpHeader::parse(&ip, &b, true);
        let _ = TcpHeader::parse(&ip, &b, false);
    }

    #[test]
    fn udp_parser_never_panics(b in bytes()) {
        let ip = Ipv4Header::new(
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            std::net::Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::UDP,
            b.len(),
        );
        let _ = UdpHeader::parse(&ip, &b);
    }

    #[test]
    fn icmp_parser_never_panics(b in bytes()) {
        let _ = IcmpMessage::parse(&b);
    }

    #[test]
    fn nectar_transport_parsers_never_panic(b in bytes()) {
        let _ = DatagramHeader::parse(&b);
        let _ = RmpHeader::parse(&b);
        let _ = ReqRespHeader::parse(&b);
    }

    /// Valid frames survive arbitrary single-bit corruption without a
    /// parser panic, and either fail CRC/parse or (for route-prefix
    /// bits, which the CRC deliberately excludes) still parse.
    #[test]
    fn corrupted_valid_frames_never_panic(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        bit in any::<usize>(),
    ) {
        use nectar_wire::datalink::{DatalinkHeader, DatalinkProto};
        use nectar_wire::route::Route;
        let hdr = DatalinkHeader {
            dst_cab: 1,
            src_cab: 0,
            proto: DatalinkProto::Datagram,
            flags: 0,
            payload_len: 0,
            msg_id: 9,
        };
        let mut f = Frame::build(&Route::new(vec![2, 3]), hdr, &payload);
        f.corrupt_bit(bit);
        let _ = f.next_hop();
        let _ = f.parse_header();
        let _ = f.payload();
        let _ = f.check_crc();
    }
}
