//! The host machine: process scheduler and CAB device driver.
//!
//! The host mirrors the CAB's burst-atomic execution: one
//! [`Host::step`] call runs one burst — the driver's interrupt service
//! routine or one process burst — against the mmap'ed CAB memory, and
//! reports when it next has work. The core crate interleaves host and
//! CAB bursts on the global event queue.

use nectar_cab::shared::{CabShared, HostCondId, SigEntry};
use nectar_sim::{SimDuration, SimTime, Trace};

use crate::costs::HostCostModel;
use crate::process::{HostCx, HostEffect, HostProcess, HostStep, ProcId};

/// Result of one host step (same contract as the CAB's).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostStepStatus {
    Ran { next: SimTime },
    Idle { next: Option<SimTime> },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ProcState {
    Runnable,
    Blocked(HostCondId),
    Sleeping(SimTime),
    Done,
}

struct ProcSlot {
    body: Option<Box<dyn HostProcess>>,
    state: ProcState,
}

/// Host counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostStats {
    pub proc_switches: u64,
    pub cab_interrupts: u64,
    pub vme_words: u64,
    /// Total CPU time charged across every burst (interrupt service +
    /// process bursts) — the `node/<id>/host/cpu_busy_ns` meter.
    pub cpu_busy: SimDuration,
}

/// One host workstation attached to a CAB over VME.
pub struct Host {
    pub id: u16,
    /// The CAB this host's memory mapping points at.
    pub cab_id: u16,
    pub costs: HostCostModel,
    procs: Vec<ProcSlot>,
    last_proc: Option<ProcId>,
    rr_next: usize,
    cursor: SimTime,
    pending_intr: Vec<SimTime>,
    pub stats: HostStats,
}

impl Host {
    pub fn new(id: u16, cab_id: u16, costs: HostCostModel) -> Host {
        Host {
            id,
            cab_id,
            costs,
            procs: Vec::new(),
            last_proc: None,
            rr_next: 0,
            cursor: SimTime::ZERO,
            pending_intr: Vec::new(),
            stats: HostStats::default(),
        }
    }

    /// Start a process.
    pub fn spawn(&mut self, p: Box<dyn HostProcess>) -> ProcId {
        self.procs.push(ProcSlot { body: Some(p), state: ProcState::Runnable });
        (self.procs.len() - 1) as ProcId
    }

    pub fn is_done(&self, p: ProcId) -> bool {
        self.procs[p as usize].state == ProcState::Done
    }

    /// The CAB raised the VME interrupt towards this host.
    pub fn cab_interrupt(&mut self, now: SimTime) {
        self.pending_intr.push(now);
    }

    /// Earliest instant this host has work, absent new input.
    pub fn next_work(&self, after: SimTime) -> Option<SimTime> {
        let after = after.max(self.cursor);
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            next = Some(match next {
                None => t,
                Some(n) => n.min(t),
            });
        };
        for &t in &self.pending_intr {
            consider(t.max(after));
        }
        for p in &self.procs {
            match p.state {
                ProcState::Runnable => consider(after),
                ProcState::Sleeping(d) => consider(d.max(after)),
                _ => {}
            }
        }
        next
    }

    /// Execute one burst at (or after) `now` against the mapped CAB
    /// memory.
    pub fn step(
        &mut self,
        now: SimTime,
        shared: &mut CabShared,
        trace: &mut Trace,
    ) -> (Vec<HostEffect>, HostStepStatus) {
        let t = self.cursor.max(now);
        // wake sleepers
        for p in &mut self.procs {
            if let ProcState::Sleeping(d) = p.state {
                if d <= t {
                    p.state = ProcState::Runnable;
                }
            }
        }
        let mut fx = Vec::new();

        // 1. driver interrupt service: drain the host signal queue
        if let Some(idx) =
            self.pending_intr.iter().enumerate().filter(|(_, &at)| at <= t).map(|(i, _)| i).next()
        {
            self.pending_intr.remove(idx);
            self.stats.cab_interrupts += 1;
            let depth = shared.host_sigq.len() as u64;
            if depth > shared.host_sigq_high {
                shared.host_sigq_high = depth;
            }
            let mut charged = self.costs.interrupt_service;
            while let Some(entry) = shared.host_sigq.pop_front() {
                charged += self.costs.vme_word * 2;
                if let SigEntry::HostCondSignalled(hc) = entry {
                    for p in &mut self.procs {
                        if p.state == ProcState::Blocked(hc) {
                            p.state = ProcState::Runnable;
                        }
                    }
                }
            }
            self.stats.cpu_busy += charged;
            self.cursor = t + charged;
            return (fx, HostStepStatus::Ran { next: self.cursor });
        }

        // 2. processes (round robin; single CPU)
        let n = self.procs.len();
        let mut picked = None;
        for off in 0..n {
            let pid = (self.rr_next + off) % n;
            if self.procs[pid].state == ProcState::Runnable {
                picked = Some(pid);
                break;
            }
        }
        if let Some(pid) = picked {
            self.rr_next = (pid + 1) % n.max(1);
            let switch = self.last_proc != Some(pid as ProcId);
            let mut body = self.procs[pid].body.take().expect("process in flight");
            let mut cx = HostCx {
                host_id: self.id,
                cab_id: self.cab_id,
                t0: t,
                charged: SimDuration::ZERO,
                costs: &self.costs,
                shared,
                fx: &mut fx,
                trace,
                vme_words: 0,
                doorbell: false,
            };
            if switch {
                cx.charge(cx.costs.proc_switch);
                self.stats.proc_switches += 1;
            }
            let step = body.run(&mut cx);
            let mut charged = cx.charged();
            if charged == SimDuration::ZERO && step == HostStep::Yield {
                charged = SimDuration::from_micros(1);
            }
            let doorbell = cx.doorbell;
            self.stats.vme_words += cx.vme_words;
            self.procs[pid].body = Some(body);
            self.procs[pid].state = match step {
                HostStep::Yield => ProcState::Runnable,
                HostStep::Block(hc) => ProcState::Blocked(hc),
                HostStep::Sleep(d) => ProcState::Sleeping(d),
                HostStep::Done => ProcState::Done,
            };
            self.last_proc = Some(pid as ProcId);
            if doorbell {
                fx.push(HostEffect::InterruptCab);
            }
            self.stats.cpu_busy += charged;
            self.cursor = t + charged;
            return (fx, HostStepStatus::Ran { next: self.cursor });
        }

        // 3. idle
        (fx, HostStepStatus::Idle { next: self.next_work(t) })
    }
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host").field("id", &self.id).field("stats", &self.stats).finish()
    }
}
