//! The Nectar host: a Sun 4-class workstation attached to its CAB over
//! a VME backplane.
//!
//! §3.2 and §3.5 of the paper describe the host side of the system:
//! processes mmap CAB memory through the CAB device driver, operate on
//! mailboxes and syncs directly over the bus (shared-memory mode) or
//! via signal-queue RPC, wait on host condition variables by polling
//! or by blocking in the driver, and use the Nectarine library for a
//! uniform interface.
//!
//! * [`costs`] — VME (1 µs/word) and host CPU timing constants.
//! * [`process`] — the [`process::HostProcess`] trait and the
//!   [`process::HostCx`] execution context with all host-side mailbox,
//!   sync and condition-variable operations.
//! * [`host`] — the host machine: scheduler + CAB device driver.

pub mod costs;
pub mod host;
pub mod process;

pub use costs::HostCostModel;
pub use host::{Host, HostStats, HostStepStatus};
pub use process::{HostCx, HostEffect, HostProcess, HostStep, ProcId};
