//! Host-side cost model (a Sun 4 workstation on a VME backplane).
//!
//! §6.1 of the paper: "each read or write over the VME bus takes about
//! 1 µsec" — the constant that dominates the host–CAB interface and
//! ultimately caps host-to-host throughput near 30 Mbit/s (Figure 8:
//! "the slow VME bus … about 30 Mbit/sec"; 32 bits per µs = 32 Mbit/s
//! of raw PIO bandwidth).

use nectar_sim::SimDuration;

/// Timing constants for the host CPU, the VME interface, and the CAB
/// device driver.
#[derive(Clone, Copy, Debug)]
pub struct HostCostModel {
    /// One 32-bit programmed-I/O access across the VME bus — *paper*:
    /// ~1 µs.
    pub vme_word: SimDuration,
    /// Host process context switch (SunOS on a Sun 4).
    pub proc_switch: SimDuration,
    /// System call entry/exit (the blocking Wait path pays this; the
    /// polling path exists precisely to avoid it, §3.2).
    pub syscall: SimDuration,
    /// Servicing the VME interrupt from the CAB (driver interrupt
    /// handler + wakeup).
    pub interrupt_service: SimDuration,
    /// One iteration of a poll loop (load, compare, branch) excluding
    /// the VME read itself.
    pub poll_iteration: SimDuration,
    /// Host-side CPU portion of mailbox Begin_Put in shared-memory
    /// mode (pointer chasing over VME is charged separately as words).
    pub mbox_begin_put_words: u32,
    pub mbox_end_put_words: u32,
    pub mbox_begin_get_words: u32,
    pub mbox_end_get_words: u32,
    /// Local (host-memory) copy cost per 32-bit word, for building
    /// messages before they cross the bus.
    pub local_copy_word: SimDuration,
    /// Host CPU time to compose/consume a small message (application
    /// level work in Figure 6's "create and read" 20 %).
    pub msg_setup: SimDuration,
}

impl Default for HostCostModel {
    fn default() -> Self {
        HostCostModel {
            vme_word: SimDuration::from_micros(1), // paper
            proc_switch: SimDuration::from_micros(100),
            syscall: SimDuration::from_micros(40),
            interrupt_service: SimDuration::from_micros(80),
            poll_iteration: SimDuration::from_nanos(500),
            // Figure 6 anchors: 18 µs begin_put, 20 µs end_get on the
            // host side — mostly VME words
            mbox_begin_put_words: 14,
            mbox_end_put_words: 5,
            mbox_begin_get_words: 8,
            mbox_end_get_words: 18,
            local_copy_word: SimDuration::from_nanos(120),
            msg_setup: SimDuration::from_micros(20),
        }
    }
}

impl HostCostModel {
    /// Time to move `n` payload bytes across the VME bus by PIO.
    pub fn vme_bytes(&self, n: usize) -> SimDuration {
        self.vme_word * (n as u64).div_ceil(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pinned_vme_word() {
        let c = HostCostModel::default();
        assert_eq!(c.vme_word, SimDuration::from_micros(1));
    }

    #[test]
    fn vme_transfer_rate_is_about_32_mbit() {
        let c = HostCostModel::default();
        // 1 MB over VME PIO: 250k words = 250 ms → 32 Mbit/s
        let t = c.vme_bytes(1_000_000);
        let mbps = 8.0 / t.as_secs_f64();
        assert!((30.0..34.0).contains(&mbps), "mbps={mbps}");
    }

    #[test]
    fn vme_bytes_rounds_up() {
        let c = HostCostModel::default();
        assert_eq!(c.vme_bytes(1), c.vme_word);
        assert_eq!(c.vme_bytes(5), c.vme_word * 2);
        assert_eq!(c.vme_bytes(0), SimDuration::ZERO);
    }
}
