//! Host processes and their execution context.
//!
//! §3.2 of the paper: host processes map CAB memory into their address
//! spaces (mmap through the CAB device driver) and then manipulate the
//! shared data structures directly — every access crossing the VME bus
//! at ~1 µs per word. A host process can wait for a host condition
//! variable either by polling (no system call) or by blocking in the
//! driver (woken by the CAB's VME interrupt through the host signal
//! queue).
//!
//! Host processes follow the same burst-atomic model as CAB threads:
//! [`HostProcess::run`] performs one burst against the [`HostCx`],
//! charging host CPU time and VME word costs, and returns a
//! [`HostStep`].

use nectar_cab::shared::{CabShared, HostCondId, MboxId, MsgRef, SigEntry, SyncId, WouldBlock};
use nectar_sim::{SimDuration, SimTime, Trace};

use crate::costs::HostCostModel;

/// Host process identifier within one host.
pub type ProcId = u16;

/// How a host process burst ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostStep {
    /// Still runnable.
    Yield,
    /// Block in the CAB driver until the host condition is signalled.
    /// The process must have called [`HostCx::driver_register`] first.
    Block(HostCondId),
    /// Sleep until the deadline (timer syscall).
    Sleep(SimTime),
    /// Process exits.
    Done,
}

/// A host process body.
pub trait HostProcess {
    fn run(&mut self, cx: &mut HostCx<'_>) -> HostStep;
    fn name(&self) -> &'static str {
        "proc"
    }
}

/// Effects a host burst produces.
#[derive(Debug)]
pub enum HostEffect {
    /// Raise the interrupt line towards the attached CAB (the CAB
    /// signal queue has new entries).
    InterruptCab,
    /// Transmit an Ethernet frame (the §5.1/§6.3 comparison interface
    /// that bypasses the VME bus). Carries a raw IP packet.
    EthTransmit { dst_host: u16, packet: Vec<u8>, first_byte: SimTime },
}

/// Execution context for one host process burst. `shared` is the
/// mmap'ed CAB memory; every access through the vme_* and mbox_*
/// helpers charges bus time.
pub struct HostCx<'a> {
    pub host_id: u16,
    pub cab_id: u16,
    pub(crate) t0: SimTime,
    pub(crate) charged: SimDuration,
    pub costs: &'a HostCostModel,
    pub shared: &'a mut CabShared,
    pub fx: &'a mut Vec<HostEffect>,
    pub trace: &'a mut Trace,
    pub(crate) vme_words: u64,
    pub(crate) doorbell: bool,
}

impl<'a> HostCx<'a> {
    pub fn now(&self) -> SimTime {
        self.t0 + self.charged
    }

    pub fn charge(&mut self, d: SimDuration) {
        self.charged += d;
    }

    pub fn charged(&self) -> SimDuration {
        self.charged
    }

    /// Trace stamp; host nodes are numbered 0x1000 + host id so they
    /// are distinguishable from CABs in a trace.
    pub fn stamp(&mut self, tag: &'static str, info: u64) {
        let now = self.now();
        let node = 0x1000 + self.host_id as u32;
        self.trace.stamp(now, node, tag, info);
    }

    /// Charge `n` VME word accesses.
    pub fn vme(&mut self, n: u32) {
        self.vme_words += n as u64;
        self.charge(self.costs.vme_word * n as u64);
    }

    /// Charge the VME cost of moving `len` payload bytes.
    pub fn vme_bytes(&mut self, len: usize) {
        self.vme_words += (len as u64).div_ceil(4);
        self.charge(self.costs.vme_bytes(len));
    }

    // ------------------------------------------------------------------
    // mailbox operations, shared-memory mode (§3.3)
    // ------------------------------------------------------------------

    /// Begin_Put from the host: pointer manipulation over VME.
    pub fn mbox_begin_put(&mut self, mbox: MboxId, size: usize) -> Result<MsgRef, WouldBlock> {
        self.vme(self.costs.mbox_begin_put_words);
        self.shared.begin_put(mbox, size)
    }

    /// Fill a reserved message across the bus.
    pub fn msg_write(&mut self, msg: &MsgRef, offset: usize, data: &[u8]) {
        self.vme_bytes(data.len());
        self.shared.msg_write(msg, offset, data);
    }

    /// Read message contents across the bus.
    pub fn msg_read(&mut self, msg: &MsgRef) -> Vec<u8> {
        self.vme_bytes(msg.len as usize);
        self.shared.msg_bytes(msg).to_vec()
    }

    /// End_Put from the host: publish, then notify the CAB through the
    /// signal queue + interrupt (Figure 4's host-to-CAB signaling).
    pub fn mbox_end_put(&mut self, mbox: MboxId, msg: MsgRef) {
        self.vme(self.costs.mbox_end_put_words);
        self.shared.end_put(mbox, msg);
        self.forward_notices_to_cab(Some(mbox));
    }

    /// Begin_Get from the host.
    pub fn mbox_begin_get(&mut self, mbox: MboxId) -> Result<MsgRef, WouldBlock> {
        self.vme(self.costs.mbox_begin_get_words);
        self.shared.begin_get(mbox)
    }

    /// End_Get from the host: release storage. The CAB is only
    /// signalled when a writer actually blocked on heap space — an
    /// unconditional doorbell here would interrupt the CAB on every
    /// message consumed.
    pub fn mbox_end_get(&mut self, mbox: MboxId, msg: MsgRef) {
        self.vme(self.costs.mbox_end_get_words);
        self.shared.end_get(mbox, msg);
        let notices = self.shared.notices.take();
        if self.shared.mailboxes[mbox as usize].space_wanted {
            self.shared.mailboxes[mbox as usize].space_wanted = false;
            for c in notices.wake_conds {
                self.shared.cab_sigq.push_back(SigEntry::CondSignal(c));
            }
            self.vme(2);
            self.doorbell = true;
        }
    }

    /// Translate shared-state notices raised by a host-side operation
    /// into CAB signal-queue entries plus a doorbell interrupt: the
    /// host cannot touch the CAB scheduler directly.
    fn forward_notices_to_cab(&mut self, mbox_written: Option<MboxId>) {
        let notices = self.shared.notices.take();
        let mut posted = false;
        if let Some(mb) = mbox_written {
            if !notices.wake_conds.is_empty() || !notices.upcalls.is_empty() {
                self.shared.cab_sigq.push_back(SigEntry::MailboxWritten(mb));
                posted = true;
            }
        } else {
            for c in notices.wake_conds {
                self.shared.cab_sigq.push_back(SigEntry::CondSignal(c));
                posted = true;
            }
        }
        if posted {
            self.vme(2); // queue entry + doorbell register
            self.doorbell = true;
        }
        // notices.interrupt_host: a host-readable mailbox/sync was
        // touched from the host side itself; the poll value is already
        // visible (single host per CAB)
    }

    /// One-call convenience: build and publish a message (Nectarine's
    /// send path). Returns the message id for tracing.
    pub fn put_message(&mut self, mbox: MboxId, bytes: &[u8]) -> Result<u32, WouldBlock> {
        self.stamp("host_begin_put", mbox as u64);
        self.charge(self.costs.msg_setup);
        let msg = self.mbox_begin_put(mbox, bytes.len())?;
        self.msg_write(&msg, 0, bytes);
        let id = msg.msg_id;
        self.mbox_end_put(mbox, msg);
        self.stamp("host_end_put", id as u64);
        Ok(id)
    }

    /// One-call convenience: take and consume a message, returning its
    /// bytes. Charges the application-level read cost (Figure 6's
    /// "host … reading the message" share) on success.
    pub fn get_message(&mut self, mbox: MboxId) -> Option<(u32, Vec<u8>)> {
        match self.mbox_begin_get(mbox) {
            Ok(msg) => {
                self.stamp("host_begin_get", mbox as u64);
                self.charge(self.costs.msg_setup);
                let bytes = self.msg_read(&msg);
                let id = msg.msg_id;
                self.mbox_end_get(mbox, msg);
                self.stamp("host_end_get", id as u64);
                Some((id, bytes))
            }
            Err(_) => None,
        }
    }

    // ------------------------------------------------------------------
    // host condition variables (§3.2)
    // ------------------------------------------------------------------

    /// Poll a host condition's value (one VME read, no system call).
    pub fn poll_cond(&mut self, hc: HostCondId) -> u32 {
        self.vme(1);
        self.charge(self.costs.poll_iteration);
        self.shared.host_cond_poll(hc)
    }

    /// Register with the driver before blocking (system call). Returns
    /// the poll value at registration: re-check it against what you
    /// have seen before returning [`HostStep::Block`], or you may sleep
    /// through a signal that already happened.
    pub fn driver_register(&mut self, hc: HostCondId) -> u32 {
        self.charge(self.costs.syscall);
        self.shared.host_cond_register_waiter(hc)
    }

    /// Signal a host condition from the host side (wakes other host
    /// processes and increments the poll value).
    pub fn signal_cond(&mut self, hc: HostCondId) {
        self.vme(2);
        self.shared.signal_host_cond(hc);
        // interrupt_host notices stay local: the host signal queue is
        // drained by this host's own driver
    }

    /// The host condition attached to a mailbox, if any.
    pub fn mbox_host_cond(&self, mbox: MboxId) -> Option<HostCondId> {
        self.shared.mailboxes[mbox as usize].host_cond
    }

    // ------------------------------------------------------------------
    // syncs (§3.4) — host side
    // ------------------------------------------------------------------

    /// Host Write offloads execution to the CAB via the signal queue.
    pub fn sync_write(&mut self, id: SyncId, value: u32) {
        self.vme(3);
        self.shared.cab_sigq.push_back(SigEntry::SyncWrite(id, value));
        self.doorbell = true;
    }

    /// Non-blocking host Read: one VME read of the state word; consume
    /// if written and visible by now.
    pub fn sync_poll(&mut self, id: SyncId) -> Option<u32> {
        self.vme(1);
        let now = self.now();
        self.shared.sync_read_at(id, now)
    }

    /// Cancel from the host.
    pub fn sync_cancel(&mut self, id: SyncId) {
        self.vme(2);
        self.shared.cab_sigq.push_back(SigEntry::SyncCancel(id));
        self.doorbell = true;
    }

    /// Allocate a sync (host pool).
    pub fn sync_alloc(&mut self) -> SyncId {
        self.vme(3);
        self.shared.sync_alloc()
    }

    /// The host condition a sync signals on Write.
    pub fn sync_host_cond(&self, id: SyncId) -> HostCondId {
        self.shared.sync_host_cond(id)
    }
}
