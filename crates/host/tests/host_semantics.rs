//! Host-side semantics: process scheduling, the device-driver blocking
//! path, and VME cost accounting.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use nectar_cab::shared::CabShared;
use nectar_cab::HostOpMode;
use nectar_host::{Host, HostCostModel, HostCx, HostProcess, HostStep, HostStepStatus};
use nectar_sim::{SimDuration, SimTime, Trace};

fn run_to_idle(h: &mut Host, shared: &mut CabShared, start: SimTime) -> SimTime {
    let mut trace = Trace::new();
    let mut now = start;
    for _ in 0..100_000 {
        let (_, status) = h.step(now, shared, &mut trace);
        match status {
            HostStepStatus::Ran { next } => now = next,
            HostStepStatus::Idle { next: Some(next) } if next > now => now = next,
            HostStepStatus::Idle { .. } => return now,
        }
    }
    panic!("host never idle");
}

type Log = Rc<RefCell<Vec<&'static str>>>;

struct Chatty {
    tag: &'static str,
    bursts: u32,
    log: Log,
}

impl HostProcess for Chatty {
    fn run(&mut self, cx: &mut HostCx<'_>) -> HostStep {
        cx.charge(SimDuration::from_micros(10));
        self.log.borrow_mut().push(self.tag);
        self.bursts -= 1;
        if self.bursts == 0 {
            HostStep::Done
        } else {
            HostStep::Yield
        }
    }
}

#[test]
fn processes_round_robin_and_pay_context_switches() {
    let mut h = Host::new(0, 0, HostCostModel::default());
    let mut shared = CabShared::new();
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    h.spawn(Box::new(Chatty { tag: "a", bursts: 2, log: log.clone() }));
    h.spawn(Box::new(Chatty { tag: "b", bursts: 2, log: log.clone() }));
    run_to_idle(&mut h, &mut shared, SimTime::ZERO);
    assert_eq!(log.borrow().clone(), vec!["a", "b", "a", "b"]);
    // 4 bursts, each by a different proc than the last: 4 switches
    assert_eq!(h.stats.proc_switches, 4);
}

#[test]
fn blocking_wait_is_woken_by_cab_interrupt() {
    struct Waiter {
        hc: u16,
        registered: bool,
        woke: Rc<Cell<bool>>,
        seen: u32,
    }
    impl HostProcess for Waiter {
        fn run(&mut self, cx: &mut HostCx<'_>) -> HostStep {
            if !self.registered {
                self.registered = true;
                self.seen = cx.driver_register(self.hc);
                return HostStep::Block(self.hc);
            }
            let v = cx.poll_cond(self.hc);
            assert!(v != self.seen, "woken without a signal");
            self.woke.set(true);
            HostStep::Done
        }
    }
    let mut h = Host::new(0, 0, HostCostModel::default());
    let mut shared = CabShared::new();
    let hc = shared.create_host_cond();
    let woke = Rc::new(Cell::new(false));
    h.spawn(Box::new(Waiter { hc, registered: false, woke: woke.clone(), seen: 0 }));
    let t = run_to_idle(&mut h, &mut shared, SimTime::ZERO);
    assert!(!woke.get(), "must be blocked, not spinning");

    // the CAB signals the condition: poll value bumps, the host signal
    // queue gets an entry (waiter registered), and the VME interrupt
    // fires
    shared.signal_host_cond(hc);
    assert!(shared.notices.take().interrupt_host);
    h.cab_interrupt(t + SimDuration::from_micros(1));
    run_to_idle(&mut h, &mut shared, t + SimDuration::from_micros(1));
    assert!(woke.get());
    assert_eq!(h.stats.cab_interrupts, 1);
}

#[test]
fn vme_word_accounting() {
    struct Putter {
        mbox: u16,
    }
    impl HostProcess for Putter {
        fn run(&mut self, cx: &mut HostCx<'_>) -> HostStep {
            // 64-byte message: 16 data words + op bookkeeping words
            let _ = cx.put_message(self.mbox, &[0u8; 64]);
            HostStep::Done
        }
    }
    let costs = HostCostModel::default();
    let mut h = Host::new(0, 0, costs);
    let mut shared = CabShared::new();
    let mbox = shared.create_mailbox(false, HostOpMode::SharedMemory);
    h.spawn(Box::new(Putter { mbox }));
    run_to_idle(&mut h, &mut shared, SimTime::ZERO);
    let expected = (costs.mbox_begin_put_words + costs.mbox_end_put_words + 16 + 2) as u64;
    assert_eq!(h.stats.vme_words, expected, "every word over the bus must be accounted");
}

#[test]
fn sleep_wakes_at_deadline() {
    struct Napper {
        until: SimTime,
        armed: bool,
        woke_at: Rc<RefCell<Option<SimTime>>>,
    }
    impl HostProcess for Napper {
        fn run(&mut self, cx: &mut HostCx<'_>) -> HostStep {
            if !self.armed {
                self.armed = true;
                return HostStep::Sleep(self.until);
            }
            *self.woke_at.borrow_mut() = Some(cx.now());
            HostStep::Done
        }
    }
    let mut h = Host::new(0, 0, HostCostModel::default());
    let mut shared = CabShared::new();
    let until = SimTime::ZERO + SimDuration::from_millis(7);
    let woke_at = Rc::new(RefCell::new(None));
    h.spawn(Box::new(Napper { until, armed: false, woke_at: woke_at.clone() }));
    run_to_idle(&mut h, &mut shared, SimTime::ZERO);
    let woke = woke_at.borrow().expect("woke");
    assert!(woke >= until && woke < until + SimDuration::from_millis(1));
}
