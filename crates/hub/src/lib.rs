//! The Nectar HUB: a 16×16 crossbar switch with a command controller.
//!
//! §2.1 of the paper: "A HUB consists of a crossbar switch, a set of I/O
//! ports, and a controller. The controller implements commands that the
//! CABs use to set up both packet-switching and circuit-switching
//! connections over the network. … The HUB command set includes support
//! for multi-hop connections and low-level flow control. … the HUBs are
//! 16 × 16 crossbars. The hardware latency to set up a connection and
//! transfer the first byte of a packet through a single HUB is 700
//! nanoseconds."
//!
//! The model is cut-through, as the 700 ns figure implies: a frame's
//! first byte exits 700 ns after it arrives (plus any wait for the
//! output port), and the tail follows at line rate. Timing is therefore
//! tracked per frame as a *first-byte time*; serialization happens once,
//! at the transmitting CAB, and every stage just shifts the first-byte
//! time.
//!
//! The HUB is a passive state machine: `frame_arrival` returns a
//! decision (forward / drop) with the computed departure time, and the
//! core crate's wiring turns that into the next event. No event queue
//! appears here, which keeps the component unit-testable in isolation.

pub mod crossbar;

pub use crossbar::{
    Backpressure, DropReason, Hub, HubCommand, HubConfig, HubDecision, HubReply, HubStats,
    PortStats,
};

/// Number of I/O ports on a Nectar HUB (16×16 crossbar).
pub const PORTS: usize = 16;
