//! The crossbar switch and its controller.

use nectar_sim::{SimDuration, SimTime};
use nectar_wire::Frame;

use crate::PORTS;

/// Static configuration of one HUB.
#[derive(Clone, Copy, Debug)]
pub struct HubConfig {
    /// Connection setup + first-byte transfer latency (paper: 700 ns).
    pub setup_latency: SimDuration,
    /// First-byte latency through a pre-established circuit (no
    /// arbitration or setup; one crossbar transit).
    pub circuit_latency: SimDuration,
    /// How long an output port's backlog may grow before further frames
    /// are dropped. The real HUB exerted low-level flow control on the
    /// upstream CAB instead; the CAB model applies that backpressure at
    /// the source, so this cap only trips when a port is genuinely
    /// oversubscribed from multiple sources.
    pub max_backlog: SimDuration,
    /// Xon/xoff flow control on oversubscribed outputs (the real HUB's
    /// low-level backpressure, modeled per frame): a frame whose output
    /// backlog exceeds the xoff watermark is *held* on the upstream
    /// link instead of queued or dropped, and re-offered once the
    /// backlog would have drained to the xon watermark. `None` (the
    /// default, and what every pinned fixture runs) keeps the legacy
    /// drop-at-`max_backlog` behavior.
    pub backpressure: Option<Backpressure>,
}

/// Xon/xoff watermarks for [`HubConfig::backpressure`], both expressed
/// as output-port backlog in serialization time. Requires `xon ≤ xoff`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backpressure {
    /// Backlog above which arriving frames are held upstream.
    pub xoff: SimDuration,
    /// Backlog at which held frames are re-offered.
    pub xon: SimDuration,
}

impl Default for Backpressure {
    fn default() -> Self {
        Backpressure { xoff: SimDuration::from_micros(200), xon: SimDuration::from_micros(50) }
    }
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            setup_latency: SimDuration::from_nanos(700),
            circuit_latency: SimDuration::from_nanos(100),
            max_backlog: SimDuration::from_millis(50),
            backpressure: None,
        }
    }
}

/// Why a frame was dropped by the HUB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The source route had no hop left or was malformed.
    BadRoute,
    /// The route byte named a port outside the crossbar.
    BadPort,
    /// The output port's backlog exceeded [`HubConfig::max_backlog`].
    Backlog,
}

/// The outcome of a frame arriving at an input port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HubDecision {
    /// Forward out of `out_port`; the first byte exits at
    /// `first_byte_out` and the output port stays busy for the frame's
    /// serialization time after that.
    Forward { out_port: u8, first_byte_out: SimTime },
    /// Dropped; the frame never leaves the HUB.
    Drop(DropReason),
    /// Xon/xoff backpressure: the output is past its xoff watermark, so
    /// the frame stays on the upstream link (the route hop is *not*
    /// consumed and no rx/tx is counted) and must be re-offered at
    /// `resume_at`, when the backlog drains to the xon watermark.
    Hold { resume_at: SimTime },
}

/// Controller commands (§2.1: packet- and circuit-switching setup).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HubCommand {
    /// Pin a crossbar connection from `in_port` to `out_port`. Frames
    /// arriving on `in_port` then bypass route processing and setup
    /// latency until the circuit is closed.
    OpenCircuit { in_port: u8, out_port: u8 },
    /// Tear down the circuit originating at `in_port`.
    CloseCircuit { in_port: u8 },
    /// Query port/backlog status.
    Status,
}

/// Controller replies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HubReply {
    Ok,
    /// The requested circuit conflicts with an existing one, or a port
    /// id is out of range.
    Refused,
    /// Status snapshot: for each output port, when it frees up.
    Status {
        busy_until: Vec<SimTime>,
    },
}

/// Per-HUB counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct HubStats {
    pub forwarded: u64,
    pub forwarded_circuit: u64,
    pub dropped_bad_route: u64,
    pub dropped_bad_port: u64,
    pub dropped_backlog: u64,
    /// Every frame whose first byte reached an input port.
    pub rx_frames: u64,
    pub rx_bytes: u64,
    /// Wire bytes of forwarded frames (measured at arrival, before the
    /// route hop byte is consumed).
    pub forwarded_bytes: u64,
    /// Wire bytes of dropped frames.
    pub dropped_bytes: u64,
    /// Frames held upstream by xon/xoff backpressure (each re-offer
    /// that trips the xoff watermark counts once).
    pub held_frames: u64,
}

/// Per-output-port counters and the backlog high-watermark gauge: how
/// deep the port's time-backlog (its FIFO expressed in serialization
/// time) ever got.
#[derive(Clone, Copy, Debug, Default)]
pub struct PortStats {
    pub tx_frames: u64,
    pub tx_bytes: u64,
    /// Highest observed backlog on this output, in nanoseconds,
    /// sampled after each frame is queued.
    pub backlog_high: SimDuration,
    /// Frames held upstream because this output was past xoff.
    pub held_frames: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct OutPort {
    busy_until: SimTime,
    /// Some(in_port) when this output is reserved by a circuit.
    circuit_from: Option<u8>,
    stats: PortStats,
}

/// One 16×16 crossbar HUB.
#[derive(Debug)]
pub struct Hub {
    pub id: u16,
    config: HubConfig,
    out_ports: [OutPort; PORTS],
    /// circuit\[in_port\] = pinned output port.
    circuits: [Option<u8>; PORTS],
    stats: HubStats,
}

impl Hub {
    pub fn new(id: u16, config: HubConfig) -> Self {
        Hub {
            id,
            config,
            out_ports: [OutPort::default(); PORTS],
            circuits: [None; PORTS],
            stats: HubStats::default(),
        }
    }

    pub fn stats(&self) -> &HubStats {
        &self.stats
    }

    pub fn config(&self) -> &HubConfig {
        &self.config
    }

    /// Handle a frame whose first byte reaches `in_port` at `now`.
    /// `ser` is the frame's serialization time at line rate (the output
    /// port is occupied for that long after the first byte exits).
    ///
    /// Packet switching consumes one source-route hop byte from the
    /// frame; a circuit pinned on `in_port` forwards without touching
    /// the route.
    pub fn frame_arrival(
        &mut self,
        now: SimTime,
        in_port: u8,
        frame: &mut Frame,
        ser: SimDuration,
    ) -> HubDecision {
        let wire_len = frame.wire_len() as u64;
        // Xon/xoff backpressure peeks the output *before* the frame is
        // considered received: a held frame never entered the crossbar,
        // so the route hop is untouched and nothing is counted except
        // the hold itself. Everything below this block is the legacy
        // path, bit-identical when backpressure is off.
        if let Some(bp) = self.config.backpressure {
            if (in_port as usize) < PORTS {
                let out = match self.circuits[in_port as usize] {
                    Some(out) => Some(out),
                    None => frame.next_hop().ok().flatten(),
                };
                if let Some(out) = out {
                    if (out as usize) < PORTS {
                        let port = &mut self.out_ports[out as usize];
                        let reserved = port.circuit_from.is_some_and(|owner| owner != in_port);
                        let backlog = port.busy_until.saturating_since(now);
                        if !reserved && backlog > bp.xoff {
                            self.stats.held_frames += 1;
                            port.stats.held_frames += 1;
                            // backlog(t) = busy_until − t, so it drains
                            // to xon at busy_until − xon
                            let resume_at = SimTime::from_nanos(
                                port.busy_until.as_nanos().saturating_sub(bp.xon.as_nanos()),
                            );
                            return HubDecision::Hold { resume_at };
                        }
                    }
                }
            }
        }
        self.stats.rx_frames += 1;
        self.stats.rx_bytes += wire_len;
        if in_port as usize >= PORTS {
            self.stats.dropped_bad_port += 1;
            self.stats.dropped_bytes += wire_len;
            return HubDecision::Drop(DropReason::BadPort);
        }
        let (out_port, latency, via_circuit) = match self.circuits[in_port as usize] {
            Some(out) => (out, self.config.circuit_latency, true),
            None => match frame.advance_hop() {
                Ok(port) => (port, self.config.setup_latency, false),
                Err(_) => {
                    self.stats.dropped_bad_route += 1;
                    self.stats.dropped_bytes += wire_len;
                    return HubDecision::Drop(DropReason::BadRoute);
                }
            },
        };
        if out_port as usize >= PORTS {
            self.stats.dropped_bad_port += 1;
            self.stats.dropped_bytes += wire_len;
            return HubDecision::Drop(DropReason::BadPort);
        }
        let port = &mut self.out_ports[out_port as usize];
        // If the output is reserved by a circuit from a different input,
        // packet traffic must not cut through it.
        if let Some(owner) = port.circuit_from {
            if owner != in_port {
                self.stats.dropped_backlog += 1;
                self.stats.dropped_bytes += wire_len;
                return HubDecision::Drop(DropReason::Backlog);
            }
        }
        if port.busy_until.saturating_since(now) > self.config.max_backlog {
            self.stats.dropped_backlog += 1;
            self.stats.dropped_bytes += wire_len;
            return HubDecision::Drop(DropReason::Backlog);
        }
        // Cut-through: setup can overlap the wait for the port to free.
        let first_byte_out = (now + latency).max(port.busy_until);
        port.busy_until = first_byte_out + ser;
        if via_circuit {
            self.stats.forwarded_circuit += 1;
        } else {
            self.stats.forwarded += 1;
        }
        self.stats.forwarded_bytes += wire_len;
        port.stats.tx_frames += 1;
        port.stats.tx_bytes += wire_len;
        // FIFO depth in time units, sampled with this frame included
        let backlog = port.busy_until.saturating_since(now);
        if backlog > port.stats.backlog_high {
            port.stats.backlog_high = backlog;
        }
        HubDecision::Forward { out_port, first_byte_out }
    }

    /// Per-output-port counters and backlog high-watermarks.
    pub fn port_stats(&self, out_port: usize) -> &PortStats {
        &self.out_ports[out_port].stats
    }

    /// The instant this output port's serializer frees up. Monotone
    /// non-decreasing; a parallel shard runner uses it as an occupancy
    /// floor when promising how soon this port could emit another
    /// frame (`first_byte_out = (now + latency).max(busy_until)`).
    pub fn port_busy_until(&self, out_port: usize) -> SimTime {
        self.out_ports[out_port].busy_until
    }

    /// Execute a controller command.
    pub fn execute(&mut self, cmd: HubCommand) -> HubReply {
        match cmd {
            HubCommand::OpenCircuit { in_port, out_port } => {
                if in_port as usize >= PORTS || out_port as usize >= PORTS {
                    return HubReply::Refused;
                }
                if self.circuits[in_port as usize].is_some() {
                    return HubReply::Refused;
                }
                if self.out_ports[out_port as usize].circuit_from.is_some() {
                    return HubReply::Refused;
                }
                self.circuits[in_port as usize] = Some(out_port);
                self.out_ports[out_port as usize].circuit_from = Some(in_port);
                HubReply::Ok
            }
            HubCommand::CloseCircuit { in_port } => {
                if in_port as usize >= PORTS {
                    return HubReply::Refused;
                }
                match self.circuits[in_port as usize].take() {
                    Some(out) => {
                        self.out_ports[out as usize].circuit_from = None;
                        HubReply::Ok
                    }
                    None => HubReply::Refused,
                }
            }
            HubCommand::Status => HubReply::Status {
                busy_until: self.out_ports.iter().map(|p| p.busy_until).collect(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_wire::datalink::{DatalinkHeader, DatalinkProto};
    use nectar_wire::route::Route;

    fn frame(route: &[u8], payload_len: usize) -> Frame {
        Frame::build(
            &Route::new(route.to_vec()),
            DatalinkHeader {
                dst_cab: 1,
                src_cab: 0,
                proto: DatalinkProto::Raw,
                flags: 0,
                payload_len: 0,
                msg_id: 0,
            },
            &vec![0u8; payload_len],
        )
    }

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn d(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    #[test]
    fn forwards_with_setup_latency() {
        let mut hub = Hub::new(0, HubConfig::default());
        let mut f = frame(&[5], 100);
        match hub.frame_arrival(t(1000), 0, &mut f, d(8000)) {
            HubDecision::Forward { out_port, first_byte_out } => {
                assert_eq!(out_port, 5);
                assert_eq!(first_byte_out, t(1700)); // 700 ns setup
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(hub.stats().forwarded, 1);
        // route byte was consumed
        assert_eq!(f.next_hop().unwrap(), None);
    }

    #[test]
    fn output_contention_serializes() {
        let mut hub = Hub::new(0, HubConfig::default());
        let mut f1 = frame(&[3], 100);
        let mut f2 = frame(&[3], 100);
        let ser = d(10_000);
        let HubDecision::Forward { first_byte_out: out1, .. } =
            hub.frame_arrival(t(0), 0, &mut f1, ser)
        else {
            panic!()
        };
        // second frame from a different input, same output port, while busy
        let HubDecision::Forward { first_byte_out: out2, .. } =
            hub.frame_arrival(t(100), 1, &mut f2, ser)
        else {
            panic!()
        };
        assert_eq!(out1, t(700));
        // must wait for f1's tail (700 + 10_000)
        assert_eq!(out2, t(10_700));
    }

    #[test]
    fn distinct_outputs_do_not_contend() {
        let mut hub = Hub::new(0, HubConfig::default());
        let mut f1 = frame(&[3], 100);
        let mut f2 = frame(&[4], 100);
        let ser = d(10_000);
        let HubDecision::Forward { first_byte_out: o1, .. } =
            hub.frame_arrival(t(0), 0, &mut f1, ser)
        else {
            panic!()
        };
        let HubDecision::Forward { first_byte_out: o2, .. } =
            hub.frame_arrival(t(0), 1, &mut f2, ser)
        else {
            panic!()
        };
        assert_eq!(o1, t(700));
        assert_eq!(o2, t(700));
    }

    #[test]
    fn multi_hop_consumes_one_byte_per_hub() {
        let mut hub_a = Hub::new(0, HubConfig::default());
        let mut hub_b = Hub::new(1, HubConfig::default());
        let mut f = frame(&[7, 2], 64);
        let HubDecision::Forward { out_port, .. } = hub_a.frame_arrival(t(0), 0, &mut f, d(1000))
        else {
            panic!()
        };
        assert_eq!(out_port, 7);
        let HubDecision::Forward { out_port, .. } =
            hub_b.frame_arrival(t(2000), 7, &mut f, d(1000))
        else {
            panic!()
        };
        assert_eq!(out_port, 2);
        assert_eq!(f.next_hop().unwrap(), None);
        // CRC survives hop consumption
        f.check_crc().unwrap();
    }

    #[test]
    fn exhausted_route_dropped() {
        let mut hub = Hub::new(0, HubConfig::default());
        let mut f = frame(&[], 10);
        assert_eq!(
            hub.frame_arrival(t(0), 0, &mut f, d(100)),
            HubDecision::Drop(DropReason::BadRoute)
        );
        assert_eq!(hub.stats().dropped_bad_route, 1);
    }

    #[test]
    fn bad_ports_dropped() {
        let mut hub = Hub::new(0, HubConfig::default());
        let mut f = frame(&[16], 10); // port 16 out of range
        assert_eq!(
            hub.frame_arrival(t(0), 0, &mut f, d(100)),
            HubDecision::Drop(DropReason::BadPort)
        );
        let mut f2 = frame(&[1], 10);
        assert_eq!(
            hub.frame_arrival(t(0), 99, &mut f2, d(100)),
            HubDecision::Drop(DropReason::BadPort)
        );
        assert_eq!(hub.stats().dropped_bad_port, 2);
    }

    #[test]
    fn backlog_cap_drops() {
        let config = HubConfig { max_backlog: SimDuration::from_micros(10), ..Default::default() };
        let mut hub = Hub::new(0, config);
        let ser = d(9_000);
        for i in 0..2 {
            let mut f = frame(&[0], 100);
            assert!(matches!(hub.frame_arrival(t(i), 1, &mut f, ser), HubDecision::Forward { .. }));
        }
        // two frames ≈18 us of backlog > 10 us cap
        let mut f = frame(&[0], 100);
        assert_eq!(hub.frame_arrival(t(2), 1, &mut f, ser), HubDecision::Drop(DropReason::Backlog));
        assert_eq!(hub.stats().dropped_backlog, 1);
    }

    #[test]
    fn xoff_holds_instead_of_dropping() {
        let config = HubConfig {
            backpressure: Some(Backpressure { xoff: d(15_000), xon: d(5_000) }),
            ..Default::default()
        };
        let mut hub = Hub::new(0, config);
        let ser = d(9_000);
        for i in 0..2 {
            let mut f = frame(&[0], 100);
            assert!(matches!(hub.frame_arrival(t(i), 1, &mut f, ser), HubDecision::Forward { .. }));
        }
        // backlog ≈ 18 µs > xoff: held, not dropped; the route hop must
        // survive untouched and nothing is counted as received
        let rx_before = hub.stats().rx_frames;
        let mut f = frame(&[0], 100);
        let busy = hub.port_busy_until(0);
        match hub.frame_arrival(t(2), 1, &mut f, ser) {
            HubDecision::Hold { resume_at } => {
                // re-offer when the backlog would have drained to xon
                assert_eq!(resume_at, t(busy.as_nanos() - 5_000));
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(f.next_hop().unwrap(), Some(0), "hold must not consume the hop");
        assert_eq!(hub.stats().rx_frames, rx_before, "hold must not count rx");
        assert_eq!(hub.stats().held_frames, 1);
        assert_eq!(hub.port_stats(0).held_frames, 1);
        assert_eq!(hub.stats().dropped_backlog, 0);
        // once the backlog drains past xon the same frame forwards
        let resume = t(busy.as_nanos() - 5_000);
        assert!(matches!(hub.frame_arrival(resume, 1, &mut f, ser), HubDecision::Forward { .. }));
    }

    #[test]
    fn backpressure_off_is_bit_identical_to_legacy() {
        // same oversubscription as backlog_cap_drops: with no
        // backpressure configured the drop path and counters are
        // untouched by the feature
        let config = HubConfig { max_backlog: SimDuration::from_micros(10), ..Default::default() };
        let mut hub = Hub::new(0, config);
        let ser = d(9_000);
        for i in 0..2 {
            let mut f = frame(&[0], 100);
            assert!(matches!(hub.frame_arrival(t(i), 1, &mut f, ser), HubDecision::Forward { .. }));
        }
        let mut f = frame(&[0], 100);
        assert_eq!(hub.frame_arrival(t(2), 1, &mut f, ser), HubDecision::Drop(DropReason::Backlog));
        assert_eq!(hub.stats().held_frames, 0);
    }

    #[test]
    fn circuit_bypasses_setup_and_route() {
        let mut hub = Hub::new(0, HubConfig::default());
        assert_eq!(hub.execute(HubCommand::OpenCircuit { in_port: 2, out_port: 9 }), HubReply::Ok);
        // route says port 5, but the circuit wins and the route byte is
        // not consumed
        let mut f = frame(&[5], 100);
        match hub.frame_arrival(t(1000), 2, &mut f, d(1000)) {
            HubDecision::Forward { out_port, first_byte_out } => {
                assert_eq!(out_port, 9);
                assert_eq!(first_byte_out, t(1100)); // circuit latency 100 ns
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(f.next_hop().unwrap(), Some(5));
        assert_eq!(hub.stats().forwarded_circuit, 1);

        // packet traffic from another input may not use the reserved output
        let mut f2 = frame(&[9], 100);
        assert_eq!(
            hub.frame_arrival(t(1000), 3, &mut f2, d(1000)),
            HubDecision::Drop(DropReason::Backlog)
        );

        // close and the port is packet-switchable again
        assert_eq!(hub.execute(HubCommand::CloseCircuit { in_port: 2 }), HubReply::Ok);
        let mut f3 = frame(&[9], 100);
        assert!(matches!(
            hub.frame_arrival(t(20_000), 3, &mut f3, d(1000)),
            HubDecision::Forward { .. }
        ));
    }

    #[test]
    fn circuit_conflicts_refused() {
        let mut hub = Hub::new(0, HubConfig::default());
        assert_eq!(hub.execute(HubCommand::OpenCircuit { in_port: 1, out_port: 2 }), HubReply::Ok);
        // same input again
        assert_eq!(
            hub.execute(HubCommand::OpenCircuit { in_port: 1, out_port: 3 }),
            HubReply::Refused
        );
        // same output from another input
        assert_eq!(
            hub.execute(HubCommand::OpenCircuit { in_port: 4, out_port: 2 }),
            HubReply::Refused
        );
        // out-of-range
        assert_eq!(
            hub.execute(HubCommand::OpenCircuit { in_port: 16, out_port: 0 }),
            HubReply::Refused
        );
        // closing a nonexistent circuit
        assert_eq!(hub.execute(HubCommand::CloseCircuit { in_port: 9 }), HubReply::Refused);
        assert_eq!(hub.execute(HubCommand::CloseCircuit { in_port: 16 }), HubReply::Refused);
    }

    #[test]
    fn status_reports_port_busy_times() {
        let mut hub = Hub::new(0, HubConfig::default());
        let mut f = frame(&[4], 100);
        hub.frame_arrival(t(0), 0, &mut f, d(5000));
        match hub.execute(HubCommand::Status) {
            HubReply::Status { busy_until } => {
                assert_eq!(busy_until.len(), PORTS);
                assert_eq!(busy_until[4], t(5700));
                assert_eq!(busy_until[0], SimTime::ZERO);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
