//! Behavioural tests for the TCP implementation: two `TcpStack`s joined
//! by a virtual link with configurable latency, loss, reordering and
//! corruption. This is the crate-level proving ground for §4.2 of the
//! paper before TCP is embedded into the CAB runtime.

use std::net::Ipv4Addr;

use nectar_sim::{Pcg32, SimDuration, SimTime};
use nectar_stack::tcp::{
    AbortReason, SocketId, TcpConfig, TcpEvent, TcpStack, TcpStackEvent, TcpState,
};
use nectar_wire::ipv4::{IpProtocol, Ipv4Header};

const ADDR_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const ADDR_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// A two-node network shuttling TCP segments with impairments.
struct Net {
    a: TcpStack,
    b: TcpStack,
    now: SimTime,
    /// (arrival time, tiebreak, destination, segment bytes)
    inflight: Vec<(SimTime, u64, Ipv4Addr, Vec<u8>)>,
    latency: SimDuration,
    loss: f64,
    reorder: f64,
    corrupt: f64,
    rng: Pcg32,
    seq: u64,
    log_a: Vec<(SocketId, TcpEvent)>,
    log_b: Vec<(SocketId, TcpEvent)>,
    incoming_b: Vec<SocketId>,
}

impl Net {
    fn new(cfg: TcpConfig) -> Net {
        Net {
            a: TcpStack::new(ADDR_A, cfg, 1),
            b: TcpStack::new(ADDR_B, cfg, 2),
            now: SimTime::ZERO,
            inflight: Vec::new(),
            latency: SimDuration::from_micros(50),
            loss: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            rng: Pcg32::seeded(99),
            seq: 0,
            log_a: Vec::new(),
            log_b: Vec::new(),
            incoming_b: Vec::new(),
        }
    }

    fn absorb(&mut self, from_a: bool, evs: Vec<TcpStackEvent>) {
        for ev in evs {
            match ev {
                TcpStackEvent::Transmit { dst, segment } => {
                    if self.rng.chance(self.loss) {
                        continue;
                    }
                    let mut segment = segment;
                    if self.rng.chance(self.corrupt) && !segment.is_empty() {
                        let i = self.rng.range(0, segment.len());
                        segment[i] ^= 0x55;
                    }
                    let mut arrival = self.now + self.latency;
                    if self.rng.chance(self.reorder) {
                        arrival += self.latency * 3;
                    }
                    self.seq += 1;
                    self.inflight.push((arrival, self.seq, dst, segment));
                }
                TcpStackEvent::Incoming { id, .. } => {
                    assert!(!from_a, "only B listens in these tests");
                    self.incoming_b.push(id);
                }
                TcpStackEvent::Socket { id, event } => {
                    if from_a {
                        self.log_a.push((id, event));
                    } else {
                        self.log_b.push((id, event));
                    }
                }
                TcpStackEvent::Dropped => {}
            }
        }
    }

    /// Run the network until quiescent (no packets, no timers) or until
    /// `deadline`.
    fn run(&mut self, deadline: SimDuration) {
        let deadline = SimTime::ZERO + deadline;
        loop {
            let next_pkt = self.inflight.iter().map(|&(t, s, _, _)| (t, s)).min();
            let next_timer =
                [self.a.next_wakeup(), self.b.next_wakeup()].into_iter().flatten().min();
            let next = match (next_pkt, next_timer) {
                (Some((tp, _)), Some(tt)) => tp.min(tt),
                (Some((tp, _)), None) => tp,
                (None, Some(tt)) => tt,
                (None, None) => break,
            };
            if next > deadline {
                break;
            }
            self.now = next.max(self.now);
            // deliver every packet due now (stable order by tiebreak)
            let mut due: Vec<(SimTime, u64, Ipv4Addr, Vec<u8>)> = Vec::new();
            self.inflight.retain_mut(|e| {
                if e.0 <= next {
                    due.push((e.0, e.1, e.2, std::mem::take(&mut e.3)));
                    false
                } else {
                    true
                }
            });
            due.sort_by_key(|&(t, s, _, _)| (t, s));
            for (_, _, dst, segment) in due {
                let (src, to_a) = if dst == ADDR_A { (ADDR_B, true) } else { (ADDR_A, false) };
                let ip = Ipv4Header::new(src, dst, IpProtocol::TCP, segment.len());
                let evs = if to_a {
                    self.a.on_packet(self.now, &ip, &segment)
                } else {
                    self.b.on_packet(self.now, &ip, &segment)
                };
                self.absorb(to_a, evs);
            }
            let evs = self.a.poll(self.now);
            self.absorb(true, evs);
            let evs = self.b.poll(self.now);
            self.absorb(false, evs);
        }
    }

    /// Standard setup: B listens on 80, A connects. Returns (a_id, b_id).
    fn establish(&mut self) -> (SocketId, SocketId) {
        self.b.listen(80);
        let (a_id, evs) = self.a.connect(self.now, (ADDR_B, 80), None);
        self.absorb(true, evs);
        self.run(SimDuration::from_secs(5));
        let b_id = *self.incoming_b.first().expect("B accepted a connection");
        assert!(self.log_a.iter().any(|(id, e)| *id == a_id && *e == TcpEvent::Connected));
        assert!(self.log_b.iter().any(|(id, e)| *id == b_id && *e == TcpEvent::Connected));
        (a_id, b_id)
    }

    fn send_all(&mut self, on_a: bool, id: SocketId, data: &[u8]) {
        // Push data into the socket, draining the receiver as we go so
        // the window keeps opening. Bounded by wall-clock iterations.
        let mut offset = 0;
        let mut spins = 0;
        while offset < data.len() {
            let (n, evs) = if on_a {
                self.a.send(self.now, id, &data[offset..])
            } else {
                self.b.send(self.now, id, &data[offset..])
            };
            self.absorb(on_a, evs);
            offset += n;
            self.run(SimDuration::from_secs(30));
            spins += 1;
            assert!(spins < 10_000, "send_all made no progress");
        }
    }

    fn drain(&mut self, on_a: bool, id: SocketId) -> Vec<u8> {
        let stack = if on_a { &mut self.a } else { &mut self.b };
        stack.recv(id, usize::MAX)
    }
}

/// Receive continuously into `sink` while running the net. Used for
/// transfers larger than the receive buffer.
fn transfer(
    net: &mut Net,
    from_a: bool,
    src_id: SocketId,
    dst_id: SocketId,
    data: &[u8],
) -> Vec<u8> {
    let mut sink = Vec::new();
    let mut offset = 0;
    let mut spins = 0;
    while sink.len() < data.len() {
        if offset < data.len() {
            let (n, evs) = if from_a {
                net.a.send(net.now, src_id, &data[offset..])
            } else {
                net.b.send(net.now, src_id, &data[offset..])
            };
            net.absorb(from_a, evs);
            offset += n;
        }
        net.run(SimDuration::from_secs(120));
        let got =
            if from_a { net.b.recv(dst_id, usize::MAX) } else { net.a.recv(dst_id, usize::MAX) };
        // receiving opens the window; poll to emit the window update
        let evs = if from_a { net.b.poll(net.now) } else { net.a.poll(net.now) };
        net.absorb(!from_a, evs);
        sink.extend(got);
        spins += 1;
        assert!(spins < 50_000, "transfer stalled at {}/{} bytes", sink.len(), data.len());
    }
    sink
}

fn pattern(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 31 + i / 251) as u8).collect()
}

#[test]
fn three_way_handshake() {
    let mut net = Net::new(TcpConfig::default());
    let (a_id, b_id) = net.establish();
    assert_eq!(net.a.socket(a_id).unwrap().state(), TcpState::Established);
    assert_eq!(net.b.socket(b_id).unwrap().state(), TcpState::Established);
    // exactly 3 segments: SYN, SYN-ACK, ACK
    assert_eq!(net.a.socket(a_id).unwrap().stats().segs_out, 2);
    assert_eq!(net.b.socket(b_id).unwrap().stats().segs_out, 1);
}

#[test]
fn small_data_both_directions() {
    let mut net = Net::new(TcpConfig::default());
    let (a_id, b_id) = net.establish();
    net.send_all(true, a_id, b"hello from A");
    assert_eq!(net.drain(false, b_id), b"hello from A");
    net.send_all(false, b_id, b"hello from B");
    assert_eq!(net.drain(true, a_id), b"hello from B");
}

#[test]
fn bulk_transfer_integrity() {
    let mut net = Net::new(TcpConfig::default());
    let (a_id, b_id) = net.establish();
    let data = pattern(200_000);
    let got = transfer(&mut net, true, a_id, b_id, &data);
    assert_eq!(got, data);
}

#[test]
fn bulk_transfer_with_loss() {
    let mut net = Net::new(TcpConfig::default());
    let (a_id, b_id) = net.establish();
    net.loss = 0.02;
    let data = pattern(100_000);
    let got = transfer(&mut net, true, a_id, b_id, &data);
    assert_eq!(got, data);
    let st = net.a.socket(a_id).unwrap().stats();
    assert!(st.retransmits > 0, "loss must have caused retransmissions");
}

#[test]
fn bulk_transfer_with_reordering() {
    let mut net = Net::new(TcpConfig::default());
    let (a_id, b_id) = net.establish();
    net.reorder = 0.1;
    let data = pattern(100_000);
    let got = transfer(&mut net, true, a_id, b_id, &data);
    assert_eq!(got, data);
}

#[test]
fn corruption_is_caught_by_checksum_and_recovered() {
    let mut net = Net::new(TcpConfig::default());
    let (a_id, b_id) = net.establish();
    net.corrupt = 0.02;
    let data = pattern(50_000);
    let got = transfer(&mut net, true, a_id, b_id, &data);
    assert_eq!(got, data);
}

#[test]
fn checksum_off_mode_interoperates() {
    let cfg = TcpConfig { compute_checksum: false, ..Default::default() };
    let mut net = Net::new(cfg);
    let (a_id, b_id) = net.establish();
    let data = pattern(50_000);
    let got = transfer(&mut net, true, a_id, b_id, &data);
    assert_eq!(got, data);
}

#[test]
fn fast_retransmit_fires_on_isolated_loss() {
    let mut net = Net::new(TcpConfig { nagle: false, ..Default::default() });
    let (a_id, b_id) = net.establish();
    // Lose exactly one data segment by hand: send enough data that the
    // window keeps several segments in flight, dropping via high loss
    // for a brief window.
    net.loss = 0.15;
    let data = pattern(150_000);
    let got = transfer(&mut net, true, a_id, b_id, &data);
    assert_eq!(got, data);
    let st = net.a.socket(a_id).unwrap().stats();
    assert!(
        st.fast_retransmits > 0 || st.timeouts > 0,
        "recovery must have used fast retransmit or RTO"
    );
}

#[test]
fn active_close_full_sequence() {
    let mut net = Net::new(TcpConfig::default());
    let (a_id, b_id) = net.establish();
    net.send_all(true, a_id, b"last words");
    let evs = net.a.close(net.now, a_id);
    net.absorb(true, evs);
    net.run(SimDuration::from_secs(1));
    // B saw FIN
    assert!(net.log_b.iter().any(|(id, e)| *id == b_id && *e == TcpEvent::PeerClosed));
    assert_eq!(net.b.socket(b_id).unwrap().state(), TcpState::CloseWait);
    assert_eq!(net.a.socket(a_id).unwrap().state(), TcpState::FinWait2);
    // B finishes
    let evs = net.b.close(net.now, b_id);
    net.absorb(false, evs);
    net.run(SimDuration::from_secs(1));
    // A should be in TIME-WAIT, B closed
    assert_eq!(net.b.socket(b_id).unwrap().state(), TcpState::Closed);
    assert_eq!(net.a.socket(a_id).unwrap().state(), TcpState::TimeWait);
    // data survived the close
    assert_eq!(net.drain(false, b_id), b"last words");
    // 2MSL later A is closed too
    net.run(SimDuration::from_secs(10));
    assert_eq!(net.a.socket(a_id).unwrap().state(), TcpState::Closed);
    assert!(net.log_a.iter().any(|(id, e)| *id == a_id && *e == TcpEvent::Closed));
}

#[test]
fn simultaneous_close_reaches_closed() {
    let mut net = Net::new(TcpConfig::default());
    let (a_id, b_id) = net.establish();
    let evs = net.a.close(net.now, a_id);
    net.absorb(true, evs);
    let evs = net.b.close(net.now, b_id);
    net.absorb(false, evs);
    net.run(SimDuration::from_secs(10));
    assert_eq!(net.a.socket(a_id).unwrap().state(), TcpState::Closed);
    assert_eq!(net.b.socket(b_id).unwrap().state(), TcpState::Closed);
}

#[test]
fn close_with_pending_data_flushes_first() {
    let mut net = Net::new(TcpConfig::default());
    let (a_id, b_id) = net.establish();
    let data = pattern(5000);
    let (n, evs) = net.a.send(net.now, a_id, &data);
    assert_eq!(n, 5000);
    net.absorb(true, evs);
    // close immediately: FIN must come after all the data
    let evs = net.a.close(net.now, a_id);
    net.absorb(true, evs);
    net.run(SimDuration::from_secs(5));
    assert_eq!(net.drain(false, b_id), data);
    assert!(net.log_b.iter().any(|(id, e)| *id == b_id && *e == TcpEvent::PeerClosed));
}

#[test]
fn connect_to_closed_port_is_refused() {
    let mut net = Net::new(TcpConfig::default());
    // nobody listens on 81
    let (a_id, evs) = net.a.connect(net.now, (ADDR_B, 81), None);
    net.absorb(true, evs);
    net.run(SimDuration::from_secs(2));
    assert!(net
        .log_a
        .iter()
        .any(|(id, e)| *id == a_id && *e == TcpEvent::Aborted(AbortReason::Refused)));
    assert_eq!(net.a.socket(a_id).unwrap().state(), TcpState::Closed);
}

#[test]
fn syn_retransmits_through_loss() {
    let mut net = Net::new(TcpConfig::default());
    net.b.listen(80);
    net.loss = 0.7; // brutal, but retries should eventually get through
    let (a_id, evs) = net.a.connect(net.now, (ADDR_B, 80), None);
    net.absorb(true, evs);
    net.run(SimDuration::from_secs(300));
    net.loss = 0.0;
    net.run(SimDuration::from_secs(300));
    let st = net.a.socket(a_id).unwrap();
    assert!(
        st.state() == TcpState::Established
            || net.log_a.iter().any(|(id, e)| *id == a_id && matches!(e, TcpEvent::Aborted(_))),
        "socket must either connect or give up, state={:?}",
        st.state()
    );
}

#[test]
fn abort_sends_rst_and_peer_aborts() {
    let mut net = Net::new(TcpConfig::default());
    let (a_id, b_id) = net.establish();
    let evs = net.a.abort(net.now, a_id);
    net.absorb(true, evs);
    net.run(SimDuration::from_secs(1));
    assert!(net
        .log_a
        .iter()
        .any(|(id, e)| *id == a_id && *e == TcpEvent::Aborted(AbortReason::LocalAbort)));
    assert!(net
        .log_b
        .iter()
        .any(|(id, e)| *id == b_id && *e == TcpEvent::Aborted(AbortReason::Reset)));
}

#[test]
fn zero_window_then_probe_reopens() {
    // Tiny receive buffer on B; A fills it; B's application reads late.
    let cfg = TcpConfig { recv_buf: 2048, nagle: false, ..Default::default() };
    let mut net = Net::new(cfg);
    let (a_id, b_id) = net.establish();
    let data = pattern(6000);
    let (_, evs) = net.a.send(net.now, a_id, &data[..4096]);
    net.absorb(true, evs);
    net.run(SimDuration::from_secs(2));
    // B's buffer (2048) is full; A must have stalled with zero window
    let readable = net.b.socket(b_id).unwrap().readable();
    assert_eq!(readable, 2048, "receiver buffer should be full");
    // application finally reads; window update lets the rest flow
    let got1 = net.b.recv(b_id, usize::MAX);
    let evs = net.b.poll(net.now);
    net.absorb(false, evs);
    net.run(SimDuration::from_secs(5));
    let got2 = net.b.recv(b_id, usize::MAX);
    let evs = net.b.poll(net.now);
    net.absorb(false, evs);
    net.run(SimDuration::from_secs(5));
    let got3 = net.b.recv(b_id, usize::MAX);
    let mut all = got1;
    all.extend(got2);
    all.extend(got3);
    assert_eq!(all, data[..4096].to_vec());
}

#[test]
fn persist_timer_arms_when_window_closes_mid_burst() {
    // The window slams shut in the middle of a burst (2048 of 6000
    // bytes accepted). The persist timer must arm and actually probe —
    // without it the connection deadlocks if the reopening window
    // update is lost.
    let cfg = TcpConfig { recv_buf: 2048, delayed_ack: false, ..Default::default() };
    let mut net = Net::new(cfg);
    let (a_id, b_id) = net.establish();
    let data = pattern(6000);
    let (n, evs) = net.a.send(net.now, a_id, &data);
    net.absorb(true, evs);
    assert_eq!(n, 6000, "send buffer should accept the whole burst");
    net.run(SimDuration::from_secs(2));
    let st = net.a.socket(a_id).unwrap().stats();
    assert!(st.zero_window_probes >= 1, "persist timer never fired: {st:?}");
    assert!(
        net.a.next_wakeup().is_some(),
        "persist timer must stay armed while the window is closed"
    );
    // probes must not have pushed data past the closed window
    assert_eq!(net.b.socket(b_id).unwrap().readable(), 2048);
    // the application finally drains; the transfer must still complete
    let mut got = net.b.recv(b_id, usize::MAX);
    let evs = net.b.poll(net.now);
    net.absorb(false, evs);
    // Net::run deadlines are absolute, and the window re-closes after
    // every drained burst, so widen the horizon each spin.
    let mut spins = 0u64;
    while got.len() < data.len() {
        net.run(SimDuration::from_secs(30 * (spins + 1)));
        got.extend(net.b.recv(b_id, usize::MAX));
        let evs = net.b.poll(net.now);
        net.absorb(false, evs);
        spins += 1;
        assert!(spins < 1000, "stalled at {}/{} bytes", got.len(), data.len());
    }
    assert_eq!(got, data);
}

#[test]
fn persist_timer_clears_when_window_reopens_before_probing() {
    // Same mid-burst closure, but the reader drains before the first
    // probe deadline (earliest possible: rto_min = 10 ms). The armed
    // persist timer must be cancelled by the window update — the
    // transfer finishes without a single probe, and the connection
    // goes fully quiescent (no timer left ticking).
    let cfg = TcpConfig { recv_buf: 2048, delayed_ack: false, ..Default::default() };
    let mut net = Net::new(cfg);
    let (a_id, b_id) = net.establish();
    let data = pattern(4096);
    let (n, evs) = net.a.send(net.now, a_id, &data);
    net.absorb(true, evs);
    assert_eq!(n, 4096);
    net.run(SimDuration::from_millis(2));
    assert!(net.a.next_wakeup().is_some(), "persist timer should be armed");
    assert_eq!(net.a.socket(a_id).unwrap().stats().zero_window_probes, 0);
    let mut got = net.b.recv(b_id, usize::MAX);
    let evs = net.b.poll(net.now);
    net.absorb(false, evs);
    let mut spins = 0u64;
    while got.len() < data.len() {
        net.run(SimDuration::from_secs(30 * (spins + 1)));
        got.extend(net.b.recv(b_id, usize::MAX));
        let evs = net.b.poll(net.now);
        net.absorb(false, evs);
        spins += 1;
        assert!(spins < 1000, "stalled at {}/{} bytes", got.len(), data.len());
    }
    assert_eq!(got, data);
    net.run(SimDuration::from_secs(30 * spins + 60));
    let st = net.a.socket(a_id).unwrap().stats();
    assert_eq!(st.zero_window_probes, 0, "window reopened before any probe was due: {st:?}");
    assert!(net.a.next_wakeup().is_none(), "all timers must be disarmed once the burst is acked");
}

#[test]
fn mss_negotiation_limits_segments() {
    let cfg_a = TcpConfig { mss: 4016, ..Default::default() };
    let mut net = Net::new(cfg_a);
    // B advertises a smaller MSS
    net.b = TcpStack::new(ADDR_B, TcpConfig { mss: 512, ..Default::default() }, 2);
    let (a_id, b_id) = net.establish();
    assert_eq!(net.a.socket(a_id).unwrap().effective_mss(), 512);
    assert_eq!(net.b.socket(b_id).unwrap().effective_mss(), 512);
    let data = pattern(10_000);
    let got = transfer(&mut net, true, a_id, b_id, &data);
    assert_eq!(got, data);
    // 10 000 bytes at 512-byte segments needs at least 20 data segments
    assert!(net.a.socket(a_id).unwrap().stats().segs_out >= 20);
}

#[test]
fn nagle_coalesces_small_writes() {
    let mut on = Net::new(TcpConfig { nagle: true, delayed_ack: false, ..Default::default() });
    let (a_on, b_on) = on.establish();
    for _ in 0..50 {
        let (_, evs) = on.a.send(on.now, a_on, b"x");
        on.absorb(true, evs);
    }
    on.run(SimDuration::from_secs(5));
    let nagle_segs = on.a.socket(a_on).unwrap().stats().segs_out;
    assert_eq!(on.drain(false, b_on), vec![b'x'; 50]);

    let mut off = Net::new(TcpConfig { nagle: false, delayed_ack: false, ..Default::default() });
    let (a_off, b_off) = off.establish();
    for _ in 0..50 {
        let (_, evs) = off.a.send(off.now, a_off, b"x");
        off.absorb(true, evs);
    }
    off.run(SimDuration::from_secs(5));
    let no_nagle_segs = off.a.socket(a_off).unwrap().stats().segs_out;
    assert_eq!(off.drain(false, b_off), vec![b'x'; 50]);
    assert!(nagle_segs < no_nagle_segs, "nagle={nagle_segs} vs no-nagle={no_nagle_segs}");
}

#[test]
fn delayed_ack_reduces_pure_acks() {
    let run = |delayed: bool| {
        let mut net = Net::new(TcpConfig { delayed_ack: delayed, ..Default::default() });
        let (a_id, b_id) = net.establish();
        let data = pattern(60_000);
        let got = transfer(&mut net, true, a_id, b_id, &data);
        assert_eq!(got, data);
        net.b.socket(b_id).unwrap().stats().segs_out
    };
    let with = run(true);
    let without = run(false);
    assert!(with <= without, "delayed-ack acks={with} vs immediate={without}");
}

#[test]
fn listener_ignores_stray_non_syn() {
    let mut net = Net::new(TcpConfig::default());
    net.b.listen(80);
    // a stray ACK to the listening port elicits RST, not a socket
    let mut hdr = nectar_wire::tcp::TcpHeader::new(5555, 80);
    hdr.flags = nectar_wire::tcp::TcpFlags::ACK;
    hdr.seq = nectar_wire::tcp::SeqNum(100);
    hdr.ack = nectar_wire::tcp::SeqNum(200);
    let seg = hdr.build(ADDR_A, ADDR_B, &[], true);
    let ip = Ipv4Header::new(ADDR_A, ADDR_B, IpProtocol::TCP, seg.len());
    let evs = net.b.on_packet(net.now, &ip, &seg);
    assert!(matches!(evs[0], TcpStackEvent::Transmit { .. }));
    assert_eq!(net.b.socket_count(), 0);
}

#[test]
fn concurrent_connections_are_isolated() {
    let mut net = Net::new(TcpConfig::default());
    net.b.listen(80);
    net.b.listen(81);
    let (a1, evs) = net.a.connect(net.now, (ADDR_B, 80), None);
    net.absorb(true, evs);
    let (a2, evs) = net.a.connect(net.now, (ADDR_B, 81), None);
    net.absorb(true, evs);
    net.run(SimDuration::from_secs(2));
    assert_eq!(net.incoming_b.len(), 2);
    let b1 = net.incoming_b[0];
    let b2 = net.incoming_b[1];
    net.send_all(true, a1, b"to port 80");
    net.send_all(true, a2, b"to port 81");
    let d1 = net.drain(false, b1);
    let d2 = net.drain(false, b2);
    assert!(
        (d1 == b"to port 80" && d2 == b"to port 81")
            || (d1 == b"to port 81" && d2 == b"to port 80")
    );
}

#[test]
fn recv_finished_signals_eof() {
    let mut net = Net::new(TcpConfig::default());
    let (a_id, b_id) = net.establish();
    net.send_all(true, a_id, b"bye");
    let evs = net.a.close(net.now, a_id);
    net.absorb(true, evs);
    net.run(SimDuration::from_secs(1));
    assert!(!net.b.socket(b_id).unwrap().recv_finished());
    assert_eq!(net.drain(false, b_id), b"bye");
    assert!(net.b.socket(b_id).unwrap().recv_finished());
}

#[test]
fn simultaneous_open_both_sides_establish() {
    // Both ends send SYNs to each other's fixed ports at once; both
    // must pass through SYN-RECEIVED and establish (RFC 793 fig. 8).
    let mut net = Net::new(TcpConfig::default());
    // allow A to accept B's SYN too
    net.a.listen(90);
    net.b.listen(91);
    let (a_id, evs) = net.a.connect(net.now, (ADDR_B, 91), Some(90));
    net.absorb(true, evs);
    let (b_id, evs) = net.b.connect(net.now, (ADDR_A, 90), Some(91));
    // B's socket occupies the (91, A, 90) tuple, so A's SYN routes to
    // it rather than the listener — true simultaneous open.
    net.absorb(false, evs);
    net.run(SimDuration::from_secs(5));
    assert_eq!(net.a.socket(a_id).unwrap().state(), TcpState::Established);
    assert_eq!(net.b.socket(b_id).unwrap().state(), TcpState::Established);
    // data flows
    net.send_all(true, a_id, b"simultaneous");
    assert_eq!(net.drain(false, b_id), b"simultaneous");
}

#[test]
fn stray_rst_outside_window_is_ignored() {
    let mut net = Net::new(TcpConfig::default());
    let (a_id, _b_id) = net.establish();
    // forge a RST far outside A's receive window
    let mut hdr = nectar_wire::tcp::TcpHeader::new(80, net.a.socket(a_id).unwrap().local().1);
    hdr.flags = nectar_wire::tcp::TcpFlags::RST;
    hdr.seq = nectar_wire::tcp::SeqNum(0xdead_0000); // almost surely out of window
    let seg = hdr.build(ADDR_B, ADDR_A, &[], true);
    let ip = Ipv4Header::new(ADDR_B, ADDR_A, IpProtocol::TCP, seg.len());
    let evs = net.a.on_packet(net.now, &ip, &seg);
    net.absorb(true, evs);
    net.run(SimDuration::from_secs(1));
    // blind reset must not kill the connection
    assert_eq!(net.a.socket(a_id).unwrap().state(), TcpState::Established);
}

#[test]
fn time_wait_reacks_retransmitted_fin() {
    let mut net = Net::new(TcpConfig::default());
    let (a_id, b_id) = net.establish();
    let evs = net.a.close(net.now, a_id);
    net.absorb(true, evs);
    net.run(SimDuration::from_secs(1));
    let evs = net.b.close(net.now, b_id);
    net.absorb(false, evs);
    net.run(SimDuration::from_secs(1));
    assert_eq!(net.a.socket(a_id).unwrap().state(), TcpState::TimeWait);
    // after 2MSL with no further traffic, A closes cleanly (the
    // duplicate-FIN re-ACK path is covered by the socket unit tests;
    // here we pin the TIME-WAIT expiry end state)
    net.run(SimDuration::from_secs(10));
    assert_eq!(net.a.socket(a_id).unwrap().state(), TcpState::Closed);
}

#[test]
fn send_after_close_is_rejected() {
    let mut net = Net::new(TcpConfig::default());
    let (a_id, _b_id) = net.establish();
    let evs = net.a.close(net.now, a_id);
    net.absorb(true, evs);
    let (n, evs) = net.a.send(net.now, a_id, b"too late");
    net.absorb(true, evs);
    assert_eq!(n, 0, "writes after close must be refused");
    net.run(SimDuration::from_secs(1));
}

#[test]
fn half_close_allows_reverse_data() {
    // A closes its send side; B can still send data to A.
    let mut net = Net::new(TcpConfig::default());
    let (a_id, b_id) = net.establish();
    let evs = net.a.close(net.now, a_id);
    net.absorb(true, evs);
    net.run(SimDuration::from_secs(1));
    assert_eq!(net.b.socket(b_id).unwrap().state(), TcpState::CloseWait);
    net.send_all(false, b_id, b"reverse stream still works");
    assert_eq!(net.drain(true, a_id), b"reverse stream still works");
    // then B finishes and everything closes
    let evs = net.b.close(net.now, b_id);
    net.absorb(false, evs);
    net.run(SimDuration::from_secs(10));
    assert_eq!(net.a.socket(a_id).unwrap().state(), TcpState::Closed);
    assert_eq!(net.b.socket(b_id).unwrap().state(), TcpState::Closed);
}

#[test]
fn listener_can_unlisten() {
    let mut net = Net::new(TcpConfig::default());
    net.b.listen(80);
    assert!(net.b.unlisten(80));
    let (a_id, evs) = net.a.connect(net.now, (ADDR_B, 80), None);
    net.absorb(true, evs);
    net.run(SimDuration::from_secs(2));
    assert!(net
        .log_a
        .iter()
        .any(|(id, e)| *id == a_id && *e == TcpEvent::Aborted(AbortReason::Refused)));
}
