//! The `.pkt` conformance suite: every script in `tests/scripts/` runs
//! through the interpreter in `nectar_stack::conform::pkt` with the
//! invariant oracle enabled, so a scripted exchange that drives the
//! stack into an illegal state fails twice over — once on the script's
//! own expectations and once on the oracle's.
//!
//! To add a case, drop a `NAME.pkt` file in `tests/scripts/` and add
//! `pkt_case!(NAME);` below; `all_scripts_are_covered` fails if the
//! two ever drift apart. DESIGN.md §11 documents the script format.

use nectar_stack::conform;

macro_rules! pkt_case {
    ($($name:ident),* $(,)?) => {
        $(
            #[test]
            fn $name() {
                conform::set_enabled(true);
                conform::pkt::run(include_str!(concat!(
                    "scripts/",
                    stringify!($name),
                    ".pkt"
                )));
            }
        )*

        /// Every `.pkt` file in the scripts directory has a matching
        /// test, and the suite is at least as large as the floor the
        /// roadmap promises.
        #[test]
        fn all_scripts_are_covered() {
            let covered = [$(concat!(stringify!($name), ".pkt")),*];
            let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/scripts");
            let mut on_disk: Vec<String> = std::fs::read_dir(dir)
                .expect("tests/scripts directory exists")
                .map(|e| e.expect("readable dir entry").file_name().into_string().unwrap())
                .filter(|n| n.ends_with(".pkt"))
                .collect();
            on_disk.sort();
            let mut listed: Vec<String> = covered.iter().map(|s| s.to_string()).collect();
            listed.sort();
            assert_eq!(on_disk, listed, "scripts on disk and pkt_case! list drifted apart");
            assert!(covered.len() >= 10, "conformance suite shrank below 10 scripts");
        }
    };
}

pkt_case!(
    accept_basic,
    connect_basic,
    cubic_slow_start,
    fast_retransmit,
    fin_in_flight,
    ip_frag_caps,
    ip_frag_overlap,
    ip_frag_resplit,
    nagle_trailing,
    ooo_data,
    peer_close,
    retrans_timeout,
    rst_refused,
    sack_basic,
    sack_reneg_ignored,
    simultaneous_close,
    simultaneous_open,
    window_update,
    wscale_asymmetric,
    wscale_negotiate,
    zero_window_probe,
);
