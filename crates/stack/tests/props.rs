//! Property-based tests on the protocol engines: the invariants that
//! must hold for *any* payload, any MTU, and any pattern of loss,
//! reordering and duplication the network can throw at them.

use std::net::Ipv4Addr;

use nectar_sim::check;
use nectar_sim::{Pcg32, SimDuration, SimTime};
use nectar_stack::ip::{IpEndpoint, IpInput};
use nectar_stack::rmp::{RmpConfig, RmpReceiver, RmpRecvAction, RmpSendAction, RmpSender};
use nectar_wire::ipv4::IpProtocol;
use nectar_wire::nectar::RmpHeader;

fn a(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

/// IP fragmentation followed by reassembly is the identity, for any
/// payload and any legal MTU, in any arrival order.
#[test]
fn ip_fragment_reassemble_identity() {
    check::cases(64, |g| {
        let payload = g.bytes(0, 6000);
        let mtu = g.usize_in(64, 2000);
        let shuffle_seed = g.u64();
        let mut tx = IpEndpoint::new(a(1));
        let mut rx = IpEndpoint::new(a(2));
        let mut pkts = tx.output(a(2), IpProtocol::UDP, &payload, mtu);
        let mut rng = Pcg32::seeded(shuffle_seed);
        rng.shuffle(&mut pkts);
        let mut delivered = None;
        for p in &pkts {
            match rx.input(SimTime::ZERO, p) {
                IpInput::Delivered { payload, .. } => delivered = Some(payload),
                IpInput::FragmentHeld => {}
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert_eq!(delivered.expect("datagram must complete"), payload);
    });
}

/// Reassembly of arbitrary overlapping, duplicated, out-of-order
/// fragments matches a byte-level first-arrival-wins reference model
/// (BSD semantics): each position of the datagram holds the byte from
/// the first fragment to arrive that covered it.
#[test]
fn ip_reassembly_matches_first_arrival_model() {
    use nectar_wire::ipv4::Ipv4Header;
    check::cases(96, |g| {
        // sizes in 8-byte fragment units, as the wire format requires;
        // at least one interior cut so the datagram is genuinely
        // fragmented (offset 0 + no more-frags flag would be a whole
        // datagram and bypass reassembly entirely)
        let units = g.usize_in(2, 49);
        let total = units * 8;
        // a base partition of [0, units) guarantees eventual coverage
        let mut cuts = vec![0, g.usize_in(1, units), units];
        for _ in 0..g.usize_in(0, 7) {
            cuts.push(g.usize_in(0, units + 1));
        }
        cuts.sort_unstable();
        cuts.dedup();
        // (start, end, more_frags)
        let mut frags: Vec<(usize, usize, bool)> =
            cuts.windows(2).map(|w| (w[0], w[1], w[1] != units)).collect();
        // plus random extra fragments that overlap and duplicate; they
        // pose as middle fragments so only the base tail carries the
        // authoritative last-fragment flag
        for _ in 0..g.usize_in(0, 7) {
            let s = g.usize_in(0, units);
            let e = g.usize_in(s + 1, units + 1);
            frags.push((s, e, true));
        }
        let mut rng = Pcg32::seeded(g.u64());
        rng.shuffle(&mut frags);
        let mut rx = IpEndpoint::new(a(2));
        let mut model: Vec<Option<u8>> = vec![None; total];
        let mut delivered = None;
        for (j, &(s8, e8, more)) in frags.iter().enumerate() {
            let (off, len) = (s8 * 8, (e8 - s8) * 8);
            let fill = (j as u8).wrapping_mul(29).wrapping_add(3);
            let mut h = Ipv4Header::new(a(1), a(2), IpProtocol::UDP, len);
            h.ident = 42;
            h.frag_offset = off as u16;
            h.more_frags = more;
            let pkt = h.build_packet(&vec![fill; len]);
            let outcome = rx.input(SimTime::ZERO, &pkt);
            for slot in model[off..off + len].iter_mut() {
                slot.get_or_insert(fill);
            }
            match outcome {
                IpInput::Delivered { payload, .. } => {
                    delivered = Some(payload);
                    break; // context is gone; later fragments start anew
                }
                IpInput::FragmentHeld => {}
                other => panic!("unexpected: {other:?}"),
            }
        }
        let got = delivered.expect("the base partition completes the datagram");
        let want: Vec<u8> = model.into_iter().map(|b| b.expect("covered")).collect();
        assert_eq!(got, want, "reassembly diverged from the first-arrival-wins model: {frags:?}");
    });
}

/// RMP delivers every message exactly once, in order, under random
/// loss of both data and ack packets.
#[test]
fn rmp_reliable_exactly_once_under_loss() {
    check::cases(64, |g| {
        let messages: Vec<Vec<u8>> = (0..g.usize_in(1, 6)).map(|_| g.bytes(0, 700)).collect();
        let loss_seed = g.u64();
        let loss = g.f64_in(0.0, 0.4);
        let cfg = RmpConfig {
            max_fragment: 256,
            rto: SimDuration::from_micros(100),
            rto_max: SimDuration::from_micros(100),
            max_retries: 200,
            window: 1,
        };
        let mut tx = RmpSender::new(2, 7, 3, cfg);
        let mut rx = RmpReceiver::new();
        let mut rng = Pcg32::seeded(loss_seed);
        for m in &messages {
            tx.send(m.clone());
        }
        let mut now = SimTime::ZERO;
        let mut delivered: Vec<Vec<u8>> = Vec::new();
        let mut guard = 0;
        while delivered.len() < messages.len() {
            guard += 1;
            assert!(guard < 100_000, "livelock");
            let mut acts = Vec::new();
            tx.poll(now, &mut acts);
            let mut acks: Vec<Vec<u8>> = Vec::new();
            for act in acts {
                if let RmpSendAction::Transmit { packet, .. } = act {
                    if rng.chance(loss) {
                        continue;
                    }
                    let (hdr, payload) = RmpHeader::parse(&packet).unwrap();
                    let mut racts = Vec::new();
                    rx.on_data(1, &hdr, payload, &mut racts);
                    for ract in racts {
                        match ract {
                            RmpRecvAction::Ack { packet, .. } => acks.push(packet),
                            RmpRecvAction::Deliver { message, .. } => delivered.push(message),
                        }
                    }
                }
            }
            for ackp in acks {
                if rng.chance(loss) {
                    continue;
                }
                let (hdr, _) = RmpHeader::parse(&ackp).unwrap();
                let mut sacts = Vec::new();
                tx.on_ack(now, &hdr, &mut sacts);
                // follow-up transmissions: loop around
                for act in sacts {
                    if let RmpSendAction::Transmit { packet, .. } = act {
                        if rng.chance(loss) {
                            continue;
                        }
                        let (hdr, payload) = RmpHeader::parse(&packet).unwrap();
                        let mut racts = Vec::new();
                        rx.on_data(1, &hdr, payload, &mut racts);
                        for ract in racts {
                            match ract {
                                RmpRecvAction::Ack { .. } => { /* next round */ }
                                RmpRecvAction::Deliver { message, .. } => delivered.push(message),
                            }
                        }
                    }
                }
            }
            now += SimDuration::from_micros(150);
        }
        assert_eq!(delivered, messages);
    });
}

/// Drive an RMP sender/receiver pair over an impaired wire (loss and
/// reordering in both directions), returning the delivered messages.
fn rmp_impairment_run(
    messages: &[Vec<u8>],
    window: usize,
    net_seed: u64,
    loss: f64,
    reorder: f64,
) -> Vec<Vec<u8>> {
    let cfg = RmpConfig {
        max_fragment: 256,
        rto: SimDuration::from_micros(100),
        rto_max: SimDuration::from_micros(800),
        max_retries: 1000,
        window,
    };
    let mut tx = RmpSender::new(2, 7, 3, cfg);
    let mut rx = RmpReceiver::new();
    let mut rng = Pcg32::seeded(net_seed);
    for m in messages {
        tx.send(m.clone());
    }
    let latency = SimDuration::from_micros(10);
    let mut now = SimTime::ZERO;
    // (arrival, tiebreak, is_data, packet)
    let mut wire: Vec<(SimTime, u64, bool, Vec<u8>)> = Vec::new();
    let mut seqno = 0u64;
    let mut delivered: Vec<Vec<u8>> = Vec::new();
    let mut guard = 0;
    // impair-and-enqueue one packet
    let push = |wire: &mut Vec<(SimTime, u64, bool, Vec<u8>)>,
                rng: &mut Pcg32,
                seqno: &mut u64,
                now: SimTime,
                is_data: bool,
                packet: Vec<u8>| {
        if rng.chance(loss) {
            return;
        }
        let mut arrive = now + latency;
        if rng.chance(reorder) {
            arrive += latency * 4;
        }
        *seqno += 1;
        wire.push((arrive, *seqno, is_data, packet));
    };
    while delivered.len() < messages.len() {
        guard += 1;
        assert!(guard < 200_000, "livelock at {}/{}", delivered.len(), messages.len());
        let mut acts = Vec::new();
        tx.poll(now, &mut acts);
        for act in acts {
            match act {
                RmpSendAction::Transmit { packet, .. } => {
                    push(&mut wire, &mut rng, &mut seqno, now, true, packet)
                }
                RmpSendAction::Failed { .. } => panic!("channel failed under impairment"),
                RmpSendAction::Delivered { .. } => {}
            }
        }
        let next_pkt = wire.iter().map(|&(t, s, _, _)| (t, s)).min();
        now = match (next_pkt, tx.next_wakeup()) {
            (Some((tp, _)), Some(tt)) => tp.min(tt).max(now),
            (Some((tp, _)), None) => tp.max(now),
            (None, Some(tt)) => tt.max(now),
            (None, None) => panic!("stalled at {}/{}", delivered.len(), messages.len()),
        };
        let mut due: Vec<(SimTime, u64, bool, Vec<u8>)> = Vec::new();
        wire.retain_mut(|e| {
            if e.0 <= now {
                due.push((e.0, e.1, e.2, std::mem::take(&mut e.3)));
                false
            } else {
                true
            }
        });
        due.sort_by_key(|&(t, s, _, _)| (t, s));
        for (_, _, is_data, pkt) in due {
            let (hdr, payload) = RmpHeader::parse(&pkt).unwrap();
            if is_data {
                let mut racts = Vec::new();
                rx.on_data(1, &hdr, payload, &mut racts);
                for ract in racts {
                    match ract {
                        RmpRecvAction::Ack { packet, .. } => {
                            push(&mut wire, &mut rng, &mut seqno, now, false, packet)
                        }
                        RmpRecvAction::Deliver { message, .. } => delivered.push(message),
                    }
                }
            } else {
                let mut sacts = Vec::new();
                tx.on_ack(now, &hdr, &mut sacts);
                for act in sacts {
                    match act {
                        RmpSendAction::Transmit { packet, .. } => {
                            push(&mut wire, &mut rng, &mut seqno, now, true, packet)
                        }
                        RmpSendAction::Failed { .. } => panic!("channel failed under impairment"),
                        RmpSendAction::Delivered { .. } => {}
                    }
                }
            }
        }
    }
    delivered
}

/// Windowed RMP delivers every message exactly once, in order, under
/// combined loss and reordering — and, differentially, produces the
/// same delivered sequence as the legacy stop-and-wait configuration
/// (`window = 1`) for the same workload. The receiver-side conformance
/// oracle (`check_rmp_delivery`) audits every delivery step.
#[test]
fn rmp_windowed_inorder_exactly_once_under_impairment() {
    check::cases(48, |g| {
        let messages: Vec<Vec<u8>> = (0..g.usize_in(2, 10)).map(|_| g.bytes(0, 700)).collect();
        let net_seed = g.u64();
        let loss = g.f64_in(0.0, 0.3);
        let reorder = g.f64_in(0.0, 0.3);
        let wide = rmp_impairment_run(&messages, 8, net_seed, loss, reorder);
        assert_eq!(wide, messages, "windowed RMP corrupted the message sequence");
        let narrow = rmp_impairment_run(&messages, 1, net_seed, loss, reorder);
        assert_eq!(narrow, wide, "window=8 and window=1 delivered different sequences");
    });
}

/// TCP delivers an intact, in-order byte stream under combined
/// random loss and reordering.
#[test]
fn tcp_stream_integrity_under_impairment() {
    check::cases(48, |g| {
        let len = g.usize_in(1, 40_000);
        let fill_seed = g.u64();
        let net_seed = g.u64();
        let loss = g.f64_in(0.0, 0.10);
        let reorder = g.f64_in(0.0, 0.15);
        tcp_impairment_run(len, fill_seed, net_seed, loss, reorder, true);
    });
}

/// Drive a TCP transfer over an impaired wire. Returns
/// (sender retransmit count, number of first-transmission data
/// segments the wire dropped).
fn tcp_impairment_run(
    len: usize,
    fill_seed: u64,
    net_seed: u64,
    loss: f64,
    reorder: f64,
    delayed_ack: bool,
) -> (u64, u64) {
    let cfg =
        nectar_stack::tcp::TcpConfig { delayed_ack, ..nectar_stack::tcp::TcpConfig::default() };
    tcp_impairment_run_cfg(len, fill_seed, net_seed, loss, reorder, cfg)
}

/// Record an ack arriving at the sender into the shadow SACK
/// scoreboard: drop blocks at or below the cumulative ack and append
/// the segment's SACK blocks, exactly mirroring the socket's add/trim
/// rules (reneging by the peer never removes a block, but a cumulative
/// ack covering one does).
fn sack_mirror_ingest(seg: &[u8], a_iss: Option<u32>, mirror: &mut Vec<(u32, u32)>) {
    use nectar_wire::ipv4::{IpProtocol, Ipv4Header};
    use nectar_wire::tcp::{TcpFlags, TcpHeader};
    let ip = Ipv4Header::new(a(2), a(1), IpProtocol::TCP, seg.len());
    let Ok(h) = TcpHeader::parse(&ip, seg, false) else { return };
    if !h.flags.contains(TcpFlags::ACK) {
        return;
    }
    let Some(base) = a_iss else { return };
    let cum = h.ack.0.wrapping_sub(base);
    mirror.retain(|&(_, r)| r > cum);
    for m in mirror.iter_mut() {
        if m.0 < cum {
            m.0 = cum;
        }
    }
    for (l, r) in h.sack.iter() {
        let (lr, rr) = (l.0.wrapping_sub(base), r.0.wrapping_sub(base));
        if rr > lr && lr > cum {
            mirror.push((lr, rr));
        }
    }
}

/// At the instant the sender emits a batch of events, no data segment
/// may cover bytes the shadow scoreboard holds as SACKed. First
/// transmissions start at `snd_nxt`, above everything ever SACKed, so
/// this constrains exactly the retransmissions. Also captures the
/// sender's ISS from its SYN so ranges can be expressed stream-relative.
fn sack_assert_no_sacked_retx(
    evs: &[nectar_stack::tcp::TcpStackEvent],
    a_iss: &mut Option<u32>,
    mirror: &[(u32, u32)],
) {
    use nectar_stack::tcp::TcpStackEvent;
    use nectar_wire::ipv4::{IpProtocol, Ipv4Header};
    use nectar_wire::tcp::{TcpFlags, TcpHeader};
    for ev in evs {
        if let TcpStackEvent::Transmit { segment, .. } = ev {
            let ip = Ipv4Header::new(a(1), a(2), IpProtocol::TCP, segment.len());
            let Ok(h) = TcpHeader::parse(&ip, segment, false) else { continue };
            if h.flags.contains(TcpFlags::SYN) && a_iss.is_none() {
                *a_iss = Some(h.seq.0);
            }
            let paylen = segment.len() - h.header_len;
            if paylen == 0 {
                continue;
            }
            let base = a_iss.unwrap_or(0);
            let s = h.seq.0.wrapping_sub(base);
            let e = s + paylen as u32;
            for &(l, r) in mirror {
                assert!(
                    e <= l || r <= s,
                    "sender retransmitted [{s}, {e}) overlapping SACKed [{l}, {r})"
                );
            }
        }
    }
}

/// Drive a TCP transfer over an impaired wire with an explicit sender
/// configuration. When SACK is enabled, a shadow scoreboard built from
/// the acks the sender actually received audits every emission: no
/// SACKed byte is ever retransmitted. Returns (sender retransmit
/// count, number of first-transmission data segments the wire
/// dropped).
fn tcp_impairment_run_cfg(
    len: usize,
    fill_seed: u64,
    net_seed: u64,
    loss: f64,
    reorder: f64,
    cfg: nectar_stack::tcp::TcpConfig,
) -> (u64, u64) {
    use nectar_stack::tcp::{TcpStack, TcpStackEvent};
    use nectar_wire::ipv4::Ipv4Header;
    use nectar_wire::tcp::TcpHeader;

    let mut fill = Pcg32::seeded(fill_seed);
    let data: Vec<u8> = (0..len).map(|_| fill.next_u32() as u8).collect();

    let mut a_iss: Option<u32> = None;
    let mut sack_mirror: Vec<(u32, u32)> = Vec::new();

    let mut sa = TcpStack::new(a(1), cfg, 1);
    let mut sb = TcpStack::new(a(2), cfg, 2);
    sb.listen(80);
    let mut rng = Pcg32::seeded(net_seed);
    let mut now = SimTime::ZERO;
    let latency = SimDuration::from_micros(40);
    // (arrival, tiebreak, to_a, segment)
    let mut wire: Vec<(SimTime, u64, bool, Vec<u8>)> = Vec::new();
    let mut seqno = 0u64;
    let mut b_conn = None;
    let mut received: Vec<u8> = Vec::new();
    let (a_id, evs) = sa.connect(now, (a(2), 80), None);
    if cfg.sack {
        sack_assert_no_sacked_retx(&evs, &mut a_iss, &sack_mirror);
    }
    let mut pending = vec![(true, evs)];
    let mut offset = 0usize;
    let mut guard = 0;
    // loss accounting: only first transmissions of data segments from A
    // are ever dropped, and each distinct dropped start-sequence counts
    // once.
    let mut highest_seq_seen: Option<u32> = None;
    let mut dropped_first_tx = 0u64;
    loop {
        guard += 1;
        assert!(guard < 1_000_000, "livelock at {}/{}", received.len(), len);
        for (from_a, evs) in pending.drain(..) {
            for ev in evs {
                match ev {
                    TcpStackEvent::Transmit { segment, .. } => {
                        // decide drop eligibility: data-bearing first
                        // transmission from A only
                        let mut droppable = false;
                        if from_a {
                            let ip = Ipv4Header::new(
                                a(1),
                                a(2),
                                nectar_wire::ipv4::IpProtocol::TCP,
                                segment.len(),
                            );
                            if let Ok(h) = TcpHeader::parse(&ip, &segment, false) {
                                if segment.len() > h.header_len {
                                    let seq = h.seq.0;
                                    let is_first = match highest_seq_seen {
                                        None => true,
                                        Some(hi) => (seq.wrapping_sub(hi) as i32) > 0,
                                    };
                                    if is_first {
                                        highest_seq_seen = Some(seq);
                                        droppable = true;
                                    }
                                }
                            }
                        }
                        if droppable && rng.chance(loss) {
                            dropped_first_tx += 1;
                            continue;
                        }
                        let mut arrive = now + latency;
                        if rng.chance(reorder) {
                            arrive += latency * 4;
                        }
                        seqno += 1;
                        wire.push((arrive, seqno, !from_a, segment));
                    }
                    TcpStackEvent::Incoming { id, .. } => b_conn = Some(id),
                    _ => {}
                }
            }
        }
        // pump application: write on A, read on B
        if offset < data.len() {
            let (n, evs) = sa.send(now, a_id, &data[offset..]);
            offset += n;
            if cfg.sack {
                sack_assert_no_sacked_retx(&evs, &mut a_iss, &sack_mirror);
            }
            pending.push((true, evs));
        }
        if let Some(bid) = b_conn {
            let got = sb.recv(bid, usize::MAX);
            if !got.is_empty() {
                received.extend(got);
                pending.push((false, sb.poll(now)));
            }
        }
        if received.len() >= len {
            break;
        }
        // advance to the next event
        let next_pkt = wire.iter().map(|&(t, s, _, _)| (t, s)).min();
        let next_tmr = [sa.next_wakeup(), sb.next_wakeup()].into_iter().flatten().min();
        let next = match (next_pkt, next_tmr) {
            (Some((tp, _)), Some(tt)) => tp.min(tt),
            (Some((tp, _)), None) => tp,
            (None, Some(tt)) => tt,
            (None, None) => {
                // nothing scheduled but app still has data: nudge time
                now += SimDuration::from_micros(100);
                continue;
            }
        };
        now = next.max(now);
        let mut due: Vec<(SimTime, u64, bool, Vec<u8>)> = Vec::new();
        wire.retain_mut(|e| {
            if e.0 <= now {
                due.push((e.0, e.1, e.2, std::mem::take(&mut e.3)));
                false
            } else {
                true
            }
        });
        due.sort_by_key(|&(t, s, _, _)| (t, s));
        for (_, _, to_a, seg) in due {
            let (src, dst) = if to_a { (a(2), a(1)) } else { (a(1), a(2)) };
            let ip = Ipv4Header::new(src, dst, nectar_wire::ipv4::IpProtocol::TCP, seg.len());
            if to_a && cfg.sack {
                sack_mirror_ingest(&seg, a_iss, &mut sack_mirror);
            }
            let evs =
                if to_a { sa.on_packet(now, &ip, &seg) } else { sb.on_packet(now, &ip, &seg) };
            if to_a && cfg.sack {
                sack_assert_no_sacked_retx(&evs, &mut a_iss, &sack_mirror);
            }
            pending.push((to_a, evs));
        }
        let evs_a = sa.poll(now);
        if cfg.sack {
            sack_assert_no_sacked_retx(&evs_a, &mut a_iss, &sack_mirror);
        }
        pending.push((true, evs_a));
        pending.push((false, sb.poll(now)));
    }
    assert_eq!(received, data, "stream corrupted");
    let retransmits = sa.socket(a_id).map(|s| s.stats().retransmits).unwrap_or(0);
    (retransmits, dropped_first_tx)
}

/// The sender's retransmit counter accounts for injected loss: every
/// dropped first-transmission data segment forces at least one
/// retransmission, and with zero loss the counter stays at zero —
/// exactly what the observability layer's `tcp/retransmits` key must
/// report for fault-injection experiments to be attributable.
///
/// Delayed acks are disabled here: this stack's LAN-scaled `rto_min`
/// (10 ms) is shorter than its delayed-ack timeout (200 ms), so with
/// delayed acks a lone tail segment retransmits spuriously even on a
/// perfect wire, and the counter could not be attributed to loss.
#[test]
fn tcp_retransmit_counter_matches_injected_loss() {
    check::cases(32, |g| {
        let len = g.usize_in(1000, 30_000);
        let fill_seed = g.u64();
        let net_seed = g.u64();
        let loss = g.f64_in(0.0, 0.15);
        let (retransmits, dropped) = tcp_impairment_run(len, fill_seed, net_seed, loss, 0.0, false);
        assert!(
            retransmits >= dropped,
            "each of the {dropped} dropped segments needs a retransmit, saw {retransmits}"
        );
        if dropped == 0 {
            assert_eq!(retransmits, 0, "no loss was injected, so nothing may be retransmitted");
        }
    });
}

/// With SACK and window scaling negotiated, the stream still arrives
/// intact under loss and reordering, and the sender never retransmits
/// a byte the peer has already selectively acknowledged. The shadow
/// scoreboard inside `tcp_impairment_run_cfg` is rebuilt purely from
/// the acks that actually reached the sender, so a socket that
/// mis-trims its scoreboard (or ignores it when picking the
/// retransmission range) fails here even though the stream checksum
/// would still pass.
#[test]
fn tcp_sack_never_retransmits_sacked_bytes() {
    check::cases(32, |g| {
        let len = g.usize_in(5_000, 40_000);
        let fill_seed = g.u64();
        let net_seed = g.u64();
        let loss = g.f64_in(0.0, 0.15);
        let reorder = g.f64_in(0.0, 0.15);
        let cfg = nectar_stack::tcp::TcpConfig {
            delayed_ack: false,
            sack: true,
            wscale: Some(1),
            mss: 1000,
            ..nectar_stack::tcp::TcpConfig::default()
        };
        tcp_impairment_run_cfg(len, fill_seed, net_seed, loss, reorder, cfg);
    });
}
