//! The per-connection TCP state machine.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use nectar_sim::{SimDuration, SimTime};
use nectar_wire::tcp::{SeqNum, TcpFlags, TcpHeader, MAX_WSCALE};

use super::cc::{self, CcState, CongestionControl};
use super::{AbortReason, TcpConfig, TcpEvent, TcpSocketStats, TcpState};
use crate::conform;

/// Default MSS assumed when the peer's SYN carried no MSS option
/// (RFC 1122 §4.2.2.6).
const DEFAULT_PEER_MSS: u16 = 536;

/// One TCP connection endpoint.
#[derive(Debug)]
pub struct TcpSocket {
    cfg: TcpConfig,
    state: TcpState,
    local: (Ipv4Addr, u16),
    remote: (Ipv4Addr, u16),

    // --- send sequence space (RFC 793 §3.2) ---
    iss: SeqNum,
    snd_una: SeqNum,
    snd_nxt: SeqNum,
    snd_wnd: u32,
    /// Largest window the peer has ever advertised (for sender-side
    /// silly-window avoidance).
    snd_wnd_max: u32,
    snd_wl1: SeqNum,
    snd_wl2: SeqNum,
    snd_buf: VecDeque<u8>,
    /// Sequence number of `snd_buf[0]`.
    snd_buf_seq: SeqNum,
    /// End sequence of an outstanding sub-MSS segment, if any (Minshall
    /// refinement to Nagle: at most one small segment in flight).
    small_unacked: Option<SeqNum>,
    fin_queued: bool,
    /// Sequence number our FIN occupies, once sent.
    fin_seq: Option<SeqNum>,
    peer_mss: u16,

    // --- receive sequence space ---
    irs: SeqNum,
    rcv_nxt: SeqNum,
    recv_buf: VecDeque<u8>,
    /// Out-of-order segments, sorted by sequence number.
    ooo: Vec<(SeqNum, Vec<u8>)>,
    ooo_bytes: usize,
    /// Sequence position of the peer's FIN, if seen but not yet in
    /// order.
    peer_fin: Option<SeqNum>,
    peer_fin_processed: bool,
    /// Window value sent in our most recent segment (receiver-side
    /// silly-window avoidance).
    last_adv_wnd: u32,
    want_window_update: bool,

    // --- congestion control ---
    cwnd: u32,
    ssthresh: u32,
    dup_acks: u32,
    /// The loss-response algorithm (`TcpConfig::cc`).
    cc: Box<dyn CongestionControl>,

    // --- SACK (RFC 2018) ---
    /// Both SYNs carried the SACK-permitted option.
    sack_ok: bool,
    /// Sender scoreboard: disjoint, sorted ranges the peer has
    /// selectively acknowledged above `snd_una`. Only ever grows or is
    /// trimmed by the cumulative ACK — a reneging peer is ignored.
    sacked: Vec<(SeqNum, SeqNum)>,

    // --- window scaling (RFC 7323) ---
    /// Both SYNs carried the window-scale option.
    wscale_negotiated: bool,
    /// Shift applied to windows the peer advertises.
    snd_wscale: u8,
    /// Shift applied to windows we advertise.
    rcv_wscale: u8,

    // --- RTT estimation (Jacobson/Karels + Karn) ---
    srtt_ns: Option<i64>,
    rttvar_ns: i64,
    rto: SimDuration,
    /// (end-sequence, send time) of the segment being timed.
    rtt_sample: Option<(SeqNum, SimTime)>,
    backoff: bool,
    retries: u32,

    // --- timers ---
    rto_deadline: Option<SimTime>,
    delack_deadline: Option<SimTime>,
    timewait_deadline: Option<SimTime>,
    probe_deadline: Option<SimTime>,
    /// In-order segments received since we last sent an ACK.
    unacked_segs: u32,

    stats: TcpSocketStats,
    /// Conformance monitor, present while the oracle is enabled
    /// (`conform::enabled()` at socket creation).
    monitor: Option<conform::TcpMonitor>,
}

impl TcpSocket {
    fn base(
        cfg: TcpConfig,
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        iss: SeqNum,
    ) -> TcpSocket {
        TcpSocket {
            state: TcpState::Closed,
            local,
            remote,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_wnd: 0,
            snd_wnd_max: 0,
            snd_wl1: SeqNum(0),
            snd_wl2: SeqNum(0),
            snd_buf: VecDeque::new(),
            snd_buf_seq: iss.add(1),
            small_unacked: None,
            fin_queued: false,
            fin_seq: None,
            peer_mss: DEFAULT_PEER_MSS,
            irs: SeqNum(0),
            rcv_nxt: SeqNum(0),
            recv_buf: VecDeque::new(),
            ooo: Vec::new(),
            ooo_bytes: 0,
            peer_fin: None,
            peer_fin_processed: false,
            last_adv_wnd: 0,
            want_window_update: false,
            cwnd: cfg.mss as u32 * 2,
            ssthresh: u32::MAX / 2,
            dup_acks: 0,
            cc: cc::make(cfg.cc),
            sack_ok: false,
            sacked: Vec::new(),
            wscale_negotiated: false,
            snd_wscale: 0,
            rcv_wscale: 0,
            srtt_ns: None,
            rttvar_ns: 0,
            rto: cfg.rto_initial,
            rtt_sample: None,
            backoff: false,
            retries: 0,
            rto_deadline: None,
            delack_deadline: None,
            timewait_deadline: None,
            probe_deadline: None,
            unacked_segs: 0,
            stats: TcpSocketStats::default(),
            monitor: conform::enabled().then(conform::TcpMonitor::new),
            cfg,
        }
    }

    /// Snapshot for the conformance oracle.
    fn view(&self) -> conform::TcpView {
        conform::TcpView {
            state: self.state,
            snd_una: self.snd_una,
            snd_nxt: self.snd_nxt,
            rcv_nxt: self.rcv_nxt,
            fin_seq: self.fin_seq,
            peer_fin: self.peer_fin,
            peer_fin_processed: self.peer_fin_processed,
            local: self.local,
            remote: self.remote,
            sack_ok: self.sack_ok,
            rcv_wscale: self.rcv_wscale,
        }
    }

    /// Run the oracle's step check at the end of a public entry point.
    fn observe(&mut self, ctx: &str) {
        if let Some(mut m) = self.monitor.take() {
            m.observe(ctx, self.view());
            self.monitor = Some(m);
        }
    }

    /// Active open: create a socket and emit the SYN.
    pub fn client(
        now: SimTime,
        cfg: TcpConfig,
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        isn: u32,
        ev: &mut Vec<TcpEvent>,
    ) -> TcpSocket {
        let mut s = TcpSocket::base(cfg, local, remote, SeqNum(isn));
        s.state = TcpState::SynSent;
        s.send_syn(now, false, ev);
        s.observe("client");
        s
    }

    /// Passive open: a listener accepted this SYN; emit the SYN-ACK.
    pub fn server_from_syn(
        now: SimTime,
        cfg: TcpConfig,
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        syn: &TcpHeader,
        isn: u32,
        ev: &mut Vec<TcpEvent>,
    ) -> TcpSocket {
        debug_assert!(syn.flags.contains(TcpFlags::SYN));
        let mut s = TcpSocket::base(cfg, local, remote, SeqNum(isn));
        s.state = TcpState::SynReceived;
        s.irs = syn.seq;
        s.rcv_nxt = syn.seq.add(1);
        if let Some(mss) = syn.mss {
            s.peer_mss = mss;
        }
        s.negotiate_options(syn);
        s.set_peer_window(syn);
        // seed the RFC 793 window-update qualifier (SND.WL1/SND.WL2);
        // left at their zero defaults, updates whose seq compares
        // "before" SeqNum(0) mod 2^32 would be ignored forever
        s.snd_wl1 = syn.seq;
        s.snd_wl2 = s.snd_una;
        s.send_syn(now, true, ev);
        s.observe("server_from_syn");
        s
    }

    // ------------------------------------------------------------------
    // accessors
    // ------------------------------------------------------------------

    pub fn state(&self) -> TcpState {
        self.state
    }

    pub fn stats(&self) -> &TcpSocketStats {
        &self.stats
    }

    /// Sequence-space snapshot `(snd_una, snd_nxt, rcv_nxt)` for
    /// invariant checks: `snd_una` never runs ahead of `snd_nxt`, and
    /// both only move forward between snapshots.
    pub fn seq_state(&self) -> (SeqNum, SeqNum, SeqNum) {
        (self.snd_una, self.snd_nxt, self.rcv_nxt)
    }

    pub fn local(&self) -> (Ipv4Addr, u16) {
        self.local
    }

    pub fn remote(&self) -> (Ipv4Addr, u16) {
        self.remote
    }

    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Bytes of in-order data ready for [`Self::recv`].
    pub fn readable(&self) -> usize {
        self.recv_buf.len()
    }

    /// Free space in the send buffer.
    pub fn send_capacity(&self) -> usize {
        self.cfg.send_buf - self.snd_buf.len()
    }

    /// True once the peer's FIN has been consumed and the receive
    /// buffer fully drained: reads have hit EOF.
    pub fn recv_finished(&self) -> bool {
        self.peer_fin_processed && self.recv_buf.is_empty()
    }

    /// The effective segment size for this connection.
    pub fn effective_mss(&self) -> usize {
        self.cfg.mss.min(self.peer_mss) as usize
    }

    // ------------------------------------------------------------------
    // application interface
    // ------------------------------------------------------------------

    /// Queue application data; returns how many bytes were accepted
    /// (bounded by send-buffer space). Emits segments when the window
    /// allows.
    pub fn send(&mut self, now: SimTime, data: &[u8], ev: &mut Vec<TcpEvent>) -> usize {
        if !matches!(self.state, TcpState::Established | TcpState::CloseWait)
            && !matches!(self.state, TcpState::SynSent | TcpState::SynReceived)
        {
            return 0;
        }
        if self.fin_queued {
            return 0; // sender already closed
        }
        let n = data.len().min(self.send_capacity());
        self.snd_buf.extend(&data[..n]);
        if self.state.synchronized() {
            self.try_output(now, ev);
        }
        self.observe("send");
        n
    }

    /// Read up to `max` bytes of in-order received data.
    pub fn recv(&mut self, max: usize) -> Vec<u8> {
        let n = max.min(self.recv_buf.len());
        let out: Vec<u8> = self.recv_buf.drain(..n).collect();
        // Receiver-side silly-window avoidance: only volunteer a window
        // update once at least an MSS (or half the buffer) has opened.
        let unadvertised = self.recv_window().saturating_sub(self.last_adv_wnd);
        if unadvertised >= (self.effective_mss() as u32).min(self.cfg.recv_buf as u32 / 2)
            && !out.is_empty()
        {
            self.want_window_update = true;
        }
        out
    }

    /// Close the send side (queue a FIN after any buffered data).
    pub fn close(&mut self, now: SimTime, ev: &mut Vec<TcpEvent>) {
        match self.state {
            TcpState::Closed => {}
            TcpState::SynSent => {
                if self.snd_buf.is_empty() {
                    self.enter_closed(ev, Some(TcpEvent::Closed));
                } else {
                    // Data was queued before the handshake finished:
                    // keep the connection alive so the SYN retransmit
                    // path can still win, and let the FIN follow the
                    // buffered bytes once established.
                    self.fin_queued = true;
                }
            }
            TcpState::SynReceived | TcpState::Established | TcpState::CloseWait
                if !self.fin_queued =>
            {
                self.fin_queued = true;
                self.try_output(now, ev);
            }
            // already closing
            _ => {}
        }
        self.observe("close");
    }

    /// Abort: RST the peer and drop to CLOSED.
    pub fn abort(&mut self, _now: SimTime, ev: &mut Vec<TcpEvent>) {
        if self.state.synchronized() || self.state == TcpState::SynReceived {
            let mut h = self.header_template();
            h.seq = self.snd_nxt;
            h.ack = self.rcv_nxt;
            h.flags = TcpFlags::RST | TcpFlags::ACK;
            self.emit(h, &[], ev);
        }
        self.enter_closed(ev, Some(TcpEvent::Aborted(AbortReason::LocalAbort)));
        self.observe("abort");
    }

    // ------------------------------------------------------------------
    // segment input
    // ------------------------------------------------------------------

    /// Standard TCP input processing (RFC 793 §3.9, "SEGMENT ARRIVES").
    pub fn on_segment(
        &mut self,
        now: SimTime,
        hdr: &TcpHeader,
        payload: &[u8],
        ev: &mut Vec<TcpEvent>,
    ) {
        self.stats.segs_in += 1;
        match self.state {
            TcpState::Closed => {}
            TcpState::SynSent => self.on_segment_syn_sent(now, hdr, payload, ev),
            _ => self.on_segment_synchronized(now, hdr, payload, ev),
        }
        self.observe("on_segment");
    }

    fn on_segment_syn_sent(
        &mut self,
        now: SimTime,
        hdr: &TcpHeader,
        payload: &[u8],
        ev: &mut Vec<TcpEvent>,
    ) {
        if hdr.flags.contains(TcpFlags::ACK) {
            // acceptable ack: iss < ack <= snd_nxt
            if hdr.ack.before_eq(self.iss) || hdr.ack.after(self.snd_nxt) {
                if !hdr.flags.contains(TcpFlags::RST) {
                    self.send_rst_for_ack(hdr.ack, ev);
                }
                return;
            }
        }
        if hdr.flags.contains(TcpFlags::RST) {
            if hdr.flags.contains(TcpFlags::ACK) {
                self.enter_closed(ev, Some(TcpEvent::Aborted(AbortReason::Refused)));
            }
            return;
        }
        if !hdr.flags.contains(TcpFlags::SYN) {
            return;
        }
        self.irs = hdr.seq;
        self.rcv_nxt = hdr.seq.add(1);
        if let Some(mss) = hdr.mss {
            self.peer_mss = mss;
        }
        self.negotiate_options(hdr);
        if hdr.flags.contains(TcpFlags::ACK) {
            self.snd_una = hdr.ack;
            self.retries = 0;
            self.backoff = false;
            self.rto_deadline = None;
        }
        self.set_peer_window(hdr);
        self.snd_wl1 = hdr.seq;
        self.snd_wl2 = if hdr.flags.contains(TcpFlags::ACK) { hdr.ack } else { self.snd_una };
        if self.snd_una.after(self.iss) {
            // our SYN is acknowledged
            self.state = TcpState::Established;
            ev.push(TcpEvent::Connected);
            self.send_ack_now(ev);
            if !payload.is_empty() {
                self.process_payload(now, hdr, payload, ev);
            }
            self.try_output(now, ev);
        } else {
            // simultaneous open: SYN without ACK
            self.state = TcpState::SynReceived;
            self.snd_nxt = self.iss; // re-send SYN, now with ACK
            self.send_syn(now, true, ev);
        }
    }

    /// Length a segment occupies in sequence space.
    fn segment_len(hdr: &TcpHeader, payload: &[u8]) -> u32 {
        let mut n = payload.len() as u32;
        if hdr.flags.contains(TcpFlags::SYN) {
            n += 1;
        }
        if hdr.flags.contains(TcpFlags::FIN) {
            n += 1;
        }
        n
    }

    fn acceptable(&self, hdr: &TcpHeader, payload: &[u8]) -> bool {
        let seg_len = Self::segment_len(hdr, payload);
        let wnd = self.recv_window();
        let seq = hdr.seq;
        if seg_len == 0 {
            if wnd == 0 {
                return seq == self.rcv_nxt;
            }
            return seq.after_eq(self.rcv_nxt) && seq.before(self.rcv_nxt.add(wnd as usize));
        }
        if wnd == 0 {
            return false;
        }
        let seg_end = seq.add(seg_len as usize - 1);
        let wnd_end = self.rcv_nxt.add(wnd as usize);
        (seq.after_eq(self.rcv_nxt) && seq.before(wnd_end))
            || (seg_end.after_eq(self.rcv_nxt) && seg_end.before(wnd_end))
    }

    fn on_segment_synchronized(
        &mut self,
        now: SimTime,
        hdr: &TcpHeader,
        payload: &[u8],
        ev: &mut Vec<TcpEvent>,
    ) {
        // 1. acceptance
        if !self.acceptable(hdr, payload) {
            if !hdr.flags.contains(TcpFlags::RST) {
                // old duplicate or out-of-window: re-ACK (this is how a
                // lost ACK gets repaired)
                self.send_ack_now(ev);
            }
            return;
        }
        // 2. RST
        if hdr.flags.contains(TcpFlags::RST) {
            self.enter_closed(ev, Some(TcpEvent::Aborted(AbortReason::Reset)));
            return;
        }
        // 3. SYN in window: fatal in synchronized states
        if hdr.flags.contains(TcpFlags::SYN) && hdr.seq.after_eq(self.rcv_nxt) {
            self.send_rst_for_ack(self.snd_nxt, ev);
            self.enter_closed(ev, Some(TcpEvent::Aborted(AbortReason::Reset)));
            return;
        }
        // 4. ACK
        if !hdr.flags.contains(TcpFlags::ACK) {
            return;
        }
        if self.state == TcpState::SynReceived {
            if hdr.ack.after_eq(self.snd_una) && hdr.ack.before_eq(self.snd_nxt) {
                self.state = TcpState::Established;
                self.set_peer_window(hdr);
                self.snd_wl1 = hdr.seq;
                self.snd_wl2 = hdr.ack;
                ev.push(TcpEvent::Connected);
            } else {
                self.send_rst_for_ack(hdr.ack, ev);
                return;
            }
        }
        self.process_ack(now, hdr, payload, ev);
        if self.state == TcpState::Closed {
            return;
        }
        // 5. payload
        if !payload.is_empty()
            && matches!(self.state, TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2)
        {
            self.process_payload(now, hdr, payload, ev);
        }
        // 6. FIN
        if hdr.flags.contains(TcpFlags::FIN) {
            let was_processed = self.peer_fin_processed;
            let fin_pos = hdr.seq.add(payload.len());
            if self.peer_fin.is_none() {
                self.peer_fin = Some(fin_pos);
            }
            self.maybe_process_peer_fin(now, ev);
            // A *retransmitted* FIN reaching TIME-WAIT: re-ack and
            // restart 2MSL (RFC 793 p.73). A FIN processed just now was
            // already acked by maybe_process_peer_fin.
            if was_processed && self.state == TcpState::TimeWait {
                self.timewait_deadline = Some(now + self.cfg.msl * 2);
                self.send_ack_now(ev);
            }
        }
        // 7. output + ack policy
        self.try_output(now, ev);
        self.flush_ack_policy(now, ev);
    }

    fn process_ack(
        &mut self,
        now: SimTime,
        hdr: &TcpHeader,
        payload: &[u8],
        ev: &mut Vec<TcpEvent>,
    ) {
        let ack = hdr.ack;
        if ack.after(self.snd_nxt) {
            // ack for data we never sent
            self.send_ack_now(ev);
            return;
        }
        // Fold valid SACK blocks into the scoreboard before the
        // cumulative processing (RFC 2018 §4): blocks must lie strictly
        // above the segment's own ack and within what we actually sent.
        if self.sack_ok {
            for (l, r) in hdr.sack.iter() {
                if r.after(l) && l.after(ack) && r.before_eq(self.snd_nxt) {
                    self.stats.sack_blocks_in += 1;
                    self.add_sacked(l, r);
                }
            }
        }
        if ack.after(self.snd_una) {
            // --- new data acknowledged ---
            let old_una = self.snd_una;
            self.snd_una = ack;
            self.retries = 0;
            self.dup_acks = 0;
            if matches!(self.small_unacked, Some(end) if ack.after_eq(end)) {
                self.small_unacked = None;
            }
            // Karn's rule: only sample if this segment was not
            // retransmitted.
            if let Some((end_seq, sent_at)) = self.rtt_sample {
                if ack.after_eq(end_seq) {
                    if !self.backoff {
                        self.update_rtt(now.saturating_since(sent_at));
                    }
                    self.rtt_sample = None;
                }
            }
            self.backoff = false;
            // the cumulative ack implicitly covers any sacked range at
            // or below it
            if !self.sacked.is_empty() {
                self.sacked.retain(|&(_, r)| r.after(ack));
                if let Some(first) = self.sacked.first_mut() {
                    if first.0.before(ack) {
                        first.0 = ack;
                    }
                }
            }
            // congestion window growth
            let mss = self.effective_mss() as u32;
            let acked = ack.since(old_una).max(0) as u32;
            let mut st = CcState { cwnd: self.cwnd, ssthresh: self.ssthresh };
            self.cc.on_ack(&mut st, now, acked, mss);
            self.cwnd = st.cwnd;
            self.ssthresh = st.ssthresh;
            // release acknowledged bytes from the send buffer
            let data_acked =
                self.snd_una.since(self.snd_buf_seq).clamp(0, self.snd_buf.len() as i32);
            if data_acked > 0 {
                self.snd_buf.drain(..data_acked as usize);
                self.snd_buf_seq = self.snd_buf_seq.add(data_acked as usize);
            }
            // our FIN acknowledged?
            if let Some(fin_seq) = self.fin_seq {
                if self.snd_una.after(fin_seq) {
                    match self.state {
                        TcpState::FinWait1 => self.state = TcpState::FinWait2,
                        TcpState::Closing => self.enter_time_wait(now, ev),
                        TcpState::LastAck => {
                            self.enter_closed(ev, Some(TcpEvent::Closed));
                            return;
                        }
                        _ => {}
                    }
                }
            }
            // retransmission timer
            if self.snd_nxt.after(self.snd_una) || self.fin_unacked() {
                self.rto_deadline = Some(now + self.rto);
            } else {
                self.rto_deadline = None;
            }
            // Scoreboard-driven hole repair: a partial ack that stops
            // below a sacked range landed exactly on the next hole, so
            // retransmit it now instead of waiting out another dup-ack
            // round or the RTO.
            if self.sack_ok && !self.sacked.is_empty() && self.snd_nxt.after(self.snd_una) {
                self.retransmit_one(now, ev);
            }
        } else if ack == self.snd_una
            && payload.is_empty()
            && !hdr.flags.contains(TcpFlags::FIN)
            && self.snd_nxt.after(self.snd_una)
            && self.peer_window_in(hdr) == self.snd_wnd
        {
            // --- duplicate ACK ---
            self.dup_acks += 1;
            self.stats.dup_acks_in += 1;
            if self.dup_acks == 3 {
                self.fast_retransmit(now, ev);
            }
        }
        // window update (RFC 793 update rule)
        if self.snd_wl1.before(hdr.seq) || (self.snd_wl1 == hdr.seq && self.snd_wl2.before_eq(ack))
        {
            let was_zero = self.snd_wnd == 0;
            self.set_peer_window(hdr);
            self.snd_wl1 = hdr.seq;
            self.snd_wl2 = ack;
            if was_zero && self.snd_wnd > 0 {
                self.probe_deadline = None;
            }
        }
    }

    fn fin_unacked(&self) -> bool {
        matches!(self.fin_seq, Some(s) if self.snd_una.before_eq(s))
    }

    fn fast_retransmit(&mut self, now: SimTime, ev: &mut Vec<TcpEvent>) {
        self.stats.fast_retransmits += 1;
        let mss = self.effective_mss() as u32;
        let flight = self.snd_nxt.since(self.snd_una).max(0) as u32;
        let mut st = CcState { cwnd: self.cwnd, ssthresh: self.ssthresh };
        self.cc.on_loss(&mut st, now, flight, mss);
        self.cwnd = st.cwnd;
        self.ssthresh = st.ssthresh;
        self.dup_acks = 0;
        self.retransmit_one(now, ev);
        self.rto_deadline = Some(now + self.rto);
    }

    fn process_payload(
        &mut self,
        now: SimTime,
        hdr: &TcpHeader,
        payload: &[u8],
        ev: &mut Vec<TcpEvent>,
    ) {
        let mut seq = hdr.seq;
        let mut data = payload;
        // trim the part we already have
        let behind = self.rcv_nxt.since(seq);
        if behind > 0 {
            if behind as usize >= data.len() {
                // entirely duplicate; make sure the peer gets an ACK
                self.unacked_segs += 1;
                return;
            }
            data = &data[behind as usize..];
            seq = self.rcv_nxt;
        }
        // trim to our window
        let wnd = self.recv_window() as usize;
        let offset = seq.since(self.rcv_nxt).max(0) as usize;
        if offset >= wnd {
            return; // nothing fits
        }
        let fit = (wnd - offset).min(data.len());
        let data = &data[..fit];
        if data.is_empty() {
            return;
        }
        if seq == self.rcv_nxt {
            self.recv_buf.extend(data);
            self.rcv_nxt = self.rcv_nxt.add(data.len());
            self.stats.bytes_in += data.len() as u64;
            self.drain_ooo();
            self.unacked_segs += 1;
            ev.push(TcpEvent::DataAvailable);
            self.maybe_process_peer_fin(now, ev);
        } else {
            // out of order: hold (bounded) and dup-ACK immediately so
            // the sender's fast retransmit can kick in
            if self.ooo_bytes + data.len() <= self.cfg.recv_buf {
                self.insert_ooo(seq, data.to_vec());
            }
            self.send_ack_now(ev);
        }
    }

    fn insert_ooo(&mut self, seq: SeqNum, data: Vec<u8>) {
        // exact-duplicate suppression is enough: overlaps are resolved
        // in drain_ooo by trimming against rcv_nxt
        if self.ooo.iter().any(|&(s, ref d)| s == seq && d.len() >= data.len()) {
            return;
        }
        self.ooo_bytes += data.len();
        let at = self.ooo.partition_point(|&(s, _)| s.before(seq));
        self.ooo.insert(at, (seq, data));
    }

    fn drain_ooo(&mut self) {
        loop {
            let mut advanced = false;
            let mut i = 0;
            while i < self.ooo.len() {
                let (seq, ref data) = self.ooo[i];
                let end = seq.add(data.len());
                if end.before_eq(self.rcv_nxt) {
                    // fully stale
                    self.ooo_bytes -= data.len();
                    self.ooo.remove(i);
                    continue;
                }
                if seq.before_eq(self.rcv_nxt) {
                    let skip = self.rcv_nxt.since(seq).max(0) as usize;
                    let (_, data) = self.ooo.remove(i);
                    self.ooo_bytes -= data.len();
                    let fresh = &data[skip..];
                    self.recv_buf.extend(fresh);
                    self.stats.bytes_in += fresh.len() as u64;
                    self.rcv_nxt = self.rcv_nxt.add(fresh.len());
                    advanced = true;
                    continue;
                }
                i += 1;
            }
            if !advanced {
                break;
            }
        }
    }

    fn maybe_process_peer_fin(&mut self, now: SimTime, ev: &mut Vec<TcpEvent>) {
        let Some(fin_pos) = self.peer_fin else { return };
        if self.peer_fin_processed || fin_pos != self.rcv_nxt {
            return;
        }
        self.rcv_nxt = self.rcv_nxt.add(1);
        self.peer_fin_processed = true;
        ev.push(TcpEvent::PeerClosed);
        match self.state {
            TcpState::SynReceived | TcpState::Established => self.state = TcpState::CloseWait,
            TcpState::FinWait1 => {
                // our FIN not yet acked (otherwise we'd be in FIN-WAIT-2)
                self.state = TcpState::Closing;
            }
            TcpState::FinWait2 => self.enter_time_wait(now, ev),
            _ => {}
        }
        self.send_ack_now(ev);
    }

    // ------------------------------------------------------------------
    // output
    // ------------------------------------------------------------------

    /// Transmit whatever the send window, congestion window, Nagle and
    /// state allow.
    fn try_output(&mut self, now: SimTime, ev: &mut Vec<TcpEvent>) {
        if !matches!(
            self.state,
            TcpState::Established
                | TcpState::CloseWait
                | TcpState::FinWait1
                | TcpState::Closing
                | TcpState::LastAck
        ) {
            return;
        }
        let mss = self.effective_mss();
        let usable = self.snd_wnd.min(self.cwnd);
        loop {
            if self.fin_seq.is_some() {
                break; // FIN sent; nothing may follow it
            }
            let offset = self.snd_nxt.since(self.snd_buf_seq).max(0) as usize;
            let remaining = self.snd_buf.len().saturating_sub(offset);
            if remaining == 0 {
                break;
            }
            let in_flight = self.snd_nxt.since(self.snd_una).max(0) as u32;
            let wnd_left = usable.saturating_sub(in_flight) as usize;
            if wnd_left == 0 {
                if self.snd_wnd == 0 && self.probe_deadline.is_none() {
                    // peer closed its window: arm the persist timer
                    self.probe_deadline = Some(now + self.rto.max(self.cfg.rto_min));
                }
                break;
            }
            let len = mss.min(remaining).min(wnd_left);
            // Nagle with the Minshall refinement: while data is unacked,
            // hold a sub-MSS segment — unless it is the *trailing*
            // segment (it empties the send buffer), it fits the window,
            // and no other sub-MSS segment is outstanding. That trailing
            // exception is what keeps odd-sized writes from stalling a
            // full RTO behind their own last sliver (EXPERIMENTS.md
            // Figure 7).
            if self.cfg.nagle
                && len < mss
                && in_flight > 0
                && !(len == remaining && self.small_unacked.is_none())
            {
                break;
            }
            // Sender-side SWS avoidance when Nagle is off: still send
            // only if MSS-sized, at least half the peer's max window,
            // or everything we have.
            if !self.cfg.nagle
                && len < mss
                && (len as u32) < self.snd_wnd_max / 2
                && len < remaining
            {
                break;
            }
            self.emit_data_segment(now, len, ev);
        }
        // FIN, once the buffer is drained
        if self.fin_queued && self.fin_seq.is_none() {
            let offset = self.snd_nxt.since(self.snd_buf_seq).max(0) as usize;
            if offset >= self.snd_buf.len() {
                let mut h = self.header_template();
                h.seq = self.snd_nxt;
                h.ack = self.rcv_nxt;
                h.flags = TcpFlags::FIN | TcpFlags::ACK;
                self.fin_seq = Some(self.snd_nxt);
                self.snd_nxt = self.snd_nxt.add(1);
                match self.state {
                    TcpState::Established => self.state = TcpState::FinWait1,
                    TcpState::CloseWait => self.state = TcpState::LastAck,
                    _ => {}
                }
                self.emit(h, &[], ev);
                self.note_ack_sent();
                if self.rto_deadline.is_none() {
                    self.rto_deadline = Some(now + self.rto);
                }
            }
        }
    }

    fn emit_data_segment(&mut self, now: SimTime, len: usize, ev: &mut Vec<TcpEvent>) {
        let offset = self.snd_nxt.since(self.snd_buf_seq).max(0) as usize;
        let payload: Vec<u8> = self.snd_buf.iter().skip(offset).take(len).copied().collect();
        let mut h = self.header_template();
        h.seq = self.snd_nxt;
        h.ack = self.rcv_nxt;
        h.flags = TcpFlags::ACK;
        if offset + len >= self.snd_buf.len() {
            h.flags |= TcpFlags::PSH;
        }
        self.snd_nxt = self.snd_nxt.add(len);
        if len < self.effective_mss() {
            self.small_unacked = Some(self.snd_nxt);
        }
        self.stats.bytes_out += len as u64;
        // time this segment if nothing else is being timed (Karn)
        if self.rtt_sample.is_none() && !self.backoff {
            self.rtt_sample = Some((self.snd_nxt, now));
        }
        self.emit(h, &payload, ev);
        self.note_ack_sent();
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rto);
        }
    }

    /// Retransmit a single segment starting at `snd_una`.
    fn retransmit_one(&mut self, now: SimTime, ev: &mut Vec<TcpEvent>) {
        self.stats.retransmits += 1;
        match self.state {
            TcpState::SynSent => {
                self.snd_nxt = self.iss;
                self.send_syn(now, false, ev);
                return;
            }
            TcpState::SynReceived => {
                self.snd_nxt = self.iss;
                self.send_syn(now, true, ev);
                return;
            }
            _ => {}
        }
        // SACK scoreboard: retransmit the first *hole*, never bytes the
        // peer has already selectively acknowledged. `start` advances
        // past any leading sacked ranges and `cap` stops the segment at
        // the next sacked left edge.
        let mut start = self.snd_una;
        let mut cap = usize::MAX;
        if self.sack_ok && !self.sacked.is_empty() {
            self.stats.sack_retransmits += 1;
            for &(sl, sr) in &self.sacked {
                if sr.before_eq(start) {
                    continue;
                }
                if sl.before_eq(start) {
                    start = sr;
                } else {
                    cap = sl.since(start).max(0) as usize;
                    break;
                }
            }
        }
        let offset = start.since(self.snd_buf_seq).max(0) as usize;
        let remaining = self.snd_buf.len().saturating_sub(offset);
        // Never retransmit bytes beyond snd_nxt: they were never sent,
        // and sending them here without advancing snd_nxt would make the
        // peer's ACKs look like acks of unsent data.
        let outstanding = self.snd_nxt.since(start).max(0) as usize;
        let remaining = remaining.min(outstanding).min(cap);
        if remaining > 0 {
            let len = self.effective_mss().min(remaining);
            let payload: Vec<u8> = self.snd_buf.iter().skip(offset).take(len).copied().collect();
            let mut h = self.header_template();
            h.seq = start;
            h.ack = self.rcv_nxt;
            h.flags = TcpFlags::ACK | TcpFlags::PSH;
            self.emit(h, &payload, ev);
            self.note_ack_sent();
        } else if self.fin_unacked() {
            let mut h = self.header_template();
            h.seq = self.fin_seq.expect("fin_unacked checked");
            h.ack = self.rcv_nxt;
            h.flags = TcpFlags::FIN | TcpFlags::ACK;
            self.emit(h, &[], ev);
            self.note_ack_sent();
        }
        // Karn: retransmitted data must not be timed
        self.rtt_sample = None;
    }

    // ------------------------------------------------------------------
    // timers
    // ------------------------------------------------------------------

    /// Fire any due timers and transmit pending output.
    pub fn poll(&mut self, now: SimTime, ev: &mut Vec<TcpEvent>) {
        if self.state == TcpState::Closed {
            return;
        }
        if let Some(t) = self.timewait_deadline {
            if now >= t {
                self.enter_closed(ev, Some(TcpEvent::Closed));
                return;
            }
        }
        if let Some(t) = self.rto_deadline {
            if now >= t {
                self.on_rto(now, ev);
                if self.state == TcpState::Closed {
                    return;
                }
            }
        }
        if let Some(t) = self.probe_deadline {
            if now >= t {
                self.send_window_probe(now, ev);
            }
        }
        if let Some(t) = self.delack_deadline {
            if now >= t {
                self.send_ack_now(ev);
            }
        }
        if self.want_window_update {
            self.want_window_update = false;
            self.send_ack_now(ev);
        }
        self.try_output(now, ev);
        self.observe("poll");
    }

    /// The earliest time a timer could fire.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        [self.rto_deadline, self.delack_deadline, self.timewait_deadline, self.probe_deadline]
            .into_iter()
            .flatten()
            .min()
    }

    fn on_rto(&mut self, now: SimTime, ev: &mut Vec<TcpEvent>) {
        self.stats.timeouts += 1;
        self.retries += 1;
        if self.retries > self.cfg.max_retries {
            self.enter_closed(ev, Some(TcpEvent::Aborted(AbortReason::TooManyRetries)));
            return;
        }
        // exponential backoff, Karn phase
        self.rto = (self.rto * 2).min(self.cfg.rto_max);
        self.backoff = true;
        self.rtt_sample = None;
        let mss = self.effective_mss() as u32;
        let flight = self.snd_nxt.since(self.snd_una).max(0) as u32;
        let mut st = CcState { cwnd: self.cwnd, ssthresh: self.ssthresh };
        self.cc.on_timeout(&mut st, now, flight, mss);
        self.cwnd = st.cwnd;
        self.ssthresh = st.ssthresh;
        self.dup_acks = 0;
        self.retransmit_one(now, ev);
        self.rto_deadline = Some(now + self.rto);
    }

    fn send_window_probe(&mut self, now: SimTime, ev: &mut Vec<TcpEvent>) {
        let offset = self.snd_nxt.since(self.snd_buf_seq).max(0) as usize;
        if self.snd_wnd > 0 || offset >= self.snd_buf.len() {
            self.probe_deadline = None;
            return;
        }
        self.stats.zero_window_probes += 1;
        // send one byte beyond the closed window
        let payload = [self.snd_buf[offset]];
        let mut h = self.header_template();
        h.seq = self.snd_nxt;
        h.ack = self.rcv_nxt;
        h.flags = TcpFlags::ACK | TcpFlags::PSH;
        self.snd_nxt = self.snd_nxt.add(1);
        self.stats.bytes_out += 1;
        self.emit(h, &payload, ev);
        self.note_ack_sent();
        // persist backoff
        self.rto = (self.rto * 2).min(self.cfg.rto_max);
        self.probe_deadline = Some(now + self.rto);
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rto);
        }
    }

    fn update_rtt(&mut self, sample: SimDuration) {
        let r = sample.as_nanos() as i64;
        match self.srtt_ns {
            None => {
                self.srtt_ns = Some(r);
                self.rttvar_ns = r / 2;
            }
            Some(srtt) => {
                let err = r - srtt;
                self.srtt_ns = Some(srtt + err / 8);
                self.rttvar_ns += (err.abs() - self.rttvar_ns) / 4;
            }
        }
        let rto_ns = self.srtt_ns.unwrap_or(0) + 4 * self.rttvar_ns;
        self.rto = SimDuration::from_nanos(rto_ns.max(0) as u64)
            .max(self.cfg.rto_min)
            .min(self.cfg.rto_max);
    }

    // ------------------------------------------------------------------
    // segment construction
    // ------------------------------------------------------------------

    fn header_template(&self) -> TcpHeader {
        let mut h = TcpHeader::new(self.local.1, self.remote.1);
        h.window = (self.recv_window() >> self.rcv_wscale).min(u16::MAX as u32) as u16;
        if self.sack_ok {
            for b in self.sack_blocks() {
                h.sack.push(b.0, b.1);
            }
        }
        h
    }

    /// Current receive window (free buffer space), before scaling and
    /// the u16 clamp.
    fn recv_window(&self) -> u32 {
        (self.cfg.recv_buf - self.recv_buf.len()) as u32
    }

    /// The window a received header advertises, after undoing the
    /// peer's scale shift. Windows in SYN segments are never scaled
    /// (RFC 7323 §2.2).
    fn peer_window_in(&self, hdr: &TcpHeader) -> u32 {
        let shift = if hdr.flags.contains(TcpFlags::SYN) { 0 } else { self.snd_wscale as u32 };
        (hdr.window as u32) << shift
    }

    fn set_peer_window(&mut self, hdr: &TcpHeader) {
        self.snd_wnd = self.peer_window_in(hdr);
        self.snd_wnd_max = self.snd_wnd_max.max(self.snd_wnd);
    }

    /// Resolve SACK and window-scale negotiation from the peer's SYN
    /// (RFC 2018 §2, RFC 7323 §2.2): each feature is live only when
    /// both our config offers it and the peer's SYN carried it.
    fn negotiate_options(&mut self, syn: &TcpHeader) {
        self.sack_ok = self.cfg.sack && syn.sack_permitted;
        if let (Some(ours), Some(theirs)) = (self.cfg.wscale, syn.wscale) {
            self.wscale_negotiated = true;
            self.rcv_wscale = ours.min(MAX_WSCALE);
            self.snd_wscale = theirs.min(MAX_WSCALE);
        }
    }

    /// Merged SACK blocks describing the out-of-order queue, capped to
    /// what the wire format carries.
    fn sack_blocks(&self) -> Vec<(SeqNum, SeqNum)> {
        let mut blocks: Vec<(SeqNum, SeqNum)> = Vec::new();
        for &(seq, ref data) in &self.ooo {
            let end = seq.add(data.len());
            match blocks.last_mut() {
                Some(last) if seq.before_eq(last.1) => {
                    if end.after(last.1) {
                        last.1 = end;
                    }
                }
                _ => blocks.push((seq, end)),
            }
        }
        blocks.truncate(nectar_wire::tcp::MAX_SACK_BLOCKS);
        blocks
    }

    /// Grow the scoreboard with `[l, r)`, merging overlapping or
    /// adjacent ranges. Add-only: reneging peers are ignored.
    fn add_sacked(&mut self, mut l: SeqNum, mut r: SeqNum) {
        let mut i = 0;
        while i < self.sacked.len() {
            let (sl, sr) = self.sacked[i];
            if sr.before(l) {
                i += 1;
                continue;
            }
            if r.before(sl) {
                break;
            }
            if sl.before(l) {
                l = sl;
            }
            if sr.after(r) {
                r = sr;
            }
            self.sacked.remove(i);
        }
        self.sacked.insert(i, (l, r));
    }

    fn send_syn(&mut self, now: SimTime, with_ack: bool, ev: &mut Vec<TcpEvent>) {
        let mut h = self.header_template();
        // the window field in a SYN is never scaled (RFC 7323 §2.2)
        h.window = self.recv_window().min(u16::MAX as u32) as u16;
        h.seq = self.iss;
        h.flags = TcpFlags::SYN;
        if with_ack {
            h.flags |= TcpFlags::ACK;
            h.ack = self.rcv_nxt;
            // SYN-ACK: echo only what negotiation resolved
            h.sack_permitted = self.sack_ok;
            h.wscale = self.wscale_negotiated.then_some(self.rcv_wscale);
        } else {
            // initial SYN: offer what our config enables
            h.sack_permitted = self.cfg.sack;
            h.wscale = self.cfg.wscale.map(|w| w.min(MAX_WSCALE));
        }
        h.mss = Some(self.cfg.mss);
        self.snd_nxt = self.iss.add(1);
        self.emit(h, &[], ev);
        if with_ack {
            self.note_ack_sent();
        }
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rto);
        }
    }

    fn send_ack_now(&mut self, ev: &mut Vec<TcpEvent>) {
        let mut h = self.header_template();
        h.seq = self.snd_nxt;
        h.ack = self.rcv_nxt;
        h.flags = TcpFlags::ACK;
        self.emit(h, &[], ev);
        self.note_ack_sent();
    }

    fn note_ack_sent(&mut self) {
        self.unacked_segs = 0;
        self.delack_deadline = None;
        self.want_window_update = false;
    }

    /// ACK policy after receiving in-order data: BSD acks every second
    /// segment, or after the delayed-ACK timer.
    fn flush_ack_policy(&mut self, now: SimTime, ev: &mut Vec<TcpEvent>) {
        if self.unacked_segs == 0 {
            return;
        }
        if !self.cfg.delayed_ack || self.unacked_segs >= 2 {
            self.send_ack_now(ev);
        } else if self.delack_deadline.is_none() {
            self.delack_deadline = Some(now + self.cfg.delack_timeout);
        }
    }

    fn send_rst_for_ack(&mut self, seq: SeqNum, ev: &mut Vec<TcpEvent>) {
        let mut h = TcpHeader::new(self.local.1, self.remote.1);
        h.seq = seq;
        h.flags = TcpFlags::RST;
        self.emit(h, &[], ev);
    }

    fn emit(&mut self, header: TcpHeader, payload: &[u8], ev: &mut Vec<TcpEvent>) {
        if let Some(mut m) = self.monitor.take() {
            m.observe_emit(self.view(), &header, payload.len());
            self.monitor = Some(m);
        }
        self.stats.segs_out += 1;
        self.last_adv_wnd = (header.window as u32) << self.rcv_wscale;
        let segment = header.build(self.local.0, self.remote.0, payload, self.cfg.compute_checksum);
        ev.push(TcpEvent::Transmit { dst: self.remote.0, segment });
    }

    fn enter_time_wait(&mut self, now: SimTime, _ev: &mut Vec<TcpEvent>) {
        self.state = TcpState::TimeWait;
        self.timewait_deadline = Some(now + self.cfg.msl * 2);
        self.rto_deadline = None;
        self.delack_deadline = None;
        self.probe_deadline = None;
    }

    fn enter_closed(&mut self, ev: &mut Vec<TcpEvent>, event: Option<TcpEvent>) {
        self.state = TcpState::Closed;
        self.rto_deadline = None;
        self.delack_deadline = None;
        self.timewait_deadline = None;
        self.probe_deadline = None;
        if let Some(e) = event {
            ev.push(e);
        }
    }
}
