//! TCP (RFC 793, 4.3BSD-era) as a pure state machine.
//!
//! §4.2 of the paper: "The Nectar TCP implementation runs almost
//! entirely in system threads … All TCP input processing is performed
//! by the TCP input thread. … it examines the TCP header, checksums the
//! entire packet, and performs standard TCP input processing."
//!
//! This module implements that TCP: three-way handshake, sliding
//! window with receiver-side buffering and out-of-order reassembly,
//! Jacobson/Karels RTT estimation with Karn's rule, Tahoe congestion
//! control (slow start, congestion avoidance, fast retransmit),
//! delayed ACK, sender/receiver silly-window avoidance, zero-window
//! probing, RST handling and the full close sequence including
//! TIME-WAIT.
//!
//! Figure 7's "TCP w/o checksum" series corresponds to
//! [`TcpConfig::compute_checksum`] = false: segments are emitted with a
//! zero checksum field and the receiver skips verification, relying on
//! the CAB's hardware CRC exactly as the paper's experimental variant
//! did.
//!
//! The state machine is pure: inputs are `(now, segment)` calls and
//! outputs are [`TcpEvent`]s. Time-driven behaviour (retransmission,
//! delayed ACK, TIME-WAIT, window probes) is exposed through
//! [`TcpSocket::poll`] / [`TcpSocket::next_wakeup`].

pub mod cc;
mod socket;
mod stack;

pub use cc::{CcAlgorithm, CcState, CongestionControl};
pub use socket::TcpSocket;
pub use stack::{SocketId, TcpStack, TcpStackEvent, TcpStackStats};

use std::net::Ipv4Addr;

use nectar_sim::SimDuration;

/// TCP connection states (RFC 793 §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpState {
    Closed,
    SynSent,
    SynReceived,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    Closing,
    LastAck,
    TimeWait,
}

impl TcpState {
    /// States in which the connection is synchronized (RFC 793's term).
    pub fn synchronized(self) -> bool {
        !matches!(self, TcpState::Closed | TcpState::SynSent | TcpState::SynReceived)
    }
}

/// Why a connection died.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// Peer sent RST.
    Reset,
    /// Active open refused (RST in SYN-SENT).
    Refused,
    /// Retransmission limit exceeded.
    TooManyRetries,
    /// Local abort() call.
    LocalAbort,
}

/// Outputs of the socket state machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TcpEvent {
    /// Hand this complete TCP segment to IP for `dst`.
    Transmit { dst: Ipv4Addr, segment: Vec<u8> },
    /// The three-way handshake completed.
    Connected,
    /// In-order data is available to `recv`.
    DataAvailable,
    /// The peer closed its send side (FIN); reads will drain then EOF.
    PeerClosed,
    /// The connection reached CLOSED cleanly; the socket can be dropped.
    Closed,
    /// The connection died.
    Aborted(AbortReason),
}

/// Tunables. Defaults match a 4.3BSD-class TCP scaled to the simulated
/// LAN (see DESIGN.md §6 for calibration notes).
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Our advertised MSS. The Nectar datalink carries IP datagrams up
    /// to the configured network MTU; default leaves room for IP+TCP
    /// headers within a 4 KiB MTU.
    pub mss: u16,
    /// Receive buffer capacity; the advertised window comes from here.
    pub recv_buf: usize,
    /// Send buffer capacity.
    pub send_buf: usize,
    /// Compute/verify the software checksum (Figure 7's TCP vs "TCP w/o
    /// checksum").
    pub compute_checksum: bool,
    /// Nagle's algorithm (RFC 896).
    pub nagle: bool,
    /// Delayed ACK (BSD: up to 200 ms or every second segment).
    pub delayed_ack: bool,
    pub delack_timeout: SimDuration,
    /// Initial retransmission timeout before any RTT sample.
    pub rto_initial: SimDuration,
    /// RTO clamp. The BSD minimum was 500 ms; on a 100 µs-RTT LAN that
    /// would dominate every loss test, so the default here is 10 ms
    /// (recorded as a deviation in DESIGN.md).
    pub rto_min: SimDuration,
    pub rto_max: SimDuration,
    /// TIME-WAIT holds for 2×MSL.
    pub msl: SimDuration,
    /// Give up after this many consecutive retransmissions.
    pub max_retries: u32,
    /// Offer selective acknowledgements (RFC 2018). SACK is used on a
    /// connection only when *both* SYNs carried the permitted option;
    /// off by default so legacy segments stay byte-identical.
    pub sack: bool,
    /// Window-scale shift to offer in our SYN (RFC 7323), `None` to not
    /// negotiate. Scaling applies only when both sides offered it; the
    /// shift is clamped to 14 on the wire.
    pub wscale: Option<u8>,
    /// Congestion-control algorithm. The default reproduces the legacy
    /// inline behaviour exactly.
    pub cc: CcAlgorithm,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 4016, // 4 KiB MTU - 20 (IP) - 60 (max TCP header, conservative)
            recv_buf: 16 * 1024,
            send_buf: 16 * 1024,
            compute_checksum: true,
            nagle: true,
            delayed_ack: true,
            delack_timeout: SimDuration::from_millis(200),
            rto_initial: SimDuration::from_millis(100),
            rto_min: SimDuration::from_millis(10),
            rto_max: SimDuration::from_secs(60),
            msl: SimDuration::from_millis(500),
            max_retries: 12,
            sack: false,
            wscale: None,
            cc: CcAlgorithm::NewReno,
        }
    }
}

/// Per-socket counters (used by EXPERIMENTS.md reporting and tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpSocketStats {
    pub segs_out: u64,
    pub segs_in: u64,
    pub bytes_out: u64,
    pub bytes_in: u64,
    pub retransmits: u64,
    pub fast_retransmits: u64,
    pub timeouts: u64,
    pub dup_acks_in: u64,
    pub zero_window_probes: u64,
    /// Valid SACK blocks received and folded into the scoreboard.
    pub sack_blocks_in: u64,
    /// Retransmissions whose extent was shaped by the SACK scoreboard.
    pub sack_retransmits: u64,
}

impl TcpSocketStats {
    /// Fold another socket's counters into this one (lifetime
    /// aggregation across closed sockets).
    pub fn absorb(&mut self, o: &TcpSocketStats) {
        self.segs_out += o.segs_out;
        self.segs_in += o.segs_in;
        self.bytes_out += o.bytes_out;
        self.bytes_in += o.bytes_in;
        self.retransmits += o.retransmits;
        self.fast_retransmits += o.fast_retransmits;
        self.timeouts += o.timeouts;
        self.dup_acks_in += o.dup_acks_in;
        self.zero_window_probes += o.zero_window_probes;
        self.sack_blocks_in += o.sack_blocks_in;
        self.sack_retransmits += o.sack_retransmits;
    }
}
