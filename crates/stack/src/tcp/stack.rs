//! Connection demultiplexing: the piece of TCP that owns the socket
//! table, listening ports, ISN generation, and RST generation for
//! segments that match no connection.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::Ipv4Addr;

use nectar_sim::{Pcg32, SimTime};
use nectar_wire::ipv4::Ipv4Header;
use nectar_wire::tcp::{SeqNum, TcpFlags, TcpHeader};

use super::{TcpConfig, TcpEvent, TcpSocket, TcpSocketStats, TcpState};

/// Stack-wide counters: drops that happen before any socket is
/// identified, plus the accumulated stats of removed sockets so
/// lifetime totals survive `remove`.
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpStackStats {
    /// Segments discarded because the TCP header failed to parse or
    /// the checksum did not verify.
    pub checksum_drops: u64,
    /// Segments that matched no connection and were answered with RST
    /// (or silently dropped when they carried RST themselves).
    pub no_socket_drops: u64,
    /// Socket counters accumulated from sockets dropped via `remove`.
    pub closed: TcpSocketStats,
}

/// Identifies a socket within one [`TcpStack`].
pub type SocketId = u32;

/// Events produced by the stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TcpStackEvent {
    /// Hand this segment to IP.
    Transmit { dst: Ipv4Addr, segment: Vec<u8> },
    /// A socket-level event (Connected, DataAvailable, …).
    Socket { id: SocketId, event: TcpEvent },
    /// A listener accepted a new connection (completes on `Connected`).
    Incoming { id: SocketId, local_port: u16 },
    /// A segment was dropped before reaching any socket.
    Dropped,
}

/// One endpoint's TCP: socket table + listeners over a shared config.
#[derive(Debug)]
pub struct TcpStack {
    addr: Ipv4Addr,
    cfg: TcpConfig,
    sockets: BTreeMap<SocketId, TcpSocket>,
    by_tuple: HashMap<(u16, Ipv4Addr, u16), SocketId>,
    listeners: HashSet<u16>,
    next_id: SocketId,
    next_ephemeral: u16,
    isn_rng: Pcg32,
    stats: TcpStackStats,
}

impl TcpStack {
    /// `seed` drives initial sequence number generation (deterministic
    /// replay is a workspace-wide requirement).
    pub fn new(addr: Ipv4Addr, cfg: TcpConfig, seed: u64) -> Self {
        TcpStack {
            addr,
            cfg,
            sockets: BTreeMap::new(),
            by_tuple: HashMap::new(),
            listeners: HashSet::new(),
            next_id: 1,
            next_ephemeral: 32768,
            isn_rng: Pcg32::new(seed, 0x7cb),
            stats: TcpStackStats::default(),
        }
    }

    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Accept connections on `port`.
    pub fn listen(&mut self, port: u16) -> bool {
        self.listeners.insert(port)
    }

    pub fn unlisten(&mut self, port: u16) -> bool {
        self.listeners.remove(&port)
    }

    fn alloc_ephemeral(&mut self, remote: (Ipv4Addr, u16)) -> u16 {
        loop {
            let port = self.next_ephemeral;
            self.next_ephemeral =
                if self.next_ephemeral == u16::MAX { 32768 } else { self.next_ephemeral + 1 };
            if !self.by_tuple.contains_key(&(port, remote.0, remote.1))
                && !self.listeners.contains(&port)
            {
                return port;
            }
        }
    }

    /// Active open to `remote`. Returns the new socket id; the SYN goes
    /// out through the returned events.
    pub fn connect(
        &mut self,
        now: SimTime,
        remote: (Ipv4Addr, u16),
        local_port: Option<u16>,
    ) -> (SocketId, Vec<TcpStackEvent>) {
        let port = local_port.unwrap_or_else(|| self.alloc_ephemeral(remote));
        let isn = self.isn_rng.next_u32();
        let mut ev = Vec::new();
        let sock = TcpSocket::client(now, self.cfg, (self.addr, port), remote, isn, &mut ev);
        let id = self.register(sock, (port, remote.0, remote.1));
        (id, self.wrap(id, ev))
    }

    fn register(&mut self, sock: TcpSocket, tuple: (u16, Ipv4Addr, u16)) -> SocketId {
        let id = self.next_id;
        self.next_id += 1;
        self.sockets.insert(id, sock);
        self.by_tuple.insert(tuple, id);
        id
    }

    fn wrap(&mut self, id: SocketId, ev: Vec<TcpEvent>) -> Vec<TcpStackEvent> {
        let mut out = Vec::with_capacity(ev.len());
        for e in ev {
            match e {
                TcpEvent::Transmit { dst, segment } => {
                    out.push(TcpStackEvent::Transmit { dst, segment })
                }
                other => out.push(TcpStackEvent::Socket { id, event: other }),
            }
        }
        // un-route sockets that reached CLOSED (data may still be read;
        // the table entry just stops routing segments to them)
        if let Some(s) = self.sockets.get(&id) {
            if s.state() == TcpState::Closed {
                let tuple = (s.local().1, s.remote().0, s.remote().1);
                if self.by_tuple.get(&tuple) == Some(&id) {
                    self.by_tuple.remove(&tuple);
                }
            }
        }
        out
    }

    /// Process a TCP segment delivered by IP.
    pub fn on_packet(&mut self, now: SimTime, ip: &Ipv4Header, data: &[u8]) -> Vec<TcpStackEvent> {
        let hdr = match TcpHeader::parse(ip, data, self.cfg.compute_checksum) {
            Ok(h) => h,
            Err(_) => {
                self.stats.checksum_drops += 1;
                return vec![TcpStackEvent::Dropped];
            }
        };
        let payload = &data[hdr.header_len..];
        let tuple = (hdr.dst_port, ip.src, hdr.src_port);
        if let Some(&id) = self.by_tuple.get(&tuple) {
            let mut ev = Vec::new();
            if let Some(sock) = self.sockets.get_mut(&id) {
                sock.on_segment(now, &hdr, payload, &mut ev);
            }
            return self.wrap(id, ev);
        }
        // No connection. A SYN to a listening port opens one.
        if hdr.flags.contains(TcpFlags::SYN)
            && !hdr.flags.contains(TcpFlags::ACK)
            && !hdr.flags.contains(TcpFlags::RST)
            && self.listeners.contains(&hdr.dst_port)
        {
            let isn = self.isn_rng.next_u32();
            let mut ev = Vec::new();
            let sock = TcpSocket::server_from_syn(
                now,
                self.cfg,
                (self.addr, hdr.dst_port),
                (ip.src, hdr.src_port),
                &hdr,
                isn,
                &mut ev,
            );
            let id = self.register(sock, tuple);
            let mut out = vec![TcpStackEvent::Incoming { id, local_port: hdr.dst_port }];
            out.extend(self.wrap(id, ev));
            return out;
        }
        // Otherwise: RST, per RFC 793 "If the connection does not exist".
        self.stats.no_socket_drops += 1;
        if hdr.flags.contains(TcpFlags::RST) {
            return vec![TcpStackEvent::Dropped];
        }
        let mut rst = TcpHeader::new(hdr.dst_port, hdr.src_port);
        if hdr.flags.contains(TcpFlags::ACK) {
            rst.seq = hdr.ack;
            rst.flags = TcpFlags::RST;
        } else {
            rst.seq = SeqNum(0);
            let mut seg_len = payload.len();
            if hdr.flags.contains(TcpFlags::SYN) {
                seg_len += 1;
            }
            if hdr.flags.contains(TcpFlags::FIN) {
                seg_len += 1;
            }
            rst.ack = hdr.seq.add(seg_len);
            rst.flags = TcpFlags::RST | TcpFlags::ACK;
        }
        let segment = rst.build(self.addr, ip.src, &[], self.cfg.compute_checksum);
        vec![TcpStackEvent::Transmit { dst: ip.src, segment }]
    }

    /// Queue data on a socket. Returns bytes accepted and any segments.
    pub fn send(&mut self, now: SimTime, id: SocketId, data: &[u8]) -> (usize, Vec<TcpStackEvent>) {
        let mut ev = Vec::new();
        let n = match self.sockets.get_mut(&id) {
            Some(s) => s.send(now, data, &mut ev),
            None => 0,
        };
        (n, self.wrap(id, ev))
    }

    /// Read in-order data from a socket.
    pub fn recv(&mut self, id: SocketId, max: usize) -> Vec<u8> {
        self.sockets.get_mut(&id).map(|s| s.recv(max)).unwrap_or_default()
    }

    /// Close the send side of a socket.
    pub fn close(&mut self, now: SimTime, id: SocketId) -> Vec<TcpStackEvent> {
        let mut ev = Vec::new();
        if let Some(s) = self.sockets.get_mut(&id) {
            s.close(now, &mut ev);
        }
        self.wrap(id, ev)
    }

    /// Abort a socket with RST.
    pub fn abort(&mut self, now: SimTime, id: SocketId) -> Vec<TcpStackEvent> {
        let mut ev = Vec::new();
        if let Some(s) = self.sockets.get_mut(&id) {
            s.abort(now, &mut ev);
        }
        self.wrap(id, ev)
    }

    /// Drop a socket the application is done with. Its counters are
    /// folded into [`TcpStackStats::closed`] so lifetime totals (and
    /// the observability snapshot) survive socket teardown.
    pub fn remove(&mut self, id: SocketId) {
        if let Some(s) = self.sockets.remove(&id) {
            self.stats.closed.absorb(s.stats());
            let tuple = (s.local().1, s.remote().0, s.remote().1);
            if self.by_tuple.get(&tuple) == Some(&id) {
                self.by_tuple.remove(&tuple);
            }
        }
    }

    /// Fire timers on every socket.
    pub fn poll(&mut self, now: SimTime) -> Vec<TcpStackEvent> {
        let ids: Vec<SocketId> = self.sockets.keys().copied().collect();
        let mut out = Vec::new();
        for id in ids {
            let mut ev = Vec::new();
            if let Some(s) = self.sockets.get_mut(&id) {
                s.poll(now, &mut ev);
            }
            out.extend(self.wrap(id, ev));
        }
        out
    }

    /// Earliest timer deadline across all sockets.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.sockets.values().filter_map(|s| s.next_wakeup()).min()
    }

    /// Direct access (tests and diagnostics).
    pub fn socket(&self, id: SocketId) -> Option<&TcpSocket> {
        self.sockets.get(&id)
    }

    pub fn socket_count(&self) -> usize {
        self.sockets.len()
    }

    /// Iterate all live sockets in `SocketId` order (tests and
    /// diagnostics).
    pub fn sockets(&self) -> impl Iterator<Item = (&SocketId, &TcpSocket)> {
        self.sockets.iter()
    }

    /// Stack-level counters (pre-demux drops + closed-socket totals).
    pub fn stats(&self) -> &TcpStackStats {
        &self.stats
    }

    /// Lifetime socket counters: every live socket plus everything
    /// accumulated from removed ones.
    pub fn total_socket_stats(&self) -> TcpSocketStats {
        let mut total = self.stats.closed;
        for s in self.sockets.values() {
            total.absorb(s.stats());
        }
        total
    }
}
