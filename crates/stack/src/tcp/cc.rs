//! Pluggable congestion control.
//!
//! The socket historically ran Tahoe inline (slow start, congestion
//! avoidance, collapse-to-one-MSS on any loss signal). That arithmetic
//! now lives behind the [`CongestionControl`] trait so the loss
//! response is selectable per connection: [`NewReno`] reproduces the
//! legacy behaviour bit-for-bit (keeping every pinned fixture and
//! conformance script stable), and [`Cubic`] implements RFC 8312's
//! window growth for the fast-path experiments.
//!
//! The socket owns `cwnd`/`ssthresh` and passes them in as a
//! [`CcState`]; algorithms keep only their private epoch state. All
//! arithmetic is deterministic — `Cubic` uses fixed-point-free `f64`
//! only on values derived from simulated time and byte counts, so
//! same-seed runs reproduce exactly.

use nectar_sim::SimTime;

/// Which congestion-control algorithm a socket runs. Selected by
/// `TcpConfig::cc`; part of the copyable config so worlds and sweeps
/// can flip it wholesale.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CcAlgorithm {
    /// Legacy behaviour: slow start + congestion avoidance with a
    /// Tahoe-style collapse to one MSS on fast retransmit and RTO.
    #[default]
    NewReno,
    /// RFC 8312 CUBIC window growth (β = 0.7, C = 0.4).
    Cubic,
}

/// The window variables the socket shares with its algorithm.
#[derive(Clone, Copy, Debug)]
pub struct CcState {
    /// Congestion window, bytes.
    pub cwnd: u32,
    /// Slow-start threshold, bytes.
    pub ssthresh: u32,
}

/// One congestion-control algorithm. Implementations mutate
/// `CcState` in place; the socket copies the result back into its own
/// fields after each call.
pub trait CongestionControl: std::fmt::Debug {
    /// New data was cumulatively acknowledged (`acked` bytes).
    fn on_ack(&mut self, s: &mut CcState, now: SimTime, acked: u32, mss: u32);
    /// Loss inferred from three duplicate ACKs (fast retransmit).
    /// `flight` is the number of bytes outstanding.
    fn on_loss(&mut self, s: &mut CcState, now: SimTime, flight: u32, mss: u32);
    /// The retransmission timer fired.
    fn on_timeout(&mut self, s: &mut CcState, now: SimTime, flight: u32, mss: u32);
}

/// Construct the algorithm for a config selection.
pub fn make(alg: CcAlgorithm) -> Box<dyn CongestionControl> {
    match alg {
        CcAlgorithm::NewReno => Box::new(NewReno),
        CcAlgorithm::Cubic => Box::new(Cubic::default()),
    }
}

/// The default algorithm. Growth is standard slow start / congestion
/// avoidance; the loss response is the Tahoe-style collapse the stack
/// has always used (`ssthresh = flight/2`, `cwnd = 1 MSS`), kept
/// byte-identical so the pinned metric fixtures don't move.
#[derive(Clone, Copy, Debug, Default)]
pub struct NewReno;

impl CongestionControl for NewReno {
    fn on_ack(&mut self, s: &mut CcState, _now: SimTime, _acked: u32, mss: u32) {
        if s.cwnd < s.ssthresh {
            s.cwnd = s.cwnd.saturating_add(mss);
        } else {
            s.cwnd = s.cwnd.saturating_add((mss * mss / s.cwnd).max(1));
        }
    }

    fn on_loss(&mut self, s: &mut CcState, _now: SimTime, flight: u32, mss: u32) {
        s.ssthresh = (flight / 2).max(2 * mss);
        s.cwnd = mss;
    }

    fn on_timeout(&mut self, s: &mut CcState, now: SimTime, flight: u32, mss: u32) {
        self.on_loss(s, now, flight, mss);
    }
}

/// RFC 8312 CUBIC constants.
const CUBIC_BETA: f64 = 0.7;
const CUBIC_C: f64 = 0.4;

/// CUBIC (RFC 8312). Window growth in congestion avoidance follows
/// `W(t) = C·(t − K)³ + W_max` (in MSS units), concave up to the
/// pre-loss window and convex beyond it. Slow start is unchanged.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cubic {
    /// Window (MSS units) at the last loss event.
    w_max: f64,
    /// Time (seconds from the epoch) at which W(t) regains `w_max`.
    k: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch: Option<SimTime>,
}

impl Cubic {
    fn enter_epoch(&mut self, now: SimTime, cwnd_mss: f64) {
        if self.w_max < cwnd_mss {
            self.w_max = cwnd_mss;
        }
        self.k = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
        self.epoch = Some(now);
    }
}

impl CongestionControl for Cubic {
    fn on_ack(&mut self, s: &mut CcState, now: SimTime, _acked: u32, mss: u32) {
        if s.cwnd < s.ssthresh {
            s.cwnd = s.cwnd.saturating_add(mss);
            self.epoch = None;
            return;
        }
        let mssf = mss as f64;
        let cwnd_mss = s.cwnd as f64 / mssf;
        let epoch = match self.epoch {
            Some(e) => e,
            None => {
                // first CA ack of this epoch: grow from the current
                // window (no prior loss ⇒ pure convex probing)
                self.enter_epoch(now, cwnd_mss);
                now
            }
        };
        let t = now.saturating_since(epoch).as_nanos() as f64 / 1e9;
        let target_mss = CUBIC_C * (t - self.k).powi(3) + self.w_max;
        if target_mss > cwnd_mss {
            // close the gap to the cubic target, at least one byte, at
            // most one MSS per ack (keeps growth ack-clocked)
            let inc = ((target_mss - cwnd_mss) / cwnd_mss * mssf).clamp(1.0, mssf);
            s.cwnd = s.cwnd.saturating_add(inc as u32);
        } else {
            // TCP-friendly region: fall back to Reno-style growth
            s.cwnd = s.cwnd.saturating_add((mss * mss / s.cwnd).max(1));
        }
    }

    fn on_loss(&mut self, s: &mut CcState, now: SimTime, _flight: u32, mss: u32) {
        let cwnd_mss = s.cwnd as f64 / mss as f64;
        self.w_max = cwnd_mss;
        self.k = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
        self.epoch = Some(now);
        let reduced = ((s.cwnd as f64 * CUBIC_BETA) as u32).max(2 * mss);
        s.ssthresh = reduced;
        s.cwnd = reduced;
    }

    fn on_timeout(&mut self, s: &mut CcState, _now: SimTime, _flight: u32, mss: u32) {
        // an RTO restarts slow start; remember the pre-loss window so
        // the next CA epoch is concave toward it
        self.w_max = s.cwnd as f64 / mss as f64;
        self.epoch = None;
        s.ssthresh = ((s.cwnd as f64 * CUBIC_BETA) as u32).max(2 * mss);
        s.cwnd = mss;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + nectar_sim::SimDuration::from_micros(us)
    }

    #[test]
    fn newreno_matches_legacy_tahoe_arithmetic() {
        let mut a = NewReno;
        let mut s = CcState { cwnd: 8032, ssthresh: u32::MAX / 2 };
        // slow start: += mss
        a.on_ack(&mut s, t(0), 4016, 4016);
        assert_eq!(s.cwnd, 8032 + 4016);
        // loss: ssthresh = flight/2 (floored at 2*mss), cwnd = mss
        a.on_loss(&mut s, t(1), 20_000, 4016);
        assert_eq!(s.ssthresh, 10_000);
        assert_eq!(s.cwnd, 4016);
        // congestion avoidance: += max(mss²/cwnd, 1)
        s.cwnd = 12_000;
        s.ssthresh = 10_000;
        a.on_ack(&mut s, t(2), 4016, 4016);
        assert_eq!(s.cwnd, 12_000 + 4016u32 * 4016 / 12_000);
        // timeout response identical to loss
        a.on_timeout(&mut s, t(3), 4016, 4016);
        assert_eq!(s.ssthresh, 2 * 4016);
        assert_eq!(s.cwnd, 4016);
    }

    #[test]
    fn cubic_reduces_by_beta_and_regrows_toward_wmax() {
        let mut a = Cubic::default();
        let mss = 1000u32;
        let mut s = CcState { cwnd: 10_000, ssthresh: 8_000 };
        a.on_loss(&mut s, t(0), 10_000, mss);
        assert_eq!(s.cwnd, 7_000);
        assert_eq!(s.ssthresh, 7_000);
        // growth is monotone and eventually exceeds the pre-loss window
        let mut prev = s.cwnd;
        let mut recovered = false;
        for i in 1..200_000u64 {
            a.on_ack(&mut s, t(i * 100), mss, mss);
            assert!(s.cwnd >= prev, "cwnd shrank on ack");
            prev = s.cwnd;
            if s.cwnd > 10_000 {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "cubic never regrew past w_max (cwnd {})", s.cwnd);
    }

    #[test]
    fn cubic_timeout_collapses_to_one_mss() {
        let mut a = Cubic::default();
        let mss = 1000u32;
        let mut s = CcState { cwnd: 9_000, ssthresh: 5_000 };
        a.on_timeout(&mut s, t(5), 9_000, mss);
        assert_eq!(s.cwnd, mss);
        assert_eq!(s.ssthresh, (9_000f64 * 0.7) as u32);
    }
}
