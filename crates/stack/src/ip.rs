//! The IPv4 endpoint: output with fragmentation, input with reassembly.
//!
//! §4.1 of the paper: "IP input processing is performed at interrupt
//! time. … IP uses this opportunity to perform a sanity check of the IP
//! header (including computation of the IP header checksum). … the IP
//! input handler queues packets for reassembly if they are fragments of
//! a larger datagram. The handler transfers complete datagrams to the
//! input mailbox of the appropriate higher-level protocol."
//!
//! The send interface mirrors `IP_Output`: "higher protocols are
//! expected to call IP_Output with a header template, a reference to
//! the data they wish to send" — here [`IpEndpoint::output`] takes the
//! template fields and returns the packets (possibly fragmented to the
//! MTU) ready for the datalink layer.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use nectar_sim::{SimDuration, SimTime};
use nectar_wire::ipv4::{IpProtocol, Ipv4Header, HEADER_LEN};
use nectar_wire::WireError;

/// Default time a partially reassembled datagram may wait for its
/// missing fragments (RFC 791 suggests 15 s; BSD used 30 s half-life —
/// we keep it short because simulated experiments run for seconds).
pub const DEFAULT_REASSEMBLY_TIMEOUT: SimDuration = SimDuration::from_secs(5);

/// Default cap on concurrent reassembly contexts per endpoint. Chaos
/// corruption can strand partial datagrams until the timeout; without a
/// cap a burst of corrupted tails leaks a context per datagram for the
/// full 5 s window.
pub const DEFAULT_REASSEMBLY_MAX_CONTEXTS: usize = 32;

/// Default cap on total buffered fragment bytes per endpoint.
pub const DEFAULT_REASSEMBLY_MAX_BYTES: usize = 256 * 1024;

/// Outcome of feeding one received IP packet to the endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IpInput {
    /// A complete datagram for a higher protocol: header (of the first
    /// fragment, with fragmentation fields cleared) plus full payload.
    Delivered { header: Ipv4Header, payload: Vec<u8> },
    /// A fragment was absorbed; the datagram is still incomplete.
    FragmentHeld,
    /// The packet was not for this endpoint (wrong destination); the
    /// caller may forward or drop. Nectar CABs do not route IP, so the
    /// CAB drops and counts these.
    NotForUs,
    /// Parse or checksum failure; dropped.
    Bad(WireError),
}

/// A reassembly context that timed out, for ICMP Time Exceeded
/// generation (only if fragment zero arrived, per RFC 792).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReassemblyExpiry {
    pub src: Ipv4Addr,
    /// IP header + first 8 payload bytes of fragment zero, if we have
    /// them (the ICMP error quotes these).
    pub original: Option<Vec<u8>>,
}

#[derive(Clone, Debug)]
struct Reassembly {
    /// Received fragment ranges as (offset, bytes).
    fragments: Vec<(usize, Vec<u8>)>,
    /// Total length once the last fragment (more_frags = false) arrives.
    total_len: Option<usize>,
    /// Header of fragment zero (carried into the delivered datagram).
    first_header: Option<Ipv4Header>,
    /// IP header + 8 payload bytes of fragment zero for ICMP errors.
    quote: Option<Vec<u8>>,
    deadline: SimTime,
    /// Creation order, for deterministic oldest-first eviction
    /// (HashMap iteration order must never decide who gets dropped).
    arrival: u64,
}

impl Reassembly {
    fn new(deadline: SimTime, arrival: u64) -> Self {
        Reassembly {
            fragments: Vec::new(),
            total_len: None,
            first_header: None,
            quote: None,
            deadline,
            arrival,
        }
    }

    /// Bytes currently buffered in this context.
    fn bytes(&self) -> usize {
        self.fragments.iter().map(|(_, d)| d.len()).sum()
    }

    /// True when every byte of [0, total_len) is covered.
    fn complete(&self) -> Option<usize> {
        let total = self.total_len?;
        self.first_header?;
        let mut covered = 0usize;
        // fragments kept sorted by offset with no overlaps (trimmed on
        // insert)
        for &(off, ref data) in &self.fragments {
            if off > covered {
                return None; // hole
            }
            covered = covered.max(off + data.len());
        }
        if covered >= total {
            Some(total)
        } else {
            None
        }
    }

    fn insert(&mut self, offset: usize, data: Vec<u8>) {
        // First arrival wins, as in BSD: existing bytes are kept and
        // the incoming fragment contributes every sub-range not already
        // covered. Re-splitting (rather than truncating at the first
        // later fragment's head) matters when one fragment spans
        // several existing ones with holes between them: the bytes
        // past the first overlap must still land in their holes.
        let end = offset + data.len();
        let mut pieces: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut cursor = offset;
        for &(eoff, ref edata) in &self.fragments {
            let eend = eoff + edata.len();
            if eend <= cursor {
                continue;
            }
            if eoff >= end {
                break;
            }
            if eoff > cursor {
                pieces.push((cursor, data[cursor - offset..eoff - offset].to_vec()));
            }
            cursor = eend;
            if cursor >= end {
                break;
            }
        }
        if cursor < end {
            pieces.push((cursor, data[cursor - offset..].to_vec()));
        }
        for (off, piece) in pieces {
            let at = self.fragments.partition_point(|&(eoff, _)| eoff < off);
            self.fragments.insert(at, (off, piece));
        }
        if crate::conform::enabled() {
            crate::conform::check_reassembly(&self.fragments, self.total_len, offset, end);
        }
    }

    fn assemble(&self, total: usize) -> Vec<u8> {
        let mut out = vec![0u8; total];
        for &(off, ref data) in &self.fragments {
            let end = (off + data.len()).min(total);
            if off < total {
                out[off..end].copy_from_slice(&data[..end - off]);
            }
        }
        out
    }
}

/// Per-endpoint counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct IpStats {
    pub delivered: u64,
    pub fragments_in: u64,
    pub fragmented_out: u64,
    pub packets_out: u64,
    pub bad: u64,
    pub not_for_us: u64,
    pub reassembly_expired: u64,
    /// Contexts evicted by the max-contexts/max-bytes caps.
    pub reassembly_dropped: u64,
}

/// One host's IPv4 endpoint.
#[derive(Debug)]
pub struct IpEndpoint {
    addr: Ipv4Addr,
    next_ident: u16,
    reassembly: HashMap<(Ipv4Addr, u16, u8), Reassembly>,
    reassembly_timeout: SimDuration,
    reassembly_max_contexts: usize,
    reassembly_max_bytes: usize,
    /// Monotone arrival stamp handed to new reassembly contexts.
    next_arrival: u64,
    stats: IpStats,
}

impl IpEndpoint {
    pub fn new(addr: Ipv4Addr) -> Self {
        IpEndpoint {
            addr,
            next_ident: 1,
            reassembly: HashMap::new(),
            reassembly_timeout: DEFAULT_REASSEMBLY_TIMEOUT,
            reassembly_max_contexts: DEFAULT_REASSEMBLY_MAX_CONTEXTS,
            reassembly_max_bytes: DEFAULT_REASSEMBLY_MAX_BYTES,
            next_arrival: 0,
            stats: IpStats::default(),
        }
    }

    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    pub fn stats(&self) -> &IpStats {
        &self.stats
    }

    pub fn set_reassembly_timeout(&mut self, t: SimDuration) {
        self.reassembly_timeout = t;
    }

    /// Bound reassembly memory: at most `contexts` concurrent partial
    /// datagrams and `bytes` total buffered fragment bytes; the oldest
    /// context is evicted first when either cap is exceeded.
    pub fn set_reassembly_caps(&mut self, contexts: usize, bytes: usize) {
        self.reassembly_max_contexts = contexts.max(1);
        self.reassembly_max_bytes = bytes;
    }

    /// IP_Output: wrap `payload` for `dst`, fragmenting to `mtu` (the
    /// datalink payload limit) if needed. Returns complete IP packets.
    pub fn output(
        &mut self,
        dst: Ipv4Addr,
        protocol: IpProtocol,
        payload: &[u8],
        mtu: usize,
    ) -> Vec<Vec<u8>> {
        assert!(mtu > HEADER_LEN, "MTU must exceed the IP header");
        let ident = self.next_ident;
        self.next_ident = self.next_ident.wrapping_add(1).max(1);

        let max_data = mtu - HEADER_LEN;
        if payload.len() <= max_data {
            let mut h = Ipv4Header::new(self.addr, dst, protocol, payload.len());
            h.ident = ident;
            self.stats.packets_out += 1;
            return vec![h.build_packet(payload)];
        }

        // Fragment: every non-final fragment's data length must be a
        // multiple of 8.
        let frag_data = max_data & !7;
        assert!(frag_data > 0, "MTU too small to fragment");
        let mut packets = Vec::new();
        let mut offset = 0usize;
        while offset < payload.len() {
            let end = (offset + frag_data).min(payload.len());
            let chunk = &payload[offset..end];
            let mut h = Ipv4Header::new(self.addr, dst, protocol, chunk.len());
            h.ident = ident;
            h.frag_offset = offset as u16;
            h.more_frags = end < payload.len();
            packets.push(h.build_packet(chunk));
            offset = end;
        }
        self.stats.packets_out += packets.len() as u64;
        self.stats.fragmented_out += 1;
        packets
    }

    /// IP input processing: validate, absorb fragments, deliver complete
    /// datagrams.
    pub fn input(&mut self, now: SimTime, packet: &[u8]) -> IpInput {
        let header = match Ipv4Header::parse(packet) {
            Ok(h) => h,
            Err(e) => {
                self.stats.bad += 1;
                return IpInput::Bad(e);
            }
        };
        if header.dst != self.addr {
            self.stats.not_for_us += 1;
            return IpInput::NotForUs;
        }
        let payload = &packet[HEADER_LEN..header.total_len as usize];

        if !header.more_frags && header.frag_offset == 0 {
            // The common, unfragmented case.
            self.stats.delivered += 1;
            return IpInput::Delivered { header, payload: payload.to_vec() };
        }

        self.stats.fragments_in += 1;
        let key = (header.src, header.ident, header.protocol.0);
        if !self.reassembly.contains_key(&key) {
            let deadline = now + self.reassembly_timeout;
            self.reassembly.insert(key, Reassembly::new(deadline, self.next_arrival));
            self.next_arrival += 1;
        }
        let entry = self.reassembly.get_mut(&key).expect("just inserted");
        entry.insert(header.frag_offset as usize, payload.to_vec());
        if header.frag_offset == 0 {
            let mut h = header;
            h.more_frags = false;
            h.frag_offset = 0;
            entry.first_header = Some(h);
            let quote_len = (HEADER_LEN + 8).min(packet.len());
            entry.quote = Some(packet[..quote_len].to_vec());
        }
        if !header.more_frags {
            entry.total_len = Some(header.frag_offset as usize + payload.len());
        }
        if let Some(total) = entry.complete() {
            let entry = self.reassembly.remove(&key).expect("entry exists");
            let payload = entry.assemble(total);
            let mut h = entry.first_header.expect("checked by complete()");
            h.total_len = (HEADER_LEN + total) as u16;
            self.stats.delivered += 1;
            IpInput::Delivered { header: h, payload }
        } else {
            self.enforce_reassembly_caps();
            IpInput::FragmentHeld
        }
    }

    /// Evict oldest-first until both reassembly caps hold. Eviction
    /// order is the deterministic arrival stamp, never HashMap order.
    fn enforce_reassembly_caps(&mut self) {
        loop {
            let over_contexts = self.reassembly.len() > self.reassembly_max_contexts;
            let over_bytes = self.reassembly.values().map(Reassembly::bytes).sum::<usize>()
                > self.reassembly_max_bytes;
            if !over_contexts && !over_bytes {
                return;
            }
            let Some((&key, _)) = self.reassembly.iter().min_by_key(|(_, r)| r.arrival) else {
                return;
            };
            self.reassembly.remove(&key);
            self.stats.reassembly_dropped += 1;
        }
    }

    /// Expire overdue reassembly contexts. Returns expiry records so the
    /// caller can emit ICMP Time Exceeded where fragment zero arrived.
    pub fn poll_expired(&mut self, now: SimTime) -> Vec<ReassemblyExpiry> {
        let mut expired = Vec::new();
        self.reassembly.retain(|&(src, _, _), entry| {
            if now >= entry.deadline {
                expired.push(ReassemblyExpiry { src, original: entry.quote.clone() });
                false
            } else {
                true
            }
        });
        // Determinism: HashMap iteration order is arbitrary; sort by src.
        expired.sort_by_key(|e| e.src);
        self.stats.reassembly_expired += expired.len() as u64;
        expired
    }

    /// The next instant at which [`Self::poll_expired`] could have work.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.reassembly.values().map(|r| r.deadline).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    fn now() -> SimTime {
        SimTime::from_nanos(1_000_000)
    }

    #[test]
    fn unfragmented_roundtrip() {
        let mut tx = IpEndpoint::new(a(1));
        let mut rx = IpEndpoint::new(a(2));
        let payload = b"a small datagram".to_vec();
        let pkts = tx.output(a(2), IpProtocol::UDP, &payload, 1500);
        assert_eq!(pkts.len(), 1);
        match rx.input(now(), &pkts[0]) {
            IpInput::Delivered { header, payload: p } => {
                assert_eq!(header.src, a(1));
                assert_eq!(header.protocol, IpProtocol::UDP);
                assert_eq!(p, payload);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(rx.stats().delivered, 1);
    }

    #[test]
    fn fragmentation_and_reassembly() {
        let mut tx = IpEndpoint::new(a(1));
        let mut rx = IpEndpoint::new(a(2));
        let payload: Vec<u8> = (0..4000u32).map(|i| i as u8).collect();
        let pkts = tx.output(a(2), IpProtocol::UDP, &payload, 576);
        assert!(pkts.len() > 1);
        // every non-final fragment's payload is a multiple of 8
        for p in &pkts[..pkts.len() - 1] {
            let h = Ipv4Header::parse(p).unwrap();
            assert!(h.more_frags);
            assert_eq!(h.payload_len() % 8, 0);
        }
        let mut delivered = None;
        for p in &pkts {
            match rx.input(now(), p) {
                IpInput::Delivered { payload, .. } => delivered = Some(payload),
                IpInput::FragmentHeld => {}
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert_eq!(delivered.unwrap(), payload);
        assert_eq!(tx.stats().fragmented_out, 1);
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut tx = IpEndpoint::new(a(1));
        let mut rx = IpEndpoint::new(a(2));
        let payload: Vec<u8> = (0..3000u32).map(|i| (i * 7) as u8).collect();
        let mut pkts = tx.output(a(2), IpProtocol::TCP, &payload, 576);
        pkts.reverse();
        let mut delivered = None;
        for p in &pkts {
            if let IpInput::Delivered { payload, .. } = rx.input(now(), p) {
                delivered = Some(payload);
            }
        }
        assert_eq!(delivered.unwrap(), payload);
    }

    #[test]
    fn duplicate_fragments_harmless() {
        let mut tx = IpEndpoint::new(a(1));
        let mut rx = IpEndpoint::new(a(2));
        let payload: Vec<u8> = (0..2000u32).map(|i| i as u8).collect();
        let pkts = tx.output(a(2), IpProtocol::UDP, &payload, 576);
        // feed everything except the last, twice
        for p in &pkts[..pkts.len() - 1] {
            assert_eq!(rx.input(now(), p), IpInput::FragmentHeld);
            assert_eq!(rx.input(now(), p), IpInput::FragmentHeld);
        }
        match rx.input(now(), pkts.last().unwrap()) {
            IpInput::Delivered { payload: p, .. } => assert_eq!(p, payload),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn interleaved_datagrams_keep_separate_contexts() {
        let mut tx1 = IpEndpoint::new(a(1));
        let mut tx3 = IpEndpoint::new(a(3));
        let mut rx = IpEndpoint::new(a(2));
        let pay1: Vec<u8> = vec![0xAA; 1500];
        let pay3: Vec<u8> = vec![0xBB; 1500];
        let p1 = tx1.output(a(2), IpProtocol::UDP, &pay1, 576);
        let p3 = tx3.output(a(2), IpProtocol::UDP, &pay3, 576);
        let mut got = Vec::new();
        for (x, y) in p1.iter().zip(&p3) {
            for p in [x, y] {
                if let IpInput::Delivered { payload, header } = rx.input(now(), p) {
                    got.push((header.src, payload));
                }
            }
        }
        assert_eq!(got.len(), 2);
        for (src, payload) in got {
            if src == a(1) {
                assert_eq!(payload, pay1);
            } else {
                assert_eq!(payload, pay3);
            }
        }
    }

    #[test]
    fn reassembly_timeout_expires_and_quotes_fragment_zero() {
        let mut tx = IpEndpoint::new(a(1));
        let mut rx = IpEndpoint::new(a(2));
        rx.set_reassembly_timeout(SimDuration::from_millis(10));
        let payload = vec![1u8; 2000];
        let pkts = tx.output(a(2), IpProtocol::UDP, &payload, 576);
        // only fragment zero arrives
        assert_eq!(rx.input(now(), &pkts[0]), IpInput::FragmentHeld);
        assert!(rx.next_wakeup().is_some());
        let not_yet = rx.poll_expired(now() + SimDuration::from_millis(5));
        assert!(not_yet.is_empty());
        let expired = rx.poll_expired(now() + SimDuration::from_millis(10));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].src, a(1));
        let quote = expired[0].original.as_ref().unwrap();
        assert_eq!(quote.len(), HEADER_LEN + 8);
        assert!(rx.next_wakeup().is_none());
        assert_eq!(rx.stats().reassembly_expired, 1);
    }

    #[test]
    fn timeout_without_fragment_zero_has_no_quote() {
        let mut tx = IpEndpoint::new(a(1));
        let mut rx = IpEndpoint::new(a(2));
        rx.set_reassembly_timeout(SimDuration::from_millis(10));
        let pkts = tx.output(a(2), IpProtocol::UDP, &vec![1u8; 2000], 576);
        assert_eq!(rx.input(now(), &pkts[1]), IpInput::FragmentHeld);
        let expired = rx.poll_expired(now() + SimDuration::from_secs(1));
        assert_eq!(expired.len(), 1);
        assert!(expired[0].original.is_none());
    }

    #[test]
    fn wrong_destination_and_corruption() {
        let mut tx = IpEndpoint::new(a(1));
        let mut rx = IpEndpoint::new(a(2));
        let pkts = tx.output(a(9), IpProtocol::UDP, b"x", 1500);
        assert_eq!(rx.input(now(), &pkts[0]), IpInput::NotForUs);
        let mut bad = tx.output(a(2), IpProtocol::UDP, b"y", 1500).remove(0);
        bad[9] ^= 0xff;
        assert!(matches!(rx.input(now(), &bad), IpInput::Bad(WireError::BadChecksum)));
        assert_eq!(rx.stats().bad, 1);
        assert_eq!(rx.stats().not_for_us, 1);
    }

    #[test]
    fn ident_increments_and_skips_zero() {
        let mut tx = IpEndpoint::new(a(1));
        tx.next_ident = u16::MAX;
        let p1 = tx.output(a(2), IpProtocol::UDP, b"x", 1500);
        let h1 = Ipv4Header::parse(&p1[0]).unwrap();
        assert_eq!(h1.ident, u16::MAX);
        let p2 = tx.output(a(2), IpProtocol::UDP, b"x", 1500);
        let h2 = Ipv4Header::parse(&p2[0]).unwrap();
        assert_eq!(h2.ident, 1); // wrapped past 0
    }

    #[test]
    fn spanning_fragment_fills_holes_past_first_overlap() {
        // Regression for the tail-trim data loss: fragments [8,16) and
        // [24,32) arrive first, then one fragment [0,32) spanning both
        // with holes at [0,8) and [16,24). The old insert truncated the
        // spanning fragment at the *first* later fragment's head (off
        // 8), silently discarding the bytes for the second hole — the
        // datagram could then never complete.
        let mut rx = IpEndpoint::new(a(2));
        let mk = |off: u16, more: bool, fill: u8, len: usize| {
            let mut h = Ipv4Header::new(a(1), a(2), IpProtocol::UDP, len);
            h.ident = 7;
            h.frag_offset = off;
            h.more_frags = more;
            h.build_packet(&vec![fill; len])
        };
        assert_eq!(rx.input(now(), &mk(8, true, 0xAA, 8)), IpInput::FragmentHeld);
        assert_eq!(rx.input(now(), &mk(24, false, 0xBB, 8)), IpInput::FragmentHeld);
        match rx.input(now(), &mk(0, true, 0xCC, 32)) {
            IpInput::Delivered { payload, .. } => {
                assert_eq!(payload.len(), 32);
                assert!(payload[0..8].iter().all(|&b| b == 0xCC));
                assert!(payload[8..16].iter().all(|&b| b == 0xAA), "first arrival wins");
                assert!(payload[16..24].iter().all(|&b| b == 0xCC), "hole past first overlap");
                assert!(payload[24..32].iter().all(|&b| b == 0xBB));
            }
            other => panic!("datagram must complete, got {other:?}"),
        }
    }

    #[test]
    fn reassembly_caps_evict_oldest_context() {
        let mut rx = IpEndpoint::new(a(9));
        rx.set_reassembly_caps(2, usize::MAX);
        let mut partial = |src: u8, ident: u16| {
            let mut tx = IpEndpoint::new(a(src));
            tx.next_ident = ident;
            let pkts = tx.output(a(9), IpProtocol::UDP, &vec![src; 2000], 576);
            assert_eq!(rx.input(now(), &pkts[0]), IpInput::FragmentHeld);
            pkts
        };
        let first = partial(1, 100);
        let _second = partial(3, 200);
        let _third = partial(4, 300); // over the cap: evicts src 1's context
        assert_eq!(rx.stats().reassembly_dropped, 1);
        // the evicted datagram can no longer complete from its tail
        // alone: fragment zero is gone
        for p in &first[1..] {
            assert!(
                matches!(rx.input(now(), p), IpInput::FragmentHeld),
                "evicted context must have forgotten fragment zero"
            );
        }
        // ...and the cap still holds
        assert!(rx.reassembly.len() <= 2 + 1, "cap enforced (plus the re-opened context)");
    }

    #[test]
    fn reassembly_byte_cap_bounds_buffered_bytes() {
        let mut rx = IpEndpoint::new(a(9));
        rx.set_reassembly_caps(usize::MAX, 4096);
        // five partial datagrams of ~1.5 KiB buffered each: the byte cap
        // forces the oldest out
        for src in 1..=5u8 {
            let mut tx = IpEndpoint::new(a(src));
            let pkts = tx.output(a(9), IpProtocol::UDP, &vec![src; 2000], 1536);
            assert_eq!(rx.input(now(), &pkts[0]), IpInput::FragmentHeld);
        }
        assert!(rx.stats().reassembly_dropped >= 1);
        let buffered: usize = rx.reassembly.values().map(Reassembly::bytes).sum();
        assert!(buffered <= 4096, "buffered {buffered} bytes exceed the cap");
    }

    #[test]
    fn overlapping_fragments_first_arrival_wins() {
        // Craft overlapping fragments by hand.
        let mut rx = IpEndpoint::new(a(2));
        let mk = |off: u16, more: bool, fill: u8, len: usize| {
            let mut h = Ipv4Header::new(a(1), a(2), IpProtocol::UDP, len);
            h.ident = 42;
            h.frag_offset = off;
            h.more_frags = more;
            h.build_packet(&vec![fill; len])
        };
        // [0,16) arrives first with AA, then [8,24) with BB (overlap 8..16)
        assert_eq!(rx.input(now(), &mk(0, true, 0xAA, 16)), IpInput::FragmentHeld);
        match rx.input(now(), &mk(8, false, 0xBB, 16)) {
            IpInput::Delivered { payload, .. } => {
                assert_eq!(payload.len(), 24);
                assert!(payload[..16].iter().all(|&b| b == 0xAA));
                assert!(payload[16..].iter().all(|&b| b == 0xBB));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
