//! Protocol engines for the Nectar reproduction.
//!
//! §4 of the paper implements "several transport protocols on the CAB,
//! including TCP/IP and a set of Nectar-specific transport protocols"
//! providing "datagram, reliable message, and request-response
//! communication". This crate holds those protocols as *pure,
//! simulation-agnostic state machines* in the smoltcp style: every
//! engine is driven by explicit calls carrying the current time and
//! input bytes, and produces actions (segments to transmit, data to
//! deliver, timers to arm) instead of doing I/O.
//!
//! That purity is what lets the same TCP/IP code run in two places, as
//! it did in the original system: on the CAB (§5.2, protocol engine
//! mode) and on the host (§5.1, network device mode with the Berkeley
//! stack on the host).
//!
//! * [`ip`] — IPv4 endpoint: output path with fragmentation, input path
//!   with validation and reassembly (§4.1).
//! * [`icmp`] — echo responder and error generation (ICMP runs as a
//!   mailbox upcall on the CAB).
//! * [`udp`] — port demultiplexing over IP.
//! * [`tcp`] — the full TCP state machine (§4.2): handshake, sliding
//!   window, Jacobson/Karels RTT estimation with Karn's rule, Tahoe
//!   congestion control, delayed ACK, zero-window probing, and the
//!   checksum-off experimental mode of Figure 7.
//! * [`rmp`] — the Nectar reliable message protocol, "a simple
//!   stop-and-wait protocol".
//! * [`reqresp`] — the Nectar request-response protocol, "the transport
//!   mechanism for client-server RPC calls".
//! * [`conform`] — the conformance oracle: always-on protocol invariant
//!   monitors for simulation builds plus the packetdrill-style `.pkt`
//!   script interpreter (DESIGN.md §11).
//! * [`collective`] — CAB-resident collectives: multicast fan-out down
//!   source-rooted trees, log-depth tree barrier, and reduction
//!   combining at interior CABs (DESIGN.md §16).

pub mod collective;
pub mod conform;
pub mod icmp;
pub mod ip;
pub mod reqresp;
pub mod rmp;
pub mod tcp;
pub mod udp;
