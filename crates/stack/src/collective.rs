//! CAB-resident collectives: multicast fan-out, tree barrier, and
//! reduction combining.
//!
//! The NIC-based collectives literature (Quadrics/Myrinet barrier
//! offload; in-network computing surveys) moves collective progress off
//! the hosts and into the network interface. The Nectar CAB — a
//! programmable protocol processor behind a low-latency crossbar — is
//! exactly that platform, so this engine runs *in* the network: frames
//! are replicated and reduction operands combined at intermediate CABs,
//! never round-tripped through end hosts.
//!
//! Like every engine in this crate it is a pure state machine: calls
//! carry `now` and input packets, and effects come back as
//! [`CollectiveAction`]s. Three primitives share one group table:
//!
//! * **Multicast** — the group's root fans a payload down a
//!   source-rooted distribution tree. Interior CABs forward the *same*
//!   [`FrameBuf`] to each child ([`CollectiveAction::Replicate`] is an
//!   `Rc` bump, never a deep copy).
//! * **Tree barrier** — every member calls [`CollectiveEngine::arrive`];
//!   leaves report upstream, interior CABs wait for all children plus
//!   themselves and send *one* combined `Arrive` per subtree, and the
//!   root releases back down the multicast path.
//! * **Reduction** — the same gather wave carries a u64 operand
//!   combined with [`CombineOp`] at each interior CAB, so the root
//!   receives one frame per child subtree, not one per leaf.
//!
//! Reliability: a `Release` doubles as the acknowledgment for `Arrive`.
//! A node retransmits its (combined) `Arrive` on a timer until the
//! release for that epoch comes back; a parent that already released an
//! epoch answers a straggler's stale `Arrive` by resending the cached
//! release to that child only. Per-epoch gather state means a straggler
//! from epoch N can never count toward epoch N+1.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use nectar_sim::{SimDuration, SimTime};
use nectar_wire::collective::{CollectiveHeader, CollectiveKind, CombineOp, COLLECTIVE_HEADER_LEN};
use nectar_wire::{FrameBuf, WireError};

/// Engine tunables.
#[derive(Clone, Copy, Debug)]
pub struct CollectiveConfig {
    /// Retransmit interval for an unacknowledged `Arrive`.
    pub rto: SimDuration,
    /// `Arrive` retransmissions before the epoch is abandoned.
    pub max_retries: u32,
}

impl Default for CollectiveConfig {
    fn default() -> Self {
        CollectiveConfig { rto: SimDuration::from_millis(2), max_retries: 20 }
    }
}

/// One node's position in a group's distribution/combining tree.
#[derive(Clone, Debug)]
pub struct GroupTopo {
    /// Upstream CAB; `None` at the root.
    pub parent: Option<u16>,
    /// Downstream CABs this node replicates to / gathers from.
    pub children: Vec<u16>,
}

/// Effects produced by the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CollectiveAction {
    /// Send a freshly built collective packet to `dst_cab` (an
    /// `Arrive` heading upstream).
    Transmit { dst_cab: u16, packet: Vec<u8> },
    /// Replicate a shared collective message to `dst_cab`. The
    /// [`FrameBuf`] is a clone of the received (or root-built) message,
    /// so the whole fan-out tree shares one payload allocation; the
    /// datalink must use its zero-copy path.
    Replicate { dst_cab: u16, packet: FrameBuf },
    /// A multicast payload arrived for the local application.
    Deliver { group: u16, payload: FrameBuf },
    /// The barrier/reduction `epoch` released at this node; `value` is
    /// the combined result (0 for a pure barrier).
    Completed { group: u16, epoch: u32, value: u64 },
    /// The epoch's `Arrive` exhausted its retries.
    Failed { group: u16, epoch: u32 },
}

/// Engine counters (surfaced as `net/collective/*` metrics).
#[derive(Clone, Copy, Debug, Default)]
pub struct CollectiveStats {
    /// Multicasts originated at this node.
    pub multicasts: u64,
    /// Zero-copy replicas emitted downstream (multicast + release).
    pub replicas: u64,
    /// Multicast payloads delivered to the local application.
    pub delivers: u64,
    /// Child `Arrive`s absorbed into a gather.
    pub arrives_rx: u64,
    /// Combined `Arrive`s sent upstream.
    pub arrives_tx: u64,
    /// Timer-driven `Arrive` retransmissions.
    pub arrive_retransmits: u64,
    /// Retransmitted `Arrive`s for an epoch already gathered.
    pub duplicate_arrives: u64,
    /// `Arrive`s for an epoch this node already released.
    pub stale_arrives: u64,
    /// Cached releases resent to individual stragglers.
    pub straggler_resends: u64,
    /// Epochs released at the root.
    pub releases: u64,
    /// Releases forwarded down the tree at interior nodes.
    pub releases_forwarded: u64,
    /// Releases for an epoch already completed here.
    pub duplicate_releases: u64,
    /// Epochs completed at this node (root or released).
    pub completions: u64,
    /// Epochs abandoned after retry exhaustion.
    pub failures: u64,
    /// Packets dropped: unknown group or non-child sender.
    pub misdirected_drops: u64,
}

/// In-progress gather for one epoch.
#[derive(Debug)]
struct Gather {
    arrived: BTreeSet<u16>,
    local: bool,
    op: CombineOp,
    value: u64,
}

impl Gather {
    fn new(op: CombineOp) -> Gather {
        Gather { arrived: BTreeSet::new(), local: false, op, value: op.identity() }
    }
}

/// An `Arrive` sent upstream, awaiting its release.
#[derive(Debug)]
struct PendingUp {
    epoch: u32,
    op: CombineOp,
    value: u64,
    deadline: SimTime,
    retries: u32,
}

#[derive(Debug)]
struct Group {
    topo: GroupTopo,
    /// Gathers keyed by epoch: a straggler from epoch N can never leak
    /// into epoch N+1's arrival set.
    gathers: BTreeMap<u32, Gather>,
    /// At most one combined `Arrive` is in flight upstream.
    pending_up: Option<PendingUp>,
    /// Lowest epoch not yet released at this node.
    next_release: u32,
    /// The latest release message, kept to answer stragglers.
    last_release: Option<(u32, FrameBuf)>,
}

/// The per-CAB collective engine: group table plus per-group gather,
/// retransmit, and release-cache state.
#[derive(Debug, Default)]
pub struct CollectiveEngine {
    cfg: CollectiveConfig,
    groups: BTreeMap<u16, Group>,
    stats: CollectiveStats,
}

impl CollectiveEngine {
    pub fn new(cfg: CollectiveConfig) -> Self {
        CollectiveEngine { cfg, groups: BTreeMap::new(), stats: CollectiveStats::default() }
    }

    pub fn stats(&self) -> &CollectiveStats {
        &self.stats
    }

    /// Install this node's slice of a group tree. Re-installing a group
    /// resets its state.
    pub fn install_group(&mut self, group: u16, parent: Option<u16>, children: Vec<u16>) {
        self.groups.insert(
            group,
            Group {
                topo: GroupTopo { parent, children },
                gathers: BTreeMap::new(),
                pending_up: None,
                next_release: 0,
                last_release: None,
            },
        );
    }

    pub fn has_group(&self, group: u16) -> bool {
        self.groups.contains_key(&group)
    }

    pub fn topo(&self, group: u16) -> Option<&GroupTopo> {
        self.groups.get(&group).map(|g| &g.topo)
    }

    /// Fan `payload` out to the subtree below this node. Called at the
    /// group root (the tree is source-rooted there); the sender is not
    /// re-delivered its own payload. Returns false for unknown groups.
    pub fn multicast(
        &mut self,
        group: u16,
        payload: &[u8],
        out: &mut Vec<CollectiveAction>,
    ) -> bool {
        let Some(g) = self.groups.get(&group) else {
            self.stats.misdirected_drops += 1;
            return false;
        };
        let hdr = CollectiveHeader {
            kind: CollectiveKind::Multicast,
            op: CombineOp::None,
            group,
            epoch: 0,
            value: 0,
        };
        let buf = FrameBuf::new(hdr.build(payload));
        for &child in &g.topo.children {
            out.push(CollectiveAction::Replicate { dst_cab: child, packet: buf.clone() });
        }
        self.stats.multicasts += 1;
        self.stats.replicas += g.topo.children.len() as u64;
        true
    }

    /// The local application reached the barrier / contributed `value`
    /// to the reduction for the group's current epoch. Returns false
    /// for unknown groups.
    pub fn arrive(
        &mut self,
        now: SimTime,
        group: u16,
        op: CombineOp,
        value: u64,
        out: &mut Vec<CollectiveAction>,
    ) -> bool {
        let Some(g) = self.groups.get_mut(&group) else {
            self.stats.misdirected_drops += 1;
            return false;
        };
        let epoch = g.next_release;
        let gather = g.gathers.entry(epoch).or_insert_with(|| Gather::new(op));
        if gather.local {
            // one arrive per release — a second is a duplicate
            self.stats.duplicate_arrives += 1;
            return true;
        }
        gather.local = true;
        gather.value = gather.op.combine(gather.value, value);
        self.maybe_complete(now, group, epoch, out);
        true
    }

    /// Process a received collective packet. `msg` is the zero-copy
    /// payload view from the datalink frame; multicast/release
    /// replication clones it onward without copying.
    pub fn on_packet(
        &mut self,
        now: SimTime,
        src_cab: u16,
        msg: &FrameBuf,
        out: &mut Vec<CollectiveAction>,
    ) -> Result<(), WireError> {
        let (hdr, _) = CollectiveHeader::parse(msg.as_slice())?;
        match hdr.kind {
            CollectiveKind::Multicast => self.on_multicast(&hdr, msg, out),
            CollectiveKind::Arrive => self.on_arrive(now, src_cab, &hdr, out),
            CollectiveKind::Release => self.on_release(&hdr, msg, out),
        }
        Ok(())
    }

    fn on_multicast(
        &mut self,
        hdr: &CollectiveHeader,
        msg: &FrameBuf,
        out: &mut Vec<CollectiveAction>,
    ) {
        let Some(g) = self.groups.get(&hdr.group) else {
            self.stats.misdirected_drops += 1;
            return;
        };
        for &child in &g.topo.children {
            out.push(CollectiveAction::Replicate { dst_cab: child, packet: msg.clone() });
        }
        self.stats.replicas += g.topo.children.len() as u64;
        self.stats.delivers += 1;
        out.push(CollectiveAction::Deliver {
            group: hdr.group,
            payload: msg.slice(COLLECTIVE_HEADER_LEN..msg.len()),
        });
    }

    fn on_arrive(
        &mut self,
        now: SimTime,
        src_cab: u16,
        hdr: &CollectiveHeader,
        out: &mut Vec<CollectiveAction>,
    ) {
        let Some(g) = self.groups.get_mut(&hdr.group) else {
            self.stats.misdirected_drops += 1;
            return;
        };
        if hdr.epoch < g.next_release {
            // straggler from an epoch we already released: the release
            // (= the ack) was lost on the way down. Resend it to this
            // child only.
            self.stats.stale_arrives += 1;
            if let Some((epoch, buf)) = &g.last_release {
                if *epoch == hdr.epoch {
                    out.push(CollectiveAction::Replicate { dst_cab: src_cab, packet: buf.clone() });
                    self.stats.straggler_resends += 1;
                    self.stats.replicas += 1;
                }
            }
            return;
        }
        if !g.topo.children.contains(&src_cab) {
            self.stats.misdirected_drops += 1;
            return;
        }
        let gather = g.gathers.entry(hdr.epoch).or_insert_with(|| Gather::new(hdr.op));
        if !gather.arrived.insert(src_cab) {
            // retransmitted arrive for a gather still in progress:
            // absorb without recombining (Sum would double-count)
            self.stats.duplicate_arrives += 1;
            return;
        }
        gather.value = gather.op.combine(gather.value, hdr.value);
        self.stats.arrives_rx += 1;
        self.maybe_complete(now, hdr.group, hdr.epoch, out);
    }

    fn on_release(
        &mut self,
        hdr: &CollectiveHeader,
        msg: &FrameBuf,
        out: &mut Vec<CollectiveAction>,
    ) {
        let Some(g) = self.groups.get_mut(&hdr.group) else {
            self.stats.misdirected_drops += 1;
            return;
        };
        if hdr.epoch < g.next_release {
            self.stats.duplicate_releases += 1;
            return;
        }
        g.pending_up = None;
        g.gathers.remove(&hdr.epoch);
        for &child in &g.topo.children {
            out.push(CollectiveAction::Replicate { dst_cab: child, packet: msg.clone() });
        }
        self.stats.replicas += g.topo.children.len() as u64;
        if !g.topo.children.is_empty() {
            self.stats.releases_forwarded += 1;
        }
        g.last_release = Some((hdr.epoch, msg.clone()));
        g.next_release = hdr.epoch + 1;
        self.stats.completions += 1;
        out.push(CollectiveAction::Completed {
            group: hdr.group,
            epoch: hdr.epoch,
            value: hdr.value,
        });
    }

    /// If `epoch`'s gather has every child plus the local arrival,
    /// either release (root) or send the combined `Arrive` upstream.
    fn maybe_complete(
        &mut self,
        now: SimTime,
        group: u16,
        epoch: u32,
        out: &mut Vec<CollectiveAction>,
    ) {
        let g = self.groups.get_mut(&group).expect("caller validated group");
        let (op, value) = match g.gathers.get(&epoch) {
            Some(ga) if ga.local && ga.arrived.len() == g.topo.children.len() => (ga.op, ga.value),
            _ => return,
        };
        match g.topo.parent {
            None => {
                // root: release the epoch down the multicast path
                let packet =
                    CollectiveHeader { kind: CollectiveKind::Release, op, group, epoch, value }
                        .build(&[]);
                let buf = FrameBuf::new(packet);
                for &child in &g.topo.children {
                    out.push(CollectiveAction::Replicate { dst_cab: child, packet: buf.clone() });
                }
                self.stats.replicas += g.topo.children.len() as u64;
                g.last_release = Some((epoch, buf));
                g.next_release = epoch + 1;
                g.gathers.remove(&epoch);
                self.stats.releases += 1;
                self.stats.completions += 1;
                out.push(CollectiveAction::Completed { group, epoch, value });
            }
            Some(parent) => {
                // interior/leaf: one combined frame per subtree. The
                // gather stays to absorb duplicate child arrives until
                // the release comes back.
                let packet =
                    CollectiveHeader { kind: CollectiveKind::Arrive, op, group, epoch, value }
                        .build(&[]);
                out.push(CollectiveAction::Transmit { dst_cab: parent, packet });
                g.pending_up =
                    Some(PendingUp { epoch, op, value, deadline: now + self.cfg.rto, retries: 0 });
                self.stats.arrives_tx += 1;
            }
        }
    }

    /// Retransmit overdue upstream `Arrive`s.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<CollectiveAction>) {
        let CollectiveEngine { cfg, groups, stats } = self;
        for (&gid, g) in groups.iter_mut() {
            let Some(p) = &mut g.pending_up else { continue };
            if now < p.deadline {
                continue;
            }
            p.retries += 1;
            if p.retries > cfg.max_retries {
                let epoch = p.epoch;
                g.pending_up = None;
                g.gathers.remove(&epoch);
                stats.failures += 1;
                out.push(CollectiveAction::Failed { group: gid, epoch });
            } else {
                p.deadline = now + cfg.rto;
                let parent = g.topo.parent.expect("pending_up implies a parent");
                let packet = CollectiveHeader {
                    kind: CollectiveKind::Arrive,
                    op: p.op,
                    group: gid,
                    epoch: p.epoch,
                    value: p.value,
                }
                .build(&[]);
                stats.arrive_retransmits += 1;
                out.push(CollectiveAction::Transmit { dst_cab: parent, packet });
            }
        }
    }

    /// Earliest retransmit deadline across all groups.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.groups.values().filter_map(|g| g.pending_up.as_ref().map(|p| p.deadline)).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    const GROUP: u16 = 7;

    /// A 7-node binary tree: 0 ← {1, 2}, 1 ← {3, 4}, 2 ← {5, 6}.
    fn tree7() -> BTreeMap<u16, CollectiveEngine> {
        let topo: [(u16, Option<u16>, &[u16]); 7] = [
            (0, None, &[1, 2]),
            (1, Some(0), &[3, 4]),
            (2, Some(0), &[5, 6]),
            (3, Some(1), &[]),
            (4, Some(1), &[]),
            (5, Some(2), &[]),
            (6, Some(2), &[]),
        ];
        let mut nodes = BTreeMap::new();
        for (id, parent, children) in topo {
            let mut e = CollectiveEngine::new(CollectiveConfig {
                rto: SimDuration::from_micros(500),
                max_retries: 3,
            });
            e.install_group(GROUP, parent, children.to_vec());
            nodes.insert(id, e);
        }
        nodes
    }

    /// Deliver queued actions between engines until quiescent, dropping
    /// any (src, dst) pair in `lose` exactly once. Returns the
    /// non-network actions (Deliver/Completed/Failed) per node.
    fn pump(
        nodes: &mut BTreeMap<u16, CollectiveEngine>,
        now: SimTime,
        staged: Vec<(u16, CollectiveAction)>,
        lose: &mut Vec<(u16, u16)>,
    ) -> Vec<(u16, CollectiveAction)> {
        let mut queue = staged;
        let mut local = Vec::new();
        while let Some((src, act)) = queue.pop() {
            let (dst, buf) = match act {
                CollectiveAction::Transmit { dst_cab, packet } => (dst_cab, FrameBuf::new(packet)),
                CollectiveAction::Replicate { dst_cab, packet } => (dst_cab, packet),
                other => {
                    local.push((src, other));
                    continue;
                }
            };
            if let Some(i) = lose.iter().position(|&pair| pair == (src, dst)) {
                lose.remove(i);
                continue;
            }
            let mut out = Vec::new();
            nodes.get_mut(&dst).unwrap().on_packet(now, src, &buf, &mut out).unwrap();
            queue.extend(out.into_iter().map(|a| (dst, a)));
        }
        local
    }

    fn arrive_all(
        nodes: &mut BTreeMap<u16, CollectiveEngine>,
        now: SimTime,
        op: CombineOp,
        value_of: impl Fn(u16) -> u64,
    ) -> Vec<(u16, CollectiveAction)> {
        let mut staged = Vec::new();
        // leaves first, then interior, then root — worst-case ordering
        // for accidental early completion
        for &id in &[3u16, 4, 5, 6, 1, 2, 0] {
            let mut out = Vec::new();
            assert!(nodes.get_mut(&id).unwrap().arrive(now, GROUP, op, value_of(id), &mut out));
            staged.extend(out.into_iter().map(|a| (id, a)));
        }
        staged
    }

    #[test]
    fn barrier_completes_and_combines_per_subtree() {
        let mut nodes = tree7();
        let staged = arrive_all(&mut nodes, t(0), CombineOp::None, |_| 0);
        let local = pump(&mut nodes, t(0), staged, &mut Vec::new());
        for id in 0..7u16 {
            assert!(
                local.contains(&(
                    id,
                    CollectiveAction::Completed { group: GROUP, epoch: 0, value: 0 }
                )),
                "node {id} did not complete"
            );
        }
        // combining: the root saw one frame per child subtree (2), not
        // one per leaf (6)
        assert_eq!(nodes[&0].stats().arrives_rx, 2);
        assert_eq!(nodes[&1].stats().arrives_rx, 2);
        assert_eq!(nodes[&0].stats().releases, 1);
        assert_eq!(nodes[&1].stats().releases_forwarded, 1);
    }

    #[test]
    fn reduction_sum_min_max() {
        for (op, want) in
            [(CombineOp::Sum, 1 + 2 + 3 + 4 + 5 + 6), (CombineOp::Min, 0), (CombineOp::Max, 6)]
        {
            let mut nodes = tree7();
            let staged = arrive_all(&mut nodes, t(0), op, |id| id as u64);
            let local = pump(&mut nodes, t(0), staged, &mut Vec::new());
            for id in 0..7u16 {
                assert!(
                    local.contains(&(
                        id,
                        CollectiveAction::Completed { group: GROUP, epoch: 0, value: want }
                    )),
                    "{op:?}: node {id} missing combined value {want}"
                );
            }
        }
    }

    #[test]
    fn epochs_isolated_and_stragglers_reacked() {
        let mut nodes = tree7();
        // epoch 0 completes normally
        let staged = arrive_all(&mut nodes, t(0), CombineOp::Sum, |id| id as u64);
        pump(&mut nodes, t(0), staged, &mut Vec::new());

        // a replayed epoch-0 Arrive from leaf 3 reaches node 1, which
        // has released epoch 0: it must NOT count toward epoch 1, and
        // node 1 re-acks with the cached epoch-0 release
        let stale = CollectiveHeader {
            kind: CollectiveKind::Arrive,
            op: CombineOp::Sum,
            group: GROUP,
            epoch: 0,
            value: 3,
        }
        .build(&[]);
        let mut out = Vec::new();
        nodes.get_mut(&1).unwrap().on_packet(t(10), 3, &FrameBuf::new(stale), &mut out).unwrap();
        assert_eq!(nodes[&1].stats().stale_arrives, 1);
        assert_eq!(nodes[&1].stats().straggler_resends, 1);
        assert!(
            matches!(out[0], CollectiveAction::Replicate { dst_cab: 3, .. }),
            "straggler gets the cached release, to it alone"
        );

        // epoch 1 still needs every arrival: leaf 3's replay must not
        // have pre-arrived it
        let staged = arrive_all(&mut nodes, t(100), CombineOp::Sum, |id| 10 + id as u64);
        let local = pump(&mut nodes, t(100), staged, &mut Vec::new());
        let want = (0..7u64).map(|v| 10 + v).sum::<u64>();
        for id in 0..7u16 {
            assert!(
                local.contains(&(
                    id,
                    CollectiveAction::Completed { group: GROUP, epoch: 1, value: want }
                )),
                "epoch 1 wrong at node {id}"
            );
        }
        assert_eq!(nodes[&0].stats().arrives_rx, 4); // 2 per epoch
    }

    #[test]
    fn lost_arrive_retransmitted_until_release() {
        let mut nodes = tree7();
        // lose leaf 3's first Arrive to node 1
        let mut lose = vec![(3, 1)];
        let staged = arrive_all(&mut nodes, t(0), CombineOp::None, |_| 0);
        let local = pump(&mut nodes, t(0), staged, &mut lose);
        assert!(local.iter().all(|(_, a)| !matches!(a, CollectiveAction::Completed { .. })));

        // leaf 3's timer fires and the retransmit completes the barrier
        let mut out = Vec::new();
        nodes.get_mut(&3).unwrap().poll(t(600), &mut out);
        assert_eq!(nodes[&3].stats().arrive_retransmits, 1);
        let local =
            pump(&mut nodes, t(600), out.into_iter().map(|a| (3, a)).collect(), &mut Vec::new());
        for id in 0..7u16 {
            assert!(
                local.contains(&(
                    id,
                    CollectiveAction::Completed { group: GROUP, epoch: 0, value: 0 }
                )),
                "node {id} did not complete after retransmit"
            );
        }
        // the gather absorbed nothing twice
        assert_eq!(nodes[&1].stats().duplicate_arrives, 0);
    }

    #[test]
    fn lost_release_resent_to_straggler_only() {
        let mut nodes = tree7();
        // the release from node 2 down to leaf 5 is lost
        let mut lose = vec![(2, 5)];
        let staged = arrive_all(&mut nodes, t(0), CombineOp::Sum, |id| id as u64);
        let local = pump(&mut nodes, t(0), staged, &mut lose);
        let done = |l: &[(u16, CollectiveAction)], id| {
            l.iter().any(|(n, a)| *n == id && matches!(a, CollectiveAction::Completed { .. }))
        };
        assert!(!done(&local, 5), "leaf 5 must still be waiting");
        assert!(done(&local, 0) && done(&local, 6));

        // leaf 5 retransmits its Arrive; node 2 answers from the
        // release cache without disturbing epoch 1 state
        let mut out = Vec::new();
        nodes.get_mut(&5).unwrap().poll(t(600), &mut out);
        let local =
            pump(&mut nodes, t(600), out.into_iter().map(|a| (5, a)).collect(), &mut Vec::new());
        assert!(
            local.contains(&(5, CollectiveAction::Completed { group: GROUP, epoch: 0, value: 21 })),
            "straggler must complete with the same combined value"
        );
        assert_eq!(nodes[&2].stats().straggler_resends, 1);
    }

    #[test]
    fn retries_exhaust_to_failure() {
        let mut nodes = tree7();
        let mut out = Vec::new();
        nodes.get_mut(&3).unwrap().arrive(t(0), GROUP, CombineOp::None, 0, &mut out);
        assert_eq!(nodes[&3].next_wakeup(), Some(t(500)));
        let mut now = t(0);
        let mut failed = false;
        for _ in 0..10 {
            now += SimDuration::from_millis(1);
            let mut out = Vec::new();
            nodes.get_mut(&3).unwrap().poll(now, &mut out);
            if out.contains(&CollectiveAction::Failed { group: GROUP, epoch: 0 }) {
                failed = true;
                break;
            }
        }
        assert!(failed);
        assert_eq!(nodes[&3].stats().failures, 1);
        assert_eq!(nodes[&3].next_wakeup(), None);
    }

    #[test]
    fn multicast_replicates_zero_copy_through_the_tree() {
        let mut nodes = tree7();
        let payload = vec![0x5a; 256];
        let mut out = Vec::new();
        assert!(nodes.get_mut(&0).unwrap().multicast(GROUP, &payload, &mut out));
        assert_eq!(out.len(), 2);
        let CollectiveAction::Replicate { packet: root_msg, .. } = &out[0] else { panic!() };
        let root_msg = root_msg.clone();

        // forward through node 1: its replicas and its local delivery
        // must share the root's allocation — Rc bumps all the way down
        let mut fwd = Vec::new();
        nodes.get_mut(&1).unwrap().on_packet(t(0), 0, &root_msg, &mut fwd).unwrap();
        let mut delivered = 0;
        for act in &fwd {
            match act {
                CollectiveAction::Replicate { packet, .. } => {
                    assert!(packet.shares_backing(&root_msg), "fan-out must not deep-copy");
                }
                CollectiveAction::Deliver { group, payload: p } => {
                    assert_eq!(*group, GROUP);
                    assert!(p.shares_backing(&root_msg), "delivery must be a view");
                    assert_eq!(p.as_slice(), &payload[..]);
                    delivered += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(delivered, 1);
        assert!(root_msg.backing_refcount() > 1, "replicas must share the backing");
    }
}
