//! The Nectar Reliable Message Protocol (RMP).
//!
//! §4: "The reliable message protocol is a simple stop-and-wait
//! protocol." Messages are addressed to mailboxes; a message larger
//! than the datalink MTU is cut into fragments, and each fragment is
//! individually acknowledged before the next is sent. No software
//! checksum is computed — the CAB's hardware CRC protects the frame,
//! which is exactly why RMP reaches ≈90 Mbit/s in Figure 7 while TCP
//! pays for software checksumming.
//!
//! Stop-and-wait is viable at these speeds because the Nectar fiber
//! RTT (< 10 µs) is tiny against the serialization time of a large
//! fragment (655 µs for 8 KiB at 100 Mbit/s), so the link stays > 95 %
//! utilized — the paper's measured curve shape.

use std::collections::{HashMap, VecDeque};

use nectar_sim::{SimDuration, SimTime};
use nectar_wire::nectar::{RmpHeader, RmpKind};

/// Sender-side tunables.
#[derive(Clone, Copy, Debug)]
pub struct RmpConfig {
    /// Largest fragment payload (bounded by the datalink MTU minus the
    /// RMP header).
    pub max_fragment: usize,
    /// Retransmission timeout for an unacknowledged fragment.
    pub rto: SimDuration,
    /// Ceiling for the exponential retransmission backoff. The paper's
    /// RMP uses a constant timeout (RTT is microseconds, loss is rare),
    /// so the default equals `rto` — backoff disabled, bit-identical
    /// legacy schedule. Raise it to let a channel ride out link outages
    /// longer than `rto * max_retries`.
    pub rto_max: SimDuration,
    /// Give up after this many retransmissions of one fragment.
    pub max_retries: u32,
}

impl Default for RmpConfig {
    fn default() -> Self {
        RmpConfig {
            max_fragment: 8 * 1024,
            rto: SimDuration::from_millis(5),
            rto_max: SimDuration::from_millis(5),
            max_retries: 10,
        }
    }
}

impl RmpConfig {
    /// Timeout for a fragment that has already been retransmitted
    /// `retries` times: `rto * 2^retries`, capped at `rto_max`.
    fn backoff(&self, retries: u32) -> SimDuration {
        let mut t = self.rto;
        for _ in 0..retries {
            if t >= self.rto_max {
                break;
            }
            t = (t + t).min(self.rto_max);
        }
        t.min(self.rto_max).max(self.rto)
    }
}

/// Sender-side actions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RmpSendAction {
    /// Hand this RMP packet (header + fragment payload) to the datalink
    /// layer for `dst_cab`.
    Transmit { dst_cab: u16, packet: Vec<u8> },
    /// The message with this sequence number is fully acknowledged.
    Delivered { msg_seq: u32 },
    /// Retries exhausted; the message (and the channel) is dead.
    Failed { msg_seq: u32 },
}

#[derive(Debug)]
struct InFlight {
    msg_seq: u32,
    frag_idx: u16,
    offset: usize,
    frag_len: usize,
    total_len: usize,
    deadline: SimTime,
    retries: u32,
}

/// Sender statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RmpSenderStats {
    pub fragments_sent: u64,
    pub retransmits: u64,
    pub messages_delivered: u64,
    pub messages_failed: u64,
}

/// One RMP send channel: (this CAB's `src_mbox`) → (`dst_cab`,
/// `dst_mbox`). Stop-and-wait: at most one fragment in flight.
#[derive(Debug)]
pub struct RmpSender {
    dst_cab: u16,
    dst_mbox: u16,
    src_mbox: u16,
    cfg: RmpConfig,
    queue: VecDeque<(u32, Vec<u8>)>,
    next_seq: u32,
    current: Option<InFlight>,
    failed: bool,
    stats: RmpSenderStats,
}

impl RmpSender {
    pub fn new(dst_cab: u16, dst_mbox: u16, src_mbox: u16, cfg: RmpConfig) -> Self {
        assert!(cfg.max_fragment > 0);
        RmpSender {
            dst_cab,
            dst_mbox,
            src_mbox,
            cfg,
            queue: VecDeque::new(),
            next_seq: 0,
            current: None,
            failed: false,
            stats: RmpSenderStats::default(),
        }
    }

    pub fn stats(&self) -> &RmpSenderStats {
        &self.stats
    }

    /// True when the channel has died (a fragment exhausted retries).
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Number of unfinished messages (the in-flight message remains at
    /// the queue front until its final fragment is acknowledged).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Queue a message; returns its sequence number. Call
    /// [`Self::poll`] to get the first transmission.
    pub fn send(&mut self, message: Vec<u8>) -> u32 {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.queue.push_back((seq, message));
        seq
    }

    fn frag_packet(&self, msg: &[u8], fl: &InFlight) -> Vec<u8> {
        let header = RmpHeader {
            kind: RmpKind::Data,
            last_frag: fl.offset + fl.frag_len >= fl.total_len,
            dst_mbox: self.dst_mbox,
            src_mbox: self.src_mbox,
            msg_seq: fl.msg_seq,
            frag_idx: fl.frag_idx,
            total_len: fl.total_len as u32,
        };
        header.build(&msg[fl.offset..fl.offset + fl.frag_len])
    }

    /// Start the next fragment if idle; retransmit on timeout.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<RmpSendAction>) {
        if self.failed {
            return;
        }
        match &mut self.current {
            None => {
                // start the next message's first fragment
                let Some(&(msg_seq, ref msg)) = self.queue.front() else { return };
                let total_len = msg.len();
                let frag_len = self.cfg.max_fragment.min(total_len);
                let fl = InFlight {
                    msg_seq,
                    frag_idx: 0,
                    offset: 0,
                    frag_len,
                    total_len,
                    deadline: now + self.cfg.rto,
                    retries: 0,
                };
                let packet = self.frag_packet(msg, &fl);
                self.current = Some(fl);
                self.stats.fragments_sent += 1;
                out.push(RmpSendAction::Transmit { dst_cab: self.dst_cab, packet });
            }
            Some(fl) => {
                if now >= fl.deadline {
                    fl.retries += 1;
                    if fl.retries > self.cfg.max_retries {
                        let msg_seq = fl.msg_seq;
                        self.current = None;
                        self.failed = true;
                        self.stats.messages_failed += 1;
                        out.push(RmpSendAction::Failed { msg_seq });
                        return;
                    }
                    fl.deadline = now + self.cfg.backoff(fl.retries);
                    let msg = &self.queue.front().expect("in-flight implies queued").1;
                    let packet = {
                        let header = RmpHeader {
                            kind: RmpKind::Data,
                            last_frag: fl.offset + fl.frag_len >= fl.total_len,
                            dst_mbox: self.dst_mbox,
                            src_mbox: self.src_mbox,
                            msg_seq: fl.msg_seq,
                            frag_idx: fl.frag_idx,
                            total_len: fl.total_len as u32,
                        };
                        header.build(&msg[fl.offset..fl.offset + fl.frag_len])
                    };
                    self.stats.fragments_sent += 1;
                    self.stats.retransmits += 1;
                    out.push(RmpSendAction::Transmit { dst_cab: self.dst_cab, packet });
                }
            }
        }
    }

    /// Process an ACK from the receiver.
    pub fn on_ack(&mut self, now: SimTime, ack: &RmpHeader, out: &mut Vec<RmpSendAction>) {
        debug_assert_eq!(ack.kind, RmpKind::Ack);
        let Some(fl) = &mut self.current else { return };
        if ack.msg_seq != fl.msg_seq || ack.frag_idx != fl.frag_idx {
            return; // stale ack
        }
        let done = fl.offset + fl.frag_len >= fl.total_len;
        if done {
            let msg_seq = fl.msg_seq;
            self.current = None;
            self.queue.pop_front();
            self.stats.messages_delivered += 1;
            out.push(RmpSendAction::Delivered { msg_seq });
        } else {
            fl.offset += fl.frag_len;
            fl.frag_idx += 1;
            fl.frag_len = self.cfg.max_fragment.min(fl.total_len - fl.offset);
            fl.deadline = now + self.cfg.rto;
            fl.retries = 0;
            let msg = &self.queue.front().expect("in-flight implies queued").1;
            let header = RmpHeader {
                kind: RmpKind::Data,
                last_frag: fl.offset + fl.frag_len >= fl.total_len,
                dst_mbox: self.dst_mbox,
                src_mbox: self.src_mbox,
                msg_seq: fl.msg_seq,
                frag_idx: fl.frag_idx,
                total_len: fl.total_len as u32,
            };
            let packet = header.build(&msg[fl.offset..fl.offset + fl.frag_len]);
            self.stats.fragments_sent += 1;
            out.push(RmpSendAction::Transmit { dst_cab: self.dst_cab, packet });
        }
        // immediately start the next message if this one finished
        self.poll(now, out);
    }

    /// Next retransmission deadline, if a fragment is in flight.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.current.as_ref().map(|fl| fl.deadline)
    }
}

/// Receiver-side actions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RmpRecvAction {
    /// Send this ACK packet back to `dst_cab`.
    Ack { dst_cab: u16, packet: Vec<u8> },
    /// A complete message arrived for `dst_mbox`.
    Deliver { dst_mbox: u16, src_cab: u16, src_mbox: u16, message: Vec<u8> },
}

#[derive(Debug, Default)]
struct RecvChannel {
    expected_seq: u32,
    next_frag: u16,
    buf: Vec<u8>,
    /// msg_seq of the last message handed up, tracked independently of
    /// `expected_seq` so the conformance oracle can cross-check the
    /// exactly-once, in-order delivery bookkeeping.
    last_delivered: Option<u32>,
}

/// Receiver statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RmpReceiverStats {
    pub fragments_in: u64,
    pub duplicates: u64,
    pub delivered: u64,
    /// Every ack emitted, including re-acks of duplicates.
    pub acks_sent: u64,
}

/// The receive half: tracks per-channel reassembly. A channel is the
/// (source CAB, source mailbox, destination mailbox) triple.
#[derive(Debug, Default)]
pub struct RmpReceiver {
    channels: HashMap<(u16, u16, u16), RecvChannel>,
    stats: RmpReceiverStats,
}

impl RmpReceiver {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn stats(&self) -> &RmpReceiverStats {
        &self.stats
    }

    /// Process a Data packet from `src_cab`.
    pub fn on_data(
        &mut self,
        src_cab: u16,
        hdr: &RmpHeader,
        payload: &[u8],
        out: &mut Vec<RmpRecvAction>,
    ) {
        debug_assert_eq!(hdr.kind, RmpKind::Data);
        self.stats.fragments_in += 1;
        let key = (src_cab, hdr.src_mbox, hdr.dst_mbox);
        let ch = self.channels.entry(key).or_default();

        let ack = |out: &mut Vec<RmpRecvAction>| {
            out.push(RmpRecvAction::Ack { dst_cab: src_cab, packet: hdr.ack_for().build(&[]) });
        };

        if hdr.msg_seq.wrapping_sub(ch.expected_seq) > u32::MAX / 2 {
            // an already-delivered message: the sender missed our ack
            self.stats.duplicates += 1;
            ack(out);
            self.stats.acks_sent += 1;
            return;
        }
        if hdr.msg_seq != ch.expected_seq {
            // a future message cannot arrive before the current one
            // completes under stop-and-wait; drop silently
            return;
        }
        if hdr.frag_idx < ch.next_frag {
            // duplicate fragment of the current message
            self.stats.duplicates += 1;
            ack(out);
            self.stats.acks_sent += 1;
            return;
        }
        if hdr.frag_idx > ch.next_frag {
            // a gap is impossible under stop-and-wait; drop
            return;
        }
        ch.buf.extend_from_slice(payload);
        ch.next_frag += 1;
        ack(out);
        self.stats.acks_sent += 1;
        if hdr.last_frag {
            let message = std::mem::take(&mut ch.buf);
            debug_assert_eq!(message.len(), hdr.total_len as usize);
            if crate::conform::enabled() {
                crate::conform::check_rmp_delivery(key, ch.last_delivered, hdr.msg_seq);
            }
            ch.last_delivered = Some(hdr.msg_seq);
            ch.expected_seq = ch.expected_seq.wrapping_add(1);
            ch.next_frag = 0;
            self.stats.delivered += 1;
            out.push(RmpRecvAction::Deliver {
                dst_mbox: hdr.dst_mbox,
                src_cab,
                src_mbox: hdr.src_mbox,
                message,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_wire::nectar::RmpHeader;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    fn cfg(max_fragment: usize) -> RmpConfig {
        RmpConfig {
            max_fragment,
            rto: SimDuration::from_micros(100),
            rto_max: SimDuration::from_micros(100),
            max_retries: 3,
        }
    }

    /// Deliver a Transmit action's packet to the receiver, returning
    /// receiver actions.
    fn deliver(rx: &mut RmpReceiver, src_cab: u16, packet: &[u8]) -> Vec<RmpRecvAction> {
        let (hdr, payload) = RmpHeader::parse(packet).unwrap();
        let mut out = Vec::new();
        rx.on_data(src_cab, &hdr, payload, &mut out);
        out
    }

    fn ack_sender(tx: &mut RmpSender, now: SimTime, ack_packet: &[u8]) -> Vec<RmpSendAction> {
        let (hdr, _) = RmpHeader::parse(ack_packet).unwrap();
        let mut out = Vec::new();
        tx.on_ack(now, &hdr, &mut out);
        out
    }

    #[test]
    fn single_fragment_message() {
        let mut tx = RmpSender::new(2, 7, 3, cfg(1024));
        let mut rx = RmpReceiver::new();
        let seq = tx.send(b"hello rmp".to_vec());
        assert_eq!(seq, 0);
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        let RmpSendAction::Transmit { dst_cab, packet } = &out[0] else { panic!() };
        assert_eq!(*dst_cab, 2);
        let racts = deliver(&mut rx, 1, packet);
        assert_eq!(racts.len(), 2); // ack + deliver
        let RmpRecvAction::Deliver { dst_mbox, src_cab, src_mbox, message } = &racts[1] else {
            panic!()
        };
        assert_eq!((*dst_mbox, *src_cab, *src_mbox), (7, 1, 3));
        assert_eq!(message, b"hello rmp");
        let RmpRecvAction::Ack { packet: ackp, .. } = &racts[0] else { panic!() };
        let sacts = ack_sender(&mut tx, t(10), ackp);
        assert_eq!(sacts, vec![RmpSendAction::Delivered { msg_seq: 0 }]);
        assert_eq!(tx.backlog(), 0);
    }

    #[test]
    fn multi_fragment_stop_and_wait() {
        let mut tx = RmpSender::new(2, 7, 3, cfg(100));
        let mut rx = RmpReceiver::new();
        let msg: Vec<u8> = (0..250u32).map(|i| i as u8).collect();
        tx.send(msg.clone());
        let mut now = t(0);
        let mut out = Vec::new();
        tx.poll(now, &mut out);
        let mut delivered = None;
        let mut hops = 0;
        while let Some(RmpSendAction::Transmit { packet, .. }) = out.pop() {
            hops += 1;
            assert!(hops < 10, "too many fragments");
            now += SimDuration::from_micros(10);
            let racts = deliver(&mut rx, 1, &packet);
            for act in racts {
                match act {
                    RmpRecvAction::Ack { packet, .. } => {
                        out.extend(ack_sender(&mut tx, now, &packet));
                    }
                    RmpRecvAction::Deliver { message, .. } => delivered = Some(message),
                }
            }
            // filter non-transmits
            out.retain(|a| matches!(a, RmpSendAction::Transmit { .. }));
        }
        assert_eq!(hops, 3); // 250 bytes at 100-byte fragments
        assert_eq!(delivered.unwrap(), msg);
        assert_eq!(tx.stats().messages_delivered, 1);
        // at most one fragment was in flight at any step: implied by the
        // single-packet loop above
    }

    #[test]
    fn lost_fragment_retransmitted() {
        let mut tx = RmpSender::new(2, 7, 3, cfg(1024));
        let mut rx = RmpReceiver::new();
        tx.send(vec![9u8; 64]);
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        assert_eq!(out.len(), 1); // transmitted … and lost
        out.clear();
        // nothing happens before the deadline
        tx.poll(t(50), &mut out);
        assert!(out.is_empty());
        // past the 100 us RTO: retransmit
        tx.poll(t(150), &mut out);
        let RmpSendAction::Transmit { packet, .. } = &out[0] else { panic!() };
        let racts = deliver(&mut rx, 1, packet);
        assert_eq!(racts.len(), 2);
        assert_eq!(tx.stats().retransmits, 1);
    }

    #[test]
    fn lost_ack_causes_duplicate_which_is_reacked() {
        let mut tx = RmpSender::new(2, 7, 3, cfg(1024));
        let mut rx = RmpReceiver::new();
        tx.send(vec![1u8; 16]);
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        let RmpSendAction::Transmit { packet, .. } = out.remove(0) else { panic!() };
        // receiver gets it, delivers, acks — but the ack is lost
        let racts = deliver(&mut rx, 1, &packet);
        assert!(matches!(racts[1], RmpRecvAction::Deliver { .. }));
        // sender times out and retransmits the same fragment
        tx.poll(t(200), &mut out);
        let RmpSendAction::Transmit { packet, .. } = out.remove(0) else { panic!() };
        let racts2 = deliver(&mut rx, 1, &packet);
        // duplicate: re-acked, NOT redelivered
        assert_eq!(racts2.len(), 1);
        assert!(matches!(racts2[0], RmpRecvAction::Ack { .. }));
        assert_eq!(rx.stats().duplicates, 1);
        assert_eq!(rx.stats().delivered, 1);
        // the re-ack completes the exchange
        let RmpRecvAction::Ack { packet, .. } = &racts2[0] else { panic!() };
        let sacts = ack_sender(&mut tx, t(210), packet);
        assert!(sacts.contains(&RmpSendAction::Delivered { msg_seq: 0 }));
    }

    #[test]
    fn retries_exhausted_fails_channel() {
        let mut tx = RmpSender::new(2, 7, 3, cfg(1024));
        tx.send(vec![0u8; 8]);
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        let mut now = t(0);
        let mut failed = false;
        for _ in 0..10 {
            now += SimDuration::from_millis(1);
            out.clear();
            tx.poll(now, &mut out);
            if out.iter().any(|a| matches!(a, RmpSendAction::Failed { .. })) {
                failed = true;
                break;
            }
        }
        assert!(failed);
        assert!(tx.is_failed());
        // further polls do nothing
        out.clear();
        tx.poll(now + SimDuration::from_secs(1), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn exponential_backoff_doubles_up_to_cap() {
        let cfg = RmpConfig {
            max_fragment: 1024,
            rto: SimDuration::from_micros(100),
            rto_max: SimDuration::from_micros(600),
            max_retries: 10,
        };
        // the schedule itself: 100, 200, 400, 600, 600, …
        assert_eq!(cfg.backoff(0), SimDuration::from_micros(100));
        assert_eq!(cfg.backoff(1), SimDuration::from_micros(200));
        assert_eq!(cfg.backoff(2), SimDuration::from_micros(400));
        assert_eq!(cfg.backoff(3), SimDuration::from_micros(600));
        assert_eq!(cfg.backoff(9), SimDuration::from_micros(600));
        // and the default config keeps the legacy constant timeout
        let legacy = RmpConfig::default();
        assert_eq!(legacy.backoff(0), legacy.rto);
        assert_eq!(legacy.backoff(7), legacy.rto);

        // observed through the sender: the second retransmission waits
        // 2x the first.
        let mut tx = RmpSender::new(2, 7, 3, cfg);
        tx.send(vec![0u8; 8]);
        let mut out = Vec::new();
        tx.poll(t(0), &mut out); // first transmit, deadline = 100
        out.clear();
        tx.poll(t(100), &mut out); // retry #1, deadline = 100 + 200
        assert_eq!(out.len(), 1);
        assert_eq!(tx.next_wakeup(), Some(t(300)));
        out.clear();
        tx.poll(t(299), &mut out);
        assert!(out.is_empty(), "backoff deadline not yet reached");
        tx.poll(t(300), &mut out); // retry #2, deadline = 300 + 400
        assert_eq!(out.len(), 1);
        assert_eq!(tx.next_wakeup(), Some(t(700)));
    }

    #[test]
    fn pipelined_messages_in_order() {
        let mut tx = RmpSender::new(2, 7, 3, cfg(64));
        let mut rx = RmpReceiver::new();
        let m1: Vec<u8> = vec![1; 100];
        let m2: Vec<u8> = vec![2; 10];
        tx.send(m1.clone());
        tx.send(m2.clone());
        assert_eq!(tx.backlog(), 2);
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        let mut delivered = Vec::new();
        let mut now = t(0);
        let mut steps = 0;
        while let Some(act) = out.pop() {
            steps += 1;
            assert!(steps < 20);
            match act {
                RmpSendAction::Transmit { packet, .. } => {
                    now += SimDuration::from_micros(5);
                    for ract in deliver(&mut rx, 1, &packet) {
                        match ract {
                            RmpRecvAction::Ack { packet, .. } => {
                                out.extend(ack_sender(&mut tx, now, &packet))
                            }
                            RmpRecvAction::Deliver { message, .. } => delivered.push(message),
                        }
                    }
                }
                RmpSendAction::Delivered { .. } => {}
                RmpSendAction::Failed { .. } => panic!("failed"),
            }
        }
        assert_eq!(delivered, vec![m1, m2]);
    }

    #[test]
    fn channels_are_independent() {
        let mut rx = RmpReceiver::new();
        // same mailbox indices but different source CABs
        let h = RmpHeader {
            kind: RmpKind::Data,
            last_frag: true,
            dst_mbox: 7,
            src_mbox: 3,
            msg_seq: 0,
            frag_idx: 0,
            total_len: 1,
        };
        let p = h.build(b"a");
        let r1 = deliver(&mut rx, 1, &p);
        let r2 = deliver(&mut rx, 2, &p);
        assert!(matches!(r1[1], RmpRecvAction::Deliver { .. }));
        assert!(matches!(r2[1], RmpRecvAction::Deliver { .. }));
        assert_eq!(rx.stats().delivered, 2);
    }

    #[test]
    fn empty_message_is_legal() {
        let mut tx = RmpSender::new(2, 7, 3, cfg(1024));
        let mut rx = RmpReceiver::new();
        tx.send(Vec::new());
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        let RmpSendAction::Transmit { packet, .. } = &out[0] else { panic!() };
        let racts = deliver(&mut rx, 1, packet);
        let RmpRecvAction::Deliver { message, .. } = &racts[1] else { panic!() };
        assert!(message.is_empty());
    }
}
