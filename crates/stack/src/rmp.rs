//! The Nectar Reliable Message Protocol (RMP).
//!
//! §4: "The reliable message protocol is a simple stop-and-wait
//! protocol." Messages are addressed to mailboxes; a message larger
//! than the datalink MTU is cut into fragments, and each fragment is
//! individually acknowledged before the next is sent. No software
//! checksum is computed — the CAB's hardware CRC protects the frame,
//! which is exactly why RMP reaches ≈90 Mbit/s in Figure 7 while TCP
//! pays for software checksumming.
//!
//! Stop-and-wait is viable at these speeds because the Nectar fiber
//! RTT (< 10 µs) is tiny against the serialization time of a large
//! fragment (655 µs for 8 KiB at 100 Mbit/s), so the link stays > 95 %
//! utilized — the paper's measured curve shape. The paper flags the
//! per-message turnaround as future work, and this module implements
//! that extension: [`RmpConfig::window`] > 1 keeps several *messages*
//! in flight concurrently (each message still advances
//! fragment-by-fragment on selective acks), with the receiver's
//! cumulative ack — carried in the otherwise-unused `total_len` field
//! of Ack packets — keeping delivery in-order and exactly-once. The
//! default `window = 1` is byte-identical to the paper's stop-and-wait
//! schedule, which is what the committed fixtures pin.

use std::collections::{HashMap, VecDeque};

use nectar_sim::{SimDuration, SimTime};
use nectar_wire::nectar::{RmpHeader, RmpKind};

/// Receiver-side bound on how far ahead of the in-order point a
/// message may be buffered. Far above any sane sender window; packets
/// beyond it are dropped as insane rather than buffered.
const RECV_HORIZON: u32 = 256;

/// Sender-side tunables.
#[derive(Clone, Copy, Debug)]
pub struct RmpConfig {
    /// Largest fragment payload (bounded by the datalink MTU minus the
    /// RMP header).
    pub max_fragment: usize,
    /// Retransmission timeout for an unacknowledged fragment.
    pub rto: SimDuration,
    /// Ceiling for the exponential retransmission backoff. The paper's
    /// RMP uses a constant timeout (RTT is microseconds, loss is rare),
    /// so the default equals `rto` — backoff disabled, bit-identical
    /// legacy schedule. Raise it to let a channel ride out link outages
    /// longer than `rto * max_retries`.
    pub rto_max: SimDuration,
    /// Give up after this many retransmissions of one fragment.
    pub max_retries: u32,
    /// How many messages may be in flight concurrently on one channel.
    /// 1 (the default) is the paper's stop-and-wait and leaves the
    /// wire schedule byte-identical; larger values pipeline messages
    /// while preserving in-order exactly-once delivery.
    pub window: usize,
}

impl Default for RmpConfig {
    fn default() -> Self {
        RmpConfig {
            max_fragment: 8 * 1024,
            rto: SimDuration::from_millis(5),
            rto_max: SimDuration::from_millis(5),
            max_retries: 10,
            window: 1,
        }
    }
}

impl RmpConfig {
    /// Timeout for a fragment that has already been retransmitted
    /// `retries` times: `rto * 2^retries`, capped at `rto_max`.
    fn backoff(&self, retries: u32) -> SimDuration {
        let mut t = self.rto;
        for _ in 0..retries {
            if t >= self.rto_max {
                break;
            }
            t = (t + t).min(self.rto_max);
        }
        t.min(self.rto_max).max(self.rto)
    }
}

/// Sender-side actions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RmpSendAction {
    /// Hand this RMP packet (header + fragment payload) to the datalink
    /// layer for `dst_cab`.
    Transmit { dst_cab: u16, packet: Vec<u8> },
    /// The message with this sequence number is fully acknowledged.
    Delivered { msg_seq: u32 },
    /// Retries exhausted; the message (and the channel) is dead.
    Failed { msg_seq: u32 },
}

/// One message currently being transmitted: it owns its bytes so
/// flights can complete independently of queue order.
#[derive(Debug)]
struct Flight {
    msg_seq: u32,
    data: Vec<u8>,
    frag_idx: u16,
    offset: usize,
    frag_len: usize,
    deadline: SimTime,
    retries: u32,
    /// Every fragment has been selectively acked; the flight only
    /// waits for the cumulative ack to advance past it (the timer
    /// stays armed to re-elicit that ack if it was lost).
    all_acked: bool,
}

impl Flight {
    fn on_last_frag(&self) -> bool {
        self.offset + self.frag_len >= self.data.len()
    }
}

/// Sender statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RmpSenderStats {
    pub fragments_sent: u64,
    /// Wire retransmissions only: every increment pairs with a
    /// `Transmit` action. Timer re-arms without a send (e.g. after a
    /// selective ack) are *not* counted.
    pub retransmits: u64,
    pub messages_delivered: u64,
    pub messages_failed: u64,
}

/// One RMP send channel: (this CAB's `src_mbox`) → (`dst_cab`,
/// `dst_mbox`). At `window = 1` this is the paper's stop-and-wait: at
/// most one fragment in flight.
#[derive(Debug)]
pub struct RmpSender {
    dst_cab: u16,
    dst_mbox: u16,
    src_mbox: u16,
    cfg: RmpConfig,
    /// Messages not yet started (no fragment sent).
    queue: VecDeque<(u32, Vec<u8>)>,
    next_seq: u32,
    /// Started messages, oldest first (ordered by `msg_seq`).
    flights: VecDeque<Flight>,
    failed: bool,
    stats: RmpSenderStats,
}

impl RmpSender {
    pub fn new(dst_cab: u16, dst_mbox: u16, src_mbox: u16, cfg: RmpConfig) -> Self {
        assert!(cfg.max_fragment > 0);
        RmpSender {
            dst_cab,
            dst_mbox,
            src_mbox,
            cfg,
            queue: VecDeque::new(),
            next_seq: 0,
            flights: VecDeque::new(),
            failed: false,
            stats: RmpSenderStats::default(),
        }
    }

    pub fn stats(&self) -> &RmpSenderStats {
        &self.stats
    }

    /// True when the channel has died (a fragment exhausted retries).
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Number of unfinished messages (queued or in flight).
    pub fn backlog(&self) -> usize {
        self.queue.len() + self.flights.len()
    }

    /// Queue a message; returns its sequence number. Call
    /// [`Self::poll`] to get the first transmission.
    pub fn send(&mut self, message: Vec<u8>) -> u32 {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.queue.push_back((seq, message));
        seq
    }

    fn frag_packet(&self, fl: &Flight) -> Vec<u8> {
        let header = RmpHeader {
            kind: RmpKind::Data,
            last_frag: fl.on_last_frag(),
            dst_mbox: self.dst_mbox,
            src_mbox: self.src_mbox,
            msg_seq: fl.msg_seq,
            frag_idx: fl.frag_idx,
            total_len: fl.data.len() as u32,
        };
        header.build(&fl.data[fl.offset..fl.offset + fl.frag_len])
    }

    /// Retransmit timed-out fragments, then start new messages while
    /// the send window has room.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<RmpSendAction>) {
        if self.failed {
            return;
        }
        for i in 0..self.flights.len() {
            if now < self.flights[i].deadline {
                continue;
            }
            self.flights[i].retries += 1;
            if self.flights[i].retries > self.cfg.max_retries {
                let msg_seq = self.flights[i].msg_seq;
                self.failed = true;
                self.stats.messages_failed += 1;
                out.push(RmpSendAction::Failed { msg_seq });
                return;
            }
            let wait = self.cfg.backoff(self.flights[i].retries);
            self.flights[i].deadline = now + wait;
            let packet = self.frag_packet(&self.flights[i]);
            self.stats.fragments_sent += 1;
            self.stats.retransmits += 1;
            out.push(RmpSendAction::Transmit { dst_cab: self.dst_cab, packet });
        }
        let window = self.cfg.window.max(1);
        while self.flights.len() < window {
            let Some((msg_seq, data)) = self.queue.pop_front() else { break };
            let frag_len = self.cfg.max_fragment.min(data.len());
            let fl = Flight {
                msg_seq,
                data,
                frag_idx: 0,
                offset: 0,
                frag_len,
                deadline: now + self.cfg.rto,
                retries: 0,
                all_acked: false,
            };
            let packet = self.frag_packet(&fl);
            self.flights.push_back(fl);
            self.stats.fragments_sent += 1;
            out.push(RmpSendAction::Transmit { dst_cab: self.dst_cab, packet });
        }
    }

    /// Process an ACK from the receiver. The ack's `total_len` field
    /// carries the receiver's cumulative next-expected message seq;
    /// `(msg_seq, frag_idx)` selectively acknowledge one fragment.
    pub fn on_ack(&mut self, now: SimTime, ack: &RmpHeader, out: &mut Vec<RmpSendAction>) {
        debug_assert_eq!(ack.kind, RmpKind::Ack);
        if self.failed {
            return;
        }
        let mut progressed = false;
        // cumulative: every flight strictly before `cum` is delivered
        let cum = ack.total_len;
        while let Some(fl) = self.flights.front() {
            let d = cum.wrapping_sub(fl.msg_seq);
            if d == 0 || d > u32::MAX / 2 {
                break;
            }
            let fl = self.flights.pop_front().expect("front exists");
            self.stats.messages_delivered += 1;
            out.push(RmpSendAction::Delivered { msg_seq: fl.msg_seq });
            progressed = true;
        }
        // selective: advance the matching flight's fragment cursor
        if let Some(i) = self
            .flights
            .iter()
            .position(|f| f.msg_seq == ack.msg_seq && f.frag_idx == ack.frag_idx && !f.all_acked)
        {
            if self.flights[i].on_last_frag() {
                // fully acked but not yet cumulatively delivered (an
                // earlier message is still incomplete at the receiver):
                // re-arm the timer without transmitting.
                self.flights[i].all_acked = true;
                self.flights[i].retries = 0;
                self.flights[i].deadline = now + self.cfg.rto;
            } else {
                let fl = &mut self.flights[i];
                fl.offset += fl.frag_len;
                fl.frag_idx += 1;
                fl.frag_len = self.cfg.max_fragment.min(fl.data.len() - fl.offset);
                fl.deadline = now + self.cfg.rto;
                fl.retries = 0;
                let packet = self.frag_packet(&self.flights[i]);
                self.stats.fragments_sent += 1;
                out.push(RmpSendAction::Transmit { dst_cab: self.dst_cab, packet });
            }
            progressed = true;
        }
        // refill the window only when this ack made progress — a stale
        // ack is a pure no-op, exactly as under stop-and-wait
        if progressed {
            self.poll(now, out);
        }
    }

    /// Earliest retransmission deadline across all flights. A failed
    /// channel never wakes again: its flights are dead, and reporting
    /// their stale (past) deadlines would spin the RMP thread on an
    /// already-due timer that `poll` will never act on.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        if self.failed {
            return None;
        }
        self.flights.iter().map(|fl| fl.deadline).min()
    }
}

/// Receiver-side actions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RmpRecvAction {
    /// Send this ACK packet back to `dst_cab`.
    Ack { dst_cab: u16, packet: Vec<u8> },
    /// A complete message arrived for `dst_mbox`.
    Deliver { dst_mbox: u16, src_cab: u16, src_mbox: u16, message: Vec<u8> },
}

/// Reassembly state for one message at or ahead of the in-order point.
#[derive(Debug, Default)]
struct PendingMsg {
    next_frag: u16,
    buf: Vec<u8>,
    complete: bool,
}

#[derive(Debug, Default)]
struct RecvChannel {
    expected_seq: u32,
    /// Messages being reassembled, keyed by msg_seq. Under stop-and-wait
    /// only `expected_seq` ever appears here; a windowed sender may run
    /// up to `RECV_HORIZON` ahead.
    pending: HashMap<u32, PendingMsg>,
    /// msg_seq of the last message handed up, tracked independently of
    /// `expected_seq` so the conformance oracle can cross-check the
    /// exactly-once, in-order delivery bookkeeping.
    last_delivered: Option<u32>,
}

/// Receiver statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RmpReceiverStats {
    pub fragments_in: u64,
    pub duplicates: u64,
    pub delivered: u64,
    /// Every ack emitted, including re-acks of duplicates.
    pub acks_sent: u64,
}

/// The receive half: tracks per-channel reassembly. A channel is the
/// (source CAB, source mailbox, destination mailbox) triple.
#[derive(Debug, Default)]
pub struct RmpReceiver {
    channels: HashMap<(u16, u16, u16), RecvChannel>,
    stats: RmpReceiverStats,
}

impl RmpReceiver {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn stats(&self) -> &RmpReceiverStats {
        &self.stats
    }

    /// Process a Data packet from `src_cab`.
    pub fn on_data(
        &mut self,
        src_cab: u16,
        hdr: &RmpHeader,
        payload: &[u8],
        out: &mut Vec<RmpRecvAction>,
    ) {
        debug_assert_eq!(hdr.kind, RmpKind::Data);
        self.stats.fragments_in += 1;
        let key = (src_cab, hdr.src_mbox, hdr.dst_mbox);
        let ch = self.channels.entry(key).or_default();

        let dist = hdr.msg_seq.wrapping_sub(ch.expected_seq);
        if dist > u32::MAX / 2 {
            // an already-delivered message: the sender missed our ack
            self.stats.duplicates += 1;
            let mut a = hdr.ack_for();
            a.total_len = ch.expected_seq;
            out.push(RmpRecvAction::Ack { dst_cab: src_cab, packet: a.build(&[]) });
            self.stats.acks_sent += 1;
            return;
        }
        if dist >= RECV_HORIZON {
            // absurdly far ahead of any sane send window; drop silently
            return;
        }
        let m = ch.pending.entry(hdr.msg_seq).or_default();
        if m.complete || hdr.frag_idx < m.next_frag {
            // duplicate fragment (of a complete-but-undelivered message,
            // or one we already absorbed): re-ack, don't re-buffer
            self.stats.duplicates += 1;
            let mut a = hdr.ack_for();
            a.total_len = ch.expected_seq;
            out.push(RmpRecvAction::Ack { dst_cab: src_cab, packet: a.build(&[]) });
            self.stats.acks_sent += 1;
            return;
        }
        if hdr.frag_idx > m.next_frag {
            // a gap within one message is impossible (fragments are
            // individually stop-and-waited); drop
            return;
        }
        m.buf.extend_from_slice(payload);
        m.next_frag += 1;
        if hdr.last_frag {
            debug_assert_eq!(m.buf.len(), hdr.total_len as usize);
            m.complete = true;
        }
        // hand up every in-order complete message (a windowed sender
        // may have finished several that were blocked on this one)
        let mut deliveries = Vec::new();
        while ch.pending.get(&ch.expected_seq).is_some_and(|p| p.complete) {
            let p = ch.pending.remove(&ch.expected_seq).expect("checked complete");
            if crate::conform::enabled() {
                crate::conform::check_rmp_delivery(key, ch.last_delivered, ch.expected_seq);
            }
            ch.last_delivered = Some(ch.expected_seq);
            ch.expected_seq = ch.expected_seq.wrapping_add(1);
            deliveries.push(p.buf);
        }
        // the ack carries the post-delivery cumulative edge and goes
        // out before the deliveries — the legacy action order
        let mut a = hdr.ack_for();
        a.total_len = ch.expected_seq;
        out.push(RmpRecvAction::Ack { dst_cab: src_cab, packet: a.build(&[]) });
        self.stats.acks_sent += 1;
        for message in deliveries {
            self.stats.delivered += 1;
            out.push(RmpRecvAction::Deliver {
                dst_mbox: hdr.dst_mbox,
                src_cab,
                src_mbox: hdr.src_mbox,
                message,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_wire::nectar::RmpHeader;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    fn cfg(max_fragment: usize) -> RmpConfig {
        RmpConfig {
            max_fragment,
            rto: SimDuration::from_micros(100),
            rto_max: SimDuration::from_micros(100),
            max_retries: 3,
            window: 1,
        }
    }

    fn wcfg(max_fragment: usize, window: usize) -> RmpConfig {
        RmpConfig { window, ..cfg(max_fragment) }
    }

    /// Deliver a Transmit action's packet to the receiver, returning
    /// receiver actions.
    fn deliver(rx: &mut RmpReceiver, src_cab: u16, packet: &[u8]) -> Vec<RmpRecvAction> {
        let (hdr, payload) = RmpHeader::parse(packet).unwrap();
        let mut out = Vec::new();
        rx.on_data(src_cab, &hdr, payload, &mut out);
        out
    }

    fn ack_sender(tx: &mut RmpSender, now: SimTime, ack_packet: &[u8]) -> Vec<RmpSendAction> {
        let (hdr, _) = RmpHeader::parse(ack_packet).unwrap();
        let mut out = Vec::new();
        tx.on_ack(now, &hdr, &mut out);
        out
    }

    #[test]
    fn single_fragment_message() {
        let mut tx = RmpSender::new(2, 7, 3, cfg(1024));
        let mut rx = RmpReceiver::new();
        let seq = tx.send(b"hello rmp".to_vec());
        assert_eq!(seq, 0);
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        let RmpSendAction::Transmit { dst_cab, packet } = &out[0] else { panic!() };
        assert_eq!(*dst_cab, 2);
        let racts = deliver(&mut rx, 1, packet);
        assert_eq!(racts.len(), 2); // ack + deliver
        let RmpRecvAction::Deliver { dst_mbox, src_cab, src_mbox, message } = &racts[1] else {
            panic!()
        };
        assert_eq!((*dst_mbox, *src_cab, *src_mbox), (7, 1, 3));
        assert_eq!(message, b"hello rmp");
        let RmpRecvAction::Ack { packet: ackp, .. } = &racts[0] else { panic!() };
        let sacts = ack_sender(&mut tx, t(10), ackp);
        assert_eq!(sacts, vec![RmpSendAction::Delivered { msg_seq: 0 }]);
        assert_eq!(tx.backlog(), 0);
    }

    #[test]
    fn multi_fragment_stop_and_wait() {
        let mut tx = RmpSender::new(2, 7, 3, cfg(100));
        let mut rx = RmpReceiver::new();
        let msg: Vec<u8> = (0..250u32).map(|i| i as u8).collect();
        tx.send(msg.clone());
        let mut now = t(0);
        let mut out = Vec::new();
        tx.poll(now, &mut out);
        let mut delivered = None;
        let mut hops = 0;
        while let Some(RmpSendAction::Transmit { packet, .. }) = out.pop() {
            hops += 1;
            assert!(hops < 10, "too many fragments");
            now += SimDuration::from_micros(10);
            let racts = deliver(&mut rx, 1, &packet);
            for act in racts {
                match act {
                    RmpRecvAction::Ack { packet, .. } => {
                        out.extend(ack_sender(&mut tx, now, &packet));
                    }
                    RmpRecvAction::Deliver { message, .. } => delivered = Some(message),
                }
            }
            // filter non-transmits
            out.retain(|a| matches!(a, RmpSendAction::Transmit { .. }));
        }
        assert_eq!(hops, 3); // 250 bytes at 100-byte fragments
        assert_eq!(delivered.unwrap(), msg);
        assert_eq!(tx.stats().messages_delivered, 1);
        // at most one fragment was in flight at any step: implied by the
        // single-packet loop above
    }

    #[test]
    fn lost_fragment_retransmitted() {
        let mut tx = RmpSender::new(2, 7, 3, cfg(1024));
        let mut rx = RmpReceiver::new();
        tx.send(vec![9u8; 64]);
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        assert_eq!(out.len(), 1); // transmitted … and lost
        out.clear();
        // nothing happens before the deadline
        tx.poll(t(50), &mut out);
        assert!(out.is_empty());
        // past the 100 us RTO: retransmit
        tx.poll(t(150), &mut out);
        let RmpSendAction::Transmit { packet, .. } = &out[0] else { panic!() };
        let racts = deliver(&mut rx, 1, packet);
        assert_eq!(racts.len(), 2);
        assert_eq!(tx.stats().retransmits, 1);
    }

    #[test]
    fn lost_ack_causes_duplicate_which_is_reacked() {
        let mut tx = RmpSender::new(2, 7, 3, cfg(1024));
        let mut rx = RmpReceiver::new();
        tx.send(vec![1u8; 16]);
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        let RmpSendAction::Transmit { packet, .. } = out.remove(0) else { panic!() };
        // receiver gets it, delivers, acks — but the ack is lost
        let racts = deliver(&mut rx, 1, &packet);
        assert!(matches!(racts[1], RmpRecvAction::Deliver { .. }));
        // sender times out and retransmits the same fragment
        tx.poll(t(200), &mut out);
        let RmpSendAction::Transmit { packet, .. } = out.remove(0) else { panic!() };
        let racts2 = deliver(&mut rx, 1, &packet);
        // duplicate: re-acked, NOT redelivered
        assert_eq!(racts2.len(), 1);
        assert!(matches!(racts2[0], RmpRecvAction::Ack { .. }));
        assert_eq!(rx.stats().duplicates, 1);
        assert_eq!(rx.stats().delivered, 1);
        // the re-ack completes the exchange
        let RmpRecvAction::Ack { packet, .. } = &racts2[0] else { panic!() };
        let sacts = ack_sender(&mut tx, t(210), packet);
        assert!(sacts.contains(&RmpSendAction::Delivered { msg_seq: 0 }));
    }

    #[test]
    fn retries_exhausted_fails_channel() {
        let mut tx = RmpSender::new(2, 7, 3, cfg(1024));
        tx.send(vec![0u8; 8]);
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        let mut now = t(0);
        let mut failed = false;
        for _ in 0..10 {
            now += SimDuration::from_millis(1);
            out.clear();
            tx.poll(now, &mut out);
            if out.iter().any(|a| matches!(a, RmpSendAction::Failed { .. })) {
                failed = true;
                break;
            }
        }
        assert!(failed);
        assert!(tx.is_failed());
        // further polls do nothing
        out.clear();
        tx.poll(now + SimDuration::from_secs(1), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn exponential_backoff_doubles_up_to_cap() {
        let cfg = RmpConfig {
            max_fragment: 1024,
            rto: SimDuration::from_micros(100),
            rto_max: SimDuration::from_micros(600),
            max_retries: 10,
            window: 1,
        };
        // the schedule itself: 100, 200, 400, 600, 600, …
        assert_eq!(cfg.backoff(0), SimDuration::from_micros(100));
        assert_eq!(cfg.backoff(1), SimDuration::from_micros(200));
        assert_eq!(cfg.backoff(2), SimDuration::from_micros(400));
        assert_eq!(cfg.backoff(3), SimDuration::from_micros(600));
        assert_eq!(cfg.backoff(9), SimDuration::from_micros(600));
        // and the default config keeps the legacy constant timeout
        let legacy = RmpConfig::default();
        assert_eq!(legacy.backoff(0), legacy.rto);
        assert_eq!(legacy.backoff(7), legacy.rto);

        // observed through the sender: the second retransmission waits
        // 2x the first.
        let mut tx = RmpSender::new(2, 7, 3, cfg);
        tx.send(vec![0u8; 8]);
        let mut out = Vec::new();
        tx.poll(t(0), &mut out); // first transmit, deadline = 100
        out.clear();
        tx.poll(t(100), &mut out); // retry #1, deadline = 100 + 200
        assert_eq!(out.len(), 1);
        assert_eq!(tx.next_wakeup(), Some(t(300)));
        out.clear();
        tx.poll(t(299), &mut out);
        assert!(out.is_empty(), "backoff deadline not yet reached");
        tx.poll(t(300), &mut out); // retry #2, deadline = 300 + 400
        assert_eq!(out.len(), 1);
        assert_eq!(tx.next_wakeup(), Some(t(700)));
    }

    #[test]
    fn pipelined_messages_in_order() {
        let mut tx = RmpSender::new(2, 7, 3, cfg(64));
        let mut rx = RmpReceiver::new();
        let m1: Vec<u8> = vec![1; 100];
        let m2: Vec<u8> = vec![2; 10];
        tx.send(m1.clone());
        tx.send(m2.clone());
        assert_eq!(tx.backlog(), 2);
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        let mut delivered = Vec::new();
        let mut now = t(0);
        let mut steps = 0;
        while let Some(act) = out.pop() {
            steps += 1;
            assert!(steps < 20);
            match act {
                RmpSendAction::Transmit { packet, .. } => {
                    now += SimDuration::from_micros(5);
                    for ract in deliver(&mut rx, 1, &packet) {
                        match ract {
                            RmpRecvAction::Ack { packet, .. } => {
                                out.extend(ack_sender(&mut tx, now, &packet))
                            }
                            RmpRecvAction::Deliver { message, .. } => delivered.push(message),
                        }
                    }
                }
                RmpSendAction::Delivered { .. } => {}
                RmpSendAction::Failed { .. } => panic!("failed"),
            }
        }
        assert_eq!(delivered, vec![m1, m2]);
    }

    #[test]
    fn channels_are_independent() {
        let mut rx = RmpReceiver::new();
        // same mailbox indices but different source CABs
        let h = RmpHeader {
            kind: RmpKind::Data,
            last_frag: true,
            dst_mbox: 7,
            src_mbox: 3,
            msg_seq: 0,
            frag_idx: 0,
            total_len: 1,
        };
        let p = h.build(b"a");
        let r1 = deliver(&mut rx, 1, &p);
        let r2 = deliver(&mut rx, 2, &p);
        assert!(matches!(r1[1], RmpRecvAction::Deliver { .. }));
        assert!(matches!(r2[1], RmpRecvAction::Deliver { .. }));
        assert_eq!(rx.stats().delivered, 2);
    }

    #[test]
    fn empty_message_is_legal() {
        let mut tx = RmpSender::new(2, 7, 3, cfg(1024));
        let mut rx = RmpReceiver::new();
        tx.send(Vec::new());
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        let RmpSendAction::Transmit { packet, .. } = &out[0] else { panic!() };
        let racts = deliver(&mut rx, 1, packet);
        let RmpRecvAction::Deliver { message, .. } = &racts[1] else { panic!() };
        assert!(message.is_empty());
    }

    // ------------------------------------------------------------------
    // windowed mode
    // ------------------------------------------------------------------

    #[test]
    fn windowed_sender_keeps_window_full() {
        let mut tx = RmpSender::new(2, 7, 3, wcfg(1024, 3));
        for k in 0..5u8 {
            tx.send(vec![k; 8]);
        }
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        // window = 3: first fragments of messages 0..3 go out together
        let seqs: Vec<u32> = out
            .iter()
            .map(|a| {
                let RmpSendAction::Transmit { packet, .. } = a else { panic!() };
                RmpHeader::parse(packet).unwrap().0.msg_seq
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(tx.backlog(), 5);
        // acking message 0 delivers it and admits message 3
        let mut rx = RmpReceiver::new();
        let RmpSendAction::Transmit { packet, .. } = &out[0] else { panic!() };
        let racts = deliver(&mut rx, 1, packet);
        let RmpRecvAction::Ack { packet: ackp, .. } = &racts[0] else { panic!() };
        let sacts = ack_sender(&mut tx, t(10), ackp);
        assert_eq!(sacts.len(), 2);
        assert_eq!(sacts[0], RmpSendAction::Delivered { msg_seq: 0 });
        let RmpSendAction::Transmit { packet, .. } = &sacts[1] else { panic!() };
        assert_eq!(RmpHeader::parse(packet).unwrap().0.msg_seq, 3);
        assert_eq!(tx.backlog(), 4);
    }

    #[test]
    fn windowed_out_of_order_arrival_delivers_in_order() {
        let mut tx = RmpSender::new(2, 7, 3, wcfg(1024, 2));
        let mut rx = RmpReceiver::new();
        let m0 = vec![0u8; 16];
        let m1 = vec![1u8; 16];
        tx.send(m0.clone());
        tx.send(m1.clone());
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        assert_eq!(out.len(), 2);
        let RmpSendAction::Transmit { packet: p0, .. } = out[0].clone() else { panic!() };
        let RmpSendAction::Transmit { packet: p1, .. } = out[1].clone() else { panic!() };
        // message 1 arrives first: buffered and selectively acked, but
        // NOT delivered (message 0 is still missing)
        let racts = deliver(&mut rx, 1, &p1);
        assert_eq!(racts.len(), 1);
        assert!(matches!(racts[0], RmpRecvAction::Ack { .. }));
        let RmpRecvAction::Ack { packet: ack1, .. } = &racts[0] else { panic!() };
        // that selective ack quiesces flight 1 without retransmitting
        let sacts = ack_sender(&mut tx, t(5), ack1);
        assert!(sacts.is_empty());
        assert_eq!(tx.stats().retransmits, 0);
        // message 0 arrives: both deliver, in order, in one batch
        let racts = deliver(&mut rx, 1, &p0);
        assert_eq!(racts.len(), 3); // ack + deliver(0) + deliver(1)
        let RmpRecvAction::Deliver { message, .. } = &racts[1] else { panic!() };
        assert_eq!(message, &m0);
        let RmpRecvAction::Deliver { message, .. } = &racts[2] else { panic!() };
        assert_eq!(message, &m1);
        // the cumulative ack completes both flights in order
        let RmpRecvAction::Ack { packet: ack0, .. } = &racts[0] else { panic!() };
        let sacts = ack_sender(&mut tx, t(10), ack0);
        assert_eq!(
            sacts,
            vec![RmpSendAction::Delivered { msg_seq: 0 }, RmpSendAction::Delivered { msg_seq: 1 },]
        );
        assert_eq!(tx.backlog(), 0);
        assert_eq!(rx.stats().delivered, 2);
    }

    #[test]
    fn windowed_multi_fragment_messages_interleave() {
        let mut tx = RmpSender::new(2, 7, 3, wcfg(32, 4));
        let mut rx = RmpReceiver::new();
        let msgs: Vec<Vec<u8>> = (0..4u8).map(|k| vec![k; 50 + k as usize * 30]).collect();
        for m in &msgs {
            tx.send(m.clone());
        }
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        let mut delivered = Vec::new();
        let mut now = t(0);
        let mut steps = 0;
        // drive to completion with a perfect link
        while let Some(act) = out.pop() {
            steps += 1;
            assert!(steps < 100);
            if let RmpSendAction::Transmit { packet, .. } = act {
                now += SimDuration::from_micros(1);
                for ract in deliver(&mut rx, 1, &packet) {
                    match ract {
                        RmpRecvAction::Ack { packet, .. } => {
                            out.extend(ack_sender(&mut tx, now, &packet))
                        }
                        RmpRecvAction::Deliver { message, .. } => delivered.push(message),
                    }
                }
            }
        }
        assert_eq!(delivered, msgs);
        assert_eq!(tx.stats().messages_delivered, 4);
        assert_eq!(tx.stats().retransmits, 0);
        assert_eq!(tx.next_wakeup(), None);
    }

    /// Satellite pin: `retransmits` counts wire retransmissions, not
    /// timer re-arms. A selective ack re-arms a fully-acked flight's
    /// timer with no Transmit and no counter bump; a timeout produces
    /// exactly one of each.
    #[test]
    fn retransmit_counter_counts_wire_sends_only() {
        let mut tx = RmpSender::new(2, 7, 3, wcfg(1024, 2));
        let mut rx = RmpReceiver::new();
        tx.send(vec![0u8; 8]);
        tx.send(vec![1u8; 8]);
        let mut out = Vec::new();
        tx.poll(t(0), &mut out);
        let RmpSendAction::Transmit { packet: p1, .. } = out[1].clone() else { panic!() };
        // only message 1 arrives; its selective ack re-arms the flight
        // timer (all fragments acked) without any wire send
        let racts = deliver(&mut rx, 1, &p1);
        let RmpRecvAction::Ack { packet: ack1, .. } = &racts[0] else { panic!() };
        let sacts = ack_sender(&mut tx, t(50), ack1);
        assert!(sacts.is_empty(), "re-arm must not transmit");
        assert_eq!(tx.stats().retransmits, 0, "re-arm must not count as a retransmit");
        // flight 0 (never delivered) still holds its original deadline
        assert_eq!(tx.next_wakeup(), Some(t(100)), "unacked flight keeps the earliest deadline");
        // flight 0 times out: exactly one wire retransmit, counted once
        let mut out2 = Vec::new();
        tx.poll(t(100), &mut out2);
        let wire2 = out2.iter().filter(|a| matches!(a, RmpSendAction::Transmit { .. })).count();
        assert_eq!(wire2, 1);
        assert_eq!(tx.stats().retransmits, 1);
        // with flight 0 pushed to t(200), the selective-ack re-arm of
        // flight 1 (ack at t(50) + rto) is now the earliest deadline
        assert_eq!(tx.next_wakeup(), Some(t(150)), "timer re-armed to 50 + rto");
        // its timeout re-elicits the cumulative ack: again 1:1 with the
        // counter
        let mut out3 = Vec::new();
        tx.poll(t(150), &mut out3);
        let wire3 = out3.iter().filter(|a| matches!(a, RmpSendAction::Transmit { .. })).count();
        assert_eq!(wire3, 1);
        assert_eq!(tx.stats().retransmits as usize, wire2 + wire3);
        assert_eq!(tx.stats().fragments_sent, 2 + (wire2 + wire3) as u64);
    }

    #[test]
    fn message_beyond_recv_horizon_is_dropped() {
        let mut rx = RmpReceiver::new();
        let h = RmpHeader {
            kind: RmpKind::Data,
            last_frag: true,
            dst_mbox: 7,
            src_mbox: 3,
            msg_seq: RECV_HORIZON, // expected_seq is 0
            frag_idx: 0,
            total_len: 1,
        };
        let mut out = Vec::new();
        rx.on_data(1, &h, b"x", &mut out);
        assert!(out.is_empty(), "beyond-horizon fragment neither acked nor buffered");
        // just inside the horizon it is buffered and selectively acked
        let h2 = RmpHeader { msg_seq: RECV_HORIZON - 1, ..h };
        rx.on_data(1, &h2, b"x", &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], RmpRecvAction::Ack { .. }));
        assert_eq!(rx.stats().delivered, 0);
    }
}
