//! The ICMP responder.
//!
//! §4.1: "ICMP is implemented as a mailbox upcall" — it is small enough
//! to run as a side effect of the IP input mailbox being written. This
//! engine implements exactly that scope: answer echo requests, surface
//! received echo replies and errors to the caller, and build the error
//! messages IP needs (protocol/port unreachable, reassembly time
//! exceeded).

use std::net::Ipv4Addr;

use nectar_wire::icmp::{IcmpMessage, UnreachableCode};
use nectar_wire::ipv4::HEADER_LEN;
use nectar_wire::WireError;

/// What the ICMP upcall decided about an incoming ICMP datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IcmpInput {
    /// Send this reply back to `dst` (echo request handling).
    Reply { dst: Ipv4Addr, message: IcmpMessage },
    /// An echo reply for a ping we (or a host application) issued.
    EchoReply { src: Ipv4Addr, ident: u16, seq: u16, payload: Vec<u8> },
    /// An error message arrived; the quoted original lets transports
    /// map it back to a connection (not needed on a healthy LAN, but
    /// surfaced for completeness).
    Error { src: Ipv4Addr, message: IcmpMessage },
    /// Unparseable; dropped.
    Bad(WireError),
}

/// Counters for the upcall.
#[derive(Clone, Copy, Debug, Default)]
pub struct IcmpStats {
    pub echo_requests: u64,
    pub echo_replies: u64,
    pub errors_in: u64,
    pub errors_out: u64,
    pub bad: u64,
}

/// The ICMP engine: stateless except for counters.
#[derive(Debug, Default)]
pub struct IcmpEngine {
    stats: IcmpStats,
}

impl IcmpEngine {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn stats(&self) -> &IcmpStats {
        &self.stats
    }

    /// Process an ICMP datagram delivered by IP from `src`.
    pub fn input(&mut self, src: Ipv4Addr, data: &[u8]) -> IcmpInput {
        match IcmpMessage::parse(data) {
            Err(e) => {
                self.stats.bad += 1;
                IcmpInput::Bad(e)
            }
            Ok(msg) => match msg {
                IcmpMessage::EchoRequest { .. } => {
                    self.stats.echo_requests += 1;
                    let reply = msg.echo_reply_for().expect("echo request has a reply");
                    IcmpInput::Reply { dst: src, message: reply }
                }
                IcmpMessage::EchoReply { ident, seq, payload } => {
                    self.stats.echo_replies += 1;
                    IcmpInput::EchoReply { src, ident, seq, payload }
                }
                other => {
                    self.stats.errors_in += 1;
                    IcmpInput::Error { src, message: other }
                }
            },
        }
    }

    /// Build a Destination Unreachable quoting the offending packet
    /// (IP header + first 8 payload bytes, per RFC 792).
    pub fn unreachable_for(
        &mut self,
        offending_packet: &[u8],
        code: UnreachableCode,
    ) -> IcmpMessage {
        self.stats.errors_out += 1;
        let quote_len = (HEADER_LEN + 8).min(offending_packet.len());
        IcmpMessage::DestUnreachable { code, original: offending_packet[..quote_len].to_vec() }
    }

    /// Build a reassembly Time Exceeded from the quote captured by the
    /// IP endpoint.
    pub fn time_exceeded_for(&mut self, quote: Vec<u8>) -> IcmpMessage {
        self.stats.errors_out += 1;
        IcmpMessage::TimeExceeded { original: quote }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    #[test]
    fn echo_request_generates_reply() {
        let mut eng = IcmpEngine::new();
        let req = IcmpMessage::EchoRequest { ident: 5, seq: 1, payload: b"abc".to_vec() };
        match eng.input(a(3), &req.build()) {
            IcmpInput::Reply { dst, message } => {
                assert_eq!(dst, a(3));
                match message {
                    IcmpMessage::EchoReply { ident, seq, payload } => {
                        assert_eq!((ident, seq), (5, 1));
                        assert_eq!(payload, b"abc");
                    }
                    other => panic!("unexpected: {other:?}"),
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(eng.stats().echo_requests, 1);
    }

    #[test]
    fn echo_reply_surfaced() {
        let mut eng = IcmpEngine::new();
        let rep = IcmpMessage::EchoReply { ident: 9, seq: 2, payload: vec![7; 4] };
        match eng.input(a(4), &rep.build()) {
            IcmpInput::EchoReply { src, ident, seq, payload } => {
                assert_eq!(src, a(4));
                assert_eq!((ident, seq), (9, 2));
                assert_eq!(payload, vec![7; 4]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn errors_surfaced_and_bad_dropped() {
        let mut eng = IcmpEngine::new();
        let err =
            IcmpMessage::DestUnreachable { code: UnreachableCode::Port, original: vec![0; 28] };
        assert!(matches!(eng.input(a(1), &err.build()), IcmpInput::Error { .. }));
        assert!(matches!(eng.input(a(1), &[1, 2, 3]), IcmpInput::Bad(WireError::Truncated)));
        assert_eq!(eng.stats().errors_in, 1);
        assert_eq!(eng.stats().bad, 1);
    }

    #[test]
    fn unreachable_quotes_original() {
        let mut eng = IcmpEngine::new();
        let packet: Vec<u8> = (0..40u8).collect();
        let msg = eng.unreachable_for(&packet, UnreachableCode::Protocol);
        match msg {
            IcmpMessage::DestUnreachable { code, original } => {
                assert_eq!(code, UnreachableCode::Protocol);
                assert_eq!(original, packet[..28].to_vec());
            }
            other => panic!("unexpected: {other:?}"),
        }
        // short packets quoted in full
        let msg = eng.unreachable_for(&packet[..10], UnreachableCode::Port);
        match msg {
            IcmpMessage::DestUnreachable { original, .. } => assert_eq!(original.len(), 10),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(eng.stats().errors_out, 2);
    }
}
