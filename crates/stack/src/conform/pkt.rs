//! packetdrill-style scripted packet tests.
//!
//! A `.pkt` script drives one stack endpoint from the wire side:
//! injected lines (`<`) are hand-crafted segments fed to the stack,
//! expectation lines (`>`) assert — strictly, in order, with timing —
//! every segment the stack emits. Socket-level commands (`connect`,
//! `send`, `recv`, `close`, `state`, …) assert the application-visible
//! behaviour between packets. The scripts live in
//! `crates/stack/tests/scripts/` and run from `tests/conformance.rs`;
//! DESIGN.md §11 documents the format and how to add a case.
//!
//! # TCP scripts
//!
//! ```text
//! # active open, one write, clean close
//! 0.000 connect
//! 0.000 > S   seq=0 mss=4016
//! 0.010 < S.  seq=0 ack=1 win=65535 mss=4016
//! 0.010 > .   seq=1 ack=1
//! ```
//!
//! Lines are `TIME DIR FLAGS [k=v …]` or `TIME COMMAND [args]`. `TIME`
//! is seconds (absolute, or `+delta` from the previous line). Flags use
//! packetdrill's alphabet: `S`yn, `F`in, `R`st, `P`sh and `.` for ACK.
//! Sequence numbers are *relative*: on injected segments `seq=` is
//! relative to the peer's ISS (a fixed 12345) and `ack=` to the local
//! ISS; on expected segments the roles swap. The local ISS is captured
//! from the first SYN the stack emits, so scripts never hard-code it.
//! Payload bytes are the deterministic pattern `(relative_seq − 1) mod
//! 251`, letting `recv N` verify content, not just length.
//!
//! Commands: `connect`, `listen`, `send N`, `recv N`, `close`, `abort`,
//! `state NAME`, `quiet` (assert nothing was emitted up to this time),
//! `tolerance SECS`, and `opt k=v …` (config overrides; must precede
//! the open — including `sack=1`, `wscale=N` and `cc=newreno|cubic`).
//!
//! Segment lines may also carry `wscale=N` and `sackok=1` (SYN
//! options) and `sack=L-R/L-R…` (SACK blocks, edges relative with the
//! same base as `ack=`): on `<` lines they are injected, on `>` lines
//! asserted.
//!
//! # IP scripts
//!
//! A first line `mode ip` switches to the fragment-reassembly
//! interpreter: `frag IDENT OFF LEN more|last FILL -> held` injects one
//! fragment and asserts the outcome; `-> deliver TOTAL SPEC` asserts a
//! completed datagram whose payload matches `SPEC` (`aa*16,bb*8`
//! run-length hex). `caps N BYTES`, `timeout MS`, `time MS`,
//! `expire N` and `dropped N` exercise the eviction and expiry paths.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use nectar_sim::{SimDuration, SimTime};
use nectar_wire::ipv4::{IpProtocol, Ipv4Header};
use nectar_wire::tcp::{SeqNum, TcpFlags, TcpHeader};

use crate::ip::{IpEndpoint, IpInput};
use crate::tcp::{CcAlgorithm, SocketId, TcpConfig, TcpStack, TcpStackEvent, TcpState};

/// The scripted endpoint's address.
const LOCAL: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
/// The scripted peer (the script itself plays this host).
const REMOTE: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
/// The peer's initial send sequence number: fixed so scripts can use
/// small relative numbers.
const REMOTE_ISS: SeqNum = SeqNum(12345);

/// Deterministic payload byte at 1-based relative sequence `r`.
fn pattern_byte(r: u32) -> u8 {
    (r.wrapping_sub(1) % 251) as u8
}

/// Run a `.pkt` script to completion, panicking (with the offending
/// line) on any conformance mismatch.
pub fn run(script: &str) {
    let lines: Vec<(usize, &str)> = script
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty())
        .collect();
    if lines.first().is_some_and(|&(_, l)| l == "mode ip") {
        run_ip(&lines[1..]);
    } else {
        run_tcp(&lines);
    }
}

#[cold]
fn fail(line_no: usize, line: &str, msg: String) -> ! {
    panic!("pkt script line {line_no} `{line}`: {msg}");
}

// ----------------------------------------------------------------------
// TCP interpreter
// ----------------------------------------------------------------------

struct TcpRunner {
    cfg: TcpConfig,
    stack: Option<TcpStack>,
    id: Option<SocketId>,
    local_port: u16,
    remote_port: u16,
    now: SimTime,
    last_time: SimTime,
    tolerance: SimDuration,
    local_iss: Option<SeqNum>,
    /// Parsed emissions not yet matched by a `>` line.
    pending: VecDeque<(SimTime, TcpHeader, Vec<u8>)>,
    /// Application bytes written so far (continues the send pattern).
    sent: u32,
    /// Application bytes read so far (continues the recv pattern).
    rcvd: u32,
}

/// One parsed `k=v` list.
#[derive(Default)]
struct Fields {
    seq: Option<u32>,
    ack: Option<u32>,
    win: Option<u16>,
    mss: Option<u16>,
    len: usize,
    /// Window-scale option (`wscale=N`, SYN segments only).
    wscale: Option<u8>,
    /// SACK-permitted option (`sackok=1`, SYN segments only).
    sackok: bool,
    /// SACK blocks (`sack=l-r/l-r…`), edges relative like `ack=`.
    sack: Option<Vec<(u32, u32)>>,
}

fn parse_fields(line_no: usize, line: &str, toks: &[&str]) -> Fields {
    let mut f = Fields::default();
    for t in toks {
        let Some((k, v)) = t.split_once('=') else {
            fail(line_no, line, format!("expected k=v, got `{t}`"));
        };
        if k == "sack" {
            let mut blocks = Vec::new();
            for part in v.split('/') {
                let Some((l, r)) = part.split_once('-') else {
                    fail(line_no, line, format!("sack block `{part}` is not L-R"));
                };
                let l: u32 = l
                    .parse()
                    .unwrap_or_else(|_| fail(line_no, line, format!("bad number in `{t}`")));
                let r: u32 = r
                    .parse()
                    .unwrap_or_else(|_| fail(line_no, line, format!("bad number in `{t}`")));
                blocks.push((l, r));
            }
            f.sack = Some(blocks);
            continue;
        }
        let n: u64 =
            v.parse().unwrap_or_else(|_| fail(line_no, line, format!("bad number in `{t}`")));
        match k {
            "seq" => f.seq = Some(n as u32),
            "ack" => f.ack = Some(n as u32),
            "win" => f.win = Some(n as u16),
            "mss" => f.mss = Some(n as u16),
            "len" => f.len = n as usize,
            "wscale" => f.wscale = Some(n as u8),
            "sackok" => f.sackok = n != 0,
            _ => fail(line_no, line, format!("unknown field `{k}`")),
        }
    }
    f
}

fn parse_flags(line_no: usize, line: &str, s: &str) -> TcpFlags {
    let mut flags = TcpFlags::EMPTY;
    for c in s.chars() {
        flags |= match c {
            'S' => TcpFlags::SYN,
            'F' => TcpFlags::FIN,
            'R' => TcpFlags::RST,
            'P' => TcpFlags::PSH,
            '.' => TcpFlags::ACK,
            _ => fail(line_no, line, format!("unknown flag `{c}`")),
        };
    }
    flags
}

fn parse_state(line_no: usize, line: &str, s: &str) -> TcpState {
    match s {
        "Closed" => TcpState::Closed,
        "SynSent" => TcpState::SynSent,
        "SynReceived" => TcpState::SynReceived,
        "Established" => TcpState::Established,
        "FinWait1" => TcpState::FinWait1,
        "FinWait2" => TcpState::FinWait2,
        "CloseWait" => TcpState::CloseWait,
        "Closing" => TcpState::Closing,
        "LastAck" => TcpState::LastAck,
        "TimeWait" => TcpState::TimeWait,
        _ => fail(line_no, line, format!("unknown state `{s}`")),
    }
}

impl TcpRunner {
    fn new() -> TcpRunner {
        TcpRunner {
            cfg: TcpConfig::default(),
            stack: None,
            id: None,
            local_port: 5000,
            remote_port: 4000,
            now: SimTime::ZERO,
            last_time: SimTime::ZERO,
            tolerance: SimDuration::from_millis(1),
            local_iss: None,
            pending: VecDeque::new(),
            sent: 0,
            rcvd: 0,
        }
    }

    fn parse_time(&mut self, line_no: usize, line: &str, tok: &str) -> SimTime {
        let (base, s) = match tok.strip_prefix('+') {
            Some(rest) => (self.last_time, rest),
            None => (SimTime::ZERO, tok),
        };
        let secs: f64 =
            s.parse().unwrap_or_else(|_| fail(line_no, line, format!("bad time `{tok}`")));
        let t = base + SimDuration::from_nanos((secs * 1e9).round() as u64);
        self.last_time = t;
        t
    }

    fn stack(&mut self) -> &mut TcpStack {
        if self.stack.is_none() {
            self.stack = Some(TcpStack::new(LOCAL, self.cfg, 0x5eed));
        }
        self.stack.as_mut().expect("just created")
    }

    /// Record every emission (capturing the local ISS from its SYN).
    fn absorb(&mut self, at: SimTime, events: Vec<TcpStackEvent>) {
        for e in events {
            match e {
                TcpStackEvent::Transmit { segment, .. } => {
                    let ip = Ipv4Header::new(LOCAL, REMOTE, IpProtocol::TCP, segment.len());
                    let hdr = TcpHeader::parse(&ip, &segment, false)
                        .expect("stack emitted an unparseable segment");
                    if hdr.flags.contains(TcpFlags::SYN) && self.local_iss.is_none() {
                        self.local_iss = Some(hdr.seq);
                    }
                    let payload = segment[hdr.header_len..].to_vec();
                    self.pending.push_back((at, hdr, payload));
                }
                TcpStackEvent::Incoming { id, .. } => self.id = Some(id),
                TcpStackEvent::Socket { .. } | TcpStackEvent::Dropped => {}
            }
        }
    }

    /// Advance the clock to `t`, firing every due stack timer on the
    /// way (emissions are stamped with their timer's deadline).
    fn advance_to(&mut self, t: SimTime) {
        if self.stack.is_some() {
            while let Some(w) = self.stack().next_wakeup() {
                if w > t {
                    break;
                }
                let at = w.max(self.now);
                self.now = at;
                let evs = self.stack().poll(at);
                self.absorb(at, evs);
            }
        }
        self.now = self.now.max(t);
    }

    fn id(&self, line_no: usize, line: &str) -> SocketId {
        self.id.unwrap_or_else(|| fail(line_no, line, "no socket open yet".into()))
    }

    fn inject(&mut self, line_no: usize, line: &str, t: SimTime, flags: TcpFlags, f: Fields) {
        self.advance_to(t);
        if let Some((at, hdr, _)) = self.pending.front() {
            fail(
                line_no,
                line,
                format!("unexpected segment pending at inject: {:?} emitted at {at:?}", hdr.flags),
            );
        }
        let mut h = TcpHeader::new(self.remote_port, self.local_port);
        h.seq = SeqNum(REMOTE_ISS.0.wrapping_add(f.seq.unwrap_or(0)));
        if flags.contains(TcpFlags::ACK) {
            let base = self.local_iss.unwrap_or(SeqNum(0));
            h.ack = SeqNum(base.0.wrapping_add(f.ack.unwrap_or(0)));
        }
        h.flags = flags;
        h.window = f.win.unwrap_or(u16::MAX);
        h.mss = f.mss;
        h.wscale = f.wscale;
        h.sack_permitted = f.sackok;
        if let Some(blocks) = &f.sack {
            // injected blocks describe data *we* sent: same base as ack=
            let base = self.local_iss.unwrap_or(SeqNum(0));
            for &(l, r) in blocks {
                h.sack.push(SeqNum(base.0.wrapping_add(l)), SeqNum(base.0.wrapping_add(r)));
            }
        }
        let rel = f.seq.unwrap_or(0);
        let payload: Vec<u8> = (0..f.len as u32).map(|j| pattern_byte(rel + j)).collect();
        let segment = h.build(REMOTE, LOCAL, &payload, true);
        let ip = Ipv4Header::new(REMOTE, LOCAL, IpProtocol::TCP, segment.len());
        let evs = self.stack().on_packet(t, &ip, &segment);
        self.absorb(t, evs);
    }

    fn expect(&mut self, line_no: usize, line: &str, t: SimTime, flags: TcpFlags, f: Fields) {
        // run timers forward until something is emitted or the window
        // for this expectation has passed
        while self.pending.is_empty() {
            let Some(w) = self.stack().next_wakeup() else { break };
            if w > t + self.tolerance {
                break;
            }
            let at = w.max(self.now);
            self.now = at;
            let evs = self.stack().poll(at);
            self.absorb(at, evs);
        }
        let Some((at, hdr, payload)) = self.pending.pop_front() else {
            fail(line_no, line, format!("expected {flags:?}, but nothing was emitted"));
        };
        if at.saturating_since(t) > self.tolerance || t.saturating_since(at) > self.tolerance {
            fail(line_no, line, format!("segment emitted at {at:?}, expected near {t:?}"));
        }
        self.now = self.now.max(at);
        if hdr.flags != flags {
            fail(line_no, line, format!("flags {:?} ≠ expected {flags:?}", hdr.flags));
        }
        if payload.len() != f.len {
            fail(line_no, line, format!("len {} ≠ expected {}", payload.len(), f.len));
        }
        if let Some(rel) = f.seq {
            let base = self.local_iss.unwrap_or(SeqNum(0));
            let got = hdr.seq.0.wrapping_sub(base.0);
            if got != rel {
                fail(line_no, line, format!("seq {got} ≠ expected {rel}"));
            }
        }
        if let Some(rel) = f.ack {
            let got = hdr.ack.0.wrapping_sub(REMOTE_ISS.0);
            if got != rel {
                fail(line_no, line, format!("ack {got} ≠ expected {rel}"));
            }
        }
        if let Some(w) = f.win {
            if hdr.window != w {
                fail(line_no, line, format!("win {} ≠ expected {w}", hdr.window));
            }
        }
        if let Some(m) = f.mss {
            if hdr.mss != Some(m) {
                fail(line_no, line, format!("mss {:?} ≠ expected {m}", hdr.mss));
            }
        }
        if let Some(ws) = f.wscale {
            if hdr.wscale != Some(ws) {
                fail(line_no, line, format!("wscale {:?} ≠ expected {ws}", hdr.wscale));
            }
        }
        if f.sackok && !hdr.sack_permitted {
            fail(line_no, line, "sack-permitted option missing".into());
        }
        if let Some(blocks) = &f.sack {
            // emitted blocks describe data the *peer* sent: REMOTE_ISS base
            let got: Vec<(u32, u32)> = hdr
                .sack
                .iter()
                .map(|(l, r)| (l.0.wrapping_sub(REMOTE_ISS.0), r.0.wrapping_sub(REMOTE_ISS.0)))
                .collect();
            if got != *blocks {
                fail(line_no, line, format!("sack blocks {got:?} ≠ expected {blocks:?}"));
            }
        }
        // data segments carry the deterministic pattern
        if !payload.is_empty() && !hdr.flags.contains(TcpFlags::RST) {
            if let Some(rel) = f.seq {
                for (j, &b) in payload.iter().enumerate() {
                    let want = pattern_byte(rel + j as u32);
                    if b != want {
                        fail(
                            line_no,
                            line,
                            format!("payload byte {j} is {b:#04x}, expected {want:#04x}"),
                        );
                    }
                }
            }
        }
    }

    fn set_opt(&mut self, line_no: usize, line: &str, toks: &[&str]) {
        if self.stack.is_some() {
            fail(line_no, line, "opt must precede connect/listen".into());
        }
        for t in toks {
            let Some((k, v)) = t.split_once('=') else {
                fail(line_no, line, format!("expected k=v, got `{t}`"));
            };
            if k == "cc" {
                self.cfg.cc = match v {
                    "newreno" => CcAlgorithm::NewReno,
                    "cubic" => CcAlgorithm::Cubic,
                    _ => fail(line_no, line, format!("unknown cc algorithm `{v}`")),
                };
                continue;
            }
            let n: u64 =
                v.parse().unwrap_or_else(|_| fail(line_no, line, format!("bad number in `{t}`")));
            match k {
                "nagle" => self.cfg.nagle = n != 0,
                "sack" => self.cfg.sack = n != 0,
                "wscale" => self.cfg.wscale = Some(n as u8),
                "delayed_ack" => self.cfg.delayed_ack = n != 0,
                "mss" => self.cfg.mss = n as u16,
                "recv_buf" => self.cfg.recv_buf = n as usize,
                "send_buf" => self.cfg.send_buf = n as usize,
                "rto_initial_ms" => self.cfg.rto_initial = SimDuration::from_millis(n),
                "rto_min_ms" => self.cfg.rto_min = SimDuration::from_millis(n),
                "msl_ms" => self.cfg.msl = SimDuration::from_millis(n),
                "max_retries" => self.cfg.max_retries = n as u32,
                _ => fail(line_no, line, format!("unknown option `{k}`")),
            }
        }
    }
}

fn run_tcp(lines: &[(usize, &str)]) {
    let mut r = TcpRunner::new();
    for &(line_no, line) in lines {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "tolerance" => {
                let secs: f64 = toks
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail(line_no, line, "tolerance SECS".into()));
                r.tolerance = SimDuration::from_nanos((secs * 1e9).round() as u64);
                continue;
            }
            "opt" => {
                r.set_opt(line_no, line, &toks[1..]);
                continue;
            }
            _ => {}
        }
        let t = r.parse_time(line_no, line, toks[0]);
        let verb =
            *toks.get(1).unwrap_or_else(|| fail(line_no, line, "missing verb after time".into()));
        match verb {
            "<" | ">" => {
                let flags = parse_flags(line_no, line, toks[2]);
                let f = parse_fields(line_no, line, &toks[3..]);
                if verb == "<" {
                    r.inject(line_no, line, t, flags, f);
                } else {
                    r.expect(line_no, line, t, flags, f);
                }
            }
            "connect" => {
                r.advance_to(t);
                r.local_port = 4000;
                r.remote_port = 5000;
                let (id, evs) = r.stack().connect(t, (REMOTE, 5000), Some(4000));
                r.id = Some(id);
                r.absorb(t, evs);
            }
            "listen" => {
                r.advance_to(t);
                r.local_port = 5000;
                r.remote_port = 4000;
                r.stack().listen(5000);
            }
            "send" => {
                r.advance_to(t);
                let n: u32 = toks
                    .get(2)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail(line_no, line, "send N".into()));
                let data: Vec<u8> = (0..n).map(|k| pattern_byte(r.sent + k + 1)).collect();
                let id = r.id(line_no, line);
                let (accepted, evs) = r.stack().send(t, id, &data);
                if accepted != n as usize {
                    fail(line_no, line, format!("send accepted {accepted} of {n} bytes"));
                }
                r.sent += n;
                r.absorb(t, evs);
            }
            "recv" => {
                r.advance_to(t);
                let n: usize = toks
                    .get(2)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail(line_no, line, "recv N".into()));
                let id = r.id(line_no, line);
                let got = r.stack().recv(id, n);
                if got.len() != n {
                    fail(line_no, line, format!("recv returned {} of {n} bytes", got.len()));
                }
                for (k, &b) in got.iter().enumerate() {
                    let want = pattern_byte(r.rcvd + k as u32 + 1);
                    if b != want {
                        fail(
                            line_no,
                            line,
                            format!("recv byte {k} is {b:#04x}, expected {want:#04x}"),
                        );
                    }
                }
                r.rcvd += n as u32;
                // an application read is followed by a stack poll, so
                // receiver-side window updates go out promptly
                let evs = r.stack().poll(t);
                r.absorb(t, evs);
            }
            "close" => {
                r.advance_to(t);
                let id = r.id(line_no, line);
                let evs = r.stack().close(t, id);
                r.absorb(t, evs);
            }
            "abort" => {
                r.advance_to(t);
                let id = r.id(line_no, line);
                let evs = r.stack().abort(t, id);
                r.absorb(t, evs);
            }
            "state" => {
                r.advance_to(t);
                let want = parse_state(line_no, line, toks.get(2).copied().unwrap_or(""));
                let id = r.id(line_no, line);
                let got = r
                    .stack()
                    .socket(id)
                    .unwrap_or_else(|| fail(line_no, line, "socket removed".into()))
                    .state();
                if got != want {
                    fail(line_no, line, format!("state {got:?} ≠ expected {want:?}"));
                }
            }
            "quiet" => {
                r.advance_to(t);
                if let Some((at, hdr, _)) = r.pending.front() {
                    fail(
                        line_no,
                        line,
                        format!("expected silence, but {:?} was emitted at {at:?}", hdr.flags),
                    );
                }
            }
            other => fail(line_no, line, format!("unknown verb `{other}`")),
        }
    }
    if let Some((at, hdr, _)) = r.pending.front() {
        panic!(
            "pkt script end: unmatched emitted segment {:?} at {at:?} ({} still pending)",
            hdr.flags,
            r.pending.len()
        );
    }
}

// ----------------------------------------------------------------------
// IP fragment interpreter
// ----------------------------------------------------------------------

fn parse_spec(line_no: usize, line: &str, spec: &str) -> Vec<u8> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let (hex, count) = match part.split_once('*') {
            Some((h, c)) => (h, c.parse().unwrap_or(0)),
            None => (part, 1usize),
        };
        let b = u8::from_str_radix(hex, 16)
            .unwrap_or_else(|_| fail(line_no, line, format!("bad fill `{hex}`")));
        out.extend(std::iter::repeat_n(b, count));
    }
    out
}

fn run_ip(lines: &[(usize, &str)]) {
    let mut rx = IpEndpoint::new(LOCAL);
    let mut now = SimTime::ZERO;
    for &(line_no, line) in lines {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "caps" => {
                let (c, b) = (toks[1].parse().unwrap(), toks[2].parse().unwrap());
                rx.set_reassembly_caps(c, b);
            }
            "timeout" => {
                rx.set_reassembly_timeout(SimDuration::from_millis(toks[1].parse().unwrap()));
            }
            "time" => {
                now = SimTime::ZERO + SimDuration::from_millis(toks[1].parse().unwrap());
            }
            "frag" => {
                let ident: u16 = toks[1].parse().unwrap();
                let off: u16 = toks[2].parse().unwrap();
                let len: usize = toks[3].parse().unwrap();
                let more = match toks[4] {
                    "more" => true,
                    "last" => false,
                    other => fail(line_no, line, format!("expected more|last, got `{other}`")),
                };
                let fill = u8::from_str_radix(toks[5], 16)
                    .unwrap_or_else(|_| fail(line_no, line, "bad fill byte".into()));
                if toks.get(6) != Some(&"->") {
                    fail(line_no, line, "frag line needs `-> held|deliver …`".into());
                }
                let mut h = Ipv4Header::new(REMOTE, LOCAL, IpProtocol::UDP, len);
                h.ident = ident;
                h.frag_offset = off;
                h.more_frags = more;
                let packet = h.build_packet(&vec![fill; len]);
                let outcome = rx.input(now, &packet);
                match toks[7] {
                    "held" => {
                        if outcome != IpInput::FragmentHeld {
                            fail(line_no, line, format!("expected FragmentHeld, got {outcome:?}"));
                        }
                    }
                    "deliver" => {
                        let total: usize = toks[8].parse().unwrap();
                        let want = parse_spec(line_no, line, toks.get(9).copied().unwrap_or(""));
                        match outcome {
                            IpInput::Delivered { payload, .. } => {
                                if payload.len() != total {
                                    fail(
                                        line_no,
                                        line,
                                        format!(
                                            "delivered {} bytes, expected {total}",
                                            payload.len()
                                        ),
                                    );
                                }
                                if payload != want {
                                    fail(line_no, line, "delivered payload mismatch".into());
                                }
                            }
                            other => {
                                fail(line_no, line, format!("expected Delivered, got {other:?}"))
                            }
                        }
                    }
                    other => fail(line_no, line, format!("unknown outcome `{other}`")),
                }
            }
            "expire" => {
                let want: usize = toks[1].parse().unwrap();
                let got = rx.poll_expired(now).len();
                if got != want {
                    fail(line_no, line, format!("{got} contexts expired, expected {want}"));
                }
            }
            "dropped" => {
                let want: u64 = toks[1].parse().unwrap();
                let got = rx.stats().reassembly_dropped;
                if got != want {
                    fail(line_no, line, format!("reassembly_dropped={got}, expected {want}"));
                }
            }
            other => fail(line_no, line, format!("unknown ip verb `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_handshake_script_runs() {
        run("\
            0.000 connect\n\
            0.000 > S  seq=0 mss=4016\n\
            0.010 < S. seq=0 ack=1 win=65535 mss=4016\n\
            0.010 > .  seq=1 ack=1\n\
            0.010 state Established\n");
    }

    #[test]
    #[should_panic(expected = "flags")]
    fn wrong_expectation_fails() {
        run("\
            0.000 connect\n\
            0.000 > F seq=0\n");
    }

    #[test]
    fn inline_ip_script_runs() {
        run("\
            mode ip\n\
            frag 1 0 16 more aa -> held\n\
            frag 1 16 8 last bb -> deliver 24 aa*16,bb*8\n");
    }
}
