//! The conformance oracle: always-on protocol invariant monitors for
//! simulation builds, plus a packetdrill-style scripted packet harness
//! ([`pkt`]).
//!
//! The chaos harness (DESIGN.md §10) showed that randomized fault
//! schedules find real stack bugs — but only the ones that break its
//! four end-to-end invariants. This module pushes checking *into* the
//! stack: every TCP socket carries a [`TcpMonitor`] that validates
//! sequence-space sanity, state-machine legality and window rules on
//! every segment it emits and after every state-machine step, and the
//! IP reassembler validates its fragment bookkeeping after every
//! insert. A violation panics immediately at the first broken step —
//! not seconds of simulated time later when a stream fails to complete
//! — and the panic names the `NECTAR_CHECK_SEED` that replays it when
//! running under `nectar_sim::check::cases` (the chaos sweep and all
//! property suites).
//!
//! Activation: monitors are created when [`enabled`] is true at socket
//! creation time. The default is on for debug builds (every `cargo
//! test` run, the chaos sweep) and off for release builds (benches pay
//! nothing). Override with `NECTAR_ORACLE=1`/`NECTAR_ORACLE=0` or
//! programmatically with [`set_enabled`] — `nectar::config::Config`
//! exposes the latter as `Config::oracle` so worlds can opt chaos and
//! soak runs in explicitly.

pub mod pkt;

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU8, Ordering};

use nectar_wire::tcp::{SeqNum, TcpFlags, TcpHeader};

use crate::tcp::TcpState;

/// 0 = undecided (consult the environment), 1 = on, 2 = off.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Is the oracle active? First call resolves `NECTAR_ORACLE` (unset ⇒
/// on in debug builds, off in release); later calls are one atomic
/// load.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = match std::env::var("NECTAR_ORACLE") {
                Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
                Err(_) => cfg!(debug_assertions),
            };
            STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Force the oracle on or off, overriding the environment default.
/// Process-global: monitors are attached to sockets at creation time,
/// so flip this before building a `World` or `TcpStack`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Report an invariant violation and abort the run. The message carries
/// the replay hint for the in-flight property case, if any.
#[cold]
#[track_caller]
pub fn violation(component: &str, detail: String) -> ! {
    panic!("conformance oracle [{component}]: {detail}{}", nectar_sim::check::replay_hint());
}

// ----------------------------------------------------------------------
// TCP
// ----------------------------------------------------------------------

/// A read-only view of one socket's invariant-relevant state, assembled
/// by `TcpSocket` at each observation point.
#[derive(Clone, Copy, Debug)]
pub struct TcpView {
    pub state: TcpState,
    pub snd_una: SeqNum,
    pub snd_nxt: SeqNum,
    pub rcv_nxt: SeqNum,
    /// Sequence number our FIN occupies, once sent.
    pub fin_seq: Option<SeqNum>,
    /// Sequence position of the peer's FIN, if seen.
    pub peer_fin: Option<SeqNum>,
    pub peer_fin_processed: bool,
    pub local: (Ipv4Addr, u16),
    pub remote: (Ipv4Addr, u16),
    /// SACK was negotiated on both SYNs: only then may segments carry
    /// SACK blocks.
    pub sack_ok: bool,
    /// Window-scale shift applied to windows this socket advertises
    /// (0 when scaling was not negotiated).
    pub rcv_wscale: u8,
}

impl TcpView {
    fn who(&self) -> String {
        format!(
            "{}:{} → {}:{} [{:?}]",
            self.local.0, self.local.1, self.remote.0, self.remote.1, self.state
        )
    }
}

/// Is `from → to` a legal state-machine step, as observable at
/// entry-point granularity? The table is the transitive closure of the
/// RFC 793 diagram over one segment-processing call: a single segment
/// can legally complete the handshake *and* carry data *and* a FIN, so
/// e.g. `SynReceived → LastAck` (establish, process peer FIN, emit our
/// queued FIN) is one observable step.
fn legal_transition(from: TcpState, to: TcpState) -> bool {
    use TcpState::*;
    if from == to {
        return true;
    }
    // every state may abort to CLOSED (RST, retry exhaustion, abort())
    if to == Closed {
        return true;
    }
    matches!(
        (from, to),
        (Closed, SynSent)
            | (Closed, SynReceived)
            | (SynSent, SynReceived)      // simultaneous open
            | (SynSent, Established)
            | (SynSent, FinWait1)         // + queued FIN flushed
            | (SynReceived, Established)
            | (SynReceived, FinWait1)     // + queued FIN flushed
            | (SynReceived, CloseWait)    // + peer FIN in the same segment
            | (SynReceived, LastAck)      // + both of the above
            | (Established, FinWait1)
            | (Established, CloseWait)
            | (Established, LastAck)      // peer FIN processed, queued FIN flushed
            | (FinWait1, FinWait2)
            | (FinWait1, Closing)
            | (FinWait1, TimeWait)        // FIN+ACK in one segment
            | (FinWait2, TimeWait)
            | (CloseWait, LastAck)
            | (Closing, TimeWait)
    )
}

/// The per-connection TCP invariant monitor. One lives inside each
/// `TcpSocket` while the oracle is enabled; the socket feeds it a
/// [`TcpView`] after every public state-machine step and every emitted
/// segment.
#[derive(Clone, Debug)]
pub struct TcpMonitor {
    /// Snapshot at the previous observation (None until seeded).
    prev: Option<TcpView>,
    /// Right edge (`ack + window`) of our most recent advertised
    /// receive window: the peer may have sent up to here, so it must
    /// never move left (receiver reneging).
    adv_right: Option<SeqNum>,
}

impl TcpMonitor {
    pub fn new() -> TcpMonitor {
        TcpMonitor { prev: None, adv_right: None }
    }

    /// Check the step invariants at the end of a public entry point.
    pub fn observe(&mut self, ctx: &str, v: TcpView) {
        // --- point invariants ---
        if !v.snd_una.before_eq(v.snd_nxt) {
            violation(
                "tcp/seq",
                format!(
                    "{}: snd_una {} ran past snd_nxt {} after {ctx}",
                    v.who(),
                    v.snd_una,
                    v.snd_nxt
                ),
            );
        }
        if let Some(fin) = v.fin_seq {
            // the FIN is the last thing in our sequence space
            if v.snd_nxt != fin.add(1) {
                violation(
                    "tcp/fin",
                    format!(
                        "{}: snd_nxt {} is not FIN {} + 1 after {ctx} — data sent after FIN",
                        v.who(),
                        v.snd_nxt,
                        fin
                    ),
                );
            }
        }
        if let Some(pf) = v.peer_fin {
            let ok =
                if v.peer_fin_processed { v.rcv_nxt == pf.add(1) } else { v.rcv_nxt.before_eq(pf) };
            if !ok {
                violation(
                    "tcp/fin",
                    format!(
                        "{}: rcv_nxt {} inconsistent with peer FIN at {} (processed={}) after {ctx}",
                        v.who(),
                        v.rcv_nxt,
                        pf,
                        v.peer_fin_processed
                    ),
                );
            }
        }
        // --- step invariants vs the previous observation ---
        if let Some(p) = self.prev {
            if !legal_transition(p.state, v.state) {
                violation(
                    "tcp/state",
                    format!(
                        "{}: illegal transition {:?} → {:?} in {ctx}",
                        v.who(),
                        p.state,
                        v.state
                    ),
                );
            }
            if !p.snd_una.before_eq(v.snd_una) {
                violation(
                    "tcp/seq",
                    format!(
                        "{}: snd_una moved back {} → {} in {ctx}",
                        v.who(),
                        p.snd_una,
                        v.snd_una
                    ),
                );
            }
            // snd_nxt/rcv_nxt rewind legally only during the handshake
            // (SYN retransmission, simultaneous open re-seeding irs)
            if p.state.synchronized() {
                if !p.snd_nxt.before_eq(v.snd_nxt) {
                    violation(
                        "tcp/seq",
                        format!(
                            "{}: snd_nxt moved back {} → {} in {ctx}",
                            v.who(),
                            p.snd_nxt,
                            v.snd_nxt
                        ),
                    );
                }
                if !p.rcv_nxt.before_eq(v.rcv_nxt) {
                    violation(
                        "tcp/seq",
                        format!(
                            "{}: rcv_nxt moved back {} → {} in {ctx}",
                            v.who(),
                            p.rcv_nxt,
                            v.rcv_nxt
                        ),
                    );
                }
            }
        }
        self.prev = Some(v);
    }

    /// Check an outgoing segment against the sender-side invariants.
    /// Called from the socket's emit path, after sequence state has
    /// been advanced for the segment.
    pub fn observe_emit(&mut self, v: TcpView, hdr: &TcpHeader, payload_len: usize) {
        if hdr.flags.contains(TcpFlags::RST) {
            // RSTs echo peer-supplied sequence numbers by design
            return;
        }
        let mut seg_len = payload_len;
        if hdr.flags.contains(TcpFlags::SYN) {
            seg_len += 1;
        }
        if hdr.flags.contains(TcpFlags::FIN) {
            seg_len += 1;
        }
        let seg_end = hdr.seq.add(seg_len);
        // Everything we transmit lies inside [snd_una, snd_nxt]: at or
        // after the oldest unacknowledged byte, never past what we have
        // committed to the sequence space.
        if hdr.seq.before(v.snd_una) || seg_end.after(v.snd_nxt) {
            violation(
                "tcp/emit",
                format!(
                    "{}: segment [{}, {}) outside [snd_una {}, snd_nxt {}]",
                    v.who(),
                    hdr.seq,
                    seg_end,
                    v.snd_una,
                    v.snd_nxt
                ),
            );
        }
        if hdr.flags.contains(TcpFlags::ACK) {
            // we only ever acknowledge exactly what arrived in order
            if hdr.ack != v.rcv_nxt {
                violation(
                    "tcp/emit",
                    format!(
                        "{}: emitted ack {} ≠ rcv_nxt {} — acking data never received",
                        v.who(),
                        hdr.ack,
                        v.rcv_nxt
                    ),
                );
            }
            // receiver never reneges: ack + window moves right only.
            // Windows in SYN segments are never scaled (RFC 7323 §2.2);
            // with scaling active the advertised value is quantized to
            // 2^shift, so allow the right edge to wobble by up to one
            // quantum before calling it a renege.
            let shift = if hdr.flags.contains(TcpFlags::SYN) { 0 } else { v.rcv_wscale as usize };
            let right = hdr.ack.add((hdr.window as usize) << shift);
            let slack = (1usize << shift) - 1;
            if let Some(prev_right) = self.adv_right {
                if right.add(slack).before(prev_right) {
                    violation(
                        "tcp/window",
                        format!(
                            "{}: advertised right edge moved left {} → {} (shrinking the window \
                             over data already offered)",
                            v.who(),
                            prev_right,
                            right
                        ),
                    );
                }
            }
            self.adv_right = Some(right);
        }
        // SACK legality: blocks only on connections that negotiated
        // them, each non-empty and strictly above the cumulative ack
        // (a block at or below the ack would be acknowledging data
        // twice; RFC 2018 §3).
        if !hdr.sack.is_empty() {
            if !v.sack_ok {
                violation(
                    "tcp/sack",
                    format!("{}: SACK blocks emitted without negotiation", v.who()),
                );
            }
            for (l, r) in hdr.sack.iter() {
                if !r.after(l) || !l.after(hdr.ack) {
                    violation(
                        "tcp/sack",
                        format!(
                            "{}: illegal SACK block [{}, {}) against ack {}",
                            v.who(),
                            l,
                            r,
                            hdr.ack
                        ),
                    );
                }
            }
        }
        if payload_len > 0 {
            if let Some(fin) = v.fin_seq {
                if hdr.seq.add(payload_len).after(fin) {
                    violation(
                        "tcp/fin",
                        format!(
                            "{}: payload [{}, {}) extends past our FIN at {}",
                            v.who(),
                            hdr.seq,
                            hdr.seq.add(payload_len),
                            fin
                        ),
                    );
                }
            }
        }
        if hdr.flags.contains(TcpFlags::FIN) {
            if let Some(fin) = v.fin_seq {
                if hdr.seq.add(payload_len) != fin {
                    violation(
                        "tcp/fin",
                        format!(
                            "{}: FIN emitted at {} but fin_seq is {}",
                            v.who(),
                            hdr.seq.add(payload_len),
                            fin
                        ),
                    );
                }
            }
        }
    }
}

impl Default for TcpMonitor {
    fn default() -> Self {
        TcpMonitor::new()
    }
}

// ----------------------------------------------------------------------
// IP reassembly
// ----------------------------------------------------------------------

/// Validate the reassembly buffer after an insert: fragments sorted by
/// strictly increasing offset, pairwise non-overlapping, and — the
/// invariant whose violation was the tail-trim data-loss bug — every
/// byte of the just-inserted range `[ins_off, ins_end)` covered by the
/// stored fragments (first-arrival-wins may replace the *content*, but
/// coverage must never silently shrink).
pub fn check_reassembly(
    fragments: &[(usize, Vec<u8>)],
    total: Option<usize>,
    ins_off: usize,
    ins_end: usize,
) {
    let mut prev_end = 0usize;
    let mut first = true;
    for &(off, ref data) in fragments {
        if !first && off < prev_end {
            violation(
                "ip/reassembly",
                format!("fragment at {off} overlaps previous fragment ending at {prev_end}"),
            );
        }
        if !first && off == prev_end {
            // adjacent is fine; strictly decreasing offsets are not
        }
        prev_end = off + data.len();
        first = false;
    }
    // covered ⊆ total: nothing counted toward completion beyond the
    // datagram's declared length
    if let Some(total) = total {
        let covered: usize = fragments
            .iter()
            .map(|&(off, ref d)| (off + d.len()).min(total).saturating_sub(off.min(total)))
            .sum();
        if covered > total {
            violation(
                "ip/reassembly",
                format!("covered {covered} bytes exceed datagram total {total}"),
            );
        }
    }
    // insert post-condition: the inserted range is fully covered
    let mut cursor = ins_off;
    for &(off, ref data) in fragments {
        let end = off + data.len();
        if off <= cursor && cursor < end {
            cursor = end;
        }
        if cursor >= ins_end {
            break;
        }
    }
    if cursor < ins_end {
        violation(
            "ip/reassembly",
            format!(
                "inserted fragment [{ins_off}, {ins_end}) left hole at {cursor} — bytes \
                 silently discarded"
            ),
        );
    }
}

// ----------------------------------------------------------------------
// RMP
// ----------------------------------------------------------------------

/// Validate RMP's exactly-once, in-order delivery bookkeeping: each
/// channel's delivered message sequence must be exactly the previous
/// plus one (stop-and-wait admits no gaps and no replays).
pub fn check_rmp_delivery(channel: (u16, u16, u16), prev_delivered: Option<u32>, seq: u32) {
    if let Some(prev) = prev_delivered {
        if seq != prev.wrapping_add(1) {
            violation(
                "rmp/order",
                format!(
                    "channel {channel:?} delivered msg_seq {seq} after {prev} — \
                     stop-and-wait must deliver exactly once, in order"
                ),
            );
        }
    } else if seq != 0 {
        violation(
            "rmp/order",
            format!("channel {channel:?} delivered first msg_seq {seq}, expected 0"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_table_accepts_normal_lifecycles() {
        use TcpState::*;
        for w in [
            vec![Closed, SynSent, Established, FinWait1, FinWait2, TimeWait, Closed],
            vec![Closed, SynReceived, Established, CloseWait, LastAck, Closed],
            vec![Closed, SynSent, SynReceived, Established, FinWait1, Closing, TimeWait],
            vec![Closed, SynSent, Established, Closed],
        ] {
            for pair in w.windows(2) {
                assert!(legal_transition(pair[0], pair[1]), "{:?} → {:?}", pair[0], pair[1]);
            }
        }
    }

    #[test]
    fn transition_table_rejects_nonsense() {
        use TcpState::*;
        for (a, b) in [
            (Established, SynSent),
            (TimeWait, Established),
            (FinWait2, Established),
            (CloseWait, FinWait1),
            (LastAck, TimeWait),
            (Closing, CloseWait),
        ] {
            assert!(!legal_transition(a, b), "{a:?} → {b:?} must be illegal");
        }
    }

    #[test]
    fn reassembly_check_accepts_sorted_disjoint_coverage() {
        let frags = vec![(0usize, vec![0u8; 8]), (8, vec![1u8; 8]), (24, vec![2u8; 8])];
        check_reassembly(&frags, Some(32), 8, 16);
    }

    #[test]
    #[should_panic(expected = "silently discarded")]
    fn reassembly_check_catches_coverage_loss() {
        // claim we inserted [0, 24) but only [0, 16) is stored
        let frags = vec![(0usize, vec![0u8; 16])];
        check_reassembly(&frags, None, 0, 24);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn reassembly_check_catches_overlap() {
        let frags = vec![(0usize, vec![0u8; 16]), (8, vec![1u8; 16])];
        check_reassembly(&frags, None, 8, 24);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn rmp_check_catches_gap() {
        check_rmp_delivery((1, 2, 3), Some(4), 6);
    }
}
