//! The UDP endpoint: port binding and demultiplexing.
//!
//! On the CAB, "UDP and TCP each have their own server threads" (§4.1);
//! the UDP server thread blocks on the UDP input mailbox, runs this
//! engine on each datagram, and enqueues the payload to the bound
//! application mailbox. Table 1's UDP row goes through this path.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use nectar_wire::ipv4::Ipv4Header;
use nectar_wire::udp::{UdpHeader, HEADER_LEN};
use nectar_wire::WireError;

/// Outcome of processing one UDP datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UdpInput {
    /// Deliver `payload` to the application bound to `dst_port`; the
    /// token is whatever the binder registered (a mailbox index on the
    /// CAB, a socket id on the host).
    Deliver { token: u32, src: Ipv4Addr, src_port: u16, dst_port: u16, payload: Vec<u8> },
    /// No binding — the caller should send ICMP port unreachable.
    PortUnreachable { dst_port: u16 },
    /// Parse/checksum failure; dropped.
    Bad(WireError),
}

/// Counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct UdpStats {
    pub delivered: u64,
    pub sent: u64,
    pub unreachable: u64,
    pub bad: u64,
}

/// The UDP endpoint: a port table plus build/parse plumbing.
#[derive(Debug, Default)]
pub struct UdpEndpoint {
    bindings: HashMap<u16, u32>,
    next_ephemeral: u16,
    stats: UdpStats,
}

impl UdpEndpoint {
    pub fn new() -> Self {
        UdpEndpoint { bindings: HashMap::new(), next_ephemeral: 49152, stats: UdpStats::default() }
    }

    pub fn stats(&self) -> &UdpStats {
        &self.stats
    }

    /// Bind `port` to an application token. Returns false if taken.
    pub fn bind(&mut self, port: u16, token: u32) -> bool {
        if self.bindings.contains_key(&port) {
            return false;
        }
        self.bindings.insert(port, token);
        true
    }

    /// Bind an ephemeral port, returning it.
    pub fn bind_ephemeral(&mut self, token: u32) -> u16 {
        loop {
            let port = self.next_ephemeral;
            self.next_ephemeral =
                if self.next_ephemeral == u16::MAX { 49152 } else { self.next_ephemeral + 1 };
            if self.bind(port, token) {
                return port;
            }
        }
    }

    pub fn unbind(&mut self, port: u16) -> bool {
        self.bindings.remove(&port).is_some()
    }

    pub fn lookup(&self, port: u16) -> Option<u32> {
        self.bindings.get(&port).copied()
    }

    /// Build the UDP datagram for the IP output path.
    pub fn output(
        &mut self,
        src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<u8> {
        self.stats.sent += 1;
        UdpHeader::build(src, src_port, dst, dst_port, payload)
    }

    /// Process a UDP datagram delivered by IP.
    pub fn input(&mut self, ip: &Ipv4Header, data: &[u8]) -> UdpInput {
        let header = match UdpHeader::parse(ip, data) {
            Ok(h) => h,
            Err(e) => {
                self.stats.bad += 1;
                return UdpInput::Bad(e);
            }
        };
        match self.lookup(header.dst_port) {
            Some(token) => {
                self.stats.delivered += 1;
                UdpInput::Deliver {
                    token,
                    src: ip.src,
                    src_port: header.src_port,
                    dst_port: header.dst_port,
                    payload: data[HEADER_LEN..header.length as usize].to_vec(),
                }
            }
            None => {
                self.stats.unreachable += 1;
                UdpInput::PortUnreachable { dst_port: header.dst_port }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_wire::ipv4::IpProtocol;

    fn a(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    fn deliver(rx: &mut UdpEndpoint, dgram: &[u8]) -> UdpInput {
        let ip = Ipv4Header::new(a(1), a(2), IpProtocol::UDP, dgram.len());
        rx.input(&ip, dgram)
    }

    #[test]
    fn bind_send_receive() {
        let mut tx = UdpEndpoint::new();
        let mut rx = UdpEndpoint::new();
        assert!(rx.bind(7000, 42));
        let dgram = tx.output(a(1), 5555, a(2), 7000, b"hello");
        match deliver(&mut rx, &dgram) {
            UdpInput::Deliver { token, src, src_port, dst_port, payload } => {
                assert_eq!(token, 42);
                assert_eq!(src, a(1));
                assert_eq!(src_port, 5555);
                assert_eq!(dst_port, 7000);
                assert_eq!(payload, b"hello");
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(rx.stats().delivered, 1);
        assert_eq!(tx.stats().sent, 1);
    }

    #[test]
    fn double_bind_refused_unbind_frees() {
        let mut e = UdpEndpoint::new();
        assert!(e.bind(80, 1));
        assert!(!e.bind(80, 2));
        assert!(e.unbind(80));
        assert!(!e.unbind(80));
        assert!(e.bind(80, 2));
        assert_eq!(e.lookup(80), Some(2));
    }

    #[test]
    fn ephemeral_ports_unique() {
        let mut e = UdpEndpoint::new();
        let p1 = e.bind_ephemeral(1);
        let p2 = e.bind_ephemeral(2);
        assert_ne!(p1, p2);
        assert!(p1 >= 49152);
        assert_eq!(e.lookup(p1), Some(1));
        assert_eq!(e.lookup(p2), Some(2));
    }

    #[test]
    fn unbound_port_unreachable() {
        let mut tx = UdpEndpoint::new();
        let mut rx = UdpEndpoint::new();
        let dgram = tx.output(a(1), 5555, a(2), 9999, b"nope");
        assert_eq!(deliver(&mut rx, &dgram), UdpInput::PortUnreachable { dst_port: 9999 });
        assert_eq!(rx.stats().unreachable, 1);
    }

    #[test]
    fn corrupt_datagram_dropped() {
        let mut tx = UdpEndpoint::new();
        let mut rx = UdpEndpoint::new();
        rx.bind(7000, 1);
        let mut dgram = tx.output(a(1), 5555, a(2), 7000, b"hello");
        dgram[10] ^= 1;
        assert!(matches!(deliver(&mut rx, &dgram), UdpInput::Bad(WireError::BadChecksum)));
        assert_eq!(rx.stats().bad, 1);
    }
}
