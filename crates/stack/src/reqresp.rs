//! The Nectar request-response protocol.
//!
//! §4: "the request-response protocol provides the transport mechanism
//! for client-server RPC calls." The client retransmits a request until
//! the reply arrives; the server deduplicates retransmitted requests by
//! request id and caches its reply so a lost reply can be resent
//! without re-executing the handler (at-most-once execution). A
//! ReplyAck (or the client's next request) releases the cached reply.
//!
//! Table 1's request-response row and the abstract's "latency of a
//! remote procedure call … is less than 500 µsec" measure a round trip
//! through this protocol.

use std::collections::HashMap;

use nectar_sim::{SimDuration, SimTime};
use nectar_wire::nectar::{ReqRespHeader, ReqRespKind};

/// Client tunables.
#[derive(Clone, Copy, Debug)]
pub struct RrConfig {
    pub rto: SimDuration,
    pub max_retries: u32,
}

impl Default for RrConfig {
    fn default() -> Self {
        RrConfig { rto: SimDuration::from_millis(5), max_retries: 10 }
    }
}

/// Client-side actions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RrClientAction {
    /// Hand this request-response packet to the datalink for `dst_cab`.
    Transmit { dst_cab: u16, packet: Vec<u8> },
    /// The call with `req_id` completed with this response payload.
    Response { req_id: u32, payload: Vec<u8> },
    /// The call exhausted its retries.
    Failed { req_id: u32 },
}

#[derive(Debug)]
struct PendingCall {
    payload: Vec<u8>,
    deadline: SimTime,
    retries: u32,
}

/// Client statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RrClientStats {
    pub calls: u64,
    pub retransmits: u64,
    pub responses: u64,
    pub duplicate_responses: u64,
    pub failures: u64,
}

/// The client half: issues calls to one server mailbox.
#[derive(Debug)]
pub struct RrClient {
    server_cab: u16,
    server_mbox: u16,
    reply_mbox: u16,
    cfg: RrConfig,
    pending: HashMap<u32, PendingCall>,
    next_id: u32,
    stats: RrClientStats,
}

impl RrClient {
    pub fn new(server_cab: u16, server_mbox: u16, reply_mbox: u16, cfg: RrConfig) -> Self {
        RrClient {
            server_cab,
            server_mbox,
            reply_mbox,
            cfg,
            pending: HashMap::new(),
            next_id: 1,
            stats: RrClientStats::default(),
        }
    }

    pub fn stats(&self) -> &RrClientStats {
        &self.stats
    }

    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// The server this client is bound to, as `(cab, service mailbox)`.
    /// One reply mailbox can serve only one binding at a time: replies
    /// carry just `(reply_mbox, req_id)`, so calls to distinct servers
    /// through one mailbox could not be told apart on the wire.
    pub fn server(&self) -> (u16, u16) {
        (self.server_cab, self.server_mbox)
    }

    fn request_packet(&self, req_id: u32, payload: &[u8]) -> Vec<u8> {
        ReqRespHeader {
            kind: ReqRespKind::Request,
            dst_mbox: self.server_mbox,
            reply_mbox: self.reply_mbox,
            req_id,
        }
        .build(payload)
    }

    /// Issue a call; returns its request id. Multiple calls may be
    /// outstanding concurrently.
    pub fn call(&mut self, now: SimTime, payload: Vec<u8>, out: &mut Vec<RrClientAction>) -> u32 {
        let req_id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let packet = self.request_packet(req_id, &payload);
        self.pending
            .insert(req_id, PendingCall { payload, deadline: now + self.cfg.rto, retries: 0 });
        self.stats.calls += 1;
        out.push(RrClientAction::Transmit { dst_cab: self.server_cab, packet });
        req_id
    }

    /// Process a Reply packet addressed to our reply mailbox.
    pub fn on_reply(
        &mut self,
        _now: SimTime,
        hdr: &ReqRespHeader,
        payload: &[u8],
        out: &mut Vec<RrClientAction>,
    ) {
        debug_assert_eq!(hdr.kind, ReqRespKind::Reply);
        if self.pending.remove(&hdr.req_id).is_none() {
            // duplicate reply: re-ack so the server can release its cache
            self.stats.duplicate_responses += 1;
        } else {
            self.stats.responses += 1;
            out.push(RrClientAction::Response { req_id: hdr.req_id, payload: payload.to_vec() });
        }
        let ack = ReqRespHeader {
            kind: ReqRespKind::ReplyAck,
            dst_mbox: self.server_mbox,
            reply_mbox: self.reply_mbox,
            req_id: hdr.req_id,
        }
        .build(&[]);
        out.push(RrClientAction::Transmit { dst_cab: self.server_cab, packet: ack });
    }

    /// Retransmit overdue requests.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<RrClientAction>) {
        let mut failed = Vec::new();
        let mut resend = Vec::new();
        for (&id, call) in &mut self.pending {
            if now >= call.deadline {
                call.retries += 1;
                if call.retries > self.cfg.max_retries {
                    failed.push(id);
                } else {
                    call.deadline = now + self.cfg.rto;
                    resend.push(id);
                }
            }
        }
        // deterministic order
        failed.sort_unstable();
        resend.sort_unstable();
        for id in failed {
            self.pending.remove(&id);
            self.stats.failures += 1;
            out.push(RrClientAction::Failed { req_id: id });
        }
        for id in resend {
            let payload = self.pending[&id].payload.clone();
            let packet = self.request_packet(id, &payload);
            self.stats.retransmits += 1;
            out.push(RrClientAction::Transmit { dst_cab: self.server_cab, packet });
        }
    }

    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.pending.values().map(|c| c.deadline).min()
    }
}

/// Server-side actions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RrServerAction {
    /// A fresh request: the application should execute the handler and
    /// call [`RrServer::reply`] with the same correlation key.
    Execute { client_cab: u16, reply_mbox: u16, req_id: u32, payload: Vec<u8> },
    /// Transmit a packet (a resent cached reply).
    Transmit { dst_cab: u16, packet: Vec<u8> },
}

/// Server statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RrServerStats {
    pub requests: u64,
    pub duplicate_requests: u64,
    pub replies: u64,
    pub cached_resends: u64,
}

/// Key identifying one client's call slot.
type ClientKey = (u16, u16); // (client CAB, reply mailbox)

#[derive(Debug, Default)]
struct ClientSlot {
    /// Highest request id seen from this client.
    last_req_id: u32,
    /// Cached reply for `last_req_id`, until acked or superseded.
    cached_reply: Option<Vec<u8>>,
    /// True while the handler for `last_req_id` is executing.
    executing: bool,
}

/// The server half: deduplication and reply caching for one service
/// mailbox.
#[derive(Debug, Default)]
pub struct RrServer {
    clients: HashMap<ClientKey, ClientSlot>,
    stats: RrServerStats,
}

impl RrServer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn stats(&self) -> &RrServerStats {
        &self.stats
    }

    /// Process a Request packet from `client_cab`.
    pub fn on_request(
        &mut self,
        client_cab: u16,
        hdr: &ReqRespHeader,
        payload: &[u8],
        out: &mut Vec<RrServerAction>,
    ) {
        debug_assert_eq!(hdr.kind, ReqRespKind::Request);
        let key = (client_cab, hdr.reply_mbox);
        let slot = self.clients.entry(key).or_default();
        if hdr.req_id == slot.last_req_id {
            self.stats.duplicate_requests += 1;
            if let Some(reply) = &slot.cached_reply {
                // reply was lost: resend from cache without re-executing
                let packet = ReqRespHeader {
                    kind: ReqRespKind::Reply,
                    dst_mbox: hdr.reply_mbox,
                    reply_mbox: 0,
                    req_id: hdr.req_id,
                }
                .build(reply);
                self.stats.cached_resends += 1;
                out.push(RrServerAction::Transmit { dst_cab: client_cab, packet });
            }
            // else: still executing — the retransmit is absorbed
            return;
        }
        if hdr.req_id.wrapping_sub(slot.last_req_id) > u32::MAX / 2 {
            // older than what we've already served: stale, drop
            self.stats.duplicate_requests += 1;
            return;
        }
        // a new request supersedes any older cached reply
        slot.last_req_id = hdr.req_id;
        slot.cached_reply = None;
        slot.executing = true;
        self.stats.requests += 1;
        out.push(RrServerAction::Execute {
            client_cab,
            reply_mbox: hdr.reply_mbox,
            req_id: hdr.req_id,
            payload: payload.to_vec(),
        });
    }

    /// The application finished a handler: emit and cache the reply.
    pub fn reply(
        &mut self,
        client_cab: u16,
        reply_mbox: u16,
        req_id: u32,
        payload: Vec<u8>,
        out: &mut Vec<RrServerAction>,
    ) {
        let slot = self.clients.entry((client_cab, reply_mbox)).or_default();
        // Only cache if this is still the current request (a newer one
        // may have superseded it while the handler ran).
        let packet =
            ReqRespHeader { kind: ReqRespKind::Reply, dst_mbox: reply_mbox, reply_mbox: 0, req_id }
                .build(&payload);
        if slot.last_req_id == req_id {
            slot.cached_reply = Some(payload);
            slot.executing = false;
        }
        self.stats.replies += 1;
        out.push(RrServerAction::Transmit { dst_cab: client_cab, packet });
    }

    /// A ReplyAck releases the cached reply.
    pub fn on_reply_ack(&mut self, client_cab: u16, hdr: &ReqRespHeader) {
        debug_assert_eq!(hdr.kind, ReqRespKind::ReplyAck);
        if let Some(slot) = self.clients.get_mut(&(client_cab, hdr.reply_mbox)) {
            if slot.last_req_id == hdr.req_id {
                slot.cached_reply = None;
            }
        }
    }

    /// Number of cached replies held (test observability).
    pub fn cached_replies(&self) -> usize {
        self.clients.values().filter(|s| s.cached_reply.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    fn cfg() -> RrConfig {
        RrConfig { rto: SimDuration::from_micros(500), max_retries: 3 }
    }

    fn parse(packet: &[u8]) -> (ReqRespHeader, Vec<u8>) {
        let (h, p) = ReqRespHeader::parse(packet).unwrap();
        (h, p.to_vec())
    }

    #[test]
    fn call_execute_reply_roundtrip() {
        let mut client = RrClient::new(2, 10, 11, cfg());
        let mut server = RrServer::new();
        let mut cacts = Vec::new();
        let req_id = client.call(t(0), b"add 2 2".to_vec(), &mut cacts);
        let RrClientAction::Transmit { dst_cab, packet } = &cacts[0] else { panic!() };
        assert_eq!(*dst_cab, 2);
        let (hdr, payload) = parse(packet);
        assert_eq!(hdr.kind, ReqRespKind::Request);
        let mut sacts = Vec::new();
        server.on_request(1, &hdr, &payload, &mut sacts);
        let RrServerAction::Execute { client_cab, reply_mbox, req_id: rid, payload } = &sacts[0]
        else {
            panic!()
        };
        assert_eq!((*client_cab, *reply_mbox, *rid), (1, 11, req_id));
        assert_eq!(payload, b"add 2 2");
        // server handler executes, replies
        let mut sacts = Vec::new();
        server.reply(1, 11, req_id, b"4".to_vec(), &mut sacts);
        let RrServerAction::Transmit { packet, .. } = &sacts[0] else { panic!() };
        let (rhdr, rpayload) = parse(packet);
        let mut cacts = Vec::new();
        client.on_reply(t(100), &rhdr, &rpayload, &mut cacts);
        assert_eq!(cacts[0], RrClientAction::Response { req_id, payload: b"4".to_vec() });
        // reply-ack goes back and releases the cache
        let RrClientAction::Transmit { packet, .. } = &cacts[1] else { panic!() };
        let (ahdr, _) = parse(packet);
        assert_eq!(server.cached_replies(), 1);
        server.on_reply_ack(1, &ahdr);
        assert_eq!(server.cached_replies(), 0);
        assert_eq!(client.outstanding(), 0);
    }

    #[test]
    fn lost_request_retransmitted_and_deduplicated() {
        let mut client = RrClient::new(2, 10, 11, cfg());
        let mut server = RrServer::new();
        let mut cacts = Vec::new();
        client.call(t(0), b"q".to_vec(), &mut cacts);
        // request lost; client retries after rto
        cacts.clear();
        client.poll(t(600), &mut cacts);
        assert_eq!(cacts.len(), 1);
        assert_eq!(client.stats().retransmits, 1);
        let RrClientAction::Transmit { packet, .. } = &cacts[0] else { panic!() };
        let (hdr, payload) = parse(packet);
        let mut sacts = Vec::new();
        server.on_request(1, &hdr, &payload, &mut sacts);
        assert_eq!(sacts.len(), 1);
        // the original (delayed) copy arrives afterwards while executing:
        // absorbed, not re-executed
        let mut sacts2 = Vec::new();
        server.on_request(1, &hdr, &payload, &mut sacts2);
        assert!(sacts2.is_empty());
        assert_eq!(server.stats().requests, 1);
        assert_eq!(server.stats().duplicate_requests, 1);
    }

    #[test]
    fn lost_reply_resent_from_cache_without_reexecution() {
        let mut client = RrClient::new(2, 10, 11, cfg());
        let mut server = RrServer::new();
        let mut cacts = Vec::new();
        let req_id = client.call(t(0), b"increment".to_vec(), &mut cacts);
        let RrClientAction::Transmit { packet, .. } = &cacts[0] else { panic!() };
        let (hdr, payload) = parse(packet);
        let mut sacts = Vec::new();
        server.on_request(1, &hdr, &payload, &mut sacts);
        server.reply(1, 11, req_id, b"done".to_vec(), &mut Vec::new()); // reply lost
                                                                        // client retransmits the request
        let mut cacts = Vec::new();
        client.poll(t(600), &mut cacts);
        let RrClientAction::Transmit { packet, .. } = &cacts[0] else { panic!() };
        let (hdr2, payload2) = parse(packet);
        let mut sacts = Vec::new();
        server.on_request(1, &hdr2, &payload2, &mut sacts);
        // server resends from cache — exactly once semantics
        assert_eq!(sacts.len(), 1);
        assert!(matches!(sacts[0], RrServerAction::Transmit { .. }));
        assert_eq!(server.stats().cached_resends, 1);
        assert_eq!(server.stats().requests, 1);
    }

    #[test]
    fn duplicate_reply_ignored_but_reacked() {
        let mut client = RrClient::new(2, 10, 11, cfg());
        let mut server = RrServer::new();
        let mut cacts = Vec::new();
        let req_id = client.call(t(0), b"x".to_vec(), &mut cacts);
        let mut sacts = Vec::new();
        server.reply(1, 11, req_id, b"y".to_vec(), &mut sacts);
        let RrServerAction::Transmit { packet, .. } = &sacts[0] else { panic!() };
        let (rhdr, rpayload) = parse(packet);
        let mut c1 = Vec::new();
        client.on_reply(t(10), &rhdr, &rpayload, &mut c1);
        let mut c2 = Vec::new();
        client.on_reply(t(20), &rhdr, &rpayload, &mut c2);
        // second delivery: no Response action, but still an ack
        assert_eq!(c2.len(), 1);
        assert!(matches!(c2[0], RrClientAction::Transmit { .. }));
        assert_eq!(client.stats().duplicate_responses, 1);
        assert_eq!(client.stats().responses, 1);
    }

    #[test]
    fn retries_exhaust_to_failure() {
        let mut client = RrClient::new(2, 10, 11, cfg());
        let mut acts = Vec::new();
        let req_id = client.call(t(0), b"void".to_vec(), &mut acts);
        let mut now = t(0);
        let mut failed = false;
        for _ in 0..10 {
            now += SimDuration::from_millis(1);
            acts.clear();
            client.poll(now, &mut acts);
            if acts.contains(&RrClientAction::Failed { req_id }) {
                failed = true;
                break;
            }
        }
        assert!(failed);
        assert_eq!(client.outstanding(), 0);
        assert_eq!(client.stats().failures, 1);
    }

    #[test]
    fn concurrent_calls_tracked_independently() {
        let mut client = RrClient::new(2, 10, 11, cfg());
        let mut server = RrServer::new();
        let mut acts = Vec::new();
        let a = client.call(t(0), b"a".to_vec(), &mut acts);
        let b = client.call(t(1), b"b".to_vec(), &mut acts);
        assert_ne!(a, b);
        assert_eq!(client.outstanding(), 2);
        // reply to b first
        let mut sacts = Vec::new();
        server.reply(1, 11, b, b"B".to_vec(), &mut sacts);
        let RrServerAction::Transmit { packet, .. } = &sacts[0] else { panic!() };
        let (h, p) = parse(packet);
        let mut cacts = Vec::new();
        client.on_reply(t(50), &h, &p, &mut cacts);
        assert!(cacts.contains(&RrClientAction::Response { req_id: b, payload: b"B".to_vec() }));
        assert_eq!(client.outstanding(), 1);
    }

    #[test]
    fn new_request_supersedes_cached_reply() {
        let mut server = RrServer::new();
        let mk = |req_id: u32| ReqRespHeader {
            kind: ReqRespKind::Request,
            dst_mbox: 10,
            reply_mbox: 11,
            req_id,
        };
        let mut acts = Vec::new();
        server.on_request(1, &mk(1), b"one", &mut acts);
        server.reply(1, 11, 1, b"ONE".to_vec(), &mut acts);
        assert_eq!(server.cached_replies(), 1);
        // client moved on without acking; its next call releases the slot
        acts.clear();
        server.on_request(1, &mk(2), b"two", &mut acts);
        assert_eq!(server.cached_replies(), 0);
        assert!(matches!(acts[0], RrServerAction::Execute { .. }));
        // a stale request id 1 now gets nothing (no cache, older id)
        acts.clear();
        server.on_request(1, &mk(1), b"one", &mut acts);
        assert!(acts.is_empty());
    }

    #[test]
    fn late_reply_for_superseded_request_not_cached() {
        let mut server = RrServer::new();
        let mk = |req_id: u32| ReqRespHeader {
            kind: ReqRespKind::Request,
            dst_mbox: 10,
            reply_mbox: 11,
            req_id,
        };
        let mut acts = Vec::new();
        server.on_request(1, &mk(1), b"slow", &mut acts);
        server.on_request(1, &mk(2), b"fast", &mut acts);
        // the slow handler for request 1 finishes late
        acts.clear();
        server.reply(1, 11, 1, b"SLOW".to_vec(), &mut acts);
        // reply still transmitted (client will ignore it) but not cached
        assert_eq!(acts.len(), 1);
        assert_eq!(server.cached_replies(), 0);
    }
}
