//! The coordinated-omission-correct latency recorder.
//!
//! Every latency sample is measured from the request's *intended*
//! start time (schedule-derived), not from the moment the client
//! actually managed to dispatch it. A stalled CAB that delays a
//! client's dispatch therefore shows up as queueing delay in the
//! recorded tail, exactly as a real user would experience it — the
//! correction popularized by wrk2/HdrHistogram workloads.
//!
//! Samples land in a bounded-memory [`BucketHist`] (≤ 0.8% relative
//! percentile error, see `nectar_sim::stats`), so fleets of thousands
//! of clients over long horizons record in O(1) space per transport.

use std::cell::RefCell;
use std::rc::Rc;

use nectar_sim::{BucketHist, SimDuration};

use crate::LoadTransport;

/// Per-transport accounting and the latency histogram.
#[derive(Clone, Debug, Default)]
pub struct TransportRecord {
    /// Latency from intended start to response completion.
    pub latency: BucketHist,
    pub requests_sent: u64,
    pub responses: u64,
    pub timeouts: u64,
    pub failures: u64,
    /// Replies that arrived after their request had timed out.
    pub stale_replies: u64,
    /// Dispatches that ran late relative to their intended start.
    pub late_dispatch: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
}

/// Recorder shared by every client of a fleet.
#[derive(Clone, Debug, Default)]
pub struct LoadRecorder {
    per: [TransportRecord; LoadTransport::COUNT],
}

/// Shared handle to a [`LoadRecorder`].
pub type SharedRecorder = Rc<RefCell<LoadRecorder>>;

impl LoadRecorder {
    pub fn new() -> LoadRecorder {
        LoadRecorder::default()
    }

    pub fn shared() -> SharedRecorder {
        Rc::new(RefCell::new(LoadRecorder::new()))
    }

    pub fn record(&self, t: LoadTransport) -> &TransportRecord {
        &self.per[t.index()]
    }

    pub fn record_mut(&mut self, t: LoadTransport) -> &mut TransportRecord {
        &mut self.per[t.index()]
    }

    /// A completed request: `latency` measured from the intended start.
    pub fn response(&mut self, t: LoadTransport, latency: SimDuration, bytes: u64) {
        let r = self.record_mut(t);
        r.latency.record(latency);
        r.responses += 1;
        r.bytes_received += bytes;
    }

    /// Transports with at least one request sent, in enum order.
    pub fn active(&self) -> Vec<LoadTransport> {
        LoadTransport::ALL.iter().copied().filter(|t| self.record(*t).requests_sent > 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_recorded_per_transport() {
        let mut rec = LoadRecorder::new();
        rec.response(LoadTransport::ReqResp, SimDuration::from_micros(100), 64);
        rec.response(LoadTransport::ReqResp, SimDuration::from_micros(300), 64);
        rec.response(LoadTransport::Udp, SimDuration::from_micros(50), 32);
        assert_eq!(rec.record(LoadTransport::ReqResp).responses, 2);
        assert_eq!(rec.record(LoadTransport::Udp).responses, 1);
        assert_eq!(rec.record(LoadTransport::Tcp).responses, 0);
        let p50 = rec.record(LoadTransport::ReqResp).latency.median();
        assert!(p50 >= SimDuration::from_micros(99));
        assert_eq!(rec.active(), Vec::<LoadTransport>::new()); // no sends recorded
    }
}
