//! The load client: a CAB-resident thread multiplexing many lightweight
//! endpoints over one mailbox, each endpoint issuing request-response
//! traffic with one outstanding request at a time.
//!
//! Endpoints are the unit of offered load; the client thread is the
//! unit of CAB scheduling. Packing tens of endpoints onto one thread is
//! what lets a fleet reach 10k+ endpoints without 10k CAB threads: the
//! per-wake context-switch and polling costs are paid once per thread,
//! not once per endpoint. Responses are demultiplexed by the sequence
//! number carried in every payload — sequence numbers are drawn from a
//! single client-wide counter, so at most one endpoint is ever waiting
//! on a given value.
//!
//! Request framing: every payload starts with the 4-byte reply address
//! (`nectar::scenario::encode_reply_addr`) followed by a 4-byte
//! big-endian sequence number. Echo services return the payload
//! verbatim; replies that arrive after their request timed out match no
//! waiting endpoint and are counted as stale rather than being mistaken
//! for a live response.
//!
//! Coordinated omission: each endpoint consumes intended start times
//! from its own arrival schedule. With one outstanding request per
//! endpoint, a slow system makes dispatches run *late*; latency is
//! still measured from the intended start, so server-side stalls
//! surface as tail latency instead of silently shrinking the sample
//! set.
//!
//! TCP is the exception to multiplexing: one endpoint per client, one
//! connection per endpoint. The echo stream has no message framing, so
//! response bytes can only be attributed to a single outstanding
//! request per connection.

use nectar::scenario::{encode_reply_addr, handle_tcp_events_inline};
use nectar::world::SharedLoadLedger;
use nectar_cab::proto::{self, rmp_submit, rr_call};
use nectar_cab::reqs::SendReq;
use nectar_cab::{CabThread, Cx, HostOpMode, MboxId, Step};
use nectar_sim::{Pcg32, SimDuration, SimTime};
use nectar_stack::tcp::SocketId;
use nectar_wire::datalink::DatalinkProto;
use nectar_wire::nectar::DatagramHeader;

use crate::recorder::SharedRecorder;
use crate::workload::{Arrival, SizeDist};
use crate::LoadTransport;

/// Everything that parameterizes one client thread.
#[derive(Clone, Debug)]
pub struct ClientSpec {
    pub transport: LoadTransport,
    /// `(cab, mailbox)` for the Nectar transports, `(cab, port)` for
    /// UDP and TCP.
    pub server: (u16, u16),
    pub arrival: Arrival,
    pub size: SizeDist,
    /// Client-side deadline per request; a request unanswered by then
    /// is abandoned and counted as a timeout.
    pub timeout: SimDuration,
    /// First intended start is drawn after this time.
    pub start: SimTime,
    /// No new requests are issued at or after this time.
    pub stop: SimTime,
    /// Local UDP port (UDP transport only); must be unique per client
    /// thread — endpoints share it and demultiplex by sequence number.
    pub udp_port: u16,
    /// One private RNG stream per endpoint; the vector length is the
    /// endpoint count. TCP clients must carry exactly one.
    pub rngs: Vec<Pcg32>,
}

#[derive(Clone, Copy)]
enum EpState {
    Idle,
    Waiting {
        intended: SimTime,
        seq: u32,
        deadline: SimTime,
        /// TCP: echoed bytes expected for this request.
        expect: usize,
        /// TCP: echoed bytes received so far.
        got: usize,
    },
    Finished,
}

/// One lightweight endpoint: its schedule, RNG stream, and at most one
/// outstanding request.
struct Endpoint {
    rng: Pcg32,
    next_intended: SimTime,
    state: EpState,
}

enum State {
    Init,
    /// TCP only: active open issued, waiting for establishment.
    Connecting,
    Running,
    Finished,
}

/// One simulated client thread, runnable as a CAB thread.
pub struct LoadClient {
    spec: ClientSpec,
    rec: SharedRecorder,
    ledger: SharedLoadLedger,
    state: State,
    eps: Vec<Endpoint>,
    my_mbox: MboxId,
    conn: Option<SocketId>,
    /// Client-wide sequence counter; endpoints share it so a response
    /// sequence identifies its endpoint uniquely.
    seq: u32,
    /// TCP: echoed bytes still owed from timed-out requests; absorbed
    /// before counting bytes toward the current request so stream
    /// positions stay aligned.
    tcp_deficit: usize,
    /// TCP: request bytes accepted only partially by the socket.
    tcp_unsent: Vec<u8>,
}

impl LoadClient {
    pub fn new(spec: ClientSpec, rec: SharedRecorder, ledger: SharedLoadLedger) -> LoadClient {
        assert!(!spec.rngs.is_empty(), "a load client needs at least one endpoint");
        assert!(
            spec.transport != LoadTransport::Tcp || spec.rngs.len() == 1,
            "TCP endpoints are whole connections; one per client thread"
        );
        let eps = spec
            .rngs
            .iter()
            .cloned()
            .map(|rng| Endpoint { rng, next_intended: SimTime::ZERO, state: EpState::Idle })
            .collect();
        LoadClient {
            spec,
            rec,
            ledger,
            state: State::Init,
            eps,
            my_mbox: 0,
            conn: None,
            seq: 0,
            tcp_deficit: 0,
            tcp_unsent: Vec::new(),
        }
    }

    fn payload(&mut self, cab_id: u16, ep: usize, seq: u32) -> Vec<u8> {
        let reply_id = if self.spec.transport == LoadTransport::Udp {
            self.spec.udp_port
        } else {
            self.my_mbox
        };
        let size = self.spec.size.draw(&mut self.eps[ep].rng);
        let mut p = Vec::with_capacity(size);
        p.extend_from_slice(&encode_reply_addr(cab_id, reply_id));
        p.extend_from_slice(&seq.to_be_bytes());
        while p.len() < size {
            p.push((p.len() * 13) as u8);
        }
        p
    }

    /// Sequence number carried by a response message, per transport
    /// framing (ReqResp responses are prefixed with the request id).
    fn response_seq(&self, bytes: &[u8]) -> Option<u32> {
        let off = if self.spec.transport == LoadTransport::ReqResp { 8 } else { 4 };
        let s = bytes.get(off..off + 4)?;
        Some(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Dispatch endpoint `ep`'s request for the current intended slot.
    /// Returns `false` if the transport refused it (counted as a
    /// failure).
    fn dispatch(&mut self, cx: &mut Cx<'_>, ep: usize, seq: u32) -> bool {
        let (cab, id) = self.spec.server;
        let payload = self.payload(cx.cab_id, ep, seq);
        let t = self.spec.transport;
        let len = payload.len() as u64;
        let ok = match t {
            LoadTransport::Datagram => {
                let pkt = DatagramHeader { dst_mbox: id, src_mbox: self.my_mbox }.build(&payload);
                cx.charge(cx.costs.datagram_proc);
                cx.datalink_send(cab, DatalinkProto::Datagram, 0, &pkt);
                true
            }
            LoadTransport::Rmp => {
                let req = SendReq { dst_cab: cab, dst_mbox: id, src_mbox: self.my_mbox };
                rmp_submit(cx, req, &payload);
                true
            }
            LoadTransport::ReqResp => {
                let req = SendReq { dst_cab: cab, dst_mbox: id, src_mbox: self.my_mbox };
                rr_call(cx, req, &payload) != 0
            }
            LoadTransport::Udp => {
                cx.charge(cx.costs.udp_proc);
                let src = cx.proto.addr();
                let dst = proto::ip_for_cab(cab);
                let dgram = cx.proto.udp.output(src, self.spec.udp_port, dst, id, &payload);
                cx.charge(cx.costs.checksum(dgram.len()));
                proto::ip_output(cx, dst, nectar_wire::ipv4::IpProtocol::UDP, &dgram);
                true
            }
            LoadTransport::Tcp => match self.conn {
                Some(conn) => {
                    let now = cx.now();
                    cx.charge(cx.costs.tcp_proc);
                    let (n, events) = cx.proto.tcp.send(now, conn, &payload);
                    handle_tcp_events_inline(cx, events);
                    if n < payload.len() {
                        self.tcp_unsent = payload[n..].to_vec();
                    }
                    true
                }
                None => false,
            },
        };
        if ok {
            let mut led = self.ledger.borrow_mut();
            led.requests_sent += 1;
            led.bytes_sent += len;
            let mut rec = self.rec.borrow_mut();
            let r = rec.record_mut(t);
            r.requests_sent += 1;
            r.bytes_sent += len;
        } else {
            self.ledger.borrow_mut().failures += 1;
            self.rec.borrow_mut().record_mut(t).failures += 1;
        }
        ok
    }

    /// Push any still-unsent TCP request bytes into the socket.
    fn tcp_pump(&mut self, cx: &mut Cx<'_>) {
        if self.tcp_unsent.is_empty() {
            return;
        }
        let Some(conn) = self.conn else { return };
        let now = cx.now();
        let chunk = std::mem::take(&mut self.tcp_unsent);
        let (n, events) = cx.proto.tcp.send(now, conn, &chunk);
        handle_tcp_events_inline(cx, events);
        if n < chunk.len() {
            self.tcp_unsent = chunk[n..].to_vec();
        }
    }

    /// Complete endpoint `ep`'s request (response fully received).
    fn complete(&mut self, cx: &mut Cx<'_>, ep: usize, intended: SimTime, bytes: u64) {
        let now = cx.now();
        let latency = now.saturating_since(intended);
        self.ledger.borrow_mut().responses += 1;
        self.ledger.borrow_mut().bytes_received += bytes;
        self.rec.borrow_mut().response(self.spec.transport, latency, bytes);
        let e = &mut self.eps[ep];
        if !self.spec.arrival.is_open() {
            // closed loop: the schedule advances from completion;
            // open-loop endpoints already advanced at dispatch
            e.next_intended = self.spec.arrival.next_after(intended, now, &mut e.rng);
        }
        e.state = EpState::Idle;
    }

    fn timeout(
        &mut self,
        cx: &mut Cx<'_>,
        ep: usize,
        intended: SimTime,
        expect: usize,
        got: usize,
    ) {
        let now = cx.now();
        self.ledger.borrow_mut().timeouts += 1;
        self.rec.borrow_mut().record_mut(self.spec.transport).timeouts += 1;
        if self.spec.transport == LoadTransport::Tcp {
            // the echo stream still owes these bytes; absorb them
            // before counting toward the next request
            self.tcp_deficit += expect - got;
        }
        let e = &mut self.eps[ep];
        if !self.spec.arrival.is_open() {
            // a closed-loop endpoint thinks from the abandonment
            e.next_intended = self.spec.arrival.next_after(intended, now, &mut e.rng);
        }
        e.state = EpState::Idle;
    }

    /// The TCP stream failed (EOF from the echo service): resolve the
    /// whole client — TCP has exactly one endpoint.
    fn tcp_fail(&mut self) {
        self.ledger.borrow_mut().failures += 1;
        self.rec.borrow_mut().record_mut(self.spec.transport).failures += 1;
        self.eps[0].state = EpState::Finished;
        self.state = State::Finished;
    }

    /// Count echoed TCP bytes toward endpoint 0's outstanding request.
    fn tcp_bytes(&mut self, cx: &mut Cx<'_>, mut n: usize) {
        if self.tcp_deficit > 0 {
            let absorbed = self.tcp_deficit.min(n);
            self.tcp_deficit -= absorbed;
            n -= absorbed;
        }
        if let EpState::Waiting { intended, seq, deadline, expect, got } = self.eps[0].state {
            let got = got + n;
            if got >= expect {
                self.complete(cx, 0, intended, expect as u64);
            } else {
                self.eps[0].state = EpState::Waiting { intended, seq, deadline, expect, got };
            }
        }
    }

    /// Handle one response message from the shared mailbox.
    fn handle_response(&mut self, cx: &mut Cx<'_>, bytes: Vec<u8>) {
        if self.spec.transport == LoadTransport::Tcp {
            if bytes.is_empty() {
                // EOF: the echo connection died
                self.tcp_fail();
            } else {
                self.tcp_bytes(cx, bytes.len());
            }
            return;
        }
        let seq = self.response_seq(&bytes);
        let waiter = self
            .eps
            .iter()
            .position(|e| matches!(e.state, EpState::Waiting { seq: s, .. } if Some(s) == seq));
        match waiter {
            Some(ep) => {
                let EpState::Waiting { intended, .. } = self.eps[ep].state else { unreachable!() };
                self.complete(cx, ep, intended, bytes.len() as u64);
            }
            None => {
                self.ledger.borrow_mut().stale_replies += 1;
                self.rec.borrow_mut().record_mut(self.spec.transport).stale_replies += 1;
            }
        }
    }

    /// Step endpoint `ep` through timeouts and due dispatches. Returns
    /// `true` if it dispatched a request.
    fn step_endpoint(&mut self, cx: &mut Cx<'_>, ep: usize) -> bool {
        let mut dispatched = false;
        loop {
            let now = cx.now();
            match self.eps[ep].state {
                EpState::Finished => return dispatched,
                EpState::Waiting { intended, deadline, expect, got, .. } => {
                    if now < deadline {
                        return dispatched;
                    }
                    self.timeout(cx, ep, intended, expect, got);
                }
                EpState::Idle => {
                    let intended = self.eps[ep].next_intended;
                    if intended >= self.spec.stop {
                        self.eps[ep].state = EpState::Finished;
                        continue;
                    }
                    if now < intended {
                        return dispatched;
                    }
                    {
                        let mut led = self.ledger.borrow_mut();
                        led.requests_intended += 1;
                        if now > intended {
                            led.late_dispatch += 1;
                        }
                    }
                    if now > intended {
                        self.rec.borrow_mut().record_mut(self.spec.transport).late_dispatch += 1;
                    }
                    let seq = self.seq;
                    self.seq = self.seq.wrapping_add(1);
                    // expected echo size is fixed by the payload draw
                    // inside dispatch; recompute after it runs
                    let sent_before = self.rec.borrow().record(self.spec.transport).bytes_sent;
                    let ok = self.dispatch(cx, ep, seq);
                    // open loop: the schedule advances from the
                    // intended start, regardless of outcome; a refused
                    // dispatch consumes its slot under either regime
                    if self.spec.arrival.is_open() || !ok {
                        let e = &mut self.eps[ep];
                        e.next_intended = self.spec.arrival.next_after(intended, now, &mut e.rng);
                    }
                    if ok {
                        let sent_after = self.rec.borrow().record(self.spec.transport).bytes_sent;
                        let expect = (sent_after - sent_before) as usize;
                        self.eps[ep].state = EpState::Waiting {
                            intended,
                            seq,
                            deadline: now + self.spec.timeout,
                            expect,
                            got: 0,
                        };
                        dispatched = true;
                    }
                }
            }
        }
    }
}

impl CabThread for LoadClient {
    fn name(&self) -> &'static str {
        "load-client"
    }

    fn run(&mut self, cx: &mut Cx<'_>) -> Step {
        loop {
            match self.state {
                State::Init => {
                    self.my_mbox = cx.shared.create_mailbox(false, HostOpMode::SharedMemory);
                    for e in &mut self.eps {
                        e.next_intended = self.spec.start + self.spec.arrival.draw_gap(&mut e.rng);
                    }
                    match self.spec.transport {
                        LoadTransport::Udp => {
                            cx.proto.udp.bind(self.spec.udp_port, self.my_mbox as u32);
                            self.state = State::Running;
                        }
                        LoadTransport::Tcp => {
                            let now = cx.now();
                            let remote =
                                (proto::ip_for_cab(self.spec.server.0), self.spec.server.1);
                            let (id, events) = cx.proto.tcp.connect(now, remote, None);
                            cx.proto.tcp_conns.entry(id).or_default().recv_mbox =
                                Some(self.my_mbox);
                            self.conn = Some(id);
                            handle_tcp_events_inline(cx, events);
                            self.state = State::Connecting;
                            return Step::Block(cx.proto.tcp_cond);
                        }
                        _ => self.state = State::Running,
                    }
                }
                State::Connecting => {
                    let established = self
                        .conn
                        .and_then(|c| cx.proto.tcp_conns.get(&c))
                        .map(|c| c.established)
                        .unwrap_or(false);
                    if !established {
                        return Step::Block(cx.proto.tcp_cond);
                    }
                    self.state = State::Running;
                }
                State::Running => {
                    self.tcp_pump(cx);
                    // select-before-read: drain every queued response
                    // without ever paying a charged empty Begin_Get
                    while cx.mbox_pending(self.my_mbox) {
                        let Ok(msg) = cx.begin_get(self.my_mbox) else { break };
                        let bytes = cx.shared.msg_bytes(&msg).to_vec();
                        cx.end_get(self.my_mbox, msg);
                        self.handle_response(cx, bytes);
                        if matches!(self.state, State::Finished) {
                            break;
                        }
                    }
                    if matches!(self.state, State::Finished) {
                        continue;
                    }
                    let mut dispatched = false;
                    for ep in 0..self.eps.len() {
                        dispatched |= self.step_endpoint(cx, ep);
                    }
                    if self.eps.iter().all(|e| matches!(e.state, EpState::Finished)) {
                        self.state = State::Finished;
                        continue;
                    }
                    if dispatched {
                        // let the fabric move before re-polling
                        return Step::Yield;
                    }
                    // earliest future obligation across endpoints: a
                    // response deadline or an intended start
                    let mut wake = SimTime::MAX;
                    for e in &self.eps {
                        let t = match e.state {
                            EpState::Waiting { deadline, .. } => deadline,
                            EpState::Idle => e.next_intended,
                            EpState::Finished => continue,
                        };
                        wake = wake.min(t);
                    }
                    return Step::BlockTimeout(cx.mbox_cond(self.my_mbox), wake);
                }
                State::Finished => return Step::Done,
            }
        }
    }
}
