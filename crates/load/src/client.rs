//! The load client: a CAB-resident thread issuing request-response
//! traffic over one transport, one outstanding request at a time.
//!
//! Request framing: every payload starts with the 4-byte reply address
//! (`nectar::scenario::encode_reply_addr`) followed by a 4-byte
//! big-endian sequence number. Echo services return the payload
//! verbatim, so the client matches responses to requests by sequence
//! number — replies that arrive after their request timed out are
//! counted as stale and dropped rather than being mistaken for the
//! current response.
//!
//! Coordinated omission: the dispatch loop consumes intended start
//! times from the arrival schedule. With one outstanding request, a
//! slow system makes dispatches run *late*; latency is still measured
//! from the intended start, so server-side stalls surface as tail
//! latency instead of silently shrinking the sample set.

use nectar::scenario::{encode_reply_addr, handle_tcp_events_inline};
use nectar::world::SharedLoadLedger;
use nectar_cab::proto::{self, rmp_submit, rr_call};
use nectar_cab::reqs::SendReq;
use nectar_cab::{CabThread, Cx, HostOpMode, MboxId, Step, WouldBlock};
use nectar_sim::{Pcg32, SimDuration, SimTime};
use nectar_stack::tcp::SocketId;
use nectar_wire::datalink::DatalinkProto;
use nectar_wire::nectar::DatagramHeader;

use crate::recorder::SharedRecorder;
use crate::workload::{Arrival, SizeDist};
use crate::LoadTransport;

/// Everything that parameterizes one client.
#[derive(Clone, Debug)]
pub struct ClientSpec {
    pub transport: LoadTransport,
    /// `(cab, mailbox)` for the Nectar transports, `(cab, port)` for
    /// UDP and TCP.
    pub server: (u16, u16),
    pub arrival: Arrival,
    pub size: SizeDist,
    /// Client-side deadline per request; a request unanswered by then
    /// is abandoned and counted as a timeout.
    pub timeout: SimDuration,
    /// First intended start is drawn after this time.
    pub start: SimTime,
    /// No new requests are issued at or after this time.
    pub stop: SimTime,
    /// Local UDP port (UDP transport only); must be unique per client.
    pub udp_port: u16,
    /// Private RNG stream (fork one per client).
    pub rng: Pcg32,
}

enum State {
    Init,
    /// TCP only: active open issued, waiting for establishment.
    Connecting,
    Idle,
    Waiting {
        intended: SimTime,
        seq: u32,
        deadline: SimTime,
        /// TCP: echoed bytes expected for this request.
        expect: usize,
        /// TCP: echoed bytes received so far.
        got: usize,
    },
    Finished,
}

/// One simulated client, runnable as a CAB thread.
pub struct LoadClient {
    spec: ClientSpec,
    rec: SharedRecorder,
    ledger: SharedLoadLedger,
    state: State,
    my_mbox: MboxId,
    conn: Option<SocketId>,
    next_intended: SimTime,
    seq: u32,
    /// TCP: echoed bytes still owed from timed-out requests; absorbed
    /// before counting bytes toward the current request so stream
    /// positions stay aligned.
    tcp_deficit: usize,
    /// TCP: request bytes accepted only partially by the socket.
    tcp_unsent: Vec<u8>,
}

impl LoadClient {
    pub fn new(spec: ClientSpec, rec: SharedRecorder, ledger: SharedLoadLedger) -> LoadClient {
        LoadClient {
            spec,
            rec,
            ledger,
            state: State::Init,
            my_mbox: 0,
            conn: None,
            next_intended: SimTime::ZERO,
            seq: 0,
            tcp_deficit: 0,
            tcp_unsent: Vec::new(),
        }
    }

    fn payload(&mut self, cab_id: u16, seq: u32) -> Vec<u8> {
        let reply_id = if self.spec.transport == LoadTransport::Udp {
            self.spec.udp_port
        } else {
            self.my_mbox
        };
        let size = self.spec.size.draw(&mut self.spec.rng);
        let mut p = Vec::with_capacity(size);
        p.extend_from_slice(&encode_reply_addr(cab_id, reply_id));
        p.extend_from_slice(&seq.to_be_bytes());
        while p.len() < size {
            p.push((p.len() * 13) as u8);
        }
        p
    }

    /// Sequence number carried by a response message, per transport
    /// framing (ReqResp responses are prefixed with the request id).
    fn response_seq(&self, bytes: &[u8]) -> Option<u32> {
        let off = if self.spec.transport == LoadTransport::ReqResp { 8 } else { 4 };
        let s = bytes.get(off..off + 4)?;
        Some(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Dispatch the request for the current intended slot. Returns
    /// `false` if the transport refused it (counted as a failure).
    fn dispatch(&mut self, cx: &mut Cx<'_>, seq: u32) -> bool {
        let (cab, id) = self.spec.server;
        let payload = self.payload(cx.cab_id, seq);
        let t = self.spec.transport;
        let len = payload.len() as u64;
        let ok = match t {
            LoadTransport::Datagram => {
                let pkt = DatagramHeader { dst_mbox: id, src_mbox: self.my_mbox }.build(&payload);
                cx.charge(cx.costs.datagram_proc);
                cx.datalink_send(cab, DatalinkProto::Datagram, 0, &pkt);
                true
            }
            LoadTransport::Rmp => {
                let req = SendReq { dst_cab: cab, dst_mbox: id, src_mbox: self.my_mbox };
                rmp_submit(cx, req, &payload);
                true
            }
            LoadTransport::ReqResp => {
                let req = SendReq { dst_cab: cab, dst_mbox: id, src_mbox: self.my_mbox };
                rr_call(cx, req, &payload) != 0
            }
            LoadTransport::Udp => {
                cx.charge(cx.costs.udp_proc);
                let src = cx.proto.addr();
                let dst = proto::ip_for_cab(cab);
                let dgram = cx.proto.udp.output(src, self.spec.udp_port, dst, id, &payload);
                cx.charge(cx.costs.checksum(dgram.len()));
                proto::ip_output(cx, dst, nectar_wire::ipv4::IpProtocol::UDP, &dgram);
                true
            }
            LoadTransport::Tcp => match self.conn {
                Some(conn) => {
                    let now = cx.now();
                    cx.charge(cx.costs.tcp_proc);
                    let (n, events) = cx.proto.tcp.send(now, conn, &payload);
                    handle_tcp_events_inline(cx, events);
                    if n < payload.len() {
                        self.tcp_unsent = payload[n..].to_vec();
                    }
                    true
                }
                None => false,
            },
        };
        if ok {
            let mut led = self.ledger.borrow_mut();
            led.requests_sent += 1;
            led.bytes_sent += len;
            let mut rec = self.rec.borrow_mut();
            let r = rec.record_mut(t);
            r.requests_sent += 1;
            r.bytes_sent += len;
        } else {
            self.ledger.borrow_mut().failures += 1;
            self.rec.borrow_mut().record_mut(t).failures += 1;
        }
        ok
    }

    /// Push any still-unsent TCP request bytes into the socket.
    fn tcp_pump(&mut self, cx: &mut Cx<'_>) {
        if self.tcp_unsent.is_empty() {
            return;
        }
        let Some(conn) = self.conn else { return };
        let now = cx.now();
        let chunk = std::mem::take(&mut self.tcp_unsent);
        let (n, events) = cx.proto.tcp.send(now, conn, &chunk);
        handle_tcp_events_inline(cx, events);
        if n < chunk.len() {
            self.tcp_unsent = chunk[n..].to_vec();
        }
    }

    /// Complete the current request (response fully received).
    fn complete(&mut self, cx: &mut Cx<'_>, intended: SimTime, bytes: u64) {
        let now = cx.now();
        let latency = now.saturating_since(intended);
        self.ledger.borrow_mut().responses += 1;
        self.ledger.borrow_mut().bytes_received += bytes;
        self.rec.borrow_mut().response(self.spec.transport, latency, bytes);
        self.next_intended = self.spec.arrival.next_after(intended, now, &mut self.spec.rng);
        self.state = State::Idle;
    }

    fn timeout(&mut self, cx: &mut Cx<'_>, expect: usize, got: usize) {
        let now = cx.now();
        self.ledger.borrow_mut().timeouts += 1;
        self.rec.borrow_mut().record_mut(self.spec.transport).timeouts += 1;
        if self.spec.transport == LoadTransport::Tcp {
            // the echo stream still owes these bytes; absorb them
            // before counting toward the next request
            self.tcp_deficit += expect - got;
        }
        if !self.spec.arrival.is_open() {
            // a closed-loop client thinks from the abandonment
            self.next_intended =
                self.spec.arrival.next_after(self.next_intended, now, &mut self.spec.rng);
        }
        self.state = State::Idle;
    }
}

impl CabThread for LoadClient {
    fn name(&self) -> &'static str {
        "load-client"
    }

    fn run(&mut self, cx: &mut Cx<'_>) -> Step {
        loop {
            match self.state {
                State::Init => {
                    self.my_mbox = cx.shared.create_mailbox(false, HostOpMode::SharedMemory);
                    self.next_intended =
                        self.spec.start + self.spec.arrival.draw_gap(&mut self.spec.rng);
                    match self.spec.transport {
                        LoadTransport::Udp => {
                            cx.proto.udp.bind(self.spec.udp_port, self.my_mbox as u32);
                            self.state = State::Idle;
                        }
                        LoadTransport::Tcp => {
                            let now = cx.now();
                            let remote =
                                (proto::ip_for_cab(self.spec.server.0), self.spec.server.1);
                            let (id, events) = cx.proto.tcp.connect(now, remote, None);
                            cx.proto.tcp_conns.entry(id).or_default().recv_mbox =
                                Some(self.my_mbox);
                            self.conn = Some(id);
                            handle_tcp_events_inline(cx, events);
                            self.state = State::Connecting;
                            return Step::Block(cx.proto.tcp_cond);
                        }
                        _ => self.state = State::Idle,
                    }
                }
                State::Connecting => {
                    let established = self
                        .conn
                        .and_then(|c| cx.proto.tcp_conns.get(&c))
                        .map(|c| c.established)
                        .unwrap_or(false);
                    if !established {
                        return Step::Block(cx.proto.tcp_cond);
                    }
                    self.state = State::Idle;
                }
                State::Idle => {
                    if self.next_intended >= self.spec.stop {
                        self.state = State::Finished;
                        continue;
                    }
                    let now = cx.now();
                    if now < self.next_intended {
                        return Step::Sleep(self.next_intended);
                    }
                    let intended = self.next_intended;
                    {
                        let mut led = self.ledger.borrow_mut();
                        led.requests_intended += 1;
                        if now > intended {
                            led.late_dispatch += 1;
                        }
                    }
                    if now > intended {
                        self.rec.borrow_mut().record_mut(self.spec.transport).late_dispatch += 1;
                    }
                    let seq = self.seq;
                    self.seq = self.seq.wrapping_add(1);
                    // expected echo size is fixed by the payload draw
                    // inside dispatch; recompute after it runs
                    let sent_before = self.rec.borrow().record(self.spec.transport).bytes_sent;
                    if self.dispatch(cx, seq) {
                        let sent_after = self.rec.borrow().record(self.spec.transport).bytes_sent;
                        let expect = (sent_after - sent_before) as usize;
                        self.state = State::Waiting {
                            intended,
                            seq,
                            deadline: now + self.spec.timeout,
                            expect,
                            got: 0,
                        };
                        // open-loop: the schedule advances from the
                        // intended start, regardless of completion
                        if self.spec.arrival.is_open() {
                            self.next_intended =
                                self.spec.arrival.next_after(intended, now, &mut self.spec.rng);
                        }
                        return Step::Yield;
                    }
                    // refused outright: consume the slot and move on
                    self.next_intended =
                        self.spec.arrival.next_after(intended, now, &mut self.spec.rng);
                }
                State::Waiting { intended, seq, deadline, expect, got } => {
                    self.tcp_pump(cx);
                    match cx.begin_get(self.my_mbox) {
                        Ok(msg) => {
                            let bytes = cx.shared.msg_bytes(&msg).to_vec();
                            cx.end_get(self.my_mbox, msg);
                            if self.spec.transport == LoadTransport::Tcp {
                                if bytes.is_empty() {
                                    // EOF: the echo connection died
                                    self.ledger.borrow_mut().failures += 1;
                                    self.rec
                                        .borrow_mut()
                                        .record_mut(self.spec.transport)
                                        .failures += 1;
                                    self.state = State::Finished;
                                    continue;
                                }
                                let mut n = bytes.len();
                                if self.tcp_deficit > 0 {
                                    let absorbed = self.tcp_deficit.min(n);
                                    self.tcp_deficit -= absorbed;
                                    n -= absorbed;
                                }
                                let got = got + n;
                                if got >= expect {
                                    self.complete(cx, intended, expect as u64);
                                } else {
                                    self.state =
                                        State::Waiting { intended, seq, deadline, expect, got };
                                }
                            } else if self.response_seq(&bytes) == Some(seq) {
                                self.complete(cx, intended, bytes.len() as u64);
                            } else {
                                self.ledger.borrow_mut().stale_replies += 1;
                                self.rec
                                    .borrow_mut()
                                    .record_mut(self.spec.transport)
                                    .stale_replies += 1;
                            }
                        }
                        Err(WouldBlock::Empty(c)) | Err(WouldBlock::NoSpace(c)) => {
                            let now = cx.now();
                            if now >= deadline {
                                self.timeout(cx, expect, got);
                                continue;
                            }
                            return Step::BlockTimeout(c, deadline);
                        }
                    }
                }
                State::Finished => return Step::Done,
            }
        }
    }
}
