//! Workload models: when each client issues its next request and how
//! large the request is.
//!
//! Both models draw from the deterministic sim RNG ([`Pcg32`]), so two
//! fleets built from the same seed produce bit-identical schedules.
//!
//! * **Open loop** — the request *schedule* is fixed in advance: the
//!   next intended start is always `previous intended + Exp(mean)`,
//!   whether or not the previous request has completed. When the
//!   system falls behind, dispatches run late but their latency is
//!   still measured from the intended time (see
//!   [`crate::recorder`]) — the wrk2-style coordinated-omission
//!   correction.
//! * **Closed loop** — the classic interactive client: the next
//!   request starts a think time after the previous one *completes*.
//!   A closed-loop client can never fall behind, so its intended and
//!   actual start coincide by construction.

use nectar_sim::{Pcg32, SimDuration, SimTime};

/// Arrival model for one client.
#[derive(Clone, Copy, Debug)]
pub enum Arrival {
    /// Open-loop Poisson arrivals with the given mean inter-arrival
    /// gap. The schedule advances from each *intended* start.
    Open { mean_gap: SimDuration },
    /// Closed-loop with exponential think time between a completion
    /// and the next request.
    Closed { mean_think: SimDuration },
}

impl Arrival {
    /// Draw the gap to the next intended start.
    pub fn draw_gap(&self, rng: &mut Pcg32) -> SimDuration {
        let mean = match self {
            Arrival::Open { mean_gap } => mean_gap.as_nanos() as f64,
            Arrival::Closed { mean_think } => mean_think.as_nanos() as f64,
        };
        // clamp to >= 1ns so schedules always advance
        SimDuration::from_nanos((rng.exp(mean) as u64).max(1))
    }

    /// True for the open-loop model (schedule advances from intended
    /// starts; dispatches can run late).
    pub fn is_open(&self) -> bool {
        matches!(self, Arrival::Open { .. })
    }

    /// Advance the schedule after a dispatch at `intended` /
    /// completion at `completed`.
    pub fn next_after(&self, intended: SimTime, completed: SimTime, rng: &mut Pcg32) -> SimTime {
        match self {
            Arrival::Open { .. } => intended + self.draw_gap(rng),
            Arrival::Closed { .. } => completed + self.draw_gap(rng),
        }
    }
}

/// Per-request payload size distribution. Draws are clamped to at
/// least [`MIN_PAYLOAD`] bytes: every request carries a 4-byte reply
/// address and a 4-byte sequence number.
#[derive(Clone, Copy, Debug)]
pub enum SizeDist {
    Fixed(usize),
    /// Uniform over `[lo, hi)`.
    Uniform(usize, usize),
}

/// Smallest payload a load request can carry (reply address + seq).
pub const MIN_PAYLOAD: usize = 8;

impl SizeDist {
    pub fn draw(&self, rng: &mut Pcg32) -> usize {
        let n = match *self {
            SizeDist::Fixed(n) => n,
            SizeDist::Uniform(lo, hi) => {
                if lo + 1 >= hi {
                    lo
                } else {
                    rng.range(lo, hi)
                }
            }
        };
        n.max(MIN_PAYLOAD)
    }

    /// Mean of the distribution (after clamping), for offered-load
    /// bookkeeping.
    pub fn mean(&self) -> usize {
        match *self {
            SizeDist::Fixed(n) => n.max(MIN_PAYLOAD),
            SizeDist::Uniform(lo, hi) => ((lo + hi.max(lo + 1)) / 2).max(MIN_PAYLOAD),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_schedule_is_independent_of_completions() {
        let a = Arrival::Open { mean_gap: SimDuration::from_micros(100) };
        let mut r1 = Pcg32::seeded(7);
        let mut r2 = Pcg32::seeded(7);
        let i0 = SimTime::from_nanos(1_000);
        // completion time must not influence the next intended start
        let n1 = a.next_after(i0, SimTime::from_nanos(5_000_000), &mut r1);
        let n2 = a.next_after(i0, SimTime::from_nanos(2_000), &mut r2);
        assert_eq!(n1, n2);
        assert!(n1 > i0);
    }

    #[test]
    fn closed_loop_schedule_follows_completions() {
        let a = Arrival::Closed { mean_think: SimDuration::from_micros(100) };
        let mut r1 = Pcg32::seeded(7);
        let mut r2 = Pcg32::seeded(7);
        let i0 = SimTime::from_nanos(1_000);
        let c1 = SimTime::from_nanos(50_000);
        let c2 = SimTime::from_nanos(90_000);
        let n1 = a.next_after(i0, c1, &mut r1);
        let n2 = a.next_after(i0, c2, &mut r2);
        assert_eq!(n2.as_nanos() - n1.as_nanos(), 40_000);
    }

    #[test]
    fn sizes_respect_minimum() {
        let mut rng = Pcg32::seeded(3);
        for d in [SizeDist::Fixed(1), SizeDist::Uniform(0, 4), SizeDist::Uniform(64, 256)] {
            for _ in 0..100 {
                assert!(d.draw(&mut rng) >= MIN_PAYLOAD);
            }
        }
        let d = SizeDist::Uniform(64, 256);
        for _ in 0..100 {
            assert!(d.draw(&mut rng) < 256);
        }
    }
}
