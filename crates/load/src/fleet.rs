//! Fleet deployment: pick a topology, install one echo service per
//! transport, and place clients across the remaining CABs.
//!
//! Setup order is fixed — servers first (one CAB each, in mix order),
//! then clients in ascending global index, each with an RNG stream
//! forked from the plan seed in that same order — so two fleets built
//! from the same plan evolve bit-identically.

use nectar::scenario::{CabEcho, CabTcpEchoServer, CabUdpEcho, Transport};
use nectar::world::{SharedLoadLedger, World};
use nectar::{ClosSpec, Topology};
use nectar_cab::HostOpMode;
use nectar_sim::{Pcg32, SimDuration, SimTime};

use crate::client::{ClientSpec, LoadClient};
use crate::recorder::{LoadRecorder, SharedRecorder};
use crate::workload::{Arrival, SizeDist};
use crate::LoadTransport;

/// Well-known ports for the fleet's echo services.
pub const UDP_LOAD_PORT: u16 = 7;
pub const TCP_LOAD_PORT: u16 = 5000;
/// Each UDP client binds `UDP_CLIENT_PORT_BASE + global index`.
pub const UDP_CLIENT_PORT_BASE: u16 = 9000;

/// A declarative fleet: how many clients per transport, how they
/// arrive, and how long they run.
#[derive(Clone, Debug)]
pub struct FleetPlan {
    pub seed: u64,
    /// `(transport, endpoint count)` — one echo-service CAB per entry.
    pub mix: Vec<(LoadTransport, usize)>,
    /// Client threads packed onto each client CAB.
    pub clients_per_cab: usize,
    /// Lightweight endpoints multiplexed onto each client thread.
    /// TCP endpoints are whole connections and never multiplex — a TCP
    /// mix entry always gets one endpoint per thread. Use 1 for the
    /// classic one-thread-per-client fleet.
    pub endpoints_per_client: usize,
    pub arrival: Arrival,
    pub size: SizeDist,
    pub timeout: SimDuration,
    pub start: SimTime,
    pub stop: SimTime,
}

impl FleetPlan {
    /// Total endpoints — the unit of offered load.
    pub fn total_clients(&self) -> usize {
        self.mix.iter().map(|(_, n)| n).sum()
    }

    fn epc(&self) -> usize {
        self.endpoints_per_client.max(1)
    }

    /// Client threads the plan forks (endpoints grouped per thread).
    pub fn client_threads(&self) -> usize {
        self.mix
            .iter()
            .map(|(t, n)| if *t == LoadTransport::Tcp { *n } else { n.div_ceil(self.epc()) })
            .sum()
    }

    /// CABs the plan needs: one per mix entry (echo service) plus the
    /// client CABs.
    pub fn cabs(&self) -> usize {
        self.mix.len() + self.client_threads().div_ceil(self.clients_per_cab.max(1))
    }

    /// The topology this plan should run on.
    pub fn topology(&self) -> Topology {
        fleet_topology(self.cabs())
    }
}

/// Smallest standard topology fitting `cabs` boards: one HUB up to its
/// port budget, two bridged HUBs past that, then a folded-Clos fabric
/// of 16×16 HUBs sized by [`ClosSpec::for_cabs`].
pub fn fleet_topology(cabs: usize) -> Topology {
    if cabs <= 16 {
        Topology::single_hub(cabs)
    } else if cabs <= 30 {
        Topology::two_hubs(cabs)
    } else {
        Topology::folded_clos(&ClosSpec::for_cabs(cabs))
    }
}

/// Handles shared by a deployed fleet.
pub struct Fleet {
    pub recorder: SharedRecorder,
    pub ledger: SharedLoadLedger,
    pub total_clients: usize,
    /// `(transport, (cab, mailbox-or-port))` per echo service.
    pub servers: Vec<(LoadTransport, (u16, u16))>,
}

/// Deploy the plan onto a world built over (at least) `plan.cabs()`
/// boards: echo services on CABs `0..mix.len()`, clients packed onto
/// the CABs after them.
pub fn deploy_fleet(world: &mut World, plan: &FleetPlan) -> Fleet {
    assert!(
        world.topo.cabs() >= plan.cabs(),
        "fleet needs {} CABs, topology has {}",
        plan.cabs(),
        world.topo.cabs()
    );
    let recorder = LoadRecorder::shared();
    let ledger = world.attach_load_ledger();

    let mut servers = Vec::with_capacity(plan.mix.len());
    for (si, (t, _)) in plan.mix.iter().enumerate() {
        let s = si as u16;
        let cab = &mut world.cabs[si];
        let addr = match t {
            LoadTransport::Datagram | LoadTransport::Rmp | LoadTransport::ReqResp => {
                let mbox = cab.shared.create_mailbox(false, HostOpMode::SharedMemory);
                let transport = match t {
                    LoadTransport::Datagram => Transport::Datagram,
                    LoadTransport::Rmp => Transport::Rmp,
                    _ => Transport::ReqResp,
                };
                cab.fork_app(Box::new(CabEcho { transport, recv_mbox: mbox }));
                (s, mbox)
            }
            LoadTransport::Udp => {
                let mbox = cab.shared.create_mailbox(false, HostOpMode::SharedMemory);
                cab.fork_app(Box::new(CabUdpEcho::new(UDP_LOAD_PORT, mbox)));
                (s, UDP_LOAD_PORT)
            }
            LoadTransport::Tcp => {
                let tc = cab.proto.tcp_cond;
                let accept = cab.shared.create_mailbox_on(false, HostOpMode::SharedMemory, tc);
                cab.fork_app(Box::new(CabTcpEchoServer::new(TCP_LOAD_PORT, accept)));
                (s, TCP_LOAD_PORT)
            }
        };
        servers.push((*t, addr));
    }

    let n_servers = plan.mix.len();
    let mut master = Pcg32::seeded(plan.seed ^ 0x10ad);
    let mut thread = 0usize; // global client-thread index (CAB packing)
    let mut ep = 0usize; // global endpoint index (RNG forking)
    for (mi, (t, count)) in plan.mix.iter().enumerate() {
        let server = servers[mi].1;
        let epc = if *t == LoadTransport::Tcp { 1 } else { plan.epc() };
        let mut left = *count;
        while left > 0 {
            let n = left.min(epc);
            // fork by global endpoint index: an endpoint's stream does
            // not depend on how endpoints are grouped into threads
            let rngs: Vec<Pcg32> = (0..n).map(|k| master.fork((ep + k) as u64)).collect();
            let cab = n_servers + thread / plan.clients_per_cab.max(1);
            let spec = ClientSpec {
                transport: *t,
                server,
                arrival: plan.arrival,
                size: plan.size,
                timeout: plan.timeout,
                start: plan.start,
                stop: plan.stop,
                udp_port: UDP_CLIENT_PORT_BASE + thread as u16,
                rngs,
            };
            world.cabs[cab].fork_app(Box::new(LoadClient::new(
                spec,
                recorder.clone(),
                ledger.clone(),
            )));
            ep += n;
            thread += 1;
            left -= n;
        }
    }

    Fleet { recorder, ledger, total_clients: ep, servers }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(mix: Vec<(LoadTransport, usize)>) -> FleetPlan {
        FleetPlan {
            seed: 1,
            mix,
            clients_per_cab: 12,
            endpoints_per_client: 1,
            arrival: Arrival::Open { mean_gap: SimDuration::from_micros(500) },
            size: SizeDist::Fixed(64),
            timeout: SimDuration::from_millis(50),
            start: SimTime::ZERO,
            stop: SimTime::ZERO + SimDuration::from_millis(10),
        }
    }

    #[test]
    fn plan_counts_cabs_for_servers_and_clients() {
        let p = plan(vec![(LoadTransport::ReqResp, 24), (LoadTransport::Udp, 13)]);
        assert_eq!(p.total_clients(), 37);
        // 2 servers + ceil(37/12)=4 client CABs
        assert_eq!(p.cabs(), 6);
        assert_eq!(p.topology().cabs(), 6);
    }

    #[test]
    fn topology_scales_with_fleet_size() {
        assert_eq!(fleet_topology(8).hubs, 1);
        assert_eq!(fleet_topology(16).hubs, 1);
        assert_eq!(fleet_topology(25).hubs, 2);
        let big = fleet_topology(40);
        assert!(big.hubs >= 3);
        assert!(big.cabs() >= 40);
        // past the two-HUB budget the fleet rides a folded Clos, and
        // it keeps scaling to the multi-pod sizes the scale bench uses
        assert!(big.stages() >= 2, "40-CAB fleet should be leaf-spine");
        let huge = fleet_topology(400);
        assert!(huge.stages() == 3, "400-CAB fleet should cross pods via cores");
        assert!(huge.cabs() >= 400);
    }

    #[test]
    fn endpoint_multiplexing_shrinks_the_thread_count() {
        let mut p = plan(vec![(LoadTransport::ReqResp, 120), (LoadTransport::Tcp, 5)]);
        p.endpoints_per_client = 30;
        // 120 reqresp endpoints ride ceil(120/30)=4 threads; TCP never
        // multiplexes, so its 5 endpoints are 5 threads
        assert_eq!(p.total_clients(), 125);
        assert_eq!(p.client_threads(), 9);
        // 2 servers + ceil(9/12) = 1 client CAB
        assert_eq!(p.cabs(), 3);
    }
}
