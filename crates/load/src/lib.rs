//! `nectar-load` — the deterministic multi-client workload engine.
//!
//! The paper's evaluation (§6) is single-pair microbenchmarks, but its
//! central claim is that the CAB is a *shared* protocol engine. This
//! crate drives fleets of hundreds to thousands of simulated clients
//! across multi-HUB topologies against the CAB-resident protocols and
//! reports service-level objectives the way a capacity planner would:
//!
//! * [`workload`] — open-loop (Poisson) and closed-loop (think time)
//!   arrival models with per-request payload-size distributions, all
//!   drawn from the deterministic sim RNG: same seed ⇒ bit-identical
//!   schedules.
//! * [`recorder`] — a coordinated-omission-correct latency recorder:
//!   latency is measured from each request's *intended* start, backed
//!   by the bounded-memory `BucketHist` so recording is O(1) space.
//! * [`client`] — the client itself: a CAB thread issuing one
//!   outstanding request at a time over any [`LoadTransport`].
//! * [`fleet`] — deployment: topology selection, echo services, and
//!   client placement across CABs, plus the shared `net/load/*`
//!   ledger wired into `nectar::World` metrics.
//! * [`sweep`] — the capacity-sweep driver: step offered load per
//!   protocol until goodput saturates, locate the knee, and render
//!   `BENCH_load.json` plus a markdown SLO table.

pub mod client;
pub mod fleet;
pub mod recorder;
pub mod sweep;
pub mod workload;

pub use client::{ClientSpec, LoadClient};
pub use fleet::{deploy_fleet, fleet_topology, Fleet, FleetPlan};
pub use recorder::{LoadRecorder, SharedRecorder, TransportRecord};
pub use sweep::{LoadPoint, SweepConfig, SweepResult, TransportSweep};
pub use workload::{Arrival, SizeDist, MIN_PAYLOAD};

/// The transports the load engine can drive. Extends the Table 1 set
/// (`nectar::scenario::Transport`) with TCP, which the paper-fidelity
/// ping-pong scenarios model separately as a byte stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LoadTransport {
    Datagram,
    Rmp,
    ReqResp,
    Udp,
    Tcp,
}

impl LoadTransport {
    pub const COUNT: usize = 5;
    pub const ALL: [LoadTransport; LoadTransport::COUNT] = [
        LoadTransport::Datagram,
        LoadTransport::Rmp,
        LoadTransport::ReqResp,
        LoadTransport::Udp,
        LoadTransport::Tcp,
    ];

    pub fn index(self) -> usize {
        match self {
            LoadTransport::Datagram => 0,
            LoadTransport::Rmp => 1,
            LoadTransport::ReqResp => 2,
            LoadTransport::Udp => 3,
            LoadTransport::Tcp => 4,
        }
    }

    /// Stable lower-case name used in JSON and markdown output.
    pub fn name(self) -> &'static str {
        match self {
            LoadTransport::Datagram => "datagram",
            LoadTransport::Rmp => "rmp",
            LoadTransport::ReqResp => "reqresp",
            LoadTransport::Udp => "udp",
            LoadTransport::Tcp => "tcp",
        }
    }
}
