//! The capacity-sweep driver: step offered load per transport, measure
//! goodput and tail latency at each point, and locate the capacity
//! knee — the highest offered load whose coordinated-omission-correct
//! p99 still meets the latency SLO.
//!
//! Why an SLO knee and not a goodput ratio: open-loop clients with one
//! outstanding request eventually serve *every* request even past
//! saturation (they just run ever later), so achieved/offered stays
//! near 1 and is dominated by Poisson sampling noise at smoke scale.
//! Saturation is unambiguous in the CO-corrected tail instead: once
//! the fleet falls behind, latency measured from intended start grows
//! with the backlog and p99 blows past any reasonable SLO.
//!
//! Every reported quantity is integer-valued and every world is built
//! from a seed that is a pure function of the sweep seed, transport
//! and load step, so the rendered JSON is byte-identical across
//! same-seed runs — the determinism contract `BENCH_load.json` is
//! pinned on.

use nectar::config::Config;
use nectar::world::World;
use nectar_sim::{SimDuration, SimTime};

use crate::fleet::{deploy_fleet, FleetPlan};
use crate::workload::{Arrival, SizeDist};
use crate::LoadTransport;

/// Parameters of one capacity sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    pub seed: u64,
    pub transports: Vec<LoadTransport>,
    /// Endpoints per load point (all driving one transport).
    pub clients: usize,
    pub clients_per_cab: usize,
    /// Endpoints multiplexed per client thread (see
    /// [`crate::fleet::FleetPlan::endpoints_per_client`]).
    pub endpoints_per_client: usize,
    /// Aggregate offered load steps, requests per second.
    pub offered_rps: Vec<u64>,
    pub size: SizeDist,
    /// Measurement window of simulated time per point.
    pub measure: SimDuration,
    /// Per-request client deadline.
    pub timeout: SimDuration,
    /// The latency SLO: a load point whose CO-corrected p99 exceeds
    /// this is saturated; the knee is the last point that meets it.
    pub slo_p99: SimDuration,
    /// Arm the conformance oracle (`nectar_stack::conform`) during the
    /// sweep: any TCP transition violation aborts the run.
    pub oracle: bool,
    /// Base world configuration for every load point. `seed` and
    /// `oracle` are overridden per point; everything else (transport
    /// knobs, host-I/O batching) carries through, which is how the
    /// fast-path variant sweeps run.
    pub base: Config,
    /// Variant label rendered into the JSON (`"baseline"`,
    /// `"fastpath"`), so one artifact can hold both sweeps.
    pub variant: &'static str,
}

impl SweepConfig {
    /// Seconds-of-sim-time smoke configuration for CI.
    pub fn quick(seed: u64) -> SweepConfig {
        SweepConfig {
            seed,
            transports: vec![LoadTransport::ReqResp, LoadTransport::Udp],
            clients: 12,
            clients_per_cab: 6,
            endpoints_per_client: 1,
            offered_rps: vec![2_000, 8_000],
            size: SizeDist::Fixed(64),
            measure: SimDuration::from_millis(60),
            timeout: SimDuration::from_millis(25),
            slo_p99: SimDuration::from_millis(5),
            oracle: true,
            base: Config::default(),
            variant: "baseline",
        }
    }

    /// The full benchmark sweep behind `BENCH_load.json`. The step
    /// grid is deliberately uneven: it clusters points around each
    /// transport's observed knee region (tcp ~3.5k, udp ~4k, rmp
    /// ~6-7k, reqresp ~8-9k, datagram ~12-16k) so a one-step knee
    /// shift is resolvable, with sparse anchors below and above.
    pub fn full(seed: u64) -> SweepConfig {
        SweepConfig {
            seed,
            transports: vec![
                LoadTransport::Datagram,
                LoadTransport::Rmp,
                LoadTransport::ReqResp,
                LoadTransport::Udp,
                LoadTransport::Tcp,
            ],
            clients: 48,
            clients_per_cab: 12,
            endpoints_per_client: 1,
            offered_rps: vec![
                1_000, 2_000, 3_400, 3_600, 4_000, 5_000, 6_000, 7_000, 8_000, 9_000, 10_000,
                12_000, 14_000, 16_000, 20_000,
            ],
            size: SizeDist::Fixed(256),
            measure: SimDuration::from_millis(400),
            timeout: SimDuration::from_millis(50),
            slo_p99: SimDuration::from_millis(10),
            oracle: true,
            base: Config::default(),
            variant: "baseline",
        }
    }

    /// The modern transport fast path on top of this sweep: windowed
    /// RMP, TCP SACK + window scaling, and batched I/O (doorbell/RX
    /// interrupt coalescing + larger mailbox bursts). Same transports,
    /// steps and SLO — only the world configuration and the variant
    /// label change.
    ///
    /// The RTO floor is also raised to 250ms (RFC 6298's suggested
    /// granularity): the seed's 10ms LAN floor sits *inside* the
    /// peer's delayed-ack window, so every echo reply whose ack rides
    /// on the client's next request (~1/rate later) spuriously
    /// retransmits under load. A floor above the 200ms delack timeout
    /// eliminates those retransmits without extra ack traffic.
    pub fn fastpath(mut self) -> SweepConfig {
        self.base.rmp.window = 8;
        self.base.tcp.sack = true;
        self.base.tcp.wscale = Some(2);
        self.base.tcp.rto_min = SimDuration::from_millis(250);
        self.base.doorbell_coalesce = true;
        self.base.mailbox_burst = 16;
        self.variant = "fastpath";
        self
    }
}

/// One measured load point. All integers, rendered verbatim into JSON.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadPoint {
    pub offered_rps: u64,
    pub achieved_rps: u64,
    /// Response payload bits delivered per second of sim time.
    pub goodput_bps: u64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub responses: u64,
    pub timeouts: u64,
    pub failures: u64,
    pub stale_replies: u64,
    pub late_dispatch: u64,
    /// Protocol retransmissions during the point (RMP / RR / TCP).
    pub retransmits: u64,
    /// Frames dropped in the fabric (HUB contention, CAB FIFO, CRC).
    pub drops: u64,
}

/// All points for one transport plus the located knee.
#[derive(Clone, Debug)]
pub struct TransportSweep {
    pub transport: LoadTransport,
    pub points: Vec<LoadPoint>,
    /// Index into `points` of the capacity knee: the last point that
    /// served requests with its CO-corrected p99 inside the SLO.
    pub knee: Option<usize>,
}

impl TransportSweep {
    pub fn knee_rps(&self) -> u64 {
        self.knee.map(|i| self.points[i].offered_rps).unwrap_or(0)
    }
}

/// The finished sweep.
#[derive(Clone, Debug)]
pub struct SweepResult {
    pub seed: u64,
    pub variant: &'static str,
    pub clients: u64,
    pub measure_ns: u64,
    pub slo_p99_ns: u64,
    pub sweeps: Vec<TransportSweep>,
}

/// Run one load point: a fresh world, a single-transport fleet at the
/// given aggregate offered rate, measured over `cfg.measure`.
pub fn run_point(cfg: &SweepConfig, t: LoadTransport, offered_rps: u64) -> LoadPoint {
    // per-client mean gap so the aggregate open-loop rate is `offered`
    let gap_ns = (cfg.clients as u64)
        .saturating_mul(1_000_000_000)
        .checked_div(offered_rps)
        .unwrap_or(u64::MAX)
        .max(1);
    let plan = FleetPlan {
        seed: cfg.seed ^ ((t.index() as u64) << 56) ^ offered_rps,
        mix: vec![(t, cfg.clients)],
        clients_per_cab: cfg.clients_per_cab,
        endpoints_per_client: cfg.endpoints_per_client,
        arrival: Arrival::Open { mean_gap: SimDuration::from_nanos(gap_ns) },
        size: cfg.size,
        timeout: cfg.timeout,
        // 20ms warmup before the first intended start: the whole fleet
        // connects at t=0, and the TCP handshake storm alone leaves
        // ~10ms of server backlog. Measuring from t=1ms would fold
        // that setup transient into the p99 of every mid-load point.
        start: SimTime::ZERO + SimDuration::from_millis(20),
        stop: SimTime::ZERO + SimDuration::from_millis(20) + cfg.measure,
    };
    let config = Config { seed: plan.seed, oracle: Some(cfg.oracle), ..cfg.base };
    let (mut world, mut sim) = World::new(config, plan.topology());
    let fleet = deploy_fleet(&mut world, &plan);
    // run past the stop time so in-flight requests resolve or time out
    let drain = cfg.timeout + SimDuration::from_millis(20);
    world.run_until(&mut sim, plan.stop + drain);

    let rec = fleet.recorder.borrow();
    let r = rec.record(t);
    let measure_ns = cfg.measure.as_nanos().max(1);
    let achieved_rps = (r.responses as u128 * 1_000_000_000 / measure_ns as u128) as u64;
    let goodput_bps = (r.bytes_received as u128 * 8 * 1_000_000_000 / measure_ns as u128) as u64;

    let mut retransmits = 0u64;
    let mut drops = world.stats.frames_hub_dropped;
    for cab in &world.cabs {
        drops += cab.stats.frames_fifo_dropped + cab.stats.frames_crc_dropped;
        match t {
            LoadTransport::Rmp => {
                retransmits +=
                    cab.proto.rmp_tx.values().map(|tx| tx.stats().retransmits).sum::<u64>();
            }
            LoadTransport::ReqResp => {
                retransmits +=
                    cab.proto.rr_clients.values().map(|c| c.stats().retransmits).sum::<u64>();
            }
            LoadTransport::Tcp => {
                retransmits += cab.proto.tcp.total_socket_stats().retransmits;
            }
            LoadTransport::Datagram | LoadTransport::Udp => {}
        }
    }

    LoadPoint {
        offered_rps,
        achieved_rps,
        goodput_bps,
        p50_ns: r.latency.percentile_nanos(0.50),
        p90_ns: r.latency.percentile_nanos(0.90),
        p99_ns: r.latency.percentile_nanos(0.99),
        p999_ns: r.latency.percentile_nanos(0.999),
        responses: r.responses,
        timeouts: r.timeouts,
        failures: r.failures,
        stale_replies: r.stale_replies,
        late_dispatch: r.late_dispatch,
        retransmits,
        drops,
    }
}

/// Run the whole sweep: every transport through every load step.
pub fn run_sweep(cfg: &SweepConfig) -> SweepResult {
    let mut sweeps = Vec::with_capacity(cfg.transports.len());
    for &t in &cfg.transports {
        let points: Vec<LoadPoint> =
            cfg.offered_rps.iter().map(|&rps| run_point(cfg, t, rps)).collect();
        let slo = cfg.slo_p99.as_nanos();
        let knee = points
            .iter()
            .enumerate()
            .rev()
            .find(|(_, p)| p.responses > 0 && p.p99_ns <= slo)
            .map(|(i, _)| i);
        sweeps.push(TransportSweep { transport: t, points, knee });
    }
    SweepResult {
        seed: cfg.seed,
        variant: cfg.variant,
        clients: cfg.clients as u64,
        measure_ns: cfg.measure.as_nanos(),
        slo_p99_ns: cfg.slo_p99.as_nanos(),
        sweeps,
    }
}

/// Render several sweep variants (e.g. baseline + fastpath) into one
/// deterministic JSON artifact — the `BENCH_load.json` layout.
pub fn variants_json(results: &[SweepResult]) -> String {
    let mut out = String::from("{\n\"variants\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(r.to_json().trim_end());
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n}\n");
    out
}

impl LoadPoint {
    fn to_json(self) -> String {
        format!(
            concat!(
                "{{\"offered_rps\":{},\"achieved_rps\":{},\"goodput_bps\":{},",
                "\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{},",
                "\"responses\":{},\"timeouts\":{},\"failures\":{},",
                "\"stale_replies\":{},\"late_dispatch\":{},",
                "\"retransmits\":{},\"drops\":{}}}"
            ),
            self.offered_rps,
            self.achieved_rps,
            self.goodput_bps,
            self.p50_ns,
            self.p90_ns,
            self.p99_ns,
            self.p999_ns,
            self.responses,
            self.timeouts,
            self.failures,
            self.stale_replies,
            self.late_dispatch,
            self.retransmits,
            self.drops,
        )
    }
}

impl SweepResult {
    /// Deterministic JSON: fixed key order, integers only. Two
    /// same-seed sweeps render byte-identical strings.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"seed\": {},\n  \"variant\": \"{}\",\n  \"clients\": {},\n  \"measure_ns\": {},\n  \"slo_p99_ns\": {},\n  \"transports\": [\n",
            self.seed, self.variant, self.clients, self.measure_ns, self.slo_p99_ns
        ));
        for (i, s) in self.sweeps.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"transport\": \"{}\", \"knee_rps\": {}, \"points\": [\n",
                s.transport.name(),
                s.knee_rps()
            ));
            for (j, p) in s.points.iter().enumerate() {
                let sep = if j + 1 < s.points.len() { "," } else { "" };
                out.push_str(&format!("      {}{}\n", p.to_json(), sep));
            }
            let sep = if i + 1 < self.sweeps.len() { "," } else { "" };
            out.push_str(&format!("    ]}}{}\n", sep));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A human-readable SLO table (latencies in microseconds).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| transport | offered rps | achieved rps | goodput Mbit/s | p50 µs | p90 µs | p99 µs | p99.9 µs | timeouts | retransmits | drops |\n");
        out.push_str("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n");
        for s in &self.sweeps {
            for (j, p) in s.points.iter().enumerate() {
                let knee = if Some(j) == s.knee { " ◄ knee" } else { "" };
                out.push_str(&format!(
                    "| {}{} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
                    s.transport.name(),
                    knee,
                    p.offered_rps,
                    p.achieved_rps,
                    p.goodput_bps / 1_000_000,
                    p.p50_ns / 1_000,
                    p.p90_ns / 1_000,
                    p.p99_ns / 1_000,
                    p.p999_ns / 1_000,
                    p.timeouts,
                    p.retransmits,
                    p.drops,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_light_datagram_point_serves_nearly_all_requests() {
        let cfg = SweepConfig {
            seed: 42,
            transports: vec![LoadTransport::Datagram],
            clients: 4,
            clients_per_cab: 4,
            endpoints_per_client: 1,
            offered_rps: vec![1_000],
            size: SizeDist::Fixed(64),
            measure: SimDuration::from_millis(20),
            timeout: SimDuration::from_millis(10),
            slo_p99: SimDuration::from_millis(5),
            oracle: false,
            base: Config::default(),
            variant: "baseline",
        };
        let p = run_point(&cfg, LoadTransport::Datagram, 1_000);
        assert!(p.responses > 0, "no responses at a trivial load: {p:?}");
        assert_eq!(p.failures, 0);
        assert!(p.p50_ns > 0);
        // nearly all requests must be served at 1k rps from 4 clients
        assert!(p.achieved_rps * 100 >= p.offered_rps * 80, "light load underserved: {p:?}");
    }

    #[test]
    fn sweep_json_is_stable_across_runs() {
        let cfg = SweepConfig {
            seed: 7,
            transports: vec![LoadTransport::Udp],
            clients: 3,
            clients_per_cab: 3,
            endpoints_per_client: 1,
            offered_rps: vec![500, 2_000],
            size: SizeDist::Fixed(32),
            measure: SimDuration::from_millis(10),
            timeout: SimDuration::from_millis(5),
            slo_p99: SimDuration::from_millis(5),
            oracle: false,
            base: Config::default(),
            variant: "baseline",
        };
        let a = run_sweep(&cfg).to_json();
        let b = run_sweep(&cfg).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"transport\": \"udp\""));
        assert!(a.contains("\"variant\": \"baseline\""));
    }

    #[test]
    fn fastpath_flips_exactly_the_transport_knobs() {
        let base = SweepConfig::quick(1);
        let fast = SweepConfig::quick(1).fastpath();
        assert_eq!(fast.variant, "fastpath");
        assert_eq!(fast.base.rmp.window, 8);
        assert!(fast.base.tcp.sack);
        assert_eq!(fast.base.tcp.wscale, Some(2));
        assert_eq!(fast.base.tcp.rto_min, SimDuration::from_millis(250));
        assert!(fast.base.doorbell_coalesce);
        assert_eq!(fast.base.mailbox_burst, 16);
        // the sweep shape itself is untouched: same steps, same SLO
        assert_eq!(fast.offered_rps, base.offered_rps);
        assert_eq!(fast.slo_p99, base.slo_p99);
        assert_eq!(fast.measure, base.measure);
    }

    #[test]
    fn variants_json_wraps_both_sweeps() {
        let mut cfg = SweepConfig::quick(3);
        cfg.transports = vec![LoadTransport::Udp];
        cfg.offered_rps = vec![500];
        cfg.measure = SimDuration::from_millis(10);
        cfg.oracle = false;
        let base = run_sweep(&cfg);
        let fast = run_sweep(&cfg.clone().fastpath());
        let json = variants_json(&[base, fast]);
        assert!(json.contains("\"variants\": ["));
        assert!(json.contains("\"variant\": \"baseline\""));
        assert!(json.contains("\"variant\": \"fastpath\""));
    }
}
