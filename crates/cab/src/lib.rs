//! The Nectar CAB (Communication Accelerator Board) and its runtime
//! system — the primary subject of the paper.
//!
//! §2.2 describes the hardware: a 16.5 MHz SPARC, split program/data
//! memory (1 MiB of data SRAM), DMA engines between fiber, memory and
//! VME, hardware CRC, and 1 KiB-page protection domains. §3 describes
//! the runtime system built on it: a preemptive priority-scheduled
//! threads package derived from Mach C Threads, mailboxes with
//! two-phase zero-copy operations and reader upcalls, lightweight
//! syncs, and the host–CAB signaling machinery (host condition
//! variables and the two signal queues). §4 layers TCP/IP and the
//! Nectar-specific transports on top.
//!
//! Module map:
//!
//! * [`costs`] — every timing constant (the calibration surface).
//! * [`memory`] — data memory image, first-fit heap, protection pages.
//! * [`shared`] — the VME-visible state: mailboxes, syncs, host
//!   conditions, signal queues.
//! * [`runtime`] — threads package, scheduler, interrupts, upcalls,
//!   the [`runtime::Cx`] execution context.
//! * [`proto`] — protocol engines wired into threads/upcalls/interrupt
//!   handlers.
//! * [`reqs`] — request-message formats for the service mailboxes.
//! * [`board`] — the [`board::Cab`] itself and its event interface.

pub mod board;
pub mod costs;
pub mod memory;
pub mod proto;
pub mod reqs;
pub mod runtime;
pub mod shared;

pub use board::{BoardStats, Cab, StepStatus};
pub use costs::{CostModel, LinkModel};
pub use runtime::{CabEffect, CabThread, Cx, Step, Upcall, PRIO_APP, PRIO_SYSTEM};
pub use shared::{CabShared, HostOpMode, MboxId, MsgRef, SigEntry, WouldBlock};
