//! The CAB board: ties memory, runtime, protocol state and the
//! datalink hardware together, and exposes the event-level interface
//! the world simulation drives.
//!
//! The execution contract (DESIGN.md "burst-atomic execution"):
//! [`Cab::step`] runs exactly one burst — one interrupt handler, one
//! upcall, or one thread step — charging simulated CPU time, and
//! reports when it next has work. The core crate schedules one event
//! per burst, so frames arriving between bursts experience exactly the
//! residual-burst interrupt latency the model promises.

use nectar_sim::{SimDuration, SimTime, Trace};
use nectar_wire::datalink::Frame;

use crate::costs::{CostModel, LinkModel};
use crate::proto::{init_protocols, rx_dispatch, ProtoState};
use crate::runtime::{
    CabEffect, CabThread, Cx, MutexTable, PendingIntr, Runtime, Step, ThreadId, Upcall, PRIO_APP,
    PRIO_SYSTEM,
};
use crate::shared::{CabShared, MboxId, SigEntry, UpcallId};
use crate::{proto, reqs};

/// Result of one [`Cab::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepStatus {
    /// A burst ran; the CPU is busy until `next` (call `step` again
    /// then).
    Ran { next: SimTime },
    /// Nothing to do; the next internally-scheduled work (timer or
    /// future interrupt) is at `next`, if any.
    Idle { next: Option<SimTime> },
}

/// Board-level counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoardStats {
    pub frames_rx: u64,
    pub frames_crc_dropped: u64,
    pub frames_fifo_dropped: u64,
    /// Frames whose datalink header named another CAB. The route
    /// prefix is outside the hardware CRC, so a corrupted route byte
    /// can steer an otherwise-valid frame to the wrong board; the
    /// datalink layer must refuse it rather than feed a stranger's
    /// fragment (and its ack) into the local protocol engines.
    pub frames_misrouted: u64,
    pub host_signals: u64,
    /// Wire bytes of frames accepted into the input FIFO.
    pub bytes_rx: u64,
    /// Wire bytes of frames rejected for lack of FIFO space.
    pub bytes_fifo_dropped: u64,
    /// High watermark of input FIFO occupancy, in bytes.
    pub rx_fifo_high: u64,
}

struct RxSlot {
    frame: Frame,
}

/// One Communication Accelerator Board.
pub struct Cab {
    pub id: u16,
    pub costs: CostModel,
    pub shared: CabShared,
    pub proto: ProtoState,
    pub net: crate::runtime::NetPort,
    pub rt: Runtime,
    pub mutexes: MutexTable,
    pub stats: BoardStats,
    /// Interrupt moderation ([`Config::doorbell_coalesce`] extends to
    /// the fiber side): while one network interrupt is serviced, every
    /// frame event already due is drained under the same entry instead
    /// of taking its own interrupt. Off by default — the legacy
    /// schedule takes (and pays for) every interrupt.
    pub rx_coalesce: bool,
    rx_slots: Vec<Option<RxSlot>>,
    rx_fifo_bytes: usize,
    /// Protocol threads that service shared-stack timers, in the order
    /// of [`Cab::stack_timers`]: RMP, request-response, TCP.
    timer_tids: [ThreadId; 3],
    /// The collective progress thread, forked lazily by
    /// [`Cab::enable_collective`] so boards that never join a group pay
    /// nothing (and the boot thread census stays unchanged).
    coll_tid: Option<ThreadId>,
}

impl Cab {
    /// Build a CAB with its runtime system and protocol threads, as the
    /// boot PROM did.
    pub fn new(
        id: u16,
        costs: CostModel,
        link: LinkModel,
        tcp_cfg: nectar_stack::tcp::TcpConfig,
        mtu: usize,
        seed: u64,
    ) -> Cab {
        let mut shared = CabShared::new();
        let proto = init_protocols(&mut shared, id, tcp_cfg, mtu, seed);
        let mut rt = Runtime::new();
        // system protocol threads (§4)
        rt.fork(&mut shared, Box::new(proto::DatagramSendThread), PRIO_SYSTEM);
        let rmp_tid = rt.fork(&mut shared, Box::new(proto::RmpThread), PRIO_SYSTEM);
        let rr_tid = rt.fork(&mut shared, Box::new(proto::RrThread), PRIO_SYSTEM);
        let tcp_tid = rt.fork(&mut shared, Box::new(proto::TcpThread), PRIO_SYSTEM);
        rt.fork(&mut shared, Box::new(proto::UdpThread), PRIO_SYSTEM);
        rt.fork(&mut shared, Box::new(proto::IpThread), PRIO_SYSTEM);
        // ICMP as a mailbox upcall (§4.1)
        let icmp_upcall = rt.register_upcall(Box::new(proto::IcmpUpcall));
        shared.set_upcall(reqs::MB_ICMP_IN, icmp_upcall);
        Cab {
            id,
            costs,
            shared,
            proto,
            net: crate::runtime::NetPort::new(link),
            rt,
            mutexes: MutexTable::default(),
            stats: BoardStats::default(),
            rx_coalesce: false,
            rx_slots: Vec::new(),
            rx_fifo_bytes: 0,
            timer_tids: [rmp_tid, rr_tid, tcp_tid],
            coll_tid: None,
        }
    }

    /// Fork the collective progress thread (idempotent). Receive-side
    /// combining runs at interrupt level; the thread only drives
    /// `Arrive` retransmission timers.
    pub fn enable_collective(&mut self) {
        if self.coll_tid.is_none() {
            self.coll_tid = Some(self.rt.fork(
                &mut self.shared,
                Box::new(proto::CollectiveThread),
                PRIO_SYSTEM,
            ));
        }
    }

    /// Install this board's slice of a collective group tree and make
    /// sure the progress thread is running.
    pub fn install_collective_group(
        &mut self,
        group: u16,
        parent: Option<u16>,
        children: Vec<u16>,
    ) {
        self.enable_collective();
        self.proto.coll.install_group(group, parent, children);
    }

    pub fn collective_enabled(&self) -> bool {
        self.coll_tid.is_some()
    }

    /// Fork an application thread (§5.3: "application-specific code can
    /// be executed on the CAB").
    pub fn fork_app(&mut self, t: Box<dyn CabThread>) -> ThreadId {
        self.rt.fork(&mut self.shared, t, PRIO_APP)
    }

    /// Fork a thread at system priority.
    pub fn fork_system(&mut self, t: Box<dyn CabThread>) -> ThreadId {
        self.rt.fork(&mut self.shared, t, PRIO_SYSTEM)
    }

    /// Register an upcall handler and attach it to a mailbox.
    pub fn attach_upcall(&mut self, mbox: MboxId, u: Box<dyn Upcall>) -> UpcallId {
        let id = self.rt.register_upcall(u);
        self.shared.set_upcall(mbox, id);
        id
    }

    /// Install the source route to a destination CAB.
    pub fn set_route(&mut self, dst_cab: u16, route: nectar_wire::route::Route) {
        self.net.routes.insert(dst_cab, route);
    }

    /// A frame's first byte reaches the input FIFO at `now`; the tail
    /// follows at line rate. Posts the start/end-of-packet interrupts.
    pub fn deliver_frame(&mut self, now: SimTime, frame: Frame) {
        let len = frame.wire_len();
        if self.rx_fifo_bytes + len > self.net.link.fifo_bytes {
            self.stats.frames_fifo_dropped += 1;
            self.stats.bytes_fifo_dropped += len as u64;
            return;
        }
        self.rx_fifo_bytes += len;
        self.stats.frames_rx += 1;
        self.stats.bytes_rx += len as u64;
        if self.rx_fifo_bytes as u64 > self.stats.rx_fifo_high {
            self.stats.rx_fifo_high = self.rx_fifo_bytes as u64;
        }
        let ser = SimDuration::serialization(len, self.net.link.fiber_bits_per_sec);
        let slot = self.park_frame(RxSlot { frame });
        self.rt.post_interrupt(now, PendingIntr::StartOfPacket(slot));
        self.rt.post_interrupt(now + ser, PendingIntr::EndOfPacket(slot));
    }

    fn park_frame(&mut self, s: RxSlot) -> u32 {
        for (i, slot) in self.rx_slots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(s);
                return i as u32;
            }
        }
        self.rx_slots.push(Some(s));
        (self.rx_slots.len() - 1) as u32
    }

    /// Discard every frame parked in the input FIFO, as a power-cycled
    /// board would: the DMA engine stops and buffered packets vanish.
    /// Returns `(frames, wire_bytes)` flushed. Pending end-of-packet
    /// interrupts for these slots become no-ops (the handler tolerates
    /// an empty slot).
    pub fn flush_rx_fifo(&mut self) -> (u64, u64) {
        let mut frames = 0u64;
        let mut bytes = 0u64;
        for slot in &mut self.rx_slots {
            if let Some(RxSlot { frame }) = slot.take() {
                frames += 1;
                bytes += frame.wire_len() as u64;
            }
        }
        self.rx_fifo_bytes = 0;
        (frames, bytes)
    }

    /// The host raised the CAB interrupt (CAB signal queue non-empty).
    pub fn host_interrupt(&mut self, now: SimTime) {
        self.rt.post_interrupt(now, PendingIntr::HostSignal);
    }

    /// Earliest pending deadline in each shared protocol stack, paired
    /// with the system thread that services it.
    ///
    /// The protocol threads cover their own timers through
    /// [`Step::BlockTimeout`], but CAB-resident senders (§5.3) drive
    /// the shared stacks directly from application threads — a
    /// retransmit deadline armed that way is invisible to the blocked
    /// protocol thread. If every in-flight packet is then lost, no
    /// acknowledgement ever signals the condition and the timer is
    /// orphaned. The board's timer interrupt closes the hole: expired
    /// stack deadlines wake the owning thread (and only that thread,
    /// so sibling waiters on the shared cond don't see spurious
    /// wakeups).
    fn stack_timers(&self) -> [(Option<SimTime>, ThreadId); 4] {
        let [rmp_tid, rr_tid, tcp_tid] = self.timer_tids;
        [
            (self.proto.rmp_tx.values().filter_map(|s| s.next_wakeup()).min(), rmp_tid),
            (self.proto.rr_clients.values().filter_map(|c| c.next_wakeup()).min(), rr_tid),
            (self.proto.tcp.next_wakeup(), tcp_tid),
            // collective arrivals are driven inline by app threads, so
            // their retransmit deadlines live here too
            (self.coll_tid.and(self.proto.coll.next_wakeup()), self.coll_tid.unwrap_or(0)),
        ]
    }

    /// Earliest instant this CAB has work, assuming no new input.
    pub fn next_work(&self, after: SimTime) -> Option<SimTime> {
        let after = after.max(self.rt.cursor);
        let mut next = self.rt.next_internal_work(after);
        for (deadline, _) in self.stack_timers() {
            if let Some(at) = deadline {
                let at = at.max(after);
                next = Some(next.map_or(at, |n| n.min(at)));
            }
        }
        next
    }

    /// Execute one burst at (or after) `now`.
    pub fn step(&mut self, now: SimTime, trace: &mut Trace) -> (Vec<CabEffect>, StepStatus) {
        let t = self.rt.cursor.max(now);
        self.rt.apply_timeouts(t);
        // timer interrupt: expired shared-stack deadlines wake the
        // protocol thread that services them (see `stack_timers`)
        for (deadline, tid) in self.stack_timers() {
            if deadline.is_some_and(|at| at <= t) {
                self.rt.wake_thread_if_blocked(tid);
            }
        }
        let mut fx = Vec::new();

        // 1. pending interrupts run first
        if let Some(intr) = self.rt.pop_due_interrupt(t) {
            let is_net =
                matches!(intr, PendingIntr::StartOfPacket(_) | PendingIntr::EndOfPacket(_));
            let mut charged = self.run_interrupt(t, intr, &mut fx, trace, true);
            if self.rx_coalesce && is_net {
                // interrupt moderation: frames that became due while
                // the CPU was busy are handled under this entry, paying
                // the per-interrupt overhead once for the whole batch.
                // The batch is budgeted (NAPI-style) by the same knob
                // that sizes mailbox bursts, so one entry can never
                // monopolize the CPU for milliseconds — past the budget
                // the remaining frames take their own interrupts.
                for _ in 1..self.proto.burst_limit.max(1) {
                    let Some(more) = self.rt.pop_due_net_interrupt(t) else { break };
                    charged += self.run_interrupt(t, more, &mut fx, trace, false);
                    self.rt.interrupts_coalesced += 1;
                }
            }
            self.rt.interrupts_taken += 1;
            self.rt.cpu_busy += charged;
            self.rt.cursor = t + charged;
            self.apply_notices(&mut fx);
            return (fx, StepStatus::Ran { next: self.rt.cursor });
        }

        // 2. mailbox reader upcalls
        if let Some((uid, mbox)) = self.rt.pop_upcall() {
            if let Some(mut h) = self.rt.take_upcall_handler(uid) {
                let mut cx = self.cx(t, None, &mut fx, trace);
                cx.charge(cx.costs.upcall_dispatch);
                h.on_message(&mut cx, mbox);
                let charged = cx.charged();
                self.rt.put_upcall_handler(uid, h);
                self.rt.upcalls_run += 1;
                self.rt.cpu_busy += charged;
                self.rt.cursor = t + charged;
                self.apply_notices(&mut fx);
                return (fx, StepStatus::Ran { next: self.rt.cursor });
            }
            // handler was in flight (recursive upcall): retry after a
            // minimal delay so the event loop always advances
            self.rt.queue_upcall(uid, mbox);
            self.rt.cursor = t + SimDuration::from_nanos(100);
            return (fx, StepStatus::Ran { next: self.rt.cursor });
        }

        // 3. threads
        if let Some(tid) = self.rt.pick_thread() {
            let switch = self.rt.needs_ctx_switch(tid);
            let mut body = self.rt.take_thread(tid);
            let mut cx = self.cx(t, Some(tid), &mut fx, trace);
            if switch {
                cx.charge(cx.costs.ctx_switch);
            }
            let step = body.run(&mut cx);
            let charged = cx.charged();
            // a zero-cost burst that stays runnable would spin the
            // event loop; charge a minimum scheduling quantum
            let charged = if charged == SimDuration::ZERO && step == Step::Yield {
                SimDuration::from_micros(1)
            } else {
                charged
            };
            self.rt.finish_thread_burst(tid, body, step, &mut self.shared);
            self.rt.cpu_busy += charged;
            self.rt.cursor = t + charged;
            self.apply_notices(&mut fx);
            return (fx, StepStatus::Ran { next: self.rt.cursor });
        }

        // 4. idle
        (fx, StepStatus::Idle { next: self.next_work(t) })
    }

    fn cx<'a>(
        &'a mut self,
        t: SimTime,
        cur_thread: Option<ThreadId>,
        fx: &'a mut Vec<CabEffect>,
        trace: &'a mut Trace,
    ) -> Cx<'a> {
        Cx {
            cab_id: self.id,
            cur_thread,
            t0: t,
            charged: SimDuration::ZERO,
            shared: &mut self.shared,
            proto: &mut self.proto,
            costs: &self.costs,
            net: &mut self.net,
            mutexes: &mut self.mutexes,
            fx,
            trace,
        }
    }

    /// Run one interrupt's handler. `entry` charges the interrupt
    /// entry/exit overhead; a frame event drained under another
    /// interrupt's entry (interrupt moderation) passes `false` and pays
    /// only its own processing cost.
    fn run_interrupt(
        &mut self,
        t: SimTime,
        intr: PendingIntr,
        fx: &mut Vec<CabEffect>,
        trace: &mut Trace,
        entry: bool,
    ) -> SimDuration {
        let entry_cost = if entry { self.costs.interrupt_overhead } else { SimDuration::ZERO };
        match intr {
            PendingIntr::StartOfPacket(slot) => {
                // §4.1: the datalink layer reads the header and starts
                // DMA while the rest of the packet streams in.
                let msg_id = self
                    .rx_slots
                    .get(slot as usize)
                    .and_then(|s| s.as_ref())
                    .and_then(|s| s.frame.parse_header().ok())
                    .map(|h| h.msg_id)
                    .unwrap_or(0);
                let mut cx = self.cx(t, None, fx, trace);
                cx.charge(entry_cost);
                cx.charge(cx.costs.datalink);
                cx.stamp("cab_rx_start", msg_id as u64);
                cx.charged()
            }
            PendingIntr::EndOfPacket(slot) => {
                let Some(RxSlot { frame }) =
                    self.rx_slots.get_mut(slot as usize).and_then(|s| s.take())
                else {
                    return SimDuration::ZERO;
                };
                self.rx_fifo_bytes -= frame.wire_len();
                let mut cx = self.cx(t, None, fx, trace);
                cx.charge(entry_cost);
                // hardware CRC: checked at end of packet, no CPU cost
                if frame.check_crc().is_err() {
                    let _ = cx;
                    self.stats.frames_crc_dropped += 1;
                    return entry_cost;
                }
                let Ok(hdr) = frame.parse_header() else {
                    let _ = cx;
                    self.stats.frames_crc_dropped += 1;
                    return entry_cost;
                };
                if hdr.dst_cab != cx.cab_id {
                    let _ = cx;
                    self.stats.frames_misrouted += 1;
                    return entry_cost;
                }
                let payload = frame.payload_buf().expect("header validated");
                cx.stamp("cab_rx_end", hdr.msg_id as u64);
                rx_dispatch(&mut cx, hdr.proto, hdr.src_cab, hdr.msg_id, payload);
                cx.charged()
            }
            PendingIntr::HostSignal => {
                self.stats.host_signals += 1;
                let depth = self.shared.cab_sigq.len() as u64;
                if depth > self.shared.cab_sigq_high {
                    self.shared.cab_sigq_high = depth;
                }
                let mut cx = self.cx(t, None, fx, trace);
                cx.charge(cx.costs.interrupt_overhead);
                while let Some(entry) = cx.shared.cab_sigq.pop_front() {
                    cx.charge(cx.costs.signal_dequeue);
                    match entry {
                        SigEntry::MailboxWritten(mb) => {
                            cx.charge(cx.costs.thread_wake);
                            let m = &cx.shared.mailboxes[mb as usize];
                            let cond = m.reader_cond;
                            let upcall = m.upcall;
                            cx.shared.notices.wake_conds.push(cond);
                            if let Some(u) = upcall {
                                cx.shared.notices.upcalls.push((u, mb));
                            }
                        }
                        SigEntry::CondSignal(c) => cx.shared.notices.wake_conds.push(c),
                        SigEntry::SyncWrite(s, v) => {
                            let t = cx.now();
                            cx.shared.sync_write_at(s, v, t);
                        }
                        SigEntry::SyncCancel(s) => cx.shared.sync_cancel(s),
                        SigEntry::RpcBeginPut { mbox, size, reply } => {
                            let r = match cx.shared.begin_put(mbox, size as usize) {
                                Ok(m) => cx.shared.handles.insert(m) + 1,
                                Err(_) => 0,
                            };
                            let t = cx.now();
                            cx.shared.sync_write_at(reply, r, t);
                        }
                        SigEntry::RpcEndPut { mbox, msg_index, reply } => {
                            if let Some(m) = cx.shared.handles.remove(msg_index) {
                                cx.shared.end_put(mbox, m);
                            }
                            let t = cx.now();
                            cx.shared.sync_write_at(reply, 1, t);
                        }
                        SigEntry::RpcBeginGet { mbox, reply } => {
                            let r = match cx.shared.begin_get(mbox) {
                                Ok(m) => cx.shared.handles.insert(m) + 1,
                                Err(_) => 0,
                            };
                            let t = cx.now();
                            cx.shared.sync_write_at(reply, r, t);
                        }
                        SigEntry::RpcEndGet { mbox, msg_index } => {
                            if let Some(m) = cx.shared.handles.remove(msg_index) {
                                cx.shared.end_get(mbox, m);
                            }
                        }
                        SigEntry::HostCondSignalled(_) | SigEntry::Request(..) => {}
                    }
                }
                cx.charged()
            }
        }
    }

    /// Apply deferred notices: thread wakeups, upcall queueing, host
    /// interrupt effects.
    fn apply_notices(&mut self, fx: &mut Vec<CabEffect>) {
        let notices = self.shared.notices.take();
        for c in notices.wake_conds {
            self.rt.wake_cond(c);
        }
        for (u, mb) in notices.upcalls {
            self.rt.queue_upcall(u, mb);
        }
        if notices.interrupt_host {
            fx.push(CabEffect::InterruptHost);
        }
    }
}

impl std::fmt::Debug for Cab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cab").field("id", &self.id).field("stats", &self.stats).finish()
    }
}

#[allow(unused_imports)]
use crate::shared::MsgRef;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Step;
    use crate::shared::{HostOpMode, WouldBlock};
    use nectar_stack::tcp::TcpConfig;
    use nectar_wire::route::Route;

    fn cab(id: u16) -> Cab {
        Cab::new(id, CostModel::default(), LinkModel::default(), TcpConfig::default(), 8192, 7)
    }

    /// Run the CAB until idle, collecting effects. Panics on runaway.
    fn run_to_idle(c: &mut Cab, start: SimTime, trace: &mut Trace) -> (Vec<CabEffect>, SimTime) {
        let mut fx = Vec::new();
        let mut now = start;
        for _ in 0..10_000 {
            let (mut f, status) = c.step(now, trace);
            fx.append(&mut f);
            match status {
                StepStatus::Ran { next } => now = next,
                StepStatus::Idle { next: Some(next) } if next <= now => {
                    now += SimDuration::from_nanos(1)
                }
                StepStatus::Idle { .. } => return (fx, now),
            }
        }
        panic!("cab never went idle");
    }

    #[test]
    fn boots_idle_after_thread_startup() {
        let mut c = cab(0);
        let mut trace = Trace::new();
        let (fx, _) = run_to_idle(&mut c, SimTime::ZERO, &mut trace);
        assert!(fx.is_empty());
        // all six protocol threads blocked on their mailboxes
        assert!(c.rt.ctx_switches >= 5);
    }

    #[test]
    fn datagram_send_request_transmits_frame() {
        let mut c = cab(0);
        c.set_route(1, Route::new(vec![3]));
        let mut trace = Trace::new();
        let (_, t0) = run_to_idle(&mut c, SimTime::ZERO, &mut trace);
        // a CAB-resident writer: push a send request directly
        let req = crate::reqs::SendReq { dst_cab: 1, dst_mbox: 20, src_mbox: 0 }.encode(b"ping");
        let msg = c.shared.begin_put(reqs::MB_DG_SEND, req.len()).unwrap();
        c.shared.msg_write(&msg, 0, &req);
        c.shared.end_put(reqs::MB_DG_SEND, msg);
        c.apply_notices(&mut Vec::new());
        let (fx, _) = run_to_idle(&mut c, t0, &mut trace);
        let frames: Vec<_> = fx
            .iter()
            .filter_map(|e| match e {
                CabEffect::Transmit { frame, .. } => Some(frame),
                _ => None,
            })
            .collect();
        assert_eq!(frames.len(), 1);
        let hdr = frames[0].parse_header().unwrap();
        assert_eq!(hdr.dst_cab, 1);
        assert_eq!(hdr.proto, nectar_wire::datalink::DatalinkProto::Datagram);
        assert_eq!(frames[0].next_hop().unwrap(), Some(3));
    }

    #[test]
    fn datagram_frame_delivery_end_to_end() {
        // CAB 0 sends to CAB 1; we hand-carry the frame.
        let mut a = cab(0);
        let mut b = cab(1);
        a.set_route(1, Route::new(vec![0]));
        let mut trace = Trace::new();
        let (_, ta) = run_to_idle(&mut a, SimTime::ZERO, &mut trace);
        let (_, tb) = run_to_idle(&mut b, SimTime::ZERO, &mut trace);
        // create a destination mailbox on B
        let dst = b.shared.create_mailbox(true, HostOpMode::SharedMemory);
        let req =
            crate::reqs::SendReq { dst_cab: 1, dst_mbox: dst, src_mbox: 0 }.encode(b"hello B");
        let msg = a.shared.begin_put(reqs::MB_DG_SEND, req.len()).unwrap();
        a.shared.msg_write(&msg, 0, &req);
        a.shared.end_put(reqs::MB_DG_SEND, msg);
        a.apply_notices(&mut Vec::new());
        let (fx, _) = run_to_idle(&mut a, ta, &mut trace);
        let mut frame = None;
        for e in fx {
            if let CabEffect::Transmit { frame: f, first_byte } = e {
                frame = Some((f, first_byte));
            }
        }
        let (mut f, t) = frame.expect("frame transmitted");
        // pretend the HUB consumed the hop
        f.advance_hop().unwrap();
        b.deliver_frame(t.max(tb), f);
        let (_, _) = run_to_idle(&mut b, t.max(tb), &mut trace);
        let got = b.shared.begin_get(dst).expect("message delivered");
        assert_eq!(b.shared.msg_bytes(&got), b"hello B");
        assert_eq!(b.stats.frames_rx, 1);
        assert_eq!(b.proto.stats.datagrams_in, 1);
    }

    #[test]
    fn corrupted_frame_dropped_by_crc() {
        let mut b = cab(1);
        let mut trace = Trace::new();
        let (_, t0) = run_to_idle(&mut b, SimTime::ZERO, &mut trace);
        let hdr = nectar_wire::datalink::DatalinkHeader {
            dst_cab: 1,
            src_cab: 0,
            proto: nectar_wire::datalink::DatalinkProto::Datagram,
            flags: 0,
            payload_len: 0,
            msg_id: 9,
        };
        let mut f = Frame::build(&Route::empty(), hdr, b"\x00\x14\x00\x00payload");
        f.corrupt_bit((f.wire_len() - 6) * 8 + 2);
        b.deliver_frame(t0, f);
        run_to_idle(&mut b, t0, &mut trace);
        assert_eq!(b.stats.frames_crc_dropped, 1);
        assert_eq!(b.proto.stats.datagrams_in, 0);
    }

    #[test]
    fn misrouted_frame_refused_by_datalink() {
        // valid CRC, but the header names CAB 2 — a corrupted route
        // byte steered it here. The datalink layer must not dispatch it.
        let mut b = cab(1);
        let mut trace = Trace::new();
        let (_, t0) = run_to_idle(&mut b, SimTime::ZERO, &mut trace);
        let hdr = nectar_wire::datalink::DatalinkHeader {
            dst_cab: 2,
            src_cab: 0,
            proto: nectar_wire::datalink::DatalinkProto::Datagram,
            flags: 0,
            payload_len: 0,
            msg_id: 9,
        };
        let f = Frame::build(&Route::empty(), hdr, b"\x00\x14\x00\x00payload");
        b.deliver_frame(t0, f);
        run_to_idle(&mut b, t0, &mut trace);
        assert_eq!(b.stats.frames_misrouted, 1);
        assert_eq!(b.stats.frames_crc_dropped, 0);
        assert_eq!(b.proto.stats.datagrams_in, 0);
    }

    #[test]
    fn flush_rx_fifo_discards_parked_frames() {
        let mut b = cab(1);
        let mut trace = Trace::new();
        let (_, t0) = run_to_idle(&mut b, SimTime::ZERO, &mut trace);
        let hdr = nectar_wire::datalink::DatalinkHeader {
            dst_cab: 1,
            src_cab: 0,
            proto: nectar_wire::datalink::DatalinkProto::Datagram,
            flags: 0,
            payload_len: 0,
            msg_id: 3,
        };
        let f = Frame::build(&Route::empty(), hdr, b"\x00\x14\x00\x00payload");
        let wire = f.wire_len() as u64;
        b.deliver_frame(t0, f);
        // flush before the end-of-packet interrupt fires: the frame is
        // counted as received (it entered the FIFO) but never dispatched
        let (frames, bytes) = b.flush_rx_fifo();
        assert_eq!((frames, bytes), (1, wire));
        run_to_idle(&mut b, t0, &mut trace);
        assert_eq!(b.stats.frames_rx, 1);
        assert_eq!(b.proto.stats.datagrams_in, 0);
        // a second flush finds nothing
        assert_eq!(b.flush_rx_fifo(), (0, 0));
    }

    #[test]
    fn host_signal_wakes_mailbox_reader() {
        let mut c = cab(0);
        c.set_route(1, Route::new(vec![1]));
        let mut trace = Trace::new();
        let (_, t0) = run_to_idle(&mut c, SimTime::ZERO, &mut trace);
        // host-style write: mutate shared state directly, then post the
        // signal-queue entry + interrupt, as the host driver does
        let req = crate::reqs::SendReq { dst_cab: 1, dst_mbox: 5, src_mbox: 0 }.encode(b"x");
        let msg = c.shared.begin_put(reqs::MB_DG_SEND, req.len()).unwrap();
        c.shared.msg_write(&msg, 0, &req);
        c.shared.end_put(reqs::MB_DG_SEND, msg);
        c.shared.notices.take(); // host-side: notices travel via sigq
        c.shared.cab_sigq.push_back(SigEntry::MailboxWritten(reqs::MB_DG_SEND));
        c.host_interrupt(t0);
        let (fx, _) = run_to_idle(&mut c, t0, &mut trace);
        assert!(fx.iter().any(|e| matches!(e, CabEffect::Transmit { .. })));
        assert_eq!(c.stats.host_signals, 1);
    }

    #[test]
    fn app_thread_runs_and_joins() {
        struct Counter {
            left: u32,
        }
        impl CabThread for Counter {
            fn run(&mut self, cx: &mut Cx<'_>) -> Step {
                cx.charge(SimDuration::from_micros(10));
                self.left -= 1;
                if self.left == 0 {
                    Step::Done
                } else {
                    Step::Yield
                }
            }
        }
        let mut c = cab(0);
        let tid = c.fork_app(Box::new(Counter { left: 5 }));
        let mut trace = Trace::new();
        run_to_idle(&mut c, SimTime::ZERO, &mut trace);
        assert!(c.rt.is_done(tid));
    }

    #[test]
    fn fifo_overflow_drops() {
        let mut c = cab(0);
        let mut trace = Trace::new();
        run_to_idle(&mut c, SimTime::ZERO, &mut trace);
        let hdr = nectar_wire::datalink::DatalinkHeader {
            dst_cab: 0,
            src_cab: 1,
            proto: nectar_wire::datalink::DatalinkProto::Raw,
            flags: 0,
            payload_len: 0,
            msg_id: 0,
        };
        let big = vec![0u8; 16_000];
        let t = SimTime::from_nanos(1);
        // three 16 KB frames exceed the 32 KiB FIFO before any drain
        c.deliver_frame(t, Frame::build(&Route::empty(), hdr, &big));
        c.deliver_frame(t, Frame::build(&Route::empty(), hdr, &big));
        c.deliver_frame(t, Frame::build(&Route::empty(), hdr, &big));
        assert_eq!(c.stats.frames_fifo_dropped, 1);
    }

    /// A back-to-back frame burst with RX coalescing folds the events
    /// that became due while the CPU was busy into fewer interrupt
    /// entries, each frame is still handled exactly once, and the
    /// saved entry/exit overhead shows up as less CPU time. A lone
    /// frame must be handled identically in both modes: its
    /// end-of-packet is never due at start-of-packet dispatch, so
    /// coalescing has nothing to fold and idle latency is unchanged.
    #[test]
    fn rx_coalescing_batches_bursts_and_leaves_lone_frames_alone() {
        fn run(coalesce: bool, frames: usize) -> (u64, u64, SimDuration) {
            let mut c = cab(0);
            c.rx_coalesce = coalesce;
            let mut trace = Trace::new();
            let (_, t0) = run_to_idle(&mut c, SimTime::ZERO, &mut trace);
            let hdr = nectar_wire::datalink::DatalinkHeader {
                dst_cab: 0,
                src_cab: 1,
                proto: nectar_wire::datalink::DatalinkProto::Raw,
                flags: 0,
                payload_len: 0,
                msg_id: 0,
            };
            let payload = vec![0u8; 512];
            for _ in 0..frames {
                c.deliver_frame(t0, Frame::build(&Route::empty(), hdr, &payload));
            }
            run_to_idle(&mut c, t0, &mut trace);
            (c.rt.interrupts_taken, c.rt.interrupts_coalesced, c.rt.cpu_busy)
        }
        let (base_taken, base_coal, base_busy) = run(false, 6);
        let (fast_taken, fast_coal, fast_busy) = run(true, 6);
        assert_eq!(base_coal, 0);
        assert!(fast_coal > 0, "a 6-frame burst must fold some events");
        assert_eq!(base_taken, fast_taken + fast_coal, "every frame event handled exactly once");
        assert!(fast_busy < base_busy, "folded entries must save interrupt overhead");

        let lone_base = run(false, 1);
        let lone_fast = run(true, 1);
        assert_eq!(lone_fast.1, 0, "a lone frame has nothing to coalesce");
        assert_eq!(lone_base, lone_fast);
    }

    #[test]
    fn rpc_mode_mailbox_ops_via_signal_queue() {
        let mut c = cab(0);
        let mut trace = Trace::new();
        let (_, t0) = run_to_idle(&mut c, SimTime::ZERO, &mut trace);
        let mb = c.shared.create_mailbox(false, HostOpMode::Rpc);
        let sync = c.shared.sync_alloc();
        c.shared.cab_sigq.push_back(SigEntry::RpcBeginPut { mbox: mb, size: 16, reply: sync });
        c.host_interrupt(t0);
        let (_, t1) = run_to_idle(&mut c, t0, &mut trace);
        let r = c.shared.sync_read(sync).expect("sync written");
        assert!(r > 0);
        let idx = r - 1;
        let m = c.shared.handles.get(idx).unwrap();
        c.shared.mem.dma_write(m.data, b"rpc mode payload");
        let done_sync = c.shared.sync_alloc();
        c.shared.cab_sigq.push_back(SigEntry::RpcEndPut {
            mbox: mb,
            msg_index: idx,
            reply: done_sync,
        });
        c.host_interrupt(t1);
        run_to_idle(&mut c, t1, &mut trace);
        let got = c.shared.begin_get(mb).unwrap();
        assert_eq!(c.shared.msg_bytes(&got), b"rpc mode payload");
    }

    #[test]
    fn begin_get_blocking_then_wake() {
        // A thread blocks on an empty mailbox and is woken when a
        // message arrives via interrupt-level delivery.
        struct Reader {
            mbox: MboxId,
            got: std::rc::Rc<std::cell::Cell<bool>>,
        }
        impl CabThread for Reader {
            fn run(&mut self, cx: &mut Cx<'_>) -> Step {
                match cx.begin_get(self.mbox) {
                    Ok(m) => {
                        self.got.set(true);
                        cx.end_get(self.mbox, m);
                        Step::Done
                    }
                    Err(WouldBlock::Empty(c)) => Step::Block(c),
                    Err(WouldBlock::NoSpace(c)) => Step::Block(c),
                }
            }
        }
        let mut c = cab(1);
        let mb = c.shared.create_mailbox(false, HostOpMode::SharedMemory);
        let got = std::rc::Rc::new(std::cell::Cell::new(false));
        c.fork_app(Box::new(Reader { mbox: mb, got: got.clone() }));
        let mut trace = Trace::new();
        let (_, t0) = run_to_idle(&mut c, SimTime::ZERO, &mut trace);
        assert!(!got.get());
        // datagram frame addressed to that mailbox
        let pkt =
            nectar_wire::nectar::DatagramHeader { dst_mbox: mb, src_mbox: 0 }.build(b"wake up");
        let hdr = nectar_wire::datalink::DatalinkHeader {
            dst_cab: 1,
            src_cab: 0,
            proto: nectar_wire::datalink::DatalinkProto::Datagram,
            flags: 0,
            payload_len: 0,
            msg_id: 77,
        };
        c.deliver_frame(t0, Frame::build(&Route::empty(), hdr, &pkt));
        run_to_idle(&mut c, t0, &mut trace);
        assert!(got.get());
    }
}
