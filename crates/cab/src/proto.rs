//! Protocol state and server threads on the CAB.
//!
//! §4 of the paper: "Time-critical functions are performed by
//! interrupt handlers and mailbox upcalls, most others by system
//! threads. Mailboxes are used throughout for the management of data
//! areas." Concretely:
//!
//! * IP input processing runs at interrupt time (§4.1) — or, as the
//!   experiment §3.1 proposes (ablation A1), in a high-priority
//!   thread when [`ProtoState::ip_in_thread`] is set.
//! * ICMP is a mailbox upcall on the ICMP input mailbox.
//! * TCP and UDP each run in system threads, blocked on their input
//!   and send-request mailboxes.
//! * The Nectar-specific protocols: datagram send requests are served
//!   by a thread (Figure 6's "CAB thread must be scheduled" stage);
//!   datagram/RMP/request-response *receive* processing runs at
//!   interrupt time, which is what makes the datagram row of Table 1
//!   the fastest path in the system.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

use nectar_stack::collective::{CollectiveAction, CollectiveConfig, CollectiveEngine};
use nectar_stack::icmp::{IcmpEngine, IcmpInput};
use nectar_stack::ip::{IpEndpoint, IpInput};
use nectar_stack::reqresp::{RrClient, RrClientAction, RrConfig, RrServer, RrServerAction};
use nectar_stack::rmp::{RmpConfig, RmpReceiver, RmpRecvAction, RmpSendAction, RmpSender};
use nectar_stack::tcp::{SocketId, TcpConfig, TcpEvent, TcpStack, TcpStackEvent};
use nectar_stack::udp::{UdpEndpoint, UdpInput};
use nectar_wire::collective::CombineOp;
use nectar_wire::datalink::DatalinkProto;
use nectar_wire::framebuf::FrameBuf;
use nectar_wire::icmp::UnreachableCode;
use nectar_wire::ipv4::{IpProtocol, Ipv4Header};
use nectar_wire::nectar::{DatagramHeader, ReqRespHeader, ReqRespKind, RmpHeader, RmpKind};

use crate::reqs::{self, RrReplyReq, SendReq, TcpCtl, UdpSendReq};
use crate::runtime::{CabThread, Cx, Step, Upcall};
use crate::shared::{CondId, HostOpMode, MboxId, WouldBlock};

/// Map a CAB node id to its IP address (10.0.x.y, starting at
/// 10.0.0.1 for CAB 0).
pub fn ip_for_cab(cab: u16) -> Ipv4Addr {
    let v = cab as u32 + 1;
    Ipv4Addr::new(10, 0, (v >> 8) as u8, v as u8)
}

/// Inverse of [`ip_for_cab`].
pub fn cab_for_ip(ip: Ipv4Addr) -> Option<u16> {
    let o = ip.octets();
    if o[0] != 10 || o[1] != 0 {
        return None;
    }
    let v = ((o[2] as u32) << 8) | o[3] as u32;
    if v == 0 {
        return None;
    }
    Some((v - 1) as u16)
}

/// Per-connection TCP bookkeeping on the CAB side.
#[derive(Debug, Default)]
pub struct TcpConn {
    /// Where in-order received data is delivered.
    pub recv_mbox: Option<MboxId>,
    /// Sync to complete when an active open finishes (socket id + 1,
    /// or 0 on failure).
    pub reply_sync: Option<u16>,
    /// Data accepted from send requests but not yet admitted into the
    /// socket's send buffer (window/buffer full).
    pub pending: VecDeque<Vec<u8>>,
    /// Listening port this connection arrived on (passive opens).
    pub port: Option<u16>,
    pub established: bool,
    /// EOF marker delivered.
    pub eof_sent: bool,
    /// Close requested while send data was still queued; the FIN goes
    /// out once `pending` drains.
    pub close_requested: bool,
}

/// Counters for the protocol layer.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProtoStats {
    pub frames_in: u64,
    pub crc_drops: u64,
    pub no_mbox_drops: u64,
    pub no_space_drops: u64,
    pub datagrams_in: u64,
    pub datagrams_out: u64,
    pub rmp_msgs_in: u64,
    pub rr_requests_in: u64,
    pub bad_requests: u64,
    pub ip_packets_in: u64,
}

/// All protocol engines and bindings on one CAB.
pub struct ProtoState {
    pub ip: IpEndpoint,
    pub icmp: IcmpEngine,
    pub udp: UdpEndpoint,
    pub tcp: TcpStack,
    pub rmp_rx: RmpReceiver,
    pub rmp_tx: HashMap<(u16, u16, u16), RmpSender>,
    pub rmp_cfg: RmpConfig,
    pub rr_clients: HashMap<u16, RrClient>,
    pub rr_servers: HashMap<u16, RrServer>,
    pub rr_cfg: RrConfig,
    pub tcp_conns: HashMap<SocketId, TcpConn>,
    /// Listening port → accept-notification mailbox.
    pub tcp_accepts: HashMap<u16, MboxId>,
    /// Ping replies (ICMP echo) are delivered here when set.
    pub ping_mbox: Option<MboxId>,
    /// In-network collectives: multicast fan-out, tree barrier,
    /// reduction combining (DESIGN.md §16).
    pub coll: CollectiveEngine,
    /// Collective notifications ([`reqs::CollNote`]) land here when the
    /// application registers a mailbox.
    pub coll_mbox: Option<MboxId>,
    /// Ablation A1: process IP input in a thread instead of at
    /// interrupt level.
    pub ip_in_thread: bool,
    /// Datalink payload limit for IP packets.
    pub mtu: usize,
    /// How many mailbox entries a server thread dequeues per burst
    /// before yielding. The legacy value [`BURST_LIMIT`] keeps bursts
    /// short for interrupt latency; the batched host-I/O fast path
    /// raises it to amortize context switches under load.
    pub burst_limit: usize,
    pub stats: ProtoStats,
    /// Shared reader conditions for the server threads.
    pub tcp_cond: CondId,
    pub udp_cond: CondId,
    pub rmp_cond: CondId,
    pub rr_cond: CondId,
    pub dg_cond: CondId,
    pub ip_cond: CondId,
    pub coll_cond: CondId,
}

impl ProtoState {
    /// The IP address of the CAB this state belongs to.
    pub fn addr(&self) -> Ipv4Addr {
        self.ip.addr()
    }
}

/// Build the protocol state and well-known mailboxes for CAB `id`.
/// Must run before any user mailboxes are created so the ids in
/// [`crate::reqs`] hold.
pub fn init_protocols(
    shared: &mut crate::shared::CabShared,
    id: u16,
    tcp_cfg: TcpConfig,
    mtu: usize,
    seed: u64,
) -> ProtoState {
    let addr = ip_for_cab(id);
    let tcp_cond = shared.alloc_cond();
    let udp_cond = shared.alloc_cond();
    let rmp_cond = shared.alloc_cond();
    let rr_cond = shared.alloc_cond();
    let dg_cond = shared.alloc_cond();
    let ip_cond = shared.alloc_cond();
    // host-writable request mailboxes, in the fixed well-known order
    let ids = [
        shared.create_mailbox_on(false, HostOpMode::SharedMemory, dg_cond), // MB_DG_SEND
        shared.create_mailbox_on(false, HostOpMode::SharedMemory, rmp_cond), // MB_RMP_SEND
        shared.create_mailbox_on(false, HostOpMode::SharedMemory, rr_cond), // MB_RR_SEND
        shared.create_mailbox_on(false, HostOpMode::SharedMemory, rr_cond), // MB_RR_REPLY
        shared.create_mailbox_on(false, HostOpMode::SharedMemory, tcp_cond), // MB_TCP_CTL
        shared.create_mailbox_on(false, HostOpMode::SharedMemory, tcp_cond), // MB_TCP_SEND
        shared.create_mailbox_on(false, HostOpMode::SharedMemory, udp_cond), // MB_UDP_CTL
        shared.create_mailbox_on(false, HostOpMode::SharedMemory, udp_cond), // MB_UDP_SEND
        shared.create_mailbox_on(false, HostOpMode::SharedMemory, ip_cond), // MB_IP_IN
        shared.create_mailbox_on(false, HostOpMode::SharedMemory, tcp_cond), // MB_TCP_IN
        shared.create_mailbox_on(false, HostOpMode::SharedMemory, udp_cond), // MB_UDP_IN
        shared.create_mailbox(false, HostOpMode::SharedMemory),             // MB_ICMP_IN
        shared.create_mailbox(true, HostOpMode::SharedMemory),              // MB_RAW_IN
        shared.create_mailbox_on(false, HostOpMode::SharedMemory, ip_cond), // MB_RAW_SEND
    ];
    assert_eq!(ids[0], reqs::MB_DG_SEND);
    assert_eq!(ids[13], reqs::MB_RAW_SEND);
    // allocated after the well-known mailboxes so their ids stay pinned
    let coll_cond = shared.alloc_cond();
    ProtoState {
        ip: IpEndpoint::new(addr),
        icmp: IcmpEngine::new(),
        udp: UdpEndpoint::new(),
        tcp: TcpStack::new(addr, tcp_cfg, seed ^ 0x7cb0),
        rmp_rx: RmpReceiver::new(),
        rmp_tx: HashMap::new(),
        rmp_cfg: RmpConfig { max_fragment: mtu, ..Default::default() },
        rr_clients: HashMap::new(),
        rr_servers: HashMap::new(),
        rr_cfg: RrConfig::default(),
        tcp_conns: HashMap::new(),
        tcp_accepts: HashMap::new(),
        ping_mbox: None,
        coll: CollectiveEngine::new(CollectiveConfig::default()),
        coll_mbox: None,
        ip_in_thread: false,
        mtu,
        burst_limit: BURST_LIMIT,
        stats: ProtoStats::default(),
        tcp_cond,
        udp_cond,
        rmp_cond,
        rr_cond,
        dg_cond,
        ip_cond,
        coll_cond,
    }
}

// ----------------------------------------------------------------------
// helpers shared by threads and interrupt handlers
// ----------------------------------------------------------------------

/// Deliver `prefix + payload` as one message into `mbox`. Drops (with
/// a counter) when the mailbox does not exist or the heap is full —
/// the unreliable-layer semantics of the datagram path.
pub fn deliver_to_mbox(cx: &mut Cx<'_>, mbox: MboxId, prefix: &[u8], payload: &[u8]) -> bool {
    if mbox as usize >= cx.shared.mailboxes.len() {
        cx.proto.stats.no_mbox_drops += 1;
        return false;
    }
    match cx.begin_put(mbox, prefix.len() + payload.len()) {
        Ok(m) => {
            // payload movement is DMA / pointer work, not a CPU copy
            if !prefix.is_empty() {
                cx.shared.msg_write(&m, 0, prefix);
            }
            if !payload.is_empty() {
                cx.shared.msg_write(&m, prefix.len(), payload);
            }
            cx.end_put(mbox, m);
            true
        }
        Err(_) => {
            cx.proto.stats.no_space_drops += 1;
            false
        }
    }
}

/// IP_Output (§4.1): wrap a transport payload and hand the resulting
/// packets to the datalink layer.
pub fn ip_output(cx: &mut Cx<'_>, dst: Ipv4Addr, protocol: IpProtocol, payload: &[u8]) {
    cx.charge(cx.costs.ip_proc);
    cx.charge(cx.costs.ip_header_checksum);
    let mtu = cx.proto.mtu;
    let packets = cx.proto.ip.output(dst, protocol, payload, mtu);
    let Some(dst_cab) = cab_for_ip(dst) else {
        cx.proto.stats.no_mbox_drops += 1;
        return;
    };
    for p in packets {
        if dst_cab == cx.cab_id {
            // loopback: straight back into input processing
            process_ip_input(cx, &p);
        } else {
            cx.datalink_send(dst_cab, DatalinkProto::Ip, 0, &p);
        }
    }
}

/// IP input processing (§4.1). Runs at interrupt level by default, or
/// from the IP thread in ablation A1. Demultiplexes complete datagrams
/// to the higher protocols' input mailboxes with Enqueue semantics.
pub fn process_ip_input(cx: &mut Cx<'_>, packet: &[u8]) {
    cx.charge(cx.costs.ip_proc);
    cx.charge(cx.costs.ip_header_checksum);
    cx.proto.stats.ip_packets_in += 1;
    let now = cx.now();
    match cx.proto.ip.input(now, packet) {
        IpInput::Delivered { header, payload } => match header.protocol {
            IpProtocol::ICMP => {
                let src = header.src.octets();
                if !deliver_to_mbox(cx, reqs::MB_ICMP_IN, &src, &payload) {
                    // dropped; counted
                }
            }
            IpProtocol::TCP => {
                let full = header.build_packet(&payload);
                deliver_to_mbox(cx, reqs::MB_TCP_IN, &[], &full);
            }
            IpProtocol::UDP => {
                let full = header.build_packet(&payload);
                deliver_to_mbox(cx, reqs::MB_UDP_IN, &[], &full);
            }
            other => {
                let _ = other;
                let full = header.build_packet(&payload);
                let msg = cx.proto.icmp.unreachable_for(&full, UnreachableCode::Protocol);
                ip_output(cx, header.src, IpProtocol::ICMP, &msg.build());
            }
        },
        IpInput::FragmentHeld => {}
        IpInput::NotForUs | IpInput::Bad(_) => {
            cx.proto.stats.no_mbox_drops += 1;
        }
    }
    // reassembly expiry is progress-driven: check on every input
    let expired = cx.proto.ip.poll_expired(now);
    for e in expired {
        if let Some(quote) = e.original {
            let msg = cx.proto.icmp.time_exceeded_for(quote);
            ip_output(cx, e.src, IpProtocol::ICMP, &msg.build());
        }
    }
}

/// Submit an RMP message on the (dst_cab, dst_mbox, src_mbox) channel
/// and push out whatever the stop-and-wait window allows.
pub fn rmp_submit(cx: &mut Cx<'_>, req: SendReq, payload: &[u8]) {
    if req.dst_cab == cx.cab_id {
        deliver_to_mbox(cx, req.dst_mbox, &[], payload);
        return;
    }
    let key = (req.dst_cab, req.dst_mbox, req.src_mbox);
    let cfg = cx.proto.rmp_cfg;
    let sender = cx
        .proto
        .rmp_tx
        .entry(key)
        .or_insert_with(|| RmpSender::new(req.dst_cab, req.dst_mbox, req.src_mbox, cfg));
    sender.send(payload.to_vec());
    let now = cx.now();
    let mut acts = Vec::new();
    cx.proto.rmp_tx.get_mut(&key).expect("just inserted").poll(now, &mut acts);
    run_rmp_send_actions(cx, acts);
}

pub fn run_rmp_send_actions(cx: &mut Cx<'_>, acts: Vec<RmpSendAction>) {
    for act in acts {
        match act {
            RmpSendAction::Transmit { dst_cab, packet } => {
                cx.charge(cx.costs.rmp_proc);
                cx.datalink_send(dst_cab, DatalinkProto::Rmp, 0, &packet);
            }
            RmpSendAction::Delivered { .. } | RmpSendAction::Failed { .. } => {
                // wake application threads flow-controlled on RMP
                // progress (and the RMP server thread)
                let c = cx.proto.rmp_cond;
                cx.shared.notices.wake_conds.push(c);
            }
        }
    }
}

/// Issue a request-response call from this CAB. Returns the request id,
/// or 0 when the call was rejected (the reply mailbox is bound to a
/// different server with calls still outstanding).
pub fn rr_call(cx: &mut Cx<'_>, req: SendReq, payload: &[u8]) -> u32 {
    let cfg = cx.proto.rr_cfg;
    let now = cx.now();
    // A reply mailbox binds to exactly one (cab, service mailbox):
    // replies carry only (reply_mbox, req_id), so calls to two servers
    // through one mailbox would collide on req_id. Rebind an idle
    // client; refuse while calls are outstanding — silently reusing the
    // old binding would send the request to the *previous* server.
    if let Some(existing) = cx.proto.rr_clients.get(&req.src_mbox) {
        if existing.server() != (req.dst_cab, req.dst_mbox) {
            if existing.outstanding() > 0 {
                cx.proto.stats.bad_requests += 1;
                return 0;
            }
            cx.proto.rr_clients.remove(&req.src_mbox);
        }
    }
    let client = cx
        .proto
        .rr_clients
        .entry(req.src_mbox)
        .or_insert_with(|| RrClient::new(req.dst_cab, req.dst_mbox, req.src_mbox, cfg));
    let mut acts = Vec::new();
    let id = client.call(now, payload.to_vec(), &mut acts);
    run_rr_client_actions(cx, req.src_mbox, acts);
    id
}

/// Apply client actions for the client bound to `reply_mbox`.
fn run_rr_client_actions(cx: &mut Cx<'_>, reply_mbox: u16, acts: Vec<RrClientAction>) {
    for act in acts {
        match act {
            RrClientAction::Transmit { dst_cab, packet } => {
                cx.charge(cx.costs.reqresp_proc);
                cx.datalink_send(dst_cab, DatalinkProto::ReqResp, 0, &packet);
            }
            RrClientAction::Response { req_id, payload } => {
                // responses are normally delivered by the interrupt
                // handler straight into the reply mailbox; this arm is
                // reached for loopback calls, which must land in the
                // *calling* client's mailbox — not an arbitrary one
                let prefix = req_id.to_be_bytes();
                deliver_to_mbox(cx, reply_mbox, &prefix, &payload);
            }
            RrClientAction::Failed { req_id } => {
                let _ = req_id;
                cx.proto.stats.bad_requests += 1;
            }
        }
    }
}

// ----------------------------------------------------------------------
// interrupt-level receive processing (end-of-packet)
// ----------------------------------------------------------------------

/// End-of-data processing for a received frame, per protocol. The
/// datalink header has been parsed and the CRC verified by the board.
/// `payload` is a zero-copy view into the received frame's storage;
/// protocol headers are parsed in place and only mailbox DMA (the
/// modeled hardware copy) materializes bytes.
pub fn rx_dispatch(
    cx: &mut Cx<'_>,
    proto: DatalinkProto,
    src_cab: u16,
    msg_id: u32,
    payload: FrameBuf,
) {
    // Collective frames keep the zero-copy [`FrameBuf`]: interior CABs
    // replicate the received storage onward, so the dispatch happens
    // before the byte-slice view below is taken.
    if proto == DatalinkProto::Collective {
        cx.charge(cx.costs.datagram_proc);
        let now = cx.now();
        let mut acts = Vec::new();
        if cx.proto.coll.on_packet(now, src_cab, &payload, &mut acts).is_err() {
            cx.proto.stats.bad_requests += 1;
            return;
        }
        cx.stamp("cab_rx_collective", msg_id as u64);
        run_collective_actions(cx, msg_id, acts);
        return;
    }
    let payload: &[u8] = &payload;
    match proto {
        DatalinkProto::Raw => {
            // network-device mode: queue the raw frame for the host
            deliver_to_mbox(cx, reqs::MB_RAW_IN, &src_cab.to_be_bytes(), payload);
        }
        DatalinkProto::Datagram => {
            cx.charge(cx.costs.datagram_proc);
            let Ok((hdr, body)) = DatagramHeader::parse(payload) else {
                cx.proto.stats.bad_requests += 1;
                return;
            };
            cx.proto.stats.datagrams_in += 1;
            cx.stamp("cab_rx_datagram", msg_id as u64);
            deliver_to_mbox(cx, hdr.dst_mbox, &[], body);
        }
        DatalinkProto::Rmp => {
            cx.charge(cx.costs.rmp_proc);
            let Ok((hdr, body)) = RmpHeader::parse(payload) else {
                cx.proto.stats.bad_requests += 1;
                return;
            };
            match hdr.kind {
                RmpKind::Data => {
                    let now = cx.now();
                    let _ = now;
                    let mut acts = Vec::new();
                    cx.proto.rmp_rx.on_data(src_cab, &hdr, body, &mut acts);
                    for act in acts {
                        match act {
                            RmpRecvAction::Ack { dst_cab, packet } => {
                                cx.datalink_send(dst_cab, DatalinkProto::Rmp, msg_id, &packet);
                            }
                            RmpRecvAction::Deliver { dst_mbox, message, .. } => {
                                cx.proto.stats.rmp_msgs_in += 1;
                                deliver_to_mbox(cx, dst_mbox, &[], &message);
                            }
                        }
                    }
                }
                RmpKind::Ack => {
                    let key = (src_cab, hdr.src_mbox, hdr.dst_mbox);
                    let now = cx.now();
                    let mut acts = Vec::new();
                    if let Some(sender) = cx.proto.rmp_tx.get_mut(&key) {
                        sender.on_ack(now, &hdr, &mut acts);
                    }
                    run_rmp_send_actions(cx, acts);
                }
            }
        }
        DatalinkProto::ReqResp => {
            cx.charge(cx.costs.reqresp_proc);
            let Ok((hdr, body)) = ReqRespHeader::parse(payload) else {
                cx.proto.stats.bad_requests += 1;
                return;
            };
            match hdr.kind {
                ReqRespKind::Request => {
                    let server = cx.proto.rr_servers.entry(hdr.dst_mbox).or_default();
                    let mut acts = Vec::new();
                    server.on_request(src_cab, &hdr, body, &mut acts);
                    cx.proto.stats.rr_requests_in += 1;
                    for act in acts {
                        match act {
                            RrServerAction::Execute { client_cab, reply_mbox, req_id, payload } => {
                                let msg = reqs::rr_deliver_encode(
                                    client_cab, reply_mbox, req_id, &payload,
                                );
                                deliver_to_mbox(cx, hdr.dst_mbox, &[], &msg);
                            }
                            RrServerAction::Transmit { dst_cab, packet } => {
                                cx.datalink_send(dst_cab, DatalinkProto::ReqResp, msg_id, &packet);
                            }
                        }
                    }
                }
                ReqRespKind::Reply => {
                    // hdr.dst_mbox is the client's reply mailbox
                    let now = cx.now();
                    let mut acts = Vec::new();
                    if let Some(client) = cx.proto.rr_clients.get_mut(&hdr.dst_mbox) {
                        client.on_reply(now, &hdr, body, &mut acts);
                    }
                    for act in acts {
                        match act {
                            RrClientAction::Transmit { dst_cab, packet } => {
                                cx.datalink_send(dst_cab, DatalinkProto::ReqResp, msg_id, &packet);
                            }
                            RrClientAction::Response { req_id, payload } => {
                                let prefix = req_id.to_be_bytes();
                                deliver_to_mbox(cx, hdr.dst_mbox, &prefix, &payload);
                            }
                            RrClientAction::Failed { .. } => {}
                        }
                    }
                }
                ReqRespKind::ReplyAck => {
                    if let Some(server) = cx.proto.rr_servers.get_mut(&hdr.dst_mbox) {
                        server.on_reply_ack(src_cab, &hdr);
                    }
                }
            }
        }
        DatalinkProto::Ip => {
            if cx.proto.ip_in_thread {
                deliver_to_mbox(cx, reqs::MB_IP_IN, &[], payload);
            } else {
                process_ip_input(cx, payload);
            }
        }
        DatalinkProto::Collective => unreachable!("dispatched on the zero-copy path above"),
    }
}

/// Apply collective engine effects: upstream `Arrive`s go out as fresh
/// frames, downstream replication rides the zero-copy datalink path,
/// and application-facing events become [`reqs::CollNote`]s in the
/// registered collective mailbox.
pub fn run_collective_actions(cx: &mut Cx<'_>, msg_id: u32, acts: Vec<CollectiveAction>) {
    for act in acts {
        match act {
            CollectiveAction::Transmit { dst_cab, packet } => {
                cx.datalink_send(dst_cab, DatalinkProto::Collective, msg_id, &packet);
            }
            CollectiveAction::Replicate { dst_cab, packet } => {
                cx.datalink_send_shared(dst_cab, DatalinkProto::Collective, msg_id, &packet);
            }
            CollectiveAction::Deliver { group, payload } => {
                if let Some(mb) = cx.proto.coll_mbox {
                    // prefix matches reqs::CollNote::Deliver's encoding;
                    // the payload moves by mailbox DMA, not a CPU copy
                    let mut prefix = vec![1u8, 0];
                    prefix.extend_from_slice(&group.to_be_bytes());
                    deliver_to_mbox(cx, mb, &prefix, &payload);
                }
            }
            CollectiveAction::Completed { group, epoch, value } => {
                if let Some(mb) = cx.proto.coll_mbox {
                    let note = reqs::CollNote::Completed { group, epoch, value }.encode();
                    deliver_to_mbox(cx, mb, &[], &note);
                }
            }
            CollectiveAction::Failed { group, epoch } => {
                if let Some(mb) = cx.proto.coll_mbox {
                    let note = reqs::CollNote::Failed { group, epoch }.encode();
                    deliver_to_mbox(cx, mb, &[], &note);
                }
            }
        }
    }
}

/// The local application reached the barrier / contributed `value` to
/// the current epoch's reduction. Drives the engine inline from the
/// calling thread; the retransmit deadline it may arm is picked up by
/// the board's stack-timer scan.
pub fn coll_arrive(cx: &mut Cx<'_>, group: u16, op: CombineOp, value: u64) -> bool {
    cx.charge(cx.costs.datagram_proc);
    let now = cx.now();
    let mut acts = Vec::new();
    let ok = cx.proto.coll.arrive(now, group, op, value, &mut acts);
    run_collective_actions(cx, 0, acts);
    ok
}

/// Fan `payload` out to the group's subtree below this CAB (the group
/// root for a source-rooted tree). Returns false for unknown groups.
pub fn coll_multicast(cx: &mut Cx<'_>, group: u16, payload: &[u8]) -> bool {
    cx.charge(cx.costs.datagram_proc);
    let mut acts = Vec::new();
    let ok = cx.proto.coll.multicast(group, payload, &mut acts);
    run_collective_actions(cx, 0, acts);
    ok
}

// ----------------------------------------------------------------------
// server threads
// ----------------------------------------------------------------------

/// How many requests a server thread drains per burst before yielding
/// (keeps bursts short so interrupt latency stays bounded).
const BURST_LIMIT: usize = 4;

/// The datagram send-request server (§6.1: "the CAB must be
/// interrupted and a CAB thread must be scheduled to handle the
/// message").
pub struct DatagramSendThread;

impl CabThread for DatagramSendThread {
    fn name(&self) -> &'static str {
        "datagram-send"
    }

    fn run(&mut self, cx: &mut Cx<'_>) -> Step {
        for _ in 0..cx.proto.burst_limit {
            // select-before-read: emptiness is a free queue-count
            // check, not a charged failed Begin_Get
            if !cx.mbox_pending(reqs::MB_DG_SEND) {
                return Step::Block(cx.mbox_cond(reqs::MB_DG_SEND));
            }
            match cx.begin_get(reqs::MB_DG_SEND) {
                Err(WouldBlock::Empty(c)) => return Step::Block(c),
                Err(WouldBlock::NoSpace(c)) => return Step::Block(c),
                Ok(msg) => {
                    let bytes = cx.shared.msg_bytes(&msg).to_vec();
                    cx.charge(cx.costs.datagram_proc);
                    if let Some((req, payload)) = SendReq::decode(&bytes) {
                        cx.proto.stats.datagrams_out += 1;
                        cx.stamp("cab_dg_send", msg.msg_id as u64);
                        if req.dst_cab == cx.cab_id {
                            deliver_to_mbox(cx, req.dst_mbox, &[], payload);
                        } else {
                            let pkt =
                                DatagramHeader { dst_mbox: req.dst_mbox, src_mbox: req.src_mbox }
                                    .build(payload);
                            cx.datalink_send(
                                req.dst_cab,
                                DatalinkProto::Datagram,
                                msg.msg_id,
                                &pkt,
                            );
                        }
                    } else {
                        cx.proto.stats.bad_requests += 1;
                    }
                    cx.end_get(reqs::MB_DG_SEND, msg);
                }
            }
        }
        Step::Yield
    }
}

/// The RMP server thread: accepts send requests and drives
/// retransmission timers. Ack-driven progress happens at interrupt
/// level; this thread only supplies new work and recovers losses.
pub struct RmpThread;

impl CabThread for RmpThread {
    fn name(&self) -> &'static str {
        "rmp"
    }

    fn run(&mut self, cx: &mut Cx<'_>) -> Step {
        for _ in 0..cx.proto.burst_limit {
            if !cx.mbox_pending(reqs::MB_RMP_SEND) {
                break;
            }
            match cx.begin_get(reqs::MB_RMP_SEND) {
                Err(_) => break,
                Ok(msg) => {
                    let bytes = cx.shared.msg_bytes(&msg).to_vec();
                    if let Some((req, payload)) = SendReq::decode(&bytes) {
                        cx.stamp("cab_rmp_send", msg.msg_id as u64);
                        rmp_submit(cx, req, payload);
                    } else {
                        cx.proto.stats.bad_requests += 1;
                    }
                    cx.end_get(reqs::MB_RMP_SEND, msg);
                }
            }
        }
        // retransmission timers
        let now = cx.now();
        // Deterministic retransmit order under many concurrent senders:
        // HashMap iteration order differs between runs.
        let mut keys: Vec<(u16, u16, u16)> = cx.proto.rmp_tx.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let mut acts = Vec::new();
            if let Some(s) = cx.proto.rmp_tx.get_mut(&key) {
                s.poll(now, &mut acts);
            }
            run_rmp_send_actions(cx, acts);
        }
        let wake = cx.proto.rmp_tx.values().filter_map(|s| s.next_wakeup()).min();
        match wake {
            Some(t) => Step::BlockTimeout(cx.proto.rmp_cond, t),
            None => Step::Block(cx.proto.rmp_cond),
        }
    }
}

/// The request-response server thread: client calls, server replies,
/// and client retransmission timers.
pub struct RrThread;

impl CabThread for RrThread {
    fn name(&self) -> &'static str {
        "req-resp"
    }

    fn run(&mut self, cx: &mut Cx<'_>) -> Step {
        for _ in 0..cx.proto.burst_limit {
            if !cx.mbox_pending(reqs::MB_RR_SEND) {
                break;
            }
            match cx.begin_get(reqs::MB_RR_SEND) {
                Err(_) => break,
                Ok(msg) => {
                    let bytes = cx.shared.msg_bytes(&msg).to_vec();
                    if let Some((req, payload)) = SendReq::decode(&bytes) {
                        cx.stamp("cab_rr_call", msg.msg_id as u64);
                        rr_call(cx, req, payload);
                    } else {
                        cx.proto.stats.bad_requests += 1;
                    }
                    cx.end_get(reqs::MB_RR_SEND, msg);
                }
            }
        }
        for _ in 0..cx.proto.burst_limit {
            if !cx.mbox_pending(reqs::MB_RR_REPLY) {
                break;
            }
            match cx.begin_get(reqs::MB_RR_REPLY) {
                Err(_) => break,
                Ok(msg) => {
                    let bytes = cx.shared.msg_bytes(&msg).to_vec();
                    if let Some((req, payload)) = RrReplyReq::decode(&bytes) {
                        let mut acts = Vec::new();
                        let server = cx.proto.rr_servers.entry(req.service_mbox).or_default();
                        server.reply(
                            req.client_cab,
                            req.reply_mbox,
                            req.req_id,
                            payload.to_vec(),
                            &mut acts,
                        );
                        for act in acts {
                            match act {
                                RrServerAction::Transmit { dst_cab, packet } => {
                                    cx.charge(cx.costs.reqresp_proc);
                                    if dst_cab == cx.cab_id {
                                        // loopback reply
                                        let Ok((hdr, body)) = ReqRespHeader::parse(&packet) else {
                                            continue;
                                        };
                                        rx_dispatch(
                                            cx,
                                            DatalinkProto::ReqResp,
                                            dst_cab,
                                            0,
                                            FrameBuf::new(hdr.build(body)),
                                        );
                                    } else {
                                        cx.datalink_send(
                                            dst_cab,
                                            DatalinkProto::ReqResp,
                                            msg.msg_id,
                                            &packet,
                                        );
                                    }
                                }
                                RrServerAction::Execute { .. } => unreachable!("reply path"),
                            }
                        }
                    } else {
                        cx.proto.stats.bad_requests += 1;
                    }
                    cx.end_get(reqs::MB_RR_REPLY, msg);
                }
            }
        }
        // client retransmission timers
        let now = cx.now();
        // Sorted so that retransmit order is deterministic and fair by
        // mailbox id: HashMap iteration order varies across runs, which
        // would reorder datalink sends under multi-client contention.
        let mut mboxes: Vec<u16> = cx.proto.rr_clients.keys().copied().collect();
        mboxes.sort_unstable();
        for mb in mboxes {
            let mut acts = Vec::new();
            if let Some(c) = cx.proto.rr_clients.get_mut(&mb) {
                c.poll(now, &mut acts);
            }
            run_rr_client_actions(cx, mb, acts);
        }
        let wake = cx.proto.rr_clients.values().filter_map(|c| c.next_wakeup()).min();
        match wake {
            Some(t) => Step::BlockTimeout(cx.proto.rr_cond, t),
            None => Step::Block(cx.proto.rr_cond),
        }
    }
}

/// The collective progress thread: drives `Arrive` retransmission
/// timers. Receive-side combining and fan-out run at interrupt level
/// (like the datagram fast path), and applications drive sends inline
/// through [`coll_arrive`]/[`coll_multicast`] — this thread only
/// recovers losses. Forked lazily by `Cab::enable_collective`.
pub struct CollectiveThread;

impl CabThread for CollectiveThread {
    fn name(&self) -> &'static str {
        "collective"
    }

    fn run(&mut self, cx: &mut Cx<'_>) -> Step {
        let now = cx.now();
        let mut acts = Vec::new();
        cx.proto.coll.poll(now, &mut acts);
        if !acts.is_empty() {
            cx.charge(cx.costs.datagram_proc);
        }
        run_collective_actions(cx, 0, acts);
        match cx.proto.coll.next_wakeup() {
            Some(t) => Step::BlockTimeout(cx.proto.coll_cond, t),
            None => Step::Block(cx.proto.coll_cond),
        }
    }
}

/// The IP input thread (ablation A1): the same processing as the
/// interrupt path, scheduled as a high-priority thread instead.
pub struct IpThread;

impl CabThread for IpThread {
    fn name(&self) -> &'static str {
        "ip-input"
    }

    fn run(&mut self, cx: &mut Cx<'_>) -> Step {
        // network-device mode (§5.1): "to send a packet the driver
        // writes the packet into a free buffer in the output pool and
        // notifies the server that the packet should be sent"
        for _ in 0..cx.proto.burst_limit {
            if !cx.mbox_pending(reqs::MB_RAW_SEND) {
                break;
            }
            match cx.begin_get(reqs::MB_RAW_SEND) {
                Err(_) => break,
                Ok(msg) => {
                    let bytes = cx.shared.msg_bytes(&msg).to_vec();
                    if bytes.len() >= 2 {
                        let dst_cab = u16::from_be_bytes([bytes[0], bytes[1]]);
                        cx.charge(cx.costs.datalink);
                        cx.datalink_send(dst_cab, DatalinkProto::Raw, msg.msg_id, &bytes[2..]);
                    }
                    cx.end_get(reqs::MB_RAW_SEND, msg);
                }
            }
        }
        for _ in 0..cx.proto.burst_limit {
            if !cx.mbox_pending(reqs::MB_IP_IN) {
                return Step::Block(cx.mbox_cond(reqs::MB_IP_IN));
            }
            match cx.begin_get(reqs::MB_IP_IN) {
                Err(WouldBlock::Empty(c)) | Err(WouldBlock::NoSpace(c)) => return Step::Block(c),
                Ok(msg) => {
                    let packet = cx.shared.msg_bytes(&msg).to_vec();
                    process_ip_input(cx, &packet);
                    cx.end_get(reqs::MB_IP_IN, msg);
                }
            }
        }
        Step::Yield
    }
}

/// The ICMP responder, attached as a mailbox reader upcall (§4.1:
/// "ICMP is implemented as a mailbox upcall").
pub struct IcmpUpcall;

impl Upcall for IcmpUpcall {
    fn name(&self) -> &'static str {
        "icmp"
    }

    fn on_message(&mut self, cx: &mut Cx<'_>, mbox: MboxId) {
        while cx.mbox_pending(mbox) {
            let Ok(msg) = cx.begin_get(mbox) else { break };
            let bytes = cx.shared.msg_bytes(&msg).to_vec();
            cx.end_get(mbox, msg);
            if bytes.len() < 4 {
                continue;
            }
            let src = Ipv4Addr::new(bytes[0], bytes[1], bytes[2], bytes[3]);
            match cx.proto.icmp.input(src, &bytes[4..]) {
                IcmpInput::Reply { dst, message } => {
                    ip_output(cx, dst, IpProtocol::ICMP, &message.build());
                }
                IcmpInput::EchoReply { src, ident, seq, .. } => {
                    if let Some(pm) = cx.proto.ping_mbox {
                        let mut note = Vec::with_capacity(8);
                        note.extend_from_slice(&src.octets());
                        note.extend_from_slice(&ident.to_be_bytes());
                        note.extend_from_slice(&seq.to_be_bytes());
                        deliver_to_mbox(cx, pm, &[], &note);
                    }
                }
                IcmpInput::Error { .. } | IcmpInput::Bad(_) => {}
            }
        }
    }
}

/// The UDP server thread (§4.1: "UDP and TCP each have their own
/// server threads").
pub struct UdpThread;

impl CabThread for UdpThread {
    fn name(&self) -> &'static str {
        "udp"
    }

    fn run(&mut self, cx: &mut Cx<'_>) -> Step {
        // control: bind requests
        while cx.mbox_pending(reqs::MB_UDP_CTL) {
            let Ok(msg) = cx.begin_get(reqs::MB_UDP_CTL) else { break };
            let bytes = cx.shared.msg_bytes(&msg).to_vec();
            if let Some((port, mbox)) = reqs::udp_bind_decode(&bytes) {
                cx.proto.udp.bind(port, mbox as u32);
            } else {
                cx.proto.stats.bad_requests += 1;
            }
            cx.end_get(reqs::MB_UDP_CTL, msg);
        }
        // input packets
        for _ in 0..cx.proto.burst_limit {
            if !cx.mbox_pending(reqs::MB_UDP_IN) {
                break;
            }
            match cx.begin_get(reqs::MB_UDP_IN) {
                Err(_) => break,
                Ok(msg) => {
                    let packet = cx.shared.msg_bytes(&msg).to_vec();
                    cx.charge(cx.costs.udp_proc);
                    if let Ok(header) = Ipv4Header::parse(&packet) {
                        let data = &packet[nectar_wire::ipv4::HEADER_LEN..];
                        cx.charge(cx.costs.checksum(data.len()));
                        match cx.proto.udp.input(&header, data) {
                            UdpInput::Deliver { token, payload, .. } => {
                                cx.stamp("cab_udp_deliver", msg.msg_id as u64);
                                deliver_to_mbox(cx, token as MboxId, &[], &payload);
                            }
                            UdpInput::PortUnreachable { .. } => {
                                let m =
                                    cx.proto.icmp.unreachable_for(&packet, UnreachableCode::Port);
                                ip_output(cx, header.src, IpProtocol::ICMP, &m.build());
                            }
                            UdpInput::Bad(_) => {}
                        }
                    }
                    cx.end_get(reqs::MB_UDP_IN, msg);
                }
            }
        }
        // send requests
        for _ in 0..cx.proto.burst_limit {
            if !cx.mbox_pending(reqs::MB_UDP_SEND) {
                break;
            }
            match cx.begin_get(reqs::MB_UDP_SEND) {
                Err(_) => break,
                Ok(msg) => {
                    let bytes = cx.shared.msg_bytes(&msg).to_vec();
                    cx.charge(cx.costs.udp_proc);
                    if let Some((req, payload)) = UdpSendReq::decode(&bytes) {
                        cx.stamp("cab_udp_send", msg.msg_id as u64);
                        let src = cx.proto.addr();
                        let dst = ip_for_cab(req.dst_cab);
                        let dgram =
                            cx.proto.udp.output(src, req.src_port, dst, req.dst_port, payload);
                        cx.charge(cx.costs.checksum(dgram.len()));
                        ip_output(cx, dst, IpProtocol::UDP, &dgram);
                    } else {
                        cx.proto.stats.bad_requests += 1;
                    }
                    cx.end_get(reqs::MB_UDP_SEND, msg);
                }
            }
        }
        Step::Block(cx.proto.udp_cond)
    }
}

/// The TCP server thread (§4.2): control, input, and send-request
/// processing plus retransmission timers, all over the shared TCP
/// condition.
pub struct TcpThread;

impl TcpThread {
    fn handle_events(cx: &mut Cx<'_>, events: Vec<TcpStackEvent>) {
        for ev in events {
            match ev {
                TcpStackEvent::Transmit { dst, segment } => {
                    if cx.proto.tcp.config().compute_checksum {
                        cx.charge(cx.costs.checksum(segment.len()));
                    }
                    ip_output(cx, dst, IpProtocol::TCP, &segment);
                }
                TcpStackEvent::Incoming { id, local_port } => {
                    let conn = cx.proto.tcp_conns.entry(id).or_default();
                    conn.port = Some(local_port);
                }
                TcpStackEvent::Socket { id, event } => Self::handle_socket_event(cx, id, event),
                TcpStackEvent::Dropped => {}
            }
        }
    }

    fn handle_socket_event(cx: &mut Cx<'_>, id: SocketId, event: TcpEvent) {
        match event {
            TcpEvent::Connected => {
                let (reply_sync, port) = {
                    let conn = cx.proto.tcp_conns.entry(id).or_default();
                    conn.established = true;
                    (conn.reply_sync.take(), conn.port)
                };
                if let Some(s) = reply_sync {
                    cx.sync_write(s, id + 1);
                }
                if let Some(port) = port {
                    if let Some(&accept_mbox) = cx.proto.tcp_accepts.get(&port) {
                        let note = reqs::tcp_accept_encode(port, id as u16);
                        deliver_to_mbox(cx, accept_mbox, &[], &note);
                    }
                }
            }
            TcpEvent::DataAvailable => Self::drain_recv(cx, id),
            TcpEvent::PeerClosed => {
                Self::drain_recv(cx, id);
                Self::send_eof(cx, id);
            }
            TcpEvent::Transmit { .. } => {
                unreachable!("Transmit is unwrapped into TcpStackEvent::Transmit by the stack")
            }
            TcpEvent::Closed | TcpEvent::Aborted(_) => {
                let reply_sync = cx.proto.tcp_conns.get_mut(&id).and_then(|c| c.reply_sync.take());
                if let Some(s) = reply_sync {
                    cx.sync_write(s, 0); // open failed
                }
                Self::send_eof(cx, id);
            }
        }
    }

    fn drain_recv(cx: &mut Cx<'_>, id: SocketId) {
        let Some(mbox) = cx.proto.tcp_conns.get(&id).and_then(|c| c.recv_mbox) else {
            return; // not attached yet: data waits in the socket buffer
        };
        let data = cx.proto.tcp.recv(id, usize::MAX);
        if !data.is_empty() {
            cx.charge(cx.costs.tcp_proc / 4); // Enqueue-style transfer
            deliver_to_mbox(cx, mbox, &[], &data);
            // reading opened the receive window; let the stack act
            let now = cx.now();
            let events = cx.proto.tcp.poll(now);
            Self::handle_events(cx, events);
        }
    }

    fn send_eof(cx: &mut Cx<'_>, id: SocketId) {
        let Some(conn) = cx.proto.tcp_conns.get_mut(&id) else { return };
        if conn.eof_sent {
            return;
        }
        conn.eof_sent = true;
        if let Some(mbox) = conn.recv_mbox {
            deliver_to_mbox(cx, mbox, &[], &[]);
        }
    }

    /// Push queued send data into the socket as the buffer drains; once
    /// everything is admitted, honour any deferred close.
    fn pump_pending(cx: &mut Cx<'_>, id: SocketId) {
        while let Some(chunk) = cx.proto.tcp_conns.get_mut(&id).and_then(|c| c.pending.pop_front())
        {
            let now = cx.now();
            let (n, events) = cx.proto.tcp.send(now, id, &chunk);
            Self::handle_events(cx, events);
            if n < chunk.len() {
                let rest = chunk[n..].to_vec();
                cx.proto.tcp_conns.entry(id).or_default().pending.push_front(rest);
                return;
            }
        }
        let deferred = cx
            .proto
            .tcp_conns
            .get(&id)
            .map(|c| c.close_requested && c.pending.is_empty())
            .unwrap_or(false);
        if deferred {
            cx.proto.tcp_conns.entry(id).or_default().close_requested = false;
            let now = cx.now();
            let events = cx.proto.tcp.close(now, id);
            Self::handle_events(cx, events);
        }
    }
}

impl CabThread for TcpThread {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn run(&mut self, cx: &mut Cx<'_>) -> Step {
        // 1. control requests
        while cx.mbox_pending(reqs::MB_TCP_CTL) {
            let Ok(msg) = cx.begin_get(reqs::MB_TCP_CTL) else { break };
            let bytes = cx.shared.msg_bytes(&msg).to_vec();
            cx.end_get(reqs::MB_TCP_CTL, msg);
            let now = cx.now();
            match TcpCtl::decode(&bytes) {
                Some(TcpCtl::Open { dst_cab, port, recv_mbox, reply_sync }) => {
                    let remote = (ip_for_cab(dst_cab), port);
                    let (id, events) = cx.proto.tcp.connect(now, remote, None);
                    let conn = cx.proto.tcp_conns.entry(id).or_default();
                    conn.recv_mbox = Some(recv_mbox);
                    conn.reply_sync = Some(reply_sync);
                    Self::handle_events(cx, events);
                }
                Some(TcpCtl::Listen { port, accept_mbox }) => {
                    cx.proto.tcp.listen(port);
                    cx.proto.tcp_accepts.insert(port, accept_mbox);
                }
                Some(TcpCtl::Attach { conn, recv_mbox }) => {
                    let id = conn as SocketId;
                    cx.proto.tcp_conns.entry(id).or_default().recv_mbox = Some(recv_mbox);
                    Self::drain_recv(cx, id);
                }
                Some(TcpCtl::Close { conn }) => {
                    let id = conn as SocketId;
                    let entry = cx.proto.tcp_conns.entry(id).or_default();
                    if entry.pending.is_empty() {
                        let events = cx.proto.tcp.close(now, id);
                        Self::handle_events(cx, events);
                    } else {
                        // data queued ahead of the close: defer the FIN
                        entry.close_requested = true;
                    }
                }
                Some(TcpCtl::Abort { conn }) => {
                    let events = cx.proto.tcp.abort(now, conn as SocketId);
                    Self::handle_events(cx, events);
                }
                None => cx.proto.stats.bad_requests += 1,
            }
        }
        // 2. input segments
        for _ in 0..cx.proto.burst_limit {
            if !cx.mbox_pending(reqs::MB_TCP_IN) {
                break;
            }
            match cx.begin_get(reqs::MB_TCP_IN) {
                Err(_) => break,
                Ok(msg) => {
                    let packet = cx.shared.msg_bytes(&msg).to_vec();
                    cx.end_get(reqs::MB_TCP_IN, msg);
                    cx.charge(cx.costs.tcp_proc);
                    if let Ok(header) = Ipv4Header::parse(&packet) {
                        let data = &packet[nectar_wire::ipv4::HEADER_LEN..];
                        if cx.proto.tcp.config().compute_checksum {
                            cx.charge(cx.costs.checksum(data.len()));
                        }
                        let now = cx.now();
                        let events = cx.proto.tcp.on_packet(now, &header, data);
                        Self::handle_events(cx, events);
                    }
                }
            }
        }
        // 3. send requests
        for _ in 0..cx.proto.burst_limit {
            if !cx.mbox_pending(reqs::MB_TCP_SEND) {
                break;
            }
            match cx.begin_get(reqs::MB_TCP_SEND) {
                Err(_) => break,
                Ok(msg) => {
                    let bytes = cx.shared.msg_bytes(&msg).to_vec();
                    cx.end_get(reqs::MB_TCP_SEND, msg);
                    cx.charge(cx.costs.tcp_proc);
                    if let Some((conn, payload)) = reqs::tcp_send_decode(&bytes) {
                        let id = conn as SocketId;
                        cx.proto
                            .tcp_conns
                            .entry(id)
                            .or_default()
                            .pending
                            .push_back(payload.to_vec());
                        Self::pump_pending(cx, id);
                    } else {
                        cx.proto.stats.bad_requests += 1;
                    }
                }
            }
        }
        // 4. timers + pending pumps
        let now = cx.now();
        let events = cx.proto.tcp.poll(now);
        Self::handle_events(cx, events);
        // Sorted: pump order affects segment emission order, and HashMap
        // iteration order is not stable across runs.
        let mut ids: Vec<SocketId> = cx
            .proto
            .tcp_conns
            .iter()
            .filter(|(_, c)| !c.pending.is_empty())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            Self::pump_pending(cx, id);
        }
        match cx.proto.tcp.next_wakeup() {
            Some(t) => Step::BlockTimeout(cx.proto.tcp_cond, t),
            None => Step::Block(cx.proto.tcp_cond),
        }
    }
}
