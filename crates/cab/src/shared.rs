//! The VME-visible runtime state of a CAB: mailboxes, syncs, host
//! condition variables, and the two signal queues.
//!
//! §3.2 of the paper: "Host processes and CAB threads interact using
//! shared data structures that are mapped into the address spaces of
//! the host processes." Everything in [`CabShared`] is that shared
//! region: the host model in `nectar-host` operates on it directly
//! (charging VME access costs), and CAB threads operate on it through
//! their context (charging CPU costs). The operations themselves are
//! cost-free state transitions here; callers charge time.
//!
//! Side effects that must cross the scheduler boundary (wake a CAB
//! thread, run an upcall, interrupt the host) are *not* performed
//! eagerly — they accumulate in [`Notices`] and are applied by the CAB
//! runtime at the end of the current burst, or converted into signal
//! queue entries by the host driver. That mirrors the real structure:
//! a host store into CAB memory does not magically reschedule a CAB
//! thread; the interrupt does.

use std::collections::VecDeque;

use nectar_sim::SimTime;

use crate::memory::{CabAddr, DataMemory, Heap, DATA_MEMORY_SIZE};

/// Mailbox identifier (index into the mailbox table).
pub type MboxId = u16;
/// CAB condition variable identifier.
pub type CondId = u16;
/// Host condition variable identifier.
pub type HostCondId = u16;
/// Upcall registry identifier.
pub type UpcallId = u16;
/// Sync identifier.
pub type SyncId = u16;

/// Messages at or below this size reuse the mailbox's cached buffer
/// (§3.3: "each mailbox caches a small buffer; this avoids the cost of
/// heap allocation and deallocation when sending small messages").
pub const SMALL_MSG: usize = 256;

/// Reserved low region of data memory (mailbox table, syncs, signal
/// queues — modelled out-of-band, but the address space is reserved to
/// keep heap addresses honest).
pub const HEAP_BASE: CabAddr = 64 * 1024;

/// A reference to a message: an allocation plus the live data window
/// within it. "Adjusting" a message (§3.3) moves the window without
/// copying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgRef {
    /// Heap allocation base.
    pub buf: CabAddr,
    /// Current start of message data (≥ buf).
    pub data: CabAddr,
    /// Current data length.
    pub len: u32,
    /// Correlation id for tracing (Figure 6 stages).
    pub msg_id: u32,
}

impl MsgRef {
    /// Remove `n` bytes from the front (header strip) — pointer math
    /// only, no copy.
    pub fn trim_front(&mut self, n: usize) {
        assert!(n as u32 <= self.len, "trim beyond message");
        self.data += n as u32;
        self.len -= n as u32;
    }

    /// Remove `n` bytes from the back.
    pub fn trim_back(&mut self, n: usize) {
        assert!(n as u32 <= self.len, "trim beyond message");
        self.len -= n as u32;
    }
}

/// How host processes perform mailbox operations on this mailbox
/// (§3.3: "both implementations coexist, and the appropriate
/// implementation can be selected dynamically on a per-mailbox
/// basis"). This is ablation A2 in DESIGN.md.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HostOpMode {
    /// The host updates mailbox data structures directly through the
    /// shared-memory mapping (≈2× faster per the paper).
    #[default]
    SharedMemory,
    /// The host ships each operation to the CAB via the signal-queue
    /// RPC mechanism and waits on a sync for the result.
    Rpc,
}

/// One mailbox (§3.3): a queue of messages with a network-wide address.
#[derive(Debug)]
pub struct Mailbox {
    pub queue: VecDeque<MsgRef>,
    /// CAB threads blocked in Begin_Get wait here.
    pub reader_cond: CondId,
    /// CAB threads blocked in Begin_Put (no heap space) wait here.
    pub space_cond: CondId,
    /// Signalled on End_Put so host readers can poll or block.
    pub host_cond: Option<HostCondId>,
    /// Reader upcall invoked as a side effect of End_Put.
    pub upcall: Option<UpcallId>,
    /// Cached small buffer: (addr, allocation size).
    pub cached_buf: Option<(CabAddr, u32)>,
    /// A writer observed heap exhaustion on this mailbox and blocked;
    /// an End_Get must signal `space_cond` across the host boundary.
    pub space_wanted: bool,
    pub host_mode: HostOpMode,
    /// Total messages ever enqueued (stats).
    pub delivered: u64,
    /// Total payload bytes ever enqueued.
    pub enq_bytes: u64,
    /// Total messages ever dequeued via Begin_Get.
    pub deq_msgs: u64,
    /// Total payload bytes ever dequeued.
    pub deq_bytes: u64,
    /// High watermark of queue depth (messages).
    pub depth_high: u64,
}

/// Sync state (§3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncState {
    /// Allocated, not yet written.
    Empty,
    /// Written with a one-word value.
    Written(u32),
    /// Reader gave up; the next Write frees it.
    Canceled,
}

/// A sync: a one-word value plus synchronization (§3.4: "Syncs allow a
/// user to return a one-word value to an asynchronous reader
/// efficiently").
#[derive(Clone, Copy, Debug)]
pub struct Sync {
    pub state: SyncState,
    /// When the value was actually stored (burst-accurate): a reader
    /// polling before this instant must not observe the write.
    pub written_at: SimTime,
    /// CAB-side readers block here.
    pub cond: CondId,
    /// Host-side readers poll/block here.
    pub host_cond: HostCondId,
    /// Slot free for reallocation.
    pub free: bool,
}

/// A host condition variable (§3.2): a poll value in CAB memory.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostCond {
    /// Incremented by Signal; host Wait polls for change.
    pub poll_value: u32,
    /// The CAB driver recorded a blocked host process: a Signal must
    /// also post to the host signal queue and interrupt the host.
    pub wants_interrupt: bool,
}

/// An entry in either signal queue: "fixed-size elements that consist
/// of an opcode and a parameter" (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SigEntry {
    /// CAB → host: a host condition was signalled.
    HostCondSignalled(HostCondId),
    /// Host → CAB: a mailbox was written in shared-memory mode; wake
    /// its CAB readers / run its upcall.
    MailboxWritten(MboxId),
    /// Host → CAB: signal a CAB condition variable (generic wake used
    /// when host-side shared-memory operations would have woken CAB
    /// threads — e.g. End_Get freeing heap space writers wait on).
    CondSignal(CondId),
    /// Host → CAB: execute Write on a sync (the host "offloads the
    /// execution of Write to the CAB", §3.4).
    SyncWrite(SyncId, u32),
    /// Host → CAB: Cancel a sync.
    SyncCancel(SyncId),
    /// Host → CAB RPC: perform Begin_Put; deliver the MsgRef through
    /// the given sync (address packed as the sync value).
    RpcBeginPut { mbox: MboxId, size: u32, reply: SyncId },
    /// Host → CAB RPC: perform End_Put of a previously returned
    /// handle; completion is reported through the sync.
    RpcEndPut { mbox: MboxId, msg_index: u32, reply: SyncId },
    /// Host → CAB RPC: Begin_Get; result via sync (index+1, or 0 for
    /// empty).
    RpcBeginGet { mbox: MboxId, reply: SyncId },
    /// Host → CAB RPC: End_Get of a handle.
    RpcEndGet { mbox: MboxId, msg_index: u32 },
    /// Generic request for higher layers (TCP control, etc.): opcode +
    /// parameter, with the payload in a mailbox.
    Request(u32, u32),
}

/// Deferred cross-boundary effects of shared-state operations.
#[derive(Debug, Default)]
pub struct Notices {
    /// CAB condition variables to wake.
    pub wake_conds: Vec<CondId>,
    /// Upcalls to run (upcall id, mailbox that was written).
    pub upcalls: Vec<(UpcallId, MboxId)>,
    /// The host signal queue gained entries: raise the VME interrupt.
    pub interrupt_host: bool,
}

impl Notices {
    pub fn take(&mut self) -> Notices {
        std::mem::take(self)
    }

    pub fn is_empty(&self) -> bool {
        self.wake_conds.is_empty() && self.upcalls.is_empty() && !self.interrupt_host
    }
}

/// Why a mailbox operation could not complete (the caller blocks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WouldBlock {
    /// Begin_Get on an empty mailbox: wait on `reader_cond`.
    Empty(CondId),
    /// Begin_Put with no heap space: wait on `space_cond`.
    NoSpace(CondId),
}

/// Handle table for messages between Begin_Put/Begin_Get and their
/// End_ counterparts when crossing the host boundary (the host cannot
/// hold a Rust `MsgRef` by value in RPC mode; it gets an index).
#[derive(Debug, Default)]
pub struct HandleTable {
    slots: Vec<Option<MsgRef>>,
}

impl HandleTable {
    pub fn insert(&mut self, m: MsgRef) -> u32 {
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.is_none() {
                *s = Some(m);
                return i as u32;
            }
        }
        self.slots.push(Some(m));
        (self.slots.len() - 1) as u32
    }

    pub fn get(&self, i: u32) -> Option<MsgRef> {
        self.slots.get(i as usize).copied().flatten()
    }

    pub fn update(&mut self, i: u32, m: MsgRef) {
        if let Some(slot) = self.slots.get_mut(i as usize) {
            *slot = Some(m);
        }
    }

    pub fn remove(&mut self, i: u32) -> Option<MsgRef> {
        self.slots.get_mut(i as usize).and_then(|s| s.take())
    }
}

/// The complete VME-visible state of one CAB.
#[derive(Debug)]
pub struct CabShared {
    pub mem: DataMemory,
    pub heap: Heap,
    pub mailboxes: Vec<Mailbox>,
    pub syncs: Vec<Sync>,
    pub host_conds: Vec<HostCond>,
    /// CAB → host signal queue.
    pub host_sigq: VecDeque<SigEntry>,
    /// Host → CAB signal queue.
    pub cab_sigq: VecDeque<SigEntry>,
    /// Outstanding two-phase handles for host RPC-mode operations.
    pub handles: HandleTable,
    pub notices: Notices,
    /// High watermark of `host_sigq` depth, sampled when the host
    /// driver drains it (the queue only grows between drains).
    pub host_sigq_high: u64,
    /// High watermark of `cab_sigq` depth, sampled at drain.
    pub cab_sigq_high: u64,
    /// Begin_Get attempts that found the mailbox empty. Each one cost
    /// the caller a full mailbox-op charge for no work — the tax the
    /// select()-before-read idiom (`mbox_pending`) exists to avoid.
    pub mbox_empty_polls: u64,
    next_cond: CondId,
    next_msg_id: u32,
}

impl Default for CabShared {
    fn default() -> Self {
        Self::new()
    }
}

impl CabShared {
    pub fn new() -> Self {
        CabShared {
            mem: DataMemory::new(),
            heap: Heap::new(HEAP_BASE, DATA_MEMORY_SIZE - HEAP_BASE as usize),
            mailboxes: Vec::new(),
            syncs: Vec::new(),
            host_conds: Vec::new(),
            host_sigq: VecDeque::new(),
            cab_sigq: VecDeque::new(),
            handles: HandleTable::default(),
            notices: Notices::default(),
            host_sigq_high: 0,
            cab_sigq_high: 0,
            mbox_empty_polls: 0,
            next_cond: 0,
            next_msg_id: 1,
        }
    }

    /// Allocate a fresh CAB condition variable id.
    pub fn alloc_cond(&mut self) -> CondId {
        let c = self.next_cond;
        self.next_cond += 1;
        c
    }

    /// Create a host condition variable.
    pub fn create_host_cond(&mut self) -> HostCondId {
        self.host_conds.push(HostCond::default());
        (self.host_conds.len() - 1) as HostCondId
    }

    /// Create a mailbox. `host_readable` attaches a host condition so
    /// host processes can wait on it.
    pub fn create_mailbox(&mut self, host_readable: bool, mode: HostOpMode) -> MboxId {
        let cond = self.alloc_cond();
        self.create_mailbox_on(host_readable, mode, cond)
    }

    /// Create a mailbox whose readers wait on a caller-supplied
    /// condition — several mailboxes can share one condition so a
    /// single server thread can block on all of them (the TCP thread
    /// waits on control + send-request + input mailboxes at once).
    pub fn create_mailbox_on(
        &mut self,
        host_readable: bool,
        mode: HostOpMode,
        reader_cond: CondId,
    ) -> MboxId {
        let space_cond = self.alloc_cond();
        let host_cond = if host_readable { Some(self.create_host_cond()) } else { None };
        self.mailboxes.push(Mailbox {
            queue: VecDeque::new(),
            reader_cond,
            space_cond,
            host_cond,
            upcall: None,
            cached_buf: None,
            space_wanted: false,
            host_mode: mode,
            delivered: 0,
            enq_bytes: 0,
            deq_msgs: 0,
            deq_bytes: 0,
            depth_high: 0,
        });
        (self.mailboxes.len() - 1) as MboxId
    }

    /// Attach a reader upcall to a mailbox (§3.3).
    pub fn set_upcall(&mut self, mbox: MboxId, upcall: UpcallId) {
        self.mailboxes[mbox as usize].upcall = Some(upcall);
    }

    fn fresh_msg_id(&mut self) -> u32 {
        let id = self.next_msg_id;
        self.next_msg_id = self.next_msg_id.wrapping_add(1).max(1);
        id
    }

    // ------------------------------------------------------------------
    // two-phase mailbox operations (§3.3)
    // ------------------------------------------------------------------

    /// Begin_Put: reserve a buffer of `size` bytes. Blocks (returns
    /// `WouldBlock::NoSpace`) when the heap is exhausted.
    pub fn begin_put(&mut self, mbox: MboxId, size: usize) -> Result<MsgRef, WouldBlock> {
        let m = &mut self.mailboxes[mbox as usize];
        // cached small buffer fast path
        if size <= SMALL_MSG {
            if let Some((addr, alloc)) = m.cached_buf.take() {
                let msg_id = self.fresh_msg_id();
                let _ = alloc;
                return Ok(MsgRef { buf: addr, data: addr, len: size as u32, msg_id });
            }
        }
        let space_cond = m.space_cond;
        // allocate small messages at the small-buffer size so the cache
        // can recycle them later
        let want = if size <= SMALL_MSG { SMALL_MSG } else { size };
        match self.heap.alloc(want) {
            Some(addr) => {
                let msg_id = self.fresh_msg_id();
                Ok(MsgRef { buf: addr, data: addr, len: size as u32, msg_id })
            }
            None => {
                self.mailboxes[mbox as usize].space_wanted = true;
                Err(WouldBlock::NoSpace(space_cond))
            }
        }
    }

    /// End_Put: make the message available to readers; fires reader
    /// wakeups, the host condition, and any reader upcall.
    pub fn end_put(&mut self, mbox: MboxId, msg: MsgRef) {
        let m = &mut self.mailboxes[mbox as usize];
        m.queue.push_back(msg);
        m.delivered += 1;
        m.enq_bytes += msg.len as u64;
        if m.queue.len() as u64 > m.depth_high {
            m.depth_high = m.queue.len() as u64;
        }
        let reader_cond = m.reader_cond;
        let host_cond = m.host_cond;
        let upcall = m.upcall;
        self.notices.wake_conds.push(reader_cond);
        if let Some(u) = upcall {
            self.notices.upcalls.push((u, mbox));
        }
        if let Some(hc) = host_cond {
            self.signal_host_cond(hc);
        }
    }

    /// Begin_Get: take the next message for in-place reading.
    pub fn begin_get(&mut self, mbox: MboxId) -> Result<MsgRef, WouldBlock> {
        let m = &mut self.mailboxes[mbox as usize];
        match m.queue.pop_front() {
            Some(msg) => {
                m.deq_msgs += 1;
                m.deq_bytes += msg.len as u64;
                Ok(msg)
            }
            None => {
                let c = m.reader_cond;
                self.mbox_empty_polls += 1;
                Err(WouldBlock::Empty(c))
            }
        }
    }

    /// End_Get: release the message's storage (possibly into the
    /// mailbox's small-buffer cache) and wake blocked writers.
    pub fn end_get(&mut self, mbox: MboxId, msg: MsgRef) {
        let alloc = self.heap.size_of(msg.buf).expect("end_get of unallocated buffer") as u32;
        let m = &mut self.mailboxes[mbox as usize];
        if alloc as usize == SMALL_MSG && m.cached_buf.is_none() {
            m.cached_buf = Some((msg.buf, alloc));
        } else {
            self.heap.free(msg.buf);
        }
        let space_cond = self.mailboxes[mbox as usize].space_cond;
        self.notices.wake_conds.push(space_cond);
    }

    /// Enqueue: move a message (obtained via Begin_Get or built by a
    /// protocol) to another mailbox without copying (§3.3).
    pub fn enqueue(&mut self, msg: MsgRef, to: MboxId) {
        self.end_put(to, msg);
    }

    /// Read a message's bytes (system access — protocol code).
    pub fn msg_bytes(&self, msg: &MsgRef) -> &[u8] {
        self.mem.dma_read(msg.data, msg.len as usize)
    }

    /// Write into a reserved message buffer (system access).
    pub fn msg_write(&mut self, msg: &MsgRef, offset: usize, data: &[u8]) {
        assert!(offset + data.len() <= msg.len as usize, "write beyond message");
        self.mem.dma_write(msg.data + offset as u32, data);
    }

    // ------------------------------------------------------------------
    // syncs (§3.4)
    // ------------------------------------------------------------------

    /// Alloc: create (or reuse) a sync slot.
    pub fn sync_alloc(&mut self) -> SyncId {
        for (i, s) in self.syncs.iter_mut().enumerate() {
            if s.free {
                s.free = false;
                s.state = SyncState::Empty;
                return i as SyncId;
            }
        }
        let cond = self.alloc_cond();
        let host_cond = self.create_host_cond();
        self.syncs.push(Sync {
            state: SyncState::Empty,
            written_at: SimTime::ZERO,
            cond,
            host_cond,
            free: false,
        });
        (self.syncs.len() - 1) as SyncId
    }

    /// Write: deposit the value and wake the reader; a canceled sync is
    /// freed instead. `now` is the burst-accurate store time: a reader
    /// polling earlier must not observe the write.
    pub fn sync_write_at(&mut self, id: SyncId, value: u32, now: SimTime) {
        let s = &mut self.syncs[id as usize];
        match s.state {
            SyncState::Canceled => {
                s.free = true;
            }
            _ => {
                s.state = SyncState::Written(value);
                s.written_at = now;
                let cond = s.cond;
                let hc = s.host_cond;
                self.notices.wake_conds.push(cond);
                self.signal_host_cond(hc);
            }
        }
    }

    /// Write without a timestamp (immediately visible).
    pub fn sync_write(&mut self, id: SyncId, value: u32) {
        self.sync_write_at(id, value, SimTime::ZERO);
    }

    /// Read at `now`: non-blocking attempt; `None` means not yet
    /// written *or not yet visible* (the caller blocks or re-polls).
    pub fn sync_read_at(&mut self, id: SyncId, now: SimTime) -> Option<u32> {
        let s = &mut self.syncs[id as usize];
        match s.state {
            SyncState::Written(v) if s.written_at <= now => {
                s.free = true;
                Some(v)
            }
            _ => None,
        }
    }

    /// Read with immediate visibility (CAB-local readers within the
    /// same burst ordering).
    pub fn sync_read(&mut self, id: SyncId) -> Option<u32> {
        self.sync_read_at(id, SimTime::MAX)
    }

    /// The CAB condition a blocked sync reader waits on.
    pub fn sync_cond(&self, id: SyncId) -> CondId {
        self.syncs[id as usize].cond
    }

    /// The host condition a blocked host sync reader waits on.
    pub fn sync_host_cond(&self, id: SyncId) -> HostCondId {
        self.syncs[id as usize].host_cond
    }

    /// Cancel: reader is no longer interested.
    pub fn sync_cancel(&mut self, id: SyncId) {
        let s = &mut self.syncs[id as usize];
        match s.state {
            SyncState::Written(_) => s.free = true,
            _ => s.state = SyncState::Canceled,
        }
    }

    // ------------------------------------------------------------------
    // host conditions and signal queues (§3.2)
    // ------------------------------------------------------------------

    /// Signal a host condition: bump the poll value; if a host process
    /// is blocked in the driver, post to the host signal queue and
    /// request the VME interrupt.
    pub fn signal_host_cond(&mut self, hc: HostCondId) {
        let c = &mut self.host_conds[hc as usize];
        c.poll_value = c.poll_value.wrapping_add(1);
        if c.wants_interrupt {
            c.wants_interrupt = false;
            self.host_sigq.push_back(SigEntry::HostCondSignalled(hc));
            self.notices.interrupt_host = true;
        }
    }

    /// Host driver: record that a host process is going to sleep on
    /// `hc`; returns the poll value at registration so the caller can
    /// re-check for a lost race.
    pub fn host_cond_register_waiter(&mut self, hc: HostCondId) -> u32 {
        let c = &mut self.host_conds[hc as usize];
        c.wants_interrupt = true;
        c.poll_value
    }

    /// Current poll value (host polling path — the caller charges one
    /// VME word read).
    pub fn host_cond_poll(&self, hc: HostCondId) -> u32 {
        self.host_conds[hc as usize].poll_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> CabShared {
        CabShared::new()
    }

    #[test]
    fn mailbox_two_phase_roundtrip() {
        let mut s = shared();
        let mb = s.create_mailbox(false, HostOpMode::SharedMemory);
        let msg = s.begin_put(mb, 1000).unwrap();
        assert_eq!(msg.len, 1000);
        s.msg_write(&msg, 0, b"hello");
        s.end_put(mb, msg);
        let got = s.begin_get(mb).unwrap();
        assert_eq!(&s.msg_bytes(&got)[..5], b"hello");
        s.end_get(mb, got);
        s.heap.check_invariants();
    }

    #[test]
    fn begin_get_empty_blocks() {
        let mut s = shared();
        let mb = s.create_mailbox(false, HostOpMode::SharedMemory);
        let rc = s.mailboxes[mb as usize].reader_cond;
        assert_eq!(s.begin_get(mb), Err(WouldBlock::Empty(rc)));
    }

    #[test]
    fn end_put_raises_notices() {
        let mut s = shared();
        let mb = s.create_mailbox(true, HostOpMode::SharedMemory);
        let hc = s.mailboxes[mb as usize].host_cond.unwrap();
        let before = s.host_cond_poll(hc);
        let msg = s.begin_put(mb, 10).unwrap();
        s.end_put(mb, msg);
        let n = s.notices.take();
        assert!(!n.wake_conds.is_empty());
        assert_eq!(s.host_cond_poll(hc), before + 1);
        // no blocked waiter: no interrupt requested
        assert!(!n.interrupt_host);
    }

    #[test]
    fn host_cond_interrupt_when_blocked() {
        let mut s = shared();
        let hc = s.create_host_cond();
        s.host_cond_register_waiter(hc);
        s.signal_host_cond(hc);
        assert!(s.notices.interrupt_host);
        assert_eq!(s.host_sigq.pop_front(), Some(SigEntry::HostCondSignalled(hc)));
        // one-shot: a second signal without re-registration does not
        // re-post
        s.notices = Notices::default();
        s.signal_host_cond(hc);
        assert!(!s.notices.interrupt_host);
    }

    #[test]
    fn small_buffer_cache_recycles() {
        let mut s = shared();
        let mb = s.create_mailbox(false, HostOpMode::SharedMemory);
        let m1 = s.begin_put(mb, 64).unwrap();
        let addr1 = m1.buf;
        s.end_put(mb, m1);
        let g = s.begin_get(mb).unwrap();
        s.end_get(mb, g); // goes to cache
        assert!(s.mailboxes[mb as usize].cached_buf.is_some());
        let m2 = s.begin_put(mb, 32).unwrap();
        assert_eq!(m2.buf, addr1, "cached buffer must be reused");
        // a large message bypasses the cache entirely
        let big = s.begin_put(mb, 4096).unwrap();
        assert_ne!(big.buf, addr1);
    }

    #[test]
    fn enqueue_moves_without_copy() {
        let mut s = shared();
        let a = s.create_mailbox(false, HostOpMode::SharedMemory);
        let b = s.create_mailbox(false, HostOpMode::SharedMemory);
        let msg = s.begin_put(a, 500).unwrap();
        s.msg_write(&msg, 0, b"ip packet");
        s.end_put(a, msg);
        let mut got = s.begin_get(a).unwrap();
        let orig_buf = got.buf;
        // strip the 3-byte "ip " header in place, then move to b
        got.trim_front(3);
        s.enqueue(got, b);
        let final_msg = s.begin_get(b).unwrap();
        assert_eq!(final_msg.buf, orig_buf, "no copy: same buffer");
        assert_eq!(&s.msg_bytes(&final_msg)[..6], b"packet");
        assert_eq!(final_msg.len, 497);
    }

    #[test]
    fn trim_operations() {
        let mut s = shared();
        let mb = s.create_mailbox(false, HostOpMode::SharedMemory);
        let mut msg = s.begin_put(mb, 100).unwrap();
        msg.trim_front(10);
        msg.trim_back(20);
        assert_eq!(msg.len, 70);
        assert_eq!(msg.data, msg.buf + 10);
    }

    #[test]
    #[should_panic(expected = "trim beyond")]
    fn overtrim_panics() {
        let mut m = MsgRef { buf: 0, data: 0, len: 4, msg_id: 0 };
        m.trim_front(5);
    }

    #[test]
    fn heap_exhaustion_reports_no_space() {
        let mut s = shared();
        let mb = s.create_mailbox(false, HostOpMode::SharedMemory);
        // grab nearly everything
        let big = s.begin_put(mb, DATA_MEMORY_SIZE - HEAP_BASE as usize - 1024).unwrap();
        match s.begin_put(mb, 600_000) {
            Err(WouldBlock::NoSpace(c)) => {
                assert_eq!(c, s.mailboxes[mb as usize].space_cond);
            }
            other => panic!("unexpected: {other:?}"),
        }
        // returning the buffer clears the pressure
        s.end_put(mb, big);
        let g = s.begin_get(mb).unwrap();
        s.end_get(mb, g);
        assert!(s.begin_put(mb, 600_000).is_ok());
    }

    #[test]
    fn sync_lifecycle() {
        let mut s = shared();
        let id = s.sync_alloc();
        assert_eq!(s.sync_read(id), None);
        s.sync_write(id, 42);
        assert!(!s.notices.wake_conds.is_empty());
        assert_eq!(s.sync_read(id), Some(42));
        // slot is recycled
        let id2 = s.sync_alloc();
        assert_eq!(id, id2);
    }

    #[test]
    fn sync_cancel_before_write() {
        let mut s = shared();
        let id = s.sync_alloc();
        s.sync_cancel(id);
        // the slot is NOT yet free: the writer frees it
        let id2 = s.sync_alloc();
        assert_ne!(id, id2);
        s.sync_write(id, 7);
        // now freed, no wake notices for the canceled sync write
        let id3 = s.sync_alloc();
        assert_eq!(id, id3);
    }

    #[test]
    fn sync_cancel_after_write_frees() {
        let mut s = shared();
        let id = s.sync_alloc();
        s.sync_write(id, 7);
        s.sync_cancel(id);
        let id2 = s.sync_alloc();
        assert_eq!(id, id2);
    }

    #[test]
    fn handle_table_roundtrip() {
        let mut t = HandleTable::default();
        let m = MsgRef { buf: 8, data: 8, len: 4, msg_id: 1 };
        let i = t.insert(m);
        assert_eq!(t.get(i), Some(m));
        let mut m2 = m;
        m2.trim_front(1);
        t.update(i, m2);
        assert_eq!(t.remove(i), Some(m2));
        assert_eq!(t.get(i), None);
        // slots are reused
        let j = t.insert(m);
        assert_eq!(i, j);
    }

    #[test]
    fn msg_ids_are_unique() {
        let mut s = shared();
        let mb = s.create_mailbox(false, HostOpMode::SharedMemory);
        let a = s.begin_put(mb, 8).unwrap();
        let b = s.begin_put(mb, 8).unwrap();
        assert_ne!(a.msg_id, b.msg_id);
    }
}
