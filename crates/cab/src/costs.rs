//! The CAB cost model: how long things take on a 16.5 MHz SPARC.
//!
//! Every timing constant in the simulation lives here, in one struct,
//! so that calibration (DESIGN.md §6) is a single-file affair. Values
//! marked *paper* are published numbers; the rest are calibrated so
//! that the Table 1 / Figure 6/7/8 harnesses land on the paper's
//! anchors (see EXPERIMENTS.md for the calibration record).

use nectar_sim::SimDuration;

/// Timing constants for the CAB processor and its runtime system.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Thread context switch — *paper*: "Context switch time is
    /// determined by the cost of saving and restoring the SPARC
    /// register windows; 20 µsec is typical".
    pub ctx_switch: SimDuration,
    /// Interrupt entry + exit overhead (save state, dispatch, rti).
    pub interrupt_overhead: SimDuration,
    /// Datalink-layer header processing per packet — *paper* (Fig. 6):
    /// 8 µs "datalink" stage.
    pub datalink: SimDuration,
    /// Starting a DMA transfer (program the controller).
    pub dma_setup: SimDuration,
    /// Mailbox Begin_Put: allocate + reserve. Figure 6 shows 18 µs for
    /// the host-side begin_put (which includes VME words); the CAB-side
    /// cost is the CPU part.
    pub mbox_begin_put: SimDuration,
    /// Mailbox End_Put: queue insert + reader notification.
    pub mbox_end_put: SimDuration,
    /// Mailbox Begin_Get.
    pub mbox_begin_get: SimDuration,
    /// Mailbox End_Get: release storage.
    pub mbox_end_get: SimDuration,
    /// Mailbox Enqueue (§3.3: "moves the message without copying the
    /// data … by simply moving pointers").
    pub mbox_enqueue: SimDuration,
    /// Sync Write / Read fast path.
    pub sync_op: SimDuration,
    /// Fixed per-packet transport processing, datagram protocol (thin).
    pub datagram_proc: SimDuration,
    /// Fixed per-packet transport processing, RMP.
    pub rmp_proc: SimDuration,
    /// Fixed per-packet transport processing, request-response.
    pub reqresp_proc: SimDuration,
    /// Fixed per-packet IP input/output processing (header fields,
    /// route lookup; excludes the header checksum).
    pub ip_proc: SimDuration,
    /// IP header checksum (20 bytes through the software loop).
    pub ip_header_checksum: SimDuration,
    /// Fixed per-segment TCP processing (standard input processing,
    /// excluding the software data checksum).
    pub tcp_proc: SimDuration,
    /// Fixed per-datagram UDP processing.
    pub udp_proc: SimDuration,
    /// Software Internet checksum, per byte — the Figure 7 separator
    /// between TCP and "TCP w/o checksum". ~4 cycles/byte at 16.5 MHz.
    pub checksum_per_byte: SimDuration,
    /// Scheduling work to wake a thread (run-queue insert).
    pub thread_wake: SimDuration,
    /// Dispatch cost of a mailbox reader upcall (§3.3: converts a
    /// cross-thread call into a local one — this replaces ctx_switch).
    pub upcall_dispatch: SimDuration,
    /// Processing one CAB signal-queue entry from the host.
    pub signal_dequeue: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ctx_switch: SimDuration::from_micros(20), // paper
            interrupt_overhead: SimDuration::from_micros(8),
            datalink: SimDuration::from_micros(8), // paper (Fig. 6)
            dma_setup: SimDuration::from_micros(2),
            mbox_begin_put: SimDuration::from_micros(6),
            mbox_end_put: SimDuration::from_micros(5),
            mbox_begin_get: SimDuration::from_micros(4),
            mbox_end_get: SimDuration::from_micros(5),
            mbox_enqueue: SimDuration::from_micros(3),
            sync_op: SimDuration::from_micros(3),
            datagram_proc: SimDuration::from_micros(8),
            rmp_proc: SimDuration::from_micros(10),
            reqresp_proc: SimDuration::from_micros(12),
            ip_proc: SimDuration::from_micros(10),
            ip_header_checksum: SimDuration::from_micros(5),
            tcp_proc: SimDuration::from_micros(35),
            udp_proc: SimDuration::from_micros(25),
            // ~1.5 cycles/byte at 16.5 MHz for the unrolled BSD sum
            // loop (ldd + addxcc over doublewords) ≈ 90 ns/byte
            checksum_per_byte: SimDuration::from_nanos(90),
            thread_wake: SimDuration::from_micros(4),
            upcall_dispatch: SimDuration::from_micros(3),
            signal_dequeue: SimDuration::from_micros(6),
        }
    }
}

impl CostModel {
    /// Software checksum time over `n` bytes.
    pub fn checksum(&self, n: usize) -> SimDuration {
        self.checksum_per_byte * n as u64
    }
}

/// Link and board constants (hardware, not CPU).
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    /// Fiber line rate — *paper*: 100 Mbit/s.
    pub fiber_bits_per_sec: u64,
    /// One-way propagation delay per fiber segment (tens of meters).
    pub fiber_propagation: SimDuration,
    /// Input/output FIFO capacity in bytes (temporary buffering between
    /// fiber and DMA).
    pub fifo_bytes: usize,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            fiber_bits_per_sec: 100_000_000,
            fiber_propagation: SimDuration::from_nanos(300),
            fifo_bytes: 32 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pinned_values() {
        let c = CostModel::default();
        assert_eq!(c.ctx_switch, SimDuration::from_micros(20));
        assert_eq!(c.datalink, SimDuration::from_micros(8));
        let l = LinkModel::default();
        assert_eq!(l.fiber_bits_per_sec, 100_000_000);
    }

    #[test]
    fn checksum_scales_linearly() {
        let c = CostModel::default();
        assert_eq!(c.checksum(0), SimDuration::ZERO);
        let one = c.checksum(1000);
        let two = c.checksum(2000);
        assert_eq!(two.as_nanos(), one.as_nanos() * 2);
        // 8 KiB at ~90 ns/byte ≈ 740 us — the dominant term in Fig. 7's
        // TCP curve (comparable to the 655 us wire time of the packet)
        assert!(c.checksum(8192) > SimDuration::from_micros(700));
    }
}
