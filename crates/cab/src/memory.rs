//! CAB memory: the data-memory image, its heap allocator, and the
//! page-grained protection hardware.
//!
//! §2.2 of the paper: "the CAB memory is split into two regions: one
//! intended for use as program memory, the other as data memory. …
//! The data memory region contains 1 Mbyte of RAM." Mailbox message
//! buffers live here as *real bytes at real offsets*, managed by a
//! first-fit free-list allocator (§3.3: "buffer space for messages is
//! allocated from a common heap"), because the zero-copy operations —
//! Enqueue, header trim — are pointer manipulations whose correctness
//! is worth testing against a real address space.
//!
//! §2.2 also: "Memory protection hardware on the CAB allows access
//! permissions to be associated with each 1 Kbyte page. Multiple
//! protection domains are provided, each with its own set of access
//! permissions. Changing the protection domain is accomplished by
//! reloading a single register."

/// Size of the data memory region (paper: 1 MiB of 35 ns SRAM).
pub const DATA_MEMORY_SIZE: usize = 1 << 20;
/// Protection page size (paper: 1 KiB).
pub const PAGE_SIZE: usize = 1024;
/// Number of protection domains.
pub const DOMAINS: usize = 8;

/// A CAB physical address in data memory.
pub type CabAddr = u32;

/// Access kinds checked by the protection hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    Read,
    Write,
}

/// Per-page permissions for one domain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PagePerms {
    pub read: bool,
    pub write: bool,
}

impl PagePerms {
    pub const RW: PagePerms = PagePerms { read: true, write: true };
    pub const RO: PagePerms = PagePerms { read: true, write: false };
    pub const NONE: PagePerms = PagePerms { read: false, write: false };

    fn allows(self, access: Access) -> bool {
        match access {
            Access::Read => self.read,
            Access::Write => self.write,
        }
    }
}

/// A memory-access fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemFault {
    /// Address or range beyond the 1 MiB region.
    OutOfRange { addr: CabAddr, len: usize },
    /// The current domain lacks permission on some page of the range.
    Protection { addr: CabAddr, access: Access, domain: u8 },
}

/// The data memory image plus protection state.
///
/// Protection is enforced through [`DataMemory::read`] /
/// [`DataMemory::write`] when a non-system domain is active; the system
/// domain (0) bypasses checks, as kernel-mode accesses did on the CAB.
#[derive(Debug)]
pub struct DataMemory {
    bytes: Vec<u8>,
    /// perms[domain][page]
    perms: Vec<Vec<PagePerms>>,
    current_domain: u8,
}

impl Default for DataMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl DataMemory {
    pub fn new() -> Self {
        let pages = DATA_MEMORY_SIZE / PAGE_SIZE;
        let mut perms = vec![vec![PagePerms::NONE; pages]; DOMAINS];
        // domain 0 = system: full access
        perms[0] = vec![PagePerms::RW; pages];
        DataMemory { bytes: vec![0; DATA_MEMORY_SIZE], perms, current_domain: 0 }
    }

    /// Switch the active protection domain ("reloading a single
    /// register").
    pub fn set_domain(&mut self, domain: u8) {
        assert!((domain as usize) < DOMAINS, "bad domain");
        self.current_domain = domain;
    }

    pub fn domain(&self) -> u8 {
        self.current_domain
    }

    /// Grant `perms` to `domain` over the page range covering
    /// `[addr, addr+len)`.
    pub fn protect(&mut self, domain: u8, addr: CabAddr, len: usize, perms: PagePerms) {
        assert!((domain as usize) < DOMAINS, "bad domain");
        let first = addr as usize / PAGE_SIZE;
        let last = (addr as usize + len.max(1) - 1) / PAGE_SIZE;
        for page in first..=last.min(DATA_MEMORY_SIZE / PAGE_SIZE - 1) {
            self.perms[domain as usize][page] = perms;
        }
    }

    fn check(&self, addr: CabAddr, len: usize, access: Access) -> Result<(), MemFault> {
        let end = addr as usize + len;
        if end > DATA_MEMORY_SIZE {
            return Err(MemFault::OutOfRange { addr, len });
        }
        if self.current_domain == 0 || len == 0 {
            return Ok(());
        }
        let first = addr as usize / PAGE_SIZE;
        let last = (end - 1) / PAGE_SIZE;
        for page in first..=last {
            if !self.perms[self.current_domain as usize][page].allows(access) {
                return Err(MemFault::Protection { addr, access, domain: self.current_domain });
            }
        }
        Ok(())
    }

    /// Protected read of `len` bytes at `addr`.
    pub fn read(&self, addr: CabAddr, len: usize) -> Result<&[u8], MemFault> {
        self.check(addr, len, Access::Read)?;
        Ok(&self.bytes[addr as usize..addr as usize + len])
    }

    /// Protected write at `addr`.
    pub fn write(&mut self, addr: CabAddr, data: &[u8]) -> Result<(), MemFault> {
        self.check(addr, data.len(), Access::Write)?;
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Unchecked system access (DMA engines bypass protection).
    pub fn dma_read(&self, addr: CabAddr, len: usize) -> &[u8] {
        &self.bytes[addr as usize..addr as usize + len]
    }

    /// Unchecked system write (DMA).
    pub fn dma_write(&mut self, addr: CabAddr, data: &[u8]) {
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }
}

/// A first-fit free-list heap over a region of data memory.
///
/// Allocation metadata is kept out-of-band (in this struct, not in the
/// byte array): the CAB's allocator kept headers in memory, but
/// modelling header corruption is not a goal of this reproduction, and
/// out-of-band metadata lets property tests state exact invariants
/// (no-overlap, full coalescing).
#[derive(Debug)]
pub struct Heap {
    base: CabAddr,
    size: usize,
    /// Free blocks as (offset, len), sorted by offset, fully coalesced.
    free: Vec<(u32, u32)>,
    /// Live allocations (offset → len) for double-free detection.
    live: std::collections::HashMap<u32, u32>,
    /// High-water mark of bytes in use.
    pub peak_in_use: usize,
    in_use: usize,
}

/// Allocation alignment: SPARC doubleword.
pub const ALIGN: usize = 8;

impl Heap {
    pub fn new(base: CabAddr, size: usize) -> Self {
        assert_eq!(base as usize % ALIGN, 0);
        Heap {
            base,
            size,
            free: vec![(base, size as u32)],
            live: std::collections::HashMap::new(),
            peak_in_use: 0,
            in_use: 0,
        }
    }

    pub fn bytes_free(&self) -> usize {
        self.free.iter().map(|&(_, l)| l as usize).sum()
    }

    pub fn bytes_in_use(&self) -> usize {
        self.in_use
    }

    fn round(len: usize) -> u32 {
        (((len.max(1)) + ALIGN - 1) & !(ALIGN - 1)) as u32
    }

    /// First-fit allocation. Returns the address or `None` when no
    /// block fits (the caller blocks, as Begin_Put does).
    pub fn alloc(&mut self, len: usize) -> Option<CabAddr> {
        let want = Self::round(len);
        let idx = self.free.iter().position(|&(_, flen)| flen >= want)?;
        let (off, flen) = self.free[idx];
        if flen == want {
            self.free.remove(idx);
        } else {
            self.free[idx] = (off + want, flen - want);
        }
        self.live.insert(off, want);
        self.in_use += want as usize;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        Some(off)
    }

    /// Free a previous allocation, coalescing with neighbours.
    /// Panics on double-free or foreign pointers — those are runtime
    /// bugs, not recoverable conditions.
    pub fn free(&mut self, addr: CabAddr) {
        let len = self.live.remove(&addr).expect("free of unallocated address");
        self.in_use -= len as usize;
        let at = self.free.partition_point(|&(off, _)| off < addr);
        // coalesce with successor
        let mut len = len;
        if at < self.free.len() && addr + len == self.free[at].0 {
            len += self.free[at].1;
            self.free.remove(at);
        }
        // coalesce with predecessor
        if at > 0 {
            let (poff, plen) = self.free[at - 1];
            if poff + plen == addr {
                self.free[at - 1] = (poff, plen + len);
                return;
            }
        }
        self.free.insert(at, (addr, len));
    }

    /// The size recorded for a live allocation.
    pub fn size_of(&self, addr: CabAddr) -> Option<usize> {
        self.live.get(&addr).map(|&l| l as usize)
    }

    /// Invariant check used by property tests: free list sorted,
    /// coalesced, in-range, and disjoint from live allocations.
    pub fn check_invariants(&self) {
        let mut prev_end = self.base;
        let mut first = true;
        for &(off, len) in &self.free {
            assert!(len > 0, "empty free block");
            assert!(off >= self.base && (off + len) as usize <= self.base as usize + self.size);
            if !first {
                assert!(off > prev_end, "free list unsorted or overlapping");
                assert!(off != prev_end, "uncoalesced adjacent free blocks");
            }
            prev_end = off + len;
            first = false;
        }
        // live allocations disjoint from free blocks
        for (&a, &l) in &self.live {
            for &(off, flen) in &self.free {
                assert!(a + l <= off || a >= off + flen, "live allocation overlaps free block");
            }
        }
        // accounting
        let total: usize = self.bytes_free() + self.in_use;
        assert_eq!(total, self.size, "bytes leaked or double-counted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = DataMemory::new();
        m.write(4096, b"payload").unwrap();
        assert_eq!(m.read(4096, 7).unwrap(), b"payload");
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = DataMemory::new();
        assert!(matches!(
            m.write(DATA_MEMORY_SIZE as u32 - 2, b"xyz"),
            Err(MemFault::OutOfRange { .. })
        ));
        assert!(matches!(m.read(DATA_MEMORY_SIZE as u32, 1), Err(MemFault::OutOfRange { .. })));
    }

    #[test]
    fn protection_domains_enforced() {
        let mut m = DataMemory::new();
        m.protect(1, 0, 2048, PagePerms::RO);
        m.protect(1, 2048, 1024, PagePerms::RW);
        m.set_domain(1);
        assert!(m.read(0, 100).is_ok());
        assert!(matches!(
            m.write(0, b"no"),
            Err(MemFault::Protection { access: Access::Write, domain: 1, .. })
        ));
        assert!(m.write(2048, b"yes").is_ok());
        // unmapped page: no access at all
        assert!(matches!(m.read(8192, 4), Err(MemFault::Protection { .. })));
        // spanning ranges check every page
        assert!(m.read(1500, 1000).is_err() || m.read(1500, 1000).is_ok());
        assert!(matches!(m.write(1500, &[0; 1000]), Err(MemFault::Protection { .. })));
        // system domain bypasses
        m.set_domain(0);
        assert!(m.write(0, b"sys").is_ok());
    }

    #[test]
    fn heap_alloc_free_coalesce() {
        let mut h = Heap::new(0, 1024);
        let a = h.alloc(100).unwrap();
        let b = h.alloc(100).unwrap();
        let c = h.alloc(100).unwrap();
        assert_ne!(a, b);
        assert_ne!(b, c);
        h.check_invariants();
        // free middle, then first, then last: must coalesce to one block
        h.free(b);
        h.check_invariants();
        h.free(a);
        h.check_invariants();
        h.free(c);
        h.check_invariants();
        assert_eq!(h.bytes_free(), 1024);
        assert_eq!(h.free.len(), 1);
    }

    #[test]
    fn heap_first_fit_reuses_holes() {
        let mut h = Heap::new(0, 1024);
        let a = h.alloc(128).unwrap();
        let _b = h.alloc(128).unwrap();
        h.free(a);
        let c = h.alloc(64).unwrap();
        assert_eq!(c, a, "first fit should reuse the first hole");
        h.check_invariants();
    }

    #[test]
    fn heap_exhaustion_returns_none() {
        let mut h = Heap::new(0, 256);
        assert!(h.alloc(300).is_none());
        let a = h.alloc(256).unwrap();
        assert!(h.alloc(1).is_none());
        h.free(a);
        assert!(h.alloc(1).is_some());
    }

    #[test]
    #[should_panic(expected = "free of unallocated")]
    fn heap_double_free_panics() {
        let mut h = Heap::new(0, 256);
        let a = h.alloc(8).unwrap();
        h.free(a);
        h.free(a);
    }

    #[test]
    fn heap_alignment() {
        let mut h = Heap::new(0, 1024);
        let a = h.alloc(3).unwrap();
        let b = h.alloc(5).unwrap();
        assert_eq!(a as usize % ALIGN, 0);
        assert_eq!(b as usize % ALIGN, 0);
        assert_eq!(h.size_of(a), Some(8));
        // zero-size allocations still get a slot
        let z = h.alloc(0).unwrap();
        assert_eq!(h.size_of(z), Some(8));
    }

    #[test]
    fn peak_tracking() {
        let mut h = Heap::new(0, 1024);
        let a = h.alloc(512).unwrap();
        h.free(a);
        let _ = h.alloc(8).unwrap();
        assert_eq!(h.peak_in_use, 512);
        assert_eq!(h.bytes_in_use(), 8);
    }
}
