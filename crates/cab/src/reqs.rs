//! Request/notification message layouts used between host processes
//! (or CAB application threads) and the protocol server threads.
//!
//! These are the contents of the well-known service mailboxes: a host
//! process invokes a transport by writing one of these messages into
//! the protocol's send-request mailbox (§4.2: "A user wishing to send
//! data on an established TCP connection places a request in the TCP
//! send-request mailbox"). All fields big-endian.

use crate::shared::MboxId;

/// Well-known mailbox ids, created in this order at CAB start-up.
pub const MB_DG_SEND: MboxId = 0;
pub const MB_RMP_SEND: MboxId = 1;
pub const MB_RR_SEND: MboxId = 2;
pub const MB_RR_REPLY: MboxId = 3;
pub const MB_TCP_CTL: MboxId = 4;
pub const MB_TCP_SEND: MboxId = 5;
pub const MB_UDP_CTL: MboxId = 6;
pub const MB_UDP_SEND: MboxId = 7;
/// IP input mailbox (interrupt → IP thread in ablation A1 mode).
pub const MB_IP_IN: MboxId = 8;
pub const MB_TCP_IN: MboxId = 9;
pub const MB_UDP_IN: MboxId = 10;
pub const MB_ICMP_IN: MboxId = 11;
/// Raw datalink frames for the network-device mode (§5.1).
pub const MB_RAW_IN: MboxId = 12;
/// Raw transmit requests from the network-device driver (§5.1).
pub const MB_RAW_SEND: MboxId = 13;
/// First mailbox id available to applications/Nectarine.
pub const FIRST_USER_MBOX: MboxId = 14;

fn u16be(b: &[u8], at: usize) -> u16 {
    u16::from_be_bytes([b[at], b[at + 1]])
}

fn u32be(b: &[u8], at: usize) -> u32 {
    u32::from_be_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

/// Send-request header for datagram and RMP: destination CAB +
/// mailbox, and the reply-hint source mailbox. 8 bytes, then payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendReq {
    pub dst_cab: u16,
    pub dst_mbox: u16,
    pub src_mbox: u16,
}

impl SendReq {
    pub const LEN: usize = 8;

    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut v = Vec::with_capacity(Self::LEN + payload.len());
        v.extend_from_slice(&self.dst_cab.to_be_bytes());
        v.extend_from_slice(&self.dst_mbox.to_be_bytes());
        v.extend_from_slice(&self.src_mbox.to_be_bytes());
        v.extend_from_slice(&[0, 0]);
        v.extend_from_slice(payload);
        v
    }

    pub fn decode(b: &[u8]) -> Option<(SendReq, &[u8])> {
        if b.len() < Self::LEN {
            return None;
        }
        Some((
            SendReq { dst_cab: u16be(b, 0), dst_mbox: u16be(b, 2), src_mbox: u16be(b, 4) },
            &b[Self::LEN..],
        ))
    }
}

/// Request-response call request: server address, the client's reply
/// mailbox, and a sync to receive the request id (0 = failed).
pub type RrCallReq = SendReq; // same shape: dst_cab, dst_mbox(server), src_mbox(reply)

/// Server reply submission: which service mailbox is replying, the
/// correlation triple, then the reply payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RrReplyReq {
    pub service_mbox: u16,
    pub client_cab: u16,
    pub reply_mbox: u16,
    pub req_id: u32,
}

impl RrReplyReq {
    pub const LEN: usize = 12;

    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut v = Vec::with_capacity(Self::LEN + payload.len());
        v.extend_from_slice(&self.service_mbox.to_be_bytes());
        v.extend_from_slice(&self.client_cab.to_be_bytes());
        v.extend_from_slice(&self.reply_mbox.to_be_bytes());
        v.extend_from_slice(&self.req_id.to_be_bytes());
        v.extend_from_slice(&[0, 0]);
        v.extend_from_slice(payload);
        v
    }

    pub fn decode(b: &[u8]) -> Option<(RrReplyReq, &[u8])> {
        if b.len() < Self::LEN {
            return None;
        }
        Some((
            RrReplyReq {
                service_mbox: u16be(b, 0),
                client_cab: u16be(b, 2),
                reply_mbox: u16be(b, 4),
                req_id: u32be(b, 6),
            },
            &b[Self::LEN..],
        ))
    }
}

/// The prefix prepended to a request delivered into an RR service
/// mailbox (what the server application sees).
pub const RR_DELIVER_PREFIX: usize = 8;

pub fn rr_deliver_encode(client_cab: u16, reply_mbox: u16, req_id: u32, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(RR_DELIVER_PREFIX + payload.len());
    v.extend_from_slice(&client_cab.to_be_bytes());
    v.extend_from_slice(&reply_mbox.to_be_bytes());
    v.extend_from_slice(&req_id.to_be_bytes());
    v.extend_from_slice(payload);
    v
}

pub fn rr_deliver_decode(b: &[u8]) -> Option<(u16, u16, u32, &[u8])> {
    if b.len() < RR_DELIVER_PREFIX {
        return None;
    }
    Some((u16be(b, 0), u16be(b, 2), u32be(b, 4), &b[RR_DELIVER_PREFIX..]))
}

/// The prefix of a response delivered into the client's reply mailbox.
pub const RR_RESPONSE_PREFIX: usize = 4;

pub fn rr_response_encode(req_id: u32, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(RR_RESPONSE_PREFIX + payload.len());
    v.extend_from_slice(&req_id.to_be_bytes());
    v.extend_from_slice(payload);
    v
}

pub fn rr_response_decode(b: &[u8]) -> Option<(u32, &[u8])> {
    if b.len() < RR_RESPONSE_PREFIX {
        return None;
    }
    Some((u32be(b, 0), &b[RR_RESPONSE_PREFIX..]))
}

/// TCP control operations (MB_TCP_CTL messages).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpCtl {
    /// Active open to (cab, port); data arrives in `recv_mbox`; the
    /// connection id (+1) is written to `reply_sync` when established,
    /// 0 on failure.
    Open { dst_cab: u16, port: u16, recv_mbox: MboxId, reply_sync: u16 },
    /// Listen on `port`; accept notifications go to `accept_mbox`.
    Listen { port: u16, accept_mbox: MboxId },
    /// Attach a receive mailbox to an accepted connection.
    Attach { conn: u16, recv_mbox: MboxId },
    /// Close the send side of a connection.
    Close { conn: u16 },
    /// Abort a connection.
    Abort { conn: u16 },
}

impl TcpCtl {
    pub fn encode(&self) -> Vec<u8> {
        match *self {
            TcpCtl::Open { dst_cab, port, recv_mbox, reply_sync } => {
                let mut v = vec![1u8, 0];
                v.extend_from_slice(&dst_cab.to_be_bytes());
                v.extend_from_slice(&port.to_be_bytes());
                v.extend_from_slice(&recv_mbox.to_be_bytes());
                v.extend_from_slice(&reply_sync.to_be_bytes());
                v
            }
            TcpCtl::Listen { port, accept_mbox } => {
                let mut v = vec![2u8, 0];
                v.extend_from_slice(&port.to_be_bytes());
                v.extend_from_slice(&accept_mbox.to_be_bytes());
                v
            }
            TcpCtl::Attach { conn, recv_mbox } => {
                let mut v = vec![3u8, 0];
                v.extend_from_slice(&conn.to_be_bytes());
                v.extend_from_slice(&recv_mbox.to_be_bytes());
                v
            }
            TcpCtl::Close { conn } => {
                let mut v = vec![4u8, 0];
                v.extend_from_slice(&conn.to_be_bytes());
                v
            }
            TcpCtl::Abort { conn } => {
                let mut v = vec![5u8, 0];
                v.extend_from_slice(&conn.to_be_bytes());
                v
            }
        }
    }

    pub fn decode(b: &[u8]) -> Option<TcpCtl> {
        match b.first()? {
            1 if b.len() >= 10 => Some(TcpCtl::Open {
                dst_cab: u16be(b, 2),
                port: u16be(b, 4),
                recv_mbox: u16be(b, 6),
                reply_sync: u16be(b, 8),
            }),
            2 if b.len() >= 6 => {
                Some(TcpCtl::Listen { port: u16be(b, 2), accept_mbox: u16be(b, 4) })
            }
            3 if b.len() >= 6 => Some(TcpCtl::Attach { conn: u16be(b, 2), recv_mbox: u16be(b, 4) }),
            4 if b.len() >= 4 => Some(TcpCtl::Close { conn: u16be(b, 2) }),
            5 if b.len() >= 4 => Some(TcpCtl::Abort { conn: u16be(b, 2) }),
            _ => None,
        }
    }
}

/// TCP send request: connection id then payload bytes.
pub fn tcp_send_encode(conn: u16, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(4 + payload.len());
    v.extend_from_slice(&conn.to_be_bytes());
    v.extend_from_slice(&[0, 0]);
    v.extend_from_slice(payload);
    v
}

pub fn tcp_send_decode(b: &[u8]) -> Option<(u16, &[u8])> {
    if b.len() < 4 {
        return None;
    }
    Some((u16be(b, 0), &b[4..]))
}

/// TCP accept notification delivered to the accept mailbox.
pub fn tcp_accept_encode(port: u16, conn: u16) -> Vec<u8> {
    let mut v = Vec::with_capacity(4);
    v.extend_from_slice(&port.to_be_bytes());
    v.extend_from_slice(&conn.to_be_bytes());
    v
}

pub fn tcp_accept_decode(b: &[u8]) -> Option<(u16, u16)> {
    if b.len() < 4 {
        return None;
    }
    Some((u16be(b, 0), u16be(b, 2)))
}

/// UDP control: bind a port to a receive mailbox.
pub fn udp_bind_encode(port: u16, recv_mbox: MboxId) -> Vec<u8> {
    let mut v = vec![1u8, 0];
    v.extend_from_slice(&port.to_be_bytes());
    v.extend_from_slice(&recv_mbox.to_be_bytes());
    v
}

pub fn udp_bind_decode(b: &[u8]) -> Option<(u16, MboxId)> {
    if b.len() >= 6 && b[0] == 1 {
        Some((u16be(b, 2), u16be(b, 4)))
    } else {
        None
    }
}

/// UDP send request: destination CAB + ports, then payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UdpSendReq {
    pub dst_cab: u16,
    pub src_port: u16,
    pub dst_port: u16,
}

impl UdpSendReq {
    pub const LEN: usize = 8;

    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut v = Vec::with_capacity(Self::LEN + payload.len());
        v.extend_from_slice(&self.dst_cab.to_be_bytes());
        v.extend_from_slice(&self.src_port.to_be_bytes());
        v.extend_from_slice(&self.dst_port.to_be_bytes());
        v.extend_from_slice(&[0, 0]);
        v.extend_from_slice(payload);
        v
    }

    pub fn decode(b: &[u8]) -> Option<(UdpSendReq, &[u8])> {
        if b.len() < Self::LEN {
            return None;
        }
        Some((
            UdpSendReq { dst_cab: u16be(b, 0), src_port: u16be(b, 2), dst_port: u16be(b, 4) },
            &b[Self::LEN..],
        ))
    }
}

/// Collective notification delivered into the application's registered
/// collective mailbox ([`crate::proto::ProtoState::coll_mbox`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CollNote {
    /// A multicast payload arrived for `group`.
    Deliver { group: u16, payload: Vec<u8> },
    /// Barrier/reduction `epoch` released with the combined `value`.
    Completed { group: u16, epoch: u32, value: u64 },
    /// The epoch's upstream report exhausted its retries.
    Failed { group: u16, epoch: u32 },
}

impl CollNote {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            CollNote::Deliver { group, payload } => {
                let mut v = vec![1u8, 0];
                v.extend_from_slice(&group.to_be_bytes());
                v.extend_from_slice(payload);
                v
            }
            CollNote::Completed { group, epoch, value } => {
                let mut v = vec![2u8, 0];
                v.extend_from_slice(&group.to_be_bytes());
                v.extend_from_slice(&epoch.to_be_bytes());
                v.extend_from_slice(&value.to_be_bytes());
                v
            }
            CollNote::Failed { group, epoch } => {
                let mut v = vec![3u8, 0];
                v.extend_from_slice(&group.to_be_bytes());
                v.extend_from_slice(&epoch.to_be_bytes());
                v
            }
        }
    }

    pub fn decode(b: &[u8]) -> Option<CollNote> {
        match b.first()? {
            1 if b.len() >= 4 => {
                Some(CollNote::Deliver { group: u16be(b, 2), payload: b[4..].to_vec() })
            }
            2 if b.len() >= 16 => Some(CollNote::Completed {
                group: u16be(b, 2),
                epoch: u32be(b, 4),
                value: u64::from_be_bytes(b[8..16].try_into().ok()?),
            }),
            3 if b.len() >= 8 => Some(CollNote::Failed { group: u16be(b, 2), epoch: u32be(b, 4) }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coll_note_roundtrip() {
        let notes = [
            CollNote::Deliver { group: 9, payload: b"phase".to_vec() },
            CollNote::Completed { group: 9, epoch: 3, value: u64::MAX - 1 },
            CollNote::Failed { group: 9, epoch: 7 },
        ];
        for n in notes {
            assert_eq!(CollNote::decode(&n.encode()), Some(n));
        }
        assert_eq!(CollNote::decode(&[]), None);
        assert_eq!(CollNote::decode(&[2, 0, 0, 9]), None); // truncated Completed
    }

    #[test]
    fn send_req_roundtrip() {
        let r = SendReq { dst_cab: 3, dst_mbox: 20, src_mbox: 21 };
        let bytes = r.encode(b"data");
        let (d, payload) = SendReq::decode(&bytes).unwrap();
        assert_eq!(d, r);
        assert_eq!(payload, b"data");
        assert!(SendReq::decode(&bytes[..4]).is_none());
    }

    #[test]
    fn rr_reply_roundtrip() {
        let r = RrReplyReq { service_mbox: 12, client_cab: 1, reply_mbox: 30, req_id: 99 };
        let bytes = r.encode(b"result");
        let (d, payload) = RrReplyReq::decode(&bytes).unwrap();
        assert_eq!(d, r);
        assert_eq!(payload, b"result");
    }

    #[test]
    fn rr_deliver_and_response_roundtrip() {
        let b = rr_deliver_encode(5, 31, 7, b"args");
        assert_eq!(rr_deliver_decode(&b), Some((5, 31, 7, &b"args"[..])));
        let b = rr_response_encode(7, b"out");
        assert_eq!(rr_response_decode(&b), Some((7, &b"out"[..])));
        assert!(rr_deliver_decode(&[0; 4]).is_none());
        assert!(rr_response_decode(&[0; 2]).is_none());
    }

    #[test]
    fn tcp_ctl_roundtrip() {
        for op in [
            TcpCtl::Open { dst_cab: 2, port: 80, recv_mbox: 15, reply_sync: 3 },
            TcpCtl::Listen { port: 80, accept_mbox: 16 },
            TcpCtl::Attach { conn: 4, recv_mbox: 17 },
            TcpCtl::Close { conn: 4 },
            TcpCtl::Abort { conn: 9 },
        ] {
            assert_eq!(TcpCtl::decode(&op.encode()), Some(op));
        }
        assert_eq!(TcpCtl::decode(&[9, 0, 0, 0]), None);
        assert_eq!(TcpCtl::decode(&[]), None);
    }

    #[test]
    fn tcp_send_and_accept_roundtrip() {
        let b = tcp_send_encode(7, b"bytes");
        assert_eq!(tcp_send_decode(&b), Some((7, &b"bytes"[..])));
        let b = tcp_accept_encode(80, 3);
        assert_eq!(tcp_accept_decode(&b), Some((80, 3)));
    }

    #[test]
    fn udp_roundtrips() {
        let b = udp_bind_encode(9000, 18);
        assert_eq!(udp_bind_decode(&b), Some((9000, 18)));
        let r = UdpSendReq { dst_cab: 2, src_port: 1000, dst_port: 2000 };
        let b = r.encode(b"dgram");
        let (d, p) = UdpSendReq::decode(&b).unwrap();
        assert_eq!(d, r);
        assert_eq!(p, b"dgram");
    }
}
