//! The CAB runtime system: threads, scheduler, interrupts, upcalls.
//!
//! §3.1 of the paper: "The basic CAB runtime system provides support
//! for multiprogramming (the threads package) and for buffering and
//! synchronization (the mailbox and sync modules). … The threads
//! package for the CAB was derived from the Mach C Threads package. It
//! provides forking and joining of threads, mutual exclusion using
//! locks, and synchronization by means of condition variables. …
//! The current scheduler uses a preemptive, priority-based scheme,
//! with system threads running at a higher priority than application
//! threads."
//!
//! ## Execution model
//!
//! Threads are event-driven state machines: the scheduler calls
//! [`CabThread::run`], the thread performs one *burst* of work
//! (charging simulated CPU time through its [`Cx`]) and returns a
//! [`Step`] saying whether it yields, blocks on a condition (with an
//! optional timeout), sleeps, or exits. Bursts are atomic: an
//! interrupt arriving mid-burst is serviced when the burst ends, which
//! models the interrupt-masked critical sections §3.1 discusses. The
//! 20 µs context-switch cost is charged whenever the CPU switches to a
//! different thread than it last ran.
//!
//! Interrupt handlers and mailbox reader upcalls run at effectively
//! higher priority than all threads: the scheduler services pending
//! interrupts first, then upcalls, then the highest-priority runnable
//! thread.

use nectar_sim::{SimDuration, SimTime, Trace};
use nectar_wire::datalink::{DatalinkProto, Frame};
use nectar_wire::route::Route;

use crate::costs::{CostModel, LinkModel};
use crate::proto::ProtoState;
use crate::shared::{CabShared, CondId, MboxId, MsgRef, UpcallId, WouldBlock};

/// Thread identifier within one CAB.
pub type ThreadId = u16;

/// System threads (protocol servers) run above application threads
/// (§3.1).
pub const PRIO_SYSTEM: u8 = 8;
/// Default application thread priority.
pub const PRIO_APP: u8 = 4;

/// What a thread's burst ended with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Still runnable; the scheduler may run others first.
    Yield,
    /// Wait until the condition is signalled.
    Block(CondId),
    /// Wait until the condition is signalled or the deadline passes.
    BlockTimeout(CondId, SimTime),
    /// Wait until the deadline passes.
    Sleep(SimTime),
    /// Thread exits; joiners are woken.
    Done,
}

/// A CAB thread body. Implementations are resumable state machines:
/// `run` is called for each burst and must tolerate spurious wakeups
/// (re-check the condition, block again).
pub trait CabThread {
    fn run(&mut self, cx: &mut Cx<'_>) -> Step;
    fn name(&self) -> &'static str {
        "thread"
    }
}

/// A mailbox reader upcall (§3.3): invoked as a side effect of
/// End_Put, replacing a context switch with a local call.
pub trait Upcall {
    fn on_message(&mut self, cx: &mut Cx<'_>, mbox: MboxId);
    fn name(&self) -> &'static str {
        "upcall"
    }
}

/// Effects a CAB burst produces for the outside world.
#[derive(Debug)]
pub enum CabEffect {
    /// A frame leaves on the outgoing fiber; its first byte is on the
    /// wire at `first_byte` (DMA may start after the CPU burst that
    /// queued it, if the fiber was busy).
    Transmit { frame: Frame, first_byte: SimTime },
    /// Raise the VME interrupt towards the host (host signal queue has
    /// entries).
    InterruptHost,
}

/// Per-CAB datalink transmit state: source routes and fiber occupancy.
#[derive(Debug)]
pub struct NetPort {
    /// Source route to every reachable CAB (computed by the topology
    /// layer at network build time — §2.1 source routing).
    pub routes: std::collections::HashMap<u16, Route>,
    /// The outgoing fiber is serializing until this instant.
    pub tx_busy_until: SimTime,
    pub link: LinkModel,
    /// Frames dropped because no route was known.
    pub no_route_drops: u64,
    /// Frames handed to the fiber DMA.
    pub tx_frames: u64,
    /// Wire bytes handed to the fiber DMA.
    pub tx_bytes: u64,
}

impl NetPort {
    pub fn new(link: LinkModel) -> Self {
        NetPort {
            routes: std::collections::HashMap::new(),
            tx_busy_until: SimTime::ZERO,
            link,
            no_route_drops: 0,
            tx_frames: 0,
            tx_bytes: 0,
        }
    }
}

/// Mutual exclusion locks (C Threads parity). With burst-atomic
/// execution a critical section within one burst never contends, but
/// locks held *across* bursts (e.g. a thread blocking mid-update) are
/// real and these locks provide them.
#[derive(Debug, Default)]
pub struct MutexTable {
    locks: Vec<MutexSlot>,
}

#[derive(Debug)]
struct MutexSlot {
    owner: Option<ThreadId>,
    cond: CondId,
}

/// Mutex identifier.
pub type MutexId = u16;

/// The execution context handed to thread bursts, upcalls and
/// interrupt handlers. All runtime services — time charging, mailbox
/// and sync operations with their CPU costs, datalink transmission,
/// tracing — go through here.
pub struct Cx<'a> {
    pub cab_id: u16,
    /// The thread currently executing (interrupt/upcall context uses
    /// `None`).
    pub cur_thread: Option<ThreadId>,
    pub(crate) t0: SimTime,
    pub(crate) charged: SimDuration,
    pub shared: &'a mut CabShared,
    pub proto: &'a mut ProtoState,
    pub costs: &'a CostModel,
    pub net: &'a mut NetPort,
    pub mutexes: &'a mut MutexTable,
    pub fx: &'a mut Vec<CabEffect>,
    pub trace: &'a mut Trace,
}

impl<'a> Cx<'a> {
    /// Current simulated time within this burst.
    pub fn now(&self) -> SimTime {
        self.t0 + self.charged
    }

    /// Account simulated CPU time.
    pub fn charge(&mut self, d: SimDuration) {
        self.charged += d;
    }

    /// Total time charged by this burst so far.
    pub fn charged(&self) -> SimDuration {
        self.charged
    }

    /// Record a trace stamp at the current instant.
    pub fn stamp(&mut self, tag: &'static str, info: u64) {
        let now = self.now();
        let node = self.cab_id as u32;
        self.trace.stamp(now, node, tag, info);
    }

    // ------------------------------------------------------------------
    // mailbox operations with CPU costs
    // ------------------------------------------------------------------

    pub fn begin_put(&mut self, mbox: MboxId, size: usize) -> Result<MsgRef, WouldBlock> {
        self.charge(self.costs.mbox_begin_put);
        self.shared.begin_put(mbox, size)
    }

    pub fn end_put(&mut self, mbox: MboxId, msg: MsgRef) {
        self.charge(self.costs.mbox_end_put);
        self.shared.end_put(mbox, msg);
    }

    /// Whether a mailbox has queued messages. A plain read of the
    /// count word in CAB memory — no Begin_Get transaction, so no
    /// mailbox-op charge. Lets a thread serving many mailboxes skip
    /// the empty ones instead of paying a failed Begin_Get on each
    /// (the select()-before-read idiom).
    pub fn mbox_pending(&self, mbox: MboxId) -> bool {
        !self.shared.mailboxes[mbox as usize].queue.is_empty()
    }

    /// The condition a Begin_Get reader of this mailbox waits on. Pair
    /// with [`Cx::mbox_pending`]: check the queue, and when it is empty
    /// block here directly instead of discovering emptiness through a
    /// charged Begin_Get.
    pub fn mbox_cond(&self, mbox: MboxId) -> CondId {
        self.shared.mailboxes[mbox as usize].reader_cond
    }

    pub fn begin_get(&mut self, mbox: MboxId) -> Result<MsgRef, WouldBlock> {
        self.charge(self.costs.mbox_begin_get);
        self.shared.begin_get(mbox)
    }

    pub fn end_get(&mut self, mbox: MboxId, msg: MsgRef) {
        self.charge(self.costs.mbox_end_get);
        self.shared.end_get(mbox, msg);
    }

    pub fn enqueue(&mut self, msg: MsgRef, to: MboxId) {
        self.charge(self.costs.mbox_enqueue);
        self.shared.enqueue(msg, to);
    }

    /// Write a full message into a mailbox in one call (allocate, fill,
    /// publish). The per-byte fill is a CAB-local memory copy; the
    /// charge models the store loop at one word per ~3 cycles.
    pub fn put_message(&mut self, mbox: MboxId, bytes: &[u8]) -> Result<u32, WouldBlock> {
        let msg = self.begin_put(mbox, bytes.len())?;
        self.charge(SimDuration::from_nanos(45) * (bytes.len() as u64 / 4 + 1));
        self.shared.msg_write(&msg, 0, bytes);
        let id = msg.msg_id;
        self.end_put(mbox, msg);
        Ok(id)
    }

    // ------------------------------------------------------------------
    // syncs
    // ------------------------------------------------------------------

    pub fn sync_write(&mut self, id: crate::shared::SyncId, value: u32) {
        self.charge(self.costs.sync_op);
        let now = self.now();
        self.shared.sync_write_at(id, value, now);
    }

    pub fn sync_read(&mut self, id: crate::shared::SyncId) -> Option<u32> {
        self.charge(self.costs.sync_op);
        let now = self.now();
        self.shared.sync_read_at(id, now)
    }

    // ------------------------------------------------------------------
    // mutexes
    // ------------------------------------------------------------------

    /// Try to acquire; on contention returns the condition to block on.
    pub fn mutex_lock(&mut self, m: MutexId) -> Result<(), CondId> {
        let tid = self.cur_thread.expect("mutexes are thread-context only");
        let slot = &mut self.mutexes.locks[m as usize];
        match slot.owner {
            None => {
                slot.owner = Some(tid);
                Ok(())
            }
            Some(owner) if owner == tid => Ok(()), // re-entrant
            Some(_) => Err(slot.cond),
        }
    }

    pub fn mutex_unlock(&mut self, m: MutexId) {
        let tid = self.cur_thread.expect("mutexes are thread-context only");
        let slot = &mut self.mutexes.locks[m as usize];
        assert_eq!(slot.owner, Some(tid), "unlock by non-owner");
        slot.owner = None;
        let cond = slot.cond;
        self.shared.notices.wake_conds.push(cond);
    }

    // ------------------------------------------------------------------
    // datalink transmit
    // ------------------------------------------------------------------

    /// Send a transport packet to another CAB over the fiber. Charges
    /// the datalink + DMA setup CPU cost; serialization itself happens
    /// on the (DMA-driven) fiber, overlapping further CPU work.
    pub fn datalink_send(
        &mut self,
        dst_cab: u16,
        proto: DatalinkProto,
        msg_id: u32,
        payload: &[u8],
    ) -> bool {
        self.charge(self.costs.datalink);
        self.charge(self.costs.dma_setup);
        let Some(route) = self.net.routes.get(&dst_cab) else {
            self.net.no_route_drops += 1;
            return false;
        };
        let header = nectar_wire::datalink::DatalinkHeader {
            dst_cab,
            src_cab: self.cab_id,
            proto,
            flags: 0,
            payload_len: 0, // filled by build
            msg_id,
        };
        let frame = Frame::build(route, header, payload);
        self.stamp("cab_datalink_tx", msg_id as u64);
        self.net.tx_frames += 1;
        self.net.tx_bytes += frame.wire_len() as u64;
        let ser = SimDuration::serialization(frame.wire_len(), self.net.link.fiber_bits_per_sec);
        let first_byte = self.now().max(self.net.tx_busy_until);
        self.net.tx_busy_until = first_byte + ser;
        self.fx.push(CabEffect::Transmit { frame, first_byte });
        true
    }

    /// Like [`Cx::datalink_send`], but the payload is an existing
    /// [`FrameBuf`] replicated without copying: only a fresh route +
    /// header head is allocated and the payload backing is shared
    /// across every replica ([`Frame::build_shared`]). This is the
    /// multicast fan-out path — the DMA engine reads the one shared
    /// buffer per outgoing branch, as the CAB's single frame memory
    /// did.
    pub fn datalink_send_shared(
        &mut self,
        dst_cab: u16,
        proto: DatalinkProto,
        msg_id: u32,
        payload: &nectar_wire::FrameBuf,
    ) -> bool {
        self.charge(self.costs.datalink);
        self.charge(self.costs.dma_setup);
        let Some(route) = self.net.routes.get(&dst_cab) else {
            self.net.no_route_drops += 1;
            return false;
        };
        let header = nectar_wire::datalink::DatalinkHeader {
            dst_cab,
            src_cab: self.cab_id,
            proto,
            flags: 0,
            payload_len: 0, // filled by build_shared
            msg_id,
        };
        let frame = Frame::build_shared(route, header, payload);
        self.stamp("cab_datalink_tx", msg_id as u64);
        self.net.tx_frames += 1;
        self.net.tx_bytes += frame.wire_len() as u64;
        let ser = SimDuration::serialization(frame.wire_len(), self.net.link.fiber_bits_per_sec);
        let first_byte = self.now().max(self.net.tx_busy_until);
        self.net.tx_busy_until = first_byte + ser;
        self.fx.push(CabEffect::Transmit { frame, first_byte });
        true
    }

    /// Loopback check: is this CAB the destination?
    pub fn is_local(&self, dst_cab: u16) -> bool {
        dst_cab == self.cab_id
    }
}

// ----------------------------------------------------------------------
// scheduler
// ----------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    Blocked { cond: CondId, timeout: Option<SimTime> },
    Sleeping(SimTime),
    Done,
}

struct ThreadSlot {
    thread: Option<Box<dyn CabThread>>,
    state: ThreadState,
    priority: u8,
    /// Threads waiting to join this one.
    join_cond: CondId,
}

/// Kinds of pending interrupt work, ordered by arrival time.
#[derive(Clone, Copy, Debug)]
pub(crate) enum PendingIntr {
    /// First byte of a frame reached the input FIFO.
    StartOfPacket(u32),
    /// Last byte arrived; CRC is checked and DMA completes.
    EndOfPacket(u32),
    /// The host posted to the CAB signal queue.
    HostSignal,
}

/// Scheduler + interrupt state for one CAB.
pub struct Runtime {
    threads: Vec<ThreadSlot>,
    last_thread: Option<ThreadId>,
    /// Round-robin rotation point within a priority level.
    rr_next: ThreadId,
    pub(crate) intr_queue: Vec<(SimTime, u64, PendingIntr)>,
    intr_seq: u64,
    pending_upcalls: std::collections::VecDeque<(UpcallId, MboxId)>,
    upcalls: Vec<Option<Box<dyn Upcall>>>,
    /// CPU busy-until.
    pub cursor: SimTime,
    /// Interrupts masked (while an interrupt handler runs, implicitly;
    /// this flag is for threads that explicitly disable them).
    pub ctx_switches: u64,
    pub interrupts_taken: u64,
    /// Frame events handled under another interrupt's entry (interrupt
    /// moderation, [`Config::doorbell_coalesce`]): each one saved an
    /// interrupt entry/exit.
    pub interrupts_coalesced: u64,
    pub upcalls_run: u64,
    /// Total CPU time charged across every burst — the serial-resource
    /// busy-time meter (`node/<id>/cab/cpu_busy_ns`).
    pub cpu_busy: SimDuration,
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl Runtime {
    pub fn new() -> Self {
        Runtime {
            threads: Vec::new(),
            last_thread: None,
            rr_next: 0,
            intr_queue: Vec::new(),
            intr_seq: 0,
            pending_upcalls: std::collections::VecDeque::new(),
            upcalls: Vec::new(),
            cursor: SimTime::ZERO,
            ctx_switches: 0,
            interrupts_taken: 0,
            interrupts_coalesced: 0,
            upcalls_run: 0,
            cpu_busy: SimDuration::ZERO,
        }
    }

    /// Fork a thread (C Threads `cthread_fork`).
    pub fn fork(
        &mut self,
        shared: &mut CabShared,
        thread: Box<dyn CabThread>,
        priority: u8,
    ) -> ThreadId {
        let join_cond = shared.alloc_cond();
        self.threads.push(ThreadSlot {
            thread: Some(thread),
            state: ThreadState::Runnable,
            priority,
            join_cond,
        });
        (self.threads.len() - 1) as ThreadId
    }

    /// The condition signalled when a thread exits (C Threads
    /// `cthread_join` blocks on this).
    pub fn join_cond(&self, tid: ThreadId) -> CondId {
        self.threads[tid as usize].join_cond
    }

    /// True once the thread has exited.
    pub fn is_done(&self, tid: ThreadId) -> bool {
        self.threads[tid as usize].state == ThreadState::Done
    }

    /// Register an upcall handler; returns its id for
    /// [`CabShared::set_upcall`].
    pub fn register_upcall(&mut self, u: Box<dyn Upcall>) -> UpcallId {
        self.upcalls.push(Some(u));
        (self.upcalls.len() - 1) as UpcallId
    }

    /// Create a mutex.
    pub fn create_mutex(&mut self, shared: &mut CabShared, table: &mut MutexTable) -> MutexId {
        let cond = shared.alloc_cond();
        table.locks.push(MutexSlot { owner: None, cond });
        (table.locks.len() - 1) as MutexId
    }

    pub(crate) fn post_interrupt(&mut self, at: SimTime, kind: PendingIntr) {
        self.intr_queue.push((at, self.intr_seq, kind));
        self.intr_seq += 1;
    }

    /// Wake every thread blocked on `cond`.
    pub(crate) fn wake_cond(&mut self, cond: CondId) {
        for slot in &mut self.threads {
            if let ThreadState::Blocked { cond: c, .. } = slot.state {
                if c == cond {
                    slot.state = ThreadState::Runnable;
                }
            }
        }
    }

    pub(crate) fn queue_upcall(&mut self, u: UpcallId, mbox: MboxId) {
        self.pending_upcalls.push_back((u, mbox));
    }

    /// Wake one specific blocked thread (the board's timer interrupt
    /// for shared-stack deadlines armed outside the thread itself).
    /// Spurious for the cond the thread waits on — thread bodies
    /// re-check their state on every burst, so this is safe.
    pub(crate) fn wake_thread_if_blocked(&mut self, tid: ThreadId) {
        if let Some(slot) = self.threads.get_mut(tid as usize) {
            if matches!(slot.state, ThreadState::Blocked { .. }) {
                slot.state = ThreadState::Runnable;
            }
        }
    }

    /// Wake sleeping / timed-out threads whose deadline has passed.
    pub(crate) fn apply_timeouts(&mut self, t: SimTime) {
        for slot in &mut self.threads {
            match slot.state {
                ThreadState::Sleeping(d) if d <= t => slot.state = ThreadState::Runnable,
                ThreadState::Blocked { timeout: Some(d), .. } if d <= t => {
                    slot.state = ThreadState::Runnable
                }
                _ => {}
            }
        }
    }

    /// Earliest due interrupt at or before `t`, if any.
    pub(crate) fn pop_due_interrupt(&mut self, t: SimTime) -> Option<PendingIntr> {
        let idx = self
            .intr_queue
            .iter()
            .enumerate()
            .filter(|(_, &(at, _, _))| at <= t)
            .min_by_key(|(_, &(at, seq, _))| (at, seq))
            .map(|(i, _)| i)?;
        Some(self.intr_queue.remove(idx).2)
    }

    /// Earliest due *network* interrupt (start/end-of-packet) at or
    /// before `t` — the interrupt-moderation drain: while one network
    /// interrupt is being serviced, every frame event already due can
    /// be handled under the same interrupt entry.
    pub(crate) fn pop_due_net_interrupt(&mut self, t: SimTime) -> Option<PendingIntr> {
        let idx = self
            .intr_queue
            .iter()
            .enumerate()
            .filter(|(_, &(at, _, k))| {
                at <= t && matches!(k, PendingIntr::StartOfPacket(_) | PendingIntr::EndOfPacket(_))
            })
            .min_by_key(|(_, &(at, seq, _))| (at, seq))
            .map(|(i, _)| i)?;
        Some(self.intr_queue.remove(idx).2)
    }

    pub(crate) fn pop_upcall(&mut self) -> Option<(UpcallId, MboxId)> {
        self.pending_upcalls.pop_front()
    }

    pub(crate) fn take_upcall_handler(&mut self, u: UpcallId) -> Option<Box<dyn Upcall>> {
        self.upcalls.get_mut(u as usize).and_then(|s| s.take())
    }

    pub(crate) fn put_upcall_handler(&mut self, u: UpcallId, h: Box<dyn Upcall>) {
        self.upcalls[u as usize] = Some(h);
    }

    /// Pick the next thread: highest priority first, round-robin within
    /// a level (the rotation point advances on every pick).
    pub(crate) fn pick_thread(&mut self) -> Option<ThreadId> {
        let n = self.threads.len();
        let mut best: Option<(u8, ThreadId)> = None;
        for off in 0..n {
            let tid = ((self.rr_next as usize + off) % n) as ThreadId;
            let slot = &self.threads[tid as usize];
            if slot.state == ThreadState::Runnable {
                match best {
                    Some((p, _)) if p >= slot.priority => {}
                    _ => best = Some((slot.priority, tid)),
                }
            }
        }
        let (_, tid) = best?;
        self.rr_next = (tid + 1) % n.max(1) as ThreadId;
        Some(tid)
    }

    pub(crate) fn take_thread(&mut self, tid: ThreadId) -> Box<dyn CabThread> {
        self.threads[tid as usize].thread.take().expect("thread in flight")
    }

    pub(crate) fn finish_thread_burst(
        &mut self,
        tid: ThreadId,
        body: Box<dyn CabThread>,
        step: Step,
        shared: &mut CabShared,
    ) {
        let slot = &mut self.threads[tid as usize];
        slot.thread = Some(body);
        slot.state = match step {
            Step::Yield => ThreadState::Runnable,
            Step::Block(c) => ThreadState::Blocked { cond: c, timeout: None },
            Step::BlockTimeout(c, t) => ThreadState::Blocked { cond: c, timeout: Some(t) },
            Step::Sleep(t) => ThreadState::Sleeping(t),
            Step::Done => ThreadState::Done,
        };
        if step == Step::Done {
            let jc = slot.join_cond;
            shared.notices.wake_conds.push(jc);
        }
        if self.last_thread != Some(tid) {
            self.ctx_switches += 1;
        }
        self.last_thread = Some(tid);
    }

    /// Was the previous burst by a different thread? (context-switch
    /// charge decision, made *before* running).
    pub(crate) fn needs_ctx_switch(&self, tid: ThreadId) -> bool {
        self.last_thread != Some(tid)
    }

    /// The earliest future instant at which this runtime has work,
    /// given no external input: pending interrupts, timeouts, or
    /// runnable threads (which mean "now").
    pub(crate) fn next_internal_work(&self, after: SimTime) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            next = Some(match next {
                None => t,
                Some(n) => n.min(t),
            });
        };
        if !self.pending_upcalls.is_empty() {
            consider(after);
        }
        for &(at, _, _) in &self.intr_queue {
            consider(at.max(after));
        }
        for slot in &self.threads {
            match slot.state {
                ThreadState::Runnable => consider(after),
                ThreadState::Sleeping(d) => consider(d.max(after)),
                ThreadState::Blocked { timeout: Some(d), .. } => consider(d.max(after)),
                _ => {}
            }
        }
        next
    }
}
