//! Regression tests for request-response client binding semantics
//! under multi-client contention, flushed out by the load harness
//! (many clients sharing one CAB, each with its own reply mailbox).
//!
//! A reply mailbox binds to exactly one `(cab, service mailbox)`:
//! replies on the wire carry only `(reply_mbox, req_id)`, so two
//! servers sharing one reply mailbox would collide on request ids.
//! `rr_call` must therefore refuse to redirect a busy mailbox, and
//! must *rebind* (not silently reuse the stale server address) once
//! the mailbox is idle.

use std::cell::RefCell;
use std::rc::Rc;

use nectar_cab::proto::rr_call;
use nectar_cab::reqs::SendReq;
use nectar_cab::{
    Cab, CabEffect, CabThread, CostModel, Cx, HostOpMode, LinkModel, Step, StepStatus, WouldBlock,
};
use nectar_sim::{SimDuration, SimTime, Trace};
use nectar_stack::tcp::TcpConfig;
use nectar_wire::datalink::{DatalinkHeader, DatalinkProto, Frame};
use nectar_wire::nectar::{ReqRespHeader, ReqRespKind};
use nectar_wire::route::Route;

fn cab() -> Cab {
    let mut c =
        Cab::new(0, CostModel::default(), LinkModel::default(), TcpConfig::default(), 8192, 1);
    c.set_route(1, Route::new(vec![1]));
    c.set_route(2, Route::new(vec![2]));
    c
}

/// Run until idle, collecting transmitted frames' destination CABs.
fn run_to_idle(c: &mut Cab, start: SimTime, dsts: &mut Vec<u16>) -> SimTime {
    let mut trace = Trace::new();
    let mut now = start;
    for _ in 0..100_000 {
        let (fx, status) = c.step(now, &mut trace);
        for e in fx {
            if let CabEffect::Transmit { frame, .. } = e {
                dsts.push(frame.parse_header().unwrap().dst_cab);
            }
        }
        match status {
            StepStatus::Ran { next } => now = next,
            StepStatus::Idle { next: Some(next) } if next <= now => {
                now += SimDuration::from_nanos(1)
            }
            StepStatus::Idle { .. } => return now,
        }
    }
    panic!("cab never went idle");
}

type Ids = Rc<RefCell<Vec<u32>>>;

/// Issues three calls in one burst: server A from mailbox `mb`, then
/// server B from the same still-busy mailbox (must be refused), then
/// server B from a fresh mailbox (must succeed).
struct BusyCaller {
    ids: Ids,
    ran: bool,
}

impl CabThread for BusyCaller {
    fn run(&mut self, cx: &mut Cx<'_>) -> Step {
        if self.ran {
            return Step::Done;
        }
        self.ran = true;
        let mb = cx.shared.create_mailbox(false, HostOpMode::SharedMemory);
        let mb2 = cx.shared.create_mailbox(false, HostOpMode::SharedMemory);
        let a = rr_call(cx, SendReq { dst_cab: 1, dst_mbox: 20, src_mbox: mb }, b"to-a");
        // same mailbox, different server, call still outstanding
        let refused = rr_call(cx, SendReq { dst_cab: 2, dst_mbox: 21, src_mbox: mb }, b"to-b");
        let b = rr_call(cx, SendReq { dst_cab: 2, dst_mbox: 21, src_mbox: mb2 }, b"to-b");
        self.ids.borrow_mut().extend([a, refused, b]);
        Step::Done
    }
}

#[test]
fn rr_call_refuses_rebinding_a_busy_reply_mailbox() {
    let mut c = cab();
    let mut dsts = Vec::new();
    let t0 = run_to_idle(&mut c, SimTime::ZERO, &mut dsts);
    let ids: Ids = Rc::new(RefCell::new(Vec::new()));
    c.fork_app(Box::new(BusyCaller { ids: ids.clone(), ran: false }));
    let bad_before = c.proto.stats.bad_requests;
    run_to_idle(&mut c, t0 + SimDuration::from_nanos(1), &mut dsts);
    let ids = ids.borrow();
    assert_ne!(ids[0], 0, "first call must be accepted");
    assert_eq!(ids[1], 0, "redirect of a busy reply mailbox must be refused");
    assert_ne!(ids[2], 0, "fresh mailbox to the second server must be accepted");
    assert_eq!(c.proto.stats.bad_requests, bad_before + 1);
    // exactly one request frame per accepted call, none for the refusal
    assert_eq!(dsts, vec![1, 2]);
}

/// Calls server A, waits for the reply, then calls server B from the
/// same (now idle) mailbox. The second request must go to B.
struct RebindCaller {
    mb: u16,
    phase: u8,
    ids: Ids,
}

impl CabThread for RebindCaller {
    fn run(&mut self, cx: &mut Cx<'_>) -> Step {
        match self.phase {
            0 => {
                self.mb = cx.shared.create_mailbox(false, HostOpMode::SharedMemory);
                let id =
                    rr_call(cx, SendReq { dst_cab: 1, dst_mbox: 20, src_mbox: self.mb }, b"to-a");
                self.ids.borrow_mut().push(id);
                self.phase = 1;
                Step::Yield
            }
            1 => match cx.begin_get(self.mb) {
                Ok(msg) => {
                    cx.end_get(self.mb, msg);
                    self.phase = 2;
                    let id = rr_call(
                        cx,
                        SendReq { dst_cab: 2, dst_mbox: 21, src_mbox: self.mb },
                        b"to-b",
                    );
                    self.ids.borrow_mut().push(id);
                    Step::Done
                }
                Err(WouldBlock::Empty(c)) | Err(WouldBlock::NoSpace(c)) => Step::Block(c),
            },
            _ => Step::Done,
        }
    }
}

#[test]
fn rr_call_rebinds_an_idle_reply_mailbox_to_the_new_server() {
    let mut c = cab();
    let mut dsts = Vec::new();
    let t0 = run_to_idle(&mut c, SimTime::ZERO, &mut dsts);
    let ids: Ids = Rc::new(RefCell::new(Vec::new()));
    c.fork_app(Box::new(RebindCaller { mb: 0, phase: 0, ids: ids.clone() }));
    let t1 = run_to_idle(&mut c, t0 + SimDuration::from_nanos(1), &mut dsts);
    assert_eq!(dsts, vec![1], "first request transmitted to server A");
    let req_id = ids.borrow()[0];
    assert_ne!(req_id, 0);
    // hand-carry server A's reply back to the client's mailbox
    let reply_mbox = {
        // the client thread created its mailbox after boot; recover it
        // from the request frame is not possible here, so replicate the
        // wire format the server would use: dst_mbox is the reply mbox.
        // The client is the only RR client on this CAB.
        let mut mbs: Vec<u16> = c.proto.rr_clients.keys().copied().collect();
        assert_eq!(mbs.len(), 1);
        mbs.pop().unwrap()
    };
    let pkt =
        ReqRespHeader { kind: ReqRespKind::Reply, dst_mbox: reply_mbox, reply_mbox: 0, req_id }
            .build(b"reply-from-a");
    let hdr = DatalinkHeader {
        dst_cab: 0,
        src_cab: 1,
        proto: DatalinkProto::ReqResp,
        flags: 0,
        payload_len: 0,
        msg_id: 0,
    };
    let frame = Frame::build(&Route::empty(), hdr, &pkt);
    dsts.clear();
    c.deliver_frame(t1, frame);
    run_to_idle(&mut c, t1 + SimDuration::from_nanos(1), &mut dsts);
    let ids = ids.borrow();
    assert_eq!(ids.len(), 2, "second call issued after the reply");
    assert_ne!(ids[1], 0, "idle mailbox must rebind, not be refused");
    // the ReplyAck goes to server A (cab 1); the new request must go to
    // server B (cab 2) — before the fix the stale client sent it to A.
    assert!(dsts.contains(&2), "rebound request must reach server B, got {dsts:?}");
    assert_eq!(
        dsts.iter().filter(|&&d| d == 1).count(),
        1,
        "only the ReplyAck goes to server A, got {dsts:?}"
    );
}
