//! Property tests on the CAB heap allocator: the invariants the
//! mailbox buffer manager depends on (§3.3: "buffer space for messages
//! is allocated from a common heap").

use nectar_sim::check;

use nectar_cab::memory::{Heap, ALIGN};

#[derive(Clone, Debug)]
enum Op {
    Alloc(usize),
    Free(usize), // index into live allocations, modulo
}

fn ops(g: &mut check::Gen) -> Vec<Op> {
    let n = g.usize_in(1, 200);
    (0..n)
        .map(|_| {
            if g.rng.chance(0.5) {
                Op::Alloc(g.usize_in(1, 5000))
            } else {
                Op::Free(g.usize_in(0, 64))
            }
        })
        .collect()
}

/// After any sequence of allocs and frees: the free list stays
/// sorted, coalesced and disjoint from live allocations; no bytes
/// leak; allocations never overlap and respect alignment.
#[test]
fn heap_invariants_hold_under_churn() {
    check::cases(128, |g| {
        let ops = ops(g);
        let size = 64 * 1024;
        let mut h = Heap::new(0, size);
        let mut live: Vec<(u32, usize)> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(n) => {
                    if let Some(addr) = h.alloc(n) {
                        assert_eq!(addr as usize % ALIGN, 0);
                        // no overlap with any live allocation
                        let len = h.size_of(addr).unwrap();
                        for &(a, l) in &live {
                            assert!(
                                addr as usize + len <= a as usize
                                    || a as usize + l <= addr as usize,
                                "overlap: new ({addr},{len}) vs live ({a},{l})"
                            );
                        }
                        live.push((addr, len));
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (addr, _) = live.swap_remove(i % live.len());
                        h.free(addr);
                    }
                }
            }
            h.check_invariants();
        }
        // free everything: the heap must return to one maximal block
        for (addr, _) in live.drain(..) {
            h.free(addr);
        }
        h.check_invariants();
        assert_eq!(h.bytes_free(), size);
        assert_eq!(h.bytes_in_use(), 0);
    });
}

/// Writes through one allocation never corrupt another.
#[test]
fn allocations_do_not_alias() {
    use nectar_cab::memory::DataMemory;
    check::cases(128, |g| {
        let count = g.usize_in(2, 30);
        let sizes: Vec<usize> = (0..count).map(|_| g.usize_in(1, 600)).collect();
        let mut mem = DataMemory::new();
        let mut h = Heap::new(65536, 64 * 1024);
        let mut allocs = Vec::new();
        for (i, &n) in sizes.iter().enumerate() {
            if let Some(addr) = h.alloc(n) {
                let fill = vec![(i as u8).wrapping_mul(37).wrapping_add(1); n];
                mem.dma_write(addr, &fill);
                allocs.push((addr, fill));
            }
        }
        for (addr, fill) in &allocs {
            assert_eq!(mem.dma_read(*addr, fill.len()), &fill[..]);
        }
    });
}
