//! Runtime-system semantics: the C-Threads-derived behaviours §3.1
//! promises — priority scheduling, preemption of application threads
//! by system threads, fork/join, condition variables with timeouts,
//! and mutual exclusion.

use std::cell::RefCell;
use std::rc::Rc;

use nectar_cab::{Cab, CabThread, CostModel, Cx, HostOpMode, LinkModel, Step, StepStatus};
use nectar_sim::{SimDuration, SimTime, Trace};
use nectar_stack::tcp::TcpConfig;

fn cab() -> Cab {
    Cab::new(0, CostModel::default(), LinkModel::default(), TcpConfig::default(), 8192, 1)
}

fn run_to_idle(c: &mut Cab, start: SimTime) -> SimTime {
    let mut trace = Trace::new();
    let mut now = start;
    for _ in 0..100_000 {
        let (_, status) = c.step(now, &mut trace);
        match status {
            StepStatus::Ran { next } => now = next,
            StepStatus::Idle { next: Some(next) } if next > now => now = next,
            StepStatus::Idle { .. } => return now,
        }
    }
    panic!("never idle");
}

type Log = Rc<RefCell<Vec<&'static str>>>;

struct Worker {
    tag: &'static str,
    bursts: u32,
    log: Log,
}

impl CabThread for Worker {
    fn run(&mut self, cx: &mut Cx<'_>) -> Step {
        cx.charge(SimDuration::from_micros(5));
        self.log.borrow_mut().push(self.tag);
        self.bursts -= 1;
        if self.bursts == 0 {
            Step::Done
        } else {
            Step::Yield
        }
    }
}

#[test]
fn higher_priority_threads_run_first() {
    let mut c = cab();
    run_to_idle(&mut c, SimTime::ZERO); // settle protocol threads
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    c.fork_app(Box::new(Worker { tag: "app", bursts: 3, log: log.clone() }));
    c.fork_system(Box::new(Worker { tag: "sys", bursts: 3, log: log.clone() }));
    run_to_idle(&mut c, SimTime::from_nanos(1));
    let order = log.borrow().clone();
    // all system bursts strictly precede all app bursts
    assert_eq!(order, vec!["sys", "sys", "sys", "app", "app", "app"]);
}

#[test]
fn same_priority_round_robins() {
    let mut c = cab();
    run_to_idle(&mut c, SimTime::ZERO);
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    c.fork_app(Box::new(Worker { tag: "a", bursts: 3, log: log.clone() }));
    c.fork_app(Box::new(Worker { tag: "b", bursts: 3, log: log.clone() }));
    run_to_idle(&mut c, SimTime::from_nanos(1));
    let order = log.borrow().clone();
    assert_eq!(order, vec!["a", "b", "a", "b", "a", "b"]);
}

#[test]
fn waking_system_thread_preempts_app_at_burst_boundary() {
    // an interrupt (frame arrival) makes a system thread runnable; it
    // must run before the next app burst
    struct Spinner {
        log: Log,
    }
    impl CabThread for Spinner {
        fn run(&mut self, cx: &mut Cx<'_>) -> Step {
            cx.charge(SimDuration::from_micros(30));
            self.log.borrow_mut().push("spin");
            Step::Yield
        }
    }
    let mut c = cab();
    run_to_idle(&mut c, SimTime::ZERO);
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    c.fork_app(Box::new(Spinner { log: log.clone() }));
    // deliver a datagram frame: rx interrupts + delivery run between
    // app bursts even though the app never blocks
    let dst = c.shared.create_mailbox(false, HostOpMode::SharedMemory);
    let pkt = nectar_wire::nectar::DatagramHeader { dst_mbox: dst, src_mbox: 0 }.build(b"x");
    let hdr = nectar_wire::datalink::DatalinkHeader {
        dst_cab: 0,
        src_cab: 1,
        proto: nectar_wire::datalink::DatalinkProto::Datagram,
        flags: 0,
        payload_len: 0,
        msg_id: 0,
    };
    let frame = nectar_wire::datalink::Frame::build(&nectar_wire::route::Route::empty(), hdr, &pkt);
    let mut trace = Trace::new();
    let mut now = SimTime::from_nanos(1);
    // run a few app bursts
    for _ in 0..3 {
        let (_, s) = c.step(now, &mut trace);
        if let StepStatus::Ran { next } = s {
            now = next;
        }
    }
    c.deliver_frame(now, frame);
    // the very next burst must be the interrupt, not the spinner
    let before = c.rt.interrupts_taken;
    let (_, s) = c.step(now, &mut trace);
    assert_eq!(c.rt.interrupts_taken, before + 1, "interrupt must run before the app burst");
    if let StepStatus::Ran { next } = s {
        now = next;
    }
    // and the message is eventually delivered
    for _ in 0..20 {
        let (_, s) = c.step(now, &mut trace);
        if let StepStatus::Ran { next } = s {
            now = next;
        }
    }
    assert!(c.shared.begin_get(dst).is_ok());
}

#[test]
fn fork_join_semantics() {
    // The join protocol: a thread blocks on join_cond(target) until
    // the target exits (cthread_join).
    let mut c = cab();
    run_to_idle(&mut c, SimTime::ZERO);
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    let worker = c.fork_app(Box::new(Worker { tag: "w", bursts: 2, log: log.clone() }));
    struct RealJoiner {
        log: Log,
    }
    impl CabThread for RealJoiner {
        fn run(&mut self, cx: &mut Cx<'_>) -> Step {
            // woken by the scheduler when the target exits
            let _ = cx;
            self.log.borrow_mut().push("joined");
            Step::Done
        }
    }
    // block the joiner on the worker's join cond by forking it Blocked:
    // simplest is to let it run once after the worker is done
    let jc = c.rt.join_cond(worker);
    struct BlockFirst {
        cond: nectar_cab::shared::CondId,
        inner: Option<RealJoiner>,
        blocked_once: bool,
    }
    impl CabThread for BlockFirst {
        fn run(&mut self, cx: &mut Cx<'_>) -> Step {
            if !self.blocked_once {
                self.blocked_once = true;
                return Step::Block(self.cond);
            }
            self.inner.as_mut().unwrap().run(cx)
        }
    }
    c.fork_app(Box::new(BlockFirst {
        cond: jc,
        inner: Some(RealJoiner { log: log.clone() }),
        blocked_once: false,
    }));
    run_to_idle(&mut c, SimTime::from_nanos(1));
    assert!(c.rt.is_done(worker));
    let order = log.borrow().clone();
    assert_eq!(order, vec!["w", "w", "joined"], "join must wake only after the worker exits");
}

#[test]
fn block_timeout_wakes_by_deadline() {
    struct Sleeper {
        deadline: SimTime,
        woke_at: Rc<RefCell<Option<SimTime>>>,
        armed: bool,
    }
    impl CabThread for Sleeper {
        fn run(&mut self, cx: &mut Cx<'_>) -> Step {
            if !self.armed {
                self.armed = true;
                let cond = cx.shared.alloc_cond(); // nobody signals it
                return Step::BlockTimeout(cond, self.deadline);
            }
            *self.woke_at.borrow_mut() = Some(cx.now());
            Step::Done
        }
    }
    let mut c = cab();
    run_to_idle(&mut c, SimTime::ZERO);
    let woke_at = Rc::new(RefCell::new(None));
    let deadline = SimTime::ZERO + SimDuration::from_millis(3);
    c.fork_app(Box::new(Sleeper { deadline, woke_at: woke_at.clone(), armed: false }));
    run_to_idle(&mut c, SimTime::from_nanos(1));
    let woke = woke_at.borrow().expect("woke");
    assert!(woke >= deadline, "woke early: {woke}");
    assert!(woke < deadline + SimDuration::from_micros(100), "woke far too late: {woke}");
}

#[test]
fn mutex_mutual_exclusion_across_bursts() {
    // two threads increment a shared counter under a mutex, holding it
    // across a blocking point; the lock must serialize them
    struct Locker {
        mutex: nectar_cab::runtime::MutexId,
        holding: bool,
        rounds: u32,
        log: Log,
        tag: &'static str,
    }
    impl CabThread for Locker {
        fn run(&mut self, cx: &mut Cx<'_>) -> Step {
            if !self.holding {
                match cx.mutex_lock(self.mutex) {
                    Ok(()) => {
                        self.holding = true;
                        self.log.borrow_mut().push("acquire");
                        self.log.borrow_mut().push(self.tag);
                        // hold the lock across a yield (another burst)
                        return Step::Yield;
                    }
                    Err(cond) => return Step::Block(cond),
                }
            }
            self.log.borrow_mut().push("release");
            cx.mutex_unlock(self.mutex);
            self.holding = false;
            self.rounds -= 1;
            if self.rounds == 0 {
                Step::Done
            } else {
                Step::Yield
            }
        }
    }
    let mut c = cab();
    run_to_idle(&mut c, SimTime::ZERO);
    let m = {
        let (rt, shared, mutexes) = (&mut c.rt, &mut c.shared, &mut c.mutexes);
        rt.create_mutex(shared, mutexes)
    };
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    c.fork_app(Box::new(Locker {
        mutex: m,
        holding: false,
        rounds: 3,
        log: log.clone(),
        tag: "A",
    }));
    c.fork_app(Box::new(Locker {
        mutex: m,
        holding: false,
        rounds: 3,
        log: log.clone(),
        tag: "B",
    }));
    run_to_idle(&mut c, SimTime::from_nanos(1));
    // critical sections never interleave: every acquire is followed by
    // its release before the next acquire
    let order = log.borrow().clone();
    let mut depth = 0i32;
    for e in &order {
        match *e {
            "acquire" => {
                depth += 1;
                assert_eq!(depth, 1, "nested acquire: {order:?}");
            }
            "release" => depth -= 1,
            _ => assert_eq!(depth, 1, "work outside critical section: {order:?}"),
        }
    }
    assert_eq!(depth, 0);
    assert_eq!(order.iter().filter(|e| **e == "acquire").count(), 6);
}

#[test]
fn protection_domain_isolation_for_app_buffers() {
    use nectar_cab::memory::{Access, MemFault, PagePerms};
    let mut c = cab();
    // give domain 1 access to one page only, then switch into it
    c.shared.mem.protect(1, 64 * 1024, 1024, PagePerms::RW);
    c.shared.mem.set_domain(1);
    assert!(c.shared.mem.write(64 * 1024, b"app data").is_ok());
    assert!(matches!(
        c.shared.mem.write(128 * 1024, b"not mine"),
        Err(MemFault::Protection { access: Access::Write, .. })
    ));
    c.shared.mem.set_domain(0);
    assert!(c.shared.mem.write(128 * 1024, b"kernel ok").is_ok());
}
