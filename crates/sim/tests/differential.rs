//! Differential property test: the production timer-wheel scheduler
//! against a straightforward `BinaryHeap` reference implementation.
//!
//! Both schedulers execute the same randomized workload — a DAG of
//! events where firing an event schedules children at random offsets
//! (same-tick, in-wheel, and past-horizon deltas) and cancels earlier
//! timers (live, already-fired, or never-scheduled handles). The
//! execution log (event id, firing time) and final clocks must match
//! exactly; any divergence in `(time, seq)` ordering, cancellation
//! semantics, or clock advancement fails the test. Failures replay via
//! `NECTAR_CHECK_SEED` (see `nectar_sim::check`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use nectar_sim::check::{cases, Gen, DEFAULT_CASES};
use nectar_sim::{Scheduler, SimDuration, SimTime, TimerId};

/// What one event does when it fires.
#[derive(Clone)]
struct Plan {
    /// `(delta_ns, child)` — schedule plan `child` this far in the future.
    spawn: Vec<(u64, usize)>,
    /// Handle slots to cancel (may be live, fired, or never scheduled).
    cancel: Vec<usize>,
}

/// Randomly build a forward-edged DAG of event plans. Each non-root
/// plan is spawned by exactly one earlier plan, so every plan is
/// scheduled at most once and the workload always terminates.
fn gen_workload(g: &mut Gen) -> (Vec<Plan>, Vec<(u64, usize)>) {
    let n = g.usize_in(4, 48);
    let mut plans: Vec<Plan> =
        (0..n).map(|_| Plan { spawn: Vec::new(), cancel: Vec::new() }).collect();
    let roots = g.usize_in(1, 4);
    let mut root_sched = Vec::new();
    for i in 0..roots {
        root_sched.push((delta(g), i));
    }
    for child in roots..n {
        let parent = g.usize_in(0, child);
        let d = delta(g);
        plans[parent].spawn.push((d, child));
    }
    for plan in plans.iter_mut() {
        let cancels = g.usize_in(0, 3);
        for _ in 0..cancels {
            plan.cancel.push(g.usize_in(0, n));
        }
    }
    (plans, root_sched)
}

/// Offsets chosen to hit every scheduler region: the current-tick heap
/// (sub-tick), the wheel buckets (sub-horizon), and the overflow heap
/// (multi-millisecond). Zero exercises same-time FIFO ordering.
fn delta(g: &mut Gen) -> u64 {
    match g.usize_in(0, 5) {
        0 => 0,
        1 => g.usize_in(1, 4_096) as u64,
        2 => g.usize_in(4_096, 1 << 20) as u64,
        3 => g.usize_in(1 << 20, 4 << 20) as u64,
        _ => g.usize_in(1, 100_000) as u64,
    }
}

// ---------------------------------------------------------------- real

struct RealWorld {
    plans: Vec<Plan>,
    handles: Vec<Option<TimerId>>,
    log: Vec<(usize, u64)>,
}

fn fire_real(w: &mut RealWorld, s: &mut Scheduler<RealWorld>, arg: u64) {
    let idx = arg as usize;
    w.log.push((idx, s.now().as_nanos()));
    let plan = w.plans[idx].clone();
    for (d, child) in plan.spawn {
        let id = s.at_call(s.now() + SimDuration::from_nanos(d), fire_real, child as u64);
        w.handles[child] = Some(id);
    }
    for slot in plan.cancel {
        if let Some(id) = w.handles[slot].take() {
            s.cancel(id);
        }
    }
}

fn run_real(plans: &[Plan], roots: &[(u64, usize)]) -> (Vec<(usize, u64)>, u64, u64) {
    let n = plans.len();
    let mut w = RealWorld { plans: plans.to_vec(), handles: vec![None; n], log: Vec::new() };
    let mut s = Scheduler::new();
    for &(d, idx) in roots {
        let id = s.at_call(SimTime::from_nanos(d), fire_real, idx as u64);
        w.handles[idx] = Some(id);
    }
    s.run(&mut w);
    (w.log, s.now().as_nanos(), s.executed())
}

// ----------------------------------------------------------- reference

/// The obvious scheduler: a min-heap of `(time, seq)` keys with lazy
/// cancellation via an alive-bitmap, mirroring the kernel the timer
/// wheel replaced.
struct RefSched {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// seq -> scheduled plan index; removal = cancellation.
    alive: Vec<Option<usize>>,
    now: u64,
    executed: u64,
}

impl RefSched {
    fn schedule(&mut self, at: u64, idx: usize) -> u64 {
        let seq = self.alive.len() as u64;
        self.alive.push(Some(idx));
        self.heap.push(Reverse((at.max(self.now), seq)));
        seq
    }

    fn cancel(&mut self, seq: u64) {
        self.alive[seq as usize] = None;
    }
}

fn run_ref(plans: &[Plan], roots: &[(u64, usize)]) -> (Vec<(usize, u64)>, u64, u64) {
    let n = plans.len();
    let mut s = RefSched { heap: BinaryHeap::new(), alive: Vec::new(), now: 0, executed: 0 };
    let mut handles: Vec<Option<u64>> = vec![None; n];
    let mut log = Vec::new();
    for &(d, idx) in roots {
        let seq = s.schedule(d, idx);
        handles[idx] = Some(seq);
    }
    while let Some(Reverse((t, seq))) = s.heap.pop() {
        let Some(idx) = s.alive[seq as usize].take() else { continue };
        s.now = t;
        s.executed += 1;
        log.push((idx, t));
        let plan = &plans[idx];
        for &(d, child) in &plan.spawn {
            let cseq = s.schedule(t + d, child);
            handles[child] = Some(cseq);
        }
        for &slot in &plan.cancel {
            if let Some(cseq) = handles[slot].take() {
                s.cancel(cseq);
            }
        }
    }
    (log, s.now, s.executed)
}

// ---------------------------------------------------------------- test

#[test]
fn wheel_matches_reference_scheduler() {
    cases(DEFAULT_CASES, |g| {
        let (plans, roots) = gen_workload(g);
        let (log_real, now_real, exec_real) = run_real(&plans, &roots);
        let (log_ref, now_ref, exec_ref) = run_ref(&plans, &roots);
        assert_eq!(log_real, log_ref, "execution order diverged");
        assert_eq!(now_real, now_ref, "final clocks diverged");
        assert_eq!(exec_real, exec_ref, "executed counts diverged");
    });
}

// -------------------------------------------------- sharded merge

/// The deterministic-merge discipline of the sharded kernel
/// (`nectar::shard`), distilled to bare schedulers: `k` schedulers
/// share one sequence counter, every shard schedules the same roots
/// (ownership-guarded no-op duplicates on non-owners, drawing no
/// seqs at fire time), a plan firing on its owner spawns local
/// children directly and foreign children by allocating a seq at
/// *send* time for `at_seq` injection, and a merge loop always pops
/// the globally minimal `(time, seq)`. The popped `(idx, time, seq)`
/// stream must equal the single-scheduler run's, bit for bit, on any
/// randomized workload and shard count.
struct MergeWorld {
    me: usize,
    shards: usize,
    plans: Vec<Plan>,
    handles: Vec<Option<TimerId>>,
    /// `(dst_shard, at, seq, child)` — cross-shard sends this step.
    outbox: Vec<(usize, u64, u64, usize)>,
    /// Plans fired on this shard this step (drained by the merge loop).
    fired: Vec<usize>,
}

fn owner(idx: usize, shards: usize) -> usize {
    idx % shards
}

fn fire_merge(w: &mut MergeWorld, s: &mut Scheduler<MergeWorld>, arg: u64) {
    let idx = arg as usize;
    if owner(idx, w.shards) != w.me {
        return; // boot duplicate on a non-owner: no state, no seqs
    }
    w.fired.push(idx);
    let plan = w.plans[idx].clone();
    for (d, child) in plan.spawn {
        let at = s.now() + SimDuration::from_nanos(d);
        if owner(child, w.shards) == w.me {
            w.handles[child] = Some(s.at_call(at, fire_merge, child as u64));
        } else {
            // foreign child: draw the seq now, in global execution
            // order, exactly where a single scheduler would draw it
            let seq = s.alloc_seq();
            w.outbox.push((owner(child, w.shards), at.as_nanos(), seq, child));
        }
    }
    for slot in plan.cancel {
        if let Some(id) = w.handles[slot].take() {
            s.cancel(id);
        }
    }
}

/// Run the workload across `k` schedulers under the merge discipline,
/// logging every productive pop as `(idx, time, seq)`.
fn run_merged(plans: &[Plan], roots: &[(u64, usize)], k: usize) -> Vec<(usize, u64, u64)> {
    let n = plans.len();
    let mut worlds: Vec<MergeWorld> = (0..k)
        .map(|me| MergeWorld {
            me,
            shards: k,
            plans: plans.to_vec(),
            handles: vec![None; n],
            outbox: Vec::new(),
            fired: Vec::new(),
        })
        .collect();
    let mut sims: Vec<Scheduler<MergeWorld>> = (0..k).map(|_| Scheduler::new()).collect();
    // identical boot on every shard (root handles stay unrecorded —
    // root cancels are pruned), then adopt shard 0's counter
    for s in sims.iter_mut() {
        for &(d, idx) in roots {
            let _ = s.at_call(SimTime::from_nanos(d), fire_merge, idx as u64);
        }
    }
    let src = sims[0].seq_source();
    for s in sims.iter_mut().skip(1) {
        s.share_seq_source(std::rc::Rc::clone(&src));
    }
    let mut log = Vec::new();
    loop {
        let mut best: Option<(u64, u64, usize)> = None;
        for (i, s) in sims.iter_mut().enumerate() {
            if let Some((t, q)) = s.peek_next() {
                if best.is_none_or(|(bt, bq, _)| (t.as_nanos(), q) < (bt, bq)) {
                    best = Some((t.as_nanos(), q, i));
                }
            }
        }
        let Some((t, q, i)) = best else { break };
        sims[i].step(&mut worlds[i]);
        for idx in worlds[i].fired.drain(..) {
            log.push((idx, t, q));
        }
        for (dst, at, seq, child) in worlds[i].outbox.drain(..) {
            sims[dst]
                .at_seq(SimTime::from_nanos(at), seq, move |w, s| fire_merge(w, s, child as u64));
        }
    }
    log
}

/// The single-scheduler reference, logging `(idx, time, seq)` via
/// `peek_next` before each step.
fn run_single_logged(plans: &[Plan], roots: &[(u64, usize)]) -> Vec<(usize, u64, u64)> {
    let n = plans.len();
    let mut w = MergeWorld {
        me: 0,
        shards: 1,
        plans: plans.to_vec(),
        handles: vec![None; n],
        outbox: Vec::new(),
        fired: Vec::new(),
    };
    let mut s = Scheduler::new();
    for &(d, idx) in roots {
        s.at_call(SimTime::from_nanos(d), fire_merge, idx as u64);
    }
    let mut log = Vec::new();
    while let Some((t, q)) = s.peek_next() {
        s.step(&mut w);
        for idx in w.fired.drain(..) {
            log.push((idx, t.as_nanos(), q));
        }
        assert!(w.outbox.is_empty(), "single-shard run must never divert");
    }
    log
}

/// Cancels only make sense when the canceling plan can see the handle:
/// same owner as the target, and the target was spawned by a same-owner
/// parent (cross-shard children are injected by the merge loop, whose
/// handles nobody holds). Prune everything else — identically for the
/// reference run, so both execute the same workload. Root handles are
/// never recorded, so root cancels are pruned too.
fn prune_cancels(plans: &mut [Plan], roots: &[(u64, usize)], k: usize) {
    let n = plans.len();
    let mut parent = vec![usize::MAX; n];
    for (p, plan) in plans.iter().enumerate() {
        for &(_, child) in &plan.spawn {
            parent[child] = p;
        }
    }
    let root_set: Vec<usize> = roots.iter().map(|&(_, i)| i).collect();
    for (p, plan) in plans.iter_mut().enumerate() {
        let me = owner(p, k);
        plan.cancel.retain(|&c| {
            c < n
                && !root_set.contains(&c)
                && parent[c] != usize::MAX
                && owner(c, k) == me
                && owner(parent[c], k) == me
        });
    }
}

#[test]
fn sharded_merge_matches_single_scheduler_event_order() {
    cases(DEFAULT_CASES, |g| {
        let (mut plans, roots) = gen_workload(g);
        let k = g.usize_in(2, 5);
        prune_cancels(&mut plans, &roots, k);
        let reference = run_single_logged(&plans, &roots);
        let merged = run_merged(&plans, &roots, k);
        assert_eq!(
            merged, reference,
            "sharded merge diverged from single-scheduler (time, seq) order at k={k}"
        );
    });
}
