//! Differential property test: the production timer-wheel scheduler
//! against a straightforward `BinaryHeap` reference implementation.
//!
//! Both schedulers execute the same randomized workload — a DAG of
//! events where firing an event schedules children at random offsets
//! (same-tick, in-wheel, and past-horizon deltas) and cancels earlier
//! timers (live, already-fired, or never-scheduled handles). The
//! execution log (event id, firing time) and final clocks must match
//! exactly; any divergence in `(time, seq)` ordering, cancellation
//! semantics, or clock advancement fails the test. Failures replay via
//! `NECTAR_CHECK_SEED` (see `nectar_sim::check`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use nectar_sim::check::{cases, Gen, DEFAULT_CASES};
use nectar_sim::{Scheduler, SimDuration, SimTime, TimerId};

/// What one event does when it fires.
#[derive(Clone)]
struct Plan {
    /// `(delta_ns, child)` — schedule plan `child` this far in the future.
    spawn: Vec<(u64, usize)>,
    /// Handle slots to cancel (may be live, fired, or never scheduled).
    cancel: Vec<usize>,
}

/// Randomly build a forward-edged DAG of event plans. Each non-root
/// plan is spawned by exactly one earlier plan, so every plan is
/// scheduled at most once and the workload always terminates.
fn gen_workload(g: &mut Gen) -> (Vec<Plan>, Vec<(u64, usize)>) {
    let n = g.usize_in(4, 48);
    let mut plans: Vec<Plan> =
        (0..n).map(|_| Plan { spawn: Vec::new(), cancel: Vec::new() }).collect();
    let roots = g.usize_in(1, 4);
    let mut root_sched = Vec::new();
    for i in 0..roots {
        root_sched.push((delta(g), i));
    }
    for child in roots..n {
        let parent = g.usize_in(0, child);
        let d = delta(g);
        plans[parent].spawn.push((d, child));
    }
    for plan in plans.iter_mut() {
        let cancels = g.usize_in(0, 3);
        for _ in 0..cancels {
            plan.cancel.push(g.usize_in(0, n));
        }
    }
    (plans, root_sched)
}

/// Offsets chosen to hit every scheduler region: the current-tick heap
/// (sub-tick), the wheel buckets (sub-horizon), and the overflow heap
/// (multi-millisecond). Zero exercises same-time FIFO ordering.
fn delta(g: &mut Gen) -> u64 {
    match g.usize_in(0, 5) {
        0 => 0,
        1 => g.usize_in(1, 4_096) as u64,
        2 => g.usize_in(4_096, 1 << 20) as u64,
        3 => g.usize_in(1 << 20, 4 << 20) as u64,
        _ => g.usize_in(1, 100_000) as u64,
    }
}

// ---------------------------------------------------------------- real

struct RealWorld {
    plans: Vec<Plan>,
    handles: Vec<Option<TimerId>>,
    log: Vec<(usize, u64)>,
}

fn fire_real(w: &mut RealWorld, s: &mut Scheduler<RealWorld>, arg: u64) {
    let idx = arg as usize;
    w.log.push((idx, s.now().as_nanos()));
    let plan = w.plans[idx].clone();
    for (d, child) in plan.spawn {
        let id = s.at_call(s.now() + SimDuration::from_nanos(d), fire_real, child as u64);
        w.handles[child] = Some(id);
    }
    for slot in plan.cancel {
        if let Some(id) = w.handles[slot].take() {
            s.cancel(id);
        }
    }
}

fn run_real(plans: &[Plan], roots: &[(u64, usize)]) -> (Vec<(usize, u64)>, u64, u64) {
    let n = plans.len();
    let mut w = RealWorld { plans: plans.to_vec(), handles: vec![None; n], log: Vec::new() };
    let mut s = Scheduler::new();
    for &(d, idx) in roots {
        let id = s.at_call(SimTime::from_nanos(d), fire_real, idx as u64);
        w.handles[idx] = Some(id);
    }
    s.run(&mut w);
    (w.log, s.now().as_nanos(), s.executed())
}

// ----------------------------------------------------------- reference

/// The obvious scheduler: a min-heap of `(time, seq)` keys with lazy
/// cancellation via an alive-bitmap, mirroring the kernel the timer
/// wheel replaced.
struct RefSched {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// seq -> scheduled plan index; removal = cancellation.
    alive: Vec<Option<usize>>,
    now: u64,
    executed: u64,
}

impl RefSched {
    fn schedule(&mut self, at: u64, idx: usize) -> u64 {
        let seq = self.alive.len() as u64;
        self.alive.push(Some(idx));
        self.heap.push(Reverse((at.max(self.now), seq)));
        seq
    }

    fn cancel(&mut self, seq: u64) {
        self.alive[seq as usize] = None;
    }
}

fn run_ref(plans: &[Plan], roots: &[(u64, usize)]) -> (Vec<(usize, u64)>, u64, u64) {
    let n = plans.len();
    let mut s = RefSched { heap: BinaryHeap::new(), alive: Vec::new(), now: 0, executed: 0 };
    let mut handles: Vec<Option<u64>> = vec![None; n];
    let mut log = Vec::new();
    for &(d, idx) in roots {
        let seq = s.schedule(d, idx);
        handles[idx] = Some(seq);
    }
    while let Some(Reverse((t, seq))) = s.heap.pop() {
        let Some(idx) = s.alive[seq as usize].take() else { continue };
        s.now = t;
        s.executed += 1;
        log.push((idx, t));
        let plan = &plans[idx];
        for &(d, child) in &plan.spawn {
            let cseq = s.schedule(t + d, child);
            handles[child] = Some(cseq);
        }
        for &slot in &plan.cancel {
            if let Some(cseq) = handles[slot].take() {
                s.cancel(cseq);
            }
        }
    }
    (log, s.now, s.executed)
}

// ---------------------------------------------------------------- test

#[test]
fn wheel_matches_reference_scheduler() {
    cases(DEFAULT_CASES, |g| {
        let (plans, roots) = gen_workload(g);
        let (log_real, now_real, exec_real) = run_real(&plans, &roots);
        let (log_ref, now_ref, exec_ref) = run_ref(&plans, &roots);
        assert_eq!(log_real, log_ref, "execution order diverged");
        assert_eq!(now_real, now_ref, "final clocks diverged");
        assert_eq!(exec_real, exec_ref, "executed counts diverged");
    });
}
