//! Stage tracing: timestamped, tagged marks along a message's path.
//!
//! Figure 6 of the paper breaks a 163 µs one-way host-to-host datagram
//! send into its constituent stages (begin_put, end_put, CAB wakeup,
//! datalink, fiber/HUB, pass-message, begin_get, end_get, ...). The
//! benchmark harness reproduces that figure by stamping a `Trace` at each
//! stage boundary and diffing consecutive stamps.
//!
//! Tracing is off by default and costs one branch per stamp when
//! disabled, so it can stay compiled into the hot paths.

use crate::time::{SimDuration, SimTime};

/// One stamped point: when, where (node id), what (static tag), plus a
/// free-form correlation value (message id, byte count, ...).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub at: SimTime,
    pub node: u32,
    pub tag: &'static str,
    pub info: u64,
}

/// An append-only trace buffer.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn enabled() -> Self {
        Trace { enabled: true, events: Vec::new() }
    }

    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a stamp (no-op unless enabled).
    pub fn stamp(&mut self, at: SimTime, node: u32, tag: &'static str, info: u64) {
        if self.enabled {
            self.events.push(TraceEvent { at, node, tag, info });
        }
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// The first stamp with the given tag.
    pub fn first(&self, tag: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.tag == tag)
    }

    /// The first stamp with the given tag and correlation value.
    pub fn find(&self, tag: &str, info: u64) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.tag == tag && e.info == info)
    }

    /// Elapsed time between the first occurrences of two tags, in stamp
    /// order. Returns `None` if either tag is missing.
    pub fn between(&self, from: &str, to: &str) -> Option<SimDuration> {
        let a = self.first(from)?;
        let b = self.first(to)?;
        b.at.checked_since(a.at)
    }

    /// Break the trace for a single message (identified by `info`) into
    /// consecutive (tag, duration-to-next-stage) pairs — exactly the shape
    /// of the Figure 6 breakdown. The final tag is paired with a zero
    /// duration.
    pub fn stages(&self, info: u64) -> Vec<(&'static str, SimDuration)> {
        let marks: Vec<&TraceEvent> = self.events.iter().filter(|e| e.info == info).collect();
        let mut out = Vec::with_capacity(marks.len());
        for pair in marks.windows(2) {
            out.push((pair[0].tag, pair[1].at.saturating_since(pair[0].at)));
        }
        if let Some(last) = marks.last() {
            out.push((last.tag, SimDuration::ZERO));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::new();
        tr.stamp(t(1), 0, "a", 0);
        assert!(tr.events().is_empty());
    }

    #[test]
    fn stamps_and_lookup() {
        let mut tr = Trace::enabled();
        tr.stamp(t(1), 0, "begin_put", 7);
        tr.stamp(t(19), 0, "end_put", 7);
        tr.stamp(t(40), 1, "datalink", 7);
        assert_eq!(tr.first("end_put").unwrap().at, t(19));
        assert_eq!(tr.find("datalink", 7).unwrap().node, 1);
        assert!(tr.find("datalink", 8).is_none());
        assert_eq!(tr.between("begin_put", "end_put"), Some(SimDuration::from_micros(18)));
        assert_eq!(tr.between("end_put", "missing"), None);
    }

    #[test]
    fn stage_breakdown() {
        let mut tr = Trace::enabled();
        tr.stamp(t(0), 0, "begin_put", 1);
        tr.stamp(t(18), 0, "end_put", 1);
        tr.stamp(t(26), 0, "datalink", 1);
        tr.stamp(t(29), 1, "rx", 1);
        // a different message interleaved — must be excluded
        tr.stamp(t(10), 0, "begin_put", 2);
        let stages = tr.stages(1);
        assert_eq!(
            stages,
            vec![
                ("begin_put", SimDuration::from_micros(18)),
                ("end_put", SimDuration::from_micros(8)),
                ("datalink", SimDuration::from_micros(3)),
                ("rx", SimDuration::ZERO),
            ]
        );
    }

    #[test]
    fn clear_and_toggle() {
        let mut tr = Trace::enabled();
        tr.stamp(t(1), 0, "a", 0);
        tr.clear();
        assert!(tr.events().is_empty());
        tr.set_enabled(false);
        tr.stamp(t(2), 0, "b", 0);
        assert!(tr.events().is_empty());
        assert!(!tr.is_enabled());
    }
}
