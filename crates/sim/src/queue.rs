//! The event queue: a deterministic scheduler of timestamped closures.
//!
//! Every state change in the simulated Nectar system — a frame finishing
//! serialization onto a fiber, a CAB thread's execution burst completing,
//! a host process waking from a device-driver sleep, a TCP retransmission
//! timer firing — is an event. Events are closures over the world type
//! `W` (defined by the `nectar` core crate), ordered by `(time, sequence
//! number)`; the sequence number makes simultaneous events fire in the
//! order they were scheduled, which keeps every run bit-for-bit
//! reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A scheduled event: a one-shot closure over the world.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}

impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The simulation scheduler: virtual clock plus pending-event heap.
///
/// `W` is the simulated world; the scheduler never inspects it, it only
/// hands it to event closures. This keeps the kernel reusable by every
/// crate in the workspace (component unit tests use small ad-hoc worlds).
pub struct Scheduler<W> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Entry<W>>,
    executed: u64,
}

impl<W> Default for Scheduler<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Scheduler<W> {
    pub fn new() -> Self {
        Scheduler { now: SimTime::ZERO, seq: 0, heap: BinaryHeap::new(), executed: 0 }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (for diagnostics and runaway
    /// detection in tests).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `f` at absolute time `at`. Scheduling in the past is a
    /// logic error somewhere in a cost model; we clamp to `now` rather
    /// than panic so that a mis-calibrated model degrades into "runs
    /// immediately" instead of aborting a long experiment, but debug
    /// builds assert.
    pub fn at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, f: Box::new(f) });
    }

    /// Schedule `f` after a relative delay.
    pub fn after(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        self.at(self.now + delay, f);
    }

    /// Schedule `f` to run at the current instant, after all events already
    /// queued for this instant.
    pub fn immediately(&mut self, f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        self.at(self.now, f);
    }

    /// Execute the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.heap.pop() {
            None => false,
            Some(Entry { at, f, .. }) => {
                debug_assert!(at >= self.now);
                self.now = at;
                self.executed += 1;
                f(world, self);
                true
            }
        }
    }

    /// Run until the event queue drains.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Run until the event queue drains or the clock passes `deadline`,
    /// whichever comes first. Events scheduled exactly at `deadline` run.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        while let Some(entry) = self.heap.peek() {
            if entry.at > deadline {
                break;
            }
            self.step(world);
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run at most `max_events` events (a guard for tests that want to
    /// detect event storms / livelock).
    pub fn run_capped(&mut self, world: &mut W, max_events: u64) -> bool {
        for _ in 0..max_events {
            if !self.step(world) {
                return true;
            }
        }
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Log(Vec<(u64, u32)>);

    #[test]
    fn events_fire_in_time_order() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        s.after(SimDuration::from_micros(30), |w, s| w.0.push((s.now().as_micros(), 3)));
        s.after(SimDuration::from_micros(10), |w, s| w.0.push((s.now().as_micros(), 1)));
        s.after(SimDuration::from_micros(20), |w, s| w.0.push((s.now().as_micros(), 2)));
        s.run(&mut w);
        assert_eq!(w.0, vec![(10, 1), (20, 2), (30, 3)]);
        assert_eq!(s.executed(), 3);
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        for i in 0..100u32 {
            s.at(SimTime::from_nanos(500), move |w, _| w.0.push((0, i)));
        }
        s.run(&mut w);
        let order: Vec<u32> = w.0.iter().map(|&(_, i)| i).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        s.after(SimDuration::from_micros(1), |w, s| {
            w.0.push((s.now().as_micros(), 1));
            s.after(SimDuration::from_micros(5), |w, s| {
                w.0.push((s.now().as_micros(), 2));
            });
        });
        s.run(&mut w);
        assert_eq!(w.0, vec![(1, 1), (6, 2)]);
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        s.after(SimDuration::from_micros(10), |w, _| w.0.push((10, 0)));
        s.after(SimDuration::from_micros(50), |w, _| w.0.push((50, 0)));
        s.run_until(&mut w, SimTime::from_nanos(20_000));
        assert_eq!(w.0, vec![(10, 0)]);
        assert_eq!(s.now(), SimTime::from_nanos(20_000));
        assert_eq!(s.pending(), 1);
        // the rest still runs afterwards
        s.run(&mut w);
        assert_eq!(w.0.len(), 2);
    }

    #[test]
    fn run_until_includes_deadline_events() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        s.at(SimTime::from_nanos(20_000), |w, _| w.0.push((20, 0)));
        s.run_until(&mut w, SimTime::from_nanos(20_000));
        assert_eq!(w.0, vec![(20, 0)]);
    }

    #[test]
    fn run_capped_detects_storms() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        // A self-perpetuating event chain.
        fn storm(w: &mut Log, s: &mut Scheduler<Log>) {
            w.0.push((s.now().as_micros(), 0));
            s.after(SimDuration::from_nanos(1), storm);
        }
        s.immediately(storm);
        assert!(!s.run_capped(&mut w, 1000));
        assert_eq!(w.0.len(), 1000);
    }

    #[test]
    fn immediately_runs_after_already_queued_same_instant_events() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        s.at(SimTime::ZERO, |w, s| {
            w.0.push((0, 1));
            s.immediately(|w, _| w.0.push((0, 3)));
        });
        s.at(SimTime::ZERO, |w, _| w.0.push((0, 2)));
        s.run(&mut w);
        assert_eq!(w.0, vec![(0, 1), (0, 2), (0, 3)]);
    }
}
