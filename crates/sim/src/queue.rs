//! The event queue: a deterministic scheduler of timestamped closures.
//!
//! Every state change in the simulated Nectar system — a frame finishing
//! serialization onto a fiber, a CAB thread's execution burst completing,
//! a host process waking from a device-driver sleep, a TCP retransmission
//! timer firing — is an event. Events are closures over the world type
//! `W` (defined by the `nectar` core crate), ordered by `(time, sequence
//! number)`; the sequence number makes simultaneous events fire in the
//! order they were scheduled, which keeps every run bit-for-bit
//! reproducible.
//!
//! # Kernel structure
//!
//! The scheduler is built for throughput on large deployments:
//!
//! * **Event arena.** Event bodies live in a slab with a free list;
//!   entry slots are recycled instead of reallocated, and the wheel and
//!   heaps below move only compact `(time, seq, slot)` keys. The hot
//!   kick paths use [`Scheduler::at_call`] — a plain `fn` pointer plus
//!   one word of argument — which touches no allocator at all; general
//!   closures are still boxed (type erasure needs it) but their slab
//!   entries are pooled.
//! * **Hierarchical timer wheel.** Near-future events go into
//!   calendar-queue buckets of [`TICK`] nanoseconds; events beyond the
//!   [`HORIZON`] wait in an overflow heap and migrate into the wheel as
//!   the clock approaches them. The current tick's events sit in a tiny
//!   binary heap so same-instant ordering stays exact. Firing order is
//!   identical to a single global heap: strictly ascending `(time,
//!   seq)`.
//! * **Cancellable timers.** Scheduling returns a generation-stamped
//!   [`TimerId`]; [`Scheduler::cancel`] kills the event in O(1) without
//!   touching the wheel (the dead key is reclaimed when its bucket
//!   drains). Stale handles — fired, cancelled, or from a recycled
//!   slot — are detected by the generation stamp and cancel nothing.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

use crate::time::{SimDuration, SimTime};

/// A scheduled event: a one-shot closure over the world.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

/// The allocation-free event form: a plain function plus one argument
/// word (typically a node index).
pub type EventCall<W> = fn(&mut W, &mut Scheduler<W>, u64);

/// Wheel granularity: events within the same `TICK`-nanosecond window
/// share a bucket (and are heap-ordered when the window drains).
pub const TICK: u64 = 1 << TICK_SHIFT;
const TICK_SHIFT: u32 = 12;
/// Number of wheel buckets. Events further than `HORIZON` nanoseconds
/// ahead overflow into a far-future heap.
const BUCKETS: u64 = 256;
/// The wheel's reach: `BUCKETS * TICK` nanoseconds (~1 ms).
pub const HORIZON: u64 = BUCKETS * TICK;

/// Handle to a scheduled event, stamped with the slot's generation so a
/// stale handle (already fired, already cancelled, or slot recycled)
/// can never kill a different event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerId {
    slot: u32,
    gen: u32,
}

/// Shared scheduler counters, readable after the scheduler is out of
/// reach (the world publishes them into metrics snapshots).
#[derive(Clone, Default)]
pub struct SchedStats {
    inner: Rc<SchedCounters>,
}

#[derive(Default)]
struct SchedCounters {
    clamped_past: Cell<u64>,
}

impl SchedStats {
    /// Events whose requested timestamp lay in the past and were
    /// clamped to `now`. A nonzero value means some cost model computed
    /// a time before the current instant.
    pub fn clamped_past(&self) -> u64 {
        self.inner.clamped_past.get()
    }
}

/// What a slot holds. `Vacant` doubles as the cancelled state while the
/// slot's key is still travelling through the wheel.
enum Payload<W> {
    Vacant,
    Boxed(EventFn<W>),
    Call(EventCall<W>, u64),
}

struct Slot<W> {
    gen: u32,
    payload: Payload<W>,
}

/// Compact ordering key; the closure stays in the arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimTime,
    seq: u64,
    slot: u32,
}

/// The simulation scheduler: virtual clock plus pending-event wheel.
///
/// `W` is the simulated world; the scheduler never inspects it, it only
/// hands it to event closures. This keeps the kernel reusable by every
/// crate in the workspace (component unit tests use small ad-hoc worlds).
pub struct Scheduler<W> {
    now: SimTime,
    /// Source of `(time, seq)` tie-break values. Normally private to
    /// this scheduler; a sharded deterministic run rebinds every
    /// shard's scheduler to one shared counter
    /// ([`Scheduler::share_seq_source`]) so sequence numbers are drawn
    /// in global execution order across shards.
    seq: Rc<Cell<u64>>,
    executed: u64,
    cancelled: u64,
    /// Live (scheduled, not yet fired or cancelled) event count.
    live: usize,
    /// Tick the wheel cursor sits on; `cur` holds keys with tick ≤
    /// `base_tick`, buckets hold ticks in `(base_tick, base_tick +
    /// BUCKETS)`, overflow holds the rest.
    base_tick: u64,
    cur: BinaryHeap<Reverse<Key>>,
    buckets: Vec<Vec<Key>>,
    /// Occupancy bitmap over `buckets`: bit `b` set iff `buckets[b]` is
    /// nonempty, so the refill cursor finds the next pending tick with
    /// a handful of word scans instead of probing 256 vectors.
    occ: [u64; (BUCKETS / 64) as usize],
    /// Total keys across all buckets.
    near: usize,
    overflow: BinaryHeap<Reverse<Key>>,
    slots: Vec<Slot<W>>,
    free: Vec<u32>,
    stats: SchedStats,
}

impl<W> Default for Scheduler<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Scheduler<W> {
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: Rc::new(Cell::new(0)),
            executed: 0,
            cancelled: 0,
            live: 0,
            base_tick: 0,
            cur: BinaryHeap::new(),
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            occ: [0; (BUCKETS / 64) as usize],
            near: 0,
            overflow: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            stats: SchedStats::default(),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (for diagnostics and runaway
    /// detection in tests).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events cancelled before firing.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Number of events currently pending (cancelled events excluded).
    pub fn pending(&self) -> usize {
        self.live
    }

    /// A handle onto the scheduler's counters that outlives mutable
    /// borrows of the scheduler (the world stores one for metrics).
    pub fn stats(&self) -> SchedStats {
        self.stats.clone()
    }

    /// Draw the next sequence number from this scheduler's counter
    /// without scheduling anything. A sharded run uses this to stamp a
    /// cross-shard message at *send* time, so the receiving shard can
    /// inject it (via [`Scheduler::at_seq`]) with exactly the tie-break
    /// position the single-thread run would have given it.
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        seq
    }

    /// The sequence number the next scheduled event would receive.
    pub fn next_seq(&self) -> u64 {
        self.seq.get()
    }

    /// The shared counter behind this scheduler's sequence numbers.
    pub fn seq_source(&self) -> Rc<Cell<u64>> {
        Rc::clone(&self.seq)
    }

    /// Rebind this scheduler to draw sequence numbers from `src`.
    /// Deterministic sharded runs point every shard's scheduler at one
    /// counter so `(time, seq)` keys are globally unique and reflect
    /// global scheduling order. The caller must ensure the counter is
    /// at least as large as every sequence number already issued here,
    /// or key ordering uniqueness breaks.
    pub fn share_seq_source(&mut self, src: Rc<Cell<u64>>) {
        debug_assert!(src.get() >= self.seq.get(), "shared seq source lags this scheduler");
        self.seq = src;
    }

    /// Schedule `f` with an explicit, caller-provided sequence number.
    /// The scheduler's own counter is *not* advanced — the caller drew
    /// `seq` from some scheduler's counter already (see
    /// [`Scheduler::alloc_seq`]). This is the injection half of
    /// deterministic cross-shard messaging.
    pub fn at_seq(
        &mut self,
        at: SimTime,
        seq: u64,
        f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) -> TimerId {
        debug_assert!(at >= self.now, "cross-shard event in the past: {at} < {}", self.now);
        let at = at.max(self.now);
        self.insert_key(at, seq, Payload::Boxed(Box::new(f)))
    }

    /// The `(time, seq)` key of the next live event without executing
    /// it, discarding cancelled keys that surface on the way. This is
    /// the shard runners' horizon probe.
    pub fn peek_next(&mut self) -> Option<(SimTime, u64)> {
        loop {
            if !self.refill() {
                return None;
            }
            let Some(Reverse(key)) = self.cur.peek() else { unreachable!() };
            if matches!(self.slots[key.slot as usize].payload, Payload::Vacant) {
                let slot = key.slot;
                self.cur.pop();
                self.free.push(slot);
                continue;
            }
            return Some((key.at, key.seq));
        }
    }

    /// Schedule `f` at absolute time `at`. Scheduling in the past is a
    /// logic error somewhere in a cost model; we clamp to `now` (and
    /// count the clamp in [`SchedStats::clamped_past`]) rather than
    /// panic, so that a mis-calibrated model degrades into "runs
    /// immediately" instead of aborting a long experiment, but debug
    /// builds assert.
    pub fn at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) -> TimerId {
        self.insert(at, Payload::Boxed(Box::new(f)))
    }

    /// Schedule `f` after a relative delay.
    pub fn after(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) -> TimerId {
        self.at(self.now + delay, f)
    }

    /// Schedule `f` to run at the current instant, after all events already
    /// queued for this instant.
    pub fn immediately(&mut self, f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) -> TimerId {
        self.at(self.now, f)
    }

    /// Allocation-free scheduling for the hot paths: a plain `fn`
    /// pointer and one argument word stored inline in the event arena.
    pub fn at_call(&mut self, at: SimTime, f: EventCall<W>, arg: u64) -> TimerId {
        self.insert(at, Payload::Call(f, arg))
    }

    /// Cancel a pending event. Returns `true` if the event was live and
    /// is now dead; a stale handle (fired, cancelled, recycled) returns
    /// `false` and touches nothing.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        let Some(slot) = self.slots.get_mut(id.slot as usize) else { return false };
        if slot.gen != id.gen || matches!(slot.payload, Payload::Vacant) {
            return false;
        }
        slot.payload = Payload::Vacant;
        slot.gen = slot.gen.wrapping_add(1);
        self.live -= 1;
        self.cancelled += 1;
        // The key stays in the wheel; the slot returns to the free list
        // when the key surfaces.
        true
    }

    fn insert(&mut self, at: SimTime, payload: Payload<W>) -> TimerId {
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        if at < self.now {
            let c = &self.stats.inner.clamped_past;
            c.set(c.get() + 1);
        }
        let at = at.max(self.now);
        let seq = self.alloc_seq();
        self.insert_key(at, seq, payload)
    }

    /// Place a fully-formed `(at, seq)` key into the wheel. `at` must
    /// already be clamped to `>= now`.
    fn insert_key(&mut self, at: SimTime, seq: u64, payload: Payload<W>) -> TimerId {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot { gen: 0, payload: Payload::Vacant });
                (self.slots.len() - 1) as u32
            }
        };
        let entry = &mut self.slots[slot as usize];
        let gen = entry.gen;
        entry.payload = payload;
        self.live += 1;
        let key = Key { at, seq, slot };
        let tick = at.as_nanos() >> TICK_SHIFT;
        if tick <= self.base_tick {
            self.cur.push(Reverse(key));
        } else if tick < self.base_tick + BUCKETS {
            let b = (tick % BUCKETS) as usize;
            self.buckets[b].push(key);
            self.occ[b / 64] |= 1 << (b % 64);
            self.near += 1;
        } else {
            self.overflow.push(Reverse(key));
        }
        TimerId { slot, gen }
    }

    /// Move the wheel cursor forward until `cur` holds the next pending
    /// keys. Returns `false` when nothing is pending anywhere. Does not
    /// advance `now` — only event execution does that.
    fn refill(&mut self) -> bool {
        if !self.cur.is_empty() {
            return true;
        }
        if self.near == 0 && self.overflow.is_empty() {
            return false;
        }
        // Each nonempty bucket holds exactly one tick in (base_tick,
        // base_tick + BUCKETS), so the first occupied bucket after the
        // cursor (in circular order) is the earliest near tick.
        let next_near = if self.near > 0 {
            let t = self.next_bucket_tick();
            debug_assert!(t.is_some(), "near count out of sync with buckets");
            t
        } else {
            None
        };
        let next_over = self.overflow.peek().map(|Reverse(k)| k.at.as_nanos() >> TICK_SHIFT);
        let target = match (next_near, next_over) {
            (Some(n), Some(o)) => n.min(o),
            (Some(n), None) => n,
            (None, Some(o)) => o,
            (None, None) => unreachable!(),
        };
        self.base_tick = target;
        if next_near == Some(target) {
            let b = (target % BUCKETS) as usize;
            let mut drained = std::mem::take(&mut self.buckets[b]);
            self.occ[b / 64] &= !(1 << (b % 64));
            self.near -= drained.len();
            for key in drained.drain(..) {
                self.cur.push(Reverse(key));
            }
            // hand the allocation back so steady state never reallocates
            self.buckets[b] = drained;
        }
        // Migrate every overflow key now inside the horizon; keys on the
        // target tick go straight to `cur`.
        while let Some(Reverse(k)) = self.overflow.peek() {
            let tick = k.at.as_nanos() >> TICK_SHIFT;
            if tick >= target + BUCKETS {
                break;
            }
            let Some(Reverse(key)) = self.overflow.pop() else { unreachable!() };
            if tick <= target {
                self.cur.push(Reverse(key));
            } else {
                let b = (tick % BUCKETS) as usize;
                self.buckets[b].push(key);
                self.occ[b / 64] |= 1 << (b % 64);
                self.near += 1;
            }
        }
        debug_assert!(!self.cur.is_empty());
        true
    }

    /// The tick of the first occupied wheel bucket strictly after
    /// `base_tick`, scanning the occupancy bitmap in circular order.
    fn next_bucket_tick(&self) -> Option<u64> {
        const WORDS: usize = (BUCKETS / 64) as usize;
        let start = ((self.base_tick + 1) % BUCKETS) as usize;
        let (sw, sb) = (start / 64, start % 64);
        let mut found = None;
        let head = self.occ[sw] & (!0u64 << sb);
        if head != 0 {
            found = Some(sw * 64 + head.trailing_zeros() as usize);
        } else {
            for k in 1..WORDS {
                let w = (sw + k) % WORDS;
                if self.occ[w] != 0 {
                    found = Some(w * 64 + self.occ[w].trailing_zeros() as usize);
                    break;
                }
            }
            if found.is_none() {
                let tail = self.occ[sw] & !(!0u64 << sb);
                if tail != 0 {
                    found = Some(sw * 64 + tail.trailing_zeros() as usize);
                }
            }
        }
        let b = found? as u64;
        // the unique tick in (base_tick, base_tick + BUCKETS) congruent
        // to the bucket index
        let j = (b + BUCKETS - start as u64) % BUCKETS;
        Some(self.base_tick + 1 + j)
    }

    /// The timestamp of the next live event, discarding any cancelled
    /// keys that surface on the way.
    fn next_event_time(&mut self) -> Option<SimTime> {
        self.peek_next().map(|(at, _)| at)
    }

    /// Execute the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        loop {
            if !self.refill() {
                return false;
            }
            let Some(Reverse(key)) = self.cur.pop() else { unreachable!() };
            let slot = &mut self.slots[key.slot as usize];
            let payload = std::mem::replace(&mut slot.payload, Payload::Vacant);
            if let Payload::Vacant = payload {
                // cancelled in flight: reclaim and keep looking
                self.free.push(key.slot);
                continue;
            }
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(key.slot);
            self.live -= 1;
            debug_assert!(key.at >= self.now);
            self.now = key.at;
            self.executed += 1;
            match payload {
                Payload::Boxed(f) => f(world, self),
                Payload::Call(f, arg) => f(world, self, arg),
                Payload::Vacant => unreachable!(),
            }
            return true;
        }
    }

    /// Run until the event queue drains.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Run until the event queue drains or the clock passes `deadline`,
    /// whichever comes first. Events scheduled exactly at `deadline` run.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        while let Some(at) = self.next_event_time() {
            if at > deadline {
                break;
            }
            self.step(world);
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run at most `max_events` events (a guard for tests that want to
    /// detect event storms / livelock).
    pub fn run_capped(&mut self, world: &mut W, max_events: u64) -> bool {
        for _ in 0..max_events {
            if !self.step(world) {
                return true;
            }
        }
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Log(Vec<(u64, u32)>);

    #[test]
    fn events_fire_in_time_order() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        s.after(SimDuration::from_micros(30), |w, s| w.0.push((s.now().as_micros(), 3)));
        s.after(SimDuration::from_micros(10), |w, s| w.0.push((s.now().as_micros(), 1)));
        s.after(SimDuration::from_micros(20), |w, s| w.0.push((s.now().as_micros(), 2)));
        s.run(&mut w);
        assert_eq!(w.0, vec![(10, 1), (20, 2), (30, 3)]);
        assert_eq!(s.executed(), 3);
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        for i in 0..100u32 {
            s.at(SimTime::from_nanos(500), move |w, _| w.0.push((0, i)));
        }
        s.run(&mut w);
        let order: Vec<u32> = w.0.iter().map(|&(_, i)| i).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        s.after(SimDuration::from_micros(1), |w, s| {
            w.0.push((s.now().as_micros(), 1));
            s.after(SimDuration::from_micros(5), |w, s| {
                w.0.push((s.now().as_micros(), 2));
            });
        });
        s.run(&mut w);
        assert_eq!(w.0, vec![(1, 1), (6, 2)]);
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        s.after(SimDuration::from_micros(10), |w, _| w.0.push((10, 0)));
        s.after(SimDuration::from_micros(50), |w, _| w.0.push((50, 0)));
        s.run_until(&mut w, SimTime::from_nanos(20_000));
        assert_eq!(w.0, vec![(10, 0)]);
        assert_eq!(s.now(), SimTime::from_nanos(20_000));
        assert_eq!(s.pending(), 1);
        // the rest still runs afterwards
        s.run(&mut w);
        assert_eq!(w.0.len(), 2);
    }

    #[test]
    fn run_until_includes_deadline_events() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        s.at(SimTime::from_nanos(20_000), |w, _| w.0.push((20, 0)));
        s.run_until(&mut w, SimTime::from_nanos(20_000));
        assert_eq!(w.0, vec![(20, 0)]);
    }

    #[test]
    fn run_capped_detects_storms() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        // A self-perpetuating event chain.
        fn storm(w: &mut Log, s: &mut Scheduler<Log>) {
            w.0.push((s.now().as_micros(), 0));
            s.after(SimDuration::from_nanos(1), storm);
        }
        s.immediately(storm);
        assert!(!s.run_capped(&mut w, 1000));
        assert_eq!(w.0.len(), 1000);
    }

    #[test]
    fn immediately_runs_after_already_queued_same_instant_events() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        s.at(SimTime::ZERO, |w, s| {
            w.0.push((0, 1));
            s.immediately(|w, _| w.0.push((0, 3)));
        });
        s.at(SimTime::ZERO, |w, _| w.0.push((0, 2)));
        s.run(&mut w);
        assert_eq!(w.0, vec![(0, 1), (0, 2), (0, 3)]);
    }

    #[test]
    fn wheel_and_overflow_interleave_in_time_order() {
        // events straddling the horizon, plus ties on both sides
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        let far = HORIZON * 3 + 17; // deep in overflow
        let near = TICK * 3 + 5;
        s.at(SimTime::from_nanos(far), |w, _| w.0.push((2, 0)));
        s.at(SimTime::from_nanos(near), |w, _| w.0.push((0, 0)));
        s.at(SimTime::from_nanos(far), |w, _| w.0.push((2, 1)));
        s.at(SimTime::from_nanos(HORIZON + 1), |w, _| w.0.push((1, 0)));
        s.run(&mut w);
        assert_eq!(w.0, vec![(0, 0), (1, 0), (2, 0), (2, 1)]);
    }

    #[test]
    fn same_tick_different_nanos_fire_in_time_order() {
        // two events in one wheel bucket but at different nanoseconds,
        // scheduled in reverse time order
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        let base = TICK * 7;
        s.at(SimTime::from_nanos(base + 9), |w, _| w.0.push((9, 0)));
        s.at(SimTime::from_nanos(base + 2), |w, _| w.0.push((2, 0)));
        s.run(&mut w);
        assert_eq!(w.0, vec![(2, 0), (9, 0)]);
    }

    #[test]
    fn cancel_before_fire_suppresses_event() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        let id = s.after(SimDuration::from_micros(10), |w, _| w.0.push((10, 0)));
        s.after(SimDuration::from_micros(20), |w, _| w.0.push((20, 0)));
        assert_eq!(s.pending(), 2);
        assert!(s.cancel(id));
        assert_eq!(s.pending(), 1);
        assert_eq!(s.cancelled(), 1);
        s.run(&mut w);
        assert_eq!(w.0, vec![(20, 0)]);
        assert_eq!(s.executed(), 1);
        // cancelling twice is a no-op
        assert!(!s.cancel(id));
        assert_eq!(s.cancelled(), 1);
    }

    #[test]
    fn cancel_after_fire_is_a_noop() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        let id = s.after(SimDuration::from_micros(1), |w, _| w.0.push((1, 0)));
        s.run(&mut w);
        assert_eq!(w.0, vec![(1, 0)]);
        assert!(!s.cancel(id), "a fired timer must not be cancellable");
        assert_eq!(s.cancelled(), 0);
    }

    #[test]
    fn stale_id_never_kills_a_recycled_slot() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        let id = s.after(SimDuration::from_micros(1), |w, _| w.0.push((1, 0)));
        s.run(&mut w);
        // The slot is free now; the next event reuses it with a bumped
        // generation. The stale handle must not cancel the new event.
        let id2 = s.after(SimDuration::from_micros(5), |w, _| w.0.push((5, 0)));
        assert_eq!(
            format!("{id:?}").split("gen").next(),
            format!("{id2:?}").split("gen").next(),
            "test setup: slot should be recycled"
        );
        assert!(!s.cancel(id));
        s.run(&mut w);
        assert_eq!(w.0, vec![(1, 0), (5, 0)]);
    }

    #[test]
    fn reschedule_reuses_cancelled_slot_after_key_drains() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        let id = s.after(SimDuration::from_micros(1), |w, _| w.0.push((1, 0)));
        assert!(s.cancel(id));
        // run past the dead key so the slot returns to the free list
        s.after(SimDuration::from_micros(2), |w, _| w.0.push((2, 0)));
        s.run(&mut w);
        assert_eq!(w.0, vec![(2, 0)]);
        // a new event goes into a recycled slot and fires normally
        s.after(SimDuration::from_micros(1), |w, _| w.0.push((3, 0)));
        s.run(&mut w);
        assert_eq!(w.0, vec![(2, 0), (3, 0)]);
    }

    #[test]
    fn cancelled_tail_drains_queue_cleanly() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        let ids: Vec<TimerId> = (0..10)
            .map(|i| s.after(SimDuration::from_micros(i + 1), |_, _| panic!("cancelled event ran")))
            .collect();
        for id in ids {
            assert!(s.cancel(id));
        }
        assert_eq!(s.pending(), 0);
        s.run(&mut w);
        assert_eq!(s.executed(), 0);
    }

    #[test]
    fn at_call_fires_like_a_closure() {
        fn ev(w: &mut Log, s: &mut Scheduler<Log>, arg: u64) {
            w.0.push((s.now().as_micros(), arg as u32));
        }
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        s.at_call(SimTime::from_nanos(2_000), ev, 7);
        let id = s.at_call(SimTime::from_nanos(1_000), ev, 3);
        assert!(s.cancel(id));
        s.run(&mut w);
        assert_eq!(w.0, vec![(2, 7)]);
    }

    #[test]
    fn clamped_past_is_counted() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        let stats = s.stats();
        s.at(SimTime::from_nanos(5_000), |_, s| {
            // inside an event at t=5us, ask for t=1us: clamps to now
            s.at(SimTime::from_nanos(1_000), |w, s| {
                w.0.push((s.now().as_nanos(), 0));
            });
        });
        assert_eq!(stats.clamped_past(), 0);
        // debug builds assert on past scheduling; the clamp counter is
        // release-build behaviour
        if cfg!(debug_assertions) {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.run(&mut w)));
            assert!(r.is_err());
        } else {
            s.run(&mut w);
            assert_eq!(stats.clamped_past(), 1);
            assert_eq!(w.0, vec![(5_000, 0)]);
        }
    }

    #[test]
    fn peek_next_reports_key_without_executing() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        s.at(SimTime::from_nanos(7_000), |w, _| w.0.push((7, 0)));
        let id = s.at(SimTime::from_nanos(3_000), |w, _| w.0.push((3, 0)));
        assert_eq!(s.peek_next(), Some((SimTime::from_nanos(3_000), 1)));
        assert_eq!(s.executed(), 0);
        // cancelling the head moves the peek to the survivor
        assert!(s.cancel(id));
        assert_eq!(s.peek_next(), Some((SimTime::from_nanos(7_000), 0)));
        s.run(&mut w);
        assert_eq!(w.0, vec![(7, 0)]);
        assert_eq!(s.peek_next(), None);
    }

    #[test]
    fn shared_seq_source_orders_across_schedulers() {
        // Two schedulers on one counter: same-instant events interleave
        // by global allocation order, exactly like one scheduler.
        let mut a: Scheduler<Log> = Scheduler::new();
        let mut b: Scheduler<Log> = Scheduler::new();
        b.share_seq_source(a.seq_source());
        let t = SimTime::from_nanos(100);
        a.at(t, |w, _| w.0.push((0, 0)));
        b.at(t, |w, _| w.0.push((0, 1)));
        a.at(t, |w, _| w.0.push((0, 2)));
        assert_eq!(a.next_seq(), 3);
        assert_eq!(b.next_seq(), 3);
        // merge by (time, seq): a holds seqs {0, 2}, b holds {1}
        let mut w = Log::default();
        a.step(&mut w);
        b.step(&mut w);
        a.step(&mut w);
        assert_eq!(w.0, vec![(0, 0), (0, 1), (0, 2)]);
    }

    #[test]
    fn at_seq_injects_with_foreign_sequence_number() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        let t = SimTime::from_nanos(40);
        s.at(t, |w, _| w.0.push((0, 0))); // seq 0
        let stamped = s.alloc_seq(); // seq 1, as a remote sender would draw
        s.at(t, |w, _| w.0.push((0, 2))); // seq 2
        s.at_seq(t, stamped, |w, _| w.0.push((0, 1)));
        // at_seq must not advance the counter
        assert_eq!(s.next_seq(), 3);
        s.run(&mut w);
        assert_eq!(w.0, vec![(0, 0), (0, 1), (0, 2)]);
    }

    #[test]
    fn run_until_ignores_cancelled_head() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let mut w = Log::default();
        let id = s.after(SimDuration::from_micros(5), |w, _| w.0.push((5, 0)));
        s.after(SimDuration::from_micros(30), |w, _| w.0.push((30, 0)));
        assert!(s.cancel(id));
        // deadline between the cancelled head and the live tail: nothing
        // runs, the clock still advances to the deadline
        s.run_until(&mut w, SimTime::from_nanos(10_000));
        assert!(w.0.is_empty());
        assert_eq!(s.now(), SimTime::from_nanos(10_000));
        s.run(&mut w);
        assert_eq!(w.0, vec![(30, 0)]);
    }
}
