//! Discrete-event simulation kernel for the Nectar reproduction.
//!
//! The original Nectar system (SIGCOMM 1990) was measured on real hardware:
//! 16.5 MHz SPARC communication processors, VME backplanes, 100 Mbit/s
//! fiber links and crossbar HUBs. This crate provides the deterministic
//! discrete-event substrate on which the rest of the workspace rebuilds
//! that system: a nanosecond virtual clock, an event queue with total
//! ordering, deterministic random numbers, and the statistics and tracing
//! infrastructure used by the benchmark harness to regenerate the paper's
//! tables and figures.
//!
//! The kernel is intentionally small and synchronous (no async runtime,
//! no threads): determinism is a hard requirement because the benchmark
//! harness compares simulated latencies down to the microsecond, and
//! property tests replay scenarios from seeds.

pub mod check;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use metrics::{CpuMeter, Gauge, MetricCounter, MetricsRegistry, MetricsSnapshot};
pub use queue::{EventCall, EventFn, SchedStats, Scheduler, TimerId};
pub use rng::Pcg32;
pub use stats::{BucketHist, Counter, Histogram, RateMeter};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent};
